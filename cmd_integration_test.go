package repro

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one command into a temp dir and returns the binary path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCmdPamoProfile(t *testing.T) {
	bin := buildCmd(t, "pamo-profile")
	out := run(t, bin, "-clips", "1")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+42 { // header + 7×6 grid
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "clip,resolution,fps") {
		t.Fatalf("header = %q", lines[0])
	}
	// Deterministic across runs.
	if out2 := run(t, bin, "-clips", "1"); out2 != out {
		t.Fatal("pamo-profile not deterministic")
	}
}

func TestCmdPamoSchedJSON(t *testing.T) {
	bin := buildCmd(t, "pamo-sched")
	out := run(t, bin, "-videos", "4", "-servers", "3", "-method", "jcab", "-weights", "1,2,1,1,0.5")
	var payload struct {
		Method   string             `json:"method"`
		Configs  []json.RawMessage  `json:"configs"`
		Outcomes map[string]float64 `json:"outcomes"`
		Benefit  float64            `json:"benefit"`
	}
	if err := json.Unmarshal([]byte(out), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if payload.Method != "jcab" || len(payload.Configs) != 4 {
		t.Fatalf("payload: %+v", payload)
	}
	if payload.Outcomes["accuracy"] <= 0 || payload.Benefit >= 0 {
		t.Fatalf("outcomes: %+v benefit %v", payload.Outcomes, payload.Benefit)
	}
}

func TestCmdPamoBenchSingleFigure(t *testing.T) {
	bin := buildCmd(t, "pamo-bench")
	out := run(t, bin, "-fig", "4")
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "harmonic") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCmdPamoTraceRoundTrip(t *testing.T) {
	bin := buildCmd(t, "pamo-trace")
	path := filepath.Join(t.TempDir(), "t.json")
	out := run(t, bin, "-record", "-videos", "2", "-servers", "2", "-per-cfg", "1", "-o", path)
	if !strings.Contains(out, "recorded") {
		t.Fatalf("record output: %s", out)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file: %v", err)
	}
	sum := run(t, bin, "-summary", "-i", path)
	if !strings.Contains(sum, "2 clips, 2 servers") {
		t.Fatalf("summary: %s", sum)
	}
}

func TestCmdPamoTraceEventsAndSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (fast) PaMO solve")
	}
	bin := buildCmd(t, "pamo-trace")
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.json")
	eventsPath := filepath.Join(dir, "run.jsonl")
	run(t, bin, "-record", "-videos", "2", "-servers", "2", "-per-cfg", "1", "-o", tracePath)
	out := run(t, bin, "-run", "-fast", "-i", tracePath, "-events", eventsPath)
	if !strings.Contains(out, "benefit=") || !strings.Contains(out, "phase breakdown:") {
		t.Fatalf("run output:\n%s", out)
	}

	// The event stream must be valid JSONL containing all four phase spans
	// of Algorithm 2 plus per-iteration acquisition events.
	raw, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	spans := map[string]bool{}
	var acqEvents int
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev struct {
			Kind string  `json:"kind"`
			Name string  `json:"name"`
			Dur  float64 `json:"dur_s"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i+1, err, line)
		}
		if ev.Kind == "span" {
			spans[ev.Name] = true
		}
		if ev.Name == "acq" {
			acqEvents++
		}
	}
	for _, phase := range []string{"profiling", "outcome_model", "preference", "solution"} {
		if !spans[phase] {
			t.Fatalf("phase span %q missing; saw %v", phase, spans)
		}
	}
	if acqEvents == 0 {
		t.Fatal("no per-iteration acquisition events recorded")
	}

	sum := run(t, bin, "-events-summary", "-events", eventsPath)
	for _, phase := range []string{"profiling", "outcome_model", "preference", "solution", "total_s"} {
		if !strings.Contains(sum, phase) {
			t.Fatalf("events-summary missing %q:\n%s", phase, sum)
		}
	}
}
