package repro

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCmd compiles one command into a temp dir and returns the binary path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCmdPamoProfile(t *testing.T) {
	bin := buildCmd(t, "pamo-profile")
	out := run(t, bin, "-clips", "1")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+42 { // header + 7×6 grid
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "clip,resolution,fps") {
		t.Fatalf("header = %q", lines[0])
	}
	// Deterministic across runs.
	if out2 := run(t, bin, "-clips", "1"); out2 != out {
		t.Fatal("pamo-profile not deterministic")
	}
}

func TestCmdPamoSchedJSON(t *testing.T) {
	bin := buildCmd(t, "pamo-sched")
	out := run(t, bin, "-videos", "4", "-servers", "3", "-method", "jcab", "-weights", "1,2,1,1,0.5")
	var payload struct {
		Method   string             `json:"method"`
		Configs  []json.RawMessage  `json:"configs"`
		Outcomes map[string]float64 `json:"outcomes"`
		Benefit  float64            `json:"benefit"`
	}
	if err := json.Unmarshal([]byte(out), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if payload.Method != "jcab" || len(payload.Configs) != 4 {
		t.Fatalf("payload: %+v", payload)
	}
	if payload.Outcomes["accuracy"] <= 0 || payload.Benefit >= 0 {
		t.Fatalf("outcomes: %+v benefit %v", payload.Outcomes, payload.Benefit)
	}
}

func TestCmdPamoSchedFaults(t *testing.T) {
	bin := buildCmd(t, "pamo-sched")
	dir := t.TempDir()
	scPath := filepath.Join(dir, "scenario.json")
	evPath := filepath.Join(dir, "run.jsonl")
	scenario := `{"name":"kill-one","events":[
		{"epoch":2,"action":"server_down","target":1},
		{"epoch":5,"action":"server_up","target":1}]}`
	if err := os.WriteFile(scPath, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-method", "fixed", "-videos", "6", "-servers", "2", "-seed", "7",
		"-faults", scPath, "-epochs", "8", "-replan-every", "3", "-events", evPath}
	out := run(t, bin, args...)
	var payload struct {
		Method             string  `json:"method"`
		Epochs             int     `json:"epochs"`
		Scenario           string  `json:"scenario"`
		MeanBenefit        float64 `json:"mean_benefit"`
		Replans            int     `json:"replans"`
		DegradedEpochs     int     `json:"degraded_epochs"`
		MaxDegradedStreams int     `json:"max_degraded_streams"`
		FaultEvents        int     `json:"fault_events"`
		FinalShed          []int   `json:"final_shed"`
	}
	if err := json.Unmarshal([]byte(out), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if payload.Method != "fixed" || payload.Epochs != 8 || payload.Scenario != "kill-one" {
		t.Fatalf("payload: %+v", payload)
	}
	if payload.FaultEvents != 2 {
		t.Fatalf("fault events = %d, want 2", payload.FaultEvents)
	}
	// Six videos do not fit one server at the fixed config: the outage
	// epochs (2..4) must run degraded, and recovery must restore everything.
	if payload.DegradedEpochs < 1 || payload.MaxDegradedStreams < 1 {
		t.Fatalf("no degradation recorded: %+v", payload)
	}
	if len(payload.FinalShed) != 0 {
		t.Fatalf("final shed = %v after recovery", payload.FinalShed)
	}
	if payload.Replans < 2 {
		t.Fatalf("replans = %d", payload.Replans)
	}

	raw, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fault_server_down", "fault_server_up", "degraded"} {
		if !strings.Contains(string(raw), `"name":"`+name+`"`) {
			t.Fatalf("event stream missing %q", name)
		}
	}

	// Fault runs are deterministic: same scenario, same seed, same output.
	if out2 := run(t, bin, args[:len(args)-2]...); out2 != out {
		t.Fatalf("faulted run not deterministic:\n%s\n%s", out, out2)
	}
}

func TestCmdPamoBenchSingleFigure(t *testing.T) {
	bin := buildCmd(t, "pamo-bench")
	out := run(t, bin, "-fig", "4")
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "harmonic") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestCmdPamoTraceRoundTrip(t *testing.T) {
	bin := buildCmd(t, "pamo-trace")
	path := filepath.Join(t.TempDir(), "t.json")
	out := run(t, bin, "-record", "-videos", "2", "-servers", "2", "-per-cfg", "1", "-o", path)
	if !strings.Contains(out, "recorded") {
		t.Fatalf("record output: %s", out)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file: %v", err)
	}
	sum := run(t, bin, "-summary", "-i", path)
	if !strings.Contains(sum, "2 clips, 2 servers") {
		t.Fatalf("summary: %s", sum)
	}
}

func TestCmdPamoTraceEventsAndSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (fast) PaMO solve")
	}
	bin := buildCmd(t, "pamo-trace")
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.json")
	eventsPath := filepath.Join(dir, "run.jsonl")
	run(t, bin, "-record", "-videos", "2", "-servers", "2", "-per-cfg", "1", "-o", tracePath)
	out := run(t, bin, "-run", "-fast", "-i", tracePath, "-events", eventsPath)
	if !strings.Contains(out, "benefit=") || !strings.Contains(out, "phase breakdown:") {
		t.Fatalf("run output:\n%s", out)
	}

	// The event stream must be valid JSONL containing all four phase spans
	// of Algorithm 2 plus per-iteration acquisition events.
	raw, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	spans := map[string]bool{}
	var acqEvents int
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev struct {
			Kind string  `json:"kind"`
			Name string  `json:"name"`
			Dur  float64 `json:"dur_s"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i+1, err, line)
		}
		if ev.Kind == "span" {
			spans[ev.Name] = true
		}
		if ev.Name == "acq" {
			acqEvents++
		}
	}
	for _, phase := range []string{"profiling", "outcome_model", "preference", "solution"} {
		if !spans[phase] {
			t.Fatalf("phase span %q missing; saw %v", phase, spans)
		}
	}
	if acqEvents == 0 {
		t.Fatal("no per-iteration acquisition events recorded")
	}

	sum := run(t, bin, "-events-summary", "-events", eventsPath)
	for _, phase := range []string{"profiling", "outcome_model", "preference", "solution", "total_s"} {
		if !strings.Contains(sum, phase) {
			t.Fatalf("events-summary missing %q:\n%s", phase, sum)
		}
	}
}

func TestCmdPamoControllerHollowCompare(t *testing.T) {
	bin := buildCmd(t, "pamo-controller")
	out := run(t, bin, "-videos", "4", "-servers", "2", "-hollow", "2",
		"-epochs", "6", "-strict", "-compare-inprocess")
	var payload struct {
		Epochs       int    `json:"epochs"`
		HollowAgents int    `json:"hollow_agents"`
		Results      uint64 `json:"results_total"`
		Matches      *bool  `json:"wire_matches_inprocess"`
	}
	if err := json.Unmarshal([]byte(out), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if payload.Epochs != 6 || payload.HollowAgents != 2 {
		t.Fatalf("payload: %+v", payload)
	}
	if payload.Results != 12 { // 2 servers x 6 epochs
		t.Fatalf("results_total = %d, want 12", payload.Results)
	}
	if payload.Matches == nil || !*payload.Matches {
		t.Fatalf("wire run diverged from in-process: %s", out)
	}
}

func TestCmdPamoControllerChaos(t *testing.T) {
	bin := buildCmd(t, "pamo-controller")
	scPath := filepath.Join(t.TempDir(), "chaos.json")
	// The kills at epoch 2 are inferred at epoch 4 (last beats in epoch 1,
	// epochs 2-3 fully silent with missed-beats=1), so the restart lands
	// at epoch 5, after detection.
	scenario := `{"name":"kill-recover","events":[
		{"epoch":2,"action":"server_down","target":1},
		{"epoch":2,"action":"server_down","target":3},
		{"epoch":5,"action":"server_up","target":1}]}`
	if err := os.WriteFile(scPath, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, bin, "-videos", "6", "-servers", "4", "-hollow", "4",
		"-epochs", "8", "-faults", scPath, "-chaos", "-missed-beats", "1", "-strict")
	var payload struct {
		Scenario     string `json:"scenario"`
		Chaos        bool   `json:"chaos"`
		FaultEvents  int    `json:"fault_events"`
		MinHealthy   int    `json:"min_healthy"`
		FinalHealthy int    `json:"final_healthy"`
		MarksDown    uint64 `json:"marks_down_total"`
		MarksUp      uint64 `json:"marks_up_total"`
	}
	if err := json.Unmarshal([]byte(out), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if !payload.Chaos || payload.Scenario != "kill-recover" {
		t.Fatalf("payload: %+v", payload)
	}
	// Both kills inferred from silence, one restart observed, and the
	// healthy count must dip to 2 and recover to 3.
	if payload.MarksDown != 2 || payload.MarksUp != 1 {
		t.Fatalf("marks down/up = %d/%d, want 2/1", payload.MarksDown, payload.MarksUp)
	}
	if payload.MinHealthy != 2 || payload.FinalHealthy != 3 {
		t.Fatalf("healthy min/final = %d/%d, want 2/3", payload.MinHealthy, payload.FinalHealthy)
	}
	if payload.FaultEvents != 3 {
		t.Fatalf("fault events = %d, want 3", payload.FaultEvents)
	}
}

// TestCmdControllerAgentTCP drives the real wire: a controller daemon on a
// kernel-assigned TCP port, an external pamo-agent process hosting both
// servers, graceful shutdown on run completion.
func TestCmdControllerAgentTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns two daemon processes")
	}
	ctlBin := buildCmd(t, "pamo-controller")
	agentBin := buildCmd(t, "pamo-agent")

	ctl := exec.Command(ctlBin, "-videos", "4", "-servers", "2",
		"-epochs", "6", "-addr", "127.0.0.1:0", "-agents", "2", "-strict")
	stderr, err := ctl.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var ctlOut bytes.Buffer
	ctl.Stdout = &ctlOut
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = ctl.Process.Kill()
		_ = ctl.Wait()
	}()

	// The daemon prints its bound address on stderr; scan for it.
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "control plane on "); ok {
				urlCh <- strings.TrimSpace(rest)
			}
		}
	}()
	var base string
	select {
	case base = <-urlCh:
	case <-time.After(30 * time.Second):
		t.Fatal("controller never announced its address")
	}

	agentOut, err := exec.Command(agentBin, "-controller", base,
		"-server", "0", "-count", "2", "-give-up", "20s").CombinedOutput()
	if err != nil {
		t.Fatalf("agent: %v\n%s", err, agentOut)
	}
	if !strings.Contains(string(agentOut), "shutdown") {
		t.Fatalf("agent did not observe shutdown:\n%s", agentOut)
	}
	if err := ctl.Wait(); err != nil {
		t.Fatalf("controller: %v", err)
	}
	var payload struct {
		Results uint64 `json:"results_total"`
	}
	if err := json.Unmarshal(ctlOut.Bytes(), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, ctlOut.String())
	}
	if payload.Results != 12 {
		t.Fatalf("results_total = %d, want 12", payload.Results)
	}
}
