package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/pamo"
	"repro/internal/runtime"
	"repro/internal/videosim"
)

// -update rewrites the golden files under testdata/golden/ instead of
// comparing against them:
//
//	go test -run Golden -update .
var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenCompare marshals got as indented JSON and byte-compares it against
// testdata/golden/<name>. Any drift — a changed assignment, a shifted
// benefit in the 15th digit, a reordered field — fails with a diff hint.
// The traces pin end-to-end determinism: same seed, same plan, same bytes.
func goldenCompare(t *testing.T, name string, got any) {
	t.Helper()
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(data))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update .` to create it)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("%s drifted from golden (run with -update after verifying the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, data, want)
	}
}

// goldenDecision is the serialized form of one scheduling decision.
type goldenDecision struct {
	Configs []goldenConfig `json:"configs"`
	Assign  []int          `json:"assign"`
	Offsets []float64      `json:"offsets"`
	Benefit string         `json:"benefit"`
	Iters   int            `json:"iters"`
}

type goldenConfig struct {
	Resolution float64 `json:"resolution"`
	FPS        float64 `json:"fps"`
}

// TestGoldenPaMOTrace pins a full PaMO+ optimization byte-exactly: seeds,
// RNG stream derivation, GP conditioning order, acquisition scoring, and
// Algorithm 1 placement all feed this output, so an unintended change in
// any of them shows up as golden drift. The run executes under a strict
// checker — the golden fixture is also a regression test for the harness
// accepting its own scheduler.
func TestGoldenPaMOTrace(t *testing.T) {
	sys := exp.NewSystem(4, 3, 2024)
	rec := obs.NewRecorder(nil)
	opt := pamo.Options{
		Seed: 7, UseTruePref: true, TruePref: objective.UniformPreference(),
		InitProfiles: 12, InitObs: 3, PrefPairs: 10, PrefPool: 12,
		Batch: 2, MCSamples: 16, CandPool: 10, MaxIter: 4,
		Workers: 1,
		Obs:     rec, Check: check.New(true, rec),
	}
	res, err := pamo.New(sys, nil, opt).Run()
	if err != nil {
		t.Fatal(err)
	}
	d := res.Best.Decision
	g := goldenDecision{
		Assign:  d.Assign,
		Offsets: d.Offsets,
		Benefit: fmt.Sprintf("%.15g", res.Best.Benefit),
		Iters:   res.Iters,
	}
	for _, c := range d.Configs {
		g.Configs = append(g.Configs, goldenConfig{Resolution: c.Resolution, FPS: c.FPS})
	}
	goldenCompare(t, "pamo_trace.json", g)
}

// goldenEpoch is the serialized form of one controller epoch.
type goldenEpoch struct {
	Epoch     int    `json:"epoch"`
	Benefit   string `json:"benefit"`
	MaxJitter string `json:"max_jitter_s"`
	Replanned bool   `json:"replanned"`
	Degraded  bool   `json:"degraded"`
	Healthy   int    `json:"healthy_servers"`
	Shed      []int  `json:"shed"`
	Streams   []int  `json:"server_streams"`
}

// TestGoldenFaultRun pins a fault-injected controller run byte-exactly:
// the crash/recovery schedule, forced replans, degradation decisions, and
// the discrete-event simulation results behind every epoch's benefit. It
// runs under a strict checker, so every installed decision — including the
// degraded mid-outage ones — must also pass the exact verifier.
func TestGoldenFaultRun(t *testing.T) {
	clips := make([]*videosim.Clip, 6)
	for i := range clips {
		clips[i] = &videosim.Clip{
			Name: fmt.Sprintf("cam%d", i), AccBase: 0.9,
			AccFactor: 1, ComputeFac: 1, BitFac: 1, EnergyFac: 1,
		}
	}
	servers := make([]cluster.Server, 3)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: float64(10+5*j) * 1e6}
	}
	sys := &objective.System{Clips: clips, Servers: servers}
	sc := &fault.Scenario{Name: "golden-crash", Events: []fault.Event{
		{Epoch: 2, Action: fault.ServerDown, Target: 0},
		{Epoch: 4, Action: fault.ServerDown, Target: 2},
		{Epoch: 7, Action: fault.ServerUp, Target: 0},
	}}
	inj, err := fault.NewInjector(sc, sys.N(), sys.M())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	c := &runtime.Controller{
		Sys:    sys,
		Sched:  &runtime.FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}},
		Truth:  objective.UniformPreference(),
		Norm:   objective.NewNormalizer(sys),
		Opt:    runtime.Options{ReplanEvery: 100, Check: check.New(true, rec)},
		Faults: inj,
		Obs:    rec,
	}
	trace, err := c.Run(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	var gold []goldenEpoch
	for _, r := range trace.Reports {
		shed := r.Shed
		if shed == nil {
			shed = []int{}
		}
		gold = append(gold, goldenEpoch{
			Epoch:     r.Epoch,
			Benefit:   fmt.Sprintf("%.15g", r.Benefit),
			MaxJitter: fmt.Sprintf("%.9g", r.MaxJitter),
			Replanned: r.Replanned,
			Degraded:  r.Degraded,
			Healthy:   r.HealthyServers,
			Shed:      shed,
			Streams:   r.ServerStreams,
		})
	}
	goldenCompare(t, "fault_run.json", gold)
}

// goldenLedger is the serialized form of one epoch's benefit-attribution
// ledger. Loss buckets are pinned as %.17g strings so the fixture captures
// every bit: Close() guarantees shed+drift+fault+conflict+fallback equals
// planned−realized exactly, and this test re-verifies that equality on the
// live floats before serializing.
type goldenLedger struct {
	Epoch      int    `json:"epoch"`
	Planned    string `json:"planned"`
	Realized   string `json:"realized"`
	ShedLoss   string `json:"shed_loss"`
	DriftLoss  string `json:"drift_loss"`
	FaultLoss  string `json:"fault_loss"`
	Retries    int    `json:"conflict_retries"`
	FellBack   bool   `json:"fell_back"`
	Degraded   bool   `json:"degraded"`
	Shed       []int  `json:"shed_videos"`
	Downgraded []int  `json:"downgraded_videos"`
	Down       []int  `json:"servers_down"`
}

// TestGoldenLedger pins the benefit-attribution ledger of a fault-injected
// run byte-exactly and enforces the ledger's core invariant on every epoch:
// Σ(loss buckets) == planned − realized with exact float equality (the
// acceptance bar for the attribution plane — no epsilon). The run mirrors
// TestGoldenFaultRun's crash/recovery schedule so the two fixtures describe
// the same trajectory from two angles: what happened vs why benefit was lost.
func TestGoldenLedger(t *testing.T) {
	clips := make([]*videosim.Clip, 6)
	for i := range clips {
		clips[i] = &videosim.Clip{
			Name: fmt.Sprintf("cam%d", i), AccBase: 0.9,
			AccFactor: 1, ComputeFac: 1, BitFac: 1, EnergyFac: 1,
		}
	}
	servers := make([]cluster.Server, 3)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: float64(10+5*j) * 1e6}
	}
	sys := &objective.System{Clips: clips, Servers: servers}
	sc := &fault.Scenario{Name: "golden-crash", Events: []fault.Event{
		{Epoch: 2, Action: fault.ServerDown, Target: 0},
		{Epoch: 4, Action: fault.ServerDown, Target: 2},
		{Epoch: 7, Action: fault.ServerUp, Target: 0},
	}}
	inj, err := fault.NewInjector(sc, sys.N(), sys.M())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	c := &runtime.Controller{
		Sys:    sys,
		Sched:  &runtime.FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}},
		Truth:  objective.UniformPreference(),
		Norm:   objective.NewNormalizer(sys),
		Opt:    runtime.Options{ReplanEvery: 100, Check: check.New(true, rec)},
		Faults: inj,
		Obs:    rec,
	}
	const epochs = 10
	if _, err := c.Run(context.Background(), epochs); err != nil {
		t.Fatal(err)
	}
	ledgers := rec.Ledgers()
	if len(ledgers) != epochs {
		t.Fatalf("got %d ledgers, want %d", len(ledgers), epochs)
	}
	var gold []goldenLedger
	for i := range ledgers {
		l := &ledgers[i]
		if !l.CheckExact() {
			t.Fatalf("epoch %d ledger inexact: Σbuckets=%.17g gap=%.17g",
				l.Epoch, l.SumBuckets(), l.Gap())
		}
		if l.ConflictLoss != 0 || l.FallbackLoss != 0 {
			t.Fatalf("epoch %d: protocol buckets must be exactly 0, got %+v", l.Epoch, l)
		}
		empty := func(s []int) []int {
			if s == nil {
				return []int{}
			}
			return s
		}
		gold = append(gold, goldenLedger{
			Epoch:      l.Epoch,
			Planned:    fmt.Sprintf("%.17g", l.Planned),
			Realized:   fmt.Sprintf("%.17g", l.Realized),
			ShedLoss:   fmt.Sprintf("%.17g", l.ShedLoss),
			DriftLoss:  fmt.Sprintf("%.17g", l.DriftLoss),
			FaultLoss:  fmt.Sprintf("%.17g", l.FaultLoss),
			Retries:    l.ConflictRetries,
			FellBack:   l.FellBack,
			Degraded:   l.Degraded,
			Shed:       empty(l.ShedVideos),
			Downgraded: empty(l.DowngradedVideos),
			Down:       empty(l.ServersDown),
		})
	}
	goldenCompare(t, "ledger_run.json", gold)
}
