// Sharded control-plane benchmark: the exp.ShardScale workload (4096
// streams × 256 servers by default, shrunk here to keep `-benchtime 1x`
// smoke runs fast) solved at increasing shard counts. BENCH_pr6.json
// records the full-size numbers; reproduce them with
// `go run ./cmd/pamo-bench -shard` or
// `go test -run '^$' -bench ShardScale/full -benchtime 3x -benchmem .`.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/exp"
)

func BenchmarkShardScale(b *testing.B) {
	for _, size := range []struct {
		name             string
		streams, servers int
	}{{"smoke_512x64", 512, 64}, {"full_4096x256", 4096, 256}} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", size.name, shards), func(b *testing.B) {
				if size.streams > 512 && testing.Short() {
					b.Skip("full-size shard bench skipped in -short mode")
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					exp.ShardScale(exp.ShardConfig{
						Streams: size.streams, Servers: size.servers,
						Epochs: 2, Shards: shards,
					})
				}
			})
		}
	}
}
