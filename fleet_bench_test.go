// Fleet-scale benchmark: 256 streams × 32 servers driven through eight
// drifting, fault-flapping replan+simulate epochs — the steady-state shape
// of the fault-tolerant runtime two orders of magnitude beyond the paper's
// testbed. BENCH_pr5.json records the cold-vs-warm numbers; the `cold`
// sub-benchmark is the pre-optimization path (full Algorithm 1 solve and
// fresh simulation buffers every epoch) and `warm` is the pooled
// incremental path (sched.Replanner + cluster.Arena).
package repro

import (
	"testing"

	"repro/internal/exp"
)

func BenchmarkFleetScale(b *testing.B) {
	for _, bc := range []struct {
		name string
		cold bool
	}{{"cold", true}, {"warm", false}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exp.Fleet(exp.FleetConfig{Cold: bc.cold})
			}
		})
	}
}

// BenchmarkFleetScaleSmall runs the same loop at the paper's testbed scale
// (8 streams × 5 servers), so the fleet numbers can be compared against a
// size where the cold path was already cheap.
func BenchmarkFleetScaleSmall(b *testing.B) {
	for _, bc := range []struct {
		name string
		cold bool
	}{{"cold", true}, {"warm", false}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exp.Fleet(exp.FleetConfig{Streams: 8, Servers: 5, Cold: bc.cold})
			}
		})
	}
}
