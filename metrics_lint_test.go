package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMetricNamesLinted walks the source tree for every metric
// registration — Counter("..."), Gauge("..."), Histogram("...") — and
// enforces two contracts:
//
//  1. every name matches ^[a-z][a-z0-9_]*$ (Prometheus-safe, no dots, no
//     uppercase), and
//  2. every name is documented in the checked-in metrics.md inventory, so
//     the inventory cannot rot silently.
//
// Dynamic families built as Counter("prefix_" + label) are linted by their
// prefix: the prefix itself must be well-formed and metrics.md must list a
// `prefix_<...>` entry.
func TestMetricNamesLinted(t *testing.T) {
	inventory, err := os.ReadFile("metrics.md")
	if err != nil {
		t.Fatalf("metrics.md missing: %v", err)
	}
	inv := string(inventory)

	nameRE := regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	// Literal registration: Counter("name") / Gauge("name", / Histogram("name",
	callRE := regexp.MustCompile(`\b(Counter|Gauge|Histogram)\("([^"]*)"\s*([,)+])`)

	checked := 0
	err = filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range callRE.FindAllStringSubmatch(string(src), -1) {
			name, sep := m[2], m[3]
			checked++
			if sep == "+" {
				// Dynamic family: lint the prefix, require a prefix entry.
				trimmed := strings.TrimSuffix(name, "_")
				if !nameRE.MatchString(trimmed) {
					t.Errorf("%s: dynamic metric prefix %q is not ^[a-z][a-z0-9_]*$", path, name)
				}
				if !strings.Contains(inv, "`"+name) {
					t.Errorf("%s: dynamic metric family %q* not documented in metrics.md", path, name)
				}
				continue
			}
			if !nameRE.MatchString(name) {
				t.Errorf("%s: metric name %q does not match ^[a-z][a-z0-9_]*$", path, name)
			}
			if !strings.Contains(inv, "`"+name+"`") {
				t.Errorf("%s: metric %q not documented in metrics.md", path, name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("lint found no metric registrations — extraction regex rotted")
	}
}
