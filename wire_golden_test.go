package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/ctlplane"
	"repro/internal/fault"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/videosim"
)

// TestGoldenWireFaultRun re-runs the exact TestGoldenFaultRun scenario
// through the distributed control plane — hollow agents over the loopback
// wire evaluate every server, the controller's fault oracle supplies
// health — and compares against the SAME golden fixture. Passing means the
// wire path is byte-equivalent to the in-process path: JSON transport,
// agent-side DES evaluation, and result folding introduce zero drift.
func TestGoldenWireFaultRun(t *testing.T) {
	clips := make([]*videosim.Clip, 6)
	for i := range clips {
		clips[i] = &videosim.Clip{
			Name: fmt.Sprintf("cam%d", i), AccBase: 0.9,
			AccFactor: 1, ComputeFac: 1, BitFac: 1, EnergyFac: 1,
		}
	}
	servers := make([]cluster.Server, 3)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: float64(10+5*j) * 1e6}
	}
	sys := &objective.System{Clips: clips, Servers: servers}
	sc := &fault.Scenario{Name: "golden-crash", Events: []fault.Event{
		{Epoch: 2, Action: fault.ServerDown, Target: 0},
		{Epoch: 4, Action: fault.ServerDown, Target: 2},
		{Epoch: 7, Action: fault.ServerUp, Target: 0},
	}}
	inj, err := fault.NewInjector(sc, sys.N(), sys.M())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	rt := &runtime.Controller{
		Sys:   sys,
		Sched: &runtime.FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}},
		Truth: objective.UniformPreference(),
		Norm:  objective.NewNormalizer(sys),
		Opt:   runtime.Options{ReplanEvery: 100, Check: check.New(true, rec)},
		Obs:   rec,
	}
	ctl := ctlplane.New(rt, ctlplane.Options{Env: inj, OracleHealth: true})
	fleet := ctlplane.NewHollowFleet(ctl, sys.N())
	if err := fleet.StartAll(); err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	trace, err := ctl.Run(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	var gold []goldenEpoch
	for _, r := range trace.Reports {
		shed := r.Shed
		if shed == nil {
			shed = []int{}
		}
		gold = append(gold, goldenEpoch{
			Epoch:     r.Epoch,
			Benefit:   fmt.Sprintf("%.15g", r.Benefit),
			MaxJitter: fmt.Sprintf("%.9g", r.MaxJitter),
			Replanned: r.Replanned,
			Degraded:  r.Degraded,
			Healthy:   r.HealthyServers,
			Shed:      shed,
			Streams:   r.ServerStreams,
		})
	}
	goldenCompare(t, "fault_run.json", gold)
}
