// Preference-learning demo: learn a hidden pricing preference from pairwise
// comparisons (Section 4.2 of the paper) and watch the pairwise prediction
// accuracy grow with the comparison budget — the Figure 9 flow.
//
//	go run ./examples/preference
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/objective"
	"repro/internal/pref"
	"repro/internal/stats"
)

func main() {
	// A hidden preference with strong bias: computation is 3.2× as
	// valuable as baseline, network 1.6×, latency nearly free.
	truth := objective.Preference{W: objective.Vector{0.2, 1, 1.6, 3.2, 1}}

	// A pool of candidate outcome vectors (normalized to [0,1]^5) that the
	// decision maker will compare in pairs.
	rng := stats.NewRNG(3)
	pool := make([]objective.Vector, 40)
	for i := range pool {
		for k := range pool[i] {
			pool[i][k] = rng.Float64()
		}
	}

	dm := repro.NewOracle(truth, 0, 5)
	fmt.Println("pairs  pairwise_accuracy")
	for _, budget := range []int{3, 6, 9, 18, 27} {
		l := pref.NewLearner(dm, true, stats.NewRNG(7))
		if err := l.Learn(pool, budget); err != nil {
			log.Fatal(err)
		}
		acc := pref.PairwiseAccuracy(l.Model, truth, 500, stats.NewRNG(11))
		fmt.Printf("%5d  %.3f\n", budget, acc)
	}

	// Show the learned model ranking two concrete outcomes.
	l := pref.NewLearner(dm, true, stats.NewRNG(7))
	if err := l.Learn(pool, 27); err != nil {
		log.Fatal(err)
	}
	frugal := objective.Vector{0.4, 0.55, 0.1, 0.1, 0.2}  // cheap, mid accuracy
	lavish := objective.Vector{0.1, 0.95, 0.9, 0.9, 0.85} // accurate, expensive
	zf, _ := l.Model.PredictOne(frugal.Slice())
	zl, _ := l.Model.PredictOne(lavish.Slice())
	fmt.Printf("\nlearned utility: frugal=%.3f lavish=%.3f (truth prefers %s)\n",
		zf, zl, pick(truth.Benefit(frugal) > truth.Benefit(lavish), "frugal", "lavish"))
}

func pick(cond bool, a, b string) string {
	if cond {
		return a
	}
	return b
}
