// Chemical-plant safety monitoring — the paper's second motivating
// scenario: workshop cameras watch for equipment and personnel hazards, so
// detection accuracy and end-to-end latency dominate the pricing while
// resource costs barely matter. The decision maker additionally answers a
// few comparisons inconsistently (a distracted safety officer), and PaMO
// still recovers the preference.
//
//	go run ./examples/chemplant
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 8 workshop cameras, 5 edge boxes on the plant floor.
	sys := repro.NewSystem(8, 5, 991)

	truth := repro.UniformPreference()
	truth.W[repro.Latency] = 3.2  // hazards must be flagged immediately
	truth.W[repro.Accuracy] = 3.2 // and reliably
	truth.W[repro.Network] = 0.4
	truth.W[repro.Compute] = 0.4
	truth.W[repro.Energy] = 0.4

	norm := repro.NewNormalizer(sys)
	score := func(out repro.Outcome) float64 { return truth.Benefit(norm.Normalize(out)) }

	// Noisy answers: close calls get flipped sometimes.
	dm := repro.NewOracle(truth, 0.08, 13)

	res, err := repro.RunPaMO(sys, dm, repro.PaMOOptions{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	out := repro.Evaluate(sys, res.Best.Decision)

	fmt.Println("PaMO decision for the safety workload:")
	for i, cfg := range res.Best.Decision.Configs {
		fmt.Printf("  %-10s res=%4.0f fps=%2.0f\n", sys.Clips[i].Name, cfg.Resolution, cfg.FPS)
	}
	fmt.Printf("\nlatency=%.0f ms  mAP=%.3f  benefit=%.4f  (%d noisy comparisons)\n",
		out[repro.Latency]*1000, out[repro.Accuracy], score(out), res.PrefPairs)
	fmt.Printf("zero-jitter guarantee: max simulated jitter = %.2g s\n\n", repro.MaxJitter(sys, res.Best.Decision))

	// The latency-blind baseline pays for it under this pricing.
	if d, err := repro.RunJCAB(sys, repro.JCABOptions{Seed: 13}); err == nil {
		o := repro.Evaluate(sys, d)
		fmt.Printf("JCAB:  latency=%.0f ms  mAP=%.3f  benefit=%.4f\n",
			o[repro.Latency]*1000, o[repro.Accuracy], score(o))
	}
	if d, err := repro.RunFACT(sys, repro.FACTOptions{WLat: truth.W[repro.Latency], Seed: 13}); err == nil {
		o := repro.Evaluate(sys, d)
		fmt.Printf("FACT:  latency=%.0f ms  mAP=%.3f  benefit=%.4f\n",
			o[repro.Latency]*1000, o[repro.Accuracy], score(o))
	}
}
