// Online control-loop demo: a controller re-plans the cluster as video
// content drifts, evaluating each epoch with one goroutine per server.
// Compares periodic re-planning against a plan-once controller.
//
//	go run ./examples/online
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/videosim"
)

func main() {
	sys := repro.NewSystem(6, 4, 123)
	truth := repro.UniformPreference()

	// A cheap reactive scheduler: pick per-clip configurations by a greedy
	// score on the *drifted* clip curves, then Algorithm 1.
	reactive := runtime.SchedulerFunc(func(ctx context.Context, s *objective.System, epoch int) (eva.Decision, error) {
		cfgs := make([]videosim.Config, s.M())
		for i, clip := range s.Clips {
			best, bestV := videosim.Config{Resolution: 500, FPS: 5}, -1e18
			for _, r := range videosim.Resolutions {
				for _, fps := range videosim.FrameRates {
					cfg := videosim.Config{Resolution: r, FPS: fps}
					v := clip.Accuracy(cfg) - 0.01*clip.Power(cfg) - 0.02*clip.Bandwidth(cfg)/1e6
					if v > bestV && clip.ProcTime(r)*fps <= 0.6 {
						best, bestV = cfg, v
					}
				}
			}
			cfgs[i] = best
		}
		streams := eva.BuildStreams(s, cfgs)
		plan, err := sched.Schedule(streams, s.Servers)
		if err != nil {
			return eva.Decision{}, err
		}
		specs, _ := plan.ToClusterStreams(streams, s.Servers)
		offsets := make([]float64, len(streams))
		for i := range specs {
			offsets[i] = specs[i].Offset
		}
		return eva.Decision{Configs: cfgs, Streams: streams, Assign: plan.StreamServer,
			Offsets: offsets, ZeroJit: true}, nil
	})

	run := func(replanEvery int) *runtime.Trace {
		c := &runtime.Controller{
			Sys:   sys,
			Sched: reactive,
			Truth: truth,
			Norm:  repro.NewNormalizer(sys),
			Opt:   runtime.Options{ReplanEvery: replanEvery},
		}
		tr, err := c.Run(context.Background(), 20)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}

	adaptive := run(3)    // re-plan every 3 epochs
	planOnce := run(1000) // plan once, never adapt

	fmt.Println("epoch  adaptive_benefit  plan_once_benefit  adaptive_replanned")
	for i := range adaptive.Reports {
		fmt.Printf("%5d  %16.4f  %17.4f  %v\n",
			i, adaptive.Reports[i].Benefit, planOnce.Reports[i].Benefit,
			adaptive.Reports[i].Replanned)
	}
	fmt.Printf("\nmean benefit: adaptive %.4f vs plan-once %.4f\n",
		adaptive.MeanBenefit(), planOnce.MeanBenefit())
}
