// Heterogeneous-cluster demo: three unequal physical machines are
// virtualized into homogeneous unit-capacity VMs (the paper's Section 3
// note), then a mixed workload is zero-jitter scheduled across the VMs.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	phys := []repro.PhysicalServer{
		{Name: "rack-gpu", Units: 3, Uplink: 30e6}, // one beefy box
		{Name: "nuc-a", Units: 1, Uplink: 15e6},
		{Name: "nuc-b", Units: 1.8, Uplink: 10e6}, // 0.8 fractional unit wasted
	}
	vms, err := repro.Virtualize(phys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d physical machines → %d homogeneous VMs:\n", len(phys), len(vms))
	for _, vm := range vms {
		fmt.Printf("  %-12s uplink %.0f Mbps\n", vm.Name, vm.Uplink/1e6)
	}

	sys := repro.NewSystemWithUplinks(6, uplinksOf(vms), 77)
	sys.Servers = vms // keep the VM names

	cfgs := []repro.Config{
		{Resolution: 1250, FPS: 10},
		{Resolution: 1000, FPS: 15},
		{Resolution: 1500, FPS: 5},
		{Resolution: 750, FPS: 30},
		{Resolution: 1000, FPS: 10},
		{Resolution: 1250, FPS: 5},
	}
	streams := repro.BuildStreams(sys, cfgs)
	plan, err := repro.ScheduleZeroJitter(streams, sys.Servers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nzero-jitter placement:")
	util := plan.Utilizations(streams, len(vms))
	for g, members := range plan.Groups {
		if len(members) == 0 {
			continue
		}
		j := plan.GroupServer[g]
		fmt.Printf("  %-12s util %.0f%%:", vms[j].Name, 100*util[j])
		for _, si := range members {
			s := streams[si]
			fmt.Printf("  v%d.%d(%gfps)", s.Video, s.Sub, 1/s.Period.Float())
		}
		fmt.Println()
	}
	fmt.Printf("\ntotal transmission latency: %.4f s\n", plan.CommLatency)
}

func uplinksOf(vms []repro.Server) []float64 {
	out := make([]float64, len(vms))
	for i, vm := range vms {
		out[i] = vm.Uplink
	}
	return out
}
