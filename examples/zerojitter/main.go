// Zero-jitter scheduling demo: run Algorithm 1 on a mixed-rate workload,
// verify Theorems 1–3 empirically with the discrete-event simulator, and
// contrast with an uncoordinated placement that jitters.
//
//	go run ./examples/zerojitter
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sys := repro.NewSystemWithUplinks(5, []float64{10e6, 15e6, 20e6, 25e6}, 11)

	// Mixed frame rates with a rich divisibility structure.
	cfgs := []repro.Config{
		{Resolution: 1250, FPS: 5},
		{Resolution: 1000, FPS: 10},
		{Resolution: 1500, FPS: 10},
		{Resolution: 750, FPS: 15},
		{Resolution: 2000, FPS: 30}, // high-rate: will be split (s·p > 1)
	}
	streams := repro.BuildStreams(sys, cfgs)
	fmt.Printf("%d videos became %d periodic streams after high-rate splitting\n", len(cfgs), len(streams))

	plan, err := repro.ScheduleZeroJitter(streams, sys.Servers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAlgorithm 1 grouping (per server):")
	for g, members := range plan.Groups {
		if len(members) == 0 {
			continue
		}
		fmt.Printf("  server %d:", plan.GroupServer[g])
		for _, si := range members {
			s := streams[si]
			fmt.Printf("  v%d.%d(T=%s, p=%.0fms)", s.Video, s.Sub, s.Period, s.Proc*1000)
		}
		fmt.Println()
	}
	fmt.Printf("total transmission latency (Hungarian-minimized): %.4f s\n", plan.CommLatency)

	// The cyclic execution timelines of Theorem 1, rendered per server.
	fmt.Println("\ncyclic timelines (one hyper-period per server, '#' = inference):")
	for _, tl := range plan.Timelines(streams) {
		fmt.Print(tl.Render(streams, 60))
		if ov := tl.Overlap(); ov != nil {
			log.Fatalf("timeline overlap: %+v", *ov)
		}
	}

	// Deploy with Theorem 1 offsets and verify in the simulator.
	good := repro.Decision{Configs: cfgs, Streams: streams, Assign: plan.StreamServer, ZeroJit: true}
	good.Offsets = theoremOffsets(sys, streams, plan)
	fmt.Printf("\nmax jitter with Algorithm 1 + Theorem 1 offsets: %.3g s\n", repro.MaxJitter(sys, good))

	// The same assignment with uncoordinated (random) capture offsets and
	// no grouping discipline: pile streams on server 0.
	bad := repro.Decision{Configs: cfgs, Streams: streams, Assign: make([]int, len(streams))}
	bad.Offsets = randomOffsets(streams, 99)
	fmt.Printf("max jitter with uncoordinated single-server placement: %.3g s\n", repro.MaxJitter(sys, bad))
}

func theoremOffsets(sys *repro.System, streams []repro.Stream, plan repro.Plan) []float64 {
	// o(τ_k) = Σ_{i<k} p_i within each group, compensated for per-stream
	// transmission delay (see cluster.ZeroJitterOffsets).
	offsets := make([]float64, len(streams))
	for g, members := range plan.Groups {
		if len(members) == 0 {
			continue
		}
		uplink := sys.Servers[plan.GroupServer[g]].Uplink
		var maxTx float64
		for _, si := range members {
			if tx := streams[si].Bits / uplink; tx > maxTx {
				maxTx = tx
			}
		}
		acc := 0.0
		for _, si := range members {
			offsets[si] = maxTx + acc - streams[si].Bits/uplink
			acc += streams[si].Proc
		}
	}
	return offsets
}

func randomOffsets(streams []repro.Stream, seed uint64) []float64 {
	rng := repro.NewRNG(seed)
	out := make([]float64, len(streams))
	for i, s := range streams {
		out[i] = rng.Float64() * s.Period.Float()
	}
	return out
}
