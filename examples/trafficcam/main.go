// Traffic-camera scenario: a city operates 10 intersection cameras feeding
// 6 edge servers. Electricity is on a tiered tariff (energy weight 3.2) and
// the uplink is a metered cellular contract (network weight 1.6) — the kind
// of intricate pricing the paper argues fixed-weight schedulers cannot
// capture. PaMO learns the pricing from comparisons; JCAB and FACT run with
// their native single-objective weights.
//
//	go run ./examples/trafficcam
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	uplinks := []float64{5e6, 10e6, 10e6, 20e6, 25e6, 30e6}
	sys := repro.NewSystemWithUplinks(10, uplinks, 314)

	truth := repro.UniformPreference()
	truth.W[repro.Energy] = 3.2  // tiered electricity
	truth.W[repro.Network] = 1.6 // metered cellular uplink
	truth.W[repro.Latency] = 0.4 // offline analytics: latency barely priced

	norm := repro.NewNormalizer(sys)
	score := func(out repro.Outcome) float64 { return truth.Benefit(norm.Normalize(out)) }

	// The city's operator answers comparisons with a little inconsistency.
	dm := repro.NewOracle(truth, 0.05, 1)

	res, err := repro.RunPaMO(sys, dm, repro.PaMOOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	pOut := repro.Evaluate(sys, res.Best.Decision)

	resPlus, err := repro.RunPaMOPlus(sys, truth, repro.PaMOOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	maxU := score(repro.Evaluate(sys, resPlus.Best.Decision))

	fmt.Println("method  true_benefit  normalized  power_W  uplink_Mbps  mAP")
	report := func(name string, out repro.Outcome) {
		u := score(out)
		fmt.Printf("%-6s  %12.4f  %10.3f  %7.1f  %11.1f  %.3f\n",
			name, u, repro.NormalizeBenefit(u, maxU, truth),
			out[repro.Energy], out[repro.Network]/1e6, out[repro.Accuracy])
	}
	report("PaMO+", repro.Evaluate(sys, resPlus.Best.Decision))
	report("PaMO", pOut)

	if d, err := repro.RunJCAB(sys, repro.JCABOptions{WEng: 1, Seed: 1}); err == nil {
		report("JCAB", repro.Evaluate(sys, d))
	}
	if d, err := repro.RunFACT(sys, repro.FACTOptions{Seed: 1}); err == nil {
		report("FACT", repro.Evaluate(sys, d))
	}
	fmt.Printf("\nPaMO asked the operator %d comparisons and never saw the tariff weights.\n", res.PrefPairs)
}
