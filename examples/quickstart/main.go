// Quickstart: schedule 6 video streams onto 4 edge servers with PaMO and
// compare the result against the JCAB and FACT baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A simulated edge video analytics system: 6 MOT16-like cameras and 4
	// servers with heterogeneous uplinks.
	sys := repro.NewSystem(6, 4, 42)

	// The hidden system pricing preference: energy is twice as expensive
	// as everything else (think tiered electricity pricing). PaMO never
	// sees these weights — it learns them from pairwise comparisons.
	truth := repro.UniformPreference()
	truth.W[repro.Energy] = 2

	// The decision maker answers "which outcome do you prefer?" from the
	// hidden preference.
	dm := repro.NewOracle(truth, 0, 7)

	res, err := repro.RunPaMO(sys, dm, repro.PaMOOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	norm := repro.NewNormalizer(sys)
	score := func(out repro.Outcome) float64 { return truth.Benefit(norm.Normalize(out)) }

	fmt.Println("PaMO decision (per video):")
	for i, cfg := range res.Best.Decision.Configs {
		fmt.Printf("  %-10s resolution=%4.0f fps=%2.0f\n", sys.Clips[i].Name, cfg.Resolution, cfg.FPS)
	}
	out := repro.Evaluate(sys, res.Best.Decision)
	fmt.Printf("\nPaMO measured outcomes: latency=%.3fs mAP=%.3f net=%.1fMbps compute=%.1fTFLOPS power=%.1fW\n",
		out[repro.Latency], out[repro.Accuracy], out[repro.Network]/1e6, out[repro.Compute], out[repro.Energy])
	fmt.Printf("PaMO true benefit: %.4f (asked %d comparisons, %d profiling runs)\n",
		score(out), res.PrefPairs, res.Profiles)
	fmt.Printf("Zero-jitter check: max simulated jitter = %.2g s\n\n", repro.MaxJitter(sys, res.Best.Decision))

	if d, err := repro.RunJCAB(sys, repro.JCABOptions{Seed: 7}); err == nil {
		fmt.Printf("JCAB true benefit: %.4f\n", score(repro.Evaluate(sys, d)))
	}
	if d, err := repro.RunFACT(sys, repro.FACTOptions{Seed: 7}); err == nil {
		fmt.Printf("FACT true benefit: %.4f\n", score(repro.Evaluate(sys, d)))
	}
}
