// Benchmarks that regenerate each figure of the paper's evaluation on a
// reduced budget, one testing.B target per table/figure (see DESIGN.md's
// experiment index). Run the full-size versions with cmd/pamo-bench.
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/exp"
	"repro/internal/pamo"
)

// fastOpts shrinks PaMO's budgets so the benchmark suite stays in CI range.
func fastOpts() pamo.Options {
	return pamo.Options{
		InitProfiles: 12, InitObs: 3, PrefPairs: 8, PrefPool: 10,
		Batch: 2, MCSamples: 12, CandPool: 8, MaxIter: 3,
	}
}

func BenchmarkFig2Profile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig2(io.Discard, 2024)
	}
}

func BenchmarkFig3Contention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig3(io.Discard)
	}
}

func BenchmarkFig4Jitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig4(io.Discard)
	}
}

func BenchmarkFig6Weights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig6(io.Discard, exp.Fig6Config{
			Videos: 6, Servers: 4, Weights: []float64{0.2, 3.2}, Reps: 1,
			Seed: 2024, PaMOOpt: fastOpts(),
		})
	}
}

func BenchmarkFig7Scale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig7(io.Discard, exp.Fig7Config{
			Nodes: []int{5}, Videos: []int{8}, Reps: 1,
			Seed: 2024, PaMOOpt: fastOpts(),
		})
	}
}

// BenchmarkAcqCandPool runs the Fig7 workload with the candidate pool as
// the scaling axis, isolating the selectBatch-dominated acquisition cost
// the shared-sample path optimizes (see DESIGN.md, "Performance").
func BenchmarkAcqCandPool(b *testing.B) {
	for _, pool := range []int{8, 64} {
		b.Run(fmt.Sprintf("pool%d", pool), func(b *testing.B) {
			opt := fastOpts()
			opt.CandPool = pool
			for i := 0; i < b.N; i++ {
				exp.Fig7(io.Discard, exp.Fig7Config{
					Nodes: []int{5}, Videos: []int{8}, Reps: 1,
					Seed: 2024, PaMOOpt: opt,
				})
			}
		})
	}
}

func BenchmarkFig8OutcomeR2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig8(io.Discard, exp.Fig8Config{
			TrainSizes: []int{200}, Reps: 2, Seed: 2024,
		})
	}
}

func BenchmarkFig9PrefAcc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig9(io.Discard, exp.Fig9Config{
			Pairs: []int{9}, Reps: 2, Seed: 2024,
		})
	}
}

func BenchmarkFig10aWeightSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig10a(io.Discard, exp.Fig10aConfig{
			Weights: []float64{0.2, 5}, Setups: [][2]int{{4, 6}},
			Seed: 2024, PaMOOpt: fastOpts(),
		})
	}
}

func BenchmarkFig10bThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig10b(io.Discard, exp.Fig10bConfig{
			Thresholds: []float64{0.1}, Setups: [][2]int{{4, 6}},
			Seed: 2024, PaMOOpt: fastOpts(),
		})
	}
}

// BenchmarkSparseScale is the 10×-observation variant of the Fig7 scale
// run: 240 profiling observations per clip push the outcome models into
// the regime the sparse-BO work targets. exact is the before path (exact
// GPs, fresh acquisition draws every epoch); sparse is the after path
// (inducing-point models + cross-epoch draw reuse). The full-size
// comparison and its gates live in BENCH_pr10.json (pamo-bench -sparse).
func BenchmarkSparseScale(b *testing.B) {
	for _, mode := range []struct {
		name  string
		exact bool
	}{{"exact", true}, {"sparse", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exp.SparseScale(exp.SparseScaleConfig{Fast: true, Exact: mode.exact}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationAcquisition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationAcq(io.Discard, exp.AblationAcqConfig{
			Videos: 5, Servers: 4, Reps: 1, Seed: 2024, PaMOOpt: fastOpts(),
		})
	}
}

func BenchmarkAblationEUBO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationEUBO(io.Discard, []int{6}, 2, 2024)
	}
}

func BenchmarkAblationPricing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Pricing(io.Discard, exp.PricingConfig{
			Videos: 5, Servers: 4, Reps: 1, Seed: 2024, PaMOOpt: fastOpts(),
		})
	}
}

func BenchmarkAblationZeroJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationZeroJitter(io.Discard, 8, 5, 2024)
	}
}

func BenchmarkAblationHungarian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationHungarian(io.Discard, 8, 5, 2024)
	}
}

func BenchmarkAblationFeasibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Feasibility(io.Discard, exp.FeasibilityConfig{Instances: 30, Seed: 2024})
	}
}

func BenchmarkSensitivityNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.NoiseSensitivity(io.Discard, exp.NoiseConfig{
			Videos: 5, Servers: 4, Levels: []float64{0.02}, Reps: 1,
			Seed: 2024, PaMOOpt: fastOpts(),
		})
	}
}

func BenchmarkExtensionROI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.ROI(io.Discard, exp.ROIConfig{
			Videos: 5, Servers: 4, Reps: 1, Seed: 2024, PaMOOpt: fastOpts(),
		})
	}
}
