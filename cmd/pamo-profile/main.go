// Command pamo-profile dumps the profiling surfaces of the simulated video
// clips (the data behind the paper's Figure 2) as CSV, optionally with
// measurement noise, for external plotting or model fitting.
//
// Usage:
//
//	pamo-profile -clips 2 -seed 2024 > surfaces.csv
//	pamo-profile -noisy -samples 5    # repeated noisy measurements
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/videosim"
)

func main() {
	clips := flag.Int("clips", 2, "number of clips to profile")
	seed := flag.Uint64("seed", 2024, "random seed")
	noisy := flag.Bool("noisy", false, "emit noisy profiler measurements instead of ground truth")
	samples := flag.Int("samples", 1, "measurements per configuration (with -noisy)")
	link := flag.Float64("link", 100e6, "link bandwidth for the latency column (bits/s)")
	events := flag.String("events", "", "write per-clip profiling telemetry as JSONL to this file")
	strict := flag.Bool("strict", false, "run the invariant checker in strict mode: a non-finite profiling measurement aborts with a non-zero exit")
	flag.Parse()

	var rec *obs.Recorder
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		rec = obs.NewRecorder(f)
		defer rec.Close()
	}
	measured := rec.Registry().Counter("profile_measurements_total")
	var chk *check.Checker
	if *strict || rec != nil {
		chk = check.New(*strict, rec)
	}
	audit := func(clip string, vals ...float64) {
		if err := chk.Finite("profile."+clip, vals...); err != nil {
			fmt.Fprintf(os.Stderr, "strict check: %v\n", err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	fmt.Fprintln(w, "clip,resolution,fps,map,latency_s,bandwidth_bps,compute_tflops,power_w")
	prof := videosim.NewProfiler(0.02, stats.NewRNG(*seed+1))
	// One root span ties the per-clip spans into a single trace in the
	// JSONL (and any downstream Perfetto export of it).
	rctx, root := rec.StartSpanCtx(context.Background(), "profile",
		obs.F("clips", float64(*clips)))
	for _, clip := range videosim.StandardClips(*clips, *seed) {
		_, sp := rec.StartSpanCtx(rctx, "profile.clip", obs.F("noisy", b2f(*noisy)))
		rows := 0
		for _, r := range videosim.Resolutions {
			for _, s := range videosim.FrameRates {
				cfg := videosim.Config{Resolution: r, FPS: s}
				if *noisy {
					for k := 0; k < *samples; k++ {
						m := prof.Measure(clip, cfg)
						lat := m.ProcTime + m.Bits / *link
						audit(clip.Name, m.Acc, lat, m.Bandwidth, m.Compute, m.Power)
						fmt.Fprintf(w, "%s,%g,%g,%.4f,%.5f,%.0f,%.3f,%.3f\n",
							clip.Name, r, s, m.Acc, lat, m.Bandwidth, m.Compute, m.Power)
						rows++
					}
				} else {
					lat := clip.ProcTime(r) + clip.BitsPerFrame(r) / *link
					audit(clip.Name, clip.Accuracy(cfg), lat, clip.Bandwidth(cfg), clip.Compute(cfg), clip.Power(cfg))
					fmt.Fprintf(w, "%s,%g,%g,%.4f,%.5f,%.0f,%.3f,%.3f\n",
						clip.Name, r, s, clip.Accuracy(cfg), lat, clip.Bandwidth(cfg), clip.Compute(cfg), clip.Power(cfg))
					rows++
				}
			}
		}
		measured.Add(uint64(rows))
		sp.Field("rows", float64(rows))
		sp.End()
	}
	root.End()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
