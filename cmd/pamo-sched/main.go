// Command pamo-sched runs one scheduling decision end to end: it builds a
// simulated EVA system, runs the selected scheduler (pamo, pamo+, jcab,
// fact, fixed), and prints the decision and its measured outcomes as JSON.
//
// With -faults it instead drives the online controller for -epochs epochs
// under the scripted fault scenario (server crashes, camera stalls, link
// degradation), printing a run summary that records replans, degraded
// epochs, and shed streams.
//
// Usage:
//
//	pamo-sched -videos 8 -servers 5 -method pamo -seed 7
//	pamo-sched -method jcab -weights 1,2,1,1,0.5
//	pamo-sched -method fixed -videos 6 -servers 2 -faults scenario.json -epochs 8
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/check"
	"repro/internal/eva"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/videosim"
)

type output struct {
	Method     string             `json:"method"`
	Videos     int                `json:"videos"`
	Servers    int                `json:"servers"`
	Configs    []configJSON       `json:"configs"`
	Assignment []int              `json:"assignment"`
	Outcomes   map[string]float64 `json:"outcomes"`
	Benefit    float64            `json:"benefit"`
	MaxJitter  float64            `json:"max_jitter_s"`
}

type configJSON struct {
	Video      string  `json:"video"`
	Resolution float64 `json:"resolution"`
	FPS        float64 `json:"fps"`
}

// faultRunOutput summarizes a controller run under fault injection.
type faultRunOutput struct {
	Method             string  `json:"method"`
	Videos             int     `json:"videos"`
	Servers            int     `json:"servers"`
	Epochs             int     `json:"epochs"`
	Scenario           string  `json:"scenario"`
	MeanBenefit        float64 `json:"mean_benefit"`
	Replans            int     `json:"replans"`
	ReplanFailures     int     `json:"replan_failures"`
	DegradedEpochs     int     `json:"degraded_epochs"`
	MaxDegradedStreams int     `json:"max_degraded_streams"`
	FaultEvents        int     `json:"fault_events"`
	FinalShed          []int   `json:"final_shed"`
}

func main() {
	videos := flag.Int("videos", 8, "number of video sources")
	servers := flag.Int("servers", 5, "number of edge servers")
	method := flag.String("method", "pamo", "pamo | pamo+ | jcab | fact | fixed")
	seed := flag.Uint64("seed", 1, "random seed")
	weights := flag.String("weights", "1,1,1,1,1", "true preference weights: latency,accuracy,network,compute,energy")
	events := flag.String("events", "", "stream telemetry of the run as JSONL to this file")
	perfetto := flag.String("perfetto", "", "write the run's span tree as Chrome trace-event JSON (open in Perfetto or chrome://tracing)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) on this address while running")
	faults := flag.String("faults", "", "fault scenario JSON: drive the online controller under injected failures")
	epochs := flag.Int("epochs", 12, "epochs to run with -faults")
	replanEvery := flag.Int("replan-every", 5, "replan period in epochs with -faults")
	shards := flag.Int("shards", 1, "cells for the sharded decide path with -faults (>1 needs a per-cell scheduler: fixed)")
	decideTimeout := flag.Duration("decide-timeout", 0, "per-attempt scheduler deadline with -faults (0 = unbounded)")
	strict := flag.Bool("strict", false, "run the exact invariant checker in strict mode: any feasibility, GP-guard, or zero-jitter violation aborts with a non-zero exit")
	flag.Parse()

	var rec *obs.Recorder
	if *events != "" || *metricsAddr != "" || *perfetto != "" {
		var sink io.Writer
		if *events != "" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "events: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			sink = f
		}
		// The Perfetto exporter replays the full event stream once the run
		// is over; a side buffer keeps it available whether or not the JSONL
		// also goes to disk.
		var buf *bytes.Buffer
		if *perfetto != "" {
			buf = &bytes.Buffer{}
			if sink != nil {
				sink = io.MultiWriter(sink, buf)
			} else {
				sink = buf
			}
		}
		rec = obs.NewRecorder(sink)
		// Registered before rec.Close so it runs after it: the export needs
		// the flushed, complete stream.
		defer func() {
			if buf == nil {
				return
			}
			evs, err := obs.ReadEvents(buf)
			if err == nil {
				var pf *os.File
				if pf, err = os.Create(*perfetto); err == nil {
					err = obs.WritePerfetto(pf, evs)
					if cerr := pf.Close(); err == nil {
						err = cerr
					}
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "perfetto: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "perfetto trace: %s (%d events)\n", *perfetto, len(evs))
		}()
		defer rec.Close()
		if *metricsAddr != "" {
			addr, err := rec.Registry().Serve(*metricsAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
		}
	}

	// The checker runs whenever it has somewhere to report: strict mode
	// turns violations into hard errors, while a telemetry run gets the
	// check_* metrics for free.
	var chk *check.Checker
	if *strict || rec != nil {
		chk = check.New(*strict, rec)
	}

	truth := objective.UniformPreference()
	for i, part := range strings.Split(*weights, ",") {
		if i >= objective.K {
			break
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad weight %q: %v\n", part, err)
			os.Exit(1)
		}
		truth.W[i] = v
	}

	sys := exp.NewSystem(*videos, *servers, *seed)
	norm := objective.NewNormalizer(sys)

	if *faults != "" {
		runFaulted(sys, truth, rec, chk, *method, *faults, *epochs, *replanEvery, *shards, *decideTimeout, *seed, *videos, *servers)
		return
	}

	var dec eva.Decision
	var err error
	switch *method {
	case "pamo":
		dm := &pref.Oracle{Pref: truth, Rng: stats.NewRNG(*seed)}
		var res *pamo.Result
		res, err = pamo.New(sys, dm, pamo.Options{Seed: *seed, UseEUBO: true, Obs: rec, Check: chk}).Run()
		if err == nil {
			dec = res.Best.Decision
		}
	case "pamo+":
		var res *pamo.Result
		res, err = pamo.New(sys, nil, pamo.Options{Seed: *seed, UseTruePref: true, TruePref: truth, Obs: rec, Check: chk}).Run()
		if err == nil {
			dec = res.Best.Decision
		}
	case "jcab":
		dec, err = baselines.JCAB(context.Background(), sys, baselines.JCABOptions{
			WAcc: truth.W[objective.Accuracy], WEng: truth.W[objective.Energy], Seed: *seed})
	case "fact":
		dec, err = baselines.FACT(context.Background(), sys, baselines.FACTOptions{
			WLat: truth.W[objective.Latency], WAcc: truth.W[objective.Accuracy], Seed: *seed})
	case "fixed":
		dec, err = fixedScheduler().Decide(context.Background(), sys, 0)
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s failed: %v\n", *method, err)
		os.Exit(1)
	}
	// Audit the final decision under its planned costs (strict-capable) and
	// its simulated jitter under the true costs (model error: relaxed).
	if err := chk.VerifyDecision(dec, sys.N()); err != nil {
		fmt.Fprintf(os.Stderr, "strict check: %v\n", err)
		os.Exit(1)
	}

	out := eva.Evaluate(sys, dec)
	nv := norm.Normalize(out)
	o := output{
		Method:     *method,
		Videos:     *videos,
		Servers:    *servers,
		Assignment: dec.Assign,
		Outcomes:   map[string]float64{},
		Benefit:    truth.Benefit(nv),
		MaxJitter:  eva.MaxJitter(sys, dec),
	}
	_ = chk.Relaxed().ObserveJitter(o.MaxJitter, dec.ZeroJit)
	for i, cfg := range dec.Configs {
		o.Configs = append(o.Configs, configJSON{
			Video: sys.Clips[i].Name, Resolution: cfg.Resolution, FPS: cfg.FPS})
	}
	for k := 0; k < objective.K; k++ {
		o.Outcomes[objective.Names[k]] = out[k]
	}
	emit(o)
}

func fixedScheduler() *runtime.FixedScheduler {
	return &runtime.FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}}
}

// schedulerFor builds the controller scheduler for -faults mode.
func schedulerFor(method string, truth objective.Preference, rec *obs.Recorder, chk *check.Checker, seed uint64) (runtime.Scheduler, error) {
	switch method {
	case "pamo":
		return &runtime.PaMOScheduler{
			DM:  &pref.Oracle{Pref: truth, Rng: stats.NewRNG(seed)},
			Opt: pamo.Options{Seed: seed, Obs: rec, Check: chk},
		}, nil
	case "pamo+":
		return &runtime.PaMOScheduler{
			Opt: pamo.Options{Seed: seed, UseTruePref: true, TruePref: truth, Obs: rec, Check: chk},
		}, nil
	case "jcab":
		return runtime.SchedulerFunc(func(ctx context.Context, s *objective.System, epoch int) (eva.Decision, error) {
			return baselines.JCAB(ctx, s, baselines.JCABOptions{
				WAcc: truth.W[objective.Accuracy], WEng: truth.W[objective.Energy], Seed: seed + uint64(epoch)})
		}), nil
	case "fact":
		return runtime.SchedulerFunc(func(ctx context.Context, s *objective.System, epoch int) (eva.Decision, error) {
			return baselines.FACT(ctx, s, baselines.FACTOptions{
				WLat: truth.W[objective.Latency], WAcc: truth.W[objective.Accuracy], Seed: seed + uint64(epoch)})
		}), nil
	case "fixed":
		return fixedScheduler(), nil
	}
	return nil, fmt.Errorf("unknown method %q", method)
}

func runFaulted(sys *objective.System, truth objective.Preference, rec *obs.Recorder, chk *check.Checker,
	method, scenarioPath string, epochs, replanEvery, shards int, decideTimeout time.Duration,
	seed uint64, videos, servers int) {
	sc, err := fault.LoadFile(scenarioPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faults: %v\n", err)
		os.Exit(1)
	}
	inj, err := fault.NewInjector(sc, sys.N(), sys.M())
	if err != nil {
		fmt.Fprintf(os.Stderr, "faults: %v\n", err)
		os.Exit(1)
	}
	sched, err := schedulerFor(method, truth, rec, chk, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c := &runtime.Controller{
		Sys:    sys,
		Sched:  sched,
		Truth:  truth,
		Norm:   objective.NewNormalizer(sys),
		Opt:    runtime.Options{ReplanEvery: replanEvery, DecideTimeout: decideTimeout, Shards: shards, Check: chk},
		Faults: inj,
		Obs:    rec,
	}
	trace, err := c.Run(context.Background(), epochs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
		os.Exit(1)
	}
	o := faultRunOutput{
		Method:      method,
		Videos:      videos,
		Servers:     servers,
		Epochs:      len(trace.Reports),
		Scenario:    sc.Name,
		MeanBenefit: trace.MeanBenefit(),
		FinalShed:   []int{},
	}
	for _, r := range trace.Reports {
		if r.Replanned {
			o.Replans++
		}
		if r.ReplanFailed {
			o.ReplanFailures++
		}
		if r.Degraded {
			o.DegradedEpochs++
		}
		if d := len(r.Shed) + len(r.Downgraded); d > o.MaxDegradedStreams {
			o.MaxDegradedStreams = d
		}
		o.FaultEvents += r.FaultEvents
	}
	if len(trace.Reports) > 0 {
		if last := trace.Reports[len(trace.Reports)-1]; last.Shed != nil {
			o.FinalShed = last.Shed
		}
	}
	emit(o)
}

func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
