// Command pamo-sched runs one scheduling decision end to end: it builds a
// simulated EVA system, runs the selected scheduler (pamo, pamo+, jcab,
// fact), and prints the decision and its measured outcomes as JSON.
//
// Usage:
//
//	pamo-sched -videos 8 -servers 5 -method pamo -seed 7
//	pamo-sched -method jcab -weights 1,2,1,1,0.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/eva"
	"repro/internal/exp"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/stats"
)

type output struct {
	Method     string             `json:"method"`
	Videos     int                `json:"videos"`
	Servers    int                `json:"servers"`
	Configs    []configJSON       `json:"configs"`
	Assignment []int              `json:"assignment"`
	Outcomes   map[string]float64 `json:"outcomes"`
	Benefit    float64            `json:"benefit"`
	MaxJitter  float64            `json:"max_jitter_s"`
}

type configJSON struct {
	Video      string  `json:"video"`
	Resolution float64 `json:"resolution"`
	FPS        float64 `json:"fps"`
}

func main() {
	videos := flag.Int("videos", 8, "number of video sources")
	servers := flag.Int("servers", 5, "number of edge servers")
	method := flag.String("method", "pamo", "pamo | pamo+ | jcab | fact")
	seed := flag.Uint64("seed", 1, "random seed")
	weights := flag.String("weights", "1,1,1,1,1", "true preference weights: latency,accuracy,network,compute,energy")
	events := flag.String("events", "", "stream telemetry of the pamo/pamo+ run as JSONL to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) on this address while running")
	flag.Parse()

	var rec *obs.Recorder
	if *events != "" || *metricsAddr != "" {
		if *events != "" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "events: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			rec = obs.NewRecorder(f)
		} else {
			rec = obs.NewRecorder(nil)
		}
		defer rec.Close()
		if *metricsAddr != "" {
			addr, err := rec.Registry().Serve(*metricsAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
		}
	}

	truth := objective.UniformPreference()
	for i, part := range strings.Split(*weights, ",") {
		if i >= objective.K {
			break
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad weight %q: %v\n", part, err)
			os.Exit(1)
		}
		truth.W[i] = v
	}

	sys := exp.NewSystem(*videos, *servers, *seed)
	norm := objective.NewNormalizer(sys)

	var dec eva.Decision
	var err error
	switch *method {
	case "pamo":
		dm := &pref.Oracle{Pref: truth, Rng: stats.NewRNG(*seed)}
		var res *pamo.Result
		res, err = pamo.New(sys, dm, pamo.Options{Seed: *seed, UseEUBO: true, Obs: rec}).Run()
		if err == nil {
			dec = res.Best.Decision
		}
	case "pamo+":
		var res *pamo.Result
		res, err = pamo.New(sys, nil, pamo.Options{Seed: *seed, UseTruePref: true, TruePref: truth, Obs: rec}).Run()
		if err == nil {
			dec = res.Best.Decision
		}
	case "jcab":
		dec, err = baselines.JCAB(sys, baselines.JCABOptions{
			WAcc: truth.W[objective.Accuracy], WEng: truth.W[objective.Energy], Seed: *seed})
	case "fact":
		dec, err = baselines.FACT(sys, baselines.FACTOptions{
			WLat: truth.W[objective.Latency], WAcc: truth.W[objective.Accuracy], Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s failed: %v\n", *method, err)
		os.Exit(1)
	}

	out := eva.Evaluate(sys, dec)
	nv := norm.Normalize(out)
	o := output{
		Method:     *method,
		Videos:     *videos,
		Servers:    *servers,
		Assignment: dec.Assign,
		Outcomes:   map[string]float64{},
		Benefit:    truth.Benefit(nv),
		MaxJitter:  eva.MaxJitter(sys, dec),
	}
	for i, cfg := range dec.Configs {
		o.Configs = append(o.Configs, configJSON{
			Video: sys.Clips[i].Name, Resolution: cfg.Resolution, FPS: cfg.FPS})
	}
	for k := 0; k < objective.K; k++ {
		o.Outcomes[objective.Names[k]] = out[k]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
