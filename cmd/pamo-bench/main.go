// Command pamo-bench regenerates the paper's evaluation figures on the
// simulated substrate. Each figure prints as an aligned text table whose
// rows/series correspond to the paper's plots.
//
// Usage:
//
//	pamo-bench -fig all            # every figure (minutes)
//	pamo-bench -fig 6 -reps 1      # one figure, fewer repetitions
//	pamo-bench -fig ablation       # the DESIGN.md ablation suite
//
// Figures: 2, 3, 4, 6, 7, 8, 9, 10a, 10b, ablation, pricing, feasibility,
// roi, noise, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/pamo"
	"repro/internal/plot"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2|3|4|6|7|8|9|10a|10b|ablation|pricing|feasibility|roi|noise|all")
	reps := flag.Int("reps", 0, "repetitions per data point (0 = paper default)")
	seed := flag.Uint64("seed", 2024, "base random seed")
	fast := flag.Bool("fast", false, "shrink PaMO budgets for a quick pass")
	fleet := flag.Bool("fleet", false, "skip the figures and run the fleet-scale replan benchmark (cold vs warm), writing a BENCH-style JSON report (-json path, default BENCH_pr5.json); -fast shrinks the cluster")
	shard := flag.Bool("shard", false, "skip the figures and run the sharded control-plane scaling benchmark (4096 streams x 256 servers across shard counts), writing a BENCH-style JSON report (-json path, default BENCH_pr6.json); -fast shrinks the cluster")
	churn := flag.Bool("churn", false, "skip the figures and run the 24h diurnal stream-churn benchmark (2x churn over a heterogeneous-speed cluster, cold full-resolve vs incremental admit/evict + warm-started models), writing a BENCH-style JSON report (-json path, default BENCH_pr9.json); -fast shrinks the day")
	sparse := flag.Bool("sparse", false, "skip the figures and run the 10x-observation sparse-BO benchmark (exact GPs + fresh draws vs inducing-point sparse GPs + cross-epoch draw reuse), writing a BENCH-style JSON report (-json path, default BENCH_pr10.json); -fast shrinks the instance")
	svg := flag.String("svg", "", "also write SVG charts into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	events := flag.String("events", "", "stream telemetry events of every PaMO run as JSONL to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) on this address while running")
	jsonOut := flag.String("json", "", "write a machine-readable run report (figure wall times + per-phase breakdown) to this file")
	strict := flag.Bool("strict", false, "run every PaMO invocation under the exact invariant checker in strict mode: feasibility or GP-guard violations abort the figure")
	flag.Parse()

	if *fleet {
		runFleet(os.Stdout, *jsonOut, *fast)
		return
	}
	if *shard {
		runShard(os.Stdout, *jsonOut, *fast)
		return
	}
	if *churn {
		runChurn(os.Stdout, *jsonOut, *fast)
		return
	}
	if *sparse {
		runSparse(os.Stdout, *jsonOut, *fast)
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	writeChart := func(name string, c *plot.Chart) {
		if *svg == "" || c == nil {
			return
		}
		if err := exp.WriteChart(*svg, name, c); err != nil {
			fmt.Fprintf(os.Stderr, "svg %s: %v\n", name, err)
		}
	}

	// The recorder (if any) is shared by every figure's PaMO runs, so the
	// phase breakdown in -json / -events covers the whole invocation.
	var rec *obs.Recorder
	var eventsFile *os.File
	if *events != "" || *metricsAddr != "" || *jsonOut != "" {
		if *events != "" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "events: %v\n", err)
				os.Exit(1)
			}
			eventsFile = f
			rec = obs.NewRecorder(f)
		} else {
			rec = obs.NewRecorder(nil) // aggregate-only: spans feed -json
		}
		if *metricsAddr != "" {
			addr, err := rec.Registry().Serve(*metricsAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
		}
	}

	var po pamo.Options
	if *fast {
		po = pamo.Options{InitProfiles: 12, InitObs: 3, PrefPairs: 10, PrefPool: 12,
			Batch: 2, MCSamples: 16, CandPool: 10, MaxIter: 5}
	}
	po.Obs = rec
	if *strict || rec != nil {
		po.Check = check.New(*strict, rec)
	}

	w := os.Stdout
	start := time.Now()
	type figTime struct {
		Figure  string  `json:"figure"`
		Seconds float64 `json:"seconds"`
		// Heap traffic of the figure (deltas of runtime.MemStats across the
		// run): how many objects and bytes it allocated, not what it
		// retained. The fleet-scale work made these first-class numbers.
		AllocObjects uint64 `json:"alloc_objects"`
		AllocBytes   uint64 `json:"alloc_bytes"`
	}
	var figTimes []figTime
	var ms0, ms1 runtime.MemStats
	run := func(name string, f func()) {
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		f()
		d := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		figTimes = append(figTimes, figTime{
			Figure: name, Seconds: d.Seconds(),
			AllocObjects: ms1.Mallocs - ms0.Mallocs,
			AllocBytes:   ms1.TotalAlloc - ms0.TotalAlloc,
		})
		fmt.Fprintf(w, "[%s done in %v]\n", name, d.Round(time.Millisecond))
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("2") {
		run("fig2", func() { exp.Fig2(w, *seed) })
	}
	if want("3") {
		run("fig3", func() {
			exp.Fig3(w)
			writeChart("fig3", exp.Fig3Chart())
		})
	}
	if want("4") {
		run("fig4", func() { exp.Fig4(w) })
	}
	var rows6 []exp.Fig6Row
	var rows7 []exp.Fig7Row
	if want("6") {
		run("fig6", func() {
			rows6 = exp.Fig6(w, exp.Fig6Config{Reps: *reps, Seed: *seed, PaMOOpt: po})
		})
	}
	if want("7") {
		run("fig7", func() {
			rows7 = exp.Fig7(w, exp.Fig7Config{Reps: *reps, Seed: *seed, PaMOOpt: po})
		})
	}
	if len(rows6)+len(rows7) > 0 {
		exp.Headline(w, rows6, rows7)
		for i, c := range exp.Fig6Charts(rows6) {
			writeChart(fmt.Sprintf("fig6_%d", i), c)
		}
		for i, c := range exp.Fig7Charts(rows7) {
			writeChart(fmt.Sprintf("fig7_%d", i), c)
		}
	}
	if want("8") {
		run("fig8", func() {
			writeChart("fig8", exp.Fig8Chart(exp.Fig8(w, exp.Fig8Config{Reps: *reps, Seed: *seed})))
		})
	}
	if want("9") {
		run("fig9", func() {
			writeChart("fig9", exp.Fig9Chart(exp.Fig9(w, exp.Fig9Config{Reps: *reps, Seed: *seed})))
		})
	}
	if want("10a") {
		run("fig10a", func() {
			writeChart("fig10a", exp.Fig10aChart(exp.Fig10a(w, exp.Fig10aConfig{Seed: *seed, PaMOOpt: po})))
		})
	}
	if want("10b") {
		run("fig10b", func() {
			writeChart("fig10b", exp.Fig10bChart(exp.Fig10b(w, exp.Fig10bConfig{Seed: *seed, PaMOOpt: po})))
		})
	}
	if want("ablation") {
		run("ablation", func() {
			exp.AblationAcq(w, exp.AblationAcqConfig{Reps: *reps, Seed: *seed, PaMOOpt: po})
			exp.AblationAcq(w, exp.AblationAcqConfig{Reps: *reps, Noise: 0.1, Seed: *seed, PaMOOpt: po})
			exp.AblationEUBO(w, nil, *reps, *seed)
			exp.AblationZeroJitter(w, 8, 5, *seed)
			exp.AblationHungarian(w, 8, 5, *seed)
			exp.AblationSparse(w, exp.AblationSparseConfig{Reps: *reps, Seed: *seed, Fast: *fast})
		})
	}
	if want("pricing") {
		run("pricing", func() {
			exp.Pricing(w, exp.PricingConfig{Reps: *reps, Seed: *seed, PaMOOpt: po})
		})
	}
	if want("feasibility") {
		run("feasibility", func() {
			exp.Feasibility(w, exp.FeasibilityConfig{Seed: *seed})
		})
	}
	if want("roi") {
		run("roi", func() {
			exp.ROI(w, exp.ROIConfig{Reps: *reps, Seed: *seed, PaMOOpt: po})
		})
	}
	if want("noise") {
		run("noise", func() {
			writeChart("noise", exp.NoiseChart(exp.NoiseSensitivity(w, exp.NoiseConfig{Reps: *reps, Seed: *seed, PaMOOpt: po})))
		})
	}
	total := time.Since(start)
	fmt.Fprintf(w, "\ntotal: %v\n", total.Round(time.Millisecond))

	if rec != nil {
		if *jsonOut != "" {
			writeReport(*jsonOut, *fig, *seed, *fast, total, figTimes, rec)
		}
		if err := rec.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "events: %v\n", err)
			os.Exit(1)
		}
		if eventsFile != nil {
			if err := eventsFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "events: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// runFleet benchmarks the fleet-scale control plane (exp.Fleet) twice —
// Cold, the pre-optimization path that re-solves Algorithm 1 from scratch
// and reallocates simulation buffers every epoch, and the default warm path
// (sched.Replanner incremental replans + cluster.Arena buffer reuse) — and
// writes the before/after comparison as a BENCH-style JSON report.
func runFleet(w *os.File, jsonPath string, fast bool) {
	cfg := exp.FleetConfig{}
	if fast {
		cfg = exp.FleetConfig{Streams: 32, Servers: 8, Epochs: 4}
	}
	bench := func(cold bool) testing.BenchmarkResult {
		c := cfg
		c.Cold = cold
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exp.Fleet(c)
			}
		})
	}
	rep := exp.Fleet(cfg) // one reported run: replan mix + determinism fingerprint
	coldRes := bench(true)
	warmRes := bench(false)

	fmt.Fprintf(w, "fleet: %d streams x %d servers x %d epochs (%d full + %d incremental replans, %d frames)\n",
		rep.Streams, rep.Servers, rep.Epochs, rep.FullReplans, rep.IncrementalReplans, rep.Frames)
	fmt.Fprintf(w, "  cold: %12d ns/op  %12d B/op  %9d allocs/op  (n=%d)\n",
		coldRes.NsPerOp(), coldRes.AllocedBytesPerOp(), coldRes.AllocsPerOp(), coldRes.N)
	fmt.Fprintf(w, "  warm: %12d ns/op  %12d B/op  %9d allocs/op  (n=%d)\n",
		warmRes.NsPerOp(), warmRes.AllocedBytesPerOp(), warmRes.AllocsPerOp(), warmRes.N)
	speedup := float64(coldRes.NsPerOp()) / float64(warmRes.NsPerOp())
	allocRatio := float64(coldRes.AllocsPerOp()) / float64(warmRes.AllocsPerOp())
	fmt.Fprintf(w, "  speedup: %.2fx ns/op, %.2fx allocs/op\n", speedup, allocRatio)

	if jsonPath == "" {
		jsonPath = "BENCH_pr5.json"
	}
	report := map[string]any{
		"benchmark": "BenchmarkFleetScale",
		"description": fmt.Sprintf(
			"fleet-scale control plane: %d streams x %d servers x %d drifting epochs with a flapping server; cold = full Algorithm 1 solve + fresh simulation buffers every epoch, warm = sched.Replanner incremental replans + cluster.Arena reuse",
			rep.Streams, rep.Servers, rep.Epochs),
		"command":              "pamo-bench -fleet  (equivalent: go test -run '^$' -bench BenchmarkFleetScale -benchtime 10x -benchmem .)",
		"cpu":                  fmt.Sprintf("%d-core %s/%s", runtime.NumCPU(), runtime.GOOS, runtime.GOARCH),
		"before_ns_per_op":     coldRes.NsPerOp(),
		"after_ns_per_op":      warmRes.NsPerOp(),
		"speedup":              math.Round(speedup*100) / 100,
		"before_allocs_per_op": coldRes.AllocsPerOp(),
		"after_allocs_per_op":  warmRes.AllocsPerOp(),
		"allocs_ratio":         math.Round(allocRatio*100) / 100,
		"before_bytes_per_op":  coldRes.AllocedBytesPerOp(),
		"after_bytes_per_op":   warmRes.AllocedBytesPerOp(),
		"full_replans":         rep.FullReplans,
		"incremental_replans":  rep.IncrementalReplans,
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet json: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "fleet json: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
}

// runShard benchmarks the sharded control plane (exp.ShardScale) across
// shard counts on the same 4096×256 drifting workload and writes the scaling
// table as a BENCH-style JSON report. The baseline row (Shards=1) is the
// serial Algorithm 1 solve behind the planner interface; each higher count
// partitions the streams into cells solved by concurrent per-cell schedulers
// whose server claims merge through the optimistic arbiter.
func runShard(w *os.File, jsonPath string, fast bool) {
	cfg := exp.ShardConfig{}
	counts := []int{1, 2, 4, 8}
	if fast {
		cfg = exp.ShardConfig{Streams: 512, Servers: 64, Epochs: 2}
		counts = []int{1, 2, 4}
	}

	type row struct {
		Shards            int     `json:"shards"`
		NsPerOp           int64   `json:"ns_per_op"`
		AllocsPerOp       int64   `json:"allocs_per_op"`
		BytesPerOp        int64   `json:"bytes_per_op"`
		ConflictsPerEpoch float64 `json:"conflicts_per_epoch"`
		RetriesPerEpoch   float64 `json:"retries_per_epoch"`
		RoundsPerEpoch    float64 `json:"rounds_per_epoch"`
		RetryHist         [8]int  `json:"commit_retry_hist"`
		Fallbacks         int     `json:"fallbacks"`
		Speedup           float64 `json:"speedup_vs_serial"`
	}
	rows := make([]row, 0, len(counts))
	var rep exp.ShardReport
	for _, shards := range counts {
		c := cfg
		c.Shards = shards
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exp.ShardScale(c)
			}
		})
		rep = exp.ShardScale(c) // one reported run for the protocol stats
		ep := float64(rep.Epochs)
		rows = append(rows, row{
			Shards: shards, NsPerOp: res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp(),
			ConflictsPerEpoch: float64(rep.Conflicts) / ep,
			RetriesPerEpoch:   float64(rep.Retries) / ep,
			RoundsPerEpoch:    float64(rep.Rounds) / ep,
			RetryHist:         rep.RetryHist, Fallbacks: rep.Fallbacks,
		})
		fmt.Fprintf(w, "shards=%d: %12d ns/op  %12d B/op  %9d allocs/op  conflicts/epoch=%.1f rounds/epoch=%.1f  (n=%d)\n",
			shards, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp(),
			float64(rep.Conflicts)/ep, float64(rep.Rounds)/ep, res.N)
	}
	base := float64(rows[0].NsPerOp)
	var speedup4 float64
	for i := range rows {
		rows[i].Speedup = math.Round(base/float64(rows[i].NsPerOp)*100) / 100
		if rows[i].Shards == 4 {
			speedup4 = rows[i].Speedup
		}
	}
	fmt.Fprintf(w, "  speedup at 4 shards: %.2fx ns/op vs serial\n", speedup4)

	if jsonPath == "" {
		jsonPath = "BENCH_pr6.json"
	}
	report := map[string]any{
		"benchmark": "BenchmarkShardScale",
		"description": fmt.Sprintf(
			"sharded control plane: %d streams x %d servers x %d drifting epochs; Shards=1 is the serial Algorithm 1 solve, higher counts run one PaMO-style cell scheduler per shard with optimistic cross-cell server claims resolved by the exact-rational arbiter",
			rep.Streams, rep.Servers, rep.Epochs),
		"command":             "pamo-bench -shard  (fast variant: pamo-bench -shard -fast)",
		"cpu":                 fmt.Sprintf("%d-core %s/%s", runtime.NumCPU(), runtime.GOOS, runtime.GOARCH),
		"rows":                rows,
		"speedup_at_4_shards": speedup4,
		"strict_violations":   rep.Violations,
		"notes": []string{
			"every benchmarked epoch is audited by the strict exact-constraint checker; a single Const1/Const2 violation on a shared server panics the run",
			"on a single-core host the speedup is algorithmic work reduction — per-cell grouping is O((m/C)^2) and each cell assigns over a small rotated candidate-column window — so multicore hosts see additional parallel headroom on top of these numbers",
			"cell-rotated candidate ordering decorrelates the cells' preferred servers; conflicts/epoch stays near zero on this workload, and the conflict/retry machinery is exercised by the unit and fuzz suites instead",
		},
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard json: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "shard json: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
}

// runChurn benchmarks the 24h diurnal churn day (exp.Churn) twice — Cold,
// where every churn epoch invalidates the running decision and pays a full
// Algorithm 2 resolve with cold profiling, and the default warm path, where
// the incremental admit/evict fast path absorbs churn into the frozen
// grouping and periodic full refreshes warm-start arrival models from the
// bank — and writes the comparison plus the admit-hit-rate gate as a
// BENCH-style JSON report. Both runs are audited end to end by the strict
// exact-constraint checker (speed-scaled for the heterogeneous cluster);
// a single violation aborts the benchmark.
func runChurn(w *os.File, jsonPath string, fast bool) {
	cfg := exp.ChurnConfig{}
	if fast {
		cfg = exp.ChurnConfig{Epochs: 24, FullEvery: 8}
	}
	bench := func(cold bool) testing.BenchmarkResult {
		c := cfg
		c.Cold = cold
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exp.Churn(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	rep, err := exp.Churn(cfg) // one reported warm run: churn mix + hit rate
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		os.Exit(1)
	}
	coldRep, err := exp.Churn(exp.ChurnConfig{
		Epochs: cfg.Epochs, FullEvery: cfg.FullEvery, Cold: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn cold: %v\n", err)
		os.Exit(1)
	}
	coldRes := bench(true)
	warmRes := bench(false)

	fmt.Fprintf(w, "churn: %d initial streams x %d servers x %d epochs (%d churn ops over %d epochs, %d final streams)\n",
		rep.Videos, rep.Servers, rep.Epochs, rep.ChurnOps, rep.ChurnEpochs, rep.FinalStreams)
	fmt.Fprintf(w, "  admit hit rate: %.3f (%d fast, %d resolve)\n", rep.AdmitHitRate, rep.FastEpochs, rep.ResolveEpochs)
	fmt.Fprintf(w, "  model seeding: %d bank hits, %d warm starts, %d cold starts; %d profiles (cold day: %d)\n",
		rep.BankHits, rep.WarmStarts, rep.ColdStarts, rep.Profiles, coldRep.Profiles)
	fmt.Fprintf(w, "  cold: %12d ns/op  %12d B/op  %9d allocs/op  (n=%d)\n",
		coldRes.NsPerOp(), coldRes.AllocedBytesPerOp(), coldRes.AllocsPerOp(), coldRes.N)
	fmt.Fprintf(w, "  warm: %12d ns/op  %12d B/op  %9d allocs/op  (n=%d)\n",
		warmRes.NsPerOp(), warmRes.AllocedBytesPerOp(), warmRes.AllocsPerOp(), warmRes.N)
	speedup := float64(coldRes.NsPerOp()) / float64(warmRes.NsPerOp())
	fmt.Fprintf(w, "  speedup: %.2fx ns/op\n", speedup)

	if jsonPath == "" {
		jsonPath = "BENCH_pr9.json"
	}
	report := map[string]any{
		"benchmark": "BenchmarkChurnDay",
		"description": fmt.Sprintf(
			"24h diurnal stream churn at 2x rate over a heterogeneous-speed cluster (%d initial streams x %d servers x %d epochs); cold = every churn epoch invalidates the decision and pays a full Algorithm 2 resolve with cold profiling, warm = exact Const2 admit/evict into the frozen grouping + periodic full refreshes that warm-start arrival models from the bank",
			rep.Videos, rep.Servers, rep.Epochs),
		"command":              "pamo-bench -churn  (fast variant: pamo-bench -churn -fast)",
		"cpu":                  fmt.Sprintf("%d-core %s/%s", runtime.NumCPU(), runtime.GOOS, runtime.GOARCH),
		"before_ns_per_op":     coldRes.NsPerOp(),
		"after_ns_per_op":      warmRes.NsPerOp(),
		"speedup":              math.Round(speedup*100) / 100,
		"before_allocs_per_op": coldRes.AllocsPerOp(),
		"after_allocs_per_op":  warmRes.AllocsPerOp(),
		"before_bytes_per_op":  coldRes.AllocedBytesPerOp(),
		"after_bytes_per_op":   warmRes.AllocedBytesPerOp(),
		"admit_hit_rate":       math.Round(rep.AdmitHitRate*1000) / 1000,
		"churn_ops":            rep.ChurnOps,
		"churn_epochs":         rep.ChurnEpochs,
		"fast_epochs":          rep.FastEpochs,
		"resolve_epochs":       rep.ResolveEpochs,
		"bank_hits":            rep.BankHits,
		"warm_starts":          rep.WarmStarts,
		"cold_starts":          rep.ColdStarts,
		"profiles_warm_day":    rep.Profiles,
		"profiles_cold_day":    coldRep.Profiles,
		"degraded_epochs":      rep.DegradedEpochs,
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn json: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "churn json: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
}

// runSparse benchmarks the 10×-observation scale scenario (exp.SparseScale)
// twice — Exact, the pre-optimization path whose outcome GPs pay cubic
// factorizations and quadratic per-observation updates at 240 profiles per
// clip and re-sample the acquisition's joint draws every epoch, and the
// default sparse path (inducing-point SoR/FITC models under the MaxObs
// forgetting budget + the cross-epoch draw cache) — and writes the
// comparison plus a paired regret measurement as a BENCH-style JSON report.
func runSparse(w *os.File, jsonPath string, fast bool) {
	cfg := exp.SparseScaleConfig{Fast: fast}
	bench := func(exact bool) testing.BenchmarkResult {
		c := cfg
		c.Exact = exact
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exp.SparseScale(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	rep, err := exp.SparseScale(cfg) // one reported sparse run: model + reuse counters
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparse: %v\n", err)
		os.Exit(1)
	}
	exactRes := bench(true)
	sparseRes := bench(false)

	// Paired regret: the same instances solved once with exact models and
	// once with sparse ones; regret_r = exact benefit − sparse benefit.
	regretReps := 3
	if fast {
		regretReps = 2
	}
	var meanRegret float64
	for r := 0; r < regretReps; r++ {
		c := cfg
		c.Epochs = 1
		c.Seed = 2024 + uint64(r)*997
		c.Exact = true
		er, err := exp.SparseScale(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sparse regret: %v\n", err)
			os.Exit(1)
		}
		c.Exact = false
		sr, err := exp.SparseScale(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sparse regret: %v\n", err)
			os.Exit(1)
		}
		meanRegret += (er.Benefit - sr.Benefit) / float64(regretReps)
	}

	fmt.Fprintf(w, "sparse: %d videos x %d servers, %d profiles/clip, %d epochs (m=%d)\n",
		rep.Videos, rep.Servers, rep.ObsPerClip, rep.Epochs, rep.Inducing)
	fmt.Fprintf(w, "  model lifecycle: %d observations, %d inducing adds, %d forgets; %d acquisition rounds reused cached draws\n",
		rep.GPObs, rep.GPInducing, rep.GPForgets, rep.DrawsReused)
	fmt.Fprintf(w, "  exact:  %12d ns/op  %12d B/op  %9d allocs/op  (n=%d)\n",
		exactRes.NsPerOp(), exactRes.AllocedBytesPerOp(), exactRes.AllocsPerOp(), exactRes.N)
	fmt.Fprintf(w, "  sparse: %12d ns/op  %12d B/op  %9d allocs/op  (n=%d)\n",
		sparseRes.NsPerOp(), sparseRes.AllocedBytesPerOp(), sparseRes.AllocsPerOp(), sparseRes.N)
	speedup := float64(exactRes.NsPerOp()) / float64(sparseRes.NsPerOp())
	fmt.Fprintf(w, "  speedup: %.2fx ns/op; mean regret vs exact over %d paired instances: %.4f\n",
		speedup, regretReps, meanRegret)

	if jsonPath == "" {
		jsonPath = "BENCH_pr10.json"
	}
	report := map[string]any{
		"benchmark": "BenchmarkSparseScale",
		"description": fmt.Sprintf(
			"10x-observation BO scale run (%d videos x %d servers, %d profiles/clip, %d re-solve epochs); before = exact GPs (cubic refits, quadratic updates) + fresh joint draws every epoch, after = inducing-point sparse GPs (SoR/FITC, m=%d, MaxObs forgetting pinned at the profile count) + cross-epoch acquisition draw reuse",
			rep.Videos, rep.Servers, rep.ObsPerClip, rep.Epochs, rep.Inducing),
		"command":              "pamo-bench -sparse  (fast variant: pamo-bench -sparse -fast)",
		"cpu":                  fmt.Sprintf("%d-core %s/%s", runtime.NumCPU(), runtime.GOOS, runtime.GOARCH),
		"before_ns_per_op":     exactRes.NsPerOp(),
		"after_ns_per_op":      sparseRes.NsPerOp(),
		"speedup":              math.Round(speedup*100) / 100,
		"before_allocs_per_op": exactRes.AllocsPerOp(),
		"after_allocs_per_op":  sparseRes.AllocsPerOp(),
		"before_bytes_per_op":  exactRes.AllocedBytesPerOp(),
		"after_bytes_per_op":   sparseRes.AllocedBytesPerOp(),
		"obs_per_clip":         rep.ObsPerClip,
		"epochs":               rep.Epochs,
		"inducing":             rep.Inducing,
		"gp_obs_total":         rep.GPObs,
		"gp_inducing_total":    rep.GPInducing,
		"gp_forget_total":      rep.GPForgets,
		"draws_reused_total":   rep.DrawsReused,
		"mean_regret":          math.Round(meanRegret*1e6) / 1e6,
		"regret_reps":          regretReps,
		"notes": []string{
			"before = exact outcome GPs: every per-clip metric model pays an O(n^3) initial factorization at n=240 and O(n^2) incremental updates per BO observation, and every re-solve epoch re-samples the acquisition's joint draws",
			"after = gp.SparseGP (SoR mean + FITC variance, greedy pivoted-Cholesky inducing selection, m=64) with the MaxObs forgetting budget pinned at the profile count, plus acq.DrawCache reuse across identical re-solve epochs",
			"mean_regret is the paired true-benefit gap exact - sparse on identical instances; on these seeds both model families chose identical schedules (the configuration space is a coarse encode grid), and FuzzSparseVsExactGP bounds the posterior divergence analytically",
			"the sparse path allocates more objects (per-observation phi rows, forget-path refactorizations) but ~6x fewer bytes; the exp.AblationSparse table sweeps the inducing budget m for the regret/speedup trade-off",
		},
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparse json: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "sparse json: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
}

// phaseEntry is one row of the report's per-phase breakdown, derived from
// the recorder's span aggregates across every PaMO run of the invocation.
type phaseEntry struct {
	Span    string  `json:"span"`
	Count   int     `json:"count"`
	TotalS  float64 `json:"total_s"`
	MeanS   float64 `json:"mean_s"`
	MinS    float64 `json:"min_s"`
	MaxS    float64 `json:"max_s"`
	P50S    float64 `json:"p50_s"`
	P95S    float64 `json:"p95_s"`
	P99S    float64 `json:"p99_s"`
	PctWall float64 `json:"pct_wall"`
}

func writeReport(path, fig string, seed uint64, fast bool, total time.Duration, figTimes any, rec *obs.Recorder) {
	spans := rec.SpanSummary()
	// Quantiles come from the recorder's per-span duration histograms;
	// an empty histogram yields NaN, which JSON cannot carry — report 0.
	quant := func(name string, q float64) float64 {
		v := rec.SpanHistogram(name).Quantile(q)
		if math.IsNaN(v) {
			return 0
		}
		return v
	}
	phases := make([]phaseEntry, 0, len(spans))
	for _, st := range spans {
		pct := 0.0
		if total > 0 {
			pct = 100 * st.Total / total.Seconds()
		}
		phases = append(phases, phaseEntry{
			Span: st.Name, Count: st.Count, TotalS: st.Total,
			MeanS: st.Mean(), MinS: st.Min, MaxS: st.Max,
			P50S: quant(st.Name, 0.50), P95S: quant(st.Name, 0.95), P99S: quant(st.Name, 0.99),
			PctWall: pct,
		})
	}
	report := map[string]any{
		"command":       "pamo-bench",
		"fig":           fig,
		"seed":          seed,
		"fast":          fast,
		"total_seconds": total.Seconds(),
		"figures":       figTimes,
		"phases":        phases,
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		os.Exit(1)
	}
}
