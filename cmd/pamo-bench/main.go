// Command pamo-bench regenerates the paper's evaluation figures on the
// simulated substrate. Each figure prints as an aligned text table whose
// rows/series correspond to the paper's plots.
//
// Usage:
//
//	pamo-bench -fig all            # every figure (minutes)
//	pamo-bench -fig 6 -reps 1      # one figure, fewer repetitions
//	pamo-bench -fig ablation       # the DESIGN.md ablation suite
//
// Figures: 2, 3, 4, 6, 7, 8, 9, 10a, 10b, ablation, pricing, feasibility,
// roi, noise, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/pamo"
	"repro/internal/plot"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2|3|4|6|7|8|9|10a|10b|ablation|pricing|feasibility|roi|noise|all")
	reps := flag.Int("reps", 0, "repetitions per data point (0 = paper default)")
	seed := flag.Uint64("seed", 2024, "base random seed")
	fast := flag.Bool("fast", false, "shrink PaMO budgets for a quick pass")
	svg := flag.String("svg", "", "also write SVG charts into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	events := flag.String("events", "", "stream telemetry events of every PaMO run as JSONL to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) on this address while running")
	jsonOut := flag.String("json", "", "write a machine-readable run report (figure wall times + per-phase breakdown) to this file")
	strict := flag.Bool("strict", false, "run every PaMO invocation under the exact invariant checker in strict mode: feasibility or GP-guard violations abort the figure")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	writeChart := func(name string, c *plot.Chart) {
		if *svg == "" || c == nil {
			return
		}
		if err := exp.WriteChart(*svg, name, c); err != nil {
			fmt.Fprintf(os.Stderr, "svg %s: %v\n", name, err)
		}
	}

	// The recorder (if any) is shared by every figure's PaMO runs, so the
	// phase breakdown in -json / -events covers the whole invocation.
	var rec *obs.Recorder
	var eventsFile *os.File
	if *events != "" || *metricsAddr != "" || *jsonOut != "" {
		if *events != "" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "events: %v\n", err)
				os.Exit(1)
			}
			eventsFile = f
			rec = obs.NewRecorder(f)
		} else {
			rec = obs.NewRecorder(nil) // aggregate-only: spans feed -json
		}
		if *metricsAddr != "" {
			addr, err := rec.Registry().Serve(*metricsAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
		}
	}

	var po pamo.Options
	if *fast {
		po = pamo.Options{InitProfiles: 12, InitObs: 3, PrefPairs: 10, PrefPool: 12,
			Batch: 2, MCSamples: 16, CandPool: 10, MaxIter: 5}
	}
	po.Obs = rec
	if *strict || rec != nil {
		po.Check = check.New(*strict, rec)
	}

	w := os.Stdout
	start := time.Now()
	type figTime struct {
		Figure  string  `json:"figure"`
		Seconds float64 `json:"seconds"`
	}
	var figTimes []figTime
	run := func(name string, f func()) {
		t0 := time.Now()
		f()
		d := time.Since(t0)
		figTimes = append(figTimes, figTime{Figure: name, Seconds: d.Seconds()})
		fmt.Fprintf(w, "[%s done in %v]\n", name, d.Round(time.Millisecond))
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("2") {
		run("fig2", func() { exp.Fig2(w, *seed) })
	}
	if want("3") {
		run("fig3", func() {
			exp.Fig3(w)
			writeChart("fig3", exp.Fig3Chart())
		})
	}
	if want("4") {
		run("fig4", func() { exp.Fig4(w) })
	}
	var rows6 []exp.Fig6Row
	var rows7 []exp.Fig7Row
	if want("6") {
		run("fig6", func() {
			rows6 = exp.Fig6(w, exp.Fig6Config{Reps: *reps, Seed: *seed, PaMOOpt: po})
		})
	}
	if want("7") {
		run("fig7", func() {
			rows7 = exp.Fig7(w, exp.Fig7Config{Reps: *reps, Seed: *seed, PaMOOpt: po})
		})
	}
	if len(rows6)+len(rows7) > 0 {
		exp.Headline(w, rows6, rows7)
		for i, c := range exp.Fig6Charts(rows6) {
			writeChart(fmt.Sprintf("fig6_%d", i), c)
		}
		for i, c := range exp.Fig7Charts(rows7) {
			writeChart(fmt.Sprintf("fig7_%d", i), c)
		}
	}
	if want("8") {
		run("fig8", func() {
			writeChart("fig8", exp.Fig8Chart(exp.Fig8(w, exp.Fig8Config{Reps: *reps, Seed: *seed})))
		})
	}
	if want("9") {
		run("fig9", func() {
			writeChart("fig9", exp.Fig9Chart(exp.Fig9(w, exp.Fig9Config{Reps: *reps, Seed: *seed})))
		})
	}
	if want("10a") {
		run("fig10a", func() {
			writeChart("fig10a", exp.Fig10aChart(exp.Fig10a(w, exp.Fig10aConfig{Seed: *seed, PaMOOpt: po})))
		})
	}
	if want("10b") {
		run("fig10b", func() {
			writeChart("fig10b", exp.Fig10bChart(exp.Fig10b(w, exp.Fig10bConfig{Seed: *seed, PaMOOpt: po})))
		})
	}
	if want("ablation") {
		run("ablation", func() {
			exp.AblationAcq(w, exp.AblationAcqConfig{Reps: *reps, Seed: *seed, PaMOOpt: po})
			exp.AblationAcq(w, exp.AblationAcqConfig{Reps: *reps, Noise: 0.1, Seed: *seed, PaMOOpt: po})
			exp.AblationEUBO(w, nil, *reps, *seed)
			exp.AblationZeroJitter(w, 8, 5, *seed)
			exp.AblationHungarian(w, 8, 5, *seed)
		})
	}
	if want("pricing") {
		run("pricing", func() {
			exp.Pricing(w, exp.PricingConfig{Reps: *reps, Seed: *seed, PaMOOpt: po})
		})
	}
	if want("feasibility") {
		run("feasibility", func() {
			exp.Feasibility(w, exp.FeasibilityConfig{Seed: *seed})
		})
	}
	if want("roi") {
		run("roi", func() {
			exp.ROI(w, exp.ROIConfig{Reps: *reps, Seed: *seed, PaMOOpt: po})
		})
	}
	if want("noise") {
		run("noise", func() {
			writeChart("noise", exp.NoiseChart(exp.NoiseSensitivity(w, exp.NoiseConfig{Reps: *reps, Seed: *seed, PaMOOpt: po})))
		})
	}
	total := time.Since(start)
	fmt.Fprintf(w, "\ntotal: %v\n", total.Round(time.Millisecond))

	if rec != nil {
		if *jsonOut != "" {
			writeReport(*jsonOut, *fig, *seed, *fast, total, figTimes, rec.SpanSummary())
		}
		if err := rec.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "events: %v\n", err)
			os.Exit(1)
		}
		if eventsFile != nil {
			if err := eventsFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "events: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// phaseEntry is one row of the report's per-phase breakdown, derived from
// the recorder's span aggregates across every PaMO run of the invocation.
type phaseEntry struct {
	Span    string  `json:"span"`
	Count   int     `json:"count"`
	TotalS  float64 `json:"total_s"`
	MeanS   float64 `json:"mean_s"`
	MinS    float64 `json:"min_s"`
	MaxS    float64 `json:"max_s"`
	PctWall float64 `json:"pct_wall"`
}

func writeReport(path, fig string, seed uint64, fast bool, total time.Duration, figTimes any, spans []obs.SpanStat) {
	phases := make([]phaseEntry, 0, len(spans))
	for _, st := range spans {
		pct := 0.0
		if total > 0 {
			pct = 100 * st.Total / total.Seconds()
		}
		phases = append(phases, phaseEntry{
			Span: st.Name, Count: st.Count, TotalS: st.Total,
			MeanS: st.Mean(), MinS: st.Min, MaxS: st.Max, PctWall: pct,
		})
	}
	report := map[string]any{
		"command":       "pamo-bench",
		"fig":           fig,
		"seed":          seed,
		"fast":          fast,
		"total_seconds": total.Seconds(),
		"figures":       figTimes,
		"phases":        phases,
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		os.Exit(1)
	}
}
