// Command pamo-controller runs the scheduling control plane as a daemon:
// the controller owns the decide loop, liveness inference, and stream
// churn, while per-server evaluation is farmed out to agents over
// HTTP/JSON (see cmd/pamo-agent). Agents heartbeat by carrying work; a
// server whose agent goes quiet for -missed-beats epochs is inferred down
// and planned around, exactly like an injected crash.
//
// Two fleet modes:
//
//   - real agents: -addr serves the wire API, -agents N waits for N
//     registrations before the run starts;
//   - hollow agents: -hollow N runs N in-process agents over a loopback
//     transport (no sockets), which scales to thousands of servers and
//     turns any fault scenario into a chaos script (-chaos kills and
//     restarts the hollow agent processes, so every outage must be
//     inferred from silence).
//
// Usage:
//
//	pamo-controller -videos 8 -servers 4 -hollow 4 -epochs 12
//	pamo-controller -videos 16 -servers 64 -hollow 64 -faults sc.json -chaos -missed-beats 1 -strict
//	pamo-controller -videos 6 -servers 3 -hollow 3 -epochs 10 -compare-inprocess
//	pamo-controller -videos 6 -servers 3 -hollow 3 -epochs 24 -churn 0.5 -incremental -strict
//	pamo-controller -addr :7070 -servers 4 -agents 4 -epochs 12
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"flag"

	"repro/internal/check"
	"repro/internal/ctlplane"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/videosim"
)

// wireRunOutput is the run summary printed as JSON on exit.
type wireRunOutput struct {
	Videos         int     `json:"videos"`
	Servers        int     `json:"servers"`
	Epochs         int     `json:"epochs"`
	HollowAgents   int     `json:"hollow_agents"`
	Scenario       string  `json:"scenario,omitempty"`
	Chaos          bool    `json:"chaos"`
	MeanBenefit    float64 `json:"mean_benefit"`
	Replans        int     `json:"replans"`
	DegradedEpochs int     `json:"degraded_epochs"`
	FaultEvents    int     `json:"fault_events"`
	MinHealthy     int     `json:"min_healthy"`
	FinalHealthy   int     `json:"final_healthy"`

	// Wire-plane counters, straight from the metric registry.
	Results           uint64 `json:"results_total"`
	EvalTimeouts      uint64 `json:"eval_timeouts_total"`
	MarksDown         uint64 `json:"marks_down_total"`
	MarksUp           uint64 `json:"marks_up_total"`
	StaleResults      uint64 `json:"stale_results_total"`
	StaleIncarnations uint64 `json:"stale_incarnations_total"`
	StrictViolations  uint64 `json:"strict_violations"`
	StreamOps         uint64 `json:"stream_ops_total"`
	ChurnOps          uint64 `json:"churn_ops_total"`
	ChurnFast         uint64 `json:"churn_fast_total"`
	ChurnResolve      uint64 `json:"churn_resolve_total"`

	// Set (and gating) only with -compare-inprocess.
	WireMatchesInProcess *bool `json:"wire_matches_inprocess,omitempty"`
}

func main() {
	videos := flag.Int("videos", 8, "number of video sources")
	servers := flag.Int("servers", 4, "number of edge servers")
	seed := flag.Uint64("seed", 1, "random seed (system generation and retry jitter)")
	epochs := flag.Int("epochs", 12, "control epochs to run")
	replanEvery := flag.Int("replan-every", 5, "replan period in epochs")
	addr := flag.String("addr", "", "serve the wire API on this address for external agents")
	agents := flag.Int("agents", 0, "with -addr: wait for this many agent registrations before running")
	hollow := flag.Int("hollow", 0, "run this many in-process hollow agents over the loopback transport")
	missedBeats := flag.Int("missed-beats", 2, "epochs of silence before a server is inferred down")
	evalTimeout := flag.Duration("eval-timeout", 5*time.Second, "per-server wire evaluation deadline")
	epochInterval := flag.Duration("epoch-interval", 0, "wall-clock pacing between epochs (0 = as fast as possible)")
	faults := flag.String("faults", "", "fault scenario JSON")
	churn := flag.Float64("churn", 0, "mean stream churn events per epoch at the diurnal peak, driven through the wire API (0 = off)")
	churnPeriod := flag.Int("churn-period", 0, "diurnal churn period in epochs (default: the run length)")
	incremental := flag.Bool("incremental", false, "amortized replan fast path: churn epochs admit/evict into the frozen grouping instead of paying a full resolve")
	chaos := flag.Bool("chaos", false, "with -hollow and -faults: act out server events by killing/restarting hollow agents (liveness must be inferred)")
	strict := flag.Bool("strict", false, "strict invariant checker: any install-time violation aborts with a non-zero exit")
	compare := flag.Bool("compare-inprocess", false, "after the wire run, repeat it in-process and fail unless the traces are byte-identical")
	events := flag.String("events", "", "stream telemetry of the run as JSONL to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) on this address while running")
	flag.Parse()

	if *hollow == 0 && *addr == "" {
		fmt.Fprintln(os.Stderr, "need a fleet: -hollow N for in-process agents or -addr plus -agents for real ones")
		os.Exit(2)
	}
	if *chaos && (*hollow == 0 || *faults == "") {
		fmt.Fprintln(os.Stderr, "-chaos needs both -hollow and -faults")
		os.Exit(2)
	}
	if *compare && *chaos {
		// Inferred detection lags a real kill by the missed-beat window, so
		// a chaos run is not byte-comparable to oracle fault injection.
		fmt.Fprintln(os.Stderr, "-compare-inprocess requires oracle health (drop -chaos)")
		os.Exit(2)
	}

	var sink io.Writer
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "events: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	rec := obs.NewRecorder(sink)
	defer rec.Close()
	if *metricsAddr != "" {
		maddr, err := rec.Registry().Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", maddr)
	}

	var sc *fault.Scenario
	if *faults != "" {
		var err error
		if sc, err = fault.LoadFile(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(1)
		}
	}

	if *compare && (*churn > 0 || *incremental) {
		// The in-process replay has no wire client to re-post churn
		// through, and the fast path's counters are not part of the
		// byte-compared reports anyway.
		fmt.Fprintln(os.Stderr, "-compare-inprocess requires the plain path (drop -churn/-incremental)")
		os.Exit(2)
	}

	sys := exp.NewSystem(*videos, *servers, *seed)
	rt := newRuntime(sys, rec, *strict, *replanEvery, *seed)
	rt.Opt.Incremental = *incremental

	opt := ctlplane.Options{
		MissedBeats:   *missedBeats,
		EvalTimeout:   *evalTimeout,
		EpochInterval: *epochInterval,
		Obs:           rec,
	}
	var chaosDriver *ctlplane.ChaosDriver
	switch {
	case sc == nil:
		// No faults: liveness inference runs against a quiet fleet.
	case *chaos:
		// Liveness events become real agent kills; only the environment
		// half (stalls, link degradation) is injected. The controller must
		// infer every crash from missed beats.
		_, env := sc.Split()
		inj, err := fault.NewInjector(env, sys.N(), sys.M())
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(1)
		}
		opt.Env = inj
	default:
		// Oracle mode: the whole scenario is injected, as in-process runs
		// do. Useful for byte-exact cross-checks of the wire plane.
		inj, err := fault.NewInjector(sc, sys.N(), sys.M())
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(1)
		}
		opt.Env = inj
		opt.OracleHealth = true
	}

	ctl := ctlplane.New(rt, opt)

	var churnDriver *ctlplane.ChurnDriver
	if *churn > 0 {
		names := make([]string, sys.M())
		for i, clip := range sys.Clips {
			names[i] = clip.Name
		}
		script := fault.GenerateChurn(fault.ChurnOptions{
			Epochs:       *epochs,
			Initial:      names,
			Rate:         *churn,
			PeriodEpochs: *churnPeriod,
			MaxStreams:   2 * *videos,
			Seed:         *seed,
		})
		// The driver posts through the same HTTP surface external cameras
		// would use; the loopback transport just skips the sockets.
		churnDriver = ctlplane.NewChurnDriver(ctlplane.LoopbackClient(ctl, *seed), script, *seed)
		ctl.OnEpoch(churnDriver.OnEpoch)
	}

	var fleet *ctlplane.HollowFleet
	if *hollow > 0 {
		if *hollow != sys.N() {
			fmt.Fprintf(os.Stderr, "-hollow %d must match -servers %d (one agent per server)\n", *hollow, *servers)
			os.Exit(2)
		}
		fleet = ctlplane.NewHollowFleet(ctl, *hollow)
		if *chaos {
			chaosDriver = ctlplane.NewChaosDriver(fleet, sc)
			ctl.OnEpoch(chaosDriver.OnEpoch)
		}
		if err := fleet.StartAll(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer fleet.Close()
	}
	if *addr != "" {
		a, srv, err := ctl.Serve(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "control plane on http://%s\n", a)
		if *agents > 0 {
			wctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			fmt.Fprintf(os.Stderr, "waiting for %d agents...\n", *agents)
			err := ctl.WaitAgents(wctx, *agents)
			cancel()
			if err != nil {
				fmt.Fprintf(os.Stderr, "waiting for agents: %v\n", err)
				os.Exit(1)
			}
		}
	}

	trace, err := ctl.Run(context.Background(), *epochs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
		os.Exit(1)
	}
	if churnDriver != nil {
		if err := churnDriver.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "churn driver: %v\n", err)
			os.Exit(1)
		}
	}

	snap := rec.Registry().Snapshot()
	out := wireRunOutput{
		Videos:       *videos,
		Servers:      *servers,
		Epochs:       len(trace.Reports),
		HollowAgents: *hollow,
		Chaos:        *chaos,
		MeanBenefit:  trace.MeanBenefit(),
		MinHealthy:   sys.N(),

		Results:           snap.Counters["ctlplane_results_total"],
		EvalTimeouts:      snap.Counters["ctlplane_eval_timeouts_total"],
		MarksDown:         snap.Counters["ctlplane_marks_down_total"],
		MarksUp:           snap.Counters["ctlplane_marks_up_total"],
		StaleResults:      snap.Counters["ctlplane_stale_results_total"],
		StaleIncarnations: snap.Counters["ctlplane_stale_incarnations_total"],
		StrictViolations:  snap.Counters["check_violations_total"],
		StreamOps:         snap.Counters["ctlplane_stream_ops_total"],
		ChurnOps:          snap.Counters["runtime_churn_ops_total"],
		ChurnFast:         snap.Counters["runtime_churn_fast_total"],
		ChurnResolve:      snap.Counters["runtime_churn_resolve_total"],
	}
	if sc != nil {
		out.Scenario = sc.Name
	}
	for _, r := range trace.Reports {
		if r.Replanned {
			out.Replans++
		}
		if r.Degraded {
			out.DegradedEpochs++
		}
		out.FaultEvents += r.FaultEvents
		if r.HealthyServers < out.MinHealthy {
			out.MinHealthy = r.HealthyServers
		}
		out.FinalHealthy = r.HealthyServers
	}

	exitCode := 0
	if *compare {
		match, err := compareInProcess(trace, sys0(*videos, *servers, *seed), sc, *strict, *replanEvery, *seed, *epochs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare-inprocess: %v\n", err)
			os.Exit(1)
		}
		out.WireMatchesInProcess = &match
		if !match {
			fmt.Fprintln(os.Stderr, "wire trace DIVERGED from the in-process run")
			exitCode = 1
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *addr != "" {
		// Linger one poll cycle so external agents parked on long polls see
		// the shutdown response instead of a torn-down listener.
		time.Sleep(1500 * time.Millisecond)
	}
	if exitCode != 0 {
		rec.Close()
		os.Exit(exitCode)
	}
	// Success falls through so the deferred recorder/fleet/server cleanup
	// (and the events file flush) runs.
}

// sys0 regenerates the run's system from scratch: exp.NewSystem is
// deterministic in (videos, servers, seed), and the in-process replay must
// not share mutable state with the wire run.
func sys0(videos, servers int, seed uint64) *objective.System {
	return exp.NewSystem(videos, servers, seed)
}

// newRuntime builds the decide-loop controller the wire plane wraps. The
// fixed scheduler keeps daemon runs deterministic and fast; retry backoff
// jitter is on (seed-derived) so restarted daemons desynchronize.
func newRuntime(sys *objective.System, rec *obs.Recorder, strict bool, replanEvery int, seed uint64) *runtime.Controller {
	var chk *check.Checker
	if strict || rec != nil {
		chk = check.New(strict, rec)
	}
	return &runtime.Controller{
		Sys:   sys,
		Sched: &runtime.FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}},
		Truth: objective.UniformPreference(),
		Norm:  objective.NewNormalizer(sys),
		Opt: runtime.Options{
			ReplanEvery:   replanEvery,
			Check:         chk,
			BackoffJitter: true,
			BackoffSeed:   seed,
		},
		Obs: rec,
	}
}

// compareInProcess re-runs the identical configuration without the wire
// (in-process evaluators, injector-driven health) and byte-compares the
// serialized epoch reports against the wire trace.
func compareInProcess(wire *runtime.Trace, sys *objective.System, sc *fault.Scenario, strict bool, replanEvery int, seed uint64, epochs int) (bool, error) {
	rec := obs.NewRecorder(nil)
	defer rec.Close()
	rt := newRuntime(sys, rec, strict, replanEvery, seed)
	if sc != nil {
		inj, err := fault.NewInjector(sc, sys.N(), sys.M())
		if err != nil {
			return false, err
		}
		rt.Faults = inj
	}
	ref, err := rt.Run(context.Background(), epochs)
	if err != nil {
		return false, err
	}
	a, err := json.Marshal(wire.Reports)
	if err != nil {
		return false, err
	}
	b, err := json.Marshal(ref.Reports)
	if err != nil {
		return false, err
	}
	return string(a) == string(b), nil
}
