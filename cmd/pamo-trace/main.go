// Command pamo-trace records and replays profiling traces.
//
//	pamo-trace -record -videos 8 -servers 5 -per-cfg 3 -o trace.json
//	pamo-trace -summary -i trace.json
//	pamo-trace -run -i trace.json        # run PaMO off the recorded trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eva"
	"repro/internal/exp"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/videosim"
)

func main() {
	record := flag.Bool("record", false, "record a new trace")
	summary := flag.Bool("summary", false, "print a trace summary")
	runPamo := flag.Bool("run", false, "run PaMO with profiling replayed from the trace")
	videos := flag.Int("videos", 8, "videos to record")
	servers := flag.Int("servers", 5, "servers to record")
	perCfg := flag.Int("per-cfg", 3, "measurements per configuration")
	seed := flag.Uint64("seed", 2024, "seed")
	in := flag.String("i", "trace.json", "input trace path")
	out := flag.String("o", "trace.json", "output trace path")
	flag.Parse()

	switch {
	case *record:
		sys := exp.NewSystem(*videos, *servers, *seed)
		prof := videosim.NewProfiler(0.02, stats.NewRNG(*seed+1))
		tr := trace.Record(sys, prof, *perCfg)
		f, err := os.Create(*out)
		fatalIf(err)
		defer f.Close()
		fatalIf(tr.Save(f))
		fmt.Printf("recorded %d samples (%d clips × %d configs × %d reps) to %s\n",
			len(tr.Samples), len(tr.Clips),
			len(videosim.Resolutions)*len(videosim.FrameRates), *perCfg, *out)

	case *summary:
		tr := load(*in)
		fmt.Printf("trace v%d: %d clips, %d servers, %d samples\n",
			tr.Version, len(tr.Clips), len(tr.Uplinks), len(tr.Samples))
		for _, c := range tr.Clips {
			fmt.Printf("  %-10s acc=%.2f compute=%.2f bits=%.2f energy=%.2f\n",
				c.Name, c.AccFactor, c.ComputeFac, c.BitFac, c.EnergyFac)
		}

	case *runPamo:
		tr := load(*in)
		sys := tr.System()
		truth := objective.UniformPreference()
		dm := &pref.Oracle{Pref: truth, Rng: stats.NewRNG(*seed)}
		res, err := pamo.New(sys, dm, pamo.Options{
			Seed: *seed, UseEUBO: true, Measurer: trace.NewReplayer(tr),
		}).Run()
		fatalIf(err)
		outv := eva.Evaluate(sys, res.Best.Decision)
		norm := objective.NewNormalizer(sys)
		fmt.Printf("PaMO on trace: benefit=%.4f iters=%d\n",
			truth.Benefit(norm.Normalize(outv)), res.Iters)
		if res.MVNFallbacks > 0 {
			fmt.Printf("  warning: %d posterior sampling calls fell back to the deterministic mean\n",
				res.MVNFallbacks)
		}
		for i, cfg := range res.Best.Decision.Configs {
			fmt.Printf("  %-10s res=%4.0f fps=%2.0f\n", sys.Clips[i].Name, cfg.Resolution, cfg.FPS)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	fatalIf(err)
	defer f.Close()
	tr, err := trace.Load(f)
	fatalIf(err)
	return tr
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
