// Command pamo-trace records and replays profiling traces.
//
//	pamo-trace -record -videos 8 -servers 5 -per-cfg 3 -o trace.json
//	pamo-trace -summary -i trace.json
//	pamo-trace -run -i trace.json        # run PaMO off the recorded trace
//	pamo-trace -run -i trace.json -events run.jsonl
//	pamo-trace -run -i trace.json -faults scenario.json -epochs 10 -fast
//	pamo-trace -run -i trace.json -faults scenario.json -perfetto run.trace.json
//	pamo-trace -events-summary -events run.jsonl
//
// With -events, the -run mode streams every telemetry span and event of
// the PaMO run (phase timings, per-iteration acquisition scores, MVN
// fallbacks) as JSON Lines; -events-summary aggregates such a file into a
// per-phase latency table. -perfetto exports the run's span tree as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing, and a fault
// run additionally prints the per-epoch benefit-attribution ledger.
// -metrics-addr serves the live metric registry in Prometheus text format
// while the run executes.
//
// With -faults, -run drives the online controller for -epochs epochs under
// the scripted fault scenario instead of a single offline optimization,
// still profiling from the recorded trace.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/runtime"

	"repro/internal/eva"
	"repro/internal/exp"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/videosim"
)

func main() {
	record := flag.Bool("record", false, "record a new trace")
	summary := flag.Bool("summary", false, "print a trace summary")
	runPamo := flag.Bool("run", false, "run PaMO with profiling replayed from the trace")
	eventsSummary := flag.Bool("events-summary", false, "aggregate a JSONL event file (-events) into a per-span latency table")
	videos := flag.Int("videos", 8, "videos to record")
	servers := flag.Int("servers", 5, "servers to record")
	perCfg := flag.Int("per-cfg", 3, "measurements per configuration")
	seed := flag.Uint64("seed", 2024, "seed")
	fast := flag.Bool("fast", false, "shrink PaMO budgets for a quick -run pass")
	faults := flag.String("faults", "", "fault scenario JSON: -run drives the online controller under injected failures")
	epochs := flag.Int("epochs", 10, "epochs to run with -faults")
	in := flag.String("i", "trace.json", "input trace path")
	out := flag.String("o", "trace.json", "output trace path")
	events := flag.String("events", "", "JSONL telemetry path: written by -run, read by -events-summary")
	perfetto := flag.String("perfetto", "", "write the -run's span tree as Chrome trace-event JSON (open in Perfetto or chrome://tracing)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) on this address during -run")
	strict := flag.Bool("strict", false, "run the exact invariant checker in strict mode during -run: any feasibility or GP-guard violation aborts with a non-zero exit")
	flag.Parse()

	switch {
	case *record:
		sys := exp.NewSystem(*videos, *servers, *seed)
		prof := videosim.NewProfiler(0.02, stats.NewRNG(*seed+1))
		tr := trace.Record(sys, prof, *perCfg)
		f, err := os.Create(*out)
		fatalIf(err)
		defer f.Close()
		fatalIf(tr.Save(f))
		fmt.Printf("recorded %d samples (%d clips × %d configs × %d reps) to %s\n",
			len(tr.Samples), len(tr.Clips),
			len(videosim.Resolutions)*len(videosim.FrameRates), *perCfg, *out)

	case *summary:
		tr := load(*in)
		fmt.Printf("trace v%d: %d clips, %d servers, %d samples\n",
			tr.Version, len(tr.Clips), len(tr.Uplinks), len(tr.Samples))
		for _, c := range tr.Clips {
			fmt.Printf("  %-10s acc=%.2f compute=%.2f bits=%.2f energy=%.2f\n",
				c.Name, c.AccFactor, c.ComputeFac, c.BitFac, c.EnergyFac)
		}

	case *eventsSummary:
		if *events == "" {
			fatalIf(fmt.Errorf("-events-summary requires -events <file.jsonl>"))
		}
		f, err := os.Open(*events)
		fatalIf(err)
		defer f.Close()
		evs, err := obs.ReadEvents(f)
		fatalIf(err)
		fmt.Printf("%d events in %s\n", len(evs), *events)
		obs.WriteSpanTable(os.Stdout, obs.SummarizeSpans(evs))

	case *runPamo:
		tr := load(*in)
		sys := tr.System()
		rec, closeRec := newRecorder(*events, *metricsAddr, *perfetto)
		defer closeRec()
		var chk *check.Checker
		if *strict || rec != nil {
			chk = check.New(*strict, rec)
		}
		truth := objective.UniformPreference()
		dm := &pref.Oracle{Pref: truth, Rng: stats.NewRNG(*seed)}
		opt := pamo.Options{
			Seed: *seed, UseEUBO: true, Measurer: trace.NewReplayer(tr), Obs: rec, Check: chk,
		}
		if *fast {
			opt.InitProfiles = 12
			opt.InitObs = 3
			opt.PrefPairs = 10
			opt.PrefPool = 12
			opt.Batch = 2
			opt.MCSamples = 16
			opt.CandPool = 10
			opt.MaxIter = 5
		}
		if *faults != "" {
			runFaulted(sys, truth, dm, opt, *faults, *epochs, rec, chk)
			if rec != nil {
				fmt.Println("\nphase breakdown:")
				obs.WriteSpanTable(os.Stdout, rec.SpanSummary())
				if leds := rec.Ledgers(); len(leds) > 0 {
					fmt.Println("\nbenefit attribution:")
					obs.WriteLedgerTable(os.Stdout, leds)
				}
			}
			return
		}
		res, err := pamo.New(sys, dm, opt).Run()
		fatalIf(err)
		fatalIf(chk.VerifyDecision(res.Best.Decision, sys.N()))
		outv := eva.Evaluate(sys, res.Best.Decision)
		norm := objective.NewNormalizer(sys)
		fmt.Printf("PaMO on trace: benefit=%.4f iters=%d\n",
			truth.Benefit(norm.Normalize(outv)), res.Iters)
		if res.MVNFallbacks > 0 {
			fmt.Printf("  warning: %d posterior sampling calls fell back to the deterministic mean\n",
				res.MVNFallbacks)
		}
		for i, cfg := range res.Best.Decision.Configs {
			fmt.Printf("  %-10s res=%4.0f fps=%2.0f\n", sys.Clips[i].Name, cfg.Resolution, cfg.FPS)
		}
		if rec != nil {
			fmt.Println("\nphase breakdown:")
			obs.WriteSpanTable(os.Stdout, rec.SpanSummary())
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runFaulted drives the online controller with the PaMO scheduler under a
// scripted fault scenario, profiling from the recorded trace.
func runFaulted(sys *objective.System, truth objective.Preference, dm pref.DecisionMaker,
	opt pamo.Options, scenarioPath string, epochs int, rec *obs.Recorder, chk *check.Checker) {
	sc, err := fault.LoadFile(scenarioPath)
	fatalIf(err)
	inj, err := fault.NewInjector(sc, sys.N(), sys.M())
	fatalIf(err)
	c := &runtime.Controller{
		Sys:    sys,
		Sched:  &runtime.PaMOScheduler{DM: dm, Opt: opt},
		Truth:  truth,
		Norm:   objective.NewNormalizer(sys),
		Opt:    runtime.Options{ReplanEvery: 5, Check: chk},
		Faults: inj,
		Obs:    rec,
	}
	tr, err := c.Run(context.Background(), epochs)
	fatalIf(err)
	replans, failures, degraded := 0, 0, 0
	for _, r := range tr.Reports {
		if r.Replanned {
			replans++
		}
		if r.ReplanFailed {
			failures++
		}
		if r.Degraded {
			degraded++
		}
	}
	fmt.Printf("PaMO under faults (%s): %d epochs, mean benefit=%.4f, replans=%d, failed=%d, degraded=%d\n",
		sc.Name, len(tr.Reports), tr.MeanBenefit(), replans, failures, degraded)
	for _, r := range tr.Reports {
		if r.FaultEvents > 0 || r.Degraded {
			fmt.Printf("  epoch %2d: healthy=%d faults=%d shed=%v downgraded=%v\n",
				r.Epoch, r.HealthyServers, r.FaultEvents, r.Shed, r.Downgraded)
		}
	}
}

// newRecorder builds the telemetry recorder shared by the run modes: a
// JSONL sink when eventsPath is set, an optional live /metrics endpoint,
// and — when perfettoPath is set — a Chrome trace-event JSON export of the
// run's span tree, written by the returned closer after the recorder
// flushes. The closer is safe to call when rec is nil.
func newRecorder(eventsPath, metricsAddr, perfettoPath string) (*obs.Recorder, func()) {
	if eventsPath == "" && metricsAddr == "" && perfettoPath == "" {
		return nil, func() {}
	}
	var f *os.File
	if eventsPath != "" {
		var err error
		f, err = os.Create(eventsPath)
		fatalIf(err)
	}
	// The Perfetto exporter needs the full event stream after the run; a
	// side buffer keeps it available whether or not JSONL goes to disk.
	var buf *bytes.Buffer
	var sink io.Writer
	switch {
	case f != nil && perfettoPath != "":
		buf = &bytes.Buffer{}
		sink = io.MultiWriter(f, buf)
	case f != nil:
		sink = f
	case perfettoPath != "":
		buf = &bytes.Buffer{}
		sink = buf
	}
	rec := obs.NewRecorder(sink)
	if metricsAddr != "" {
		addr, err := rec.Registry().Serve(metricsAddr)
		fatalIf(err)
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
	}
	return rec, func() {
		fatalIf(rec.Close())
		if f != nil {
			fatalIf(f.Close())
		}
		if buf != nil {
			evs, err := obs.ReadEvents(buf)
			fatalIf(err)
			pf, err := os.Create(perfettoPath)
			fatalIf(err)
			fatalIf(obs.WritePerfetto(pf, evs))
			fatalIf(pf.Close())
			fmt.Fprintf(os.Stderr, "perfetto trace: %s (%d events)\n", perfettoPath, len(evs))
		}
	}
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	fatalIf(err)
	defer f.Close()
	tr, err := trace.Load(f)
	fatalIf(err)
	return tr
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
