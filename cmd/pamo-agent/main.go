// Command pamo-agent runs one or more edge-server agents against a
// pamo-controller daemon. Each agent registers its server index, long-polls
// for evaluation work, runs the discrete-event simulation locally, and
// reports fenced results; carrying work is its heartbeat, so an agent that
// dies is inferred down by the controller without any deregistration.
//
// One process can host a contiguous block of agents (-server, -count), so
// a small fleet needs no supervisor:
//
//	pamo-agent -controller http://127.0.0.1:7070 -server 0 -count 4
//	pamo-agent -controller http://127.0.0.1:7070 -server 2 -heartbeat 500ms
//
// The process exits 0 when the controller announces shutdown, and retries
// transient wire errors with capped, seed-jittered exponential backoff.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/obs"
)

func main() {
	controller := flag.String("controller", "http://127.0.0.1:7070", "base URL of the pamo-controller wire API")
	server := flag.Int("server", 0, "first server index this process serves")
	count := flag.Int("count", 1, "number of consecutive server indices to host")
	name := flag.String("name", "", "agent name prefix (default: host-style agent-<index>)")
	heartbeat := flag.Duration("heartbeat", 0, "explicit telemetry heartbeat period (0 = work-carried beats only)")
	pollWait := flag.Duration("poll-wait", time.Second, "long-poll park time per work request")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request wire timeout")
	retries := flag.Int("retries", 8, "transient-error retries per request")
	giveUp := flag.Duration("give-up", 30*time.Second, "exit after this long without a reachable controller (0 = retry forever)")
	seed := flag.Uint64("seed", 0, "backoff jitter seed (0 = derive from first server index)")
	flag.Parse()

	if *count < 1 {
		fmt.Fprintln(os.Stderr, "-count must be >= 1")
		os.Exit(2)
	}
	prefix := *name
	if prefix == "" {
		prefix = "agent"
	}
	baseSeed := *seed
	if baseSeed == 0 {
		baseSeed = uint64(*server) + 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rec := obs.NewRecorder(nil)
	defer rec.Close()

	var wg sync.WaitGroup
	errs := make(chan error, *count)
	for i := 0; i < *count; i++ {
		idx := *server + i
		agent := &ctlplane.Agent{
			Server: idx,
			Name:   fmt.Sprintf("%s-%d", prefix, idx),
			Client: &ctlplane.Client{
				BaseURL: *controller,
				Timeout: *timeout,
				Retries: *retries,
				Backoff: ctlplane.Backoff{Seed: baseSeed + uint64(i)},
			},
			PollWaitMS:     int(*pollWait / time.Millisecond),
			HeartbeatEvery: *heartbeat,
			GiveUpAfter:    *giveUp,
			Obs:            rec,
			OnRegistered: func(inc uint64) {
				fmt.Fprintf(os.Stderr, "server %d registered (incarnation %d)\n", idx, inc)
			},
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil && ctx.Err() == nil {
				errs <- fmt.Errorf("server %d: %w", idx, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	failed := false
	for err := range errs {
		failed = true
		fmt.Fprintln(os.Stderr, err)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "shutdown")
}
