package repro

import (
	"testing"
)

func fastPaMO(seed uint64) PaMOOptions {
	o := fastOpts()
	o.Seed = seed
	return o
}

func TestFacadeEndToEnd(t *testing.T) {
	sys := NewSystem(5, 4, 42)
	if sys.M() != 5 || sys.N() != 4 {
		t.Fatalf("system shape %d/%d", sys.M(), sys.N())
	}
	truth := UniformPreference()
	dm := NewOracle(truth, 0, 7)
	res, err := RunPaMO(sys, dm, fastPaMO(7))
	if err != nil {
		t.Fatal(err)
	}
	out := Evaluate(sys, res.Best.Decision)
	norm := NewNormalizer(sys)
	u := truth.Benefit(norm.Normalize(out))
	if u > 0 || u < -5 {
		t.Fatalf("benefit %v outside sane range", u)
	}
	if j := MaxJitter(sys, res.Best.Decision); j > 1e-3 {
		t.Fatalf("facade PaMO decision jitters: %v", j)
	}
}

func TestFacadeBaselinesAndNormalization(t *testing.T) {
	sys := NewSystem(6, 4, 9)
	truth := UniformPreference()
	norm := NewNormalizer(sys)

	dj, err := RunJCAB(sys, JCABOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	df, err := RunFACT(sys, FACTOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	uj := truth.Benefit(norm.Normalize(Evaluate(sys, dj)))
	uf := truth.Benefit(norm.Normalize(Evaluate(sys, df)))
	// Normalized values against a reference must be ordered like raw ones.
	maxU := 0.0
	nj := NormalizeBenefit(uj, maxU, truth)
	nf := NormalizeBenefit(uf, maxU, truth)
	if (uj > uf) != (nj > nf) && nj != nf {
		t.Fatalf("normalization broke ordering: %v/%v vs %v/%v", uj, uf, nj, nf)
	}
}

func TestFacadeZeroJitterScheduling(t *testing.T) {
	sys := NewSystemWithUplinks(4, []float64{10e6, 20e6, 30e6}, 5)
	cfgs := []Config{
		{Resolution: 1000, FPS: 5},
		{Resolution: 1000, FPS: 10},
		{Resolution: 1250, FPS: 10},
		{Resolution: 750, FPS: 30},
	}
	streams := BuildStreams(sys, cfgs)
	plan, err := ScheduleZeroJitter(streams, sys.Servers)
	if err != nil {
		t.Fatal(err)
	}
	for i, srv := range plan.StreamServer {
		if srv < 0 || srv >= sys.N() {
			t.Fatalf("stream %d unassigned", i)
		}
	}
	if plan.CommLatency <= 0 {
		t.Fatal("no communication latency recorded")
	}
}

func TestFacadePaMOPlusAndHelpers(t *testing.T) {
	sys := NewSystem(4, 3, 17)
	truth := UniformPreference()
	truth.W[Energy] = 1.5
	res, err := RunPaMOPlus(sys, truth, fastPaMO(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefPairs != 0 {
		t.Fatalf("PaMO+ asked %d comparisons", res.PrefPairs)
	}
	if rng := NewRNG(5); rng.Float64() == NewRNG(6).Float64() {
		t.Fatal("seeds ignored")
	}
	// Weight-rule re-exports are callable.
	if p := EqualWeights(); p.W[0] != 0.2 {
		t.Fatalf("EqualWeights = %v", p.W)
	}
	if _, err := ROCWeights([5]int{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := RankSumWeights([5]int{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	front := ParetoFront([]Outcome{
		{0.1, 0.9, 0.1, 0.1, 0.1},
		{0.2, 0.8, 0.2, 0.2, 0.2},
	})
	if len(front) != 1 {
		t.Fatalf("front = %v", front)
	}
}

func TestFacadeSchedulerDiagnostics(t *testing.T) {
	sys := NewSystem(3, 3, 23)
	s := NewPaMO(sys, NewOracle(UniformPreference(), 0, 1), fastPaMO(5))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	diags, err := s.Diagnostics()
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 15 {
		t.Fatalf("diags = %d", len(diags))
	}
}

func TestFacadeTraceAndBilling(t *testing.T) {
	sys := NewSystem(2, 2, 31)
	tr := RecordTrace(sys, 0.02, 2, 7)
	if len(tr.Samples) == 0 {
		t.Fatal("empty trace")
	}
	rep := NewTraceReplayer(tr)
	m := rep.Measure(sys.Clips[0], Config{Resolution: Resolutions[0], FPS: FrameRates[0]})
	if m.Acc <= 0 {
		t.Fatalf("replayed measurement: %+v", m)
	}
	b := CityBilling(4)
	var out Outcome
	out[Accuracy] = 0.6
	out[Latency] = 0.05
	if v := b.NetBenefit(out); v <= 0 {
		t.Fatalf("billing net benefit %v", v)
	}
	vms, err := Virtualize([]PhysicalServer{{Name: "x", Units: 2, Uplink: 20e6}})
	if err != nil || len(vms) != 2 {
		t.Fatalf("virtualize: %v %v", vms, err)
	}
}

func TestFacadeGrids(t *testing.T) {
	if len(Resolutions) == 0 || len(FrameRates) == 0 {
		t.Fatal("empty knob grids")
	}
	if len(ObjectiveNames) != 5 {
		t.Fatalf("objective names: %v", ObjectiveNames)
	}
}
