package objective

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/videosim"
)

func testSystem(m, n int) *System {
	servers := make([]cluster.Server, n)
	for j := range servers {
		servers[j] = cluster.Server{Name: "e", Uplink: float64(5+5*j) * 1e6}
	}
	return &System{Clips: videosim.StandardClips(m, 17), Servers: servers}
}

func uniform(s *System, cfg videosim.Config) ([]videosim.Config, []int) {
	cfgs := make([]videosim.Config, s.M())
	assign := make([]int, s.M())
	for i := range cfgs {
		cfgs[i] = cfg
		assign[i] = i % s.N()
	}
	return cfgs, assign
}

func TestOutcomesShapeAndSigns(t *testing.T) {
	s := testSystem(4, 2)
	cfgs, assign := uniform(s, videosim.Config{Resolution: 1000, FPS: 10})
	v := s.Outcomes(cfgs, assign)
	if v[Latency] <= 0 || v[Accuracy] <= 0 || v[Network] <= 0 || v[Compute] <= 0 || v[Energy] <= 0 {
		t.Fatalf("non-positive outcomes: %+v", v)
	}
	if v[Accuracy] > 1 {
		t.Fatalf("accuracy %v > 1", v[Accuracy])
	}
}

func TestOutcomesValidation(t *testing.T) {
	s := testSystem(2, 1)
	mustPanic(t, func() { s.Outcomes(nil, nil) })
	cfgs, _ := uniform(s, videosim.Config{Resolution: 500, FPS: 5})
	mustPanic(t, func() { s.Outcomes(cfgs, []int{0, 99}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestOutcomesMonotoneInConfig(t *testing.T) {
	s := testSystem(3, 2)
	lo, assignLo := uniform(s, videosim.Config{Resolution: 500, FPS: 5})
	hi, assignHi := uniform(s, videosim.Config{Resolution: 2000, FPS: 30})
	vLo := s.Outcomes(lo, assignLo)
	vHi := s.Outcomes(hi, assignHi)
	for k := 0; k < K; k++ {
		if vHi[k] <= vLo[k] {
			t.Errorf("objective %s not increasing with config: %v vs %v", Names[k], vLo[k], vHi[k])
		}
	}
}

func TestBetterUplinkLowersLatencyOnly(t *testing.T) {
	s := testSystem(1, 2) // server 1 has double the uplink of server 0
	cfgs := []videosim.Config{{Resolution: 1500, FPS: 10}}
	slow := s.Outcomes(cfgs, []int{0})
	fast := s.Outcomes(cfgs, []int{1})
	if fast[Latency] >= slow[Latency] {
		t.Fatalf("faster uplink did not reduce latency: %v vs %v", fast[Latency], slow[Latency])
	}
	for _, k := range []Objective{Accuracy, Network, Compute, Energy} {
		if fast[k] != slow[k] {
			t.Errorf("%s changed with server choice: %v vs %v", Names[k], slow[k], fast[k])
		}
	}
}

func TestBoundsContainArbitraryOutcomes(t *testing.T) {
	s := testSystem(5, 3)
	b := s.OutcomeBounds()
	f := func(seed uint64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		cfgs := make([]videosim.Config, s.M())
		assign := make([]int, s.M())
		for i := range cfgs {
			cfgs[i] = videosim.Config{
				Resolution: videosim.Resolutions[next(len(videosim.Resolutions))],
				FPS:        videosim.FrameRates[next(len(videosim.FrameRates))],
			}
			assign[i] = next(s.N())
		}
		v := s.Outcomes(cfgs, assign)
		for k := 0; k < K; k++ {
			if v[k] < b.Lo[k]-1e-9 || v[k] > b.Hi[k]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeMapsIntoUnitBox(t *testing.T) {
	s := testSystem(4, 2)
	n := NewNormalizer(s)
	cfgs, assign := uniform(s, videosim.Config{Resolution: 1250, FPS: 15})
	norm := n.Normalize(s.Outcomes(cfgs, assign))
	for k := 0; k < K; k++ {
		if norm[k] < 0 || norm[k] > 1 {
			t.Fatalf("normalized %s = %v", Names[k], norm[k])
		}
	}
	// Extremes map to the box corners.
	lo := n.Normalize(n.B.Lo)
	hi := n.Normalize(n.B.Hi)
	for k := 0; k < K; k++ {
		if lo[k] != 0 || hi[k] != 1 {
			t.Fatalf("corner mapping wrong: lo=%v hi=%v", lo, hi)
		}
	}
}

func TestBenefitMaxAtUtopia(t *testing.T) {
	p := UniformPreference()
	if got := p.Benefit(UtopiaNormalized()); got != 0 {
		t.Fatalf("benefit at utopia = %v", got)
	}
	// Anywhere else is negative.
	v := UtopiaNormalized()
	v[Latency] = 0.5
	if got := p.Benefit(v); got >= 0 {
		t.Fatalf("off-utopia benefit = %v", got)
	}
}

func TestBenefitRespectsWeights(t *testing.T) {
	var v Vector
	v[Accuracy] = 1 // at utopia for accuracy
	v[Latency] = 0.4
	pLat := Preference{W: Vector{3, 1, 1, 1, 1}}
	pUni := UniformPreference()
	if pLat.Benefit(v) >= pUni.Benefit(v) {
		t.Fatal("heavier latency weight should penalize latency deviation more")
	}
}

func TestBenefitMonotoneInDeviation(t *testing.T) {
	f := func(a, b float64) bool {
		da := math.Mod(math.Abs(a), 1)
		db := math.Mod(math.Abs(b), 1)
		lo, hi := math.Min(da, db), math.Max(da, db)
		v1, v2 := UtopiaNormalized(), UtopiaNormalized()
		v1[Network] = lo
		v2[Network] = hi
		p := UniformPreference()
		return p.Benefit(v1) >= p.Benefit(v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeBenefit(t *testing.T) {
	p := UniformPreference() // minU = -2.5
	if got := NormalizeBenefit(-2.5, 0, p); got != 0 {
		t.Errorf("min benefit normalizes to %v", got)
	}
	if got := NormalizeBenefit(0, 0, p); got != 1 {
		t.Errorf("max benefit normalizes to %v", got)
	}
	if got := NormalizeBenefit(-1.25, 0, p); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mid benefit normalizes to %v", got)
	}
	// Exceeding maxU is clamped, not exploding.
	if got := NormalizeBenefit(1, 0, p); got > 1.05 {
		t.Errorf("clamp failed: %v", got)
	}
	// Degenerate span.
	if got := NormalizeBenefit(-1, -10, p); got != 1 {
		t.Errorf("degenerate span = %v", got)
	}
}

func TestBenefitRatioSumsToOne(t *testing.T) {
	p := Preference{W: Vector{0.2, 1, 1.6, 3.2, 1}}
	var v Vector
	v[Accuracy] = 0.7
	v[Latency] = 0.3
	v[Network] = 0.2
	v[Compute] = 0.6
	v[Energy] = 0.1
	shares := p.BenefitRatio(v)
	var sum float64
	for _, s := range shares {
		if s < 0 {
			t.Fatalf("negative share %v", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestVectorSliceRoundTrip(t *testing.T) {
	v := Vector{1, 2, 3, 4, 5}
	if got := FromSlice(v.Slice()); got != v {
		t.Fatalf("round trip: %v", got)
	}
	mustPanic(t, func() { FromSlice([]float64{1}) })
}
