package objective

import (
	"math"
	"testing"
)

func ranks(a, b, c, d, e int) [K]int { return [K]int{a, b, c, d, e} }

func TestEqualWeights(t *testing.T) {
	p := EqualWeights()
	for _, w := range p.W {
		if math.Abs(w-0.2) > 1e-15 {
			t.Fatalf("weights = %v", p.W)
		}
	}
}

func TestROCWeights(t *testing.T) {
	p, err := ROCWeights(ranks(1, 2, 3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	// w(1) = (1 + 1/2 + 1/3 + 1/4 + 1/5)/5 = 0.4567
	if math.Abs(p.W[0]-0.45666666666666667) > 1e-12 {
		t.Fatalf("w(1) = %v", p.W[0])
	}
	// Weights decrease with rank and sum to 1.
	var sum float64
	for k := 0; k < K-1; k++ {
		if p.W[k] <= p.W[k+1] {
			t.Fatalf("ROC weights not decreasing: %v", p.W)
		}
	}
	for _, w := range p.W {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("ROC weights sum to %v", sum)
	}
}

func TestRankSumWeights(t *testing.T) {
	p, err := RankSumWeights(ranks(2, 1, 3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	// w(r) = 2(6−r)/30: w(1) = 1/3, w(2) = 4/15.
	if math.Abs(p.W[1]-1.0/3) > 1e-12 || math.Abs(p.W[0]-4.0/15) > 1e-12 {
		t.Fatalf("weights = %v", p.W)
	}
	var sum float64
	for _, w := range p.W {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("rank-sum weights sum to %v", sum)
	}
}

func TestRankValidation(t *testing.T) {
	if _, err := ROCWeights(ranks(1, 2, 3, 4, 6)); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := RankSumWeights(ranks(1, 1, 3, 4, 5)); err == nil {
		t.Error("duplicate rank accepted")
	}
}

func TestPseudoWeights(t *testing.T) {
	// Accuracy is maximized; others minimized.
	front := []Vector{
		{0.1, 0.9, 0.8, 0.8, 0.8}, // fast+accurate but expensive
		{0.9, 0.2, 0.1, 0.1, 0.1}, // slow+inaccurate but cheap
	}
	// A solution at the accurate end should weight accuracy (and the
	// objectives where it is best) highly.
	p, err := PseudoWeights(front, front[0])
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range p.W {
		if w < 0 {
			t.Fatalf("negative pseudo-weight: %v", p.W)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("pseudo-weights sum to %v", sum)
	}
	if p.W[Latency] == 0 || p.W[Accuracy] == 0 {
		t.Fatalf("chosen point is best on latency and accuracy, weights: %v", p.W)
	}

	if _, err := PseudoWeights(front[:1], front[0]); err == nil {
		t.Error("single-point front accepted")
	}
}

func TestDominates(t *testing.T) {
	a := Vector{0.1, 0.9, 0.1, 0.1, 0.1} // better everywhere (acc higher)
	b := Vector{0.2, 0.8, 0.2, 0.2, 0.2}
	if !Dominates(a, b) {
		t.Fatal("a should dominate b")
	}
	if Dominates(b, a) {
		t.Fatal("b should not dominate a")
	}
	if Dominates(a, a) {
		t.Fatal("no strict self-domination")
	}
	// Trade-off: a faster but less accurate — no domination.
	c := Vector{0.05, 0.5, 0.1, 0.1, 0.1}
	if Dominates(a, c) || Dominates(c, a) {
		t.Fatal("trade-off pair must be mutually non-dominated")
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Vector{
		{0.1, 0.9, 0.1, 0.1, 0.1}, // non-dominated
		{0.2, 0.8, 0.2, 0.2, 0.2}, // dominated by 0
		{0.05, 0.5, 0.1, 0.1, 0.1}, // non-dominated (faster)
	}
	front := ParetoFront(pts)
	if len(front) != 2 {
		t.Fatalf("front size %d: %v", len(front), front)
	}
}
