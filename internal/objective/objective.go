// Package objective formulates the five-objective outcome machinery of
// Section 3: the outcome functions of Eqs. (2)–(5), min-max normalization
// over the configuration space, the utopian outcome vector, and the
// system-benefit function of Eq. (13) that the hidden decision maker
// scores solutions with.
package objective

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/videosim"
)

// Objective indexes the five optimization objectives, in the paper's order
// {lct, acc, net, com, eng}.
type Objective int

// The five objectives.
const (
	Latency Objective = iota // mean end-to-end latency (s), lower is better
	Accuracy                 // mean mAP, higher is better
	Network                  // total uplink bandwidth (bits/s), lower is better
	Compute                  // total computing power (TFLOPS), lower is better
	Energy                   // total power (W), lower is better
)

// K is the number of objectives.
const K = 5

// Names returns the short objective names used in tables.
var Names = [K]string{"latency", "accuracy", "network", "compute", "energy"}

// Vector is an outcome vector (one value per objective).
type Vector [K]float64

// Slice returns the vector as a []float64 (a copy).
func (v Vector) Slice() []float64 { return []float64{v[0], v[1], v[2], v[3], v[4]} }

// FromSlice builds a Vector from a 5-element slice.
func FromSlice(s []float64) Vector {
	if len(s) != K {
		panic(fmt.Sprintf("objective: FromSlice length %d", len(s)))
	}
	var v Vector
	copy(v[:], s)
	return v
}

// System is the EVA system under optimization: the video sources and the
// edge servers (homogeneous compute, per-server uplink bandwidth).
type System struct {
	Clips   []*videosim.Clip
	Servers []cluster.Server
}

// M returns the number of video sources.
func (s *System) M() int { return len(s.Clips) }

// N returns the number of edge servers.
func (s *System) N() int { return len(s.Servers) }

// Outcomes evaluates the ground-truth outcome functions of Eqs. (2)–(5)
// for the given per-stream configurations and server assignment
// (assign[i] = server index of stream i; every stream must be assigned).
func (s *System) Outcomes(cfgs []videosim.Config, assign []int) Vector {
	if len(cfgs) != len(s.Clips) || len(assign) != len(s.Clips) {
		panic(fmt.Sprintf("objective: %d clips, %d cfgs, %d assigns", len(s.Clips), len(cfgs), len(assign)))
	}
	var v Vector
	m := float64(len(s.Clips))
	for i, c := range s.Clips {
		cfg := cfgs[i]
		j := assign[i]
		if j < 0 || j >= len(s.Servers) {
			panic(fmt.Sprintf("objective: stream %d assigned to invalid server %d", i, j))
		}
		b := s.Servers[j].Uplink
		tx := 0.0
		if b > 0 {
			tx = c.BitsOf(cfg) / b
		}
		v[Latency] += (c.ProcTimeOf(cfg) + tx) / m
		v[Accuracy] += c.Accuracy(cfg) / m
		v[Network] += c.Bandwidth(cfg)
		v[Compute] += c.Compute(cfg)
		v[Energy] += c.Power(cfg)
	}
	return v
}

// Bounds are element-wise outcome bounds over the configuration space,
// used for min-max normalization.
type Bounds struct {
	Lo, Hi Vector
}

// OutcomeBounds computes per-objective bounds by evaluating the extreme
// configurations: every outcome function is monotone in (resolution, fps),
// so the all-min and all-max configurations bound the space; latency bounds
// additionally use the best and worst uplink.
func (s *System) OutcomeBounds() Bounds {
	minCfg := videosim.Config{Resolution: videosim.Resolutions[0], FPS: videosim.FrameRates[0]}
	maxCfg := videosim.Config{Resolution: videosim.Resolutions[len(videosim.Resolutions)-1], FPS: videosim.FrameRates[len(videosim.FrameRates)-1]}

	bestB, worstB := 0, 0
	for j, srv := range s.Servers {
		if srv.Uplink > s.Servers[bestB].Uplink {
			bestB = j
		}
		if srv.Uplink < s.Servers[worstB].Uplink {
			worstB = j
		}
	}
	lo := s.uniformOutcomes(minCfg, bestB)
	hi := s.uniformOutcomes(maxCfg, worstB)
	var b Bounds
	for k := 0; k < K; k++ {
		b.Lo[k] = math.Min(lo[k], hi[k])
		b.Hi[k] = math.Max(lo[k], hi[k])
	}
	return b
}

func (s *System) uniformOutcomes(cfg videosim.Config, server int) Vector {
	cfgs := make([]videosim.Config, len(s.Clips))
	assign := make([]int, len(s.Clips))
	for i := range cfgs {
		cfgs[i] = cfg
		assign[i] = server
	}
	return s.Outcomes(cfgs, assign)
}

// Normalizer maps raw outcome vectors into [0,1]^K using min-max bounds.
type Normalizer struct {
	B Bounds
}

// NewNormalizer builds a Normalizer from the system's outcome bounds.
func NewNormalizer(s *System) Normalizer { return Normalizer{B: s.OutcomeBounds()} }

// Normalize maps v element-wise into [0,1] (clipped).
func (n Normalizer) Normalize(v Vector) Vector {
	var out Vector
	for k := 0; k < K; k++ {
		span := n.B.Hi[k] - n.B.Lo[k]
		if span <= 0 {
			out[k] = 0
			continue
		}
		x := (v[k] - n.B.Lo[k]) / span
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		out[k] = x
	}
	return out
}

// Denormalize maps a normalized vector back into raw outcome units.
func (n Normalizer) Denormalize(v Vector) Vector {
	var out Vector
	for k := 0; k < K; k++ {
		out[k] = n.B.Lo[k] + v[k]*(n.B.Hi[k]-n.B.Lo[k])
	}
	return out
}

// UtopiaNormalized is the utopian outcome vector in normalized space: best
// latency/network/compute/energy are 0 (their minimum), best accuracy is 1
// (its maximum). It is unattainable because the objectives conflict.
func UtopiaNormalized() Vector {
	var u Vector
	u[Accuracy] = 1
	return u
}

// Preference is the hidden system pricing preference: the weight vector of
// Eq. (13). The decision maker scores normalized outcome vectors with it;
// the scheduler must *learn* it from comparisons.
type Preference struct {
	W Vector
}

// UniformPreference returns weights of 1 for all objectives.
func UniformPreference() Preference {
	return Preference{W: Vector{1, 1, 1, 1, 1}}
}

// Benefit returns U = −Σ wᵢ·|yᵢ − yᵢ*| for a normalized outcome vector
// (Eq. 13); higher is better, with maximum 0 at the utopia point.
func (p Preference) Benefit(norm Vector) float64 {
	u := UtopiaNormalized()
	var s float64
	for k := 0; k < K; k++ {
		s -= p.W[k] * math.Abs(norm[k]-u[k])
	}
	return s
}

// WeightSum returns Σ wᵢ.
func (p Preference) WeightSum() float64 {
	var s float64
	for _, w := range p.W {
		s += w
	}
	return s
}

// NormalizeBenefit maps a raw benefit U onto the paper's normalized scale
// (footnote 2): U_norm = (U − minU)/(maxU − minU) with minU = −½·Σwᵢ and
// maxU the benefit achieved by PaMO+ on the same instance. (The footnote's
// printed formula has the fraction inverted — 1 − (·) would score the best
// method 0 — so we use the orientation the figures actually show.) Values
// are clamped to [0, 1.05] to keep pathological instances readable.
func NormalizeBenefit(u, maxU float64, p Preference) float64 {
	minU := -0.5 * p.WeightSum()
	span := maxU - minU
	if span <= 0 {
		return 1
	}
	v := (u - minU) / span
	if v < 0 {
		v = 0
	}
	if v > 1.05 {
		v = 1.05
	}
	return v
}

// BenefitRatio decomposes a solution's benefit contribution per objective,
// as the shaded areas of Figure 6: share_k = w_k(1−|y_k−y*_k|)/Σ… — the
// closeness-to-utopia mass attributable to each objective.
func (p Preference) BenefitRatio(norm Vector) [K]float64 {
	u := UtopiaNormalized()
	var shares [K]float64
	var total float64
	for k := 0; k < K; k++ {
		shares[k] = p.W[k] * (1 - math.Abs(norm[k]-u[k]))
		total += shares[k]
	}
	if total > 0 {
		for k := range shares {
			shares[k] /= total
		}
	}
	return shares
}
