package objective

import "fmt"

// Classical fixed-weight definitions from the multi-objective optimization
// literature (Gunantara 2018, the paper's reference [10]). The paper argues
// none of these can capture real pricing preferences — the ablation in
// internal/exp quantifies that against learned preferences.

// EqualWeights assigns every objective weight 1/K (scaled to sum 1).
func EqualWeights() Preference {
	var p Preference
	for k := 0; k < K; k++ {
		p.W[k] = 1.0 / K
	}
	return p
}

// ROCWeights returns rank-order-centroid weights for the given importance
// ranking: ranks[k] = r means objective k is the r-th most important
// (1-based). w(r) = (1/K)·Σ_{j=r}^{K} 1/j.
func ROCWeights(ranks [K]int) (Preference, error) {
	if err := validRanks(ranks); err != nil {
		return Preference{}, err
	}
	var p Preference
	for k := 0; k < K; k++ {
		var w float64
		for j := ranks[k]; j <= K; j++ {
			w += 1.0 / float64(j)
		}
		p.W[k] = w / K
	}
	return p, nil
}

// RankSumWeights returns rank-sum weights for the given importance
// ranking: w(r) = 2(K+1−r)/(K(K+1)).
func RankSumWeights(ranks [K]int) (Preference, error) {
	if err := validRanks(ranks); err != nil {
		return Preference{}, err
	}
	var p Preference
	for k := 0; k < K; k++ {
		p.W[k] = 2 * float64(K+1-ranks[k]) / float64(K*(K+1))
	}
	return p, nil
}

// PseudoWeights computes the pseudo-weight vector of a chosen solution
// relative to a Pareto front sample (Deb's formulation): each objective's
// weight is its normalized distance from the worst value, renormalized to
// sum 1. All outcomes are interpreted as minimized except Accuracy.
func PseudoWeights(front []Vector, chosen Vector) (Preference, error) {
	if len(front) < 2 {
		return Preference{}, fmt.Errorf("objective: pseudo-weights need ≥ 2 front points, got %d", len(front))
	}
	var lo, hi Vector
	lo = front[0]
	hi = front[0]
	for _, f := range front[1:] {
		for k := 0; k < K; k++ {
			if f[k] < lo[k] {
				lo[k] = f[k]
			}
			if f[k] > hi[k] {
				hi[k] = f[k]
			}
		}
	}
	var p Preference
	var sum float64
	for k := 0; k < K; k++ {
		span := hi[k] - lo[k]
		if span <= 0 {
			p.W[k] = 0
			continue
		}
		// Distance from the worst value, toward the best.
		if Objective(k) == Accuracy {
			p.W[k] = (chosen[k] - lo[k]) / span
		} else {
			p.W[k] = (hi[k] - chosen[k]) / span
		}
		sum += p.W[k]
	}
	if sum <= 0 {
		return Preference{}, fmt.Errorf("objective: degenerate pseudo-weights (chosen dominates nothing)")
	}
	for k := 0; k < K; k++ {
		p.W[k] /= sum
	}
	return p, nil
}

func validRanks(ranks [K]int) error {
	var seen [K + 1]bool
	for _, r := range ranks {
		if r < 1 || r > K {
			return fmt.Errorf("objective: rank %d outside [1, %d]", r, K)
		}
		if seen[r] {
			return fmt.Errorf("objective: duplicate rank %d", r)
		}
		seen[r] = true
	}
	return nil
}

// Dominates reports whether a Pareto-dominates b: no objective worse and
// at least one strictly better. All objectives are minimized except
// Accuracy, which is maximized.
func Dominates(a, b Vector) bool {
	better := false
	for k := 0; k < K; k++ {
		av, bv := a[k], b[k]
		if Objective(k) == Accuracy {
			av, bv = -av, -bv // maximize accuracy
		}
		if av > bv {
			return false
		}
		if av < bv {
			better = true
		}
	}
	return better
}

// ParetoFront filters the non-dominated vectors from a set.
func ParetoFront(points []Vector) []Vector {
	var front []Vector
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}
