// Package videosim provides the synthetic video-analytics workload that
// substitutes for the paper's Jetson + Triton + YOLOv8 + MOT16 testbed.
//
// The scheduler layers never look at pixels: they only see the five outcome
// metrics as functions of (resolution, frame rate, assignment). This
// package reproduces those functions with the shapes measured in the
// paper's Figure 2 — mAP saturating in resolution and mildly increasing in
// frame rate, quadratic per-frame compute time and frame size, bandwidth
// and energy linear in frame rate — plus per-clip variation and AR(1)
// content drift, so the GP outcome models have something real to learn.
//
// Reference calibration (a "typical" clip at resolution 2000, 30 fps,
// roughly matching Figure 2's axes): mAP ≈ 0.8, per-frame GPU time ≈ 70 ms,
// frame size ≈ 500 kbit (15 Mbps), compute ≈ 40 TFLOPS, power ≈ 100 W.
package videosim

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Config is a per-stream video configuration. Resolution and FPS are the
// paper's two knobs; ROI is the adaptive-encoding/segmented-inference
// extension its conclusion proposes — the fraction of each frame encoded
// at full quality and run through the detector. ROI = 0 or 1 means the
// whole frame (the paper's baseline behaviour).
type Config struct {
	Resolution float64 // long-edge pixels, paper sweeps 500–2000
	FPS        float64 // frame sampling rate, paper sweeps 5–30
	ROI        float64 // region-of-interest fraction in (0, 1]; 0 = full frame
}

// roiFrac normalizes the ROI knob: unset (0) or out-of-range means full
// frame.
func roiFrac(roi float64) float64 {
	if roi <= 0 || roi > 1 {
		return 1
	}
	return roi
}

// ROI share factors: the background is still encoded (cheaply) and the
// detector still scans a downsampled full frame, so costs do not vanish
// as ROI → 0.
func roiBitsFactor(roi float64) float64    { return 0.15 + 0.85*roiFrac(roi) }
func roiComputeFactor(roi float64) float64 { return 0.20 + 0.80*roiFrac(roi) }

// roiAccFactor models occasional objects outside the predicted region.
func roiAccFactor(roi float64) float64 { return 1 - 0.18*(1-roiFrac(roi)) }

// Standard knob grids used across experiments (7 resolutions × 6 rates,
// chosen so that frame periods 1/fps have a rich divisibility structure for
// the zero-jitter grouping).
var (
	Resolutions = []float64{500, 750, 1000, 1250, 1500, 1750, 2000}
	FrameRates  = []float64{5, 6, 10, 15, 25, 30}
)

// GammaTxJPerBit is the transmission energy per bit (J), following the
// paper (γ = 0.5×10⁻⁵ J/bit, consistent with JCAB).
const GammaTxJPerBit = 0.5e-5

// Clip models one video source. The exported factors are multiplicative
// per-clip deviations from the reference calibration; contentPhase drives a
// deterministic pseudo-content difficulty drift.
type Clip struct {
	Name string

	AccBase      float64 // peak mAP at max config (reference 0.82)
	AccFactor    float64 // difficulty of the scene (lower = harder)
	ComputeFac   float64 // relative DNN cost on this content
	BitFac       float64 // encoder efficiency on this content
	EnergyFac    float64 // per-frame GPU energy scale
	contentPhase float64
}

// NewClip builds a clip with per-clip factors drawn around 1 (±12%).
func NewClip(name string, rng *rand.Rand) *Clip {
	f := func() float64 { return 1 + 0.12*(2*rng.Float64()-1) }
	return &Clip{
		Name:         name,
		AccBase:      0.9,
		AccFactor:    f(),
		ComputeFac:   f(),
		BitFac:       f(),
		EnergyFac:    f(),
		contentPhase: rng.Float64() * 2 * math.Pi,
	}
}

// FactorDistance is the Euclidean distance between two clips' content
// factors — the content-similarity metric warm-started outcome models and
// churn-time configuration donors rank candidate clips by.
func (c *Clip) FactorDistance(o *Clip) float64 {
	d := 0.0
	for _, pair := range [...][2]float64{
		{c.AccBase, o.AccBase},
		{c.AccFactor, o.AccFactor},
		{c.ComputeFac, o.ComputeFac},
		{c.BitFac, o.BitFac},
		{c.EnergyFac, o.EnergyFac},
	} {
		diff := pair[0] - pair[1]
		d += diff * diff
	}
	return math.Sqrt(d)
}

// StandardClips returns n reproducible clips named like the MOT16 set.
func StandardClips(n int, seed uint64) []*Clip {
	rng := rand.New(rand.NewPCG(seed, 0xC11F))
	out := make([]*Clip, n)
	for i := range out {
		out[i] = NewClip(fmt.Sprintf("MOT16-%02d", i+1), rng)
	}
	return out
}

// Accuracy returns the ground-truth mAP for this clip at cfg, following the
// separable form of Eq. 2: θ_acc(r)·ε_acc(s). θ is a saturating concave
// curve in resolution; ε is a mild linear gain in frame rate (tracking
// stability at higher rates).
func (c *Clip) Accuracy(cfg Config) float64 {
	r := cfg.Resolution
	// Sigmoid-like saturation: ≈0.34 of peak at r=500, ≈0.89 at r=2000.
	theta := c.AccBase * (r * r / (r*r + 700*700))
	eps := 0.84 + 0.0055*cfg.FPS
	acc := c.AccFactor * theta * eps * roiAccFactor(cfg.ROI)
	if acc > 0.95 {
		acc = 0.95
	}
	if acc < 0 {
		acc = 0
	}
	return acc
}

// ProcTime returns the ground-truth per-frame GPU inference time (seconds)
// at resolution r — quadratic in r (θ_lcom in Eq. 5): ≈ 14 ms at r=500 and
// ≈ 70 ms at r=2000 for the reference clip.
func (c *Clip) ProcTime(r float64) float64 {
	return c.ComputeFac * (0.010 + 1.5e-8*r*r)
}

// BitsPerFrame returns the ground-truth encoded frame size in bits at
// resolution r (θ_bit in Eqs. 4–5) — quadratic, ≈ 500 kbit at r=2000.
func (c *Clip) BitsPerFrame(r float64) float64 {
	return c.BitFac * 0.125 * r * r
}

// ProcTimeOf returns the per-frame GPU time for the full configuration,
// including the segmented-inference saving of the ROI knob.
func (c *Clip) ProcTimeOf(cfg Config) float64 {
	return c.ProcTime(cfg.Resolution) * roiComputeFactor(cfg.ROI)
}

// BitsOf returns the encoded frame size for the full configuration,
// including the adaptive-encoding saving of the ROI knob.
func (c *Clip) BitsOf(cfg Config) float64 {
	return c.BitsPerFrame(cfg.Resolution) * roiBitsFactor(cfg.ROI)
}

// Bandwidth returns the uplink bandwidth demand in bits/s (Eq. 3's f_net
// contribution of this stream).
func (c *Clip) Bandwidth(cfg Config) float64 {
	return c.BitsOf(cfg) * cfg.FPS
}

// ComputePerFrame returns the DNN inference cost of one frame in TFLOP —
// quadratic in resolution, ≈ 1.33 TFLOP at r=2000.
func (c *Clip) ComputePerFrame(r float64) float64 {
	return c.ComputeFac * 3.33e-7 * r * r
}

// Compute returns the sustained computing-power demand in TFLOPS (Eq. 3's
// f_com contribution).
func (c *Clip) Compute(cfg Config) float64 {
	return c.ComputePerFrame(cfg.Resolution) * roiComputeFactor(cfg.ROI) * cfg.FPS
}

// EnergyPerFrame returns the GPU energy of one frame inference in J —
// quadratic in resolution, ≈ 0.8 J at r=2000.
func (c *Clip) EnergyPerFrame(r float64) float64 {
	return c.EnergyFac * 2.0e-7 * r * r
}

// Power returns the total power draw in W for this stream (Eq. 4 divided
// by 1 s): transmission energy γ·bits·fps plus compute energy per second.
func (c *Clip) Power(cfg Config) float64 {
	tx := GammaTxJPerBit * c.BitsOf(cfg) * cfg.FPS
	comp := c.EnergyPerFrame(cfg.Resolution) * roiComputeFactor(cfg.ROI) * cfg.FPS
	return tx + comp
}

// ContentDifficulty returns a slowly varying multiplicative factor (~±5%)
// representing scene complexity at time t seconds; the profiler uses it to
// make repeated measurements of the same configuration disagree the way
// real video does.
func (c *Clip) ContentDifficulty(t float64) float64 {
	return 1 + 0.05*math.Sin(2*math.Pi*t/47+c.contentPhase)
}

// Drifted returns a copy of the clip whose content difficulty at time t
// seconds is baked into its factors — harder content costs more compute
// and bits and detects slightly worse, consistent with Profiler.Measure.
func (c *Clip) Drifted(t float64) *Clip {
	d := c.ContentDifficulty(t)
	out := *c
	out.ComputeFac *= d
	out.BitFac *= d
	out.EnergyFac *= d
	out.AccFactor /= math.Sqrt(d)
	return &out
}

// Measurement is one noisy profiling observation of a clip configuration.
type Measurement struct {
	Acc       float64 // observed mAP
	ProcTime  float64 // observed per-frame processing time (s)
	Bits      float64 // observed bits per frame
	Bandwidth float64 // observed uplink demand (bits/s)
	Compute   float64 // observed TFLOPS
	Power     float64 // observed W
}

// Measurer abstracts where profiling measurements come from: the live
// Profiler, or a recorded trace replayed by the trace package.
type Measurer interface {
	Measure(c *Clip, cfg Config) Measurement
}

// Profiler takes noisy measurements of clips. NoiseStd is the relative
// standard deviation of multiplicative measurement noise (default 2%).
type Profiler struct {
	NoiseStd float64
	Clock    float64 // advances with every measurement (content drift)
	rng      *rand.Rand
}

// NewProfiler returns a profiler with the given relative noise level.
func NewProfiler(noiseStd float64, rng *rand.Rand) *Profiler {
	if noiseStd < 0 {
		noiseStd = 0.02
	}
	return &Profiler{NoiseStd: noiseStd, rng: rng}
}

// Measure observes clip c at cfg, applying content drift and measurement
// noise to the ground-truth curves.
func (p *Profiler) Measure(c *Clip, cfg Config) Measurement {
	p.Clock += 1.0 // each profiling run covers ~1 s of video
	diff := c.ContentDifficulty(p.Clock)
	noise := func() float64 { return 1 + p.NoiseStd*p.rng.NormFloat64() }
	bits := c.BitsOf(cfg) * diff * noise()
	proc := c.ProcTimeOf(cfg) * diff * noise()
	return Measurement{
		Acc:       clamp01(c.Accuracy(cfg) / math.Sqrt(diff) * noise()),
		ProcTime:  proc,
		Bits:      bits,
		Bandwidth: bits * cfg.FPS,
		Compute:   c.Compute(cfg) * diff * noise(),
		Power:     c.Power(cfg) * diff * noise(),
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
