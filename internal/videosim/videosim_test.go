package videosim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func refClip() *Clip {
	return &Clip{Name: "ref", AccBase: 0.9, AccFactor: 1, ComputeFac: 1, BitFac: 1, EnergyFac: 1}
}

func TestReferenceCalibration(t *testing.T) {
	c := refClip()
	max := Config{Resolution: 2000, FPS: 30}
	if acc := c.Accuracy(max); acc < 0.75 || acc > 0.9 {
		t.Errorf("max-config mAP = %v, want ≈ 0.8", acc)
	}
	if p := c.ProcTime(2000); p < 0.05 || p > 0.09 {
		t.Errorf("ProcTime(2000) = %v, want ≈ 0.07", p)
	}
	if bw := c.Bandwidth(max); bw < 12e6 || bw > 18e6 {
		t.Errorf("Bandwidth(max) = %v, want ≈ 15 Mbps", bw)
	}
	if comp := c.Compute(max); comp < 30 || comp > 50 {
		t.Errorf("Compute(max) = %v, want ≈ 40 TFLOPS", comp)
	}
	if pw := c.Power(max); pw < 80 || pw > 120 {
		t.Errorf("Power(max) = %v, want ≈ 100 W", pw)
	}
}

func TestLowConfigIsCheap(t *testing.T) {
	c := refClip()
	min := Config{Resolution: 500, FPS: 5}
	if acc := c.Accuracy(min); acc < 0.15 || acc > 0.5 {
		t.Errorf("min-config mAP = %v, want in the Figure 2 low band", acc)
	}
	if bw := c.Bandwidth(min); bw > 1e6 {
		t.Errorf("Bandwidth(min) = %v, want < 1 Mbps", bw)
	}
	if pw := c.Power(min); pw > 10 {
		t.Errorf("Power(min) = %v W", pw)
	}
}

func TestMonotonicityInResolution(t *testing.T) {
	c := refClip()
	for _, fps := range FrameRates {
		prev := Config{Resolution: Resolutions[0], FPS: fps}
		for _, r := range Resolutions[1:] {
			cur := Config{Resolution: r, FPS: fps}
			if c.Accuracy(cur) < c.Accuracy(prev) {
				t.Errorf("accuracy not increasing in resolution at fps %v", fps)
			}
			if c.ProcTime(cur.Resolution) <= c.ProcTime(prev.Resolution) {
				t.Errorf("proc time not increasing in resolution")
			}
			if c.Bandwidth(cur) <= c.Bandwidth(prev) {
				t.Errorf("bandwidth not increasing in resolution")
			}
			if c.Power(cur) <= c.Power(prev) {
				t.Errorf("power not increasing in resolution")
			}
			prev = cur
		}
	}
}

func TestMonotonicityInFPS(t *testing.T) {
	c := refClip()
	for _, r := range Resolutions {
		prev := Config{Resolution: r, FPS: FrameRates[0]}
		for _, fps := range FrameRates[1:] {
			cur := Config{Resolution: r, FPS: fps}
			if c.Accuracy(cur) < c.Accuracy(prev)-1e-12 {
				t.Errorf("accuracy decreasing in fps at res %v", r)
			}
			if c.Compute(cur) <= c.Compute(prev) {
				t.Errorf("compute not increasing in fps")
			}
			if c.Bandwidth(cur) <= c.Bandwidth(prev) {
				t.Errorf("bandwidth not increasing in fps")
			}
			prev = cur
		}
	}
}

func TestProcTimeIndependentOfFPS(t *testing.T) {
	// Figure 2's second panel: per-frame latency does not depend on fps
	// when resources are ample.
	c := refClip()
	if c.ProcTime(1000) != c.ProcTime(1000) {
		t.Fatal("ProcTime must be deterministic")
	}
}

func TestAccuracyBounded(t *testing.T) {
	f := func(res, fps, fac float64) bool {
		c := refClip()
		c.AccFactor = 0.5 + math.Mod(math.Abs(fac), 1.5)
		r := 100 + math.Mod(math.Abs(res), 4000)
		s := 1 + math.Mod(math.Abs(fps), 60)
		a := c.Accuracy(Config{Resolution: r, FPS: s})
		return a >= 0 && a <= 0.95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardClipsReproducible(t *testing.T) {
	a := StandardClips(5, 42)
	b := StandardClips(5, 42)
	if len(a) != 5 {
		t.Fatalf("got %d clips", len(a))
	}
	for i := range a {
		if a[i].AccFactor != b[i].AccFactor || a[i].BitFac != b[i].BitFac {
			t.Fatalf("clip %d not reproducible", i)
		}
		if a[i].Name == "" {
			t.Fatalf("clip %d unnamed", i)
		}
	}
	c := StandardClips(5, 43)
	same := true
	for i := range a {
		if a[i].AccFactor != c[i].AccFactor {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical clips")
	}
}

func TestClipVariationIsBounded(t *testing.T) {
	for _, c := range StandardClips(50, 7) {
		for _, f := range []float64{c.AccFactor, c.ComputeFac, c.BitFac, c.EnergyFac} {
			if f < 0.85 || f > 1.15 {
				t.Fatalf("clip factor %v outside ±12%% band", f)
			}
		}
	}
}

func TestProfilerNoiseAndDrift(t *testing.T) {
	rng := stats.NewRNG(3)
	c := refClip()
	p := NewProfiler(0.02, rng)
	cfg := Config{Resolution: 1000, FPS: 10}
	truth := c.Bandwidth(cfg)
	var obs []float64
	for i := 0; i < 400; i++ {
		m := p.Measure(c, cfg)
		obs = append(obs, m.Bandwidth)
		if m.Acc < 0 || m.Acc > 1 {
			t.Fatalf("measured mAP out of range: %v", m.Acc)
		}
		if m.ProcTime <= 0 || m.Bits <= 0 || m.Compute <= 0 || m.Power <= 0 {
			t.Fatalf("non-positive measurement: %+v", m)
		}
	}
	mean := stats.Mean(obs)
	if math.Abs(mean-truth)/truth > 0.05 {
		t.Fatalf("profiler bias: mean %v vs truth %v", mean, truth)
	}
	if stats.Std(obs)/truth < 0.005 {
		t.Fatal("profiler produced implausibly clean measurements")
	}
}

func TestContentDifficultyRange(t *testing.T) {
	c := NewClip("x", stats.NewRNG(5))
	for tt := 0.0; tt < 200; tt += 1.7 {
		d := c.ContentDifficulty(tt)
		if d < 0.94 || d > 1.06 {
			t.Fatalf("difficulty %v out of ±5%% band", d)
		}
	}
}

func TestROIKnobEffects(t *testing.T) {
	c := refClip()
	full := Config{Resolution: 1500, FPS: 15}            // ROI unset = full frame
	roi := Config{Resolution: 1500, FPS: 15, ROI: 0.5}   // half-frame ROI
	one := Config{Resolution: 1500, FPS: 15, ROI: 1}     // explicit full frame

	// ROI=1 and unset must behave identically.
	if c.Accuracy(full) != c.Accuracy(one) || c.Bandwidth(full) != c.Bandwidth(one) ||
		c.Power(full) != c.Power(one) || c.ProcTimeOf(full) != c.ProcTimeOf(one) {
		t.Fatal("ROI=1 differs from unset ROI")
	}
	// Smaller ROI: cheaper everywhere, slightly less accurate.
	if c.Bandwidth(roi) >= c.Bandwidth(full) {
		t.Error("ROI did not reduce bandwidth")
	}
	if c.Compute(roi) >= c.Compute(full) {
		t.Error("ROI did not reduce compute")
	}
	if c.Power(roi) >= c.Power(full) {
		t.Error("ROI did not reduce power")
	}
	if c.ProcTimeOf(roi) >= c.ProcTimeOf(full) {
		t.Error("ROI did not reduce per-frame processing time")
	}
	if c.Accuracy(roi) >= c.Accuracy(full) {
		t.Error("ROI should cost some accuracy")
	}
	// Costs saturate: even ROI → 0 keeps background/encode overheads.
	tiny := Config{Resolution: 1500, FPS: 15, ROI: 0.01}
	if c.Bandwidth(tiny) < 0.1*c.Bandwidth(full) {
		t.Error("ROI bandwidth saving implausibly large")
	}
	// Out-of-range ROI values are treated as full frame.
	weird := Config{Resolution: 1500, FPS: 15, ROI: 7}
	if c.Accuracy(weird) != c.Accuracy(full) {
		t.Error("out-of-range ROI not normalized")
	}
}

func TestDriftedClip(t *testing.T) {
	c := NewClip("d", stats.NewRNG(9))
	cfg := Config{Resolution: 1000, FPS: 10}
	// Find a time where difficulty is clearly above 1.
	var tHard float64
	for tt := 0.0; tt < 100; tt += 0.5 {
		if c.ContentDifficulty(tt) > 1.03 {
			tHard = tt
			break
		}
	}
	d := c.Drifted(tHard)
	if d.Compute(cfg) <= c.Compute(cfg) {
		t.Error("harder content should cost more compute")
	}
	if d.Accuracy(cfg) >= c.Accuracy(cfg) {
		t.Error("harder content should detect worse")
	}
	// Original clip unchanged.
	if c.ComputeFac != NewClip("d", stats.NewRNG(9)).ComputeFac {
		t.Error("Drifted mutated the receiver")
	}
}

func TestNegativeNoiseStdDefaults(t *testing.T) {
	p := NewProfiler(-1, stats.NewRNG(1))
	if p.NoiseStd != 0.02 {
		t.Fatalf("NoiseStd = %v", p.NoiseStd)
	}
}
