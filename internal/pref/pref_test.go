package pref

import (
	"strings"
	"testing"

	"repro/internal/objective"
	"repro/internal/stats"
)

func randomPool(n int, seed uint64) []objective.Vector {
	rng := stats.NewRNG(seed)
	pool := make([]objective.Vector, n)
	for i := range pool {
		for k := range pool[i] {
			pool[i][k] = rng.Float64()
		}
	}
	return pool
}

func TestOracleExact(t *testing.T) {
	o := &Oracle{Pref: objective.UniformPreference()}
	good := objective.UtopiaNormalized()
	var bad objective.Vector
	bad[objective.Latency] = 1
	if !o.Prefer(good, bad) {
		t.Fatal("oracle must prefer utopia")
	}
	if o.Prefer(bad, good) {
		t.Fatal("oracle inverted")
	}
}

func TestOracleNoiseFlipsCloseCalls(t *testing.T) {
	rng := stats.NewRNG(5)
	o := &Oracle{Pref: objective.UniformPreference(), Noise: 0.5, Rng: rng}
	a := objective.UtopiaNormalized()
	b := a
	b[objective.Energy] = 0.01 // nearly identical
	flips := 0
	for i := 0; i < 200; i++ {
		if !o.Prefer(a, b) {
			flips++
		}
	}
	if flips == 0 || flips == 200 {
		t.Fatalf("noisy oracle answered deterministically (%d/200 flips)", flips)
	}
}

func TestLearnerNeedsPool(t *testing.T) {
	l := NewLearner(&Oracle{Pref: objective.UniformPreference()}, true, stats.NewRNG(1))
	if err := l.Learn(randomPool(1, 1), 5); err != ErrPoolTooSmall {
		t.Fatalf("err = %v", err)
	}
}

func TestLearnerAccuracyImprovesWithPairs(t *testing.T) {
	truth := objective.Preference{W: objective.Vector{1, 2, 0.5, 1.5, 1}}
	run := func(pairs int) float64 {
		dm := &Oracle{Pref: truth}
		l := NewLearner(dm, true, stats.NewRNG(7))
		if err := l.Learn(randomPool(24, 3), pairs); err != nil {
			t.Fatal(err)
		}
		return PairwiseAccuracy(l.Model, truth, 400, stats.NewRNG(11))
	}
	few := run(3)
	many := run(24)
	if many < 0.8 {
		t.Fatalf("accuracy with 24 pairs = %v, want ≥ 0.8", many)
	}
	if many+0.05 < few {
		t.Fatalf("accuracy regressed with more pairs: %v -> %v", few, many)
	}
}

func TestEUBOBeatsOrMatchesRandomSelection(t *testing.T) {
	// Averaged over seeds, EUBO-selected pairs should not be worse than
	// random pairs at equal budget.
	truth := objective.Preference{W: objective.Vector{0.2, 1, 1.6, 3.2, 1}}
	avg := func(useEUBO bool) float64 {
		var acc float64
		const runs = 5
		for seed := uint64(0); seed < runs; seed++ {
			dm := &Oracle{Pref: truth}
			l := NewLearner(dm, useEUBO, stats.NewRNG(100+seed))
			if err := l.Learn(randomPool(20, 40+seed), 9); err != nil {
				t.Fatal(err)
			}
			acc += PairwiseAccuracy(l.Model, truth, 300, stats.NewRNG(200+seed))
		}
		return acc / runs
	}
	eubo := avg(true)
	random := avg(false)
	if eubo < random-0.08 {
		t.Fatalf("EUBO selection markedly worse than random: %v vs %v", eubo, random)
	}
}

func TestLearnerRespectsPairBudget(t *testing.T) {
	dm := &Oracle{Pref: objective.UniformPreference()}
	l := NewLearner(dm, true, stats.NewRNG(13))
	if err := l.Learn(randomPool(10, 17), 7); err != nil {
		t.Fatal(err)
	}
	if got := l.Model.NumComparisons(); got != 7 {
		t.Fatalf("asked %d comparisons, want 7", got)
	}
}

func TestConsoleDM(t *testing.T) {
	var out strings.Builder
	dm := &ConsoleDM{In: strings.NewReader("garbage\n2\n1\n"), Out: &out}
	a := objective.UtopiaNormalized()
	var b objective.Vector
	// First query: garbage re-prompts, then "2" → prefers second.
	if dm.Prefer(a, b) {
		t.Fatal("answer 2 should mean the second option")
	}
	// Second query: "1" → prefers first.
	if !dm.Prefer(a, b) {
		t.Fatal("answer 1 should mean the first option")
	}
	// Third query: EOF → defaults to first.
	if !dm.Prefer(a, b) {
		t.Fatal("EOF should default to the first option")
	}
	rendered := out.String()
	for _, want := range []string{"latency", "accuracy", "option 1", "please answer"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("console output missing %q:\n%s", want, rendered)
		}
	}
}

func TestLearnerExhaustsSmallPoolGracefully(t *testing.T) {
	dm := &Oracle{Pref: objective.UniformPreference()}
	l := NewLearner(dm, false, stats.NewRNG(19))
	// Pool of 3 has only 3 distinct pairs; asking for 10 must stop early.
	if err := l.Learn(randomPool(3, 21), 10); err != nil {
		t.Fatal(err)
	}
	if got := l.Model.NumComparisons(); got != 3 {
		t.Fatalf("comparisons = %d, want 3", got)
	}
}
