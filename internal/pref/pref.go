// Package pref implements the comparison-based preference learning loop of
// Section 4.2: a decision-maker oracle (the paper's evaluation derives
// comparisons from the hidden Eq. 13 benefit), EUBO-driven pair selection,
// and the pairwise-accuracy metric of Figure 9.
package pref

import (
	"errors"
	"math/rand/v2"

	"repro/internal/acq"
	"repro/internal/kernel"
	"repro/internal/objective"
	"repro/internal/prefgp"
	"repro/internal/stats"
)

// DecisionMaker answers pairwise comparisons between normalized outcome
// vectors.
type DecisionMaker interface {
	// Prefer reports whether the decision maker prefers y1 to y2.
	Prefer(y1, y2 objective.Vector) bool
}

// Oracle is a decision maker backed by a hidden true preference (Eq. 13),
// optionally with probit response noise: with Noise > 0, comparisons whose
// benefit gap is small are answered inconsistently, like a human would.
type Oracle struct {
	Pref  objective.Preference
	Noise float64 // std of the Thurstonian response noise, 0 = exact
	Rng   *rand.Rand
}

// Prefer implements DecisionMaker.
func (o *Oracle) Prefer(y1, y2 objective.Vector) bool {
	d := o.Pref.Benefit(y1) - o.Pref.Benefit(y2)
	if o.Noise > 0 && o.Rng != nil {
		d += o.Noise * o.Rng.NormFloat64()
	}
	return d > 0
}

// Learner runs the preference-learning loop: it owns a preference GP and
// grows its comparison set by querying a decision maker, selecting each
// pair either with EUBO (the paper's accelerator) or at random.
type Learner struct {
	Model *prefgp.Model
	DM    DecisionMaker
	// UseEUBO selects comparison pairs by maximizing EUBO (Eq. 11);
	// otherwise pairs are drawn uniformly from the pool.
	UseEUBO bool
	Rng     *rand.Rand
	// EUBOQueries counts the decision-maker queries whose pair was chosen
	// by the EUBO search (as opposed to random pairing); telemetry reads
	// it after Learn.
	EUBOQueries int
}

// NewLearner builds a learner over the K-dimensional normalized outcome
// space with the paper's GP preference model.
func NewLearner(dm DecisionMaker, useEUBO bool, rng *rand.Rand) *Learner {
	k := kernel.NewRBF(objective.K)
	// Outcome vectors are normalized to [0,1]^K and the true benefit
	// (Eq. 13) is piecewise-linear in each coordinate, so a long
	// lengthscale — locally near-linear sample paths — generalizes from
	// few comparisons.
	p := k.LogParams()
	p[0] = 1.4 // σ² ≈ 4: utilities span a few units once many comparisons bind
	for i := 1; i < len(p); i++ {
		p[i] = 0 // ℓ = 1
	}
	k.SetLogParams(p)
	return &Learner{
		Model:   prefgp.NewModel(k, 0.03),
		DM:      dm,
		UseEUBO: useEUBO,
		Rng:     rng,
	}
}

// ErrPoolTooSmall is returned when fewer than two candidate outcomes exist.
var ErrPoolTooSmall = errors.New("pref: need at least two candidate outcome vectors")

// Learn runs nPairs query rounds against the pool of candidate outcome
// vectors (normalized), refitting the model after every answer as in
// Algorithm 2's preference-modeling phase.
func (l *Learner) Learn(pool []objective.Vector, nPairs int) error {
	if len(pool) < 2 {
		return ErrPoolTooSmall
	}
	pts := make([][]float64, len(pool))
	idx := make([]int, len(pool))
	for i, y := range pool {
		pts[i] = y.Slice()
		idx[i] = l.Model.AddPoint(pts[i])
	}
	asked := make(map[[2]int]bool)
	for v := 0; v < nPairs; v++ {
		var i, j int
		if l.UseEUBO && l.Model.NumComparisons() > 0 {
			// Model exists only after the first (random) comparison.
			if err := l.Model.Fit(); err != nil {
				return err
			}
			i, j = l.selectEUBO(pts, asked)
			if i >= 0 {
				l.EUBOQueries++
			}
		} else {
			i, j = l.randomPair(len(pool), asked)
		}
		if i < 0 {
			break // pool exhausted
		}
		asked[[2]int{i, j}] = true
		var err error
		if l.DM.Prefer(pool[i], pool[j]) {
			err = l.Model.AddComparison(idx[i], idx[j])
		} else {
			err = l.Model.AddComparison(idx[j], idx[i])
		}
		if err != nil {
			return err
		}
	}
	return l.Model.Fit()
}

func (l *Learner) randomPair(n int, asked map[[2]int]bool) (int, int) {
	for attempt := 0; attempt < 200; attempt++ {
		i, j := l.Rng.IntN(n), l.Rng.IntN(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		if !asked[[2]int{i, j}] {
			return i, j
		}
	}
	return -1, -1
}

func (l *Learner) selectEUBO(pts [][]float64, asked map[[2]int]bool) (int, int) {
	bestI, bestJ := -1, -1
	best := stats.NormQuantile(1e-12) // very negative sentinel
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if asked[[2]int{i, j}] {
				continue
			}
			if v := acq.EUBO(l.Model, pts[i], pts[j]); v > best {
				best, bestI, bestJ = v, i, j
			}
		}
	}
	return bestI, bestJ
}

// PairwiseAccuracy is the Figure 9 metric: the fraction of random test
// pairs on which the learned model ranks the two outcomes the same way as
// the true preference. Ties in either ranking count as incorrect.
func PairwiseAccuracy(m *prefgp.Model, truth objective.Preference, nPairs int, rng *rand.Rand) float64 {
	correct := 0
	for t := 0; t < nPairs; t++ {
		y1 := randomOutcome(rng)
		y2 := randomOutcome(rng)
		z1, _ := m.PredictOne(y1.Slice())
		z2, _ := m.PredictOne(y2.Slice())
		t1, t2 := truth.Benefit(y1), truth.Benefit(y2)
		if (z1 > z2 && t1 > t2) || (z1 < z2 && t1 < t2) {
			correct++
		}
	}
	return float64(correct) / float64(nPairs)
}

func randomOutcome(rng *rand.Rand) objective.Vector {
	var y objective.Vector
	for k := range y {
		y[k] = rng.Float64()
	}
	return y
}
