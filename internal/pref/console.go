package pref

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/objective"
)

// ConsoleDM is an interactive decision maker: each comparison is printed
// to Out as a two-column table of the five objectives and the answer is
// read from In ("1"/"a" prefers the first outcome, "2"/"b" the second).
// This is the paper's actual deployment mode — a human operator answering
// simple comparative questions instead of writing down weights.
type ConsoleDM struct {
	In  io.Reader
	Out io.Writer

	r *bufio.Reader
}

// Prefer implements DecisionMaker. Unparseable input re-prompts; EOF
// defaults to preferring the first outcome so batch runs cannot hang.
func (c *ConsoleDM) Prefer(y1, y2 objective.Vector) bool {
	if c.r == nil {
		c.r = bufio.NewReader(c.In)
	}
	fmt.Fprintf(c.Out, "\nWhich outcome do you prefer? (objectives normalized: 0 = best cost, 1 = best accuracy)\n")
	fmt.Fprintf(c.Out, "%-12s %10s %10s\n", "objective", "option 1", "option 2")
	for k := 0; k < objective.K; k++ {
		fmt.Fprintf(c.Out, "%-12s %10.3f %10.3f\n", objective.Names[k], y1[k], y2[k])
	}
	for {
		fmt.Fprintf(c.Out, "answer [1/2]: ")
		line, err := c.r.ReadString('\n')
		ans := strings.ToLower(strings.TrimSpace(line))
		switch ans {
		case "1", "a", "first":
			return true
		case "2", "b", "second":
			return false
		}
		if err != nil {
			fmt.Fprintf(c.Out, "(no input; defaulting to option 1)\n")
			return true
		}
		fmt.Fprintf(c.Out, "please answer 1 or 2\n")
	}
}
