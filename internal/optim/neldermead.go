// Package optim provides the derivative-free optimizers the GP and baseline
// layers need: Nelder–Mead simplex search (with multi-start), golden-section
// line search, and exhaustive grid search.
package optim

import (
	"math"
	"math/rand/v2"
)

// Result is the outcome of a minimization run.
type Result struct {
	X     []float64
	F     float64
	Iters int
}

// NelderMeadOptions tunes the simplex search. Zero values select defaults.
type NelderMeadOptions struct {
	MaxIters int     // default 400·dim
	TolF     float64 // simplex f-spread convergence threshold, default 1e-9
	TolX     float64 // simplex diameter convergence threshold, default 1e-6
	Step     float64 // initial simplex edge length, default 0.5
}

// NelderMead minimizes f starting from x0 using the standard
// reflection/expansion/contraction/shrink simplex method.
func NelderMead(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) Result {
	d := len(x0)
	if opt.MaxIters == 0 {
		opt.MaxIters = 400 * d
	}
	if opt.TolF == 0 {
		opt.TolF = 1e-9
	}
	if opt.TolX == 0 {
		opt.TolX = 1e-6
	}
	if opt.Step == 0 {
		opt.Step = 0.5
	}

	// Build the initial simplex: x0 plus a step along each axis.
	n := d + 1
	xs := make([][]float64, n)
	fs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = append([]float64(nil), x0...)
		if i > 0 {
			xs[i][i-1] += opt.Step
		}
		fs[i] = f(xs[i])
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	iters := 0
	for ; iters < opt.MaxIters; iters++ {
		// Order the simplex.
		order(xs, fs)
		// Converged only when both the value spread and the simplex
		// diameter are small: a symmetric simplex straddling the minimum
		// has zero f-spread long before it has collapsed.
		if fs[n-1]-fs[0] < opt.TolF && simplexDiameter(xs) < opt.TolX {
			break
		}
		// Centroid of all but the worst vertex.
		cen := make([]float64, d)
		for i := 0; i < n-1; i++ {
			for j := 0; j < d; j++ {
				cen[j] += xs[i][j]
			}
		}
		for j := range cen {
			cen[j] /= float64(n - 1)
		}
		// Reflection.
		xr := combine(cen, xs[n-1], 1+alpha, -alpha)
		fr := f(xr)
		switch {
		case fr < fs[0]:
			// Expansion.
			xe := combine(cen, xs[n-1], 1+alpha*gamma, -alpha*gamma)
			fe := f(xe)
			if fe < fr {
				xs[n-1], fs[n-1] = xe, fe
			} else {
				xs[n-1], fs[n-1] = xr, fr
			}
		case fr < fs[n-2]:
			xs[n-1], fs[n-1] = xr, fr
		default:
			// Contraction (outside if fr better than worst, else inside).
			var xc []float64
			if fr < fs[n-1] {
				xc = combine(cen, xs[n-1], 1+alpha*rho, -alpha*rho)
			} else {
				xc = combine(cen, xs[n-1], 1-rho, rho)
			}
			fc := f(xc)
			if fc < math.Min(fr, fs[n-1]) {
				xs[n-1], fs[n-1] = xc, fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i < n; i++ {
					xs[i] = combine(xs[0], xs[i], 1-sigma, sigma)
					fs[i] = f(xs[i])
				}
			}
		}
	}
	order(xs, fs)
	return Result{X: xs[0], F: fs[0], Iters: iters}
}

// simplexDiameter returns the max coordinate distance between the best
// vertex and any other vertex.
func simplexDiameter(xs [][]float64) float64 {
	var d float64
	for _, x := range xs[1:] {
		for j, v := range x {
			if dv := math.Abs(v - xs[0][j]); dv > d {
				d = dv
			}
		}
	}
	return d
}

// combine returns a*x + b*y element-wise.
func combine(x, y []float64, a, b float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = a*x[i] + b*y[i]
	}
	return out
}

func order(xs [][]float64, fs []float64) {
	// Insertion sort: simplexes are tiny and nearly sorted between steps.
	for i := 1; i < len(fs); i++ {
		x, fv := xs[i], fs[i]
		j := i - 1
		for j >= 0 && fs[j] > fv {
			xs[j+1], fs[j+1] = xs[j], fs[j]
			j--
		}
		xs[j+1], fs[j+1] = x, fv
	}
}

// MultiStartNelderMead runs NelderMead from x0 plus nStarts-1 random
// perturbations (uniform in ±spread per coordinate) and returns the best
// result. NaN/Inf objective values at a start are skipped.
func MultiStartNelderMead(f func([]float64) float64, x0 []float64, nStarts int, spread float64, rng *rand.Rand, opt NelderMeadOptions) Result {
	best := Result{F: math.Inf(1)}
	for s := 0; s < nStarts; s++ {
		start := append([]float64(nil), x0...)
		if s > 0 {
			for j := range start {
				start[j] += spread * (2*rng.Float64() - 1)
			}
		}
		if v := f(start); math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		r := NelderMead(f, start, opt)
		if r.F < best.F {
			best = r
		}
	}
	return best
}
