package optim

import "math"

// GoldenSection minimizes a unimodal function f over [a, b] to within tol,
// returning the minimizer. Used by the FACT baseline's per-coordinate
// line searches.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	if tol <= 0 {
		tol = 1e-8
	}
	invPhi := (math.Sqrt(5) - 1) / 2 // 0.618...
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for math.Abs(b-a) > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// GridSearchMin evaluates f at every listed point and returns the index of
// the smallest value. Ties resolve to the earliest index.
func GridSearchMin(f func(int) float64, n int) (best int, fbest float64) {
	best, fbest = -1, math.Inf(1)
	for i := 0; i < n; i++ {
		if v := f(i); v < fbest {
			best, fbest = i, v
		}
	}
	return best, fbest
}
