package optim

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1) + 5
	}
	r := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if math.Abs(r.X[0]-3) > 1e-4 || math.Abs(r.X[1]+1) > 1e-4 {
		t.Fatalf("minimizer = %v", r.X)
	}
	if math.Abs(r.F-5) > 1e-7 {
		t.Fatalf("minimum = %v", r.F)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	r := MultiStartNelderMead(f, []float64{-1.2, 1}, 5, 1.0, stats.NewRNG(1), NelderMeadOptions{MaxIters: 5000})
	if math.Abs(r.X[0]-1) > 1e-3 || math.Abs(r.X[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimizer = %v (f=%v)", r.X, r.F)
	}
}

func TestNelderMead1D(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0] - 7) }
	r := NelderMead(f, []float64{0}, NelderMeadOptions{})
	if math.Abs(r.X[0]-7) > 1e-4 {
		t.Fatalf("1D minimizer = %v", r.X)
	}
}

func TestMultiStartSkipsNaNStarts(t *testing.T) {
	// f is NaN outside [0,10]² so random starts may be skipped; the x0
	// start is valid and must be used.
	f := func(x []float64) float64 {
		if x[0] < 0 || x[0] > 10 || x[1] < 0 || x[1] > 10 {
			return math.NaN()
		}
		return (x[0]-5)*(x[0]-5) + (x[1]-5)*(x[1]-5)
	}
	r := MultiStartNelderMead(f, []float64{5.5, 5.5}, 8, 100, stats.NewRNG(2), NelderMeadOptions{})
	if math.IsInf(r.F, 1) {
		t.Fatal("all starts skipped despite valid x0")
	}
	if math.Abs(r.X[0]-5) > 1e-2 || math.Abs(r.X[1]-5) > 1e-2 {
		t.Fatalf("minimizer = %v", r.X)
	}
}

func TestGoldenSection(t *testing.T) {
	got := GoldenSection(func(x float64) float64 { return (x - 2.5) * (x - 2.5) }, 0, 10, 1e-10)
	if math.Abs(got-2.5) > 1e-8 {
		t.Fatalf("GoldenSection = %v", got)
	}
	// Boundary minimum.
	got = GoldenSection(func(x float64) float64 { return x }, 1, 4, 1e-10)
	if math.Abs(got-1) > 1e-6 {
		t.Fatalf("boundary min = %v", got)
	}
}

func TestGridSearchMin(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5}
	i, f := GridSearchMin(func(i int) float64 { return vals[i] }, len(vals))
	if i != 1 || f != 1 {
		t.Fatalf("GridSearchMin = (%d, %v)", i, f)
	}
	i, f = GridSearchMin(func(int) float64 { return 0 }, 0)
	if i != -1 || !math.IsInf(f, 1) {
		t.Fatalf("empty grid = (%d, %v)", i, f)
	}
}
