//go:build !race

package ctlplane

// raceDetectorOn reports whether this test binary runs under the race
// detector; the hollow-fleet scale test shrinks accordingly (race
// instrumentation multiplies the cost of a 1k-goroutine fleet).
const raceDetectorOn = false
