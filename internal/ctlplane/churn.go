package ctlplane

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/runtime"
	"repro/internal/videosim"
)

// RegisterStream queues a video-source registration for the next epoch
// boundary through the wire API.
func (cl *Client) RegisterStream(ctx context.Context, clip ClipSpec) (StreamOpResponse, error) {
	var resp StreamOpResponse
	err := cl.call(ctx, "/v1/streams/register", StreamRegisterRequest{Clip: clip}, &resp, 0)
	return resp, err
}

// DeregisterStream queues a video-source removal for the next epoch
// boundary through the wire API.
func (cl *Client) DeregisterStream(ctx context.Context, name string) (StreamOpResponse, error) {
	var resp StreamOpResponse
	err := cl.call(ctx, "/v1/streams/deregister", StreamDeregisterRequest{Name: name}, &resp, 0)
	return resp, err
}

// ClipSpecOf projects a clip onto its wire form (content phase is not on
// the wire; see ClipSpec).
func ClipSpecOf(c *videosim.Clip) ClipSpec {
	return ClipSpec{
		Name: c.Name, AccBase: c.AccBase, AccFactor: c.AccFactor,
		ComputeFac: c.ComputeFac, BitFac: c.BitFac, EnergyFac: c.EnergyFac,
	}
}

// ChurnDriver replays a fault.ChurnScript over the wire: scripted arrivals
// and departures become /v1/streams POSTs from a client, so a hollow-agent
// fleet exercises the exact churn path a real camera fleet would — HTTP
// handler, op queue, canonicalized drain, incremental admit/evict — rather
// than a shortcut into the runtime. Arrivals mint the same deterministic
// clips the in-process ChurnFeed mints (modulo the wire's zero content
// phase), keyed on (seed, name).
//
// Wire it as an OnEpoch hook. The hook at epoch e runs after e's ops have
// drained, so the driver posts the script's epoch-(e+1) ops there and they
// land exactly on their scripted boundary. Script ops at epochs 0 and 1
// are posted at the first hook and therefore all land at epoch 1 — a
// controller cannot churn an epoch that planned before any hook ran.
type ChurnDriver struct {
	cl     *Client
	script *fault.ChurnScript
	seed   uint64
	next   int
	err    error
}

// NewChurnDriver builds a driver posting script's ops through cl. The
// script's ops must be in non-decreasing epoch order (fault.GenerateChurn
// emits them that way); seed keys arrival clip minting.
func NewChurnDriver(cl *Client, script *fault.ChurnScript, seed uint64) *ChurnDriver {
	return &ChurnDriver{cl: cl, script: script, seed: seed}
}

// OnEpoch posts every script op due at epoch+1. The first wire error stops
// the driver; Err reports it.
func (d *ChurnDriver) OnEpoch(epoch int) {
	if d.err != nil {
		return
	}
	ctx := context.Background()
	for d.next < len(d.script.Ops) && d.script.Ops[d.next].Epoch <= epoch+1 {
		op := d.script.Ops[d.next]
		d.next++
		var err error
		if op.Add {
			_, err = d.cl.RegisterStream(ctx, ClipSpecOf(runtime.MintClip(op.Name, d.seed)))
		} else {
			_, err = d.cl.DeregisterStream(ctx, op.Name)
		}
		if err != nil {
			d.err = fmt.Errorf("ctlplane: churn op %q epoch %d: %w", op.Name, op.Epoch, err)
			return
		}
	}
}

// Err returns the first wire error the driver hit, if any.
func (d *ChurnDriver) Err() error { return d.err }
