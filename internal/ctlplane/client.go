package ctlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/stats"
)

// ErrFenced marks a request the controller rejected as stale — an older
// incarnation, or a result whose (epoch, version) no longer matches the
// pending work. Fenced requests must not be retried: the state they were
// about no longer exists.
var ErrFenced = errors.New("ctlplane: fenced")

// ErrShutdown is returned by Agent.Run when the controller announced the
// end of the run.
var ErrShutdown = errors.New("ctlplane: controller shut down")

// Backoff is a capped exponential backoff with deterministic ±20% jitter.
// The zero value means Base 50ms, Max 2s, jitter on — per the control
// plane's default, transport retries are always jittered so a fleet of
// agents losing the same controller does not reconnect in lockstep. Seed
// decorrelates agents (use the server index); NoJitter disables the spread
// for tests that need exact delays.
type Backoff struct {
	Base     time.Duration
	Max      time.Duration
	Seed     uint64
	NoJitter bool
}

// Delay returns the attempt-th delay (attempt counts from 0).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if b.NoJitter {
		return d
	}
	u := stats.SplitMix64(b.Seed ^ uint64(attempt)*0x9E3779B97F4A7C15 ^ 0xC71)
	f := 0.8 + 0.4*float64(u>>11)/(1<<53)
	return time.Duration(float64(d) * f)
}

// Client is the agent side of the wire protocol: every call runs under an
// explicit timeout, transport errors and 5xx responses are retried with
// the capped jittered backoff, and 409s surface as ErrFenced (never
// retried — fencing is a verdict, not a glitch).
type Client struct {
	BaseURL string
	// HTTP is the underlying client (default http.DefaultClient; the
	// hollow harness swaps in a loopback transport here).
	HTTP *http.Client
	// Timeout bounds one attempt of one call, excluding requested poll
	// park time (default 5s).
	Timeout time.Duration
	// Retries is how many extra attempts a transport-failed call gets
	// (default 3; negative disables).
	Retries int
	Backoff Backoff
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

func (cl *Client) timeout() time.Duration {
	if cl.Timeout > 0 {
		return cl.Timeout
	}
	return 5 * time.Second
}

// call POSTs in as JSON to path and decodes the response into out,
// retrying transport errors and 5xx under the backoff. extra widens the
// per-attempt timeout (poll park time).
func (cl *Client) call(ctx context.Context, path string, in, out any, extra time.Duration) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("ctlplane: encoding %s request: %w", path, err)
	}
	retries := cl.Retries
	if retries == 0 {
		retries = 3
	} else if retries < 0 {
		retries = 0
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(cl.Backoff.Delay(attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		lastErr = cl.once(ctx, path, body, out, extra)
		if lastErr == nil || errors.Is(lastErr, ErrFenced) || ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}

func (cl *Client) once(ctx context.Context, path string, body []byte, out any, extra time.Duration) error {
	actx, cancel := context.WithTimeout(ctx, cl.timeout()+extra)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, cl.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusConflict:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%w: %s: %s", ErrFenced, path, bytes.TrimSpace(msg))
	case resp.StatusCode != http.StatusOK:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("ctlplane: %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Agent is one edge server's worker: it registers, long-polls for
// dispatched evaluations, runs them on its own DES arena, and reports
// fenced results. Version fencing makes it idempotent — work at or below
// its last completed version re-acks the cached result instead of
// re-executing.
type Agent struct {
	Server int
	Name   string
	Client *Client
	// PollWaitMS is the park time requested per poll (default 1000,
	// capped by the controller).
	PollWaitMS int
	// HeartbeatEvery, when positive, sends explicit telemetry heartbeats
	// between work items (daemon mode). Zero relies on polls and results
	// as beats, which is what the lock-step hollow harness wants.
	HeartbeatEvery time.Duration
	// GiveUpAfter bounds how long the poll loop tolerates nothing but
	// transport errors before Run returns the last one. Zero retries
	// forever (the hollow harness owns its agents' lifetimes via ctx); the
	// pamo-agent daemon sets it so a dead controller does not strand the
	// process.
	GiveUpAfter time.Duration
	// OnRegistered fires after each successful register with the granted
	// incarnation (the hollow fleet synchronizes restarts on it).
	OnRegistered func(incarnation uint64)
	// Obs receives the agent-side ctlplane_agent_* metrics (nil = off).
	Obs *obs.Recorder

	arena       *cluster.Arena
	incarnation uint64
	lastVersion uint64
	lastUtil    float64
	lastJitter  float64
	lastResult  ResultRequest
	haveResult  bool
}

// Run drives the agent loop until ctx ends, the controller shuts down
// (returns nil), or this agent is fenced out by a successor (returns
// ErrFenced-wrapped error).
func (a *Agent) Run(ctx context.Context) error {
	reg := a.Obs.Registry()
	evals := reg.Counter("ctlplane_agent_evals_total")
	staleWork := reg.Counter("ctlplane_agent_stale_work_total")
	a.arena = cluster.NewArena()

	var rr RegisterResponse
	if err := a.Client.call(ctx, "/v1/register", RegisterRequest{Server: a.Server, Name: a.Name}, &rr, 0); err != nil {
		return fmt.Errorf("ctlplane: agent %d register: %w", a.Server, err)
	}
	a.incarnation = rr.Incarnation
	if a.OnRegistered != nil {
		a.OnRegistered(rr.Incarnation)
	}

	wait := a.PollWaitMS
	if wait <= 0 {
		wait = 1000
	}
	lastBeat := time.Now()
	lastOK := time.Now()
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var pr PollResponse
		err := a.Client.call(ctx, "/v1/poll",
			PollRequest{Server: a.Server, Incarnation: a.incarnation, WaitMS: wait},
			&pr, time.Duration(wait)*time.Millisecond)
		switch {
		case err == nil:
			lastOK = time.Now()
		case errors.Is(err, ErrFenced):
			// A newer incarnation registered for this server: a successor
			// owns the index now, and acting on its behalf is exactly what
			// fencing exists to stop.
			return fmt.Errorf("ctlplane: agent %d superseded: %w", a.Server, err)
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			if a.GiveUpAfter > 0 && time.Since(lastOK) > a.GiveUpAfter {
				return fmt.Errorf("ctlplane: agent %d gave up after %v without a reachable controller: %w", a.Server, a.GiveUpAfter, err)
			}
			continue // transport trouble: call already backed off; poll again
		}
		switch {
		case pr.Shutdown:
			return nil
		case pr.NoWork:
		case pr.Version <= a.lastVersion:
			// Duplicate dispatch of completed work (a lost result ack):
			// re-ack the cached result instead of re-executing.
			staleWork.Inc()
			if a.haveResult && pr.Version == a.lastResult.Version {
				_ = a.sendResult(ctx, a.lastResult)
			}
		default:
			res := a.evaluate(pr)
			evals.Inc()
			a.lastVersion = pr.Version
			a.lastResult = ResultRequest{
				Server: a.Server, Incarnation: a.incarnation,
				Epoch: pr.Epoch, Version: pr.Version, Result: res,
			}
			a.haveResult = true
			if err := a.sendResult(ctx, a.lastResult); err != nil && ctx.Err() != nil {
				return ctx.Err()
			}
		}
		if a.HeartbeatEvery > 0 && time.Since(lastBeat) >= a.HeartbeatEvery {
			lastBeat = time.Now()
			_ = a.Client.call(ctx, "/v1/heartbeat", HeartbeatRequest{
				Server: a.Server, Incarnation: a.incarnation,
				Utilization: a.lastUtil, MaxJitter: a.lastJitter,
			}, &HeartbeatResponse{}, 0)
		}
	}
}

// evaluate runs the dispatched specs on the agent's DES arena and folds the
// frames exactly as the controller's in-process evaluation does — same
// iteration order, same float additions — so a wire-driven run merges to
// bit-identical epoch outcomes.
func (a *Agent) evaluate(pr PollResponse) runtime.ServerEvalResult {
	res := a.arena.SimulateServer(pr.Specs, pr.Server, pr.Horizon)
	var out runtime.ServerEvalResult
	for _, f := range res.Frames {
		out.LatSum += f.Latency()
		out.Frames++
	}
	out.MaxJitter = res.MaxJitter
	a.lastUtil = res.Utilization
	a.lastJitter = res.MaxJitter
	return out
}

// sendResult reports a fenced result. A fenced rejection is success from
// the agent's point of view: the controller either already has this result
// or has moved past it.
func (a *Agent) sendResult(ctx context.Context, rr ResultRequest) error {
	err := a.Client.call(ctx, "/v1/result", rr, &ResultResponse{}, 0)
	if errors.Is(err, ErrFenced) {
		return nil
	}
	return err
}
