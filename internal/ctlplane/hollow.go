package ctlplane

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/fault"
)

// Hollow-agent mode (kubemark-style): thousands of real Agent loops in one
// process, talking to the controller through an in-process loopback
// RoundTripper instead of TCP. Every agent runs the full wire protocol —
// register, fenced polls, DES evaluation, fenced results — so the only
// thing hollow about them is the socket. No file descriptors are consumed,
// which is what lets a 1k+-server fleet fit in a unit test.

// loopbackTransport serves every request directly against an http.Handler.
// The request context flows into the handler, so client-side timeouts
// cancel parked long-polls exactly as they would over a real connection.
type loopbackTransport struct {
	h http.Handler
}

// memResponse is the minimal in-memory http.ResponseWriter.
type memResponse struct {
	header http.Header
	buf    bytes.Buffer
	status int
}

func (m *memResponse) Header() http.Header { return m.header }
func (m *memResponse) Write(p []byte) (int, error) {
	if m.status == 0 {
		m.status = http.StatusOK
	}
	return m.buf.Write(p)
}
func (m *memResponse) WriteHeader(status int) {
	if m.status == 0 {
		m.status = status
	}
}

func (t *loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	w := &memResponse{header: make(http.Header)}
	t.h.ServeHTTP(w, req)
	if req.Body != nil {
		req.Body.Close()
	}
	if err := req.Context().Err(); err != nil {
		// The handler returned because the request was cancelled (a parked
		// poll whose agent died): surface the cancellation, not a bogus
		// empty 200.
		return nil, err
	}
	status := w.status
	if status == 0 {
		status = http.StatusOK
	}
	return &http.Response{
		StatusCode: status,
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Header:     w.header,
		Body:       io.NopCloser(bytes.NewReader(w.buf.Bytes())),
		Request:    req,
	}, nil
}

// LoopbackClient returns a wire client whose transport serves requests
// in-process against the controller's handler.
func LoopbackClient(c *Controller, seed uint64) *Client {
	return &Client{
		BaseURL: "http://ctlplane.local",
		HTTP:    &http.Client{Transport: &loopbackTransport{h: c.Handler()}},
		Backoff: Backoff{Seed: seed},
	}
}

// hollowAgent is one running hollow agent: its loop goroutine, its cancel
// handle, and the signals the fleet synchronizes on.
type hollowAgent struct {
	cancel     context.CancelFunc
	done       chan struct{}
	registered chan struct{}
}

// HollowFleet runs one hollow Agent per physical server against a
// controller. Kill and Restart are synchronous — Kill returns after the
// agent's goroutine has exited, Restart after the successor has registered
// — so a chaos script applied from the controller's OnEpoch hook yields a
// reproducible health trajectory.
type HollowFleet struct {
	c    *Controller
	ctx  context.Context
	stop context.CancelFunc

	mu     sync.Mutex
	agents []*hollowAgent
}

// NewHollowFleet sizes a fleet of n hollow agents (one per server index).
// Call StartAll to launch them.
func NewHollowFleet(c *Controller, n int) *HollowFleet {
	ctx, cancel := context.WithCancel(context.Background())
	return &HollowFleet{c: c, ctx: ctx, stop: cancel, agents: make([]*hollowAgent, n)}
}

// StartAll launches every agent and blocks until all have registered.
func (f *HollowFleet) StartAll() error {
	f.mu.Lock()
	n := len(f.agents)
	f.mu.Unlock()
	for j := 0; j < n; j++ {
		if err := f.start(j); err != nil {
			return err
		}
	}
	return nil
}

// start launches (or relaunches) server j's agent and waits for it to
// register.
func (f *HollowFleet) start(j int) error {
	ctx, cancel := context.WithCancel(f.ctx)
	ha := &hollowAgent{
		cancel:     cancel,
		done:       make(chan struct{}),
		registered: make(chan struct{}),
	}
	agent := &Agent{
		Server: j,
		Name:   fmt.Sprintf("hollow-%d", j),
		Client: LoopbackClient(f.c, uint64(j)+1),
		OnRegistered: func(uint64) {
			close(ha.registered)
		},
	}
	f.mu.Lock()
	f.agents[j] = ha
	f.mu.Unlock()
	go func() {
		defer close(ha.done)
		_ = agent.Run(ctx)
	}()
	select {
	case <-ha.registered:
		return nil
	case <-ha.done:
		return fmt.Errorf("ctlplane: hollow agent %d exited before registering", j)
	case <-time.After(30 * time.Second):
		cancel()
		return fmt.Errorf("ctlplane: hollow agent %d did not register in time", j)
	}
}

// Kill stops server j's agent and waits for its goroutine to exit. The
// controller is not told: it must notice the silence through missed beats.
func (f *HollowFleet) Kill(j int) {
	f.mu.Lock()
	ha := f.agents[j]
	f.mu.Unlock()
	if ha == nil {
		return
	}
	ha.cancel()
	<-ha.done
}

// Restart launches a fresh agent for server j (a new incarnation) and
// waits for it to register.
func (f *HollowFleet) Restart(j int) error {
	f.Kill(j)
	return f.start(j)
}

// Close kills the whole fleet and waits for every goroutine.
func (f *HollowFleet) Close() {
	f.stop()
	f.mu.Lock()
	agents := append([]*hollowAgent(nil), f.agents...)
	f.mu.Unlock()
	for _, ha := range agents {
		if ha != nil {
			<-ha.done
		}
	}
}

// ChaosDriver acts out the liveness half of a fault scenario against a
// hollow fleet: server_down kills the agent process, server_up restarts
// it. Wire it to Options.OnEpoch; events fire synchronously at their
// epoch's boundary, before liveness inference, so the controller's
// detection runs against a settled fleet state.
type ChaosDriver struct {
	Fleet  *HollowFleet
	Events []fault.Event // liveness events only (fault.Scenario.Split)
	next   int
}

// NewChaosDriver orders the scenario's liveness events for replay.
func NewChaosDriver(fleet *HollowFleet, sc *fault.Scenario) *ChaosDriver {
	liveness, _ := sc.Split()
	return &ChaosDriver{Fleet: fleet, Events: liveness.Events}
}

// OnEpoch applies every not-yet-applied event at or before epoch.
func (d *ChaosDriver) OnEpoch(epoch int) {
	for d.next < len(d.Events) && d.Events[d.next].Epoch <= epoch {
		e := d.Events[d.next]
		d.next++
		switch e.Action {
		case fault.ServerDown:
			d.Fleet.Kill(e.Target)
		case fault.ServerUp:
			_ = d.Fleet.Restart(e.Target)
		}
	}
}
