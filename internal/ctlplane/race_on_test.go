//go:build race

package ctlplane

// raceDetectorOn: see race_off_test.go.
const raceDetectorOn = true
