package ctlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/videosim"
)

// testSystem builds the small deterministic cluster the golden fault run
// uses: uniform clips, heterogeneous uplinks.
func testSystem(videos, servers int) *objective.System {
	clips := make([]*videosim.Clip, videos)
	for i := range clips {
		clips[i] = &videosim.Clip{
			Name: fmt.Sprintf("cam%d", i), AccBase: 0.9,
			AccFactor: 1, ComputeFac: 1, BitFac: 1, EnergyFac: 1,
		}
	}
	srvs := make([]cluster.Server, servers)
	for j := range srvs {
		srvs[j] = cluster.Server{Uplink: float64(10+5*(j%8)) * 1e6}
	}
	return &objective.System{Clips: clips, Servers: srvs}
}

func newRuntime(sys *objective.System, rec *obs.Recorder, strict bool) *runtime.Controller {
	var chk *check.Checker
	if strict {
		chk = check.New(true, rec)
	}
	return &runtime.Controller{
		Sys:   sys,
		Sched: &runtime.FixedScheduler{Cfg: videosim.Config{Resolution: 1000, FPS: 10}},
		Truth: objective.UniformPreference(),
		Norm:  objective.NewNormalizer(sys),
		Opt:   runtime.Options{ReplanEvery: 100, Check: chk},
		Obs:   rec,
	}
}

// TestWireMatchesInProcess is the headline equivalence property: the
// wire-driven loop (controller + hollow agents, no faults) must reproduce
// the in-process run byte-exactly — same decisions, same DES outcomes,
// same benefits, down to the last bit of every float. Go's encoding/json
// round-trips float64 exactly, the agents fold frames in the same order
// the in-process evaluator does, and this test pins both facts.
func TestWireMatchesInProcess(t *testing.T) {
	const videos, servers, epochs = 6, 3, 8

	inproc := newRuntime(testSystem(videos, servers), obs.NewRecorder(nil), true)
	want, err := inproc.Run(context.Background(), epochs)
	if err != nil {
		t.Fatal(err)
	}

	rt := newRuntime(testSystem(videos, servers), obs.NewRecorder(nil), true)
	ctl := New(rt, Options{MissedBeats: 2})
	fleet := NewHollowFleet(ctl, servers)
	if err := fleet.StartAll(); err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	got, err := ctl.Run(context.Background(), epochs)
	if err != nil {
		t.Fatal(err)
	}

	wj, _ := json.Marshal(want.Reports)
	gj, _ := json.Marshal(got.Reports)
	if string(wj) != string(gj) {
		t.Fatalf("wire trace diverged from in-process:\n got %s\nwant %s", gj, wj)
	}
	reg := ctl.rec.Registry()
	if v := reg.Counter("ctlplane_results_total").Value(); v != uint64(servers*epochs) {
		t.Fatalf("results_total = %d, want %d", v, servers*epochs)
	}
	if v := reg.Counter("ctlplane_marks_down_total").Value(); v != 0 {
		t.Fatalf("no-fault run marked %d servers down", v)
	}
}

// TestOracleHealthMatchesInjector pins the other equivalence: with
// OracleHealth the wire loop under a fault scenario must match the
// in-process injector-driven run byte-exactly (the root-package golden
// test checks the same configuration against testdata/golden/).
func TestOracleHealthMatchesInjector(t *testing.T) {
	const videos, servers, epochs = 6, 3, 10
	sc := &fault.Scenario{Name: "golden-crash", Events: []fault.Event{
		{Epoch: 2, Action: fault.ServerDown, Target: 0},
		{Epoch: 4, Action: fault.ServerDown, Target: 2},
		{Epoch: 7, Action: fault.ServerUp, Target: 0},
	}}

	sysA := testSystem(videos, servers)
	injA, err := fault.NewInjector(sc, servers, videos)
	if err != nil {
		t.Fatal(err)
	}
	inproc := newRuntime(sysA, obs.NewRecorder(nil), true)
	inproc.Faults = injA
	want, err := inproc.Run(context.Background(), epochs)
	if err != nil {
		t.Fatal(err)
	}

	injB, err := fault.NewInjector(sc, servers, videos)
	if err != nil {
		t.Fatal(err)
	}
	rt := newRuntime(testSystem(videos, servers), obs.NewRecorder(nil), true)
	ctl := New(rt, Options{Env: injB, OracleHealth: true})
	fleet := NewHollowFleet(ctl, servers)
	if err := fleet.StartAll(); err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	got, err := ctl.Run(context.Background(), epochs)
	if err != nil {
		t.Fatal(err)
	}

	wj, _ := json.Marshal(want.Reports)
	gj, _ := json.Marshal(got.Reports)
	if string(wj) != string(gj) {
		t.Fatalf("oracle wire trace diverged:\n got %s\nwant %s", gj, wj)
	}
}

// TestLivenessInference kills an agent mid-run with no injector in sight:
// the controller must notice the silence through missed beats, mark the
// server down (forcing a masked replan), and mark it back up after the
// restart — all under a strict checker.
func TestLivenessInference(t *testing.T) {
	const videos, servers, epochs = 6, 3, 10
	rt := newRuntime(testSystem(videos, servers), obs.NewRecorder(nil), true)
	var fleet *HollowFleet
	ctl := New(rt, Options{
		MissedBeats: 1,
		EvalTimeout: 2 * time.Second,
		OnEpoch: func(epoch int) {
			switch epoch {
			case 2:
				fleet.Kill(1)
			case 6:
				if err := fleet.Restart(1); err != nil {
					t.Errorf("restart: %v", err)
				}
			}
		},
	})
	fleet = NewHollowFleet(ctl, servers)
	if err := fleet.StartAll(); err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	trace, err := ctl.Run(context.Background(), epochs)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != epochs {
		t.Fatalf("got %d reports", len(trace.Reports))
	}

	reg := ctl.rec.Registry()
	if v := reg.Counter("ctlplane_marks_down_total").Value(); v != 1 {
		t.Fatalf("marks_down_total = %d, want 1", v)
	}
	if v := reg.Counter("ctlplane_marks_up_total").Value(); v != 1 {
		t.Fatalf("marks_up_total = %d, want 1", v)
	}
	// Kill at epoch 2 with MissedBeats=1: the server's last beat lands in
	// epoch 1, epoch 2 ends mid-kill and epoch 3 elapses fully silent —
	// one full missed beat, still within the allowance — and the liveness
	// check at the START of epoch 4 sees the allowance exceeded and marks
	// it down. The restart at epoch 6 registers synchronously, so epoch 6
	// already runs on 3 servers.
	byEpoch := map[int]runtime.EpochReport{}
	for _, r := range trace.Reports {
		byEpoch[r.Epoch] = r
	}
	if got := byEpoch[4].HealthyServers; got != servers-1 {
		t.Fatalf("epoch 4 healthy = %d, want %d", got, servers-1)
	}
	if !byEpoch[4].Replanned || byEpoch[4].FaultEvents == 0 {
		t.Fatalf("detection epoch did not force a replan: %+v", byEpoch[4])
	}
	if got := byEpoch[6].HealthyServers; got != servers {
		t.Fatalf("epoch 6 healthy = %d, want %d", got, servers)
	}
	if byEpoch[6].FaultEvents == 0 {
		t.Fatalf("recovery epoch carries no fault event: %+v", byEpoch[6])
	}
	if v := reg.Counter("ctlplane_eval_timeouts_total").Value(); v == 0 {
		t.Fatal("killed agent's dispatch never timed out")
	}
	// Strict-audit cleanliness is the run completing: every installed
	// decision passed the exact verifier (a strict violation aborts Run).
	// Outage epochs do record relaxed model-error violations (drifted
	// const1, fault-broken zero-jitter claims) — those are metric-only by
	// design, identically to the in-process injector-driven runs.
	if v := reg.Counter("check_checks_decision").Value(); v == 0 {
		t.Fatal("strict decision audits never ran")
	}
}

// TestIncarnationFencing pins the fencing rules at the HTTP layer: a
// re-register bumps the incarnation and every message carrying the old one
// is rejected with 409, idempotently.
func TestIncarnationFencing(t *testing.T) {
	rt := newRuntime(testSystem(2, 2), obs.NewRecorder(nil), false)
	ctl := New(rt, Options{})
	cl := LoopbackClient(ctl, 1)
	ctx := context.Background()

	var r1, r2 RegisterResponse
	if err := cl.call(ctx, "/v1/register", RegisterRequest{Server: 0}, &r1, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.call(ctx, "/v1/register", RegisterRequest{Server: 0}, &r2, 0); err != nil {
		t.Fatal(err)
	}
	if r2.Incarnation <= r1.Incarnation {
		t.Fatalf("incarnation did not advance: %d then %d", r1.Incarnation, r2.Incarnation)
	}

	// The predecessor is fenced out of every endpoint.
	for _, path := range []string{"/v1/poll", "/v1/result", "/v1/heartbeat"} {
		var req any
		switch path {
		case "/v1/poll":
			req = PollRequest{Server: 0, Incarnation: r1.Incarnation, WaitMS: 1}
		case "/v1/result":
			req = ResultRequest{Server: 0, Incarnation: r1.Incarnation, Epoch: 0, Version: 1}
		case "/v1/heartbeat":
			req = HeartbeatRequest{Server: 0, Incarnation: r1.Incarnation}
		}
		err := cl.call(ctx, path, req, nil, 0)
		if !strings.Contains(fmt.Sprint(err), "fenced") {
			t.Fatalf("%s with stale incarnation: err = %v, want fenced", path, err)
		}
	}
	if v := ctl.rec.Registry().Counter("ctlplane_stale_incarnations_total").Value(); v != 3 {
		t.Fatalf("stale_incarnations_total = %d, want 3", v)
	}
	// The successor is not.
	if err := cl.call(ctx, "/v1/heartbeat", HeartbeatRequest{Server: 0, Incarnation: r2.Incarnation}, &HeartbeatResponse{}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestResultVersionFencing pins duplicate/stale result rejection: only the
// result matching the pending item's (epoch, version) is accepted; a
// replayed or mismatched one bounces with 409 and a metric.
func TestResultVersionFencing(t *testing.T) {
	rt := newRuntime(testSystem(2, 2), obs.NewRecorder(nil), false)
	ctl := New(rt, Options{EvalTimeout: 5 * time.Second})
	cl := LoopbackClient(ctl, 1)
	ctx := context.Background()

	var rr RegisterResponse
	if err := cl.call(ctx, "/v1/register", RegisterRequest{Server: 1}, &rr, 0); err != nil {
		t.Fatal(err)
	}
	type evalOut struct {
		res runtime.ServerEvalResult
		err error
	}
	done := make(chan evalOut, 1)
	go func() {
		res, err := ctl.EvaluateServer(ctx, 0, 1,
			[]cluster.StreamSpec{{Period: 0.1, Proc: 0.01, Bits: 1e5}},
			cluster.Server{Uplink: 1e7}, 5)
		done <- evalOut{res, err}
	}()

	var pr PollResponse
	for {
		if err := cl.call(ctx, "/v1/poll", PollRequest{Server: 1, Incarnation: rr.Incarnation, WaitMS: 200}, &pr, time.Second); err != nil {
			t.Fatal(err)
		}
		if !pr.NoWork {
			break
		}
	}
	if pr.Version == 0 || len(pr.Specs) != 1 {
		t.Fatalf("poll returned %+v", pr)
	}

	// Wrong version first: fenced, pending work untouched.
	bad := ResultRequest{Server: 1, Incarnation: rr.Incarnation, Epoch: pr.Epoch, Version: pr.Version + 7,
		Result: runtime.ServerEvalResult{Frames: 1}}
	if err := cl.call(ctx, "/v1/result", bad, nil, 0); !strings.Contains(fmt.Sprint(err), "fenced") {
		t.Fatalf("mismatched version accepted: %v", err)
	}

	good := ResultRequest{Server: 1, Incarnation: rr.Incarnation, Epoch: pr.Epoch, Version: pr.Version,
		Result: runtime.ServerEvalResult{LatSum: 1.5, Frames: 3, MaxJitter: 0.25}}
	if err := cl.call(ctx, "/v1/result", good, &ResultResponse{}, 0); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !reflect.DeepEqual(out.res, good.Result) {
		t.Fatalf("evaluator got %+v, want %+v", out.res, good.Result)
	}

	// Replay after acceptance: fenced again (idempotent duplicate).
	if err := cl.call(ctx, "/v1/result", good, nil, 0); !strings.Contains(fmt.Sprint(err), "fenced") {
		t.Fatalf("duplicate result accepted: %v", err)
	}
	if v := ctl.rec.Registry().Counter("ctlplane_stale_results_total").Value(); v != 2 {
		t.Fatalf("stale_results_total = %d, want 2", v)
	}
}

// TestEvalTimeoutClearsPending pins the controller side of abandonment: a
// dispatch nobody serves times out, scores the server as absent, and
// clears the pending item so a late poll cannot resurrect it.
func TestEvalTimeoutClearsPending(t *testing.T) {
	rt := newRuntime(testSystem(2, 2), obs.NewRecorder(nil), false)
	ctl := New(rt, Options{EvalTimeout: 30 * time.Millisecond})
	_, err := ctl.EvaluateServer(context.Background(), 0, 0, nil, cluster.Server{Uplink: 1e7}, 5)
	if err == nil {
		t.Fatal("unserved dispatch did not time out")
	}
	ctl.mu.Lock()
	pending := ctl.agents[0].pending
	ctl.mu.Unlock()
	if pending != nil {
		t.Fatal("timed-out work item left pending")
	}
	if v := ctl.rec.Registry().Counter("ctlplane_eval_timeouts_total").Value(); v != 1 {
		t.Fatalf("eval_timeouts_total = %d", v)
	}
}

// TestStreamChurnOverWire registers a new video and deregisters an old one
// over HTTP mid-run; the loop must apply both at the epoch boundary,
// rebuild the normalizer, and force a full replan that covers the new set.
func TestStreamChurnOverWire(t *testing.T) {
	const videos, servers, epochs = 4, 2, 6
	rt := newRuntime(testSystem(videos, servers), obs.NewRecorder(nil), true)
	ctl := New(rt, Options{})
	cl := LoopbackClient(ctl, 9)
	fleet := NewHollowFleet(ctl, servers)
	if err := fleet.StartAll(); err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	// Ops queued before Run would drain at epoch 0; queue mid-run from the
	// OnEpoch hook instead so the churn hits a known boundary.
	var churned bool
	ctl.OnEpoch(func(epoch int) {
		if epoch == 3 && !churned {
			churned = true
			var resp StreamOpResponse
			if err := cl.call(context.Background(), "/v1/streams/register",
				StreamRegisterRequest{Clip: ClipSpec{Name: "cam-new", AccBase: 0.9, AccFactor: 1, ComputeFac: 1, BitFac: 1, EnergyFac: 1}}, &resp, 0); err != nil {
				t.Errorf("stream register: %v", err)
			}
			if err := cl.call(context.Background(), "/v1/streams/deregister",
				StreamDeregisterRequest{Name: "cam0"}, &resp, 0); err != nil {
				t.Errorf("stream deregister: %v", err)
			}
		}
	})
	trace, err := ctl.Run(context.Background(), epochs)
	if err != nil {
		t.Fatal(err)
	}
	// Ops queued at epoch 3's hook are drained at epoch 4's boundary.
	byEpoch := map[int]runtime.EpochReport{}
	for _, r := range trace.Reports {
		byEpoch[r.Epoch] = r
	}
	if !byEpoch[4].Replanned {
		t.Fatalf("churn epoch not replanned: %+v", byEpoch[4])
	}
	if rt.Sys.M() != videos {
		t.Fatalf("system has %d videos after +1/-1 churn, want %d", rt.Sys.M(), videos)
	}
	names := make([]string, 0, rt.Sys.M())
	for _, c := range rt.Sys.Clips {
		names = append(names, c.Name)
	}
	if !strings.Contains(strings.Join(names, ","), "cam-new") || strings.Contains(strings.Join(names, ","), "cam0,") {
		t.Fatalf("clip set after churn: %v", names)
	}
	if v := ctl.rec.Registry().Counter("runtime_churn_ops_total").Value(); v != 2 {
		t.Fatalf("churn_ops_total = %d, want 2", v)
	}
}

// TestBackoffDeterministicJitter pins the client backoff: doubling capped
// at Max, jitter within ±20%, bit-identical across runs with the same
// seed, different across seeds.
func TestBackoffDeterministicJitter(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Seed: 42}
	plain := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, NoJitter: true}
	for attempt := 0; attempt < 8; attempt++ {
		base := plain.Delay(attempt)
		got := b.Delay(attempt)
		if got != b.Delay(attempt) {
			t.Fatalf("attempt %d: jittered delay not deterministic", attempt)
		}
		lo, hi := time.Duration(float64(base)*0.8), time.Duration(float64(base)*1.2)
		if got < lo || got >= hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, got, lo, hi)
		}
	}
	if plain.Delay(10) != 2*time.Second {
		t.Fatalf("cap not applied: %v", plain.Delay(10))
	}
	other := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Seed: 43}
	same := 0
	for attempt := 0; attempt < 8; attempt++ {
		if b.Delay(attempt) == other.Delay(attempt) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

// TestClientRetriesTransportErrors pins the wire client's retry loop: a
// transport that fails twice then succeeds is retried under backoff; a
// fenced response is surfaced immediately, never retried.
func TestClientRetriesTransportErrors(t *testing.T) {
	fails := 2
	calls := 0
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if r.URL.Path == "/v1/fenced" {
			http.Error(w, "stale incarnation", http.StatusConflict)
			return
		}
		if fails > 0 {
			fails--
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		writeJSON(w, HeartbeatResponse{Epoch: 7})
	})
	cl := &Client{
		BaseURL: "http://test.local",
		HTTP:    &http.Client{Transport: &loopbackTransport{h: h}},
		Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Seed: 1},
	}
	var hb HeartbeatResponse
	if err := cl.call(context.Background(), "/v1/x", struct{}{}, &hb, 0); err != nil {
		t.Fatal(err)
	}
	if hb.Epoch != 7 || calls != 3 {
		t.Fatalf("epoch=%d calls=%d", hb.Epoch, calls)
	}
	calls = 0
	err := cl.call(context.Background(), "/v1/fenced", struct{}{}, nil, 0)
	if !strings.Contains(fmt.Sprint(err), "fenced") || calls != 1 {
		t.Fatalf("fenced call: err=%v calls=%d (must not retry)", err, calls)
	}
}

// TestWireChurnIncrementalFastPath drives scripted stream churn through
// the wire API with the incremental fast path on: a ChurnDriver posts the
// script's register/deregister ops from the epoch hook, the hollow fleet
// evaluates every plan, and the churn epochs must ride the exact
// admit/evict path — incremental replans, no full resolve after epoch 0 —
// with the strict checker auditing every installed decision.
func TestWireChurnIncrementalFastPath(t *testing.T) {
	const videos, servers, epochs = 4, 2, 8
	rec := obs.NewRecorder(nil)
	rt := newRuntime(testSystem(videos, servers), rec, true)
	rt.Opt.Incremental = true
	ctl := New(rt, Options{})
	cl := LoopbackClient(ctl, 9)
	fleet := NewHollowFleet(ctl, servers)
	if err := fleet.StartAll(); err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	script := &fault.ChurnScript{Name: "wire-churn", Ops: []fault.ChurnOp{
		{Epoch: 3, Add: true, Name: "cam-w1"},
		{Epoch: 5, Add: false, Name: "cam0"},
	}}
	driver := NewChurnDriver(cl, script, 42)
	ctl.OnEpoch(driver.OnEpoch)

	trace, err := ctl.Run(context.Background(), epochs)
	if err != nil {
		t.Fatal(err)
	}
	if err := driver.Err(); err != nil {
		t.Fatal(err)
	}
	byEpoch := map[int]runtime.EpochReport{}
	for _, r := range trace.Reports {
		byEpoch[r.Epoch] = r
	}
	for _, e := range []int{3, 5} {
		if !byEpoch[e].Replanned {
			t.Fatalf("churn epoch %d not replanned: %+v", e, byEpoch[e])
		}
	}
	if rt.Sys.M() != videos {
		t.Fatalf("M = %d after +1/-1 wire churn, want %d", rt.Sys.M(), videos)
	}
	reg := ctl.rec.Registry()
	if v := reg.Counter("ctlplane_stream_ops_total").Value(); v != 2 {
		t.Fatalf("stream_ops_total = %d, want 2", v)
	}
	if v := reg.Counter("runtime_churn_fast_total").Value(); v != 2 {
		t.Fatalf("churn_fast_total = %d, want 2 (arrival admitted, departure evicted)", v)
	}
	if v := reg.Counter("runtime_churn_resolve_total").Value(); v != 0 {
		t.Fatalf("churn_resolve_total = %d, want 0", v)
	}
	if v := reg.Counter("runtime_replans_incremental_total").Value(); v == 0 {
		t.Fatal("no incremental replans on the wire churn path")
	}
}
