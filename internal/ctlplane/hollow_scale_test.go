package ctlplane

import (
	"context"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// TestHollowFleet1024Chaos is the acceptance-scale chaos run: 1024 hollow
// agents over the loopback transport, a fault scenario killing four agents
// mid-run and restarting two, the controller inferring every outage from
// missed heartbeats alone — and the whole trajectory audited by the strict
// checker (a single violation aborts the run). Under -short or the race
// detector the fleet shrinks (128/256 agents) so those runs stay fast; the
// plain `go test` run exercises the full 1024.
func TestHollowFleet1024Chaos(t *testing.T) {
	servers := 1024
	if raceDetectorOn {
		servers = 256
	}
	if testing.Short() {
		servers = 128
	}
	const videos, epochs = 32, 6
	sc := &fault.Scenario{Name: "chaos-1k", Events: []fault.Event{
		{Epoch: 2, Action: fault.ServerDown, Target: 3},
		{Epoch: 2, Action: fault.ServerDown, Target: 17},
		{Epoch: 2, Action: fault.ServerDown, Target: 64},
		{Epoch: 2, Action: fault.ServerDown, Target: 100},
		// Kills at epoch 2 are detected at epoch 4 (the last beat lands in
		// epoch 1, epochs 2 and 3 elapse fully silent, exceeding
		// MissedBeats=1), so the restarts land after detection.
		{Epoch: 5, Action: fault.ServerUp, Target: 3},
		{Epoch: 5, Action: fault.ServerUp, Target: 64},
	}}

	rt := newRuntime(testSystem(videos, servers), obs.NewRecorder(nil), true)
	ctl := New(rt, Options{
		MissedBeats: 1,
		EvalTimeout: 2 * time.Second,
	})
	fleet := NewHollowFleet(ctl, servers)
	chaos := NewChaosDriver(fleet, sc)
	ctl.OnEpoch(chaos.OnEpoch)
	if err := fleet.StartAll(); err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	trace, err := ctl.Run(context.Background(), epochs)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Reports) != epochs {
		t.Fatalf("run truncated: %d/%d epochs", len(trace.Reports), epochs)
	}

	reg := ctl.rec.Registry()
	marksDown := reg.Counter("ctlplane_marks_down_total").Value()
	marksUp := reg.Counter("ctlplane_marks_up_total").Value()
	if marksDown != 4 {
		t.Fatalf("marks_down_total = %d, want 4", marksDown)
	}
	if marksUp != 2 {
		t.Fatalf("marks_up_total = %d, want 2", marksUp)
	}
	// Detection must drive the replan path: the epoch the outages are
	// noticed carries fault events and a forced replan, and the fleet's
	// healthy count dips by exactly the four killed servers before the two
	// restarts bring it back.
	minHealthy, finalHealthy := servers, 0
	sawDetectionReplan := false
	for _, r := range trace.Reports {
		if r.HealthyServers < minHealthy {
			minHealthy = r.HealthyServers
		}
		finalHealthy = r.HealthyServers
		if r.FaultEvents > 0 && r.Replanned {
			sawDetectionReplan = true
		}
	}
	if minHealthy != servers-4 {
		t.Fatalf("min healthy = %d, want %d", minHealthy, servers-4)
	}
	if finalHealthy != servers-2 {
		t.Fatalf("final healthy = %d, want %d", finalHealthy, servers-2)
	}
	if !sawDetectionReplan {
		t.Fatal("no epoch combined inferred fault events with a replan")
	}
	// Zero strict violations is proven by completion: the strict checker
	// aborts Run on the first install-time violation. Relaxed model-error
	// audits (drift, faults) record metrics only, as in-process runs do.
	if v := reg.Counter("check_checks_decision").Value(); v == 0 {
		t.Fatal("strict decision audits never ran")
	}
	if v := reg.Counter("ctlplane_results_total").Value(); v == 0 {
		t.Fatal("no wire results recorded")
	}
}
