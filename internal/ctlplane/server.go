package ctlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Options tunes the controller daemon.
type Options struct {
	// MissedBeats is how many consecutive epochs a server may go without an
	// authenticated message before it is marked down (default 2). Marking a
	// server down synthesizes a fault.ServerDown event into the runtime
	// loop, which forces a masked replan exactly as a scripted crash would;
	// a returning beat marks it back up.
	MissedBeats int
	// EvalTimeout bounds one dispatched server evaluation (default 5s).
	// A timed-out dispatch scores the server as contributing nothing this
	// epoch — the liveness inference, not the timeout, decides whether the
	// server is down.
	EvalTimeout time.Duration
	// PollWait caps how long a poll may park waiting for work (default 1s).
	PollWait time.Duration
	// EpochInterval, when positive, paces the loop in wall time: Advance
	// sleeps this long before every epoch after the first, giving real
	// agents time to poll and heartbeat. Zero runs epochs in lock step,
	// which is what the hollow-agent harness wants.
	EpochInterval time.Duration
	// Env, when non-nil, feeds environmental faults (camera stalls, link
	// degradation — use fault.Scenario.Split to separate them from server
	// crashes) into the loop's state alongside the inferred liveness.
	Env *fault.Injector
	// OracleHealth short-circuits the liveness inference: Advance and State
	// delegate verbatim to Env, so the loop sees exactly what an in-process
	// injector-driven run sees while evaluations still go over the wire.
	// This is the configuration the wire-vs-golden equivalence tests use.
	OracleHealth bool
	// OnEpoch, when non-nil, is called at the top of every epoch after the
	// epoch counter advances and before liveness is inferred. The hollow
	// chaos driver kills and restarts agents here, synchronously, so fault
	// trajectories are reproducible.
	OnEpoch func(epoch int)
	// Obs receives ctlplane_* metrics and events (default: the runtime
	// controller's recorder).
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.MissedBeats <= 0 {
		o.MissedBeats = 2
	}
	if o.EvalTimeout <= 0 {
		o.EvalTimeout = 5 * time.Second
	}
	if o.PollWait <= 0 {
		o.PollWait = time.Second
	}
	return o
}

// workItem is one dispatched evaluation, fenced by (epoch, version).
type workItem struct {
	epoch   int
	version uint64
	specs   []cluster.StreamSpec
	srv     cluster.Server
	horizon float64
	done    chan runtime.ServerEvalResult
}

// agentState is the controller's book on one physical server's agent.
type agentState struct {
	incarnation uint64
	registered  bool
	lastBeat    int  // epoch of the last authenticated message
	up          bool // current inferred liveness
	pending     *workItem
	notify      chan struct{} // closed on dispatch/shutdown, then replaced
}

// Controller is the daemon side of the control plane. It owns the runtime
// loop and implements its HealthSource, ServerEvaluator, and OpSource
// seams; agents talk to it through Handler's HTTP surface.
type Controller struct {
	rt  *runtime.Controller
	opt Options
	rec *obs.Recorder

	mu       sync.Mutex
	epoch    int
	version  uint64
	shutdown bool
	agents   []agentState
	ops      []runtime.StreamOp

	registersTotal    *obs.Counter
	pollsTotal        *obs.Counter
	dispatchesTotal   *obs.Counter
	resultsTotal      *obs.Counter
	staleResultsTotal *obs.Counter
	staleIncTotal     *obs.Counter
	heartbeatsTotal   *obs.Counter
	evalTimeoutsTotal *obs.Counter
	marksDownTotal    *obs.Counter
	marksUpTotal      *obs.Counter
	streamOpsTotal    *obs.Counter
	agentsUpGauge     *obs.Gauge
	hbUtilization     *obs.Histogram
	hbJitter          *obs.Histogram
}

// New wires a controller daemon onto a runtime controller: rt's Health,
// Eval, and Ops seams are pointed at the returned Controller, so rt.Run
// (via Controller.Run) drives the loop over the wire.
func New(rt *runtime.Controller, opt Options) *Controller {
	opt = opt.withDefaults()
	rec := opt.Obs
	if rec == nil {
		rec = rt.Obs
	}
	c := &Controller{rt: rt, opt: opt, rec: rec}
	reg := rec.Registry()
	c.registersTotal = reg.Counter("ctlplane_registers_total")
	c.pollsTotal = reg.Counter("ctlplane_polls_total")
	c.dispatchesTotal = reg.Counter("ctlplane_dispatches_total")
	c.resultsTotal = reg.Counter("ctlplane_results_total")
	c.staleResultsTotal = reg.Counter("ctlplane_stale_results_total")
	c.staleIncTotal = reg.Counter("ctlplane_stale_incarnations_total")
	c.heartbeatsTotal = reg.Counter("ctlplane_heartbeats_total")
	c.evalTimeoutsTotal = reg.Counter("ctlplane_eval_timeouts_total")
	c.marksDownTotal = reg.Counter("ctlplane_marks_down_total")
	c.marksUpTotal = reg.Counter("ctlplane_marks_up_total")
	c.streamOpsTotal = reg.Counter("ctlplane_stream_ops_total")
	c.agentsUpGauge = reg.Gauge("ctlplane_agents_up")
	c.hbUtilization = reg.Histogram("ctlplane_heartbeat_utilization", obs.DefBuckets)
	c.hbJitter = reg.Histogram("ctlplane_heartbeat_jitter_seconds", obs.DefBuckets)

	n := rt.Sys.N()
	c.agents = make([]agentState, n)
	for j := range c.agents {
		// Optimistic start: the fleet is presumed healthy until beats go
		// missing, so a no-fault wire run synthesizes zero events — the
		// property the golden-equivalence tests pin. A server whose agent
		// never shows up is marked down after MissedBeats epochs like any
		// other silence.
		c.agents[j].up = true
		c.agents[j].notify = make(chan struct{})
	}
	rt.Health = c
	rt.Eval = c
	rt.Ops = c
	return c
}

// Run executes the wire-driven control loop and shuts the agents down when
// it returns.
func (c *Controller) Run(ctx context.Context, epochs int) (*runtime.Trace, error) {
	trace, err := c.rt.Run(ctx, epochs)
	c.Close()
	return trace, err
}

// Close marks the run over: parked and future polls return Shutdown so
// agents exit their loops.
func (c *Controller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shutdown {
		return
	}
	c.shutdown = true
	for j := range c.agents {
		close(c.agents[j].notify)
		c.agents[j].notify = make(chan struct{})
	}
}

// WaitAgents blocks until at least n agents have registered (or ctx ends).
// Call it before Run so epoch 0 starts against a full fleet.
func (c *Controller) WaitAgents(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		got := 0
		for j := range c.agents {
			if c.agents[j].registered {
				got++
			}
		}
		c.mu.Unlock()
		if got >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("ctlplane: waiting for agents (%d/%d registered): %w", got, n, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// OnEpoch installs a hook called at each epoch boundary, before liveness
// inference runs. Install it after New and before Run; a chaos driver uses
// it to act out agent kills and restarts the controller must then infer.
func (c *Controller) OnEpoch(fn func(epoch int)) {
	c.opt.OnEpoch = fn
}

// Advance implements runtime.HealthSource: apply environmental faults, run
// the chaos hook, then infer liveness from heartbeat recency and report
// the flips as fault events. In OracleHealth mode the injector's events
// pass through verbatim instead.
func (c *Controller) Advance(epoch int) []fault.Event {
	if c.opt.EpochInterval > 0 && epoch > 0 {
		time.Sleep(c.opt.EpochInterval)
	}
	c.mu.Lock()
	c.epoch = epoch
	c.mu.Unlock()

	var events []fault.Event
	if c.opt.Env != nil {
		events = append(events, c.opt.Env.Advance(epoch)...)
	}
	if hook := c.opt.OnEpoch; hook != nil {
		hook(epoch)
	}
	if c.opt.OracleHealth {
		return events
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	up := 0
	for j := range c.agents {
		a := &c.agents[j]
		// Liveness runs at the START of the epoch, before this epoch's
		// beats can arrive, so the fully-elapsed silent epochs are
		// lastBeat+1 .. epoch-1: epoch-lastBeat-1 of them. A server is dead
		// only when that count EXCEEDS the MissedBeats allowance —
		// comparing epoch-lastBeat against MissedBeats directly counts the
		// still-open boundary epoch as missed and fires one epoch early.
		alive := epoch-a.lastBeat <= c.opt.MissedBeats+1
		switch {
		case a.up && !alive:
			a.up = false
			c.marksDownTotal.Inc()
			events = append(events, fault.Event{Epoch: epoch, Action: fault.ServerDown, Target: j})
		case !a.up && alive:
			a.up = true
			c.marksUpTotal.Inc()
			events = append(events, fault.Event{Epoch: epoch, Action: fault.ServerUp, Target: j})
		}
		if a.up {
			up++
		}
	}
	c.agentsUpGauge.Set(float64(up))
	return events
}

// State implements runtime.HealthSource: inferred server liveness merged
// with the environmental injector's camera and link state.
func (c *Controller) State() fault.State {
	if c.opt.OracleHealth {
		return c.opt.Env.State()
	}
	var st fault.State
	if c.opt.Env != nil {
		st = c.opt.Env.State()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	down := make([]bool, len(c.agents))
	for j := range c.agents {
		down[j] = !c.agents[j].up
	}
	st.Down = down
	return st
}

// EvaluateServer implements runtime.ServerEvaluator: publish the work item
// for the server's agent, wake its parked poll, and wait for the fenced
// result under the eval timeout.
func (c *Controller) EvaluateServer(ctx context.Context, epoch, server int, specs []cluster.StreamSpec, srv cluster.Server, horizon float64) (runtime.ServerEvalResult, error) {
	if server < 0 || server >= len(c.agents) {
		return runtime.ServerEvalResult{}, fmt.Errorf("ctlplane: server %d out of range", server)
	}
	item := &workItem{
		epoch:   epoch,
		specs:   append([]cluster.StreamSpec(nil), specs...), // evaluator contract: specs alias the caller's buffer
		srv:     srv,
		horizon: horizon,
		done:    make(chan runtime.ServerEvalResult, 1),
	}
	c.mu.Lock()
	c.version++
	item.version = c.version
	a := &c.agents[server]
	a.pending = item
	notify := a.notify
	a.notify = make(chan struct{})
	c.mu.Unlock()
	close(notify)
	c.dispatchesTotal.Inc()

	tctx, cancel := context.WithTimeout(ctx, c.opt.EvalTimeout)
	defer cancel()
	select {
	case r := <-item.done:
		return r, nil
	case <-tctx.Done():
		c.mu.Lock()
		if a.pending == item {
			a.pending = nil
		}
		c.mu.Unlock()
		c.evalTimeoutsTotal.Inc()
		return runtime.ServerEvalResult{}, fmt.Errorf("ctlplane: server %d epoch %d evaluation: %w", server, epoch, tctx.Err())
	}
}

// Drain implements runtime.OpSource: hand the queued stream churn to the
// loop at the epoch boundary.
func (c *Controller) Drain(int) []runtime.StreamOp {
	c.mu.Lock()
	defer c.mu.Unlock()
	ops := c.ops
	c.ops = nil
	return ops
}

// Handler returns the controller's HTTP surface: the /v1/ wire protocol
// plus the recorder registry's /metrics (Prometheus text, JSON, expvar).
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", c.handleRegister)
	mux.HandleFunc("/v1/poll", c.handlePoll)
	mux.HandleFunc("/v1/result", c.handleResult)
	mux.HandleFunc("/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/streams/register", c.handleStreamRegister)
	mux.HandleFunc("/v1/streams/deregister", c.handleStreamDeregister)
	mux.HandleFunc("/v1/status", c.handleStatus)
	mux.Handle("/metrics", c.rec.Registry().Handler())
	return mux
}

// Serve starts an HTTP server for Handler on addr and returns the bound
// address ("host:0" picks a free port).
func (c *Controller) Serve(addr string) (string, *http.Server, error) {
	srv := &http.Server{Handler: c.Handler()}
	ln, err := newListener(addr)
	if err != nil {
		return "", nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv, nil
}

func newListener(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// fence validates the server index and incarnation under c.mu and records
// the beat. Returns the agent, or nil after writing the HTTP error.
func (c *Controller) fence(w http.ResponseWriter, server int, incarnation uint64) *agentState {
	if server < 0 || server >= len(c.agents) {
		http.Error(w, "server index out of range", http.StatusBadRequest)
		return nil
	}
	a := &c.agents[server]
	if a.incarnation != incarnation {
		c.staleIncTotal.Inc()
		http.Error(w, "stale incarnation", http.StatusConflict)
		return nil
	}
	a.lastBeat = c.epoch
	return a
}

func (c *Controller) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	if req.Server < 0 || req.Server >= len(c.agents) {
		c.mu.Unlock()
		http.Error(w, "server index out of range", http.StatusBadRequest)
		return
	}
	a := &c.agents[req.Server]
	a.incarnation++
	a.registered = true
	a.lastBeat = c.epoch
	a.pending = nil // a predecessor's undelivered work dies with it
	resp := RegisterResponse{Incarnation: a.incarnation, Epoch: c.epoch}
	c.mu.Unlock()
	c.registersTotal.Inc()
	writeJSON(w, resp)
}

func (c *Controller) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !readJSON(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait <= 0 || wait > c.opt.PollWait {
		wait = c.opt.PollWait
	}
	deadline := time.Now().Add(wait)
	c.pollsTotal.Inc()
	for {
		c.mu.Lock()
		a := c.fence(w, req.Server, req.Incarnation)
		if a == nil {
			c.mu.Unlock()
			return
		}
		if c.shutdown {
			c.mu.Unlock()
			writeJSON(w, PollResponse{Shutdown: true})
			return
		}
		if item := a.pending; item != nil {
			resp := PollResponse{
				Epoch: item.epoch, Version: item.version,
				Specs: item.specs, Server: item.srv, Horizon: item.horizon,
			}
			c.mu.Unlock()
			writeJSON(w, resp)
			return
		}
		notify := a.notify
		c.mu.Unlock()
		remaining := time.Until(deadline)
		if remaining <= 0 {
			writeJSON(w, PollResponse{NoWork: true})
			return
		}
		timer := time.NewTimer(remaining)
		select {
		case <-notify:
			timer.Stop()
		case <-timer.C:
			writeJSON(w, PollResponse{NoWork: true})
			return
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

func (c *Controller) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	a := c.fence(w, req.Server, req.Incarnation)
	if a == nil {
		c.mu.Unlock()
		return
	}
	item := a.pending
	if item == nil || item.epoch != req.Epoch || item.version != req.Version {
		c.mu.Unlock()
		c.staleResultsTotal.Inc()
		http.Error(w, "no matching pending work (stale or duplicate result)", http.StatusConflict)
		return
	}
	a.pending = nil
	c.mu.Unlock()
	item.done <- req.Result
	c.resultsTotal.Inc()
	writeJSON(w, ResultResponse{OK: true})
}

func (c *Controller) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	a := c.fence(w, req.Server, req.Incarnation)
	epoch := c.epoch
	c.mu.Unlock()
	if a == nil {
		return
	}
	c.heartbeatsTotal.Inc()
	c.hbUtilization.Observe(req.Utilization)
	c.hbJitter.Observe(req.MaxJitter)
	writeJSON(w, HeartbeatResponse{Epoch: epoch})
}

func (c *Controller) handleStreamRegister(w http.ResponseWriter, r *http.Request) {
	var req StreamRegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Clip.Name == "" {
		http.Error(w, "clip name required", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.ops = append(c.ops, runtime.StreamOp{Add: req.Clip.Clip()})
	pending := len(c.ops)
	c.mu.Unlock()
	c.streamOpsTotal.Inc()
	writeJSON(w, StreamOpResponse{OK: true, Pending: pending})
}

func (c *Controller) handleStreamDeregister(w http.ResponseWriter, r *http.Request) {
	var req StreamDeregisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		http.Error(w, "stream name required", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.ops = append(c.ops, runtime.StreamOp{Remove: req.Name})
	pending := len(c.ops)
	c.mu.Unlock()
	c.streamOpsTotal.Inc()
	writeJSON(w, StreamOpResponse{OK: true, Pending: pending})
}

func (c *Controller) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	resp := StatusResponse{Epoch: c.epoch, Servers: len(c.agents), Up: []int{}, Down: []int{}}
	for j := range c.agents {
		if c.agents[j].registered {
			resp.Registered++
		}
		if c.agents[j].up {
			resp.Up = append(resp.Up, j)
		} else {
			resp.Down = append(resp.Down, j)
		}
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}
