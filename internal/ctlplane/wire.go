// Package ctlplane is the distributed control plane: it splits the online
// runtime into a controller daemon that owns the scheduling loop and
// per-server agents that execute evaluations and report telemetry over
// HTTP/JSON.
//
// The controller plugs into runtime.Controller through three seams — it is
// the loop's HealthSource (heartbeat-inferred liveness instead of the
// scripted injector oracle), its ServerEvaluator (per-server epoch
// evaluations dispatched to agents over the wire), and its OpSource
// (stream register/deregister arriving over HTTP). Because Go's
// encoding/json round-trips float64 exactly, a wire-driven run with
// healthy agents reproduces the in-process golden traces byte-exactly.
//
// Robustness is the point: liveness is *inferred* from missed beats (the
// controller never sees the fault injector), every dispatch is fenced by a
// per-agent incarnation and a monotone work version so stale or duplicate
// applies are idempotently rejected, and the client wraps every call in a
// timeout with capped, jittered exponential backoff. A hollow-agent mode
// runs thousands of simulated agents in one process over a loopback
// transport, turning internal/fault scenarios into a chaos driver for
// 1k+-server fleets in CI.
package ctlplane

import (
	"repro/internal/cluster"
	"repro/internal/runtime"
	"repro/internal/videosim"
)

// Wire protocol. All endpoints are POST with JSON bodies under /v1/.
// Fencing rules:
//
//   - Every register bumps the server's incarnation; any later message
//     carrying an older incarnation is rejected with 409 (a restarted
//     agent's predecessor can never act on its behalf).
//   - Every dispatched work item carries a globally monotone version; an
//     agent that sees version <= its last completed version re-acks its
//     cached result instead of re-executing, and the controller rejects a
//     result whose (epoch, version) does not match the server's pending
//     item. Both sides are idempotent under duplicates and reorders.

// RegisterRequest announces an agent for one physical server index.
type RegisterRequest struct {
	Server int    `json:"server"`
	Name   string `json:"name,omitempty"`
}

// RegisterResponse returns the fencing token the agent must present on
// every subsequent message.
type RegisterResponse struct {
	Incarnation uint64 `json:"incarnation"`
	Epoch       int    `json:"epoch"`
}

// PollRequest asks for the server's pending work item, parking up to
// WaitMS milliseconds (capped by the controller) when none is pending.
type PollRequest struct {
	Server      int    `json:"server"`
	Incarnation uint64 `json:"incarnation"`
	WaitMS      int    `json:"wait_ms,omitempty"`
}

// PollResponse carries one work item (an epoch evaluation of the server's
// assigned streams), or NoWork when the park expired, or Shutdown when the
// run is over and the agent should exit.
type PollResponse struct {
	NoWork   bool                 `json:"no_work,omitempty"`
	Shutdown bool                 `json:"shutdown,omitempty"`
	Epoch    int                  `json:"epoch"`
	Version  uint64               `json:"version"`
	Specs    []cluster.StreamSpec `json:"specs"`
	Server   cluster.Server       `json:"server_spec"`
	Horizon  float64              `json:"horizon"`
}

// ResultRequest returns a completed evaluation, fenced by the work item's
// (epoch, version) and the agent's incarnation.
type ResultRequest struct {
	Server      int                      `json:"server"`
	Incarnation uint64                   `json:"incarnation"`
	Epoch       int                      `json:"epoch"`
	Version     uint64                   `json:"version"`
	Result      runtime.ServerEvalResult `json:"result"`
}

// ResultResponse acknowledges a result.
type ResultResponse struct {
	OK bool `json:"ok"`
}

// HeartbeatRequest reports agent telemetry between work items. Any
// authenticated message counts as a beat; the explicit heartbeat exists so
// an idle agent stays visibly alive and its utilization/jitter reach the
// controller's metrics.
type HeartbeatRequest struct {
	Server      int     `json:"server"`
	Incarnation uint64  `json:"incarnation"`
	Utilization float64 `json:"utilization"`
	MaxJitter   float64 `json:"max_jitter_s"`
}

// HeartbeatResponse returns the controller's current epoch so agents can
// log against loop time.
type HeartbeatResponse struct {
	Epoch int `json:"epoch"`
}

// ClipSpec is the wire form of a video source: the exported analytic
// factors of videosim.Clip. Wire-registered clips have zero content phase,
// which is deterministic like everything else.
type ClipSpec struct {
	Name       string  `json:"name"`
	AccBase    float64 `json:"acc_base"`
	AccFactor  float64 `json:"acc_factor"`
	ComputeFac float64 `json:"compute_fac"`
	BitFac     float64 `json:"bit_fac"`
	EnergyFac  float64 `json:"energy_fac"`
}

// Clip materializes the spec.
func (cs ClipSpec) Clip() *videosim.Clip {
	return &videosim.Clip{
		Name: cs.Name, AccBase: cs.AccBase, AccFactor: cs.AccFactor,
		ComputeFac: cs.ComputeFac, BitFac: cs.BitFac, EnergyFac: cs.EnergyFac,
	}
}

// StreamRegisterRequest adds a video source at the next epoch boundary.
type StreamRegisterRequest struct {
	Clip ClipSpec `json:"clip"`
}

// StreamDeregisterRequest removes the named video source at the next epoch
// boundary.
type StreamDeregisterRequest struct {
	Name string `json:"name"`
}

// StreamOpResponse acknowledges a queued stream op.
type StreamOpResponse struct {
	OK      bool `json:"ok"`
	Pending int  `json:"pending"` // ops queued for the next epoch boundary
}

// StatusResponse is the controller's /v1/status snapshot.
type StatusResponse struct {
	Epoch      int   `json:"epoch"`
	Servers    int   `json:"servers"`
	Registered int   `json:"registered"`
	Up         []int `json:"up"`
	Down       []int `json:"down"`
}
