package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/stats"
	"repro/internal/videosim"
)

func testSys(m, n int) *objective.System {
	servers := make([]cluster.Server, n)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: float64(10+5*j) * 1e6}
	}
	return &objective.System{Clips: videosim.StandardClips(m, 55), Servers: servers}
}

func record(t *testing.T, m, n, perCfg int) (*objective.System, *Trace) {
	t.Helper()
	sys := testSys(m, n)
	prof := videosim.NewProfiler(0.02, stats.NewRNG(9))
	return sys, Record(sys, prof, perCfg)
}

func TestRecordCoversGrid(t *testing.T) {
	sys, tr := record(t, 3, 2, 2)
	wantSamples := 3 * len(videosim.Resolutions) * len(videosim.FrameRates) * 2
	if len(tr.Samples) != wantSamples {
		t.Fatalf("samples = %d, want %d", len(tr.Samples), wantSamples)
	}
	if len(tr.Clips) != 3 || len(tr.Uplinks) != 2 {
		t.Fatalf("system description wrong: %d clips %d uplinks", len(tr.Clips), len(tr.Uplinks))
	}
	if tr.Clips[0].Name != sys.Clips[0].Name {
		t.Fatal("clip identity lost")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	_, tr := record(t, 2, 2, 1)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(tr.Samples) || got.Clips[1] != tr.Clips[1] {
		t.Fatal("round trip lost data")
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "clips": [], "samples": [{"clip": 0}]}`)); err == nil {
		t.Error("dangling clip reference accepted")
	}
}

func TestSystemReconstruction(t *testing.T) {
	sys, tr := record(t, 3, 2, 1)
	got := tr.System()
	if got.M() != 3 || got.N() != 2 {
		t.Fatalf("shape %d/%d", got.M(), got.N())
	}
	cfg := videosim.Config{Resolution: 1000, FPS: 10}
	if got.Clips[1].Accuracy(cfg) != sys.Clips[1].Accuracy(cfg) {
		t.Fatal("reconstructed clip behaves differently")
	}
	if got.Servers[1].Uplink != sys.Servers[1].Uplink {
		t.Fatal("uplink lost")
	}
}

func TestReplayerCyclesThroughRepetitions(t *testing.T) {
	sys, tr := record(t, 1, 1, 3)
	r := NewReplayer(tr)
	cfg := videosim.Config{Resolution: videosim.Resolutions[0], FPS: videosim.FrameRates[0]}
	a := r.Measure(sys.Clips[0], cfg)
	b := r.Measure(sys.Clips[0], cfg)
	c := r.Measure(sys.Clips[0], cfg)
	d := r.Measure(sys.Clips[0], cfg) // wraps to the first repetition
	if a == b && b == c {
		t.Fatal("repetitions identical — noise was not recorded")
	}
	if d != a {
		t.Fatal("replay did not cycle deterministically")
	}
}

func TestReplayerMissingSamplePanics(t *testing.T) {
	_, tr := record(t, 1, 1, 1)
	r := NewReplayer(tr)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unrecorded configuration")
		}
	}()
	r.Measure(&videosim.Clip{Name: "unknown"}, videosim.Config{Resolution: 1000, FPS: 10})
}

func TestReplayerHas(t *testing.T) {
	sys, tr := record(t, 1, 1, 1)
	r := NewReplayer(tr)
	cfg := videosim.Config{Resolution: videosim.Resolutions[0], FPS: videosim.FrameRates[0]}
	if !r.Has(sys.Clips[0].Name, cfg) {
		t.Fatal("recorded configuration reported missing")
	}
	if r.Has("nope", cfg) {
		t.Fatal("unknown clip reported present")
	}
	if r.Has(sys.Clips[0].Name, videosim.Config{Resolution: 123, FPS: 7}) {
		t.Fatal("off-grid configuration reported present")
	}
}

// PaMO runs identically twice when profiling is replayed from a trace.
func TestPaMOFromTraceIsReproducible(t *testing.T) {
	sys, tr := record(t, 4, 3, 4)
	truth := objective.UniformPreference()
	run := func() *pamo.Result {
		dm := &pref.Oracle{Pref: truth}
		opt := pamo.Options{
			InitProfiles: 10, InitObs: 2, PrefPairs: 6, PrefPool: 8,
			Batch: 2, MCSamples: 8, CandPool: 6, MaxIter: 2,
			Seed: 21, UseEUBO: true,
			Measurer: NewReplayer(tr),
		}
		res, err := pamo.New(sys, dm, opt).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Best.Decision.Configs {
		if a.Best.Decision.Configs[i] != b.Best.Decision.Configs[i] {
			t.Fatalf("trace-replayed PaMO not reproducible: %+v vs %+v",
				a.Best.Decision.Configs, b.Best.Decision.Configs)
		}
	}
}
