package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad must never panic on malformed input — only return errors.
func FuzzLoad(f *testing.F) {
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"clips":[{"name":"a"}],"samples":[{"clip":0}]}`)
	f.Add(`{"version":2}`)
	f.Add(`[]`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		// A successfully loaded trace must round-trip.
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("loaded trace failed to save: %v", err)
		}
		if _, err := Load(&buf); err != nil {
			t.Fatalf("saved trace failed to reload: %v", err)
		}
	})
}
