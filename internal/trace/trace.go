// Package trace records and replays profiling traces. The paper's
// evaluation "use[s] trace data to emulate more than four servers"; this
// package plays that role: a trace captures the system description and a
// set of profiling measurements, serializes to JSON, and replays them
// deterministically through the videosim.Measurer interface so experiments
// can run against a fixed workload instead of the live simulator.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/objective"
	"repro/internal/videosim"
)

// ClipRecord captures one clip's identity and per-clip factors.
type ClipRecord struct {
	Name       string  `json:"name"`
	AccBase    float64 `json:"acc_base"`
	AccFactor  float64 `json:"acc_factor"`
	ComputeFac float64 `json:"compute_fac"`
	BitFac     float64 `json:"bit_fac"`
	EnergyFac  float64 `json:"energy_fac"`
}

// Sample is one recorded profiling measurement.
type Sample struct {
	Clip       int                  `json:"clip"`
	Resolution float64              `json:"resolution"`
	FPS        float64              `json:"fps"`
	M          videosim.Measurement `json:"measurement"`
}

// Trace is a recorded workload: the system and its profiling samples.
type Trace struct {
	Version int          `json:"version"`
	Clips   []ClipRecord `json:"clips"`
	Uplinks []float64    `json:"uplinks_bps"`
	Samples []Sample     `json:"samples"`
}

// CurrentVersion is the trace format version this package writes.
const CurrentVersion = 1

// Record profiles every clip of the system at every grid configuration,
// taking perCfg measurements each, and returns the trace.
func Record(sys *objective.System, prof videosim.Measurer, perCfg int) *Trace {
	if perCfg <= 0 {
		perCfg = 1
	}
	t := &Trace{Version: CurrentVersion}
	for _, c := range sys.Clips {
		t.Clips = append(t.Clips, ClipRecord{
			Name: c.Name, AccBase: c.AccBase, AccFactor: c.AccFactor,
			ComputeFac: c.ComputeFac, BitFac: c.BitFac, EnergyFac: c.EnergyFac,
		})
	}
	for _, s := range sys.Servers {
		t.Uplinks = append(t.Uplinks, s.Uplink)
	}
	for ci, clip := range sys.Clips {
		for _, r := range videosim.Resolutions {
			for _, fps := range videosim.FrameRates {
				cfg := videosim.Config{Resolution: r, FPS: fps}
				for k := 0; k < perCfg; k++ {
					t.Samples = append(t.Samples, Sample{
						Clip: ci, Resolution: r, FPS: fps,
						M: prof.Measure(clip, cfg),
					})
				}
			}
		}
	}
	return t
}

// Save writes the trace as JSON.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// Load reads a JSON trace and validates it.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if t.Version != CurrentVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", t.Version)
	}
	for i, s := range t.Samples {
		if s.Clip < 0 || s.Clip >= len(t.Clips) {
			return nil, fmt.Errorf("trace: sample %d references clip %d of %d", i, s.Clip, len(t.Clips))
		}
	}
	return &t, nil
}

// System reconstructs the recorded system (clips with the recorded
// factors, servers with the recorded uplinks).
func (t *Trace) System() *objective.System {
	clips := make([]*videosim.Clip, len(t.Clips))
	for i, c := range t.Clips {
		clips[i] = &videosim.Clip{
			Name: c.Name, AccBase: c.AccBase, AccFactor: c.AccFactor,
			ComputeFac: c.ComputeFac, BitFac: c.BitFac, EnergyFac: c.EnergyFac,
		}
	}
	servers := make([]cluster.Server, len(t.Uplinks))
	for j, u := range t.Uplinks {
		servers[j] = cluster.Server{Name: "edge", Uplink: u}
	}
	return &objective.System{Clips: clips, Servers: servers}
}

// ErrNoSample is returned when the trace has no measurement for the
// requested (clip, configuration).
var ErrNoSample = errors.New("trace: no recorded sample for configuration")

// Replayer serves recorded measurements through the videosim.Measurer
// interface. Repeated queries for the same configuration cycle through the
// recorded repetitions, reproducing measurement-to-measurement variation
// deterministically.
type Replayer struct {
	byKey  map[string][]videosim.Measurement
	cursor map[string]int
	names  map[string]int // clip name -> index
}

// NewReplayer indexes a trace for replay.
func NewReplayer(t *Trace) *Replayer {
	r := &Replayer{
		byKey:  map[string][]videosim.Measurement{},
		cursor: map[string]int{},
		names:  map[string]int{},
	}
	for i, c := range t.Clips {
		r.names[c.Name] = i
	}
	for _, s := range t.Samples {
		k := key(s.Clip, s.Resolution, s.FPS)
		r.byKey[k] = append(r.byKey[k], s.M)
	}
	return r
}

func key(clip int, res, fps float64) string {
	return fmt.Sprintf("%d|%g|%g", clip, res, fps)
}

// Measure implements videosim.Measurer by replaying the recorded samples
// for the clip (matched by name) at cfg. It panics with ErrNoSample
// wrapped in the message when the configuration was never recorded —
// replay is only valid over the recorded grid.
func (r *Replayer) Measure(c *videosim.Clip, cfg videosim.Config) videosim.Measurement {
	ci, ok := r.names[c.Name]
	if !ok {
		panic(fmt.Sprintf("%v: unknown clip %q", ErrNoSample, c.Name))
	}
	k := key(ci, cfg.Resolution, cfg.FPS)
	samples := r.byKey[k]
	if len(samples) == 0 {
		panic(fmt.Sprintf("%v: clip %q at %+v", ErrNoSample, c.Name, cfg))
	}
	i := r.cursor[k] % len(samples)
	r.cursor[k] = i + 1
	return samples[i]
}

// Has reports whether the trace recorded the clip/configuration pair.
func (r *Replayer) Has(clipName string, cfg videosim.Config) bool {
	ci, ok := r.names[clipName]
	if !ok {
		return false
	}
	return len(r.byKey[key(ci, cfg.Resolution, cfg.FPS)]) > 0
}
