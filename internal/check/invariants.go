package check

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/sched"
)

// VerifyAssignment checks the paper's two feasibility constraints exactly
// on a stream→server assignment: Const1 (Eq. 6, Σ pᵢ·sᵢ ≤ 1 per server)
// and Const2 (Eq. 7, Σ pᵢ ≤ gcd of periods per server). Out-of-range
// assignments and non-finite processing times are violations too — the
// underlying sched checks fold them into their verdicts, so they are split
// out here first for a usable diagnosis.
func (c *Checker) VerifyAssignment(streams []sched.Stream, assign []int, nServers int) error {
	return c.verifyAssignment(streams, assign, nServers, nil)
}

// VerifyAssignmentServers is VerifyAssignment against a heterogeneous
// cluster: the exact constraints scale with each server's speed class
// (Const1 becomes Σ pᵢ·sᵢ ≤ speed_j, Const2 becomes Σ pᵢ ≤ gcd · speed_j).
// At speed 1 everywhere the verdicts are identical to VerifyAssignment.
func (c *Checker) VerifyAssignmentServers(streams []sched.Stream, assign []int, servers []cluster.Server) error {
	return c.verifyAssignment(streams, assign, len(servers), servers)
}

func (c *Checker) verifyAssignment(streams []sched.Stream, assign []int, nServers int, servers []cluster.Server) error {
	if c == nil {
		return nil
	}
	c.begin("feasibility")
	if len(streams) != len(assign) {
		return c.violate("shape", "%d streams vs %d assignments", len(streams), len(assign))
	}
	for i, s := range streams {
		if math.IsNaN(s.Proc) || math.IsInf(s.Proc, 0) {
			return c.violate("finite", "stream %d (video %d.%d) has non-finite proc %v", i, s.Video, s.Sub, s.Proc)
		}
		if j := assign[i]; j < 0 || j >= nServers {
			return c.violate("assign_range", "stream %d (video %d.%d) assigned to server %d of %d", i, s.Video, s.Sub, j, nServers)
		}
	}
	ok1, ok2 := sched.CheckConst1(streams, assign, nServers), sched.CheckConst2(streams, assign, nServers)
	if servers != nil {
		ok1, ok2 = sched.CheckConst1Servers(streams, assign, servers), sched.CheckConst2Servers(streams, assign, servers)
	}
	if !ok1 {
		return c.violate("const1", "Eq. 6 violated: some server has exact utilization Σ pᵢ·sᵢ above its speed")
	}
	if !ok2 {
		return c.violate("const2", "Eq. 7 violated: some server has exact Σ pᵢ above its speed-scaled period gcd")
	}
	return nil
}

// VerifyPlan checks a scheduling plan — serial or assembled by the sharded
// arbiter from several cells' commits — for structural consistency and the
// exact feasibility constraints. Structure: Groups and GroupServer agree in
// shape, every stream sits in exactly one group, StreamServer mirrors the
// grouping, and no stream lands on an unhealthy server (healthy may be nil
// = all up). Feasibility: the exact Const1/Const2 checks of
// VerifyAssignment over the MERGED per-server stream sets, so a server
// shared by multiple cells is audited over the union of everything
// committed onto it — the property the arbiter's exactness is load-bearing
// for.
func (c *Checker) VerifyPlan(streams []sched.Stream, plan sched.Plan, nServers int, healthy []bool) error {
	return c.verifyPlan(streams, plan, nServers, healthy, nil)
}

// VerifyPlanServers is VerifyPlan with speed-aware feasibility: the same
// structural audit, then the exact speed-scaled Const1/Const2 of
// VerifyAssignmentServers.
func (c *Checker) VerifyPlanServers(streams []sched.Stream, plan sched.Plan, servers []cluster.Server, healthy []bool) error {
	return c.verifyPlan(streams, plan, len(servers), healthy, servers)
}

func (c *Checker) verifyPlan(streams []sched.Stream, plan sched.Plan, nServers int, healthy []bool, servers []cluster.Server) error {
	if c == nil {
		return nil
	}
	c.begin("plan")
	if len(plan.Groups) != len(plan.GroupServer) {
		return c.violate("shape", "%d groups vs %d group servers", len(plan.Groups), len(plan.GroupServer))
	}
	if len(plan.StreamServer) != len(streams) {
		return c.violate("shape", "%d stream servers for %d streams", len(plan.StreamServer), len(streams))
	}
	seen := make([]bool, len(streams))
	for g, members := range plan.Groups {
		j := plan.GroupServer[g]
		if j < 0 || j >= nServers {
			return c.violate("assign_range", "group %d mapped to server %d of %d", g, j, nServers)
		}
		if healthy != nil && !healthy[j] {
			return c.violate("mask", "group %d mapped to unhealthy server %d", g, j)
		}
		for _, i := range members {
			if i < 0 || i >= len(streams) {
				return c.violate("shape", "group %d contains stream index %d of %d", g, i, len(streams))
			}
			if seen[i] {
				return c.violate("shape", "stream %d appears in more than one group", i)
			}
			seen[i] = true
			if plan.StreamServer[i] != j {
				return c.violate("shape", "stream %d: group %d says server %d but StreamServer says %d",
					i, g, j, plan.StreamServer[i])
			}
		}
	}
	for i := range streams {
		if !seen[i] {
			return c.violate("shape", "stream %d is in no group", i)
		}
	}
	return c.verifyAssignment(streams, plan.StreamServer, nServers, servers)
}

// VerifyDecision checks a complete scheduling decision: structural
// consistency (offsets, shed list) plus the exact feasibility constraints
// of VerifyAssignment. Degraded decisions (shed/downgraded videos) go
// through the same checks — a degraded replan that violates Const2 is
// exactly the failure mode the harness exists to catch.
func (c *Checker) VerifyDecision(d eva.Decision, nServers int) error {
	return c.verifyDecision(d, nServers, nil)
}

// VerifyDecisionServers is VerifyDecision with speed-aware feasibility for
// heterogeneous clusters.
func (c *Checker) VerifyDecisionServers(d eva.Decision, servers []cluster.Server) error {
	return c.verifyDecision(d, len(servers), servers)
}

func (c *Checker) verifyDecision(d eva.Decision, nServers int, servers []cluster.Server) error {
	if c == nil {
		return nil
	}
	c.begin("decision")
	if d.Offsets != nil {
		if len(d.Offsets) != len(d.Streams) {
			return c.violate("shape", "%d offsets for %d streams", len(d.Offsets), len(d.Streams))
		}
		for i, off := range d.Offsets {
			if math.IsNaN(off) || math.IsInf(off, 0) || off < 0 {
				return c.violate("offset", "stream %d has invalid capture offset %v", i, off)
			}
		}
	}
	shed := d.ShedSet(len(d.Configs))
	for i, s := range d.Streams {
		if shed != nil && s.Video >= 0 && s.Video < len(shed) && shed[s.Video] {
			return c.violate("shed", "stream %d belongs to shed video %d but is still scheduled", i, s.Video)
		}
	}
	return c.verifyAssignment(d.Streams, d.Assign, nServers, servers)
}

// ObserveJitter records the simulated worst-case jitter of an installed
// decision. When the decision claims the Theorem 1 zero-jitter property
// (claimedZero), any jitter above the simulator's resolution is a
// violation; otherwise the value is metric-only.
func (c *Checker) ObserveJitter(jitter float64, claimedZero bool) error {
	if c == nil {
		return nil
	}
	c.begin("jitter")
	reg := c.rec.Registry()
	reg.Gauge("check_last_jitter_s").Set(jitter)
	reg.Histogram("check_jitter_s", obs.DefBuckets).Observe(jitter)
	if claimedZero && jitter > cluster.JitterEps {
		return c.violate("zero_jitter", "decision claims Theorem 1 offsets but simulates with jitter %.3g s", jitter)
	}
	return nil
}

// Finite checks that every value is finite (no NaN, no ±Inf). name labels
// the quantity in metrics and diagnostics, e.g. "posterior_mean".
func (c *Checker) Finite(name string, xs ...float64) error {
	if c == nil {
		return nil
	}
	c.begin("finite")
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return c.violate("finite", "%s[%d] = %v", name, i, x)
		}
	}
	return nil
}

// PSDCov checks that a posterior covariance matrix is symmetric, finite,
// and positive semi-definite up to the same jittered-Cholesky ladder the GP
// itself relies on: a matrix CholJitter can factor passes, one it cannot is
// genuinely indefinite.
func (c *Checker) PSDCov(name string, cov *mat.Matrix) error {
	if c == nil {
		return nil
	}
	c.begin("psd")
	if cov == nil || cov.Rows != cov.Cols {
		return c.violate("psd", "%s: not a square matrix", name)
	}
	for i := 0; i < cov.Rows; i++ {
		for j := i; j < cov.Cols; j++ {
			v := cov.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return c.violate("finite", "%s[%d,%d] = %v", name, i, j, v)
			}
			if cov.At(j, i) != v {
				return c.violate("psd", "%s: asymmetric at (%d,%d): %v vs %v", name, i, j, v, cov.At(j, i))
			}
		}
	}
	if _, err := mat.CholJitter(cov.Clone()); err != nil {
		return c.violate("psd", "%s: not positive semi-definite: %v", name, err)
	}
	return nil
}

// IncumbentGuard watches the best-so-far benefit of a BO loop. Under a
// fixed preference belief the incumbent must be non-decreasing; under a
// learned belief, refreshing the preference model legitimately rescales
// past benefits, so drops reset the baseline and are counted but never
// errors.
type IncumbentGuard struct {
	c     *Checker
	fixed bool
	best  float64
	has   bool
}

// NewIncumbent returns a guard. fixedBelief reports whether the benefit
// scale is constant across iterations (true preference weights).
func (c *Checker) NewIncumbent(fixedBelief bool) *IncumbentGuard {
	if c == nil {
		return nil
	}
	return &IncumbentGuard{c: c, fixed: fixedBelief}
}

// Observe feeds one iteration's incumbent benefit through the guard.
func (g *IncumbentGuard) Observe(benefit float64) error {
	if g == nil {
		return nil
	}
	g.c.begin("incumbent")
	if math.IsNaN(benefit) || math.IsInf(benefit, 0) {
		return g.c.violate("finite", "incumbent benefit = %v", benefit)
	}
	defer func() {
		if !g.has || benefit > g.best {
			g.best, g.has = benefit, true
		}
	}()
	if g.has && benefit < g.best {
		if g.fixed {
			return g.c.violate("incumbent_monotone",
				"incumbent benefit fell from %.12g to %.12g under a fixed preference belief", g.best, benefit)
		}
		// Learned belief: a preference refresh moved the benefit scale.
		// Follow the new scale instead of flagging every later iteration.
		g.c.rec.Registry().Counter("check_incumbent_rescale_total").Inc()
		g.best = benefit
	}
	return nil
}
