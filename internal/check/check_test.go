package check

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/videosim"
)

// oldFloatConst2 is the pre-audit tolerance check, reproduced here so the
// acceptance test below can exhibit a plan it accepted that the exact
// verifier rejects.
func oldFloatConst2(streams []sched.Stream, assign []int, n int) bool {
	procSum := make([]float64, n)
	gcds := make([]sched.Rational, n)
	for i, s := range streams {
		j := assign[i]
		if j < 0 {
			return false
		}
		procSum[j] += s.Proc
		gcds[j] = sched.RatGCD(gcds[j], s.Period)
	}
	for j := 0; j < n; j++ {
		if gcds[j].Num == 0 {
			continue
		}
		if procSum[j] > gcds[j].Float()+1e-12 {
			return false
		}
	}
	return true
}

// TestRejectsPlanTheFloatCheckAccepted is the harness's acceptance
// criterion: a hand-built plan whose Σ pᵢ exceeds the period gcd by less
// than the old 1e-12 tolerance — so the float check passes — must be
// rejected by the exact verifier.
func TestRejectsPlanTheFloatCheckAccepted(t *testing.T) {
	// float64 0.05 is marginally above 1/20, so two of them marginally
	// exceed the 1/10 period gcd. The periods are mixed (1/5 and 1/10) so
	// Const1 still holds (exact utilization 0.75+ε ≤ 1) and Const2 is the
	// only violated constraint.
	streams := []sched.Stream{
		{Video: 0, Period: sched.Rat(1, 5), Proc: 0.05},
		{Video: 1, Period: sched.RatFromFPS(10), Proc: 0.05},
	}
	assign := []int{0, 0}
	if !oldFloatConst2(streams, assign, 1) {
		t.Fatal("setup broken: the old float check was supposed to accept this plan")
	}
	rec := obs.NewRecorder(nil)
	chk := New(true, rec)
	err := chk.VerifyAssignment(streams, assign, 1)
	var v *Violation
	if !errors.As(err, &v) || v.Invariant != "const2" {
		t.Fatalf("exact verifier returned %v, want const2 violation", err)
	}
	if got := rec.Registry().Counter("check_violation_const2").Value(); got != 1 {
		t.Fatalf("check_violation_const2 = %d, want 1", got)
	}
	if chk.Violations() != 1 {
		t.Fatalf("Violations() = %d, want 1", chk.Violations())
	}
}

func TestNonStrictRecordsButReturnsNil(t *testing.T) {
	streams := []sched.Stream{
		{Video: 0, Period: sched.RatFromFPS(10), Proc: 0.2}, // util 2 > 1
	}
	rec := obs.NewRecorder(nil)
	chk := New(false, rec)
	if err := chk.VerifyAssignment(streams, []int{0}, 1); err != nil {
		t.Fatalf("non-strict checker returned error: %v", err)
	}
	if chk.Violations() != 1 {
		t.Fatalf("Violations() = %d, want 1", chk.Violations())
	}
}

func TestNilCheckerIsNoop(t *testing.T) {
	var chk *Checker
	if err := chk.VerifyAssignment(nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := chk.VerifyDecision(eva.Decision{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := chk.Finite("x", math.NaN()); err != nil {
		t.Fatal(err)
	}
	if err := chk.PSDCov("c", nil); err != nil {
		t.Fatal(err)
	}
	if err := chk.NewIncumbent(true).Observe(math.NaN()); err != nil {
		t.Fatal(err)
	}
	if chk.Violations() != 0 {
		t.Fatal("nil checker counted violations")
	}
	// A checker with a nil recorder still decides invariants.
	strict := New(true, nil)
	if err := strict.Finite("x", math.Inf(1)); err == nil {
		t.Fatal("strict checker with nil recorder missed a violation")
	}
}

func TestVerifyAssignmentDiagnoses(t *testing.T) {
	rec := obs.NewRecorder(nil)
	chk := New(true, rec)
	good := []sched.Stream{{Video: 0, Period: sched.RatFromFPS(10), Proc: 0.05}}

	cases := []struct {
		name      string
		streams   []sched.Stream
		assign    []int
		n         int
		invariant string // "" = must pass
	}{
		{"feasible", good, []int{0}, 1, ""},
		{"shape", good, []int{0, 1}, 2, "shape"},
		{"range", good, []int{3}, 2, "assign_range"},
		{"unassigned", good, []int{-1}, 1, "assign_range"},
		{"nan", []sched.Stream{{Period: sched.RatFromFPS(10), Proc: math.NaN()}}, []int{0}, 1, "finite"},
		{"const1", []sched.Stream{
			{Period: sched.Rat(1, 1), Proc: math.Nextafter(1, 2)},
		}, []int{0}, 1, "const1"},
		{"const2", []sched.Stream{
			{Period: sched.Rat(3, 10), Proc: 0.12},
			{Period: sched.Rat(1, 5), Proc: 0.05},
		}, []int{0, 0}, 1, "const2"},
	}
	for _, tc := range cases {
		err := chk.VerifyAssignment(tc.streams, tc.assign, tc.n)
		if tc.invariant == "" {
			if err != nil {
				t.Fatalf("%s: unexpected violation %v", tc.name, err)
			}
			continue
		}
		var v *Violation
		if !errors.As(err, &v) || v.Invariant != tc.invariant {
			t.Fatalf("%s: got %v, want %s violation", tc.name, err, tc.invariant)
		}
	}
}

func TestVerifyDecision(t *testing.T) {
	chk := New(true, obs.NewRecorder(nil))
	streams := []sched.Stream{
		{Video: 0, Period: sched.RatFromFPS(10), Proc: 0.04},
		{Video: 1, Period: sched.RatFromFPS(10), Proc: 0.04},
	}
	cfgs := []videosim.Config{{FPS: 10}, {FPS: 10}}
	d := eva.Decision{Configs: cfgs, Streams: streams, Assign: []int{0, 1}}
	if err := chk.VerifyDecision(d, 2); err != nil {
		t.Fatalf("feasible decision rejected: %v", err)
	}

	bad := d
	bad.Offsets = []float64{0.01} // wrong length
	if err := chk.VerifyDecision(bad, 2); err == nil {
		t.Fatal("mismatched offsets accepted")
	}
	bad = d
	bad.Offsets = []float64{0.01, math.NaN()}
	if err := chk.VerifyDecision(bad, 2); err == nil {
		t.Fatal("NaN offset accepted")
	}
	// A degraded decision that still schedules a shed video is inconsistent.
	bad = d
	bad.Shed = []int{1}
	if err := chk.VerifyDecision(bad, 2); err == nil {
		t.Fatal("shed video still scheduled but accepted")
	}
	// A consistent degraded decision passes the same checks.
	degraded := eva.Decision{
		Configs:    cfgs,
		Streams:    streams[:1],
		Assign:     []int{0},
		Shed:       []int{1},
		Downgraded: []int{0},
	}
	if err := chk.VerifyDecision(degraded, 2); err != nil {
		t.Fatalf("consistent degraded decision rejected: %v", err)
	}
}

func TestObserveJitter(t *testing.T) {
	rec := obs.NewRecorder(nil)
	chk := New(true, rec)
	if err := chk.ObserveJitter(0, true); err != nil {
		t.Fatalf("zero jitter flagged: %v", err)
	}
	if err := chk.ObserveJitter(0.25, false); err != nil {
		t.Fatalf("unclaimed jitter flagged: %v", err)
	}
	if err := chk.ObserveJitter(0.25, true); err == nil {
		t.Fatal("claimed zero-jitter decision with 0.25s jitter accepted")
	}
	if g := rec.Registry().Gauge("check_last_jitter_s").Value(); g != 0.25 {
		t.Fatalf("check_last_jitter_s = %v, want 0.25", g)
	}
}

func TestPSDCov(t *testing.T) {
	chk := New(true, obs.NewRecorder(nil))
	psd := mat.NewMatrix(2, 2)
	psd.Set(0, 0, 1)
	psd.Set(1, 1, 1)
	psd.Set(0, 1, 0.5)
	psd.Set(1, 0, 0.5)
	if err := chk.PSDCov("cov", psd); err != nil {
		t.Fatalf("PSD matrix rejected: %v", err)
	}
	// Rank-deficient but semi-definite: the jitter ladder must rescue it.
	semi := mat.NewMatrix(2, 2)
	semi.Set(0, 0, 1)
	semi.Set(1, 1, 1)
	semi.Set(0, 1, 1)
	semi.Set(1, 0, 1)
	if err := chk.PSDCov("cov", semi); err != nil {
		t.Fatalf("semi-definite matrix rejected: %v", err)
	}
	// Genuinely indefinite: eigenvalues 1±2.
	indef := mat.NewMatrix(2, 2)
	indef.Set(0, 0, 1)
	indef.Set(1, 1, 1)
	indef.Set(0, 1, 2)
	indef.Set(1, 0, 2)
	if err := chk.PSDCov("cov", indef); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	asym := psd.Clone()
	asym.Set(0, 1, 0.25)
	if err := chk.PSDCov("cov", asym); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	nan := psd.Clone()
	nan.Set(1, 1, math.NaN())
	if err := chk.PSDCov("cov", nan); err == nil {
		t.Fatal("NaN covariance accepted")
	}
	if err := chk.PSDCov("cov", mat.NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestIncumbentGuard(t *testing.T) {
	rec := obs.NewRecorder(nil)
	chk := New(true, rec)

	fixed := chk.NewIncumbent(true)
	for _, b := range []float64{1, 1, 2, 2.5} {
		if err := fixed.Observe(b); err != nil {
			t.Fatalf("monotone sequence flagged at %v: %v", b, err)
		}
	}
	if err := fixed.Observe(2.4); err == nil {
		t.Fatal("incumbent drop under fixed belief accepted")
	}

	learned := chk.NewIncumbent(false)
	for _, b := range []float64{1, 2, 1.5, 1.6} {
		if err := learned.Observe(b); err != nil {
			t.Fatalf("learned-belief rescale flagged at %v: %v", b, err)
		}
	}
	if got := rec.Registry().Counter("check_incumbent_rescale_total").Value(); got != 1 {
		t.Fatalf("check_incumbent_rescale_total = %d, want 1", got)
	}
	// After the rescale the baseline follows the new scale: a drop below
	// 1.5→1.6's running best is again a rescale, not silently ignored.
	if err := learned.Observe(math.NaN()); err == nil {
		t.Fatal("NaN incumbent accepted")
	}
}

func TestAlgorithm1PlansAlwaysPass(t *testing.T) {
	// Every plan Algorithm 1 emits must clear the exact checks with no
	// tolerance — the grouping admission is itself exact now.
	chk := New(true, obs.NewRecorder(nil))
	streams := sched.SplitHighRate([]sched.Stream{
		{Video: 0, Period: sched.RatFromFPS(5), Proc: 0.05, Bits: 2e5},
		{Video: 1, Period: sched.RatFromFPS(10), Proc: 0.04, Bits: 3e5},
		{Video: 2, Period: sched.RatFromFPS(15), Proc: 0.1, Bits: 1e5}, // s·p = 1.5 → splits in 2
	})
	servers := []cluster.Server{{Uplink: 1e7}, {Uplink: 2e7}, {Uplink: 3e7}}
	plan, err := sched.Schedule(streams, servers)
	if err != nil {
		t.Fatal(err)
	}
	if err := chk.VerifyAssignment(streams, plan.StreamServer, len(servers)); err != nil {
		t.Fatalf("Algorithm 1 plan failed the exact checks: %v", err)
	}
}
