// Package check is the runtime correctness harness: exact-rational
// verification of the paper's feasibility constraints on every decision the
// system emits, numerical guards for the GP/BO stack, and an incumbent
// monotonicity guard for the optimization loop.
//
// The harness has one deliberate split between its two surfaces:
//
//   - Metrics/events are ALWAYS recorded (through a nil-safe obs.Recorder),
//     under the check_* naming convention, so production runs surface
//     violations without changing behaviour.
//   - Errors are returned only in Strict mode, turning any violation into a
//     hard failure — the mode CI and the -strict command flags run in.
//
// Tolerance policy (documented once, applied everywhere):
//
//   - Const1/Const2 (Eqs. 6/7) are exact: every float64 is a dyadic
//     rational, so Σpᵢ vs the period gcd and Σpᵢ·sᵢ vs 1 are compared in
//     exact rational arithmetic with NO epsilon. Anything over the bound,
//     however marginal, is a violation.
//   - Finiteness is exact: NaN or ±Inf anywhere is a violation.
//   - Positive semi-definiteness is decided by a jittered Cholesky
//     factorization (the same CholJitter ladder the GP itself uses), so a
//     posterior covariance that is merely semi-definite to rounding passes,
//     while a genuinely indefinite one fails.
//   - Incumbent monotonicity is strict only under a FIXED preference belief;
//     a learned belief may legitimately rescale past benefits on refresh, so
//     drops there are counted (check_incumbent_rescale_total) but never
//     errors.
//
// All methods are no-ops returning nil on a nil *Checker, so instrumented
// code keeps the calls unconditionally.
package check

import (
	"fmt"

	"repro/internal/obs"
)

// Violation is the error returned (in Strict mode) when an invariant fails.
type Violation struct {
	Invariant string // machine-readable invariant name, e.g. "const2"
	Detail    string // human-readable diagnosis
}

func (v *Violation) Error() string { return "check: " + v.Invariant + ": " + v.Detail }

// Checker verifies invariants, recording every check and violation on its
// recorder's metric registry. The zero value (and nil) are usable: a nil
// Checker checks nothing, a non-nil Checker with a nil recorder checks
// without telemetry.
type Checker struct {
	Strict bool
	rec    *obs.Recorder
}

// New returns a checker. strict turns violations into returned errors; rec
// (may be nil) receives check_* metrics and violation events.
func New(strict bool, rec *obs.Recorder) *Checker {
	return &Checker{Strict: strict, rec: rec}
}

// Recorder returns the checker's recorder (nil on a nil receiver).
func (c *Checker) Recorder() *obs.Recorder {
	if c == nil {
		return nil
	}
	return c.rec
}

// begin counts one invariant evaluation.
func (c *Checker) begin(invariant string) {
	if c == nil {
		return
	}
	c.rec.Registry().Counter("check_checks_total").Inc()
	c.rec.Registry().Counter("check_checks_" + invariant).Inc()
}

// violate records a violation and, in Strict mode, returns it as an error.
func (c *Checker) violate(invariant, format string, args ...any) error {
	if c == nil {
		return nil
	}
	reg := c.rec.Registry()
	reg.Counter("check_violations_total").Inc()
	reg.Counter("check_violation_" + invariant).Inc()
	strict := 0.0
	if c.Strict {
		strict = 1
	}
	c.rec.Event("check.violation."+invariant, obs.F("strict", strict))
	if c.Strict {
		return &Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	}
	return nil
}

// Relaxed returns a view of this checker that records metrics and events
// but never returns errors — for invariants whose violation is an expected
// operating condition (e.g. deployed-decision feasibility under TRUE
// processing times, where model error is the phenomenon being measured)
// rather than a bug. Safe on a nil receiver.
func (c *Checker) Relaxed() *Checker {
	if c == nil || !c.Strict {
		return c
	}
	return &Checker{Strict: false, rec: c.rec}
}

// Violations returns the total violation count recorded so far (0 when the
// checker or its recorder is nil).
func (c *Checker) Violations() uint64 {
	if c == nil {
		return 0
	}
	return c.rec.Registry().Counter("check_violations_total").Value()
}
