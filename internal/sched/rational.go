// Package sched implements the paper's Section 4.1: the group-based
// heuristic zero-jitter scheduling algorithm (Algorithm 1), the high-rate
// stream splitting of Section 3, and the Const1/Const2 feasibility checks.
//
// Frame periods are exact rationals (seconds = Num/Den), so the greatest
// common divisor in Const2 — gcd(1/s₁, …, 1/s_K) = 1/lcm(s₁, …, s_K) — is
// computed without floating-point error.
package sched

import (
	"fmt"
	"math/big"
)

// Rational is an exact non-negative rational number Num/Den (seconds).
type Rational struct {
	Num, Den int64
}

// RatFromFPS returns the frame period 1/fps as a rational.
func RatFromFPS(fps int64) Rational {
	if fps <= 0 {
		panic(fmt.Sprintf("sched: non-positive fps %d", fps))
	}
	return Rational{Num: 1, Den: fps}
}

// Rat returns num/den reduced to lowest terms.
func Rat(num, den int64) Rational {
	if den <= 0 || num < 0 {
		panic(fmt.Sprintf("sched: invalid rational %d/%d", num, den))
	}
	return Rational{Num: num, Den: den}.reduce()
}

func (r Rational) reduce() Rational {
	if r.Num == 0 {
		return Rational{0, 1}
	}
	g := gcd64(r.Num, r.Den)
	return Rational{r.Num / g, r.Den / g}
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

func lcm64(a, b int64) int64 { return a / gcd64(a, b) * b }

// Float returns the rational as a float64.
func (r Rational) Float() float64 { return float64(r.Num) / float64(r.Den) }

// Mul returns r scaled by the positive integer k.
func (r Rational) Mul(k int64) Rational {
	if k <= 0 {
		panic(fmt.Sprintf("sched: non-positive multiplier %d", k))
	}
	return Rational{r.Num * k, r.Den}.reduce()
}

// Cmp returns -1, 0, or 1 as r <, ==, > s.
func (r Rational) Cmp(s Rational) int {
	l := r.Num * s.Den
	m := s.Num * r.Den
	switch {
	case l < m:
		return -1
	case l > m:
		return 1
	default:
		return 0
	}
}

// RatGCD returns the exact greatest common divisor of two rationals:
// gcd(a/b, c/d) = gcd(a·d, c·b)/(b·d).
func RatGCD(a, b Rational) Rational {
	if a.Num == 0 {
		return b.reduce()
	}
	if b.Num == 0 {
		return a.reduce()
	}
	num := gcd64(a.Num*b.Den, b.Num*a.Den)
	return Rational{num, a.Den * b.Den}.reduce()
}

// IsMultipleOf reports whether r = t·s for some positive integer t.
func (r Rational) IsMultipleOf(s Rational) bool {
	if s.Num == 0 {
		return false
	}
	// r/s = (r.Num·s.Den)/(r.Den·s.Num) must be a positive integer.
	num := r.Num * s.Den
	den := r.Den * s.Num
	return num > 0 && num%den == 0
}

// String renders the rational for diagnostics.
func (r Rational) String() string { return fmt.Sprintf("%d/%d", r.Num, r.Den) }

// BigRat returns the rational as an exact *big.Rat, for arithmetic that
// must mix exact periods with (dyadic-rational) float64 processing times.
func (r Rational) BigRat() *big.Rat { return big.NewRat(r.Num, r.Den) }

// ratFromFloat returns the float64 f as an exact rational. Every finite
// float64 is a dyadic rational, so the conversion is lossless; NaN and the
// infinities return nil and callers must treat them as invalid inputs.
func ratFromFloat(f float64) *big.Rat { return new(big.Rat).SetFloat64(f) }

// ratCeil returns ⌈r⌉ for a non-negative rational.
func ratCeil(r *big.Rat) *big.Int {
	q, rem := new(big.Int), new(big.Int)
	q.QuoRem(r.Num(), r.Denom(), rem)
	if rem.Sign() > 0 {
		q.Add(q, big.NewInt(1))
	}
	return q
}
