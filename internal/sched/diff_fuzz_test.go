package sched

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// FuzzScheduleMaskedVsSchedule differentially fuzzes the fault-path
// scheduler against the plain one: with every server healthy, ScheduleMasked
// must be *exactly* Schedule — same feasibility verdict and a byte-identical
// plan (groups, server maps, communication latency). The masked path
// compacts to the survivor subset and remaps indices back to physical ones;
// with an all-true mask that remap must be the identity, and any drift here
// means degraded-mode replans silently disagree with normal operation.
func FuzzScheduleMaskedVsSchedule(f *testing.F) {
	f.Add(uint64(1), 4, 3)
	f.Add(uint64(42), 8, 5)
	f.Add(uint64(7), 1, 1)
	f.Add(uint64(1234), 6, 2)
	f.Fuzz(func(t *testing.T, seed uint64, m, n int) {
		m = 1 + abs(m)%8
		n = 1 + abs(n)%5
		fps := []int64{5, 6, 10, 15, 25, 30}
		rng := seed
		next := func(k int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(k))
		}
		streams := make([]Stream, m)
		for i := range streams {
			p := RatFromFPS(fps[next(len(fps))])
			streams[i] = Stream{
				Video:  i,
				Period: p,
				Proc:   p.Float() * (0.05 + 0.9*float64(next(100))/100),
				Bits:   1e6 * (1 + float64(next(20))),
			}
		}
		servers := make([]cluster.Server, n)
		for j := range servers {
			servers[j] = cluster.Server{Name: fmt.Sprintf("s%d", j), Uplink: 10e6 * float64(1+next(5))}
		}
		healthy := make([]bool, n)
		for j := range healthy {
			healthy[j] = true
		}

		plain, errPlain := Schedule(streams, servers)
		masked, errMasked := ScheduleMasked(streams, servers, healthy)

		if (errPlain == nil) != (errMasked == nil) {
			t.Fatalf("feasibility diverged: Schedule err=%v, ScheduleMasked err=%v", errPlain, errMasked)
		}
		if errPlain != nil {
			if !errors.Is(errPlain, ErrInfeasible) || !errors.Is(errMasked, ErrInfeasible) {
				t.Fatalf("non-infeasible errors: %v / %v", errPlain, errMasked)
			}
			return
		}
		if !reflect.DeepEqual(plain.Groups, masked.Groups) {
			t.Fatalf("groups diverged:\n%v\n%v", plain.Groups, masked.Groups)
		}
		if !reflect.DeepEqual(plain.GroupServer, masked.GroupServer) {
			t.Fatalf("group→server maps diverged:\n%v\n%v", plain.GroupServer, masked.GroupServer)
		}
		if !reflect.DeepEqual(plain.StreamServer, masked.StreamServer) {
			t.Fatalf("stream→server maps diverged:\n%v\n%v", plain.StreamServer, masked.StreamServer)
		}
		if plain.CommLatency != masked.CommLatency {
			t.Fatalf("comm latency diverged: %v vs %v", plain.CommLatency, masked.CommLatency)
		}
		// And a nil mask is the documented alias for all-healthy.
		viaNil, err := ScheduleMasked(streams, servers, nil)
		if err != nil {
			t.Fatalf("nil-mask schedule failed where all-true succeeded: %v", err)
		}
		if !reflect.DeepEqual(viaNil.StreamServer, masked.StreamServer) {
			t.Fatalf("nil mask diverged from all-true mask:\n%v\n%v", viaNil.StreamServer, masked.StreamServer)
		}
	})
}
