package sched

import (
	"context"
	"math"
	"math/big"

	"repro/internal/cluster"
	"repro/internal/hungarian"
	"repro/internal/obs"
)

// Replanner amortizes Algorithm 1 across runtime epochs. A full solve pays
// for the O(m²) priority computation and exact-rational greedy admission in
// GroupStreams on every call; in steady state, though, epochs differ only in
// drifted per-frame costs (Proc, Bits) and in which servers are healthy —
// the periods, and therefore every grouping-validity argument that depends
// on them, are unchanged. Replan exploits that: it keeps the previous
// grouping, re-verifies Const2 for the drifted processing times with exact
// rational arithmetic (reused scratch, no big.Rat churn), and re-solves only
// the group→server Hungarian mapping against the surviving servers.
//
// Fallback semantics (see DESIGN.md "Scaling"): the incremental path is
// taken only when it is provably as correct as a full solve — same streams
// (Video/Sub/Period), every group's drifted Σ proc still within the exact
// gcd of its periods (Const2, which implies Const1 since T_i ≥ gcd), and
// enough healthy servers for the non-empty groups. Anything else falls back
// to a cold ScheduleMasked, whose result is adopted as the new baseline.
// Incremental plans can be less optimal than a cold solve (the grouping is
// frozen), but never less feasible.
type Replanner struct {
	rec     *obs.Recorder // optional; see SetRecorder
	valid   bool
	streams []Stream   // adopted workload; periods are authoritative
	groups  [][]int    // adopted grouping (deep copy)
	gcds    []*big.Rat // per-group exact gcd of member periods
	ratGcds []Rational // the same gcds in Rational form, for Admit's divisibility tests

	solver hungarian.Solver
	// Exact Σ proc scratch: float64 processing times are dyadic rationals
	// m·2^e, so a group's sum is held as sum/2^shift over a common
	// power-of-two denominator and compared against gcd num/den by
	// cross-multiplication — same exactness as big.Rat accumulation, none
	// of Rat.Add's per-step GCD normalization (or its allocations).
	sum, tmpInt, lhs, rhs big.Int
	cost                  [][]float64
	flat                  []float64
	rows                  []int  // group indices entering the assignment problem
	cols                  []int  // physical indices of healthy servers
	seen                  []bool // Adopt's membership-coverage scratch
	remap                 []int  // Evict's old→new index scratch
	mtmp                  []int  // Admit's trial-membership scratch
}

// NewReplanner returns an empty replanner; the first Replan always runs a
// full solve.
func NewReplanner() *Replanner { return &Replanner{} }

// SetRecorder attaches a recorder: IncrementalCtx then emits one
// "sched_incremental" span per attempt (fields: streams, taken) nested
// under the caller's trace context, plus sched_incremental_total /
// sched_incremental_declined_total counters. Nil (the default) disables
// telemetry at zero cost.
func (r *Replanner) SetRecorder(rec *obs.Recorder) { r.rec = rec }

// IncrementalCtx is Incremental with trace-context propagation: the span
// it emits (when a recorder is attached) parents under the span carried by
// ctx, so an epoch's incremental replan shows up inside the epoch's trace.
func (r *Replanner) IncrementalCtx(ctx context.Context, streams []Stream, servers []cluster.Server, healthy []bool) (Plan, bool) {
	if r.rec == nil {
		return r.Incremental(streams, servers, healthy)
	}
	_, sp := r.rec.StartSpanCtx(ctx, "sched_incremental", obs.F("streams", float64(len(streams))))
	plan, ok := r.Incremental(streams, servers, healthy)
	sp.Field("taken", b2f(ok))
	sp.End()
	r.rec.Registry().Counter("sched_incremental_total").Inc()
	if !ok {
		r.rec.Registry().Counter("sched_incremental_declined_total").Inc()
	}
	return plan, ok
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Invalidate drops the adopted grouping, forcing the next Replan to run a
// full solve. Call it when the workload changes shape outside Replan's view.
func (r *Replanner) Invalidate() { r.valid = false }

// Replan schedules the streams onto the healthy servers (nil mask = all
// healthy), reusing the previously adopted grouping when valid and falling
// back to a full ScheduleMasked otherwise. The boolean reports whether the
// incremental path was taken.
func (r *Replanner) Replan(streams []Stream, servers []cluster.Server, healthy []bool) (Plan, bool, error) {
	if plan, ok := r.Incremental(streams, servers, healthy); ok {
		return plan, true, nil
	}
	plan, err := ScheduleMasked(streams, servers, healthy)
	if err != nil {
		r.valid = false
		return Plan{}, false, err
	}
	r.Adopt(streams, plan)
	return plan, false, nil
}

// Adopt installs plan as the incremental baseline for subsequent calls. The
// plan must be a feasible schedule of streams (as produced by Schedule,
// ScheduleMasked, or a verified external decision); streams and grouping are
// deep-copied.
//
// The grouping is keyed by stream index, so a plan whose membership does not
// exactly cover streams — stale indices after an eviction shrank the slice,
// a duplicate, or a gap — would silently wire the wrong stream into a group
// (or index out of range on the next Incremental). Adopt therefore validates
// coverage first and invalidates the baseline instead of corrupting it.
func (r *Replanner) Adopt(streams []Stream, plan Plan) {
	if cap(r.seen) < len(streams) {
		r.seen = make([]bool, len(streams))
	}
	r.seen = r.seen[:len(streams)]
	for i := range r.seen {
		r.seen[i] = false
	}
	for _, members := range plan.Groups {
		for _, si := range members {
			if si < 0 || si >= len(streams) || r.seen[si] {
				r.valid = false
				return
			}
			r.seen[si] = true
		}
	}
	for _, ok := range r.seen {
		if !ok {
			r.valid = false
			return
		}
	}
	r.streams = append(r.streams[:0], streams...)
	if cap(r.groups) < len(plan.Groups) {
		r.groups = make([][]int, len(plan.Groups))
	}
	r.groups = r.groups[:len(plan.Groups)]
	r.gcds = r.gcds[:0]
	r.ratGcds = r.ratGcds[:0]
	for g, members := range plan.Groups {
		r.groups[g] = append(r.groups[g][:0], members...)
		if len(members) == 0 {
			// Empty group: no Const2 budget to check.
			r.gcds = append(r.gcds, nil)
			r.ratGcds = append(r.ratGcds, Rational{})
			continue
		}
		gcd := Rational{}
		for _, si := range members {
			gcd = RatGCD(gcd, streams[si].Period)
		}
		r.gcds = append(r.gcds, gcd.BigRat())
		r.ratGcds = append(r.ratGcds, gcd)
	}
	r.valid = true
}

// procSumWithinBudget reports whether Σ streams[si].Proc over members is at
// most budget, computed exactly. The sum is accumulated as a scaled integer
// sum/2^shift (every finite float64 is m·2^e with |m| < 2^53), then compared
// by cross-multiplication: sum/2^shift ≤ num/den ⇔ sum·den ≤ num·2^shift.
// All big.Int scratch lives on the Replanner, so steady-state calls allocate
// nothing once the scratch has grown. Non-finite processing times report
// false — the caller treats the drift as unverifiable and falls back.
func (r *Replanner) procSumWithinBudget(streams []Stream, members []int, budget *big.Rat) bool {
	shift, ok := r.accumProcSum(streams, members)
	if !ok {
		return false
	}
	return r.sumWithinBudget(budget, 1, shift)
}

// accumProcSum accumulates Σ streams[si].Proc over members into the scratch
// as r.sum/2^shift, exactly, returning the shift. ok=false on a non-finite
// processing time.
func (r *Replanner) accumProcSum(streams []Stream, members []int) (shift uint, ok bool) {
	r.sum.SetInt64(0)
	for _, si := range members {
		p := streams[si].Proc
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return 0, false
		}
		fr, exp := math.Frexp(p) // p = fr·2^exp, |fr| ∈ [0.5, 1) or 0
		mant := int64(fr * (1 << 53))
		e := exp - 53 // p = mant·2^e exactly
		r.tmpInt.SetInt64(mant)
		if e >= 0 {
			r.tmpInt.Lsh(&r.tmpInt, uint(e)+shift)
		} else if d := uint(-e); d > shift {
			r.sum.Lsh(&r.sum, d-shift)
			shift = d
		} else if shift > d {
			r.tmpInt.Lsh(&r.tmpInt, shift-d)
		}
		r.sum.Add(&r.sum, &r.tmpInt)
	}
	return shift, true
}

// sumWithinBudget reports r.sum/2^shift ≤ budget·speed exactly. The speed
// factor is a float64 and hence a dyadic rational mant·2^e, so the scaled
// budget stays exact and the comparison is a cross-multiplication. speed 1
// is the homogeneous case; non-finite or non-positive speeds report false.
// r.sum is read-only here, so one accumulation settles many servers.
func (r *Replanner) sumWithinBudget(budget *big.Rat, speed float64, shift uint) bool {
	r.lhs.Mul(&r.sum, budget.Denom())
	if speed == 1 {
		r.rhs.Lsh(budget.Num(), shift)
		return r.lhs.Cmp(&r.rhs) <= 0
	}
	if math.IsNaN(speed) || math.IsInf(speed, 0) || speed <= 0 {
		return false
	}
	fr, exp := math.Frexp(speed) // speed = mant·2^(exp−53) exactly
	r.tmpInt.SetInt64(int64(fr * (1 << 53)))
	r.rhs.Mul(budget.Num(), &r.tmpInt)
	if e := exp - 53; e >= 0 {
		r.rhs.Lsh(&r.rhs, shift+uint(e))
	} else {
		r.rhs.Lsh(&r.rhs, shift)
		r.lhs.Lsh(&r.lhs, uint(-e))
	}
	return r.lhs.Cmp(&r.rhs) <= 0
}

// Incremental attempts the grouping-reusing replan described on Replanner.
// It returns ok=false — without touching the adopted state — whenever the
// fast path cannot prove feasibility, leaving the decision to fall back to
// the caller.
func (r *Replanner) Incremental(streams []Stream, servers []cluster.Server, healthy []bool) (Plan, bool) {
	if !r.valid || len(streams) != len(r.streams) {
		return Plan{}, false
	}
	if healthy != nil && len(healthy) != len(servers) {
		return Plan{}, false
	}
	// The grouping's validity argument rests on the periods (and stream
	// identity); any change there needs a full regroup.
	for i, s := range streams {
		p := r.streams[i]
		if s.Video != p.Video || s.Sub != p.Sub || s.Period != p.Period {
			return Plan{}, false
		}
	}
	// Const2 with drifted processing times, exactly: per group,
	// Σ proc ≤ gcd(periods). Since the gcd divides every member period this
	// also implies Const1 (Σ p_i/T_i ≤ Σ p_i/gcd ≤ 1). On a heterogeneous
	// cluster the budget is per server class (gcd·speed_j), so the global
	// pre-check is skipped and each (group, server) cell is checked exactly
	// while the cost matrix is built below.
	het := hetero(servers)
	if !het {
		for g, members := range r.groups {
			if len(members) == 0 {
				continue
			}
			if !r.procSumWithinBudget(streams, members, r.gcds[g]) {
				return Plan{}, false
			}
		}
	}
	// Healthy columns in physical index order — the same order a masked full
	// solve uses, so the Hungarian tie-breaking matches it.
	r.cols = r.cols[:0]
	for j := range servers {
		if healthy == nil || healthy[j] {
			r.cols = append(r.cols, j)
		}
	}
	if len(r.cols) == 0 {
		return Plan{}, false
	}
	// Row selection: normally every group keeps a server (the shape MapGroups
	// produces); when an outage leaves fewer servers than groups, only the
	// non-empty groups compete, and the plan compacts to them.
	r.rows = r.rows[:0]
	if len(r.groups) <= len(r.cols) {
		for g := range r.groups {
			r.rows = append(r.rows, g)
		}
	} else {
		for g, members := range r.groups {
			if len(members) > 0 {
				r.rows = append(r.rows, g)
			}
		}
		if len(r.rows) > len(r.cols) {
			return Plan{}, false
		}
	}

	// The cost matrix is padded square with zero-bit dummy rows, exactly as
	// MapGroups pads missing groups: dummy rows influence Hungarian
	// tie-breaking among equal-cost columns, so matching the full solve's
	// shape keeps the incremental assignment bit-identical to MapGroups on
	// the same grouping.
	nr, nc := len(r.rows), len(r.cols)
	if cap(r.flat) < nc*nc {
		r.flat = make([]float64, nc*nc)
	}
	r.flat = r.flat[:nc*nc]
	if cap(r.cost) < nc {
		r.cost = make([][]float64, nc)
	}
	r.cost = r.cost[:nc]
	for ri := 0; ri < nc; ri++ {
		row := r.flat[ri*nc : (ri+1)*nc]
		r.cost[ri] = row
		var bits float64
		mask := false // per-column exact Const2 masking (hetero only)
		if ri < nr {
			members := r.groups[r.rows[ri]]
			for _, si := range members {
				bits += streams[si].Bits
			}
			if het && len(members) > 0 {
				shift, ok := r.accumProcSum(streams, members)
				if !ok {
					return Plan{}, false
				}
				for ci, j := range r.cols {
					row[ci] = 0
					if !r.sumWithinBudget(r.gcds[r.rows[ri]], servers[j].Speed(), shift) {
						row[ci] = math.Inf(1)
					}
				}
				mask = true
			}
		}
		for ci, j := range r.cols {
			switch {
			case mask && math.IsInf(row[ci], 1):
				// speed-infeasible (group, server) pair stays masked
			case servers[j].Uplink > 0:
				row[ci] = bits / servers[j].Uplink
			case bits > 0:
				row[ci] = math.Inf(1)
			default:
				row[ci] = 0
			}
		}
	}
	assign, total := r.solver.Solve(r.cost)
	if het {
		// A forced Inf assignment means no server class fits some group:
		// decline so the caller falls back to a full (re-grouping) solve.
		for ri := 0; ri < nr; ri++ {
			if math.IsInf(r.cost[ri][assign[ri]], 1) {
				return Plan{}, false
			}
		}
	}

	plan := Plan{
		Groups:       make([][]int, nr),
		GroupServer:  make([]int, nc),
		StreamServer: make([]int, len(streams)),
		CommLatency:  total,
	}
	for i := range plan.StreamServer {
		plan.StreamServer[i] = -1
	}
	for ri := 0; ri < nc; ri++ {
		srv := r.cols[assign[ri]]
		plan.GroupServer[ri] = srv
		if ri >= nr {
			continue
		}
		plan.Groups[ri] = append([]int(nil), r.groups[r.rows[ri]]...)
		for _, si := range r.groups[r.rows[ri]] {
			plan.StreamServer[si] = srv
		}
	}
	return plan, true
}

// Evict removes every stream i with remove[i] from the adopted baseline
// without a re-solve. Removal only shrinks a group's Σ proc and can only
// coarsen (raise) its period gcd, so the frozen grouping stays feasible by
// construction — groups shrink in place (possibly to empty) and surviving
// member indices are remapped onto the compacted stream slice. Reports
// false, leaving the baseline untouched, only when there is no valid
// baseline or the mask has the wrong length.
func (r *Replanner) Evict(remove []bool) bool {
	if !r.valid || len(remove) != len(r.streams) {
		return false
	}
	if cap(r.remap) < len(r.streams) {
		r.remap = make([]int, len(r.streams))
	}
	r.remap = r.remap[:len(r.streams)]
	n := 0
	for i := range r.streams {
		if remove[i] {
			r.remap[i] = -1
			continue
		}
		r.remap[i] = n
		r.streams[n] = r.streams[i]
		n++
	}
	if n == len(r.streams) {
		return true // nothing flagged
	}
	r.streams = r.streams[:n]
	for g, members := range r.groups {
		k := 0
		dropped := false
		for _, si := range members {
			ni := r.remap[si]
			if ni < 0 {
				dropped = true
				continue
			}
			members[k] = ni
			k++
		}
		r.groups[g] = members[:k]
		if !dropped {
			continue // same membership, same gcd
		}
		if k == 0 {
			r.gcds[g] = nil
			r.ratGcds[g] = Rational{}
			continue
		}
		gcd := Rational{}
		for _, si := range r.groups[g] {
			gcd = RatGCD(gcd, r.streams[si].Period)
		}
		r.gcds[g] = gcd.BigRat()
		r.ratGcds[g] = gcd
		if r.rec != nil {
			r.rec.Registry().Counter("sched_evict_regcd_total").Inc()
		}
	}
	if r.rec != nil {
		r.rec.Registry().Counter("sched_evict_total").Inc()
	}
	return true
}

// Admit inserts the arriving stream into the adopted baseline without a
// full resolve, preferring an existing group whose exact Const2 budget
// still holds. Group compatibility keeps the gcd structure intact: either
// the new period is an integer multiple of the group gcd (gcd unchanged),
// or the gcd is a multiple of the new period (gcd refines to it) — an
// unrelated period would collapse the gcd and starve the whole group. The
// budget check is the exact dyadic Σ proc + p ≤ gcd' · maxSpeed over the
// healthy servers; that is a necessary condition, and the subsequent
// Incremental call settles the exact per-server placement (masking
// speed-infeasible pairs), declining — and thereby forcing the caller's
// full-resolve fallback — if the Hungarian assignment cannot realize it.
// When no group fits, a new singleton group opens, provided a healthy
// server column remains for it. Returns the group index the stream joined
// and ok; on ok=false the baseline is unchanged.
func (r *Replanner) Admit(s Stream, servers []cluster.Server, healthy []bool) (int, bool) {
	g, ok := r.admit(s, servers, healthy)
	if r.rec != nil {
		reg := r.rec.Registry()
		reg.Counter("sched_admit_total").Inc()
		if !ok {
			reg.Counter("sched_admit_declined_total").Inc()
		}
	}
	return g, ok
}

func (r *Replanner) admit(s Stream, servers []cluster.Server, healthy []bool) (int, bool) {
	if !r.valid || s.Period.Num <= 0 || s.Period.Den <= 0 {
		return -1, false
	}
	if math.IsNaN(s.Proc) || math.IsInf(s.Proc, 0) || s.Proc < 0 {
		return -1, false
	}
	if healthy != nil && len(healthy) != len(servers) {
		return -1, false
	}
	maxSpd := 0.0
	nHealthy := 0
	for j := range servers {
		if healthy == nil || healthy[j] {
			nHealthy++
			if spd := servers[j].Speed(); spd > maxSpd {
				maxSpd = spd
			}
		}
	}
	if nHealthy == 0 {
		return -1, false
	}

	// Tentatively append so the trial membership can be summed uniformly;
	// popped again on decline.
	r.streams = append(r.streams, s)
	si := len(r.streams) - 1

	// Pass 0: groups the new period slots into without changing the gcd.
	// Pass 1: groups whose gcd refines to the new period. First fit within a
	// pass — deterministic, and Algorithm 1's period-sorted construction
	// means earlier groups hold the longer periods (the roomier budgets).
	for pass := 0; pass < 2; pass++ {
		for g, members := range r.groups {
			if len(members) == 0 {
				continue
			}
			gcd := r.ratGcds[g]
			if pass == 0 {
				if !s.Period.IsMultipleOf(gcd) {
					continue
				}
			} else {
				if s.Period.IsMultipleOf(gcd) || !gcd.IsMultipleOf(s.Period) {
					continue
				}
			}
			newGcd := RatGCD(gcd, s.Period)
			r.mtmp = append(r.mtmp[:0], members...)
			r.mtmp = append(r.mtmp, si)
			shift, ok := r.accumProcSum(r.streams, r.mtmp)
			if !ok {
				continue
			}
			budget := newGcd.BigRat()
			if !r.sumWithinBudget(budget, maxSpd, shift) {
				continue
			}
			r.groups[g] = append(r.groups[g], si)
			r.gcds[g] = budget
			r.ratGcds[g] = newGcd
			if r.rec != nil {
				r.rec.Registry().Counter("sched_admit_hits_total").Inc()
			}
			return g, true
		}
	}

	// No compatible group: open a singleton, reusing an empty slot when one
	// exists so the plan shape (and Hungarian tie-breaking) stays stable.
	// The stream must fit the fastest healthy server on its own, and a
	// server column must remain for the extra non-empty group.
	nonEmpty := 0
	slot := -1
	for g, members := range r.groups {
		if len(members) > 0 {
			nonEmpty++
		} else if slot < 0 {
			slot = g
		}
	}
	r.mtmp = append(r.mtmp[:0], si)
	shift, ok := r.accumProcSum(r.streams, r.mtmp)
	if !ok || nonEmpty >= nHealthy || !r.sumWithinBudget(s.Period.BigRat(), maxSpd, shift) {
		r.streams = r.streams[:si]
		return -1, false
	}
	if slot < 0 {
		r.groups = append(r.groups, nil)
		r.gcds = append(r.gcds, nil)
		r.ratGcds = append(r.ratGcds, Rational{})
		slot = len(r.groups) - 1
	}
	r.groups[slot] = append(r.groups[slot][:0], si)
	r.gcds[slot] = s.Period.BigRat()
	r.ratGcds[slot] = s.Period
	if r.rec != nil {
		r.rec.Registry().Counter("sched_admit_new_group_total").Inc()
	}
	return slot, true
}

// Streams returns the adopted baseline workload (nil when invalid). The
// slice is the replanner's own — callers must treat it as read-only.
func (r *Replanner) Streams() []Stream {
	if !r.valid {
		return nil
	}
	return r.streams
}

// RemapVideos rewrites the adopted streams' Video indices through remap
// (old → new). The runtime calls this after an eviction compacted its clip
// slice, so the baseline keeps matching the caller's post-churn indexing —
// Incremental compares stream identity field by field. A reference to a
// removed (negative) or out-of-range entry invalidates the baseline: it
// means the eviction mask and the remap disagree.
func (r *Replanner) RemapVideos(remap []int) bool {
	if !r.valid {
		return false
	}
	for i := range r.streams {
		v := r.streams[i].Video
		if v < 0 || v >= len(remap) || remap[v] < 0 {
			r.valid = false
			return false
		}
		r.streams[i].Video = remap[v]
	}
	return true
}
