package sched

import (
	"context"
	"math"
	"math/big"

	"repro/internal/cluster"
	"repro/internal/hungarian"
	"repro/internal/obs"
)

// Replanner amortizes Algorithm 1 across runtime epochs. A full solve pays
// for the O(m²) priority computation and exact-rational greedy admission in
// GroupStreams on every call; in steady state, though, epochs differ only in
// drifted per-frame costs (Proc, Bits) and in which servers are healthy —
// the periods, and therefore every grouping-validity argument that depends
// on them, are unchanged. Replan exploits that: it keeps the previous
// grouping, re-verifies Const2 for the drifted processing times with exact
// rational arithmetic (reused scratch, no big.Rat churn), and re-solves only
// the group→server Hungarian mapping against the surviving servers.
//
// Fallback semantics (see DESIGN.md "Scaling"): the incremental path is
// taken only when it is provably as correct as a full solve — same streams
// (Video/Sub/Period), every group's drifted Σ proc still within the exact
// gcd of its periods (Const2, which implies Const1 since T_i ≥ gcd), and
// enough healthy servers for the non-empty groups. Anything else falls back
// to a cold ScheduleMasked, whose result is adopted as the new baseline.
// Incremental plans can be less optimal than a cold solve (the grouping is
// frozen), but never less feasible.
type Replanner struct {
	rec     *obs.Recorder // optional; see SetRecorder
	valid   bool
	streams []Stream   // adopted workload; periods are authoritative
	groups  [][]int    // adopted grouping (deep copy)
	gcds    []*big.Rat // per-group exact gcd of member periods

	solver hungarian.Solver
	// Exact Σ proc scratch: float64 processing times are dyadic rationals
	// m·2^e, so a group's sum is held as sum/2^shift over a common
	// power-of-two denominator and compared against gcd num/den by
	// cross-multiplication — same exactness as big.Rat accumulation, none
	// of Rat.Add's per-step GCD normalization (or its allocations).
	sum, tmpInt, lhs, rhs big.Int
	cost                  [][]float64
	flat                  []float64
	rows                  []int // group indices entering the assignment problem
	cols                  []int // physical indices of healthy servers
}

// NewReplanner returns an empty replanner; the first Replan always runs a
// full solve.
func NewReplanner() *Replanner { return &Replanner{} }

// SetRecorder attaches a recorder: IncrementalCtx then emits one
// "sched_incremental" span per attempt (fields: streams, taken) nested
// under the caller's trace context, plus sched_incremental_total /
// sched_incremental_declined_total counters. Nil (the default) disables
// telemetry at zero cost.
func (r *Replanner) SetRecorder(rec *obs.Recorder) { r.rec = rec }

// IncrementalCtx is Incremental with trace-context propagation: the span
// it emits (when a recorder is attached) parents under the span carried by
// ctx, so an epoch's incremental replan shows up inside the epoch's trace.
func (r *Replanner) IncrementalCtx(ctx context.Context, streams []Stream, servers []cluster.Server, healthy []bool) (Plan, bool) {
	if r.rec == nil {
		return r.Incremental(streams, servers, healthy)
	}
	_, sp := r.rec.StartSpanCtx(ctx, "sched_incremental", obs.F("streams", float64(len(streams))))
	plan, ok := r.Incremental(streams, servers, healthy)
	sp.Field("taken", b2f(ok))
	sp.End()
	r.rec.Registry().Counter("sched_incremental_total").Inc()
	if !ok {
		r.rec.Registry().Counter("sched_incremental_declined_total").Inc()
	}
	return plan, ok
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Invalidate drops the adopted grouping, forcing the next Replan to run a
// full solve. Call it when the workload changes shape outside Replan's view.
func (r *Replanner) Invalidate() { r.valid = false }

// Replan schedules the streams onto the healthy servers (nil mask = all
// healthy), reusing the previously adopted grouping when valid and falling
// back to a full ScheduleMasked otherwise. The boolean reports whether the
// incremental path was taken.
func (r *Replanner) Replan(streams []Stream, servers []cluster.Server, healthy []bool) (Plan, bool, error) {
	if plan, ok := r.Incremental(streams, servers, healthy); ok {
		return plan, true, nil
	}
	plan, err := ScheduleMasked(streams, servers, healthy)
	if err != nil {
		r.valid = false
		return Plan{}, false, err
	}
	r.Adopt(streams, plan)
	return plan, false, nil
}

// Adopt installs plan as the incremental baseline for subsequent calls. The
// plan must be a feasible schedule of streams (as produced by Schedule,
// ScheduleMasked, or a verified external decision); streams and grouping are
// deep-copied.
func (r *Replanner) Adopt(streams []Stream, plan Plan) {
	r.streams = append(r.streams[:0], streams...)
	if cap(r.groups) < len(plan.Groups) {
		r.groups = make([][]int, len(plan.Groups))
	}
	r.groups = r.groups[:len(plan.Groups)]
	r.gcds = r.gcds[:0]
	for g, members := range plan.Groups {
		r.groups[g] = append(r.groups[g][:0], members...)
		if len(members) == 0 {
			r.gcds = append(r.gcds, nil) // empty group: no Const2 budget to check
			continue
		}
		gcd := Rational{}
		for _, si := range members {
			gcd = RatGCD(gcd, streams[si].Period)
		}
		r.gcds = append(r.gcds, gcd.BigRat())
	}
	r.valid = true
}

// procSumWithinBudget reports whether Σ streams[si].Proc over members is at
// most budget, computed exactly. The sum is accumulated as a scaled integer
// sum/2^shift (every finite float64 is m·2^e with |m| < 2^53), then compared
// by cross-multiplication: sum/2^shift ≤ num/den ⇔ sum·den ≤ num·2^shift.
// All big.Int scratch lives on the Replanner, so steady-state calls allocate
// nothing once the scratch has grown. Non-finite processing times report
// false — the caller treats the drift as unverifiable and falls back.
func (r *Replanner) procSumWithinBudget(streams []Stream, members []int, budget *big.Rat) bool {
	r.sum.SetInt64(0)
	shift := uint(0)
	for _, si := range members {
		p := streams[si].Proc
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return false
		}
		fr, exp := math.Frexp(p) // p = fr·2^exp, |fr| ∈ [0.5, 1) or 0
		mant := int64(fr * (1 << 53))
		e := exp - 53 // p = mant·2^e exactly
		r.tmpInt.SetInt64(mant)
		if e >= 0 {
			r.tmpInt.Lsh(&r.tmpInt, uint(e)+shift)
		} else if d := uint(-e); d > shift {
			r.sum.Lsh(&r.sum, d-shift)
			shift = d
		} else if shift > d {
			r.tmpInt.Lsh(&r.tmpInt, shift-d)
		}
		r.sum.Add(&r.sum, &r.tmpInt)
	}
	r.lhs.Mul(&r.sum, budget.Denom())
	r.rhs.Lsh(budget.Num(), shift)
	return r.lhs.Cmp(&r.rhs) <= 0
}

// Incremental attempts the grouping-reusing replan described on Replanner.
// It returns ok=false — without touching the adopted state — whenever the
// fast path cannot prove feasibility, leaving the decision to fall back to
// the caller.
func (r *Replanner) Incremental(streams []Stream, servers []cluster.Server, healthy []bool) (Plan, bool) {
	if !r.valid || len(streams) != len(r.streams) {
		return Plan{}, false
	}
	if healthy != nil && len(healthy) != len(servers) {
		return Plan{}, false
	}
	// The grouping's validity argument rests on the periods (and stream
	// identity); any change there needs a full regroup.
	for i, s := range streams {
		p := r.streams[i]
		if s.Video != p.Video || s.Sub != p.Sub || s.Period != p.Period {
			return Plan{}, false
		}
	}
	// Const2 with drifted processing times, exactly: per group,
	// Σ proc ≤ gcd(periods). Since the gcd divides every member period this
	// also implies Const1 (Σ p_i/T_i ≤ Σ p_i/gcd ≤ 1).
	for g, members := range r.groups {
		if len(members) == 0 {
			continue
		}
		if !r.procSumWithinBudget(streams, members, r.gcds[g]) {
			return Plan{}, false
		}
	}
	// Healthy columns in physical index order — the same order a masked full
	// solve uses, so the Hungarian tie-breaking matches it.
	r.cols = r.cols[:0]
	for j := range servers {
		if healthy == nil || healthy[j] {
			r.cols = append(r.cols, j)
		}
	}
	if len(r.cols) == 0 {
		return Plan{}, false
	}
	// Row selection: normally every group keeps a server (the shape MapGroups
	// produces); when an outage leaves fewer servers than groups, only the
	// non-empty groups compete, and the plan compacts to them.
	r.rows = r.rows[:0]
	if len(r.groups) <= len(r.cols) {
		for g := range r.groups {
			r.rows = append(r.rows, g)
		}
	} else {
		for g, members := range r.groups {
			if len(members) > 0 {
				r.rows = append(r.rows, g)
			}
		}
		if len(r.rows) > len(r.cols) {
			return Plan{}, false
		}
	}

	// The cost matrix is padded square with zero-bit dummy rows, exactly as
	// MapGroups pads missing groups: dummy rows influence Hungarian
	// tie-breaking among equal-cost columns, so matching the full solve's
	// shape keeps the incremental assignment bit-identical to MapGroups on
	// the same grouping.
	nr, nc := len(r.rows), len(r.cols)
	if cap(r.flat) < nc*nc {
		r.flat = make([]float64, nc*nc)
	}
	r.flat = r.flat[:nc*nc]
	if cap(r.cost) < nc {
		r.cost = make([][]float64, nc)
	}
	r.cost = r.cost[:nc]
	for ri := 0; ri < nc; ri++ {
		row := r.flat[ri*nc : (ri+1)*nc]
		r.cost[ri] = row
		var bits float64
		if ri < nr {
			for _, si := range r.groups[r.rows[ri]] {
				bits += streams[si].Bits
			}
		}
		for ci, j := range r.cols {
			switch {
			case servers[j].Uplink > 0:
				row[ci] = bits / servers[j].Uplink
			case bits > 0:
				row[ci] = math.Inf(1)
			default:
				row[ci] = 0
			}
		}
	}
	assign, total := r.solver.Solve(r.cost)

	plan := Plan{
		Groups:       make([][]int, nr),
		GroupServer:  make([]int, nc),
		StreamServer: make([]int, len(streams)),
		CommLatency:  total,
	}
	for i := range plan.StreamServer {
		plan.StreamServer[i] = -1
	}
	for ri := 0; ri < nc; ri++ {
		srv := r.cols[assign[ri]]
		plan.GroupServer[ri] = srv
		if ri >= nr {
			continue
		}
		plan.Groups[ri] = append([]int(nil), r.groups[r.rows[ri]]...)
		for _, si := range r.groups[r.rows[ri]] {
			plan.StreamServer[si] = srv
		}
	}
	return plan, true
}
