package sched

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func timelinePlan(t *testing.T) ([]Stream, Plan) {
	t.Helper()
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(5), Proc: 0.05, Bits: 1e5},
		{Video: 1, Period: RatFromFPS(10), Proc: 0.03, Bits: 1e5},
		{Video: 2, Period: RatFromFPS(10), Proc: 0.04, Bits: 1e5},
		{Video: 3, Period: RatFromFPS(30), Proc: 0.02, Bits: 1e5},
	}
	srvs := []cluster.Server{{Uplink: 1e7}, {Uplink: 2e7}, {Uplink: 3e7}}
	plan, err := Schedule(streams, srvs)
	if err != nil {
		t.Fatal(err)
	}
	return streams, plan
}

func TestTimelinesCoverAllStreams(t *testing.T) {
	streams, plan := timelinePlan(t)
	tls := Timelines(t, plan, streams)
	covered := map[int]bool{}
	for _, tl := range tls {
		if tl.Cycle <= 0 {
			t.Fatalf("cycle %v", tl.Cycle)
		}
		for _, s := range tl.Slots {
			covered[s.Stream] = true
			if s.End <= s.Start {
				t.Fatalf("empty slot %+v", s)
			}
		}
	}
	for i := range streams {
		if !covered[i] {
			t.Fatalf("stream %d missing from timelines", i)
		}
	}
}

// Timelines is a tiny helper so tests read naturally.
func Timelines(t *testing.T, p Plan, streams []Stream) []Timeline {
	t.Helper()
	return p.Timelines(streams)
}

func TestTimelinesNoOverlap(t *testing.T) {
	streams, plan := timelinePlan(t)
	for _, tl := range plan.Timelines(streams) {
		if ov := tl.Overlap(); ov != nil {
			t.Fatalf("server %d slots overlap: %+v", tl.Server, *ov)
		}
	}
}

// Property: every feasible Algorithm 1 plan yields overlap-free cyclic
// timelines — Theorem 1 restated on the explicit interval structure.
func TestTimelineTheorem1Property(t *testing.T) {
	fpsChoices := []int64{5, 6, 10, 15, 25, 30}
	f := func(seed uint64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		m := 2 + next(6)
		streams := make([]Stream, m)
		for i := range streams {
			p := RatFromFPS(fpsChoices[next(len(fpsChoices))])
			streams[i] = Stream{Video: i, Period: p, Proc: p.Float() * (0.05 + 0.4*float64(next(100))/100)}
		}
		srvs := make([]cluster.Server, 4)
		for j := range srvs {
			srvs[j] = cluster.Server{Uplink: 1e7}
		}
		plan, err := Schedule(streams, srvs)
		if err != nil {
			return true
		}
		for _, tl := range plan.Timelines(streams) {
			if tl.Overlap() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapDetectsConflicts(t *testing.T) {
	tl := Timeline{Cycle: 1, Slots: []Slot{
		{Stream: 0, Start: 0, End: 0.5},
		{Stream: 1, Start: 0.4, End: 0.6},
	}}
	if tl.Overlap() == nil {
		t.Fatal("overlap undetected")
	}
}

func TestRenderTimeline(t *testing.T) {
	streams, plan := timelinePlan(t)
	tls := plan.Timelines(streams)
	out := tls[0].Render(streams, 40)
	if !strings.Contains(out, "#") || !strings.Contains(out, "|") {
		t.Fatalf("render missing marks:\n%s", out)
	}
	if !strings.Contains(out, "cycle") {
		t.Fatalf("render missing header:\n%s", out)
	}
	// Zero width falls back to the default.
	if w := tls[0].Render(streams, 0); len(w) == 0 {
		t.Fatal("empty render")
	}
}

func TestRatLCM(t *testing.T) {
	got := ratLCM(RatFromFPS(10), RatFromFPS(15))
	// lcm(1/10, 1/15) = 1/gcd(10,15) = 1/5.
	if got.Cmp(Rat(1, 5)) != 0 {
		t.Fatalf("lcm = %v", got)
	}
}
