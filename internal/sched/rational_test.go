package sched

import (
	"testing"
	"testing/quick"
)

func TestRatFromFPS(t *testing.T) {
	r := RatFromFPS(30)
	if r.Num != 1 || r.Den != 30 {
		t.Fatalf("RatFromFPS(30) = %v", r)
	}
	if r.Float() != 1.0/30 {
		t.Fatalf("Float = %v", r.Float())
	}
}

func TestRatReduce(t *testing.T) {
	r := Rat(4, 6)
	if r.Num != 2 || r.Den != 3 {
		t.Fatalf("Rat(4,6) = %v", r)
	}
}

func TestRatInvalid(t *testing.T) {
	for _, f := range []func(){
		func() { RatFromFPS(0) },
		func() { Rat(1, 0) },
		func() { Rat(-1, 2) },
		func() { Rational{1, 2}.Mul(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRatGCD(t *testing.T) {
	cases := []struct {
		a, b, want Rational
	}{
		{RatFromFPS(5), RatFromFPS(10), RatFromFPS(10)},   // gcd(1/5, 1/10) = 1/10
		{RatFromFPS(10), RatFromFPS(15), RatFromFPS(30)},  // 1/lcm(10,15)
		{Rat(3, 10), Rat(1, 5), Rat(1, 10)},               // gcd(0.3, 0.2) = 0.1
		{Rat(1, 2), Rat(1, 2), Rat(1, 2)},
		{Rational{0, 1}, Rat(1, 3), Rat(1, 3)},            // gcd(0, x) = x
	}
	for _, c := range cases {
		got := RatGCD(c.a, c.b)
		if got.Cmp(c.want) != 0 {
			t.Errorf("RatGCD(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsMultipleOf(t *testing.T) {
	if !Rat(3, 10).IsMultipleOf(Rat(1, 10)) {
		t.Error("0.3 is a multiple of 0.1")
	}
	if Rat(1, 10).IsMultipleOf(Rat(3, 10)) {
		t.Error("0.1 is not a multiple of 0.3")
	}
	if !Rat(1, 5).IsMultipleOf(Rat(1, 5)) {
		t.Error("x is a multiple of itself")
	}
	if !RatFromFPS(5).IsMultipleOf(RatFromFPS(30)) {
		t.Error("1/5 = 6·(1/30)")
	}
	if RatFromFPS(30).IsMultipleOf(RatFromFPS(25)) {
		t.Error("1/30 is not a multiple of 1/25")
	}
}

func TestCmp(t *testing.T) {
	if Rat(1, 3).Cmp(Rat(1, 2)) != -1 || Rat(1, 2).Cmp(Rat(1, 3)) != 1 || Rat(2, 4).Cmp(Rat(1, 2)) != 0 {
		t.Fatal("Cmp wrong")
	}
}

// Properties: gcd divides both operands and is no larger than either.
func TestRatGCDProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		fa, fb := int64(a%60)+1, int64(b%60)+1
		ra, rb := RatFromFPS(fa), RatFromFPS(fb)
		g := RatGCD(ra, rb)
		return ra.IsMultipleOf(g) && rb.IsMultipleOf(g) &&
			g.Cmp(ra) <= 0 && g.Cmp(rb) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMul(t *testing.T) {
	if got := RatFromFPS(30).Mul(3); got.Cmp(Rat(1, 10)) != 0 {
		t.Fatalf("(1/30)·3 = %v", got)
	}
}

func TestString(t *testing.T) {
	if Rat(1, 5).String() != "1/5" {
		t.Fatalf("String = %q", Rat(1, 5).String())
	}
}
