package sched

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	goruntime "runtime"
	"slices"
	"sync"

	"repro/internal/cluster"
	"repro/internal/hungarian"
)

// Stream is one periodic stream as Algorithm 1 sees it: an exact period,
// the per-frame processing time on a (homogeneous) server, and the encoded
// frame size used for the communication-latency objective.
type Stream struct {
	Video  int      // index of the originating video source
	Sub    int      // sub-stream index after high-rate splitting (0 = first)
	Period Rational // inter-arrival period T = 1/s (seconds)
	Proc   float64  // per-frame processing time p (seconds)
	Bits   float64  // encoded frame size (bits)
}

// FPS returns the stream's frame rate 1/T as a float.
func (s Stream) FPS() float64 { return 1 / s.Period.Float() }

// SplitHighRate implements the Section 3 preprocessing: every stream whose
// worst-case per-frame processing time exceeds its period (s·p > 1) is
// split by periodic sampling into c = ⌈s·p⌉ sub-streams of period c·T, so
// that each sub-stream alone never self-queues on a server.
func SplitHighRate(streams []Stream) []Stream {
	var out []Stream
	for _, s := range streams {
		c := splitFactor(s)
		if c <= 1 {
			out = append(out, s)
			continue
		}
		for k := int64(0); k < c; k++ {
			sub := s
			sub.Sub = int(k)
			sub.Period = s.Period.Mul(c)
			out = append(out, sub)
		}
	}
	return out
}

// splitFactor returns c = ⌈s·p⌉ = ⌈Proc/Period⌉ computed in exact rational
// arithmetic (1 when the stream needs no split). The old float path,
// ⌈Proc/Period.Float() − 1e-12⌉, under-split when s·p sat marginally above
// an integer: sp = 3+1e-13 yielded c = 3 sub-streams of period 3·T with
// p/(3T) > 1 — each sub-stream alone still self-queues, and Const2 is
// unsatisfiable for it on any server. The exact ceiling guarantees
// p ≤ c·T, and therefore s'·p ≤ 1, exactly. Non-finite or non-positive
// processing times never split.
func splitFactor(s Stream) int64 {
	sp := ratFromFloat(s.Proc)
	if sp == nil || sp.Sign() <= 0 {
		return 1
	}
	sp.Mul(sp, big.NewRat(s.Period.Den, s.Period.Num)) // Proc / Period, exact
	if sp.Cmp(ratOne) <= 0 {
		return 1
	}
	c := ratCeil(sp)
	if !c.IsInt64() {
		// Degenerate inputs (absurdly large Proc): saturate rather than
		// silently truncate big.Int bits.
		return math.MaxInt64
	}
	return c.Int64()
}

var ratOne = big.NewRat(1, 1)

// ErrInfeasible is returned when Algorithm 1 cannot group the streams into
// the available servers under Const2.
var ErrInfeasible = errors.New("sched: no feasible zero-jitter grouping")

// Plan is the output of Algorithm 1.
type Plan struct {
	Groups       [][]int // stream indices per group (len = number of servers)
	GroupServer  []int   // group index -> server index
	StreamServer []int   // stream index -> server index (the paper's q vector)
	CommLatency  float64 // total transmission latency Σ bits/B over streams
}

// GroupStreams runs lines 1–19 of Algorithm 1: it partitions the streams
// into at most n groups such that within each group (a) every period is an
// integer multiple of the group's minimum period and (b) the processing
// times sum to at most that minimum period — the sufficient conditions of
// Theorem 3 for the zero-jitter constraint Const2.
func GroupStreams(streams []Stream, n int) ([][]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: %d servers", n)
	}
	// Line 1: sort by period ascending (stable: keep input order on ties).
	order := make([]int, len(streams))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return streams[a].Period.Cmp(streams[b].Period)
	})
	// Line 2: priority I_i = #{j < i : T_i mod T_j = 0} over the
	// period-sorted sequence.
	prio := make([]int, len(order))
	for i := range order {
		ti := streams[order[i]].Period
		for j := 0; j < i; j++ {
			if ti.IsMultipleOf(streams[order[j]].Period) {
				prio[i]++
			}
		}
	}
	// Line 3: re-sort ascending by priority (stable, so the period order
	// breaks ties).
	idx := make([]int, len(order))
	for i := range idx {
		idx[i] = i
	}
	slices.SortStableFunc(idx, func(a, b int) int { return prio[a] - prio[b] })

	// Lines 4–19: greedy grouping. Processing-time sums are accumulated as
	// exact rationals (floats are dyadic rationals, so the sums are exact)
	// and compared against the group's minimum period without tolerance:
	// the old `Σp ≤ T.Float()+1e-12` admission accepted groups that
	// marginally violate Theorem 3's Σp ≤ T condition, voiding the
	// zero-jitter guarantee by up to one epsilon of queueing per hyperperiod.
	groups := make([][]int, n)
	gmin := make([]Rational, n)    // min period per group
	gproc := make([]*big.Rat, n)   // Σ proc per group, exact
	for _, oi := range idx {
		si := order[oi]
		s := streams[si]
		placed := false
		procR := ratFromFloat(s.Proc)
		if procR == nil {
			return nil, fmt.Errorf("%w: stream video=%d sub=%d has non-finite p=%v",
				ErrInfeasible, s.Video, s.Sub, s.Proc)
		}
		// A stream whose processing time exceeds its own period violates
		// Const2 even alone; the caller should have split it (Section 3).
		if procR.Cmp(s.Period.BigRat()) > 0 {
			return nil, fmt.Errorf("%w: stream video=%d sub=%d has p=%.4fs > T=%s (split it first)",
				ErrInfeasible, s.Video, s.Sub, s.Proc, s.Period)
		}
		for j := 0; j < n; j++ {
			if len(groups[j]) == 0 {
				groups[j] = append(groups[j], si)
				gmin[j] = s.Period
				gproc[j] = new(big.Rat).Set(procR)
				placed = true
				break
			}
			if s.Period.IsMultipleOf(gmin[j]) &&
				new(big.Rat).Add(gproc[j], procR).Cmp(gmin[j].BigRat()) <= 0 {
				groups[j] = append(groups[j], si)
				gproc[j].Add(gproc[j], procR)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("%w: stream video=%d sub=%d (T=%s, p=%.4fs) fits no group",
				ErrInfeasible, s.Video, s.Sub, s.Period, s.Proc)
		}
	}
	return groups, nil
}

// mapScratch bundles the reusable state of one MapGroups call: the cost
// matrix (row headers into one flat backing slice) and a buffer-reusing
// Hungarian solver. Pooled so concurrent schedulers each grab their own.
type mapScratch struct {
	solver hungarian.Solver
	cost   [][]float64
	flat   []float64
}

var mapPool = sync.Pool{New: func() any { return new(mapScratch) }}

// matrix returns a rows×cols cost matrix backed by the scratch buffers,
// growing them as needed. Contents are stale; every cell is overwritten by
// the cost build.
func (sc *mapScratch) matrix(rows, cols int) [][]float64 {
	if cap(sc.flat) < rows*cols {
		sc.flat = make([]float64, rows*cols)
	}
	sc.flat = sc.flat[:rows*cols]
	if cap(sc.cost) < rows {
		sc.cost = make([][]float64, rows)
	}
	sc.cost = sc.cost[:rows]
	for g := range sc.cost {
		sc.cost[g] = sc.flat[g*cols : (g+1)*cols]
	}
	return sc.cost
}

// parallelCostMin is the matrix size (rows×cols) below which the cost build
// stays single-threaded: goroutine fan-out costs more than it saves on the
// few-group instances of the paper's testbed.
const parallelCostMin = 4096

// costRows fills cost rows [lo, hi): row g is the transmission latency of
// group g's total bits on each server. Rows are disjoint, so parallel
// workers produce bit-identical matrices in any interleaving.
func costRows(cost [][]float64, lo, hi int, groups [][]int, streams []Stream, servers []cluster.Server) {
	for g := lo; g < hi; g++ {
		var bits float64
		if g < len(groups) {
			for _, si := range groups[g] {
				bits += streams[si].Bits
			}
		}
		for j, srv := range servers {
			switch {
			case srv.Uplink > 0:
				cost[g][j] = bits / srv.Uplink
			case bits > 0:
				cost[g][j] = math.Inf(1)
			default:
				cost[g][j] = 0
			}
		}
	}
}

// buildCosts fills the whole cost matrix, fanning out across GOMAXPROCS
// workers on fleet-sized instances. Each worker owns a contiguous row range
// so the result is deterministic.
func buildCosts(cost [][]float64, groups [][]int, streams []Stream, servers []cluster.Server) {
	rows := len(cost)
	workers := goruntime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || rows*len(servers) < parallelCostMin {
		costRows(cost, 0, rows, groups, streams, servers)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			costRows(cost, lo, hi, groups, streams, servers)
		}(lo, hi)
	}
	wg.Wait()
}

// hetero reports whether any server runs at an effective speed other than
// 1 — the case where the shared-gcd group budget must be re-checked per
// server class.
func hetero(servers []cluster.Server) bool {
	for _, s := range servers {
		if s.Speed() != 1 {
			return true
		}
	}
	return false
}

// maskSpeedInfeasible overwrites cost cells whose (group, server) pair
// violates the speed-scaled Const2 — Σ_{i∈G} pᵢ ≤ gcd(T_G) · speed_j,
// checked exactly (procs are dyadic rationals, speeds are dyadic floats) —
// with +Inf so the Hungarian matching can never land a group on a server
// class too slow to run it without self-queueing. Servers at speed 1 are
// skipped: the grouping phase already enforced Σp ≤ gcd there.
func maskSpeedInfeasible(cost [][]float64, groups [][]int, streams []Stream, servers []cluster.Server) {
	sums := make([]*big.Rat, len(groups))
	gcds := make([]Rational, len(groups))
	for g, members := range groups {
		if len(members) == 0 {
			continue
		}
		sum := new(big.Rat)
		var gcd Rational
		finite := true
		for _, si := range members {
			p := ratFromFloat(streams[si].Proc)
			if p == nil {
				finite = false
				break
			}
			sum.Add(sum, p)
			gcd = RatGCD(gcd, streams[si].Period)
		}
		if finite {
			sums[g], gcds[g] = sum, gcd
		}
	}
	budget := new(big.Rat)
	for j, srv := range servers {
		spd := srv.Speed()
		if spd == 1 {
			continue
		}
		spdR := ratFromFloat(spd)
		for g := range groups {
			if sums[g] == nil {
				continue
			}
			budget.Mul(gcds[g].BigRat(), spdR)
			if sums[g].Cmp(budget) > 0 {
				cost[g][j] = math.Inf(1)
			}
		}
	}
}

// MapGroups runs line 20 of Algorithm 1: assign groups to servers with the
// Hungarian algorithm, minimizing the total transmission latency
// Σ_{i∈G_j} bits_i/B_{q_j}. On heterogeneous clusters, (group, server)
// pairs violating the speed-scaled Const2 are masked out of the matching;
// when no complete matching avoids the masked cells the result is a
// wrapped ErrInfeasible.
func MapGroups(groups [][]int, streams []Stream, servers []cluster.Server) (Plan, error) {
	n := len(servers)
	sc := mapPool.Get().(*mapScratch)
	cost := sc.matrix(n, n)
	buildCosts(cost, groups, streams, servers)
	if hetero(servers) {
		maskSpeedInfeasible(cost, groups, streams, servers)
	}
	assign, total := sc.solver.Solve(cost)
	var infeasible int
	for g, members := range groups {
		if len(members) > 0 && math.IsInf(cost[g][assign[g]], 1) {
			infeasible = len(members)
			break
		}
	}
	plan := Plan{
		Groups:       groups,
		GroupServer:  append([]int(nil), assign...),
		StreamServer: make([]int, len(streams)),
		CommLatency:  total,
	}
	mapPool.Put(sc)
	if infeasible > 0 {
		return Plan{}, fmt.Errorf("%w: no server class fits every group under the speed-scaled gcd budget", ErrInfeasible)
	}
	assign = plan.GroupServer
	for i := range plan.StreamServer {
		plan.StreamServer[i] = -1
	}
	for g, members := range groups {
		for _, si := range members {
			plan.StreamServer[si] = assign[g]
		}
	}
	return plan, nil
}

// Schedule runs the complete Algorithm 1 on pre-split streams.
func Schedule(streams []Stream, servers []cluster.Server) (Plan, error) {
	groups, err := GroupStreams(streams, len(servers))
	if err != nil {
		return Plan{}, err
	}
	return MapGroups(groups, streams, servers)
}

// ScheduleMasked runs Algorithm 1 on the healthy subset of the servers —
// the shrunken-capacity case when faults take servers down — and returns
// a plan whose GroupServer/StreamServer indices refer to the FULL servers
// slice, so callers keep one physical index space across fault states.
// A nil mask means all servers are healthy. With zero healthy servers, or
// when no zero-jitter grouping fits the survivors, it returns a wrapped
// ErrInfeasible.
func ScheduleMasked(streams []Stream, servers []cluster.Server, healthy []bool) (Plan, error) {
	if healthy == nil {
		return Schedule(streams, servers)
	}
	if len(healthy) != len(servers) {
		return Plan{}, fmt.Errorf("sched: mask length %d for %d servers", len(healthy), len(servers))
	}
	idx := make([]int, 0, len(servers))
	for j, ok := range healthy {
		if ok {
			idx = append(idx, j)
		}
	}
	if len(idx) == 0 {
		return Plan{}, fmt.Errorf("%w: no healthy servers", ErrInfeasible)
	}
	sub := make([]cluster.Server, len(idx))
	for k, j := range idx {
		sub[k] = servers[j]
	}
	groups, err := GroupStreams(streams, len(sub))
	if err != nil {
		return Plan{}, err
	}
	plan, err := MapGroups(groups, streams, sub)
	if err != nil {
		return Plan{}, err
	}
	// Remap the compact survivor indices back to physical ones.
	for g := range plan.GroupServer {
		plan.GroupServer[g] = idx[plan.GroupServer[g]]
	}
	for i, j := range plan.StreamServer {
		if j >= 0 {
			plan.StreamServer[i] = idx[j]
		}
	}
	return plan, nil
}

// Utilizations returns each server's compute utilization Σ pᵢ·sᵢ under the
// plan — the left-hand side of Const1, useful for capacity reports.
func (p Plan) Utilizations(streams []Stream, n int) []float64 {
	load := make([]float64, n)
	for i, s := range streams {
		if j := p.StreamServer[i]; j >= 0 && j < n {
			load[j] += s.Proc / s.Period.Float()
		}
	}
	return load
}

// CheckConst1 verifies Eq. (6) exactly: on every server, Σ pᵢ·sᵢ ≤ 1.
// Utilizations are accumulated as exact rationals — pᵢ is a dyadic
// rational, sᵢ = Den/Num of the exact period — so a load of exactly 1 is
// accepted and any excess, however marginal, is rejected. (The old float
// check admitted loads up to 1+1e-9, i.e. genuinely overloaded servers.)
// Streams with non-finite processing times or out-of-range assignments
// fail the check.
func CheckConst1(streams []Stream, streamServer []int, n int) bool {
	return checkConst1(streams, streamServer, n, nil)
}

// CheckConst1Servers is CheckConst1 for heterogeneous clusters: on every
// server, Σ pᵢ·sᵢ ≤ speed_j, still checked exactly (speeds are dyadic
// float64 values).
func CheckConst1Servers(streams []Stream, streamServer []int, servers []cluster.Server) bool {
	return checkConst1(streams, streamServer, len(servers), servers)
}

func checkConst1(streams []Stream, streamServer []int, n int, servers []cluster.Server) bool {
	load := make([]*big.Rat, n)
	for i, s := range streams {
		j := streamServer[i]
		if j < 0 || j >= n {
			return false
		}
		u := ratFromFloat(s.Proc)
		if u == nil {
			return false
		}
		u.Mul(u, big.NewRat(s.Period.Den, s.Period.Num)) // p/T, exact
		if load[j] == nil {
			load[j] = u
		} else {
			load[j].Add(load[j], u)
		}
	}
	for j, l := range load {
		if l == nil {
			continue
		}
		budget := ratOne
		if servers != nil {
			if budget = ratFromFloat(servers[j].Speed()); budget == nil {
				return false
			}
		}
		if l.Cmp(budget) > 0 {
			return false
		}
	}
	return true
}

// CheckConst2 verifies Eq. (7) exactly: on every server, Σ pᵢ ≤ gcd of the
// periods of the streams scheduled there. The processing-time sum over a
// server is expressed over a common denominator via exact rational
// accumulation and compared against the exact gcd with no tolerance. The
// old check compared against gcds[j].Float()+1e-12, so a plan whose Σ pᵢ
// exceeds the gcd by up to 1e-12 passed while actually self-queueing —
// silently voiding the paper's zero-jitter latency claim (Theorems 1–3).
func CheckConst2(streams []Stream, streamServer []int, n int) bool {
	return checkConst2(streams, streamServer, n, nil)
}

// CheckConst2Servers is CheckConst2 for heterogeneous clusters: on every
// server, Σ pᵢ ≤ gcd(T) · speed_j — the budget a server class at speed s
// can actually clear inside one gcd window. Exact: the speed factor is a
// dyadic float64, so the scaled budget is an exact rational.
func CheckConst2Servers(streams []Stream, streamServer []int, servers []cluster.Server) bool {
	return checkConst2(streams, streamServer, len(servers), servers)
}

func checkConst2(streams []Stream, streamServer []int, n int, servers []cluster.Server) bool {
	procSum := make([]*big.Rat, n)
	gcds := make([]Rational, n)
	for i, s := range streams {
		j := streamServer[i]
		if j < 0 || j >= n {
			return false
		}
		p := ratFromFloat(s.Proc)
		if p == nil {
			return false
		}
		if procSum[j] == nil {
			procSum[j] = p
		} else {
			procSum[j].Add(procSum[j], p)
		}
		gcds[j] = RatGCD(gcds[j], s.Period)
	}
	for j := 0; j < n; j++ {
		if gcds[j].Num == 0 {
			continue // empty server
		}
		budget := gcds[j].BigRat()
		if servers != nil {
			spd := ratFromFloat(servers[j].Speed())
			if spd == nil {
				return false
			}
			budget.Mul(budget, spd)
		}
		if procSum[j].Cmp(budget) > 0 {
			return false
		}
	}
	return true
}

// ToClusterStreams converts the plan's streams into simulator specs with
// the zero-jitter offsets of Theorem 1 applied per server, ready for
// empirical verification with the cluster package.
func (p Plan) ToClusterStreams(streams []Stream, servers []cluster.Server) ([]cluster.StreamSpec, cluster.Assignment) {
	specs := make([]cluster.StreamSpec, len(streams))
	assign := make(cluster.Assignment, len(streams))
	for i, s := range streams {
		specs[i] = cluster.StreamSpec{
			Name:   fmt.Sprintf("v%d.%d", s.Video, s.Sub),
			Period: s.Period.Float(),
			Proc:   s.Proc,
			Bits:   s.Bits,
		}
		assign[i] = p.StreamServer[i]
	}
	// Apply Theorem 1 offsets group by group.
	for g, members := range p.Groups {
		if len(members) == 0 {
			continue
		}
		srv := servers[p.GroupServer[g]]
		sub := make([]cluster.StreamSpec, len(members))
		for k, si := range members {
			sub[k] = specs[si]
		}
		sub = cluster.ZeroJitterOffsetsOn(sub, srv)
		for k, si := range members {
			specs[si] = sub[k]
		}
	}
	return specs, assign
}
