package sched

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func servers(uplinks ...float64) []cluster.Server {
	out := make([]cluster.Server, len(uplinks))
	for i, u := range uplinks {
		out[i] = cluster.Server{Name: "e", Uplink: u}
	}
	return out
}

func TestSplitHighRate(t *testing.T) {
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(10), Proc: 0.05},  // s·p = 0.5, keep
		{Video: 1, Period: RatFromFPS(30), Proc: 0.096}, // s·p = 2.88 → 3 subs
	}
	out := SplitHighRate(streams)
	if len(out) != 4 {
		t.Fatalf("split produced %d streams, want 4", len(out))
	}
	if out[0] != streams[0] {
		t.Fatal("low-rate stream modified")
	}
	for k := 1; k <= 3; k++ {
		s := out[k]
		if s.Video != 1 || s.Sub != k-1 {
			t.Fatalf("sub-stream %d mislabeled: %+v", k, s)
		}
		if s.Period.Cmp(Rat(1, 10)) != 0 {
			t.Fatalf("sub-stream period %v, want 1/10", s.Period)
		}
		// Each sub-stream alone no longer self-queues.
		if s.Proc > s.Period.Float() {
			t.Fatalf("sub-stream still overloaded: p=%v T=%v", s.Proc, s.Period.Float())
		}
	}
}

func TestSplitExactBoundaryNotSplit(t *testing.T) {
	// s·p = exactly 1: one server can just keep up; no split. The period
	// and processing time are both dyadic (1/8 s) so the boundary is exact
	// in float64 too. (0.1 against fps 10 is NOT on the boundary: float64
	// 0.1 is marginally above the rational 1/10, so that stream genuinely
	// self-queues and must split — see TestSplitExactBoundary below.)
	streams := []Stream{{Period: RatFromFPS(8), Proc: 0.125}}
	if out := SplitHighRate(streams); len(out) != 1 {
		t.Fatalf("boundary stream split into %d", len(out))
	}
}

func TestGroupStreamsRespectsTheorem3(t *testing.T) {
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(10), Proc: 0.03},
		{Video: 1, Period: RatFromFPS(5), Proc: 0.04},  // multiple of 1/10
		{Video: 2, Period: RatFromFPS(10), Proc: 0.02},
		{Video: 3, Period: RatFromFPS(30), Proc: 0.02},
		{Video: 4, Period: RatFromFPS(15), Proc: 0.01}, // multiple of 1/30
	}
	groups, err := GroupStreams(streams, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Verify conditions (a) and (b) of Theorem 3 per group.
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		min := streams[g[0]].Period
		var proc float64
		for _, si := range g {
			if streams[si].Period.Cmp(min) < 0 {
				min = streams[si].Period
			}
			proc += streams[si].Proc
		}
		for _, si := range g {
			if !streams[si].Period.IsMultipleOf(min) {
				t.Fatalf("group %v: period %v not multiple of min %v", g, streams[si].Period, min)
			}
		}
		if proc > min.Float()+1e-12 {
			t.Fatalf("group %v: Σp = %v > Tmin = %v", g, proc, min.Float())
		}
	}
}

func TestGroupStreamsInfeasible(t *testing.T) {
	// Two streams each almost filling a period, but only one server.
	streams := []Stream{
		{Period: RatFromFPS(10), Proc: 0.09},
		{Period: RatFromFPS(10), Proc: 0.09},
	}
	_, err := GroupStreams(streams, 1)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := GroupStreams(streams, 0); err == nil {
		t.Fatal("0 servers should fail")
	}
}

func TestScheduleSatisfiesBothConstraints(t *testing.T) {
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(5), Proc: 0.05, Bits: 2e5},
		{Video: 1, Period: RatFromFPS(10), Proc: 0.04, Bits: 3e5},
		{Video: 2, Period: RatFromFPS(15), Proc: 0.03, Bits: 1e5},
		{Video: 3, Period: RatFromFPS(30), Proc: 0.02, Bits: 4e5},
	}
	srvs := servers(1e7, 2e7, 3e7)
	plan, err := Schedule(streams, srvs)
	if err != nil {
		t.Fatal(err)
	}
	if !CheckConst1(streams, plan.StreamServer, len(srvs)) {
		t.Fatal("Const1 violated")
	}
	if !CheckConst2(streams, plan.StreamServer, len(srvs)) {
		t.Fatal("Const2 violated")
	}
	for i, j := range plan.StreamServer {
		if j < 0 || j >= len(srvs) {
			t.Fatalf("stream %d unassigned: %d", i, j)
		}
	}
}

func TestHungarianMappingMinimizesCommLatency(t *testing.T) {
	// One heavy group and one light group; the heavy one must get the fat
	// uplink.
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(10), Proc: 0.09, Bits: 1e6}, // heavy
		{Video: 1, Period: RatFromFPS(10), Proc: 0.09, Bits: 1e4}, // light
	}
	srvs := servers(1e6, 1e8) // server 1 is 100× faster
	plan, err := Schedule(streams, srvs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.StreamServer[0] != 1 {
		t.Fatalf("heavy stream on slow server: %v", plan.StreamServer)
	}
	// Optimal total comm latency: 1e6/1e8 + 1e4/1e6 = 0.02.
	if math.Abs(plan.CommLatency-0.02) > 1e-12 {
		t.Fatalf("comm latency %v, want 0.02", plan.CommLatency)
	}
}

func TestScheduleZeroJitterInSimulation(t *testing.T) {
	// End-to-end: Algorithm 1's plan, with Theorem 1 offsets, runs with
	// exactly zero jitter in the discrete-event simulator.
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(5), Proc: 0.06, Bits: 2e5},
		{Video: 1, Period: RatFromFPS(10), Proc: 0.03, Bits: 3e5},
		{Video: 2, Period: RatFromFPS(10), Proc: 0.04, Bits: 1e5},
		{Video: 3, Period: RatFromFPS(15), Proc: 0.01, Bits: 2e5},
		{Video: 4, Period: RatFromFPS(30), Proc: 0.02, Bits: 1e5},
	}
	srvs := servers(1e7, 2e7, 3e7)
	plan, err := Schedule(streams, srvs)
	if err != nil {
		t.Fatal(err)
	}
	specs, assign := plan.ToClusterStreams(streams, srvs)
	results := cluster.SimulateCluster(specs, srvs, assign, 30)
	if j := cluster.MaxJitter(results); j > cluster.JitterEps {
		t.Fatalf("simulated jitter %v under Algorithm 1 plan", j)
	}
	for _, r := range results {
		if r.MaxWait > cluster.JitterEps {
			t.Fatalf("queueing %v under Algorithm 1 plan", r.MaxWait)
		}
	}
}

// Property: whenever Algorithm 1 returns a plan for random fps/proc
// streams, the plan satisfies Const2 (and hence Const1 by Theorem 2), and
// the DES confirms zero jitter.
func TestSchedulePropertyZeroJitter(t *testing.T) {
	fpsChoices := []int64{5, 6, 10, 15, 25, 30}
	f := func(seed uint64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		m := 2 + next(6)
		streams := make([]Stream, m)
		for i := range streams {
			fps := fpsChoices[next(len(fpsChoices))]
			streams[i] = Stream{
				Video:  i,
				Period: RatFromFPS(fps),
				Proc:   0.004 + float64(next(20))*0.002,
				Bits:   float64(1+next(10)) * 1e4,
			}
		}
		srvs := servers(1e7, 1.5e7, 2e7, 2.5e7, 3e7)
		plan, err := Schedule(SplitHighRate(streams), srvs)
		if err != nil {
			return true // infeasible is an acceptable outcome
		}
		split := SplitHighRate(streams)
		if !CheckConst1(split, plan.StreamServer, len(srvs)) ||
			!CheckConst2(split, plan.StreamServer, len(srvs)) {
			return false
		}
		specs, assign := plan.ToClusterStreams(split, srvs)
		results := cluster.SimulateCluster(specs, srvs, assign, 10)
		return cluster.MaxJitter(results) <= cluster.JitterEps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConstsRejectUnassigned(t *testing.T) {
	streams := []Stream{{Period: RatFromFPS(10), Proc: 0.01}}
	if CheckConst1(streams, []int{-1}, 1) || CheckConst2(streams, []int{-1}, 1) {
		t.Fatal("unassigned stream must fail constraint checks")
	}
}

func TestCheckConst1Violation(t *testing.T) {
	streams := []Stream{
		{Period: RatFromFPS(10), Proc: 0.08},
		{Period: RatFromFPS(10), Proc: 0.08},
	}
	// Both on server 0: Σ p·s = 1.6 > 1.
	if CheckConst1(streams, []int{0, 0}, 1) {
		t.Fatal("Const1 violation undetected")
	}
}

func TestCheckConst2Violation(t *testing.T) {
	streams := []Stream{
		{Period: Rat(3, 10), Proc: 0.12},
		{Period: Rat(1, 5), Proc: 0.05},
	}
	// gcd(0.3, 0.2) = 0.1 < 0.17 = Σp.
	if CheckConst2(streams, []int{0, 0}, 1) {
		t.Fatal("Const2 violation undetected")
	}
}

func BenchmarkSchedule10Streams(b *testing.B) {
	fps := []int64{5, 6, 10, 15, 25, 30}
	streams := make([]Stream, 10)
	for i := range streams {
		streams[i] = Stream{
			Video:  i,
			Period: RatFromFPS(fps[i%len(fps)]),
			Proc:   0.005 + float64(i)*0.002,
			Bits:   1e5,
		}
	}
	srvs := servers(1e7, 2e7, 3e7, 4e7, 5e7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(streams, srvs); err != nil {
			b.Fatal(err)
		}
	}
}
