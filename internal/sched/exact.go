package sched

import (
	"math/big"

	"repro/internal/cluster"
)

// Exact zero-jitter grouping by backtracking. The paper's related work
// notes non-preemptive periodic scheduling is strongly NP-hard [12] and
// usually solved exactly with ILP/CP/SMT encodings; this branch-and-bound
// search plays that role here. It decides Const2 feasibility exactly
// (Σ pᵢ ≤ gcd of periods per group), which is strictly weaker than the
// heuristic's Theorem 3 conditions — so it accepts every instance
// Algorithm 1 accepts, and some it rejects. Exponential; use for
// validation on small instances.

// ExactGroup searches for a partition of the streams into at most n groups
// satisfying Const2. It returns the groups and true, or nil and false when
// no such partition exists.
func ExactGroup(streams []Stream, n int) ([][]int, bool) {
	if n <= 0 {
		return nil, false
	}
	if len(streams) == 0 {
		return make([][]int, n), true
	}
	// Order by period ascending: tight streams first fail fast.
	order := make([]int, len(streams))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && streams[order[j]].Period.Cmp(streams[order[j-1]].Period) < 0; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	// Processing-time sums are exact rationals and the Const2 comparison is
	// tolerance-free, matching CheckConst2: the search decides the same
	// predicate the checker verifies.
	procR := make([]*big.Rat, len(streams))
	for i, s := range streams {
		if procR[i] = ratFromFloat(s.Proc); procR[i] == nil {
			return nil, false
		}
	}
	groups := make([][]int, n)
	gcds := make([]Rational, n)
	procs := make([]*big.Rat, n)
	for j := range procs {
		procs[j] = new(big.Rat)
	}
	used := 0 // number of non-empty groups, for symmetry breaking

	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			return true
		}
		si := order[k]
		s := streams[si]
		// Try existing groups plus at most one fresh group (symmetry
		// breaking: all empty groups are interchangeable).
		limit := used
		if used < n {
			limit = used + 1
		}
		for j := 0; j < limit; j++ {
			newGCD := RatGCD(gcds[j], s.Period)
			newProc := new(big.Rat).Add(procs[j], procR[si])
			if newProc.Cmp(newGCD.BigRat()) > 0 {
				continue
			}
			oldGCD, oldProc := gcds[j], procs[j]
			wasEmpty := len(groups[j]) == 0
			groups[j] = append(groups[j], si)
			gcds[j], procs[j] = newGCD, newProc
			if wasEmpty {
				used++
			}
			if rec(k + 1) {
				return true
			}
			groups[j] = groups[j][:len(groups[j])-1]
			gcds[j], procs[j] = oldGCD, oldProc
			if wasEmpty {
				used--
			}
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	out := make([][]int, n)
	for j := range groups {
		out[j] = append([]int(nil), groups[j]...)
	}
	return out, true
}

// ExactSchedule runs the exact grouping followed by the same Hungarian
// group→server mapping as Algorithm 1. The boolean reports feasibility.
func ExactSchedule(streams []Stream, servers []cluster.Server) (Plan, bool) {
	groups, ok := ExactGroup(streams, len(servers))
	if !ok {
		return Plan{}, false
	}
	plan, err := MapGroups(groups, streams, servers)
	if err != nil {
		return Plan{}, false
	}
	return plan, true
}
