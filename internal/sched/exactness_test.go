package sched

import (
	"errors"
	"math"
	"testing"
)

// oldFloatConst2 reproduces the pre-audit float-tolerance check so the
// regression tests below can demonstrate exactly which marginal plans it
// wrongly accepted.
func oldFloatConst2(streams []Stream, streamServer []int, n int) bool {
	procSum := make([]float64, n)
	gcds := make([]Rational, n)
	for i, s := range streams {
		j := streamServer[i]
		if j < 0 {
			return false
		}
		procSum[j] += s.Proc
		gcds[j] = RatGCD(gcds[j], s.Period)
	}
	for j := 0; j < n; j++ {
		if gcds[j].Num == 0 {
			continue
		}
		if procSum[j] > gcds[j].Float()+1e-12 {
			return false
		}
	}
	return true
}

// TestSplitExactBoundary pins the under-split bug: s·p marginally above an
// integer must round the sub-stream count UP, or the sub-streams still
// self-queue.
func TestSplitExactBoundary(t *testing.T) {
	// Proc = 3 + one ulp seconds on a 1-second period: s·p = 3+ε > 3. The
	// old ⌈sp − 1e-12⌉ produced 3 sub-streams of period 3 s, each still
	// carrying p > T. Exact ceiling must produce 4.
	s := Stream{Period: Rat(1, 1), Proc: math.Nextafter(3, 4)}
	out := SplitHighRate([]Stream{s})
	if len(out) != 4 {
		t.Fatalf("sp=3+ulp split into %d sub-streams, want 4", len(out))
	}
	for _, sub := range out {
		// Each sub-stream must satisfy p ≤ T exactly, i.e. survive the
		// split-it-first precondition of GroupStreams.
		if _, err := GroupStreams([]Stream{sub}, 1); err != nil {
			t.Fatalf("sub-stream still self-queues after split: %v", err)
		}
	}

	// An exactly-integer ratio (dyadic on both sides) must not over-split.
	exact := Stream{Period: Rat(1, 4), Proc: 0.75} // s·p = 3 exactly
	if out := SplitHighRate([]Stream{exact}); len(out) != 3 {
		t.Fatalf("sp=3 exact split into %d sub-streams, want 3", len(out))
	}

	// float64 0.1 is strictly above the rational 1/10, so fps-10 at
	// p=0.1 is genuinely (marginally) overloaded and must split.
	tenth := Stream{Period: RatFromFPS(10), Proc: 0.1}
	out = SplitHighRate([]Stream{tenth})
	if len(out) != 2 {
		t.Fatalf("p=0.1f on T=1/10 split into %d sub-streams, want 2", len(out))
	}
}

// TestCheckConst2Exact pins the acceptance bug: a plan whose Σ pᵢ exceeds
// the period gcd by less than the old 1e-12 tolerance passed the float
// check while actually self-queueing. The exact check must reject it.
func TestCheckConst2Exact(t *testing.T) {
	// Two fps-10 streams with p = 0.05 each. float64 0.05 is marginally
	// above the rational 1/20, so Σp = 2·0.05f is marginally above 1/10 =
	// gcd: infeasible by ~5.6e-18 s — far inside the old tolerance.
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(10), Proc: 0.05},
		{Video: 1, Period: RatFromFPS(10), Proc: 0.05},
	}
	assign := []int{0, 0}
	if !oldFloatConst2(streams, assign, 1) {
		t.Fatal("setup broken: the old float check was supposed to accept this plan")
	}
	if CheckConst2(streams, assign, 1) {
		t.Fatal("exact CheckConst2 accepted a plan with Σp > gcd")
	}

	// Dyadic procs summing exactly to the gcd stay feasible.
	ok := []Stream{
		{Video: 0, Period: RatFromFPS(8), Proc: 0.0625},
		{Video: 1, Period: RatFromFPS(8), Proc: 0.0625},
	}
	if !CheckConst2(ok, assign, 1) {
		t.Fatal("exact CheckConst2 rejected Σp = gcd exactly")
	}
}

// TestCheckConst1Exact mirrors the Const2 fix for the load check: a server
// at utilization 1+ulp must fail, utilization exactly 1 must pass.
func TestCheckConst1Exact(t *testing.T) {
	over := []Stream{{Period: Rat(1, 1), Proc: math.Nextafter(1, 2)}}
	// Keep it a pure Const1 test: the period is 1 s so Const2 holds iff
	// Const1 does; check the load side directly.
	if CheckConst1(over, []int{0}, 1) {
		t.Fatal("exact CheckConst1 accepted utilization 1+ulp")
	}
	full := []Stream{
		{Period: Rat(1, 2), Proc: 0.25},
		{Period: Rat(1, 2), Proc: 0.25},
	}
	if !CheckConst1(full, []int{0, 0}, 1) {
		t.Fatal("exact CheckConst1 rejected utilization exactly 1")
	}
	if CheckConst1(full, []int{0, 3}, 1) {
		t.Fatal("CheckConst1 accepted an out-of-range assignment")
	}
}

// TestGroupStreamsExactAdmission: the greedy grouping must not pack a group
// past its minimum period, even by an ulp, so that every plan Algorithm 1
// emits passes the exact checks with no tolerance.
func TestGroupStreamsExactAdmission(t *testing.T) {
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(10), Proc: 0.05},
		{Video: 1, Period: RatFromFPS(10), Proc: 0.05},
	}
	// One server: Σp = 2·0.05f > 1/10 exactly → infeasible.
	if _, err := GroupStreams(streams, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("marginally overloaded group accepted (err=%v)", err)
	}
	// Two servers: one stream each is fine.
	groups, err := GroupStreams(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, len(streams))
	for g, members := range groups {
		for _, si := range members {
			assign[si] = g
		}
	}
	if !CheckConst2(streams, assign, 2) || !CheckConst1(streams, assign, 2) {
		t.Fatal("accepted grouping fails the exact checks")
	}
	// Non-finite processing times are rejected, not grouped.
	if _, err := GroupStreams([]Stream{{Period: Rat(1, 1), Proc: math.NaN()}}, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("NaN proc accepted (err=%v)", err)
	}
}

// TestExactGroupMatchesChecker: every grouping the backtracking reference
// accepts must pass the exact checker, and it must reject the marginal
// instance above.
func TestExactGroupMatchesChecker(t *testing.T) {
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(10), Proc: 0.05},
		{Video: 1, Period: RatFromFPS(10), Proc: 0.05},
	}
	if _, ok := ExactGroup(streams, 1); ok {
		t.Fatal("ExactGroup accepted a Σp > gcd instance")
	}
	groups, ok := ExactGroup(streams, 2)
	if !ok {
		t.Fatal("ExactGroup rejected a feasible instance")
	}
	assign := make([]int, len(streams))
	for i := range assign {
		assign[i] = -1
	}
	for g, members := range groups {
		for _, si := range members {
			assign[si] = g
		}
	}
	if !CheckConst2(streams, assign, 2) {
		t.Fatal("ExactGroup grouping fails exact CheckConst2")
	}
}
