package sched

import (
	"fmt"

	"repro/internal/cluster"
)

// Snapshot is an immutable, versioned view of the cluster as one planning
// decision sees it: the server capacities and the liveness mask, fixed at
// capture time. It is the shared-state currency of the sharded control
// plane — every per-cell scheduler proposes claims against one snapshot
// version, the arbiter commits against the live successor state, and a
// version mismatch is what makes a conflict detectable — but the serial
// paths consume it too, so `sched`, `runtime`, and the Replanner all plan
// off the same explicit state instead of loose (servers, healthy) pairs.
//
// Construction deep-copies both slices; accessors hand back internal state
// that callers must treat as read-only. A nil healthy mask means every
// server is up.
type Snapshot struct {
	version uint64
	servers []cluster.Server
	healthy []bool
}

// NewSnapshot captures the cluster state under the given version. The
// version is owner-assigned and monotone per control loop (the runtime uses
// the epoch); equality of versions is what optimistic consumers compare.
func NewSnapshot(version uint64, servers []cluster.Server, healthy []bool) *Snapshot {
	s := &Snapshot{
		version: version,
		servers: append([]cluster.Server(nil), servers...),
	}
	if healthy != nil {
		if len(healthy) != len(servers) {
			panic(fmt.Sprintf("sched: snapshot mask length %d for %d servers", len(healthy), len(servers)))
		}
		s.healthy = append([]bool(nil), healthy...)
	}
	return s
}

// Version returns the snapshot's version stamp.
func (s *Snapshot) Version() uint64 { return s.version }

// NumServers returns the number of physical servers (healthy or not).
func (s *Snapshot) NumServers() int { return len(s.servers) }

// Servers returns the snapshot's server table. Read-only.
func (s *Snapshot) Servers() []cluster.Server { return s.servers }

// Server returns server j's capacity record.
func (s *Snapshot) Server(j int) cluster.Server { return s.servers[j] }

// Healthy returns the liveness mask (nil = all up). Read-only.
func (s *Snapshot) Healthy() []bool { return s.healthy }

// IsHealthy reports whether server j is up.
func (s *Snapshot) IsHealthy(j int) bool {
	return s.healthy == nil || s.healthy[j]
}

// NumHealthy counts the servers that are up.
func (s *Snapshot) NumHealthy() int {
	if s.healthy == nil {
		return len(s.servers)
	}
	n := 0
	for _, ok := range s.healthy {
		if ok {
			n++
		}
	}
	return n
}

// HealthyIndices appends the physical indices of the healthy servers, in
// ascending order, to dst — the column order every masked solve uses, so
// Hungarian tie-breaking is identical across the serial and sharded paths.
func (s *Snapshot) HealthyIndices(dst []int) []int {
	for j := range s.servers {
		if s.IsHealthy(j) {
			dst = append(dst, j)
		}
	}
	return dst
}

// ScheduleSnapshot runs the complete Algorithm 1 against a snapshot: the
// serial reference every sharded plan is measured against, and the
// single-cell path of the sharded planner. Identical to ScheduleMasked on
// the snapshot's (servers, healthy) pair, byte for byte.
func ScheduleSnapshot(streams []Stream, snap *Snapshot) (Plan, error) {
	return ScheduleMasked(streams, snap.servers, snap.healthy)
}

// ReplanSnapshot is Replan consuming a snapshot instead of a loose
// (servers, healthy) pair.
func (r *Replanner) ReplanSnapshot(streams []Stream, snap *Snapshot) (Plan, bool, error) {
	return r.Replan(streams, snap.servers, snap.healthy)
}

// IncrementalSnapshot is Incremental consuming a snapshot.
func (r *Replanner) IncrementalSnapshot(streams []Stream, snap *Snapshot) (Plan, bool) {
	return r.Incremental(streams, snap.servers, snap.healthy)
}
