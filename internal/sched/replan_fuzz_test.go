package sched

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// FuzzReplanVsSchedule differentially fuzzes the incremental replanner
// against the full Algorithm 1 solve. Epoch 0 must reproduce ScheduleMasked
// byte-exactly (it IS a full solve plus adoption); drifted epochs taking the
// incremental path must (a) match the MapGroups oracle — a one-shot
// Hungarian re-map of the frozen grouping onto the healthy survivors —
// and (b) still pass the exact Const1/Const2 verifiers, so "incremental"
// never means "less feasible". Epochs where the fast path declines must
// fall back to a plan byte-identical to a cold ScheduleMasked.
func FuzzReplanVsSchedule(f *testing.F) {
	f.Add(uint64(1), 4, 3, uint8(0))
	f.Add(uint64(42), 8, 5, uint8(2))
	f.Add(uint64(7), 1, 1, uint8(1))
	f.Add(uint64(1234), 12, 4, uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, m, n int, downBits uint8) {
		m = 1 + abs(m)%12
		n = 1 + abs(n)%5
		fps := []int64{5, 6, 10, 15, 25, 30}
		rng := seed
		next := func(k int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(k))
		}
		base := make([]Stream, m)
		for i := range base {
			p := RatFromFPS(fps[next(len(fps))])
			base[i] = Stream{
				Video:  i,
				Period: p,
				Proc:   p.Float() * (0.05 + 0.6*float64(next(100))/100),
				Bits:   1e6 * (1 + float64(next(20))),
			}
		}
		servers := make([]cluster.Server, n)
		for j := range servers {
			servers[j] = cluster.Server{Name: fmt.Sprintf("s%d", j), Uplink: 10e6 * float64(1+next(5))}
		}

		rp := NewReplanner()
		first, inc, err := rp.Replan(base, servers, nil)
		if err != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("non-infeasible error: %v", err)
			}
			return
		}
		if inc {
			t.Fatal("first Replan claimed the incremental path")
		}
		want, err := ScheduleMasked(base, servers, nil)
		if err != nil {
			t.Fatalf("full solve failed where Replan succeeded: %v", err)
		}
		if !reflect.DeepEqual(first, want) {
			t.Fatalf("first Replan diverged from full solve:\n%+v\n%+v", first, want)
		}
		prevGroups := make([][]int, len(first.Groups))
		for g := range first.Groups {
			prevGroups[g] = append([]int(nil), first.Groups[g]...)
		}

		// Drift the per-frame costs and optionally take servers down.
		streams := make([]Stream, m)
		copy(streams, base)
		for i := range streams {
			streams[i].Proc = base[i].Proc * (0.8 + 0.5*float64(next(100))/100)
			streams[i].Bits = base[i].Bits * (0.5 + 1.5*float64(next(100))/100)
		}
		var healthy []bool
		alive := n
		if downBits != 0 {
			healthy = make([]bool, n)
			alive = 0
			for j := range healthy {
				healthy[j] = downBits&(1<<j) == 0
				if healthy[j] {
					alive++
				}
			}
			if alive == 0 {
				healthy[next(n)] = true
				alive = 1
			}
		}

		plan, inc, err := rp.Replan(streams, servers, healthy)
		if err != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("drifted replan: non-infeasible error: %v", err)
			}
			return
		}
		live := 0
		for i := range streams {
			if plan.StreamServer[i] >= 0 {
				live++
			}
			if j := plan.StreamServer[i]; healthy != nil && j >= 0 && !healthy[j] {
				t.Fatalf("stream %d assigned to down server %d", i, j)
			}
		}
		if live != m {
			t.Fatalf("replan placed %d of %d streams", live, m)
		}
		if !CheckConst1(streams, plan.StreamServer, n) {
			t.Fatalf("replanned plan violates Const1 (incremental=%v): %+v", inc, plan)
		}
		if !CheckConst2(streams, plan.StreamServer, n) {
			t.Fatalf("replanned plan violates Const2 (incremental=%v): %+v", inc, plan)
		}

		if !inc {
			// Fallback epochs must be byte-identical to a cold full solve.
			cold, err := ScheduleMasked(streams, servers, healthy)
			if err != nil {
				t.Fatalf("cold solve failed where fallback succeeded: %v", err)
			}
			if !reflect.DeepEqual(plan, cold) {
				t.Fatalf("fallback diverged from cold solve:\n%+v\n%+v", plan, cold)
			}
			return
		}

		// Oracle for the incremental path: the frozen grouping re-mapped by a
		// one-shot Hungarian solve over the healthy survivors. Rebuild it
		// from entirely independent code (MapGroups + compact remap).
		cols := make([]int, 0, n)
		for j := 0; j < n; j++ {
			if healthy == nil || healthy[j] {
				cols = append(cols, j)
			}
		}
		rows := prevGroups
		if len(prevGroups) > len(cols) {
			rows = nil
			for _, g := range prevGroups {
				if len(g) > 0 {
					rows = append(rows, g)
				}
			}
		}
		sub := make([]cluster.Server, len(cols))
		for k, j := range cols {
			sub[k] = servers[j]
		}
		oracle, err := MapGroups(rows, streams, sub)
		if err != nil {
			t.Fatalf("oracle MapGroups: %v", err)
		}
		if len(plan.Groups) != len(rows) || len(plan.GroupServer) != len(cols) {
			t.Fatalf("incremental plan shape %d groups/%d assignments, oracle %d/%d",
				len(plan.Groups), len(plan.GroupServer), len(rows), len(cols))
		}
		for g := range plan.GroupServer {
			if got, want := plan.GroupServer[g], cols[oracle.GroupServer[g]]; got != want {
				t.Fatalf("group %d on server %d, oracle says %d", g, got, want)
			}
		}
		if plan.CommLatency != oracle.CommLatency {
			t.Fatalf("incremental comm latency %v, oracle %v", plan.CommLatency, oracle.CommLatency)
		}
	})
}
