package sched

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// churnBaseline builds and adopts a small feasible baseline: three videos
// at 10/15/30 fps on two servers.
func churnBaseline(t *testing.T) (*Replanner, []Stream, []cluster.Server) {
	t.Helper()
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(10), Proc: 0.020, Bits: 1e6},
		{Video: 1, Period: RatFromFPS(15), Proc: 0.015, Bits: 1e6},
		{Video: 2, Period: RatFromFPS(30), Proc: 0.008, Bits: 1e6},
	}
	servers := []cluster.Server{{Uplink: 20e6}, {Uplink: 25e6}}
	rp := NewReplanner()
	if _, _, err := rp.Replan(streams, servers, nil); err != nil {
		t.Fatalf("baseline replan: %v", err)
	}
	return rp, streams, servers
}

// TestAdoptRejectsBadMembership is the regression for the baseline-
// corruption bug: Adopt used to install any grouping verbatim, so a plan
// whose membership did not exactly cover the stream slice (stale index
// after an eviction, duplicate, gap) silently wired the wrong stream into
// a group — or indexed out of range on the next Incremental. Bad coverage
// must invalidate the baseline instead.
func TestAdoptRejectsBadMembership(t *testing.T) {
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(10), Proc: 0.01},
		{Video: 1, Period: RatFromFPS(10), Proc: 0.01},
	}
	cases := []struct {
		name   string
		groups [][]int
	}{
		{"out_of_range", [][]int{{0, 5}, {1}}},
		{"negative", [][]int{{-1}, {0, 1}}},
		{"duplicate", [][]int{{0, 1}, {1}}},
		{"uncovered", [][]int{{0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rp, base, servers := churnBaseline(t)
			if rp.Streams() == nil {
				t.Fatal("baseline invalid before Adopt")
			}
			rp.Adopt(streams, Plan{Groups: tc.groups})
			if rp.Streams() != nil {
				t.Fatal("bad membership left the baseline valid")
			}
			if _, ok := rp.Incremental(base, servers, nil); ok {
				t.Fatal("Incremental ran on a corrupted baseline")
			}
		})
	}
}

// TestEvictWithoutResolve: departures shrink the frozen grouping in place
// — no full solve — and the next incremental replan still yields an
// exactly feasible plan over the survivors.
func TestEvictWithoutResolve(t *testing.T) {
	rp, streams, servers := churnBaseline(t)
	if ok := rp.Evict([]bool{false, true, false}); !ok {
		t.Fatal("evict declined on a valid baseline")
	}
	survivors := []Stream{streams[0], streams[2]}
	if got := len(rp.Streams()); got != 2 {
		t.Fatalf("baseline holds %d streams after evict, want 2", got)
	}
	plan, ok := rp.Incremental(survivors, servers, nil)
	if !ok {
		t.Fatal("incremental declined after evict")
	}
	if !CheckConst1(survivors, plan.StreamServer, len(servers)) ||
		!CheckConst2(survivors, plan.StreamServer, len(servers)) {
		t.Fatalf("post-evict plan infeasible: %+v", plan)
	}
	// Wrong mask length must not touch the baseline.
	if rp.Evict([]bool{true}) {
		t.Fatal("evict accepted a mask of the wrong length")
	}
}

// TestAdmitExactBudgetBoundary pins the exactness of the admission
// arithmetic: a stream that fills the group's Const2 budget to exactly
// Σ proc = gcd is admitted, and any additional processing load — even
// 1e-12 of headroom gone — is declined rather than rounded in. Every
// quantity is dyadic (8 fps → gcd 1/8, proc 0.0625 = 1/16), so the sums
// are exact and the boundary is sharp.
func TestAdmitExactBudgetBoundary(t *testing.T) {
	streams := []Stream{{Video: 0, Period: RatFromFPS(8), Proc: 0.0625, Bits: 1e6}}
	servers := []cluster.Server{{Uplink: 20e6}}
	rp := NewReplanner()
	if _, _, err := rp.Replan(streams, servers, nil); err != nil {
		t.Fatal(err)
	}
	// 0.0625 + 0.0625 == 0.125 == gcd exactly: admit.
	fill := Stream{Video: 1, Period: RatFromFPS(8), Proc: 0.0625, Bits: 1e6}
	g, ok := rp.Admit(fill, servers, nil)
	if !ok {
		t.Fatalf("exact-fit admission declined (group %d)", g)
	}
	over := Stream{Video: 2, Period: RatFromFPS(8), Proc: 1e-12, Bits: 1}
	if _, ok := rp.Admit(over, servers, nil); ok {
		t.Fatal("admission above the exact budget accepted")
	}
}

// TestAdmitOpensGroupOnlyWithFreeServer: an incompatible period opens a
// singleton group only while a healthy server column remains.
func TestAdmitOpensGroupOnlyWithFreeServer(t *testing.T) {
	streams := []Stream{{Video: 0, Period: RatFromFPS(10), Proc: 0.02, Bits: 1e6}}
	servers := []cluster.Server{{Uplink: 20e6}, {Uplink: 20e6}}
	rp := NewReplanner()
	if _, _, err := rp.Replan(streams, servers, nil); err != nil {
		t.Fatal(err)
	}
	// 7 fps is incompatible with the 10 fps gcd in both directions.
	odd := Stream{Video: 1, Period: Rational{Num: 1, Den: 7}, Proc: 0.02, Bits: 1e6}
	if _, ok := rp.Admit(odd, servers, nil); !ok {
		t.Fatal("arrival declined with a free server available")
	}
	odd2 := Stream{Video: 2, Period: Rational{Num: 1, Den: 11}, Proc: 0.02, Bits: 1e6}
	if _, ok := rp.Admit(odd2, servers, nil); ok {
		t.Fatal("arrival opened a third group on a two-server cluster")
	}
	// All groups occupied AND one server masked: even the compatible-period
	// path must respect the mask through the later Incremental.
	all := rp.Streams()
	plan, ok := rp.Incremental(append([]Stream(nil), all...), servers, nil)
	if !ok {
		t.Fatal("incremental declined after admissions")
	}
	if !CheckConst2(all, plan.StreamServer, len(servers)) {
		t.Fatalf("post-admit plan violates Const2: %+v", plan)
	}
}

// TestAdmitHeteroSpeedBudget: a 2× server stretches the exact Const2
// budget to 2·gcd, so a workload that overfills a speed-1 group admits on
// the fast machine — and the speed-aware checker agrees while the
// speed-blind one (correctly) flags it against a unit budget.
func TestAdmitHeteroSpeedBudget(t *testing.T) {
	streams := []Stream{{Video: 0, Period: RatFromFPS(10), Proc: 0.09, Bits: 1e6}}
	fast := []cluster.Server{{Uplink: 20e6, SpeedFactor: 2}}
	rp := NewReplanner()
	if _, _, err := rp.Replan(streams, fast, nil); err != nil {
		t.Fatal(err)
	}
	// Σ proc would be 0.18 > 0.1 = gcd, but ≤ 0.2 = gcd·speed.
	arr := Stream{Video: 1, Period: RatFromFPS(10), Proc: 0.09, Bits: 1e6}
	if _, ok := rp.Admit(arr, fast, nil); !ok {
		t.Fatal("speed-2 admission declined")
	}
	all := append([]Stream(nil), rp.Streams()...)
	plan, ok := rp.Incremental(all, fast, nil)
	if !ok {
		t.Fatal("incremental declined after speed-2 admission")
	}
	if !CheckConst2Servers(all, plan.StreamServer, fast) {
		t.Fatal("speed-aware Const2 rejects the speed-2 plan")
	}
	if CheckConst2(all, plan.StreamServer, len(fast)) {
		t.Fatal("speed-blind Const2 accepted a load only a 2x server can carry")
	}

	// The same admission against a speed-1 cluster must decline.
	slow := []cluster.Server{{Uplink: 20e6}}
	rp2 := NewReplanner()
	if _, _, err := rp2.Replan(streams, slow, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := rp2.Admit(arr, slow, nil); ok {
		t.Fatal("speed-1 admission accepted a 2x load")
	}
}

// FuzzIncrementalAdmitVsResolve differentially fuzzes the churn fast path:
// random baseline, random arrival. Whenever Admit accepts and the
// incremental re-map settles a placement, that plan must pass the exact
// speed-aware Const1/Const2 verifiers (independent code — per-server sums
// in big.Rat vs the replanner's pooled dyadic accumulator), place every
// stream on a healthy server, and whenever the fast path declines the
// arrival, a full resolve over the same workload must remain available as
// the fallback the runtime takes (or itself prove the workload infeasible).
func FuzzIncrementalAdmitVsResolve(f *testing.F) {
	f.Add(uint64(1), 4, 2, uint8(0), uint8(10))
	f.Add(uint64(42), 8, 4, uint8(1), uint8(60))
	f.Add(uint64(7), 2, 3, uint8(4), uint8(200))
	f.Add(uint64(99), 6, 3, uint8(2), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, m, n int, downBits, arrival uint8) {
		m = 1 + abs(m)%10
		n = 1 + abs(n)%5
		fps := []int64{5, 6, 10, 15, 25, 30}
		speeds := []float64{0.5, 0.75, 1, 1.25, 1.5, 2}
		rng := seed
		next := func(k int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(k))
		}
		base := make([]Stream, m)
		for i := range base {
			p := RatFromFPS(fps[next(len(fps))])
			base[i] = Stream{
				Video:  i,
				Period: p,
				Proc:   p.Float() * (0.05 + 0.5*float64(next(100))/100),
				Bits:   1e6 * (1 + float64(next(20))),
			}
		}
		servers := make([]cluster.Server, n)
		for j := range servers {
			servers[j] = cluster.Server{
				Name:        fmt.Sprintf("s%d", j),
				Uplink:      10e6 * float64(1+next(5)),
				SpeedFactor: speeds[next(len(speeds))],
			}
		}
		var healthy []bool
		if downBits != 0 {
			healthy = make([]bool, n)
			alive := 0
			for j := range healthy {
				healthy[j] = downBits&(1<<j) == 0
				if healthy[j] {
					alive++
				}
			}
			if alive == 0 {
				healthy[next(n)] = true
			}
		}

		rp := NewReplanner()
		if _, _, err := rp.Replan(base, servers, healthy); err != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("baseline: %v", err)
			}
			return
		}

		p := RatFromFPS(fps[int(arrival)%len(fps)])
		arr := Stream{
			Video:  m,
			Period: p,
			Proc:   p.Float() * (0.02 + 0.9*float64(next(100))/100),
			Bits:   1e6 * (1 + float64(next(20))),
		}
		_, admitted := rp.Admit(arr, servers, healthy)
		all := append(append([]Stream(nil), base...), arr)

		if admitted {
			plan, ok := rp.Incremental(all, servers, healthy)
			if !ok {
				// Admission is a budget-level necessary condition; the
				// Hungarian re-map may still fail to realize a placement
				// (e.g. the only roomy-enough server is slow). The runtime
				// then invalidates and falls back whole — nothing to check.
				return
			}
			for i := range all {
				j := plan.StreamServer[i]
				if j < 0 || j >= n {
					t.Fatalf("stream %d unplaced (server %d)", i, j)
				}
				if healthy != nil && !healthy[j] {
					t.Fatalf("stream %d on down server %d", i, j)
				}
			}
			if !CheckConst1Servers(all, plan.StreamServer, servers) {
				t.Fatalf("admitted plan violates speed-aware Const1: %+v", plan)
			}
			if !CheckConst2Servers(all, plan.StreamServer, servers) {
				t.Fatalf("admitted plan violates speed-aware Const2: %+v", plan)
			}
			return
		}

		// Declined: the runtime's fallback is a full resolve of the same
		// workload. It may succeed (the heuristic regroups from scratch) or
		// report infeasibility — anything else is a bug.
		if _, err := ScheduleMasked(all, servers, healthy); err != nil && !errors.Is(err, ErrInfeasible) {
			t.Fatalf("full-resolve fallback: %v", err)
		}
	})
}
