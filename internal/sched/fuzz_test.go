package sched

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// FuzzRationalArithmetic checks the exact-gcd invariants on arbitrary
// fps-derived rationals.
func FuzzRationalArithmetic(f *testing.F) {
	f.Add(int64(5), int64(30), int64(2))
	f.Add(int64(1), int64(1), int64(1))
	f.Add(int64(25), int64(6), int64(7))
	f.Fuzz(func(t *testing.T, a, b, k int64) {
		a = 1 + abs64(a)%120
		b = 1 + abs64(b)%120
		k = 1 + abs64(k)%10
		ra, rb := RatFromFPS(a), RatFromFPS(b)
		g := RatGCD(ra, rb)
		if !ra.IsMultipleOf(g) || !rb.IsMultipleOf(g) {
			t.Fatalf("gcd(%v, %v) = %v does not divide both", ra, rb, g)
		}
		if g.Cmp(ra) > 0 || g.Cmp(rb) > 0 {
			t.Fatalf("gcd larger than an operand: %v", g)
		}
		// Scaling: a multiple of ra is still a multiple of g.
		if !ra.Mul(k).IsMultipleOf(g) {
			t.Fatalf("(%v)·%d not a multiple of gcd %v", ra, k, g)
		}
		// Float consistency.
		if g.Float() <= 0 {
			t.Fatalf("gcd float %v", g.Float())
		}
	})
}

// FuzzGroupStreams checks that any grouping Algorithm 1 accepts satisfies
// both constraints.
func FuzzGroupStreams(f *testing.F) {
	f.Add(uint64(1), 4, 2)
	f.Add(uint64(42), 8, 5)
	f.Fuzz(func(t *testing.T, seed uint64, m, n int) {
		m = 1 + abs(m)%8
		n = 1 + abs(n)%5
		fps := []int64{5, 6, 10, 15, 25, 30}
		rng := seed
		next := func(k int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(k))
		}
		streams := make([]Stream, m)
		for i := range streams {
			p := RatFromFPS(fps[next(len(fps))])
			streams[i] = Stream{
				Video:  i,
				Period: p,
				Proc:   p.Float() * (0.05 + 0.9*float64(next(100))/100),
			}
		}
		groups, err := GroupStreams(streams, n)
		if err != nil {
			return // infeasible is fine
		}
		assign := make([]int, m)
		for i := range assign {
			assign[i] = -1
		}
		for g, members := range groups {
			for _, si := range members {
				if assign[si] != -1 {
					t.Fatalf("stream %d grouped twice", si)
				}
				assign[si] = g
			}
		}
		for i, a := range assign {
			if a < 0 {
				t.Fatalf("stream %d not grouped", i)
			}
		}
		if !CheckConst2(streams, assign, n) {
			t.Fatal("accepted grouping violates Const2")
		}
		if !CheckConst1(streams, assign, n) {
			t.Fatal("accepted grouping violates Const1 (Theorem 2 broken)")
		}
	})
}

// FuzzScheduleMasked checks the shrinking-capacity path: with a random
// subset of servers removed, Algorithm 1 must either produce a feasible
// plan on the survivors or return a clean ErrInfeasible — never panic and
// never reference a dead server.
func FuzzScheduleMasked(f *testing.F) {
	f.Add(uint64(1), 4, 3, uint64(0b101))
	f.Add(uint64(42), 8, 5, uint64(0b00000))
	f.Add(uint64(7), 6, 4, uint64(0b1111))
	f.Fuzz(func(t *testing.T, seed uint64, m, n int, maskBits uint64) {
		m = 1 + abs(m)%8
		n = 1 + abs(n)%5
		fps := []int64{5, 6, 10, 15, 25, 30}
		rng := seed
		next := func(k int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(k))
		}
		streams := make([]Stream, m)
		for i := range streams {
			p := RatFromFPS(fps[next(len(fps))])
			streams[i] = Stream{
				Video:  i,
				Period: p,
				Proc:   p.Float() * (0.05 + 0.9*float64(next(100))/100),
				Bits:   1e6 * (1 + float64(next(20))),
			}
		}
		servers := make([]cluster.Server, n)
		for j := range servers {
			servers[j] = cluster.Server{Name: fmt.Sprintf("s%d", j), Uplink: 10e6 * float64(1+next(5))}
		}
		healthy := make([]bool, n)
		for j := range healthy {
			healthy[j] = maskBits&(1<<uint(j)) != 0
		}
		plan, err := ScheduleMasked(streams, servers, healthy)
		if err != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("non-infeasible error: %v", err)
			}
			return
		}
		for i, j := range plan.StreamServer {
			if j < 0 || j >= n {
				t.Fatalf("stream %d assigned to out-of-range server %d", i, j)
			}
			if !healthy[j] {
				t.Fatalf("stream %d assigned to dead server %d", i, j)
			}
		}
		for g, j := range plan.GroupServer {
			if j < 0 || j >= n || !healthy[j] {
				t.Fatalf("group %d mapped to dead/out-of-range server %d", g, j)
			}
		}
		if !CheckConst2(streams, plan.StreamServer, n) {
			t.Fatal("masked plan violates Const2")
		}
		if !CheckConst1(streams, plan.StreamServer, n) {
			t.Fatal("masked plan violates Const1")
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
