package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func TestExactGroupTrivial(t *testing.T) {
	if _, ok := ExactGroup(nil, 2); !ok {
		t.Fatal("empty instance must be feasible")
	}
	if _, ok := ExactGroup([]Stream{{Period: RatFromFPS(10), Proc: 0.01}}, 0); ok {
		t.Fatal("zero groups must be infeasible for non-empty input")
	}
}

func TestExactGroupSatisfiesConst2(t *testing.T) {
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(5), Proc: 0.05},
		{Video: 1, Period: RatFromFPS(10), Proc: 0.04},
		{Video: 2, Period: RatFromFPS(15), Proc: 0.03},
		{Video: 3, Period: RatFromFPS(30), Proc: 0.02},
	}
	groups, ok := ExactGroup(streams, 3)
	if !ok {
		t.Fatal("instance should be feasible")
	}
	assign := make([]int, len(streams))
	for g, members := range groups {
		for _, si := range members {
			assign[si] = g
		}
	}
	if !CheckConst2(streams, assign, 3) {
		t.Fatal("exact grouping violates Const2")
	}
}

func TestExactAcceptsConst2OnlyInstances(t *testing.T) {
	// Periods 0.3 and 0.2: gcd = 0.1. Procs 0.04 + 0.05 = 0.09 ≤ 0.1, so
	// Const2 holds on one server — but 0.3 is NOT a multiple of 0.2, so
	// Theorem 3's condition (a) fails and Algorithm 1 needs two groups.
	streams := []Stream{
		{Video: 0, Period: Rat(3, 10), Proc: 0.04},
		{Video: 1, Period: Rat(1, 5), Proc: 0.05},
	}
	if _, ok := ExactGroup(streams, 1); !ok {
		t.Fatal("exact search must accept a Const2-feasible single group")
	}
	if _, err := GroupStreams(streams, 1); err == nil {
		t.Fatal("heuristic should reject this instance on one server (Theorem 3 is stricter)")
	}
}

func TestExactInfeasibleDetected(t *testing.T) {
	streams := []Stream{
		{Period: RatFromFPS(10), Proc: 0.09},
		{Period: RatFromFPS(10), Proc: 0.09},
	}
	if _, ok := ExactGroup(streams, 1); ok {
		t.Fatal("overfull instance accepted")
	}
}

func TestExactScheduleProducesValidPlan(t *testing.T) {
	streams := []Stream{
		{Video: 0, Period: RatFromFPS(5), Proc: 0.05, Bits: 2e5},
		{Video: 1, Period: RatFromFPS(10), Proc: 0.04, Bits: 3e5},
		{Video: 2, Period: RatFromFPS(30), Proc: 0.02, Bits: 1e5},
	}
	srvs := []cluster.Server{{Uplink: 1e7}, {Uplink: 2e7}}
	plan, ok := ExactSchedule(streams, srvs)
	if !ok {
		t.Fatal("feasible instance rejected")
	}
	if !CheckConst2(streams, plan.StreamServer, len(srvs)) {
		t.Fatal("exact plan violates Const2")
	}
}

// Property 1: the heuristic never accepts an instance the exact search
// rejects (heuristic-feasible ⊆ exact-feasible).
// Property 2: exact groupings always satisfy Const2 and simulate
// jitter-free under Theorem 1 offsets.
func TestExactVsHeuristicProperty(t *testing.T) {
	fpsChoices := []int64{5, 6, 10, 15, 25, 30}
	f := func(seed uint64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		m := 2 + next(5)
		streams := make([]Stream, m)
		for i := range streams {
			streams[i] = Stream{
				Video:  i,
				Period: RatFromFPS(fpsChoices[next(len(fpsChoices))]),
				Proc:   0.004 + float64(next(15))*0.003,
				Bits:   1e5,
			}
		}
		n := 2 + next(3)
		exact, exOK := ExactGroup(streams, n)
		_, hErr := GroupStreams(streams, n)
		if hErr == nil && !exOK {
			return false // heuristic accepted what exact rejected
		}
		if exOK {
			assign := make([]int, m)
			for g, members := range exact {
				for _, si := range members {
					assign[si] = g
				}
			}
			if !CheckConst2(streams, assign, n) {
				return false
			}
			// Verify zero jitter in the simulator per group.
			for _, members := range exact {
				if len(members) == 0 {
					continue
				}
				specs := make([]cluster.StreamSpec, len(members))
				for k, si := range members {
					specs[k] = cluster.StreamSpec{
						Period: streams[si].Period.Float(),
						Proc:   streams[si].Proc,
					}
				}
				specs = cluster.ZeroJitterOffsets(specs, 0)
				res := cluster.SimulateServer(specs, cluster.Server{}, 10)
				if res.MaxJitter > cluster.JitterEps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExactGroup8(b *testing.B) {
	fps := []int64{5, 10, 10, 15, 30, 30, 6, 25}
	streams := make([]Stream, 8)
	for i := range streams {
		streams[i] = Stream{Video: i, Period: RatFromFPS(fps[i]), Proc: 0.01 + float64(i)*0.002}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExactGroup(streams, 4)
	}
}
