package sched

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
)

// Slot is one execution interval on a server's cyclic timeline.
type Slot struct {
	Stream int     // index into the stream list
	Start  float64 // seconds from cycle start
	End    float64
}

// Timeline is one server's periodic schedule over a full hyper-cycle (the
// lcm of its streams' periods): the interval structure from the proof of
// Theorem 1, laid out explicitly.
type Timeline struct {
	Server int
	Cycle  float64 // hyper-period length in seconds
	Slots  []Slot
}

// Timelines expands the plan into per-server cyclic timelines with the
// Theorem 1 offsets applied. Servers with no streams are omitted.
func (p Plan) Timelines(streams []Stream) []Timeline {
	var out []Timeline
	for g, members := range p.Groups {
		if len(members) == 0 {
			continue
		}
		// Hyper-period = lcm of the member periods (exact, via rationals:
		// lcm(a/b, c/d) = lcm(a,c)/gcd(b,d); with unit numerators this is
		// 1/gcd of denominators… compute pairwise via float-safe ints).
		cycle := streams[members[0]].Period
		for _, si := range members[1:] {
			cycle = ratLCM(cycle, streams[si].Period)
		}
		tl := Timeline{Server: p.GroupServer[g], Cycle: cycle.Float()}
		offset := 0.0
		for _, si := range members {
			s := streams[si]
			reps := int64(cycle.Float()/s.Period.Float() + 0.5)
			for k := int64(0); k < reps; k++ {
				start := offset + float64(k)*s.Period.Float()
				tl.Slots = append(tl.Slots, Slot{Stream: si, Start: start, End: start + s.Proc})
			}
			offset += s.Proc
		}
		slices.SortFunc(tl.Slots, func(a, b Slot) int { return cmp.Compare(a.Start, b.Start) })
		out = append(out, tl)
	}
	return out
}

// ratLCM returns the least common multiple of two positive rationals:
// lcm(a/b, c/d) = lcm(a·d, c·b)/(b·d).
func ratLCM(x, y Rational) Rational {
	num := lcm64(x.Num*y.Den, y.Num*x.Den)
	return Rational{num, x.Den * y.Den}.reduce()
}

// Overlap returns the first pair of overlapping slots, or nil when the
// timeline is conflict-free — the empirical statement of Theorem 1.
func (t Timeline) Overlap() *[2]Slot {
	for i := 1; i < len(t.Slots); i++ {
		if t.Slots[i].Start < t.Slots[i-1].End-1e-12 {
			return &[2]Slot{t.Slots[i-1], t.Slots[i]}
		}
	}
	return nil
}

// Render draws the timeline as an ASCII chart (width characters per
// cycle), one row per stream: '#' marks execution, '.' idle.
func (t Timeline) Render(streams []Stream, width int) string {
	if width <= 0 {
		width = 60
	}
	// Collect the distinct streams on this timeline in slot order.
	var order []int
	seen := map[int]bool{}
	for _, s := range t.Slots {
		if !seen[s.Stream] {
			seen[s.Stream] = true
			order = append(order, s.Stream)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "server %d, cycle %.3fs\n", t.Server, t.Cycle)
	for _, si := range order {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.Slots {
			if s.Stream != si {
				continue
			}
			lo := int(s.Start / t.Cycle * float64(width))
			hi := int(s.End / t.Cycle * float64(width))
			if hi == lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&sb, "  v%d.%d |%s|\n", streams[si].Video, streams[si].Sub, row)
	}
	return sb.String()
}
