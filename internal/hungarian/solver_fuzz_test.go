package hungarian

import (
	"math"
	"testing"
)

// FuzzSolverVsSolve pins the buffer-reusing Solver bit-exact against the
// one-shot Solve across random instances, including +Inf entries and
// rectangular shapes. One Solver instance is reused across two differently
// sized solves per input so stale-buffer bugs surface.
func FuzzSolverVsSolve(f *testing.F) {
	f.Add(uint64(1), 3, 3, false)
	f.Add(uint64(7), 2, 4, true)
	f.Add(uint64(99), 6, 7, true)
	var s Solver
	f.Fuzz(func(t *testing.T, seed uint64, n, m int, withInf bool) {
		n = 1 + absInt(n)%7
		m = n + absInt(m)%4
		rng := seed
		next := func() float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return float64((rng>>33)%1000) / 100
		}
		build := func(rows, cols int) [][]float64 {
			cost := make([][]float64, rows)
			for i := range cost {
				cost[i] = make([]float64, cols)
				for j := range cost[i] {
					cost[i][j] = next()
					if withInf && (rng>>20)%5 == 0 {
						cost[i][j] = math.Inf(1)
					}
				}
			}
			return cost
		}
		check := func(cost [][]float64) {
			t.Helper()
			wantAssign, wantTotal := Solve(cost)
			gotAssign, gotTotal := s.Solve(cost)
			if gotTotal != wantTotal {
				t.Fatalf("Solver total %v, Solve total %v (cost %v)", gotTotal, wantTotal, cost)
			}
			if len(gotAssign) != len(wantAssign) {
				t.Fatalf("Solver assign len %d, want %d", len(gotAssign), len(wantAssign))
			}
			for i := range wantAssign {
				if gotAssign[i] != wantAssign[i] {
					t.Fatalf("Solver assign %v, Solve assign %v (cost %v)", gotAssign, wantAssign, cost)
				}
			}
		}
		check(build(n, m))
		// Re-solve at a different (usually smaller) size with the same
		// Solver: reused buffers must not leak state between solves.
		check(build(1+n/2, m))
	})
}
