package hungarian

import "math"

// Solver runs the Hungarian algorithm with caller-owned, reusable buffers:
// repeated solves at the same (or smaller) problem size perform zero heap
// allocations. The zero value is ready to use. A Solver is not safe for
// concurrent use; pool one per goroutine.
type Solver struct {
	u, v, minv []float64
	p, way     []int
	used       []bool
	assign     []int
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Solve is identical to the package-level Solve — same algorithm, same
// tie-breaking, bit-identical totals — but reuses the solver's buffers. The
// returned assign slice is owned by the Solver and valid until the next
// call; callers that retain it must copy.
func (s *Solver) Solve(cost [][]float64) (assign []int, total float64) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	m := len(cost[0])
	if m < n {
		panic("hungarian: need at least as many columns as rows")
	}

	var maxFinite float64
	for _, row := range cost {
		if len(row) != m {
			panic("hungarian: ragged cost matrix")
		}
		for _, c := range row {
			if !math.IsInf(c, 1) && c > maxFinite {
				maxFinite = c
			}
		}
	}
	sentinel := (maxFinite + 1) * float64(n+1)
	at := func(i, j int) float64 {
		c := cost[i][j]
		if math.IsInf(c, 1) {
			return sentinel
		}
		return c
	}

	s.u = growF(s.u, n+1)
	s.v = growF(s.v, m+1)
	s.minv = growF(s.minv, m+1)
	s.p = growI(s.p, m+1)
	s.way = growI(s.way, m+1)
	if cap(s.used) < m+1 {
		s.used = make([]bool, m+1)
	} else {
		s.used = s.used[:m+1]
	}
	u, v, p, way := s.u, s.v, s.p, s.way
	for j := range u {
		u[j] = 0
	}
	for j := range v {
		v[j] = 0
	}
	for j := range p {
		p[j] = 0
	}
	for j := range way {
		way[j] = 0
	}

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv, used := s.minv, s.used
		for j := range minv {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := at(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	s.assign = growI(s.assign, n)
	assign = s.assign
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	for i, j := range assign {
		total += at(i, j)
	}
	return assign, total
}
