//go:build !race

package hungarian

import "testing"

// TestSolverZeroAllocSteadyState pins the reuse contract: after the first
// solve at a given size, subsequent solves do not allocate.
func TestSolverZeroAllocSteadyState(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3, 9},
		{2, 0, 5, 8},
		{3, 2, 2, 7},
	}
	var s Solver
	s.Solve(cost) // size the buffers
	if n := testing.AllocsPerRun(50, func() { s.Solve(cost) }); n != 0 {
		t.Fatalf("warm Solver.Solve allocates %v times per run, want 0", n)
	}
}
