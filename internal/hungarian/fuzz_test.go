package hungarian

import (
	"math"
	"testing"
)

// FuzzSolveOptimality cross-checks the Hungarian solution against brute
// force on small random instances.
func FuzzSolveOptimality(f *testing.F) {
	f.Add(uint64(1), 3, 3)
	f.Add(uint64(7), 2, 4)
	f.Add(uint64(99), 5, 5)
	f.Fuzz(func(t *testing.T, seed uint64, n, m int) {
		n = 1 + absInt(n)%5
		m = n + absInt(m)%3
		rng := seed
		next := func() float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return float64((rng>>33)%1000) / 100
		}
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = next()
			}
		}
		assign, total := Solve(cost)
		seen := map[int]bool{}
		for _, j := range assign {
			if j < 0 || j >= m || seen[j] {
				t.Fatalf("invalid assignment %v", assign)
			}
			seen[j] = true
		}
		_, want := bruteForce(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("total %v, brute force %v (cost %v)", total, want, cost)
		}
	})
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
