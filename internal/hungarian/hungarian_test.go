package hungarian

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestSolveTrivial(t *testing.T) {
	assign, total := Solve([][]float64{{5}})
	if len(assign) != 1 || assign[0] != 0 || total != 5 {
		t.Fatalf("trivial: %v %v", assign, total)
	}
}

func TestSolveKnown3x3(t *testing.T) {
	// Classic example: optimal is (0→1, 1→0, 2→2) with cost 2+3+2... verify
	// by brute force below instead of trusting a hand answer.
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total := Solve(cost)
	wantAssign, wantTotal := bruteForce(cost)
	if math.Abs(total-wantTotal) > 1e-12 {
		t.Fatalf("total = %v (assign %v), brute force = %v (%v)", total, assign, wantTotal, wantAssign)
	}
	checkPermutation(t, assign, 3)
}

func TestSolveRectangular(t *testing.T) {
	// 2 rows, 4 columns: rows pick the two cheapest distinct columns.
	cost := [][]float64{
		{9, 9, 1, 9},
		{9, 9, 2, 1},
	}
	assign, total := Solve(cost)
	if total != 2 {
		t.Fatalf("total = %v, want 2 (assign %v)", total, assign)
	}
	if assign[0] != 2 || assign[1] != 3 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestSolveInfeasiblePairs(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, 1},
		{1, inf},
	}
	assign, total := Solve(cost)
	if assign[0] != 1 || assign[1] != 0 || total != 2 {
		t.Fatalf("assign = %v total = %v", assign, total)
	}
}

func TestSolveEmpty(t *testing.T) {
	assign, total := Solve(nil)
	if assign != nil || total != 0 {
		t.Fatalf("empty: %v %v", assign, total)
	}
}

func TestSolveMoreColumnsThanRowsRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(5)
		m := n + rng.IntN(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) / 10
			}
		}
		assign, total := Solve(cost)
		checkPermutation(t, assign, m)
		_, want := bruteForce(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: total %v, brute force %v (cost %v)", trial, total, want, cost)
		}
	}
}

func checkPermutation(t *testing.T, assign []int, m int) {
	t.Helper()
	seen := make(map[int]bool)
	for _, j := range assign {
		if j < 0 || j >= m || seen[j] {
			t.Fatalf("assignment not injective: %v", assign)
		}
		seen[j] = true
	}
}

// bruteForce enumerates all injective row→column maps.
func bruteForce(cost [][]float64) ([]int, float64) {
	n := len(cost)
	m := len(cost[0])
	bestAssign := make([]int, n)
	best := math.Inf(1)
	cur := make([]int, n)
	used := make([]bool, m)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			copy(bestAssign, cur)
			return
		}
		for j := 0; j < m; j++ {
			if used[j] || math.IsInf(cost[i][j], 1) {
				continue
			}
			used[j] = true
			cur[i] = j
			rec(i+1, acc+cost[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return bestAssign, best
}

func BenchmarkHungarian20x20(b *testing.B) {
	rng := rand.New(rand.NewPCG(13, 14))
	cost := make([][]float64, 20)
	for i := range cost {
		cost[i] = make([]float64, 20)
		for j := range cost[i] {
			cost[i][j] = rng.Float64()
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Solve(cost)
	}
}
