// Package hungarian implements the O(n³) Hungarian (Kuhn–Munkres) algorithm
// for the linear assignment problem, in the potentials/shortest-augmenting-
// path formulation. Algorithm 1 of the paper uses it to map stream groups to
// edge servers while minimizing total transmission latency.
package hungarian

import "math"

// Solve assigns each of the n rows of cost to a distinct column (cost must
// be n×m with m ≥ n) minimizing the total cost. It returns the column index
// chosen for each row and the total cost.
//
// Infeasible pairs can be encoded with a large-but-finite cost; +Inf entries
// are handled by substituting a finite sentinel larger than any other cost.
func Solve(cost [][]float64) (assign []int, total float64) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	m := len(cost[0])
	if m < n {
		panic("hungarian: need at least as many columns as rows")
	}

	// Replace +Inf with a finite sentinel so the potentials stay finite.
	var maxFinite float64
	for _, row := range cost {
		if len(row) != m {
			panic("hungarian: ragged cost matrix")
		}
		for _, c := range row {
			if !math.IsInf(c, 1) && c > maxFinite {
				maxFinite = c
			}
		}
	}
	sentinel := (maxFinite + 1) * float64(n+1)
	at := func(i, j int) float64 {
		c := cost[i][j]
		if math.IsInf(c, 1) {
			return sentinel
		}
		return c
	}

	// 1-indexed potentials, as in the classic e-maxx formulation.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row matched to column j (0 = none)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := at(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Augment along the alternating path.
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	for i, j := range assign {
		total += at(i, j)
	}
	return assign, total
}
