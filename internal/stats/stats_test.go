package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestNormPDF(t *testing.T) {
	if got := NormPDF(0); math.Abs(got-0.3989422804014327) > 1e-15 {
		t.Fatalf("NormPDF(0) = %v", got)
	}
	if got := NormPDF(1); math.Abs(got-0.24197072451914337) > 1e-15 {
		t.Fatalf("NormPDF(1) = %v", got)
	}
}

func TestNormCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormCDF(c.z); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormLogCDFContinuity(t *testing.T) {
	// The asymptotic branch must agree with the direct branch near the
	// switch point z = -8.
	for _, z := range []float64{-7.9, -7.99, -8.01, -8.5, -10, -20, -35} {
		direct := math.Log(0.5 * math.Erfc(-z*invSqrt2))
		got := NormLogCDF(z)
		if z > -36 && !math.IsInf(direct, -1) {
			if math.Abs(got-direct) > 1e-6*math.Abs(direct) {
				t.Errorf("NormLogCDF(%v) = %v, direct = %v", z, got, direct)
			}
		}
	}
	// Far tail must stay finite where naive log underflows to -Inf.
	if got := NormLogCDF(-50); math.IsInf(got, -1) || math.IsNaN(got) {
		t.Fatalf("NormLogCDF(-50) = %v", got)
	}
}

func TestInvMills(t *testing.T) {
	// Direct region.
	if got, want := InvMills(0), NormPDF(0)/0.5; math.Abs(got-want) > 1e-14 {
		t.Fatalf("InvMills(0) = %v, want %v", got, want)
	}
	// Continuity at the branch switch.
	for _, z := range []float64{-7.9, -8.1} {
		direct := NormPDF(z) / NormCDF(z)
		if math.Abs(InvMills(z)-direct) > 1e-4*direct {
			t.Errorf("InvMills(%v) = %v, direct %v", z, InvMills(z), direct)
		}
	}
	// Asymptotic behaviour: InvMills(z) ≈ -z for z ≪ 0 and stays finite.
	for _, z := range []float64{-20, -100, -1000} {
		got := InvMills(z)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("InvMills(%v) = %v", z, got)
		}
		if got < -z || got > -z*1.02 {
			t.Errorf("InvMills(%v) = %v, want slightly above %v", z, got, -z)
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-4, 0.01, 0.1, 0.5, 0.9, 0.99, 1 - 1e-6} {
		z := NormQuantile(p)
		if got := NormCDF(z); math.Abs(got-p) > 1e-10 {
			t.Errorf("Φ(Φ⁻¹(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("NormQuantile endpoints wrong")
	}
	if !math.IsNaN(NormQuantile(-0.5)) || !math.IsNaN(NormQuantile(1.5)) {
		t.Error("NormQuantile out-of-range should be NaN")
	}
}

func TestEMaxGaussianPair(t *testing.T) {
	// Degenerate: same variable → max is the variable's mean.
	if got := EMaxGaussianPair(2, 2, 1, 1, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("degenerate EMax = %v", got)
	}
	// Independent standard normals: E[max] = 1/√π.
	want := 1 / math.Sqrt(math.Pi)
	if got := EMaxGaussianPair(0, 0, 1, 1, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EMax std = %v, want %v", got, want)
	}
	// Dominant mean: E[max] ≈ larger mean when separation is huge.
	if got := EMaxGaussianPair(100, 0, 1, 1, 0); math.Abs(got-100) > 1e-9 {
		t.Fatalf("EMax dominant = %v", got)
	}
	// Monte-Carlo cross-check on a correlated pair.
	rng := NewRNG(42)
	mu1, mu2, s1, s2, rho := 0.3, -0.2, 1.5, 0.7, 0.6
	c12 := rho * s1 * s2
	var sum float64
	const n = 400000
	for i := 0; i < n; i++ {
		z1 := rng.NormFloat64()
		z2 := rho*z1 + math.Sqrt(1-rho*rho)*rng.NormFloat64()
		a := mu1 + s1*z1
		b := mu2 + s2*z2
		sum += math.Max(a, b)
	}
	mc := sum / n
	got := EMaxGaussianPair(mu1, mu2, s1, s2, c12)
	if math.Abs(got-mc) > 0.01 {
		t.Fatalf("EMax analytic %v vs MC %v", got, mc)
	}
}

func TestHaltonProperties(t *testing.T) {
	rng := NewRNG(7)
	pts := Halton(256, 5, rng)
	if len(pts) != 256 || len(pts[0]) != 5 {
		t.Fatal("Halton shape wrong")
	}
	for _, p := range pts {
		for j, x := range p {
			if x < 0 || x >= 1 {
				t.Fatalf("Halton point out of range: dim %d = %v", j, x)
			}
		}
	}
	// Low discrepancy sanity: per-dimension mean close to 0.5.
	for j := 0; j < 5; j++ {
		var s float64
		for _, p := range pts {
			s += p[j]
		}
		m := s / 256
		if math.Abs(m-0.5) > 0.06 {
			t.Errorf("Halton dim %d mean = %v", j, m)
		}
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	rng := NewRNG(9)
	n, d := 20, 3
	pts := LatinHypercube(n, d, rng)
	for j := 0; j < d; j++ {
		hit := make([]bool, n)
		for _, p := range pts {
			k := int(p[j] * float64(n))
			if k < 0 || k >= n || hit[k] {
				t.Fatalf("dim %d stratum %d violated", j, k)
			}
			hit[k] = true
		}
	}
}

func TestFirstPrimes(t *testing.T) {
	got := firstPrimes(10)
	want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firstPrimes = %v", got)
		}
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 1.25 {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if math.Abs(Std(xs)-math.Sqrt(1.25)) > 1e-15 {
		t.Errorf("Std = %v", Std(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice conventions violated")
	}
}

func TestR2(t *testing.T) {
	obs := []float64{1, 2, 3}
	if got := R2(obs, obs); got != 1 {
		t.Errorf("perfect R2 = %v", got)
	}
	mean := []float64{2, 2, 2}
	if got := R2(obs, mean); got != 0 {
		t.Errorf("mean-predictor R2 = %v", got)
	}
	if got := R2([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Errorf("constant obs perfect R2 = %v", got)
	}
	if got := R2([]float64{5, 5}, []float64{4, 6}); got != 0 {
		t.Errorf("constant obs imperfect R2 = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	sort.Float64s(xs)
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

// Property: NormCDF is monotone and maps to (0,1).
func TestNormCDFMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Bound inputs to a sane range to avoid denormal noise.
		a = math.Mod(a, 40)
		b = math.Mod(b, 40)
		lo, hi := math.Min(a, b), math.Max(a, b)
		ca, cb := NormCDF(lo), NormCDF(hi)
		return ca <= cb && ca >= 0 && cb <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
