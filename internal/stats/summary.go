package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// R2 returns the coefficient of determination of predictions pred against
// observations obs: R² = 1 - Σ(y-ŷ)²/Σ(y-ȳ)². A constant obs series with a
// perfect prediction returns 1; a constant obs series with any error
// returns -Inf-free 0 by convention.
func R2(obs, pred []float64) float64 {
	if len(obs) != len(pred) {
		panic("stats: R2 length mismatch")
	}
	if len(obs) == 0 {
		return 0
	}
	m := Mean(obs)
	var ssRes, ssTot float64
	for i, y := range obs {
		r := y - pred[i]
		ssRes += r * r
		d := y - m
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// MeanStd returns both the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), Std(xs)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation of the sorted order statistics. xs must be sorted ascending.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
