package stats

import (
	"math/rand/v2"
)

// NewRNG returns a seeded PCG-backed random source. All stochastic code in
// this repository takes an explicit *rand.Rand so experiments are
// reproducible.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// SplitMix64 is the finalizer of the splitmix64 generator: a bijective
// mixing of the 64-bit input whose outputs pass statistical tests even on
// sequential inputs. Use it to derive independent PCG seed words from
// structured counters — because it is a bijection, distinct inputs can
// never collide, unlike ad-hoc XOR/multiply schemes (Seed^(k·GOLDEN) maps
// both (0, 0) and (GOLDEN, 1) to the same stream).
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Halton fills out with n points of the d-dimensional scrambled Halton
// low-discrepancy sequence in [0,1)^d. The per-dimension digit permutations
// are drawn from rng, which both breaks the correlation artifacts of the
// plain Halton sequence in high dimensions and makes repeated calls produce
// different point sets.
func Halton(n, d int, rng *rand.Rand) [][]float64 {
	primes := firstPrimes(d)
	perms := make([][]int, d)
	for j, p := range primes {
		perm := rng.Perm(p)
		// A scramble must keep 0 → 0, otherwise trailing (implicit) zero
		// digits shift every point.
		for k, v := range perm {
			if v == 0 {
				perm[0], perm[k] = perm[k], perm[0]
				break
			}
		}
		perms[j] = perm
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		pt := make([]float64, d)
		for j, p := range primes {
			pt[j] = radicalInverse(i+1, p, perms[j])
		}
		out[i] = pt
	}
	return out
}

// radicalInverse returns the base-p radical inverse of k with scrambled
// digits.
func radicalInverse(k, p int, perm []int) float64 {
	var v float64
	f := 1.0 / float64(p)
	scale := f
	for k > 0 {
		v += float64(perm[k%p]) * scale
		k /= p
		scale *= f
	}
	return v
}

// firstPrimes returns the first n primes.
func firstPrimes(n int) []int {
	out := make([]int, 0, n)
	for c := 2; len(out) < n; c++ {
		isPrime := true
		for _, p := range out {
			if p*p > c {
				break
			}
			if c%p == 0 {
				isPrime = false
				break
			}
		}
		if isPrime {
			out = append(out, c)
		}
	}
	return out
}

// LatinHypercube returns n stratified samples in [0,1)^d: each dimension is
// divided into n equal strata and each stratum is hit exactly once.
func LatinHypercube(n, d int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
	}
	for j := 0; j < d; j++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			out[i][j] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return out
}
