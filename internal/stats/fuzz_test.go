package stats

import (
	"math"
	"testing"
)

// FuzzNormalConsistency checks Φ/Φ⁻¹/logΦ/InvMills mutual consistency on
// arbitrary inputs.
func FuzzNormalConsistency(f *testing.F) {
	f.Add(0.0)
	f.Add(-8.001)
	f.Add(3.7)
	f.Add(-30.0)
	f.Fuzz(func(t *testing.T, z float64) {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return
		}
		z = math.Mod(z, 38)
		c := NormCDF(z)
		if c < 0 || c > 1 {
			t.Fatalf("Φ(%v) = %v", z, c)
		}
		// log Φ matches direct log where the direct value is representable.
		if c > 1e-300 {
			if d := math.Abs(NormLogCDF(z) - math.Log(c)); d > 1e-4*math.Abs(math.Log(c))+1e-12 {
				t.Fatalf("NormLogCDF(%v) = %v, log Φ = %v", z, NormLogCDF(z), math.Log(c))
			}
		}
		// Inverse Mills is positive and finite.
		im := InvMills(z)
		if im <= 0 || math.IsNaN(im) || math.IsInf(im, 0) {
			t.Fatalf("InvMills(%v) = %v", z, im)
		}
		// Quantile round trip where the inverse is well-conditioned: near
		// p = 1 the CDF is flat and one ulp of p moves z by ~ulp/φ(z), so
		// restrict to the band where that amplification stays below ~1e-9.
		if c > 1e-6 && c < 1-1e-6 {
			if d := math.Abs(NormQuantile(c) - z); d > 1e-6 {
				t.Fatalf("Φ⁻¹(Φ(%v)) off by %v", z, d)
			}
		}
	})
}

// FuzzQuantileBounds checks Quantile stays within the sample range.
func FuzzQuantileBounds(f *testing.F) {
	f.Add(uint64(3), 0.5)
	f.Add(uint64(11), 0.99)
	f.Fuzz(func(t *testing.T, seed uint64, q float64) {
		if math.IsNaN(q) {
			return
		}
		q = math.Mod(math.Abs(q), 1)
		rng := NewRNG(seed)
		n := 1 + int(seed%50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		// Sort ascending.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		v := Quantile(xs, q)
		if v < xs[0]-1e-12 || v > xs[n-1]+1e-12 {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, xs[0], xs[n-1])
		}
	})
}
