// Package stats provides the probability and sampling utilities used across
// the GP / Bayesian-optimization stack: standard normal pdf/cdf/quantile
// with numerically stable tails, low-discrepancy and Latin hypercube
// sampling, and small summary-statistics helpers.
package stats

import "math"

const (
	invSqrt2   = 0.7071067811865476  // 1/√2
	invSqrt2Pi = 0.3989422804014327  // 1/√(2π)
	log2Pi     = 1.8378770664093453  // log(2π)
)

// NormPDF returns the standard normal density φ(z).
func NormPDF(z float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*z*z)
}

// NormCDF returns the standard normal distribution function Φ(z).
func NormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z*invSqrt2)
}

// NormLogCDF returns log Φ(z), stable for z far into the left tail where
// Φ(z) underflows. For z < -8 it uses the asymptotic expansion
// log Φ(z) ≈ -z²/2 - log(-z) - log(2π)/2 + log(1 - 1/z² + 3/z⁴).
func NormLogCDF(z float64) float64 {
	if z > -8 {
		return math.Log(NormCDF(z))
	}
	z2 := z * z
	z4 := z2 * z2
	corr := math.Log1p(-1/z2 + 3/z4 - 15/(z4*z2) + 105/(z4*z4))
	return -0.5*z2 - math.Log(-z) - 0.5*log2Pi + corr
}

// InvMills returns the inverse Mills ratio φ(z)/Φ(z), stable for very
// negative z where both terms underflow. As z → -∞ the ratio approaches
// -z + small corrections; we compute it via the asymptotic series
// φ/Φ ≈ -z / (1 - 1/z² + 3/z⁴ - 15/z⁶).
func InvMills(z float64) float64 {
	if z > -8 {
		return NormPDF(z) / NormCDF(z)
	}
	z2 := z * z
	z4 := z2 * z2
	den := 1 - 1/z2 + 3/z4 - 15/(z4*z2) + 105/(z4*z4)
	return -z / den
}

// NormQuantile returns Φ⁻¹(p) for p in (0,1). It bisects Φ over [-40, 40],
// which is monotone and computable via Erfc across that whole range; 90
// bisection steps pin the root to well below double precision. This routine
// is not on any hot path, so robustness beats speed.
func NormQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 90; i++ {
		mid := 0.5 * (lo + hi)
		if NormCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// EMaxGaussianPair returns E[max(A, B)] for jointly Gaussian A ~ N(mu1, s1²),
// B ~ N(mu2, s2²) with covariance c12. This is the closed form used by the
// EUBO acquisition function:
//
//	E[max] = mu1·Φ(δ) + mu2·Φ(-δ) + θ·φ(δ),  θ = √(s1²+s2²-2c12), δ = (mu1-mu2)/θ.
func EMaxGaussianPair(mu1, mu2, s1, s2, c12 float64) float64 {
	theta2 := s1*s1 + s2*s2 - 2*c12
	if theta2 <= 1e-18 {
		return math.Max(mu1, mu2)
	}
	theta := math.Sqrt(theta2)
	delta := (mu1 - mu2) / theta
	return mu1*NormCDF(delta) + mu2*NormCDF(-delta) + theta*NormPDF(delta)
}
