// Package core is the paper's primary contribution — the PaMO
// preference-aware multi-objective Bayesian-optimization scheduler
// (Algorithm 2) — under the canonical name prescribed by the repository
// layout. The implementation lives in repro/internal/pamo together with
// its outcome models and solution search; this package re-exports the
// public surface so code that navigates by layout finds the contribution
// here.
package core

import (
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
)

// Re-exported types of the PaMO scheduler.
type (
	// Scheduler is the PaMO scheduler instance.
	Scheduler = pamo.Scheduler
	// Options tunes a PaMO run.
	Options = pamo.Options
	// Result is the output of a PaMO run.
	Result = pamo.Result
	// Observation is one evaluated full-system configuration.
	Observation = pamo.Observation
	// Acquisition selects the acquisition function.
	Acquisition = pamo.Acquisition
)

// Acquisition function choices (the paper's qNEI plus ablation variants).
const (
	QNEI = pamo.QNEI
	QEI  = pamo.QEI
	QUCB = pamo.QUCB
	QSR  = pamo.QSR
)

// New builds a PaMO scheduler for the system; dm answers the pairwise
// preference comparisons (ignored for the PaMO+ variant).
func New(sys *objective.System, dm pref.DecisionMaker, opt Options) *Scheduler {
	return pamo.New(sys, dm, opt)
}
