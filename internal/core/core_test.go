package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/objective"
	"repro/internal/pref"
	"repro/internal/videosim"
)

func TestCoreAliasRunsPaMO(t *testing.T) {
	sys := &objective.System{
		Clips: videosim.StandardClips(4, 3),
		Servers: []cluster.Server{
			{Uplink: 10e6}, {Uplink: 20e6}, {Uplink: 30e6},
		},
	}
	truth := objective.UniformPreference()
	s := New(sys, &pref.Oracle{Pref: truth}, Options{
		InitProfiles: 10, InitObs: 2, PrefPairs: 6, PrefPool: 8,
		Batch: 2, MCSamples: 8, CandPool: 6, MaxIter: 2,
		Acq: QNEI, Seed: 4, UseEUBO: true,
	})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Decision.Configs == nil {
		t.Fatal("no decision")
	}
}
