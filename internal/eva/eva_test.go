package eva

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/objective"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/videosim"
)

func sys(m, n int) *objective.System {
	servers := make([]cluster.Server, n)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: float64(10+5*j) * 1e6}
	}
	return &objective.System{Clips: videosim.StandardClips(m, 23), Servers: servers}
}

func midCfgs(m int) []videosim.Config {
	cfgs := make([]videosim.Config, m)
	for i := range cfgs {
		cfgs[i] = videosim.Config{Resolution: 1000, FPS: 10}
	}
	return cfgs
}

func TestBuildStreamsSplitsHighRate(t *testing.T) {
	s := sys(2, 2)
	cfgs := []videosim.Config{
		{Resolution: 2000, FPS: 30}, // s·p ≈ 2.1 → split
		{Resolution: 500, FPS: 5},
	}
	streams := BuildStreams(s, cfgs)
	if len(streams) <= 2 {
		t.Fatalf("expected splitting, got %d streams", len(streams))
	}
	var subs int
	for _, st := range streams {
		if st.Video == 0 {
			subs++
			if st.Proc > st.Period.Float()+1e-12 {
				t.Fatalf("sub-stream still self-queues: p=%v T=%v", st.Proc, st.Period.Float())
			}
		}
	}
	if subs < 2 {
		t.Fatalf("video 0 split into %d", subs)
	}
}

func TestBuildStreamsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildStreams(sys(2, 1), midCfgs(3))
}

func TestEvaluateMatchesAnalyticWhenUncontended(t *testing.T) {
	s := sys(3, 3)
	cfgs := midCfgs(3)
	streams := BuildStreams(s, cfgs)
	plan, err := sched.Schedule(streams, s.Servers)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]cluster.StreamSpec, len(streams))
	for i, st := range streams {
		specs[i] = cluster.StreamSpec{Period: st.Period.Float(), Proc: st.Proc, Bits: st.Bits}
	}
	offsets := make([]float64, len(streams))
	for g, members := range plan.Groups {
		if len(members) == 0 {
			continue
		}
		sub := make([]cluster.StreamSpec, len(members))
		for k, si := range members {
			sub[k] = specs[si]
		}
		sub = cluster.ZeroJitterOffsets(sub, s.Servers[plan.GroupServer[g]].Uplink)
		for k, si := range members {
			offsets[si] = sub[k].Offset
		}
	}
	d := Decision{Configs: cfgs, Streams: streams, Assign: plan.StreamServer, Offsets: offsets, ZeroJit: true}
	measured := Evaluate(s, d)
	analytic := AnalyticOutcomes(s, d)
	// Zero-jitter plan → DES latency equals the analytic Eq. 5 latency.
	if math.Abs(measured[objective.Latency]-analytic[objective.Latency]) > 1e-6 {
		t.Fatalf("measured latency %v vs analytic %v", measured[objective.Latency], analytic[objective.Latency])
	}
	for _, k := range []objective.Objective{objective.Accuracy, objective.Network, objective.Compute, objective.Energy} {
		if measured[k] != analytic[k] {
			t.Fatalf("%s differs: %v vs %v", objective.Names[k], measured[k], analytic[k])
		}
	}
	if MaxJitter(s, d) > cluster.JitterEps {
		t.Fatal("zero-jitter plan jittered in simulation")
	}
}

func TestEvaluatePenalizesContention(t *testing.T) {
	s := sys(4, 2)
	cfgs := make([]videosim.Config, 4)
	for i := range cfgs {
		cfgs[i] = videosim.Config{Resolution: 2000, FPS: 30} // heavy
	}
	streams := BuildStreams(s, cfgs)
	// Pile everything on server 0 with random offsets: contention city.
	assign := make([]int, len(streams))
	rng := stats.NewRNG(1)
	bad := Decision{Configs: cfgs, Streams: streams, Assign: assign, Offsets: RandomOffsets(streams, rng)}
	measured := Evaluate(s, bad)
	analytic := AnalyticOutcomes(s, bad)
	if measured[objective.Latency] < 2*analytic[objective.Latency] {
		t.Fatalf("contended latency %v not ≫ analytic %v", measured[objective.Latency], analytic[objective.Latency])
	}
}

func TestRandomOffsetsWithinPeriod(t *testing.T) {
	s := sys(3, 2)
	streams := BuildStreams(s, midCfgs(3))
	offs := RandomOffsets(streams, stats.NewRNG(2))
	for i, o := range offs {
		if o < 0 || o >= streams[i].Period.Float() {
			t.Fatalf("offset %v outside [0, %v)", o, streams[i].Period.Float())
		}
	}
}

func TestConfigGridSize(t *testing.T) {
	grid := ConfigGrid()
	want := len(videosim.Resolutions) * len(videosim.FrameRates)
	if len(grid) != want {
		t.Fatalf("grid size %d, want %d", len(grid), want)
	}
}

func TestEvaluateValidation(t *testing.T) {
	s := sys(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate(s, Decision{Configs: midCfgs(1), Streams: BuildStreams(s, midCfgs(1)), Assign: nil})
}
