// Package eva holds the shared decision types and the ground-truth
// evaluation path used by PaMO and the baseline schedulers alike: a
// Decision (per-video configurations + post-split stream assignment +
// capture offsets), helpers to build schedulable streams from
// configurations, and an evaluator that scores a decision on the real
// system — analytic Eqs. (2)–(4) for accuracy/bandwidth/compute/energy and
// the discrete-event simulator for end-to-end latency, so that queueing
// and delay jitter caused by poor scheduling actually hurt, exactly as on
// the paper's testbed.
package eva

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/cluster"
	"repro/internal/objective"
	"repro/internal/sched"
	"repro/internal/videosim"
)

// Decision is a complete scheduling decision for a System.
type Decision struct {
	Configs []videosim.Config // per video source
	Streams []sched.Stream    // post-split periodic streams
	Assign  []int             // per stream: server index
	Offsets []float64         // per stream: capture offset (nil = all zero)
	ZeroJit bool              // true when offsets follow Theorem 1

	// Shed lists video indices dropped by the degradation policy: they
	// have no entries in Streams and contribute nothing to any outcome.
	// Downgraded lists videos running below the configuration the planner
	// originally wanted (Configs holds the configuration actually running).
	// Both are sorted and nil for ordinary full-capacity decisions.
	Shed       []int
	Downgraded []int
}

// IsDegraded reports whether the decision came out of the degradation
// policy (any stream shed or downgraded).
func (d Decision) IsDegraded() bool { return len(d.Shed) > 0 || len(d.Downgraded) > 0 }

// ShedSet returns Shed as a membership mask over m videos (nil when
// nothing was shed).
func (d Decision) ShedSet(m int) []bool {
	if len(d.Shed) == 0 {
		return nil
	}
	set := make([]bool, m)
	for _, i := range d.Shed {
		if i >= 0 && i < m {
			set[i] = true
		}
	}
	return set
}

// BuildStreams converts per-video configurations into post-split periodic
// streams using the system's ground-truth processing/frame-size curves.
// Schedulers that must not peek at ground truth (PaMO) build their own
// stream lists from model estimates instead.
func BuildStreams(sys *objective.System, cfgs []videosim.Config) []sched.Stream {
	if len(cfgs) != sys.M() {
		panic(fmt.Sprintf("eva: %d configs for %d videos", len(cfgs), sys.M()))
	}
	streams := make([]sched.Stream, sys.M())
	for i, c := range sys.Clips {
		streams[i] = sched.Stream{
			Video:  i,
			Period: sched.RatFromFPS(int64(math.Round(cfgs[i].FPS))),
			Proc:   c.ProcTimeOf(cfgs[i]),
			Bits:   c.BitsOf(cfgs[i]),
		}
	}
	return sched.SplitHighRate(streams)
}

// RandomOffsets draws a capture offset in [0, T) for every stream — the
// uncoordinated-camera behaviour baseline schedulers get.
func RandomOffsets(streams []sched.Stream, rng *rand.Rand) []float64 {
	out := make([]float64, len(streams))
	for i, s := range streams {
		out[i] = rng.Float64() * s.Period.Float()
	}
	return out
}

// EvalHorizon is the simulated wall-clock used to measure latency (s).
const EvalHorizon = 30.0

// Evaluate scores a decision against ground truth. Accuracy, bandwidth,
// compute and energy follow Eqs. (2)–(4) analytically from the per-video
// configurations; latency is measured by simulating the post-split streams
// on the cluster, so queueing delay and jitter from bad placements are paid
// for.
func Evaluate(sys *objective.System, d Decision) objective.Vector {
	if len(d.Streams) != len(d.Assign) {
		panic(fmt.Sprintf("eva: %d streams vs %d assignments", len(d.Streams), len(d.Assign)))
	}
	var v objective.Vector
	m := float64(sys.M())
	for i, c := range sys.Clips {
		cfg := d.Configs[i]
		v[objective.Accuracy] += c.Accuracy(cfg) / m
		v[objective.Network] += c.Bandwidth(cfg)
		v[objective.Compute] += c.Compute(cfg)
		v[objective.Energy] += c.Power(cfg)
	}

	specs := make([]cluster.StreamSpec, len(d.Streams))
	for i, s := range d.Streams {
		off := 0.0
		if d.Offsets != nil {
			off = d.Offsets[i]
		}
		specs[i] = cluster.StreamSpec{
			Name:   fmt.Sprintf("v%d.%d", s.Video, s.Sub),
			Period: s.Period.Float(),
			Offset: off,
			Proc:   s.Proc,
			Bits:   s.Bits,
		}
	}
	results := cluster.SimulateCluster(specs, sys.Servers, cluster.Assignment(d.Assign), EvalHorizon)
	v[objective.Latency] = cluster.MeanLatency(results)
	return v
}

// MaxJitter reports the worst simulated per-stream jitter of a decision —
// the quantity Theorem 1 guarantees to be zero for Algorithm 1 plans.
func MaxJitter(sys *objective.System, d Decision) float64 {
	specs := make([]cluster.StreamSpec, len(d.Streams))
	for i, s := range d.Streams {
		off := 0.0
		if d.Offsets != nil {
			off = d.Offsets[i]
		}
		specs[i] = cluster.StreamSpec{
			Period: s.Period.Float(), Offset: off, Proc: s.Proc, Bits: s.Bits,
		}
	}
	results := cluster.SimulateCluster(specs, sys.Servers, cluster.Assignment(d.Assign), EvalHorizon)
	return cluster.MaxJitter(results)
}

// AnalyticOutcomes scores a decision with the purely analytic latency of
// Eq. (5) (per-frame processing + transmission, no queueing), which is
// what model-based planners reason with.
func AnalyticOutcomes(sys *objective.System, d Decision) objective.Vector {
	var v objective.Vector
	m := float64(sys.M())
	for i, c := range sys.Clips {
		cfg := d.Configs[i]
		v[objective.Accuracy] += c.Accuracy(cfg) / m
		v[objective.Network] += c.Bandwidth(cfg)
		v[objective.Compute] += c.Compute(cfg)
		v[objective.Energy] += c.Power(cfg)
	}
	var lat float64
	for i, s := range d.Streams {
		b := sys.Servers[d.Assign[i]].Uplink
		tx := 0.0
		if b > 0 {
			tx = s.Bits / b
		}
		lat += s.Proc + tx
	}
	if len(d.Streams) > 0 {
		v[objective.Latency] = lat / float64(len(d.Streams))
	}
	return v
}

// ConfigGrid enumerates the standard knob grid as (resolution, fps) pairs.
func ConfigGrid() []videosim.Config {
	var out []videosim.Config
	for _, r := range videosim.Resolutions {
		for _, s := range videosim.FrameRates {
			out = append(out, videosim.Config{Resolution: r, FPS: s})
		}
	}
	return out
}
