package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/optim"
)

// SparseOptions tunes the inducing-point approximation.
type SparseOptions struct {
	// MaxInducing caps the inducing set size m. Defaults to 64.
	MaxInducing int
	// ResidualTol stops greedy inducing selection once the largest
	// Nyström diagonal residual falls below ResidualTol times the mean
	// prior variance, and gates promotion of new observations into the
	// inducing set by the same relative threshold. Defaults to 1e-6.
	ResidualTol float64
	// MaxObs, when positive, budget-caps the observation set: every
	// AddObservation beyond the cap forgets the retained observation whose
	// leave-one-out impact on the incumbent's posterior is smallest.
	// 0 keeps every observation.
	MaxObs int
}

func (o SparseOptions) withDefaults() SparseOptions {
	if o.MaxInducing <= 0 {
		o.MaxInducing = 64
	}
	if o.ResidualTol <= 0 {
		o.ResidualTol = 1e-6
	}
	return o
}

// SparseStats are cumulative lifecycle counters for one SparseGP; the
// scheduler layer diffs them into its telemetry so the gp package stays free
// of the obs dependency.
type SparseStats struct {
	Obs          uint64 // observations conditioned (Fit points + AddObservation)
	InducingAdds uint64 // inducing points selected or promoted
	Forgets      uint64 // observations dropped by the MaxObs budget
}

// SparseGP is an inducing-point sparse Gaussian process regressor — a
// subset-of-regressors (SoR) posterior with the FITC variance correction —
// satisfying the same contract as the exact GP while predicting in O(m) /
// O(m²) and absorbing new observations in O(nm + m²) amortized (O(nm + m³)
// worst case, when a point is promoted into the inducing set), with m ≪ n.
//
// The posterior is parameterized by the inducing set Z (chosen greedily by
// pivoted-Cholesky/Nyström diagonal residual), P = K_uu + σ⁻²·K_uf·K_fu and
// its Cholesky factor (rank-1 updated per observation), and the running
// moments s1 = K_uf·1, sy = K_uf·y. Predictions:
//
//	μ(x)      = μ₀ + φ(x)ᵀ·α,              α = P⁻¹·σ⁻²·(sy − μ₀·s1)
//	cov(a,b)  = k(a,b) − φaᵀK_uu⁻¹φb + φaᵀP⁻¹φb
//
// where φ(x) = k(Z, x). With Z = X (m ≥ n) both collapse to the exact GP
// posterior — the equivalence FuzzSparseVsExactGP pins.
//
// Unlike the exact GP, dropping an observation does not invalidate the
// inducing locations: Z stores its own copies, so a forgotten point's
// location can keep anchoring the approximation.
type SparseGP struct {
	Kern     kernel.Kernel
	NoiseVar float64

	opt SparseOptions

	x           [][]float64
	y           mat.Vector
	mean        float64
	sumY, sumY2 float64

	z   [][]float64 // inducing inputs (owned copies)
	phi [][]float64 // phi[i][j] = k(x_i, z_j)
	kuu *mat.Matrix // prior inducing covariance K_uu
	luu *mat.Cholesky
	p   *mat.Matrix // K_uu + σ⁻²·K_uf·K_fu
	lp  *mat.Cholesky
	s1  mat.Vector // Σᵢ φᵢ
	sy  mat.Vector // Σᵢ yᵢ·φᵢ
	// lev[i] = φᵢᵀP⁻¹φᵢ, maintained by Sherman–Morrison through rank-1
	// changes of P so the forgetting rule ranks leverages in O(nm) instead
	// of O(nm²) per drop; recomputed exactly on every rebuild/promotion.
	lev   mat.Vector
	alpha mat.Vector
	gen   uint64

	selResidual float64 // max Nyström diagonal residual after selection

	incumbent []float64
	fallbacks *atomic.Uint64
	stats     SparseStats

	scratch mat.Vector // m-sized scratch for rank-1 factor updates
}

// NewSparse returns an unfitted sparse GP with the given kernel, noise
// variance, and approximation options.
func NewSparse(k kernel.Kernel, noiseVar float64, opt SparseOptions) *SparseGP {
	if noiseVar <= 0 {
		noiseVar = 1e-6
	}
	return &SparseGP{Kern: k, NoiseVar: noiseVar, opt: opt.withDefaults()}
}

// SetFallbackCounter injects a per-owner counter incremented whenever this
// model's joint posterior sampling degrades to the deterministic mean.
func (s *SparseGP) SetFallbackCounter(c *atomic.Uint64) { s.fallbacks = c }

// SetIncumbent records the input the forgetting rule should protect: the
// observation whose removal least perturbs the posterior *at this point* is
// the one dropped when the MaxObs budget is exceeded. A nil incumbent falls
// back to each observation's self-impact (leverage-weighted LOO residual).
func (s *SparseGP) SetIncumbent(x []float64) {
	if x == nil {
		s.incumbent = nil
		return
	}
	s.incumbent = append(s.incumbent[:0], x...)
}

// Stats returns the cumulative lifecycle counters.
func (s *SparseGP) Stats() SparseStats { return s.stats }

// M returns the number of inducing points.
func (s *SparseGP) M() int { return len(s.z) }

// SelectionResidual returns the largest Nyström diagonal residual left after
// the last greedy inducing selection — 0 when the inducing set reproduces
// the training kernel exactly (m ≥ rank), larger as the approximation
// coarsens. Differential tests scale their tolerances with it.
func (s *SparseGP) SelectionResidual() float64 { return s.selResidual }

// N returns the number of retained training points.
func (s *SparseGP) N() int { return len(s.x) }

// X returns the retained training inputs (not a copy).
func (s *SparseGP) X() [][]float64 { return s.x }

// Y returns the retained training targets (not a copy).
func (s *SparseGP) Y() []float64 { return s.y }

// Kernel returns the covariance kernel.
func (s *SparseGP) Kernel() kernel.Kernel { return s.Kern }

// Noise returns the observation noise variance.
func (s *SparseGP) Noise() float64 { return s.NoiseVar }

// SetNoise replaces the observation noise variance. Takes effect at the
// next Fit/refit, like kernel hyperparameter edits.
func (s *SparseGP) SetNoise(v float64) { s.NoiseVar = v }

// Generation identifies the current factorization epoch; it advances on
// every rebuild (Fit, hyperparameter refits, inducing promotion, forgetting)
// and stays put across plain incremental AddObservation updates.
func (s *SparseGP) Generation() uint64 { return s.gen }

// Fit conditions the sparse GP on inputs xs and targets ys, replacing any
// previous training data and reselecting the inducing set greedily.
func (s *SparseGP) Fit(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("gp: %d inputs vs %d targets", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return errors.New("gp: empty training set")
	}
	for i, x := range xs {
		if len(x) != s.Kern.Dim() {
			return fmt.Errorf("gp: input %d has dim %d, kernel wants %d", i, len(x), s.Kern.Dim())
		}
	}
	s.opt = s.opt.withDefaults()
	s.x = xs
	s.y = mat.Vector(ys).Clone()
	s.sumY, s.sumY2 = 0, 0
	for _, v := range s.y {
		s.sumY += v
		s.sumY2 += v * v
	}
	s.mean = s.sumY / float64(len(s.y))
	s.stats.Obs += uint64(len(xs))
	if err := s.refit(); err != nil {
		return err
	}
	s.stats.InducingAdds += uint64(len(s.z))
	return nil
}

// refit reselects the inducing set for the current data and hyperparameters
// and rebuilds every factor. O(n·m² + m³).
func (s *SparseGP) refit() error {
	s.selectInducing()
	return s.rebuild()
}

// selectInducing picks inducing points greedily by pivoted-Cholesky residual
// on the prior training covariance: each step takes the point with the
// largest remaining Nyström diagonal residual d_i = k(x_i,x_i) − ‖c_i‖²,
// stopping at MaxInducing or when max d falls under ResidualTol·scale.
// The raw cross-covariances k(x_i, z_j) evaluated along the way are kept as
// the phi rows, so rebuild pays no second pass of kernel evaluations.
func (s *SparseGP) selectInducing() {
	n := len(s.x)
	mCap := s.opt.MaxInducing
	if mCap > n {
		mCap = n
	}
	d := mat.NewVector(n)
	var scale float64
	for i, xi := range s.x {
		d[i] = s.Kern.Eval(xi, xi)
		scale += d[i]
	}
	scale /= float64(n)
	if scale <= 0 {
		scale = 1
	}
	tol := s.opt.ResidualTol * scale

	s.z = s.z[:0]
	s.phi = s.phi[:0]
	for i := 0; i < n; i++ {
		s.phi = append(s.phi, nil)
	}
	// c[i] is the partial pivoted-Cholesky row of point i; phi[i] the raw
	// cross-covariances to the pivots chosen so far.
	c := make([][]float64, n)
	picked := make([]bool, n)
	for len(s.z) < mCap {
		best, bd := -1, tol
		for i := 0; i < n; i++ {
			if !picked[i] && d[i] > bd {
				best, bd = i, d[i]
			}
		}
		if best < 0 {
			break
		}
		picked[best] = true
		j := len(s.z)
		s.z = append(s.z, append([]float64(nil), s.x[best]...))
		pivot := math.Sqrt(d[best])
		cb := c[best]
		for i := 0; i < n; i++ {
			raw := s.Kern.Eval(s.x[i], s.x[best])
			s.phi[i] = append(s.phi[i], raw)
			if picked[i] && i != best {
				c[i] = append(c[i], 0)
				continue
			}
			proj := raw
			for t := 0; t < j; t++ {
				proj -= c[i][t] * cb[t]
			}
			proj /= pivot
			c[i] = append(c[i], proj)
			d[i] -= proj * proj
			if d[i] < 0 {
				d[i] = 0
			}
		}
		d[best] = 0
	}
	s.selResidual = 0
	for i := 0; i < n; i++ {
		if !picked[i] && d[i] > s.selResidual {
			s.selResidual = d[i]
		}
	}
}

// rebuild recomputes every factor and running moment from z/phi/y, advancing
// the generation. O(n·m² + m³).
func (s *SparseGP) rebuild() error {
	s.gen++
	n, m := len(s.x), len(s.z)
	s.kuu = mat.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := s.Kern.Eval(s.z[i], s.z[j])
			s.kuu.Set(i, j, v)
			s.kuu.Set(j, i, v)
		}
	}
	luu, err := mat.CholJitter(s.kuu)
	if err != nil {
		return fmt.Errorf("gp: inducing covariance factorization: %w", err)
	}
	s.luu = luu

	s.p = s.kuu.Clone()
	inv := 1 / s.NoiseVar
	s.s1 = mat.NewVector(m)
	s.sy = mat.NewVector(m)
	for i := 0; i < n; i++ {
		phi := mat.Vector(s.phi[i])
		mat.SymRank1Update(s.p, phi, inv)
		yi := s.y[i]
		for j, v := range phi {
			s.s1[j] += v
			s.sy[j] += yi * v
		}
	}
	lp, err := mat.CholJitter(s.p)
	if err != nil {
		return fmt.Errorf("gp: inducing posterior factorization: %w", err)
	}
	s.lp = lp
	s.scratch = mat.NewVector(m)
	s.alpha = mat.NewVector(m)
	s.refreshAlpha()
	s.recomputeLeverages()
	return nil
}

// recomputeLeverages recomputes lev[i] = φᵢᵀP⁻¹φᵢ exactly. O(n·m²).
func (s *SparseGP) recomputeLeverages() {
	n := len(s.x)
	if cap(s.lev) < n {
		s.lev = mat.NewVector(n)
	}
	s.lev = s.lev[:n]
	for i := 0; i < n; i++ {
		v := mat.ForwardSolveTo(s.scratch, s.lp.L, s.phi[i])
		s.lev[i] = v.Dot(v)
	}
}

// refreshAlpha re-solves α = P⁻¹·σ⁻²·(sy − μ₀·s1) against the current
// factor. O(m²), allocation-free.
func (s *SparseGP) refreshAlpha() {
	inv := 1 / s.NoiseVar
	for j := range s.scratch {
		s.scratch[j] = inv * (s.sy[j] - s.mean*s.s1[j])
	}
	s.lp.SolveVecTo(s.alpha, s.scratch)
}

// AddObservation appends one training point incrementally: a new phi row
// (m kernel evaluations), a rank-1 update of P and its factor, and an O(m²)
// α re-solve — O(nm) only when the point's Nyström residual earns it a
// promotion into the inducing set (plus an O(m³) refactorization), and when
// the MaxObs budget forces a forget.
func (s *SparseGP) AddObservation(x []float64, y float64) error {
	if len(x) != s.Kern.Dim() {
		return fmt.Errorf("gp: input has dim %d, kernel wants %d", len(x), s.Kern.Dim())
	}
	if s.lp == nil {
		if len(s.x) == 0 {
			return s.Fit([][]float64{x}, []float64{y})
		}
		return ErrNotFitted
	}
	m := len(s.z)
	phi := make([]float64, m, m+1)
	for j, zj := range s.z {
		phi[j] = s.Kern.Eval(zj, x)
	}
	if m < s.opt.MaxInducing {
		// Promote x into the inducing set when the current set cannot
		// represent it: residual k(x,x) − ‖L_uu⁻¹φ‖² above the same
		// relative threshold the greedy selection used.
		kxx := s.Kern.Eval(x, x)
		v := mat.ForwardSolveTo(s.scratch, s.luu.L, phi)
		if resid := kxx - v.Dot(v); resid > s.opt.ResidualTol*kxx {
			promoted, err := s.promote(x, phi, kxx)
			if err != nil {
				return err
			}
			if !promoted {
				// Numerically singular K_uu extension: take the slow path —
				// append the observation and refit from scratch, which
				// reselects the inducing set on the enlarged data.
				s.x = append(s.x, x)
				s.y = append(s.y, y)
				s.sumY += y
				s.sumY2 += y * y
				s.mean = s.sumY / float64(len(s.y))
				s.stats.Obs++
				if err := s.refit(); err != nil {
					return err
				}
				if s.opt.MaxObs > 0 && len(s.x) > s.opt.MaxObs {
					return s.forgetOne()
				}
				return nil
			}
			phi = append(phi, kxx)
		}
	}

	// Sherman–Morrison leverage maintenance for P' = P + σ⁻²·φφᵀ, before
	// the structures change: lev_i ← lev_i − σ⁻²·(φᵢᵀw)²/(1 + σ⁻²·φᵀw),
	// and the new point's own leverage is φᵀw/(1 + σ⁻²·φᵀw).
	inv := 1 / s.NoiseVar
	w := s.lp.SolveVec(phi)
	denom := 1 + inv*mat.Vector(phi).Dot(w)
	for i := range s.lev {
		d := mat.Vector(s.phi[i]).Dot(w)
		s.lev[i] -= inv * d * d / denom
	}
	s.lev = append(s.lev, mat.Vector(phi).Dot(w)/denom)

	s.x = append(s.x, x)
	s.y = append(s.y, y)
	s.phi = append(s.phi, phi)
	s.sumY += y
	s.sumY2 += y * y
	s.mean = s.sumY / float64(len(s.y))
	for j, v := range phi {
		s.s1[j] += v
		s.sy[j] += y * v
	}
	mat.SymRank1Update(s.p, phi, inv)
	sigphi := mat.Vector(s.scratch[:len(phi)])
	for j, v := range phi {
		sigphi[j] = v * math.Sqrt(inv)
	}
	s.lp.Rank1Update(sigphi)
	s.refreshAlpha()
	s.stats.Obs++

	if s.opt.MaxObs > 0 && len(s.x) > s.opt.MaxObs {
		return s.forgetOne()
	}
	return nil
}

// promote adds x (with cross-covariances phi and prior variance kxx) as a
// new inducing point: extends K_uu and its factor, every stored phi row, the
// running moments, and rebuilds P's factor. O(nm + m³). Returns
// promoted=false (without touching any state) when the K_uu extension is
// numerically singular; the caller falls back to a full refit.
func (s *SparseGP) promote(x []float64, phi []float64, kxx float64) (promoted bool, err error) {
	m := len(s.z)
	if err := s.luu.Extend(phi, kxx); err != nil {
		return false, nil
	}
	s.gen++
	s.z = append(s.z, append([]float64(nil), x...))
	kuu := mat.NewMatrix(m+1, m+1)
	for i := 0; i < m; i++ {
		copy(kuu.Row(i)[:m], s.kuu.Row(i))
		kuu.Set(i, m, phi[i])
		kuu.Set(m, i, phi[i])
	}
	kuu.Set(m, m, kxx)
	s.kuu = kuu

	inv := 1 / s.NoiseVar
	p := mat.NewMatrix(m+1, m+1)
	for i := 0; i < m; i++ {
		copy(p.Row(i)[:m], s.p.Row(i))
	}
	var s1n, syn float64
	pcol := mat.NewVector(m + 1)
	for i := range s.x {
		v := s.Kern.Eval(s.x[i], x)
		s.phi[i] = append(s.phi[i], v)
		s1n += v
		syn += s.y[i] * v
		for j, pv := range s.phi[i] {
			pcol[j] += inv * v * pv
		}
	}
	for j := 0; j < m; j++ {
		p.Set(j, m, phi[j]+pcol[j])
		p.Set(m, j, phi[j]+pcol[j])
	}
	p.Set(m, m, kxx+pcol[m])
	s.p = p
	lp, err := mat.CholJitter(s.p)
	if err != nil {
		return false, fmt.Errorf("gp: inducing posterior factorization: %w", err)
	}
	s.lp = lp
	s.s1 = append(s.s1, s1n)
	s.sy = append(s.sy, syn)
	s.scratch = mat.NewVector(m + 1)
	s.alpha = mat.NewVector(m + 1)
	s.refreshAlpha()
	s.recomputeLeverages()
	s.stats.InducingAdds++
	return true, nil
}

// forgetOne drops the retained observation with the smallest leave-one-out
// impact on the incumbent's posterior (see DESIGN.md §16): with leverage
// h_i = σ⁻²·lev_i and LOO residual e_i = (y_i − μ(x_i))/(1 − h_i), removing
// observation i shifts the posterior mean at x* by σ⁻²·φ(x*)ᵀP⁻¹φᵢ·e_i —
// the sparse analogue of the exact closed-form LOO in loo.go. Without an
// incumbent the self-impact h_i·|e_i| at x_i is used. O(nm + m³).
func (s *SparseGP) forgetOne() error {
	n := len(s.x)
	if n <= 1 {
		return nil
	}
	inv := 1 / s.NoiseVar
	var u mat.Vector
	if s.incumbent != nil {
		phiStar := mat.NewVector(len(s.z))
		for j, zj := range s.z {
			phiStar[j] = s.Kern.Eval(zj, s.incumbent)
		}
		u = s.lp.SolveVec(phiStar)
	}
	victim, best := -1, math.Inf(1)
	for i := 0; i < n; i++ {
		h := inv * s.lev[i]
		if h > 0.999 {
			h = 0.999
		} else if h < 0 {
			h = 0
		}
		e := (s.y[i] - s.mean - mat.Vector(s.phi[i]).Dot(s.alpha)) / (1 - h)
		var impact float64
		if u != nil {
			impact = inv * math.Abs(mat.Vector(s.phi[i]).Dot(u)*e)
		} else {
			impact = h * math.Abs(e)
		}
		if impact < best {
			victim, best = i, impact
		}
	}

	phi := mat.Vector(s.phi[victim])
	y := s.y[victim]
	// Sherman–Morrison downdate of the leverages for P' = P − σ⁻²·φφᵀ.
	w := s.lp.SolveVec(phi)
	denom := 1 - inv*phi.Dot(w)
	if denom > 1e-12 {
		for i := range s.lev {
			d := mat.Vector(s.phi[i]).Dot(w)
			s.lev[i] += inv * d * d / denom
		}
	}
	for j, v := range phi {
		s.s1[j] -= v
		s.sy[j] -= y * v
	}
	s.sumY -= y
	s.sumY2 -= y * y
	mat.SymRank1Update(s.p, phi, -inv)
	s.x = append(s.x[:victim], s.x[victim+1:]...)
	s.y = append(s.y[:victim], s.y[victim+1:]...)
	s.phi = append(s.phi[:victim], s.phi[victim+1:]...)
	s.lev = append(s.lev[:victim], s.lev[victim+1:]...)
	s.mean = s.sumY / float64(len(s.y))
	s.stats.Forgets++
	// Rank-1 Cholesky downdates are numerically unstable; refactor the
	// (small, m×m) posterior instead. Leverages were downdated above, so
	// if the refactorization drifted they are still a valid ranking.
	s.gen++
	lp, err := mat.CholJitter(s.p)
	if err != nil {
		return fmt.Errorf("gp: inducing posterior factorization: %w", err)
	}
	s.lp = lp
	s.refreshAlpha()
	return nil
}

// SetTargets replaces the training targets in place (same retained inputs)
// and re-solves α in O(nm + m²) without touching the factors.
func (s *SparseGP) SetTargets(ys []float64) error {
	if s.lp == nil {
		return ErrNotFitted
	}
	if len(ys) != len(s.x) {
		return fmt.Errorf("gp: %d targets for %d inputs", len(ys), len(s.x))
	}
	if &ys[0] != &s.y[0] {
		s.y = mat.Vector(ys).Clone()
	}
	s.sumY, s.sumY2 = 0, 0
	for j := range s.sy {
		s.sy[j] = 0
	}
	for i, v := range s.y {
		s.sumY += v
		s.sumY2 += v * v
		for j, pv := range s.phi[i] {
			s.sy[j] += v * pv
		}
	}
	s.mean = s.sumY / float64(len(s.y))
	s.refreshAlpha()
	return nil
}

// ScaleTargets multiplies every retained target by f — the standardizing
// wrapper's "same data, new scale" refit — in O(m²): the factors depend only
// on inputs and hyperparameters, and the running moments scale linearly.
func (s *SparseGP) ScaleTargets(f float64) error {
	if s.lp == nil {
		return ErrNotFitted
	}
	if f == 1 {
		return nil
	}
	for i := range s.y {
		s.y[i] *= f
	}
	for j := range s.sy {
		s.sy[j] *= f
	}
	s.sumY *= f
	s.sumY2 *= f * f
	s.mean *= f
	s.refreshAlpha()
	return nil
}

// Predict returns the posterior mean and FITC-corrected variance of the
// latent function at x in O(m²). The variance excludes observation noise.
func (s *SparseGP) Predict(x []float64) (mu, variance float64) {
	if s.lp == nil {
		panic(ErrNotFitted)
	}
	m := len(s.z)
	phi := mat.NewVector(m)
	for j, zj := range s.z {
		phi[j] = s.Kern.Eval(zj, x)
	}
	mu = s.mean + phi.Dot(s.alpha)
	v := mat.ForwardSolve(s.luu.L, phi)
	w := mat.ForwardSolve(s.lp.L, phi)
	variance = s.Kern.Eval(x, x) - v.Dot(v) + w.Dot(w)
	if variance < 0 {
		variance = 0
	}
	return mu, variance
}

// PredictMean returns only the posterior mean at x: m kernel evaluations and
// one dot product, allocation-free — the sparse counterpart of the exact
// GP's O(n) hot-loop path.
func (s *SparseGP) PredictMean(x []float64) float64 {
	if s.lp == nil {
		panic(ErrNotFitted)
	}
	var acc float64
	for j, zj := range s.z {
		acc += s.Kern.Eval(zj, x) * s.alpha[j]
	}
	return s.mean + acc
}

// PredictBatch returns the joint posterior mean vector and FITC-corrected
// covariance matrix of the latent function at the query points in
// O(q·m² + q²·m) — sub-quadratic in n, which no longer appears at all.
func (s *SparseGP) PredictBatch(xs [][]float64) (mu mat.Vector, cov *mat.Matrix) {
	if s.lp == nil {
		panic(ErrNotFitted)
	}
	q, m := len(xs), len(s.z)
	vt := mat.NewMatrix(q, m)
	wt := mat.NewMatrix(q, m)
	mu = mat.NewVector(q)
	phi := mat.NewVector(m)
	for j := 0; j < q; j++ {
		for t, zt := range s.z {
			phi[t] = s.Kern.Eval(zt, xs[j])
		}
		mat.ForwardSolveTo(vt.Row(j), s.luu.L, phi)
		mat.ForwardSolveTo(wt.Row(j), s.lp.L, phi)
		mu[j] = s.mean + phi.Dot(s.alpha)
	}
	cov = mat.NewMatrix(q, q)
	for a := 0; a < q; a++ {
		va, wa := vt.Row(a), wt.Row(a)
		for b := a; b < q; b++ {
			acc := s.Kern.Eval(xs[a], xs[b])
			vb, wb := vt.Row(b), wt.Row(b)
			for i := 0; i < m; i++ {
				acc += wa[i]*wb[i] - va[i]*vb[i]
			}
			cov.Set(a, b, acc)
			cov.Set(b, a, acc)
		}
	}
	return mu, cov
}

// PredictBatchWith is PredictBatch with workspace-backed outputs: the
// returned mean vector and covariance matrix live in ws and are valid only
// until the next ws.Reset. Results are bit-identical to PredictBatch; a warm
// workspace makes the call allocation-free.
func (s *SparseGP) PredictBatchWith(ws *mat.Workspace, xs [][]float64) (mu mat.Vector, cov *mat.Matrix) {
	if s.lp == nil {
		panic(ErrNotFitted)
	}
	q, m := len(xs), len(s.z)
	vt := ws.Mat(q, m)
	wt := ws.Mat(q, m)
	mu = ws.Vec(q)
	phi := ws.Vec(m)
	for j := 0; j < q; j++ {
		for t, zt := range s.z {
			phi[t] = s.Kern.Eval(zt, xs[j])
		}
		mat.ForwardSolveTo(vt.Row(j), s.luu.L, phi)
		mat.ForwardSolveTo(wt.Row(j), s.lp.L, phi)
		mu[j] = s.mean + phi.Dot(s.alpha)
	}
	cov = ws.Mat(q, q)
	for a := 0; a < q; a++ {
		va, wa := vt.Row(a), wt.Row(a)
		for b := a; b < q; b++ {
			acc := s.Kern.Eval(xs[a], xs[b])
			vb, wb := vt.Row(b), wt.Row(b)
			for i := 0; i < m; i++ {
				acc += wa[i]*wb[i] - va[i]*vb[i]
			}
			cov.Set(a, b, acc)
			cov.Set(b, a, acc)
		}
	}
	return mu, cov
}

// SampleJoint draws nSamples correlated samples from the joint posterior at
// xs. The result is nSamples×len(xs).
func (s *SparseGP) SampleJoint(xs [][]float64, nSamples int, rng *rand.Rand) [][]float64 {
	mu, cov := s.PredictBatch(xs)
	return SampleMVNCounted(mu, cov, nSamples, rng, s.fallbacks)
}

// SampleJointWith is SampleJoint with workspace-backed intermediates: only
// the returned sample rows are allocated. Draws are bit-identical to
// SampleJoint given the same rng state.
func (s *SparseGP) SampleJointWith(ws *mat.Workspace, xs [][]float64, nSamples int, rng *rand.Rand) [][]float64 {
	mu, cov := s.PredictBatchWith(ws, xs)
	q := len(mu)
	out := make([][]float64, nSamples)
	f := ws.Mat(q, q)
	c, err := mat.CholJitterInto(f, cov)
	if err != nil {
		mvnFallbacks.Add(1)
		if s.fallbacks != nil {
			s.fallbacks.Add(1)
		}
	}
	z := ws.Vec(q)
	for t := 0; t < nSamples; t++ {
		row := make([]float64, q)
		copy(row, mu)
		if err == nil {
			for i := range z {
				z[i] = rng.NormFloat64()
			}
			for i := 0; i < q; i++ {
				var acc float64
				for j := 0; j <= i; j++ {
					acc += c.L.At(i, j) * z[j]
				}
				row[i] += acc
			}
		}
		out[t] = row
	}
	return out
}

// LogMarginalLikelihood returns log p(y | X, θ) under the SoR likelihood
// y ~ N(μ₀, Q_ff + σ²I), evaluated in O(m²) via the Woodbury identity:
// the quadratic form is σ⁻²·rᵀr − bᵀP⁻¹b and the log-determinant is
// log|P| − log|K_uu| + n·log σ². With Z = X it equals the exact marginal.
func (s *SparseGP) LogMarginalLikelihood() float64 {
	if s.lp == nil {
		panic(ErrNotFitted)
	}
	n := float64(len(s.x))
	inv := 1 / s.NoiseVar
	rtr := s.sumY2 - 2*s.mean*s.sumY + n*s.mean*s.mean
	var bDotAlpha float64
	for j := range s.alpha {
		bDotAlpha += inv * (s.sy[j] - s.mean*s.s1[j]) * s.alpha[j]
	}
	quad := inv*rtr - bDotAlpha
	logdet := s.lp.LogDet() - s.luu.LogDet() + n*math.Log(s.NoiseVar)
	return -0.5*quad - 0.5*logdet - 0.5*n*log2Pi
}

// LeaveOneOut returns the leave-one-out predictive mean and variance for
// every retained training point — the sparse counterpart of the exact GP's
// closed form (loo.go). SoR is a Bayesian linear model in the inducing
// features, so with leverage h_i = σ⁻²·φᵢᵀP⁻¹φᵢ (maintained in lev) the
// PRESS identity gives yᵢ − μ₋ᵢ(xᵢ) = (yᵢ − ŷᵢ)/(1 − hᵢ), and a
// Sherman–Morrison step on P₋ᵢ gives the predictive variance
// σ² + levᵢ/(1 − hᵢ). Like the exact form, variances are predictive for the
// observed targets (they include observation noise). O(nm).
func (s *SparseGP) LeaveOneOut() (mu, variance []float64) {
	if s.lp == nil {
		panic(ErrNotFitted)
	}
	n := len(s.x)
	inv := 1 / s.NoiseVar
	mu = make([]float64, n)
	variance = make([]float64, n)
	for i := 0; i < n; i++ {
		// At low noise the leverage approaches 1 (the exact hat value obeys
		// 1 − h = σ²[(K+σ²I)⁻¹]ᵢᵢ), so unlike the forgetting rule — which
		// only ranks — the identity needs the raw value, guarded only
		// against division blow-up from rounding.
		h := inv * s.lev[i]
		if h < 0 {
			h = 0
		} else if h > 1-1e-12 {
			h = 1 - 1e-12
		}
		fit := s.mean + mat.Vector(s.phi[i]).Dot(s.alpha)
		e := (s.y[i] - fit) / (1 - h)
		mu[i] = s.y[i] - e
		variance[i] = s.NoiseVar + s.lev[i]/(1-h)
	}
	return mu, variance
}

// LOOLogLikelihood returns the sum of leave-one-out predictive log
// densities, mirroring the exact GP's diagnostic.
func (s *SparseGP) LOOLogLikelihood() float64 {
	mu, variance := s.LeaveOneOut()
	var acc float64
	for i := range mu {
		r := s.y[i] - mu[i]
		acc += -0.5*math.Log(2*math.Pi*variance[i]) - r*r/(2*variance[i])
	}
	return acc
}

// OptimizeHyperparams maximizes the sparse log marginal likelihood over the
// kernel's log-parameters and the log noise variance using multi-start
// Nelder–Mead, reselecting the inducing set for every candidate setting.
// nStarts must be ≥ 1; the model must already be fitted.
func (s *SparseGP) OptimizeHyperparams(nStarts int, rng *rand.Rand) error {
	if nStarts <= 0 {
		return fmt.Errorf("gp: OptimizeHyperparams needs nStarts >= 1, got %d", nStarts)
	}
	if s.lp == nil {
		return ErrNotFitted
	}
	kp := s.Kern.LogParams()
	x0 := append(append([]float64(nil), kp...), math.Log(s.NoiseVar))

	obj := func(p []float64) float64 {
		for _, v := range p {
			if v < -12 || v > 8 {
				return math.Inf(1)
			}
		}
		s.Kern.SetLogParams(p[:len(p)-1])
		s.NoiseVar = math.Exp(p[len(p)-1])
		if err := s.refit(); err != nil {
			return math.Inf(1)
		}
		return -s.LogMarginalLikelihood()
	}

	res := optim.MultiStartNelderMead(obj, x0, nStarts, 1.5, rng, optim.NelderMeadOptions{MaxIters: 250 * len(x0), TolF: 1e-7, TolX: 1e-4})
	if math.IsInf(res.F, 1) {
		s.Kern.SetLogParams(x0[:len(x0)-1])
		s.NoiseVar = math.Exp(x0[len(x0)-1])
		return s.refit()
	}
	s.Kern.SetLogParams(res.X[:len(res.X)-1])
	s.NoiseVar = math.Exp(res.X[len(res.X)-1])
	return s.refit()
}
