package gp

import (
	"math"

	"repro/internal/mat"
)

// LeaveOneOut returns the leave-one-out predictive mean and variance for
// every training point using the standard closed form (Rasmussen &
// Williams, Eq. 5.10–5.12):
//
//	μᵢ = yᵢ − αᵢ / [K⁻¹]ᵢᵢ,   σᵢ² = 1 / [K⁻¹]ᵢᵢ,
//
// where K here includes the observation noise. The variances include
// observation noise (they are predictive for the observed targets).
func (g *GP) LeaveOneOut() (mu, variance []float64) {
	if g.chol == nil {
		panic(ErrNotFitted)
	}
	n := len(g.x)
	kinv := g.chol.Inverse()
	mu = make([]float64, n)
	variance = make([]float64, n)
	for i := 0; i < n; i++ {
		d := kinv.At(i, i)
		if d <= 0 {
			d = 1e-12
		}
		variance[i] = 1 / d
		mu[i] = g.y[i] - g.alpha[i]/d
	}
	return mu, variance
}

// LOOLogLikelihood returns the sum of leave-one-out predictive log
// densities — a cross-validation alternative to the marginal likelihood
// for hyperparameter diagnostics.
func (g *GP) LOOLogLikelihood() float64 {
	mu, variance := g.LeaveOneOut()
	var s float64
	for i := range mu {
		r := g.y[i] - mu[i]
		s += -0.5*math.Log(2*math.Pi*variance[i]) - r*r/(2*variance[i])
	}
	return s
}

// StandardizedLOOResiduals returns (yᵢ − μᵢ)/σᵢ for every training point;
// under a well-specified model these are approximately standard normal.
func (g *GP) StandardizedLOOResiduals() mat.Vector {
	mu, variance := g.LeaveOneOut()
	out := mat.NewVector(len(mu))
	for i := range mu {
		out[i] = (g.y[i] - mu[i]) / math.Sqrt(variance[i])
	}
	return out
}
