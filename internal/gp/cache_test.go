package gp

import (
	"math/rand/v2"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

func cacheTestModel(t testing.TB, n, dim int) (*GP, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(31, uint64(n)))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for d := range xs[i] {
			xs[i][d] = rng.Float64()
		}
		ys[i] = rng.NormFloat64()
	}
	g := New(kernel.NewMatern52(dim), 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	qs := make([][]float64, 7)
	for j := range qs {
		qs[j] = make([]float64, dim)
		for d := range qs[j] {
			qs[j][d] = rng.Float64()
		}
	}
	return g, qs
}

// TestPredictBatchWithMatches pins the workspace+cache path bit-exact
// against PredictBatch, with and without a cache, warm and cold.
func TestPredictBatchWithMatches(t *testing.T) {
	g, qs := cacheTestModel(t, 12, 3)
	wantMu, wantCov := g.PredictBatch(qs)
	ws := mat.NewWorkspace()
	cc := g.NewCrossCache()
	for pass := 0; pass < 3; pass++ { // pass 0 cold cache, later passes warm
		ws.Reset()
		var gotMu mat.Vector
		var gotCov *mat.Matrix
		if pass == 2 {
			gotMu, gotCov = g.PredictBatchWith(ws, nil, qs) // cache-less path
		} else {
			gotMu, gotCov = g.PredictBatchWith(ws, cc, qs)
		}
		for j := range wantMu {
			if gotMu[j] != wantMu[j] {
				t.Fatalf("pass %d: mu[%d] = %g, want %g", pass, j, gotMu[j], wantMu[j])
			}
		}
		for i := range wantCov.Data {
			if gotCov.Data[i] != wantCov.Data[i] {
				t.Fatalf("pass %d: cov[%d] = %g, want %g", pass, i, gotCov.Data[i], wantCov.Data[i])
			}
		}
	}
}

// TestSampleJointWithMatches pins the workspace sampling path bit-exact
// against SampleJoint under identical RNG streams.
func TestSampleJointWithMatches(t *testing.T) {
	g, qs := cacheTestModel(t, 10, 2)
	cc := g.NewCrossCache()
	ws := mat.NewWorkspace()
	want := g.SampleJoint(qs, 5, rand.New(rand.NewPCG(1, 2)))
	got := g.SampleJointWith(ws, cc, qs, 5, rand.New(rand.NewPCG(1, 2)))
	for s := range want {
		for j := range want[s] {
			if got[s][j] != want[s][j] {
				t.Fatalf("sample[%d][%d] = %g, want %g", s, j, got[s][j], want[s][j])
			}
		}
	}
}

// TestCrossCacheInvalidation drives the cache through the three lifecycle
// events — incremental AddObservation (lazy extension, same generation),
// full Fit (generation bump), and hyperparameter refit — asserting cached
// predictions always match the direct ones.
func TestCrossCacheInvalidation(t *testing.T) {
	g, qs := cacheTestModel(t, 8, 2)
	cc := g.NewCrossCache()
	x := qs[0]

	checkMean := func(stage string) {
		t.Helper()
		want := g.PredictMean(x)
		if got := cc.PredictMean(x); got != want {
			t.Fatalf("%s: cached mean %g, want %g", stage, got, want)
		}
	}
	checkMean("initial")
	gen := g.Generation()

	// Incremental growth: generation stays, cached vectors extend lazily.
	if err := g.AddObservation([]float64{0.21, 0.77}, 0.4); err != nil {
		t.Fatal(err)
	}
	if g.Generation() != gen {
		t.Fatalf("AddObservation bumped generation %d -> %d; extensions should not invalidate", gen, g.Generation())
	}
	checkMean("after AddObservation")

	// A full refactorization — the path AddObservation falls back to on a
	// numerically singular extension — must advance the generation.
	if err := g.refactor(); err != nil {
		t.Fatal(err)
	}
	if g.Generation() == gen {
		t.Fatal("refactor did not bump generation")
	}
	checkMean("after refactor")

	// Hyperparameter change + refit: stale kernels would be silently wrong
	// if the generation didn't move.
	gen = g.Generation()
	lp := g.Kern.LogParams()
	lp[0] += 0.3
	g.Kern.SetLogParams(lp)
	if err := g.Fit(g.X(), g.Y()); err != nil {
		t.Fatal(err)
	}
	if g.Generation() == gen {
		t.Fatal("Fit did not bump generation")
	}
	checkMean("after hyperparameter refit")
}
