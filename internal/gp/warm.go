package gp

import "math"

// PoolHyperparams pools the kernel hyperparameters of the donor GPs: the
// element-wise mean of their log-space kernel parameters and the geometric
// mean of their noise variances. Averaging in log space keeps scale
// parameters (variance, lengthscales) on their natural multiplicative
// axis, so one donor with a 10× lengthscale pulls the pool by a factor,
// not an order of magnitude.
//
// The result seeds a warm-started GP for a task believed similar to the
// donors' — install it with Kernel().SetLogParams and SetNoise before the
// first Fit. Donors may mix exact and sparse models. ok=false when donors
// is empty, a donor is nil, the parameter vectors disagree in length
// (incompatible kernels), or any pooled value is non-finite; the caller
// should fall back to its cold defaults.
func PoolHyperparams(donors []Regressor) (logParams []float64, noiseVar float64, ok bool) {
	if len(donors) == 0 || donors[0] == nil {
		return nil, 0, false
	}
	logParams = append([]float64(nil), donors[0].Kernel().LogParams()...)
	logNoise := safeLog(donors[0].Noise())
	for _, d := range donors[1:] {
		if d == nil {
			return nil, 0, false
		}
		p := d.Kernel().LogParams()
		if len(p) != len(logParams) {
			return nil, 0, false
		}
		for i, v := range p {
			logParams[i] += v
		}
		logNoise += safeLog(d.Noise())
	}
	n := float64(len(donors))
	for i := range logParams {
		logParams[i] /= n
		if math.IsNaN(logParams[i]) || math.IsInf(logParams[i], 0) {
			return nil, 0, false
		}
	}
	noiseVar = math.Exp(logNoise / n)
	if math.IsNaN(noiseVar) || math.IsInf(noiseVar, 0) || noiseVar <= 0 {
		return nil, 0, false
	}
	return logParams, noiseVar, true
}

// safeLog maps non-positive noise variances (a jitter-free donor) onto a
// tiny positive floor so the geometric mean stays finite.
func safeLog(v float64) float64 {
	if v <= 0 {
		v = 1e-12
	}
	return math.Log(v)
}
