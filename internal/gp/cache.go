package gp

import (
	"encoding/binary"
	"math"
	"math/rand/v2"
	"sync"

	"repro/internal/mat"
)

// Generation identifies the current factorization epoch of the model. It
// advances on every full refactorization — Fit, hyperparameter refits, and
// Extend fallbacks — and stays put across successful incremental
// AddObservation extensions and SetTargets calls, because neither changes
// the kernel or invalidates previously computed cross-covariances.
// CrossCache uses it as its invalidation signal.
func (g *GP) Generation() uint64 { return g.gen }

// CrossCache memoizes cross-covariance vectors k(x, X) between query points
// and the model's training inputs. The BO loop scores the same candidate
// pool every iteration while the training set grows by one point per
// iteration, so each cached vector is extended with the single new kernel
// column instead of being recomputed from scratch.
//
// Invalidation contract (see DESIGN.md "Scaling"): entries are valid for a
// fixed (kernel hyperparameters, training prefix) pair. The cache snapshots
// GP.Generation() and drops everything when it changes — i.e. on Fit,
// OptimizeHyperparams, or an Extend numerical fallback. A successful
// AddObservation leaves the generation untouched; cached vectors are then
// lazily extended (they are strictly a prefix of the new k(x, X)).
//
// The cache is safe for concurrent use. Returned vectors are cache-owned
// and must be treated as read-only; they remain valid (at their returned
// length) even while other goroutines extend the cache.
type CrossCache struct {
	g *GP

	mu      sync.Mutex
	gen     uint64
	entries map[string][]float64
	key     []byte // scratch for building map keys without per-call allocs
}

// NewCrossCache returns an empty cross-covariance cache bound to g.
func (g *GP) NewCrossCache() *CrossCache {
	return &CrossCache{g: g, entries: make(map[string][]float64)}
}

// Fetch appends the k(x, X) vector of every query point to dst and returns
// it. The appended slices are cache-owned and read-only. One locked pass
// covers all queries so a batch prediction pays the mutex once.
func (c *CrossCache) Fetch(xs [][]float64, dst [][]float64) [][]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync()
	for _, x := range xs {
		dst = append(dst, c.lookup(x))
	}
	return dst
}

// PredictMean returns the posterior mean at x using the cached
// cross-covariance, bit-identical to GP.PredictMean.
func (c *CrossCache) PredictMean(x []float64) float64 {
	g := c.g
	if g.chol == nil {
		panic(ErrNotFitted)
	}
	c.mu.Lock()
	ks := func() []float64 { c.sync(); return c.lookup(x) }()
	c.mu.Unlock()
	var s float64
	for i, k := range ks {
		s += k * g.alpha[i]
	}
	return g.mean + s
}

// sync drops all entries when the model has refactorized since the last
// call. Must be called with c.mu held.
func (c *CrossCache) sync() {
	if g := c.g.Generation(); g != c.gen {
		clear(c.entries)
		c.gen = g
	}
}

// lookup returns the cached k(x, X) vector, creating or lazily extending it
// to the current training size. Must be called with c.mu held.
func (c *CrossCache) lookup(x []float64) []float64 {
	key := c.key[:0]
	for _, v := range x {
		key = binary.LittleEndian.AppendUint64(key, math.Float64bits(v))
	}
	c.key = key
	n := c.g.N()
	e, ok := c.entries[string(key)]
	if ok && len(e) == n {
		return e
	}
	// Extension appends to the tail, so slices previously handed out keep
	// their (shorter) length and stay valid for readers mid-flight.
	for i := len(e); i < n; i++ {
		e = append(e, c.g.Kern.Eval(c.g.x[i], x))
	}
	c.entries[string(key)] = e
	return e
}

// PredictBatchWith is PredictBatch with workspace-backed outputs and an
// optional cross-covariance cache. The returned mean vector and covariance
// matrix live in ws and are valid only until the next ws.Reset; results are
// bit-identical to PredictBatch. A nil cc computes cross-covariances into
// the workspace instead.
func (g *GP) PredictBatchWith(ws *mat.Workspace, cc *CrossCache, xs [][]float64) (mu mat.Vector, cov *mat.Matrix) {
	if g.chol == nil {
		panic(ErrNotFitted)
	}
	n, q := len(g.x), len(xs)
	var kvecs [][]float64
	if cc != nil {
		kvecs = cc.Fetch(xs, make([][]float64, 0, q))
	} else {
		kvecs = make([][]float64, q)
		for j, x := range xs {
			kj := ws.Vec(n)
			for i, xi := range g.x {
				kj[i] = g.Kern.Eval(xi, x)
			}
			kvecs[j] = kj
		}
	}
	mu = ws.Vec(q)
	// Vᵀ stored row-major: row j is L⁻¹·k(x_j, X), so the covariance loop
	// below streams contiguous rows. Same accumulation order as the n×q
	// column layout in PredictBatch — identical floats.
	vt := ws.Mat(q, n)
	for j := 0; j < q; j++ {
		kj := mat.Vector(kvecs[j])
		mat.ForwardSolveTo(vt.Row(j), g.chol.L, kj)
		mu[j] = g.mean + kj.Dot(g.alpha)
	}
	cov = ws.Mat(q, q)
	for a := 0; a < q; a++ {
		va := vt.Row(a)
		for b := a; b < q; b++ {
			s := g.Kern.Eval(xs[a], xs[b])
			vb := vt.Row(b)
			for i := 0; i < n; i++ {
				s -= va[i] * vb[i]
			}
			cov.Set(a, b, s)
			cov.Set(b, a, s)
		}
	}
	return mu, cov
}

// SampleJointWith is SampleJoint with workspace-backed intermediates and an
// optional cross-covariance cache: only the returned sample rows are
// allocated. The draws are bit-identical to SampleJoint given the same rng
// state.
func (g *GP) SampleJointWith(ws *mat.Workspace, cc *CrossCache, xs [][]float64, nSamples int, rng *rand.Rand) [][]float64 {
	mu, cov := g.PredictBatchWith(ws, cc, xs)
	q := len(mu)
	out := make([][]float64, nSamples)
	f := ws.Mat(q, q)
	c, err := mat.CholJitterInto(f, cov)
	if err != nil {
		mvnFallbacks.Add(1)
		if g.fallbacks != nil {
			g.fallbacks.Add(1)
		}
	}
	z := ws.Vec(q)
	for s := 0; s < nSamples; s++ {
		row := make([]float64, q)
		copy(row, mu)
		if err == nil {
			for i := range z {
				z[i] = rng.NormFloat64()
			}
			for i := 0; i < q; i++ {
				var acc float64
				for j := 0; j <= i; j++ {
					acc += c.L.At(i, j) * z[j]
				}
				row[i] += acc
			}
		}
		out[s] = row
	}
	return out
}
