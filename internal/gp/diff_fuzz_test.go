package gp

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/kernel"
)

// FuzzAddObservationVsFit differentially fuzzes the incremental-Cholesky
// conditioning path against a from-scratch Fit on the same data: for any
// point set and noise level, growing a GP one AddObservation at a time must
// yield the same posterior (mean, variance, and log marginal likelihood) as
// a fresh factorization. This is the harness that pins the O(n²) fast path
// to the O(n³) reference it replaces.
func FuzzAddObservationVsFit(f *testing.F) {
	f.Add(uint64(1), 8, 4)
	f.Add(uint64(42), 15, 6)
	f.Add(uint64(7), 3, 8)
	f.Add(uint64(99), 12, 2)
	f.Fuzz(func(t *testing.T, seed uint64, n, noiseExp int) {
		n = 2 + absInt(n)%14
		noise := math.Pow(10, -float64(2+absInt(noiseExp)%7)) // 1e-2 .. 1e-8
		rng := rand.New(rand.NewPCG(seed, 0x6f2))

		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			x := 3 * rng.Float64()
			xs[i] = []float64{x}
			ys[i] = math.Sin(3*x) + 0.5*x + 0.01*rng.NormFloat64()
		}

		inc := New(kernel.NewRBF(1), noise)
		for i := range xs {
			if err := inc.AddObservation(xs[i], ys[i]); err != nil {
				t.Skipf("incremental conditioning failed at %d: %v", i, err)
			}
		}
		full := New(kernel.NewRBF(1), noise)
		if err := full.Fit(xs, ys); err != nil {
			t.Skipf("full fit failed: %v", err)
		}

		// Both paths solve against a Gram matrix whose condition number
		// grows like 1/noise when sampled inputs nearly coincide, so the
		// agreement tolerance scales accordingly (float64 eps ≈ 1e-16
		// amplified by κ ≈ 1/noise, with headroom).
		tol := math.Max(1e-6, 1e-12/noise)
		for _, q := range []float64{-0.5, 0.25, 1.0, 1.75, 2.5, 3.5} {
			mi, vi := inc.Predict([]float64{q})
			mf, vf := full.Predict([]float64{q})
			if math.Abs(mi-mf) > tol || math.Abs(vi-vf) > tol {
				t.Fatalf("n=%d noise=%g x=%v: incremental (%v, %v) vs full (%v, %v)",
					n, noise, q, mi, vi, mf, vf)
			}
		}
		if d := math.Abs(inc.LogMarginalLikelihood() - full.LogMarginalLikelihood()); d > tol*float64(n) {
			t.Fatalf("LML diverged by %v", d)
		}
	})
}

// TestAddObservationFallbackMatchesFreshFit pins the Extend-failure path.
// With essentially zero noise, an exact duplicate of an existing input makes
// the extended covariance singular: Extend's new pivot d = k(x,x)+σ² − ‖v‖²
// is the noise level up to float round-off, so its sign — and hence whether
// the O(n²) extension succeeds or AddObservation falls back to the jittered
// refactorization — is decided by rounding. The differential property must
// hold on EITHER branch: a single duplicate add leaves both routes computing
// the same arithmetic a fresh Fit of all three points performs (Extend's
// pivot recurrence is exactly the last row of the full factorization, and
// the fallback runs the identical CholJitter ladder on the identical
// matrix), so the posteriors must agree essentially bitwise. A divergence
// means the fallback left stale state (alpha, targets, factor) behind.
//
// The deterministic factor-untouched-on-error property is pinned at the mat
// layer, where a non-kernel matrix can force d < 0 exactly.
func TestAddObservationFallbackMatchesFreshFit(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{0, 1}
	g := New(kernel.NewRBF(1), 1e-30)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.AddObservation([]float64{1}, 1.01); err != nil {
		t.Fatalf("duplicate add: %v", err)
	}
	if g.N() != 3 {
		t.Fatalf("N=%d, want 3", g.N())
	}
	fresh := New(kernel.NewRBF(1), 1e-30)
	if err := fresh.Fit(append(xs, []float64{1}), append(ys, 1.01)); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.5, 1, 2} {
		mi, vi := g.Predict([]float64{q})
		mf, vf := fresh.Predict([]float64{q})
		if math.IsNaN(mi) || math.IsNaN(vi) {
			t.Fatalf("x=%v: NaN posterior after duplicate add", q)
		}
		if math.Abs(mi-mf) > 1e-10 || math.Abs(vi-vf) > 1e-10 {
			t.Fatalf("x=%v: incremental (%v, %v) vs fresh fit (%v, %v)", q, mi, vi, mf, vf)
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
