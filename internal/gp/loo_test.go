package gp

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/stats"
)

func fitted1D(t *testing.T, n int, noise float64, seed uint64) *GP {
	t.Helper()
	rng := stats.NewRNG(seed)
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		x := rng.Float64() * 4
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(2*x)+noise*rng.NormFloat64())
	}
	g := New(kernel.NewMatern52(1), noise*noise+1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLeaveOneOutAgainstManualRefit(t *testing.T) {
	// The closed form must match actually removing each point and
	// refitting (up to numerical tolerance).
	g := fitted1D(t, 12, 0.05, 3)
	mu, variance := g.LeaveOneOut()
	for drop := 0; drop < g.N(); drop += 4 {
		var xs [][]float64
		var ys []float64
		for i := 0; i < g.N(); i++ {
			if i == drop {
				continue
			}
			xs = append(xs, g.X()[i])
			ys = append(ys, g.Y()[i])
		}
		h := New(g.Kern.Clone(), g.NoiseVar)
		if err := h.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		m, v := h.Predict(g.X()[drop])
		v += h.NoiseVar // LOO variance is predictive for the observation
		// The constant-mean estimate differs slightly between the full
		// and reduced fits, so allow a modest tolerance.
		if math.Abs(m-mu[drop]) > 0.05 {
			t.Errorf("LOO mean[%d] = %v, refit %v", drop, mu[drop], m)
		}
		if math.Abs(v-variance[drop]) > 0.05 {
			t.Errorf("LOO var[%d] = %v, refit %v", drop, variance[drop], v)
		}
	}
}

func TestLOOLogLikelihoodPrefersDecentNoise(t *testing.T) {
	rng := stats.NewRNG(7)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 30; i++ {
		x := rng.Float64() * 4
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(2*x)+0.05*rng.NormFloat64())
	}
	score := func(noiseVar float64) float64 {
		g := New(kernel.NewMatern52(1), noiseVar)
		if err := g.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		return g.LOOLogLikelihood()
	}
	good := score(0.05 * 0.05)
	tooBig := score(4.0)
	if good <= tooBig {
		t.Fatalf("LOO-LL did not prefer the true noise: %v vs %v", good, tooBig)
	}
}

func TestStandardizedResidualsRoughlyUnitScale(t *testing.T) {
	g := fitted1D(t, 60, 0.1, 11)
	res := g.StandardizedLOOResiduals()
	var mean, varr float64
	for _, r := range res {
		mean += r
	}
	mean /= float64(len(res))
	for _, r := range res {
		varr += (r - mean) * (r - mean)
	}
	varr /= float64(len(res))
	if math.Abs(mean) > 0.5 || varr < 0.2 || varr > 5 {
		t.Fatalf("standardized residuals off: mean %v var %v", mean, varr)
	}
}

func TestLeaveOneOutUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(kernel.NewRBF(1), 1e-4).LeaveOneOut()
}
