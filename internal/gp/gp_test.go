package gp

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/stats"
)

func TestFitValidation(t *testing.T) {
	g := New(kernel.NewRBF(1), 1e-4)
	if err := g.Fit(nil, nil); err == nil {
		t.Error("empty fit should fail")
	}
	if err := g.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := g.Fit([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestPredictUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(kernel.NewRBF(1), 1e-4).Predict([]float64{0})
}

func TestInterpolationAtTrainingPoints(t *testing.T) {
	// With tiny noise, the posterior mean at a training point is ~ the
	// target and the variance is ~ 0.
	xs := [][]float64{{0}, {1}, {2}, {3}}
	ys := []float64{0, 1, 4, 9}
	g := New(kernel.NewRBF(1), 1e-8)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, v := g.Predict(x)
		if math.Abs(mu-ys[i]) > 1e-3 {
			t.Errorf("mean at training point %v = %v, want %v", x, mu, ys[i])
		}
		if v > 1e-3 {
			t.Errorf("variance at training point %v = %v", x, v)
		}
	}
}

func TestPosteriorRevertsToPriorFarAway(t *testing.T) {
	xs := [][]float64{{0}, {0.1}}
	ys := []float64{5, 5.1}
	g := New(kernel.NewRBF(1), 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	mu, v := g.Predict([]float64{100})
	// Far away: mean reverts to empirical mean, variance to kernel variance.
	if math.Abs(mu-5.05) > 1e-6 {
		t.Errorf("far mean = %v, want 5.05", mu)
	}
	if math.Abs(v-1) > 1e-6 {
		t.Errorf("far variance = %v, want 1", v)
	}
}

func TestGPRecoversSmootheFunction(t *testing.T) {
	rng := stats.NewRNG(3)
	f := func(x float64) float64 { return math.Sin(3*x) + 0.5*x }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 40; i++ {
		x := rng.Float64() * 4
		xs = append(xs, []float64{x})
		ys = append(ys, f(x)+0.01*rng.NormFloat64())
	}
	g := New(kernel.NewMatern52(1), 1e-3)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.OptimizeHyperparams(3, rng); err != nil {
		t.Fatal(err)
	}
	var obs, pred []float64
	for i := 0; i < 50; i++ {
		x := 0.05 + float64(i)*(3.9/50)
		mu, _ := g.Predict([]float64{x})
		obs = append(obs, f(x))
		pred = append(pred, mu)
	}
	if r2 := stats.R2(obs, pred); r2 < 0.98 {
		t.Fatalf("R² = %v, want > 0.98", r2)
	}
}

func TestARDHyperoptFindsIrrelevantDimension(t *testing.T) {
	// y depends only on x₀; after hyperparameter optimization the
	// lengthscale of the irrelevant x₁ should be clearly longer.
	rng := stats.NewRNG(21)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x0, x1 := rng.Float64(), rng.Float64()
		xs = append(xs, []float64{x0, x1})
		ys = append(ys, math.Sin(6*x0)+0.02*rng.NormFloat64())
	}
	g := New(kernel.NewMatern52(2), 1e-3)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.OptimizeHyperparams(4, rng); err != nil {
		t.Fatal(err)
	}
	p := g.Kern.LogParams() // [log σ², log ℓ₀, log ℓ₁]
	if p[2] < p[1] {
		t.Fatalf("ARD failed: relevant ℓ=%.3f, irrelevant ℓ=%.3f",
			math.Exp(p[1]), math.Exp(p[2]))
	}
}

func TestLogMarginalLikelihoodImproves(t *testing.T) {
	rng := stats.NewRNG(5)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 25; i++ {
		x := float64(i) / 5
		xs = append(xs, []float64{x})
		ys = append(ys, math.Cos(2*x)+0.05*rng.NormFloat64())
	}
	g := New(kernel.NewRBF(1), 0.5) // deliberately bad noise guess
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	before := g.LogMarginalLikelihood()
	if err := g.OptimizeHyperparams(4, rng); err != nil {
		t.Fatal(err)
	}
	after := g.LogMarginalLikelihood()
	if after < before {
		t.Fatalf("LML degraded: %v -> %v", before, after)
	}
	if g.NoiseVar > 0.1 {
		t.Errorf("optimizer kept noise at %v despite low-noise data", g.NoiseVar)
	}
}

func TestPredictBatchConsistentWithPredict(t *testing.T) {
	rng := stats.NewRNG(7)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 15; i++ {
		xs = append(xs, []float64{rng.Float64() * 3, rng.Float64() * 3})
		ys = append(ys, xs[i][0]*xs[i][1])
	}
	g := New(kernel.NewMatern52(2), 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	qs := [][]float64{{0.5, 0.5}, {1.5, 2.0}, {2.9, 0.1}}
	mu, cov := g.PredictBatch(qs)
	for i, q := range qs {
		m, v := g.Predict(q)
		if math.Abs(mu[i]-m) > 1e-9 {
			t.Errorf("batch mean[%d] = %v, pointwise %v", i, mu[i], m)
		}
		if math.Abs(cov.At(i, i)-v) > 1e-9 {
			t.Errorf("batch var[%d] = %v, pointwise %v", i, cov.At(i, i), v)
		}
	}
	if d := cov.SymmetricMaxAbsOffDiag(); d > 1e-12 {
		t.Errorf("posterior covariance asymmetry %v", d)
	}
}

func TestSampleJointMatchesPosterior(t *testing.T) {
	rng := stats.NewRNG(11)
	xs := [][]float64{{0}, {1}, {2}}
	ys := []float64{0, 1, 0}
	g := New(kernel.NewRBF(1), 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	qs := [][]float64{{0.5}, {1.5}}
	mu, cov := g.PredictBatch(qs)
	samples := g.SampleJoint(qs, 20000, rng)
	for j := 0; j < len(qs); j++ {
		col := make([]float64, len(samples))
		for i, s := range samples {
			col[i] = s[j]
		}
		if m := stats.Mean(col); math.Abs(m-mu[j]) > 0.02 {
			t.Errorf("sample mean[%d] = %v, posterior %v", j, m, mu[j])
		}
		if v := stats.Variance(col); math.Abs(v-cov.At(j, j)) > 0.02 {
			t.Errorf("sample var[%d] = %v, posterior %v", j, v, cov.At(j, j))
		}
	}
}

func TestSampleMVNDegenerateCovariance(t *testing.T) {
	rng := stats.NewRNG(13)
	mu := mat.Vector{1, 2}
	cov := mat.NewMatrix(2, 2) // exactly singular (zero) covariance
	samples := SampleMVN(mu, cov, 5, rng)
	for _, s := range samples {
		// With zero covariance the samples collapse to (almost) the mean;
		// jitter adds at most ~1e-2 noise in pathological cases.
		if math.Abs(s[0]-1) > 0.1 || math.Abs(s[1]-2) > 0.1 {
			t.Fatalf("degenerate sample = %v", s)
		}
	}
}

func TestAddObservationMatchesFullFit(t *testing.T) {
	// Growing a GP one AddObservation at a time must agree with a fresh
	// Fit on the same data: same predictions everywhere.
	rng := stats.NewRNG(41)
	f := func(x []float64) float64 { return math.Sin(3*x[0]) + 0.5*x[0] }
	inc := New(kernel.NewRBF(1), 1e-4)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		x := []float64{3 * rng.Float64()}
		y := f(x)
		xs = append(xs, x)
		ys = append(ys, y)
		if err := inc.AddObservation(x, y); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		if inc.N() != i+1 {
			t.Fatalf("N=%d after %d adds", inc.N(), i+1)
		}
	}
	full := New(kernel.NewRBF(1), 1e-4)
	if err := full.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{-0.5, 0.1, 1.3, 2.2, 3.5} {
		mi, vi := inc.Predict([]float64{q})
		mf, vf := full.Predict([]float64{q})
		if math.Abs(mi-mf) > 1e-8 || math.Abs(vi-vf) > 1e-8 {
			t.Fatalf("x=%v: incremental (%v, %v) vs full (%v, %v)", q, mi, vi, mf, vf)
		}
	}
	if math.Abs(inc.LogMarginalLikelihood()-full.LogMarginalLikelihood()) > 1e-8 {
		t.Fatalf("LML %v vs %v", inc.LogMarginalLikelihood(), full.LogMarginalLikelihood())
	}
}

func TestAddObservationDuplicateFallsBack(t *testing.T) {
	// An exact duplicate input makes the extended covariance singular up to
	// the noise term; with tiny noise the O(n²) extension may fail and must
	// transparently fall back to the jittered refactorization.
	g := New(kernel.NewRBF(1), 1e-10)
	if err := g.Fit([][]float64{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := g.AddObservation([]float64{1}, 1.01); err != nil {
			t.Fatalf("duplicate add %d: %v", i, err)
		}
	}
	if g.N() != 5 {
		t.Fatalf("N=%d, want 5", g.N())
	}
	mu, _ := g.Predict([]float64{1})
	if math.IsNaN(mu) {
		t.Fatal("NaN prediction after duplicate adds")
	}
}

func TestAddObservationOnEmptyFits(t *testing.T) {
	g := New(kernel.NewRBF(1), 1e-4)
	if err := g.AddObservation([]float64{0.5}, 2); err != nil {
		t.Fatal(err)
	}
	if g.N() != 1 {
		t.Fatalf("N=%d", g.N())
	}
	if err := g.AddObservation([]float64{1, 2}, 0); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestSetTargetsRescalesWithoutRefactor(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}}
	ys := []float64{1, 2, 3}
	g := New(kernel.NewRBF(1), 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	scaled := []float64{2, 4, 6}
	if err := g.SetTargets(scaled); err != nil {
		t.Fatal(err)
	}
	ref := New(kernel.NewRBF(1), 1e-6)
	if err := ref.Fit(xs, scaled); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.3, 1.7} {
		ms, _ := g.Predict([]float64{q})
		mr, _ := ref.Predict([]float64{q})
		if math.Abs(ms-mr) > 1e-9 {
			t.Fatalf("x=%v: SetTargets mean %v vs refit %v", q, ms, mr)
		}
	}
	if err := g.SetTargets([]float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := New(kernel.NewRBF(1), 1e-4).SetTargets([]float64{1}); err == nil {
		t.Fatal("SetTargets on unfitted model accepted")
	}
}

func TestPredictMeanMatchesPredict(t *testing.T) {
	rng := stats.NewRNG(43)
	g := New(kernel.NewMatern52(2), 1e-4)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 15; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, x[0]*x[1])
	}
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q := []float64{rng.Float64(), rng.Float64()}
		mu, _ := g.Predict(q)
		if got := g.PredictMean(q); math.Abs(got-mu) > 1e-12 {
			t.Fatalf("PredictMean %v vs Predict %v", got, mu)
		}
	}
}

func TestMVNFallbackCounter(t *testing.T) {
	// An indefinite "covariance" cannot be factorized even with jitter, so
	// SampleMVN must return the mean and bump the fallback counter.
	bad := mat.NewMatrix(2, 2)
	bad.Set(0, 0, 1)
	bad.Set(1, 1, -5)
	mu := mat.NewVector(2)
	mu[0], mu[1] = 3, 7
	before := MVNFallbacks()
	out := SampleMVN(mu, bad, 4, stats.NewRNG(44))
	if got := MVNFallbacks() - before; got != 1 {
		t.Fatalf("fallback counter delta %d, want 1", got)
	}
	for _, row := range out {
		if row[0] != 3 || row[1] != 7 {
			t.Fatalf("fallback sample %v, want the mean", row)
		}
	}
	// A healthy covariance must not bump it.
	good := mat.Identity(2)
	before = MVNFallbacks()
	SampleMVN(mu, good, 4, stats.NewRNG(45))
	if got := MVNFallbacks() - before; got != 0 {
		t.Fatalf("healthy covariance bumped the counter by %d", got)
	}
}
