package gp

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/stats"
)

func TestFitValidation(t *testing.T) {
	g := New(kernel.NewRBF(1), 1e-4)
	if err := g.Fit(nil, nil); err == nil {
		t.Error("empty fit should fail")
	}
	if err := g.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := g.Fit([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestPredictUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(kernel.NewRBF(1), 1e-4).Predict([]float64{0})
}

func TestInterpolationAtTrainingPoints(t *testing.T) {
	// With tiny noise, the posterior mean at a training point is ~ the
	// target and the variance is ~ 0.
	xs := [][]float64{{0}, {1}, {2}, {3}}
	ys := []float64{0, 1, 4, 9}
	g := New(kernel.NewRBF(1), 1e-8)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, v := g.Predict(x)
		if math.Abs(mu-ys[i]) > 1e-3 {
			t.Errorf("mean at training point %v = %v, want %v", x, mu, ys[i])
		}
		if v > 1e-3 {
			t.Errorf("variance at training point %v = %v", x, v)
		}
	}
}

func TestPosteriorRevertsToPriorFarAway(t *testing.T) {
	xs := [][]float64{{0}, {0.1}}
	ys := []float64{5, 5.1}
	g := New(kernel.NewRBF(1), 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	mu, v := g.Predict([]float64{100})
	// Far away: mean reverts to empirical mean, variance to kernel variance.
	if math.Abs(mu-5.05) > 1e-6 {
		t.Errorf("far mean = %v, want 5.05", mu)
	}
	if math.Abs(v-1) > 1e-6 {
		t.Errorf("far variance = %v, want 1", v)
	}
}

func TestGPRecoversSmootheFunction(t *testing.T) {
	rng := stats.NewRNG(3)
	f := func(x float64) float64 { return math.Sin(3*x) + 0.5*x }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 40; i++ {
		x := rng.Float64() * 4
		xs = append(xs, []float64{x})
		ys = append(ys, f(x)+0.01*rng.NormFloat64())
	}
	g := New(kernel.NewMatern52(1), 1e-3)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.OptimizeHyperparams(3, rng); err != nil {
		t.Fatal(err)
	}
	var obs, pred []float64
	for i := 0; i < 50; i++ {
		x := 0.05 + float64(i)*(3.9/50)
		mu, _ := g.Predict([]float64{x})
		obs = append(obs, f(x))
		pred = append(pred, mu)
	}
	if r2 := stats.R2(obs, pred); r2 < 0.98 {
		t.Fatalf("R² = %v, want > 0.98", r2)
	}
}

func TestARDHyperoptFindsIrrelevantDimension(t *testing.T) {
	// y depends only on x₀; after hyperparameter optimization the
	// lengthscale of the irrelevant x₁ should be clearly longer.
	rng := stats.NewRNG(21)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x0, x1 := rng.Float64(), rng.Float64()
		xs = append(xs, []float64{x0, x1})
		ys = append(ys, math.Sin(6*x0)+0.02*rng.NormFloat64())
	}
	g := New(kernel.NewMatern52(2), 1e-3)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.OptimizeHyperparams(4, rng); err != nil {
		t.Fatal(err)
	}
	p := g.Kern.LogParams() // [log σ², log ℓ₀, log ℓ₁]
	if p[2] < p[1] {
		t.Fatalf("ARD failed: relevant ℓ=%.3f, irrelevant ℓ=%.3f",
			math.Exp(p[1]), math.Exp(p[2]))
	}
}

func TestLogMarginalLikelihoodImproves(t *testing.T) {
	rng := stats.NewRNG(5)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 25; i++ {
		x := float64(i) / 5
		xs = append(xs, []float64{x})
		ys = append(ys, math.Cos(2*x)+0.05*rng.NormFloat64())
	}
	g := New(kernel.NewRBF(1), 0.5) // deliberately bad noise guess
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	before := g.LogMarginalLikelihood()
	if err := g.OptimizeHyperparams(4, rng); err != nil {
		t.Fatal(err)
	}
	after := g.LogMarginalLikelihood()
	if after < before {
		t.Fatalf("LML degraded: %v -> %v", before, after)
	}
	if g.NoiseVar > 0.1 {
		t.Errorf("optimizer kept noise at %v despite low-noise data", g.NoiseVar)
	}
}

func TestPredictBatchConsistentWithPredict(t *testing.T) {
	rng := stats.NewRNG(7)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 15; i++ {
		xs = append(xs, []float64{rng.Float64() * 3, rng.Float64() * 3})
		ys = append(ys, xs[i][0]*xs[i][1])
	}
	g := New(kernel.NewMatern52(2), 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	qs := [][]float64{{0.5, 0.5}, {1.5, 2.0}, {2.9, 0.1}}
	mu, cov := g.PredictBatch(qs)
	for i, q := range qs {
		m, v := g.Predict(q)
		if math.Abs(mu[i]-m) > 1e-9 {
			t.Errorf("batch mean[%d] = %v, pointwise %v", i, mu[i], m)
		}
		if math.Abs(cov.At(i, i)-v) > 1e-9 {
			t.Errorf("batch var[%d] = %v, pointwise %v", i, cov.At(i, i), v)
		}
	}
	if d := cov.SymmetricMaxAbsOffDiag(); d > 1e-12 {
		t.Errorf("posterior covariance asymmetry %v", d)
	}
}

func TestSampleJointMatchesPosterior(t *testing.T) {
	rng := stats.NewRNG(11)
	xs := [][]float64{{0}, {1}, {2}}
	ys := []float64{0, 1, 0}
	g := New(kernel.NewRBF(1), 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	qs := [][]float64{{0.5}, {1.5}}
	mu, cov := g.PredictBatch(qs)
	samples := g.SampleJoint(qs, 20000, rng)
	for j := 0; j < len(qs); j++ {
		col := make([]float64, len(samples))
		for i, s := range samples {
			col[i] = s[j]
		}
		if m := stats.Mean(col); math.Abs(m-mu[j]) > 0.02 {
			t.Errorf("sample mean[%d] = %v, posterior %v", j, m, mu[j])
		}
		if v := stats.Variance(col); math.Abs(v-cov.At(j, j)) > 0.02 {
			t.Errorf("sample var[%d] = %v, posterior %v", j, v, cov.At(j, j))
		}
	}
}

func TestSampleMVNDegenerateCovariance(t *testing.T) {
	rng := stats.NewRNG(13)
	mu := mat.Vector{1, 2}
	cov := mat.NewMatrix(2, 2) // exactly singular (zero) covariance
	samples := SampleMVN(mu, cov, 5, rng)
	for _, s := range samples {
		// With zero covariance the samples collapse to (almost) the mean;
		// jitter adds at most ~1e-2 noise in pathological cases.
		if math.Abs(s[0]-1) > 0.1 || math.Abs(s[1]-2) > 0.1 {
			t.Fatalf("degenerate sample = %v", s)
		}
	}
}

func BenchmarkGPFit100(b *testing.B) {
	rng := stats.NewRNG(17)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, []float64{rng.Float64(), rng.Float64()})
		ys = append(ys, rng.NormFloat64())
	}
	g := New(kernel.NewMatern52(2), 1e-3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPPredict(b *testing.B) {
	rng := stats.NewRNG(19)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		xs = append(xs, []float64{rng.Float64(), rng.Float64()})
		ys = append(ys, rng.NormFloat64())
	}
	g := New(kernel.NewMatern52(2), 1e-3)
	if err := g.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	q := []float64{0.3, 0.7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Predict(q)
	}
}
