package gp

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// sparseTestData samples a smooth 1-D regression problem.
func sparseTestData(seed uint64, n int) (xs [][]float64, ys []float64) {
	rng := rand.New(rand.NewPCG(seed, 0x5a12))
	xs = make([][]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		x := 3 * rng.Float64()
		xs[i] = []float64{x}
		ys[i] = math.Sin(3*x) + 0.5*x + 0.01*rng.NormFloat64()
	}
	return xs, ys
}

// roughKernel returns a short-lengthscale Matérn-5/2: its prior Gram over
// well-separated 1-D points is numerically full-rank, which the strict
// equivalence tests need (an RBF Gram saturates float64 rank at ~16 points,
// after which the inducing span is legitimately smaller than n).
func roughKernel() kernel.Kernel {
	k := kernel.NewMatern52(1)
	k.SetLogParams([]float64{math.Log(1.0), math.Log(0.3)})
	return k
}

// spreadData places n well-separated points on [0, 3] with a smooth target.
func spreadData(n int) (xs [][]float64, ys []float64) {
	xs = make([][]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		x := 3 * (float64(i) + 0.5) / float64(n)
		xs[i] = []float64{x}
		ys[i] = math.Sin(3*x) + 0.5*x
	}
	return xs, ys
}

// TestSparseExactEquivalence pins the m ≥ n case: with every training point
// admitted into the inducing set, the SoR/FITC posterior IS the exact GP
// posterior — mean, variance, and log marginal likelihood.
func TestSparseExactEquivalence(t *testing.T) {
	xs, ys := spreadData(20)
	noise := 1e-4

	sp := NewSparse(roughKernel(), noise, SparseOptions{MaxInducing: len(xs), ResidualTol: 1e-300})
	if err := sp.Fit(xs, ys); err != nil {
		t.Fatalf("sparse fit: %v", err)
	}
	ex := New(roughKernel(), noise)
	if err := ex.Fit(xs, ys); err != nil {
		t.Fatalf("exact fit: %v", err)
	}
	if sp.M() != len(xs) {
		t.Fatalf("inducing set size %d, want %d", sp.M(), len(xs))
	}

	tol := 1e-6
	for _, q := range []float64{-0.5, 0.3, 1.1, 2.0, 2.9, 3.6} {
		ms, vs := sp.Predict([]float64{q})
		me, ve := ex.Predict([]float64{q})
		if math.Abs(ms-me) > tol || math.Abs(vs-ve) > tol {
			t.Fatalf("x=%v: sparse (%v, %v) vs exact (%v, %v)", q, ms, vs, me, ve)
		}
	}
	if d := math.Abs(sp.LogMarginalLikelihood() - ex.LogMarginalLikelihood()); d > tol*float64(len(xs)) {
		t.Fatalf("LML diverged by %v: sparse %v exact %v", d, sp.LogMarginalLikelihood(), ex.LogMarginalLikelihood())
	}

	// LOO diagnostics coincide too: with Z = X the weight-space PRESS
	// identities describe the very same model as the exact closed form.
	muS, varS := sp.LeaveOneOut()
	muE, varE := ex.LeaveOneOut()
	for i := range muS {
		if math.Abs(muS[i]-muE[i]) > 1e-4 || math.Abs(varS[i]-varE[i]) > 1e-4 {
			t.Fatalf("LOO[%d]: sparse (%v, %v) vs exact (%v, %v)", i, muS[i], varS[i], muE[i], varE[i])
		}
	}
}

// TestSparseAddObservationVsFit checks the incremental path: growing a
// sparse GP one observation at a time (with a permissive inducing budget, so
// every point promotes) matches a from-scratch Fit on the same data.
func TestSparseAddObservationVsFit(t *testing.T) {
	xs, ys := spreadData(18)
	noise := 1e-4
	opt := SparseOptions{MaxInducing: len(xs), ResidualTol: 1e-300}

	inc := NewSparse(roughKernel(), noise, opt)
	for i := range xs {
		if err := inc.AddObservation(xs[i], ys[i]); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	full := NewSparse(roughKernel(), noise, opt)
	if err := full.Fit(xs, ys); err != nil {
		t.Fatalf("fit: %v", err)
	}

	tol := 1e-6
	for _, q := range []float64{-0.2, 0.7, 1.5, 2.4, 3.2} {
		mi, vi := inc.Predict([]float64{q})
		mf, vf := full.Predict([]float64{q})
		if math.Abs(mi-mf) > tol || math.Abs(vi-vf) > tol {
			t.Fatalf("x=%v: incremental (%v, %v) vs full (%v, %v)", q, mi, vi, mf, vf)
		}
	}
	if inc.Stats().Obs != uint64(len(xs)) {
		t.Fatalf("Obs stat %d, want %d", inc.Stats().Obs, len(xs))
	}
}

// TestSparseCompression checks the m ≪ n regime on smooth data: a small
// inducing budget must still track the exact posterior mean closely, and the
// batch path must agree with the pointwise one.
func TestSparseCompression(t *testing.T) {
	xs, ys := sparseTestData(3, 120)
	noise := 1e-2

	sp := NewSparse(kernel.NewRBF(1), noise, SparseOptions{MaxInducing: 16})
	if err := sp.Fit(xs, ys); err != nil {
		t.Fatalf("sparse fit: %v", err)
	}
	ex := New(kernel.NewRBF(1), noise)
	if err := ex.Fit(xs, ys); err != nil {
		t.Fatalf("exact fit: %v", err)
	}
	if sp.M() > 16 {
		t.Fatalf("inducing set size %d exceeds cap", sp.M())
	}

	qs := make([][]float64, 0, 12)
	for q := 0.1; q < 3.0; q += 0.25 {
		qs = append(qs, []float64{q})
	}
	muB, covB := sp.PredictBatch(qs)
	for j, q := range qs {
		ms, vs := sp.Predict(q)
		me, _ := ex.Predict(q)
		if math.Abs(ms-me) > 0.05 {
			t.Fatalf("x=%v: sparse mean %v drifted from exact %v", q[0], ms, me)
		}
		if math.Abs(muB[j]-ms) > 1e-10 || math.Abs(covB.At(j, j)-vs) > 1e-10 {
			t.Fatalf("x=%v: batch (%v, %v) vs pointwise (%v, %v)", q[0], muB[j], covB.At(j, j), ms, vs)
		}
	}
}

// TestSparseForgetting exercises the MaxObs budget: the retained set stays
// capped, forgets are counted, and the posterior keeps fitting the incumbent
// region it was told to protect.
func TestSparseForgetting(t *testing.T) {
	xs, ys := sparseTestData(19, 60)
	noise := 1e-3
	cap := 24

	sp := NewSparse(kernel.NewRBF(1), noise, SparseOptions{MaxInducing: 12, MaxObs: cap})
	sp.SetIncumbent([]float64{1.5})
	for i := range xs {
		if err := sp.AddObservation(xs[i], ys[i]); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		if sp.N() > cap {
			t.Fatalf("after add %d: retained %d > budget %d", i, sp.N(), cap)
		}
	}
	if got, want := sp.Stats().Forgets, uint64(len(xs)-cap); got != want {
		t.Fatalf("Forgets = %d, want %d", got, want)
	}
	if sp.N() != cap {
		t.Fatalf("retained %d, want %d", sp.N(), cap)
	}
	// The incumbent region must still be modeled: compare against an exact
	// GP on the full data.
	ex := New(kernel.NewRBF(1), noise)
	if err := ex.Fit(xs, ys); err != nil {
		t.Fatalf("exact fit: %v", err)
	}
	ms := sp.PredictMean([]float64{1.5})
	me := ex.PredictMean([]float64{1.5})
	if math.Abs(ms-me) > 0.1 {
		t.Fatalf("incumbent mean %v drifted from exact %v after forgetting", ms, me)
	}
}

// TestSparseScaleTargets pins the O(m²) rescale against a from-scratch fit
// on the scaled targets.
func TestSparseScaleTargets(t *testing.T) {
	xs, ys := sparseTestData(23, 25)
	noise := 1e-4
	opt := SparseOptions{MaxInducing: 10}

	sp := NewSparse(kernel.NewRBF(1), noise, opt)
	if err := sp.Fit(xs, ys); err != nil {
		t.Fatalf("fit: %v", err)
	}
	const f = 2.75
	if err := sp.ScaleTargets(f); err != nil {
		t.Fatalf("scale: %v", err)
	}

	scaled := make([]float64, len(ys))
	for i, v := range ys {
		scaled[i] = v * f
	}
	ref := NewSparse(kernel.NewRBF(1), noise, opt)
	if err := ref.Fit(xs, scaled); err != nil {
		t.Fatalf("ref fit: %v", err)
	}
	for _, q := range []float64{0.2, 1.0, 1.9, 2.8} {
		ms, vs := sp.Predict([]float64{q})
		mr, vr := ref.Predict([]float64{q})
		if math.Abs(ms-mr) > 1e-8 || math.Abs(vs-vr) > 1e-8 {
			t.Fatalf("x=%v: scaled (%v, %v) vs refit (%v, %v)", q, ms, vs, mr, vr)
		}
	}
	if d := math.Abs(sp.LogMarginalLikelihood() - ref.LogMarginalLikelihood()); d > 1e-6*float64(len(xs)) {
		t.Fatalf("LML diverged by %v after rescale", d)
	}
}

// TestSparseRejections covers the contract errors shared with the exact GP.
func TestSparseRejections(t *testing.T) {
	sp := NewSparse(kernel.NewRBF(2), 1e-4, SparseOptions{})
	if err := sp.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := sp.Fit(nil, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if err := sp.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := sp.AddObservation([]float64{1}, 0); err == nil {
		t.Error("dim-mismatched observation accepted")
	}
	if err := sp.OptimizeHyperparams(0, rand.New(rand.NewPCG(1, 2))); err == nil {
		t.Error("nStarts=0 accepted")
	}
	if err := sp.Fit([][]float64{{0, 0}, {1, 1}}, []float64{0, 1}); err != nil {
		t.Fatalf("fit: %v", err)
	}
	if err := sp.SetTargets([]float64{1}); err == nil {
		t.Error("short target vector accepted")
	}
}

// TestSparseSampleJointDeterminism pins SampleJointWith to SampleJoint given
// equal rng states, mirroring the exact GP's workspace-path guarantee.
func TestSparseSampleJointDeterminism(t *testing.T) {
	xs, ys := sparseTestData(29, 30)
	sp := NewSparse(kernel.NewMatern52(1), 1e-3, SparseOptions{MaxInducing: 12})
	if err := sp.Fit(xs, ys); err != nil {
		t.Fatalf("fit: %v", err)
	}
	qs := [][]float64{{0.4}, {1.2}, {2.1}}
	a := sp.SampleJoint(qs, 5, rand.New(rand.NewPCG(5, 6)))
	ws := mat.NewWorkspace()
	ws.Reset()
	b := sp.SampleJointWith(ws, qs, 5, rand.New(rand.NewPCG(5, 6)))
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("sample [%d][%d]: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}
