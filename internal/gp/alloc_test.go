//go:build !race

package gp

import (
	"testing"

	"repro/internal/mat"
)

// TestPredictMeanZeroAlloc pins PredictMean — the hot call in candidate
// planning — to zero heap allocations, both direct and through a warm
// cross-covariance cache. (Skipped under -race, which instruments
// allocation.)
func TestPredictMeanZeroAlloc(t *testing.T) {
	g, qs := cacheTestModel(t, 16, 3)
	x := qs[0]
	if n := testing.AllocsPerRun(100, func() { g.PredictMean(x) }); n != 0 {
		t.Fatalf("PredictMean allocates %v times per run, want 0", n)
	}
	cc := g.NewCrossCache()
	cc.PredictMean(x) // warm the cache entry
	if n := testing.AllocsPerRun(100, func() { cc.PredictMean(x) }); n != 0 {
		t.Fatalf("CrossCache.PredictMean allocates %v times per run, want 0", n)
	}
}

// TestSparsePredictZeroAlloc pins the sparse hot paths: PredictMean is a
// plain O(m) loop over the inducing representation and must never allocate;
// PredictBatchWith must draw all scratch from a warm workspace.
func TestSparsePredictZeroAlloc(t *testing.T) {
	xs, ys := sparseTestData(41, 40)
	sp := NewSparse(roughKernel(), 1e-3, SparseOptions{MaxInducing: 12})
	if err := sp.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	x := []float64{1.3}
	if n := testing.AllocsPerRun(100, func() { sp.PredictMean(x) }); n != 0 {
		t.Fatalf("sparse PredictMean allocates %v times per run, want 0", n)
	}
	qs := [][]float64{{0.2}, {0.9}, {1.7}, {2.4}}
	ws := mat.NewWorkspace()
	ws.Reset()
	sp.PredictBatchWith(ws, qs) // warm the workspace
	n := testing.AllocsPerRun(100, func() {
		ws.Reset()
		sp.PredictBatchWith(ws, qs)
	})
	if n != 0 {
		t.Fatalf("warm sparse PredictBatchWith allocates %v times per run, want 0", n)
	}
}

// TestPredictBatchWithWarmAllocs bounds the warm-path batch prediction to
// the single per-call pointer slice for the cached cross-covariances: all
// float64 scratch comes from the workspace.
func TestPredictBatchWithWarmAllocs(t *testing.T) {
	g, qs := cacheTestModel(t, 16, 3)
	cc := g.NewCrossCache()
	ws := mat.NewWorkspace()
	ws.Reset()
	g.PredictBatchWith(ws, cc, qs) // warm cache and workspace
	n := testing.AllocsPerRun(100, func() {
		ws.Reset()
		g.PredictBatchWith(ws, cc, qs)
	})
	if n > 1 {
		t.Fatalf("warm PredictBatchWith allocates %v times per run, want <= 1", n)
	}
}
