//go:build !race

package gp

import (
	"testing"

	"repro/internal/mat"
)

// TestPredictMeanZeroAlloc pins PredictMean — the hot call in candidate
// planning — to zero heap allocations, both direct and through a warm
// cross-covariance cache. (Skipped under -race, which instruments
// allocation.)
func TestPredictMeanZeroAlloc(t *testing.T) {
	g, qs := cacheTestModel(t, 16, 3)
	x := qs[0]
	if n := testing.AllocsPerRun(100, func() { g.PredictMean(x) }); n != 0 {
		t.Fatalf("PredictMean allocates %v times per run, want 0", n)
	}
	cc := g.NewCrossCache()
	cc.PredictMean(x) // warm the cache entry
	if n := testing.AllocsPerRun(100, func() { cc.PredictMean(x) }); n != 0 {
		t.Fatalf("CrossCache.PredictMean allocates %v times per run, want 0", n)
	}
}

// TestPredictBatchWithWarmAllocs bounds the warm-path batch prediction to
// the single per-call pointer slice for the cached cross-covariances: all
// float64 scratch comes from the workspace.
func TestPredictBatchWithWarmAllocs(t *testing.T) {
	g, qs := cacheTestModel(t, 16, 3)
	cc := g.NewCrossCache()
	ws := mat.NewWorkspace()
	ws.Reset()
	g.PredictBatchWith(ws, cc, qs) // warm cache and workspace
	n := testing.AllocsPerRun(100, func() {
		ws.Reset()
		g.PredictBatchWith(ws, cc, qs)
	})
	if n > 1 {
		t.Fatalf("warm PredictBatchWith allocates %v times per run, want <= 1", n)
	}
}
