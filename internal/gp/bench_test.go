package gp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/stats"
)

// benchData builds n noisy samples of a smooth 3-D surface, the same input
// dimensionality as pamo's per-clip outcome models.
func benchData(n int) ([][]float64, []float64) {
	rng := stats.NewRNG(uint64(n))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		xs[i] = x
		ys[i] = math.Sin(4*x[0]) + x[1]*x[2] + 0.01*rng.NormFloat64()
	}
	return xs, ys
}

func benchGP(b *testing.B, n int) *GP {
	b.Helper()
	xs, ys := benchData(n)
	g := New(kernel.NewMatern52(3), 1e-4)
	if err := g.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	return g
}

var benchSizes = []int{50, 200, 800}

func BenchmarkGPFit(b *testing.B) {
	for _, n := range benchSizes {
		xs, ys := benchData(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			g := New(kernel.NewMatern52(3), 1e-4)
			for i := 0; i < b.N; i++ {
				if err := g.Fit(xs, ys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGPAddObservation measures conditioning on one extra point via the
// incremental Cholesky fast path, the per-measurement cost of pamo's
// clipModels.refit after each observation.
func BenchmarkGPAddObservation(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			base := benchGP(b, n)
			x := []float64{0.31, 0.62, 0.93}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Shallow copy with a fresh Cholesky wrapper: Extend swaps
				// the factor matrix pointer, so base's factor stays intact.
				g := *base
				g.chol = &mat.Cholesky{L: base.chol.L, Jitter: base.chol.Jitter}
				if err := g.AddObservation(x, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGPPredict(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGP(b, n)
		q := []float64{0.4, 0.5, 0.6}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Predict(q)
			}
		})
	}
}

func BenchmarkGPPredictMean(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGP(b, n)
		q := []float64{0.4, 0.5, 0.6}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.PredictMean(q)
			}
		})
	}
}

// BenchmarkGPSampleJoint draws 32 joint samples at 16 query points — the
// shape of one shared-sample acquisition round per clip metric.
func BenchmarkGPSampleJoint(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGP(b, n)
		rng := stats.NewRNG(7)
		qs := make([][]float64, 16)
		for i := range qs {
			qs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.SampleJoint(qs, 32, rng)
			}
		})
	}
}
