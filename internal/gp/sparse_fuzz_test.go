package gp

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/kernel"
)

// FuzzSparseVsExactGP differentially fuzzes the inducing-point sparse GP
// against the exact GP on the same data, in the style of
// FuzzAddObservationVsFit:
//
//   - With an unbounded inducing budget (m = n) the SoR/FITC posterior IS
//     the exact posterior, so mean, variance, and log marginal likelihood
//     must agree within a conditioning-scaled tolerance.
//   - With a compressed budget (m < n) the posterior mean must stay within
//     the Nyström error envelope: ‖Kff − Qff‖∞ is bounded by the selection
//     residual, which the greedy pivoted-Cholesky selection reports, and the
//     mean error is at most that residual amplified by ‖α‖₁ ≤ n·‖y‖∞/σ².
func FuzzSparseVsExactGP(f *testing.F) {
	f.Add(uint64(1), 12, 3)
	f.Add(uint64(42), 20, 5)
	f.Add(uint64(7), 5, 8)
	f.Add(uint64(99), 28, 2)
	f.Fuzz(func(t *testing.T, seed uint64, n, noiseExp int) {
		n = 3 + absInt(n)%26
		noise := math.Pow(10, -float64(2+absInt(noiseExp)%5)) // 1e-2 .. 1e-6
		rng := rand.New(rand.NewPCG(seed, 0x59a5))

		// Inputs snap to a 0.05 grid with duplicates dropped: the sparse
		// path factors the noise-free K_uu, so coincident inputs would make
		// its conditioning unbounded — no finite tolerance covers that. The
		// exact GP always enjoys the +σ²I floor; keeping the fuzz domain at
		// bounded conditioning is what "conditioning-scaled tolerance"
		// means here.
		var xs [][]float64
		var ys []float64
		yMax := 0.0
		seen := make(map[int]bool, n)
		for len(xs) < n {
			cell := rng.IntN(61)
			if seen[cell] {
				continue
			}
			seen[cell] = true
			x := 0.05 * float64(cell)
			xs = append(xs, []float64{x})
			y := math.Sin(3*x) + 0.5*x + 0.01*rng.NormFloat64()
			ys = append(ys, y)
			if a := math.Abs(y); a > yMax {
				yMax = a
			}
		}
		mk := func() kernel.Kernel {
			k := kernel.NewMatern52(1)
			k.SetLogParams([]float64{0, math.Log(0.5)})
			return k
		}
		ex := New(mk(), noise)
		if err := ex.Fit(xs, ys); err != nil {
			t.Skipf("exact fit failed: %v", err)
		}

		// --- m ≥ n: exact equivalence up to the shared conditioning limit.
		full := NewSparse(mk(), noise, SparseOptions{MaxInducing: n, ResidualTol: 1e-300})
		if err := full.Fit(xs, ys); err != nil {
			t.Skipf("sparse fit failed: %v", err)
		}
		// Both posteriors solve systems whose condition grows like 1/noise;
		// the sparse path additionally squares the Gram inside P, so its
		// rounding floor is higher than the incremental-vs-full harness's.
		// The selection residual reports any numerical rank deficit the
		// greedy selection hit before covering all n points — the deficit is
		// real approximation error, amplified at most by ‖α‖₁.
		tol := math.Max(1e-5, 1e-10/noise) +
			full.SelectionResidual()*float64(n)*yMax/noise
		for _, q := range []float64{-0.5, 0.25, 1.0, 1.75, 2.5, 3.5} {
			ms, vs := full.Predict([]float64{q})
			me, ve := ex.Predict([]float64{q})
			if math.Abs(ms-me) > tol || math.Abs(vs-ve) > tol {
				t.Fatalf("m=n: n=%d noise=%g x=%v: sparse (%v, %v) vs exact (%v, %v), tol %v",
					n, noise, q, ms, vs, me, ve, tol)
			}
		}
		// The LML check guards against gross errors (wrong quad form, wrong
		// determinant), not precision: its quadratic term has magnitude
		// ~n·var(y)/σ² and its log-determinants come from the noise-free
		// K_uu factorization, whose jitter perturbs log|K_uu| by
		// jitter·tr(K_uu⁻¹) — a few parts in 10⁴ for smooth Grams. So the
		// band is relative and deliberately loose.
		lmlS, lmlE := full.LogMarginalLikelihood(), ex.LogMarginalLikelihood()
		lmlTol := tol*float64(n) + 3e-3*(1+math.Abs(lmlE))
		if d := math.Abs(lmlS - lmlE); d > lmlTol {
			t.Fatalf("m=n LML diverged by %v (sparse %v exact %v, tol %v)", d, lmlS, lmlE, lmlTol)
		}

		// --- m < n: the mean stays inside the Nyström error envelope.
		m := 2 + n/3
		sp := NewSparse(mk(), noise, SparseOptions{MaxInducing: m})
		if err := sp.Fit(xs, ys); err != nil {
			t.Skipf("compressed fit failed: %v", err)
		}
		if sp.M() > m {
			t.Fatalf("inducing set %d exceeds cap %d", sp.M(), m)
		}
		envelope := math.Max(1e-5, 1e-10/noise) +
			sp.SelectionResidual()*float64(n)*yMax/noise
		for _, q := range []float64{0.25, 1.0, 1.75, 2.5} {
			ms := sp.PredictMean([]float64{q})
			me := ex.PredictMean([]float64{q})
			if math.Abs(ms-me) > envelope {
				t.Fatalf("m=%d<n=%d noise=%g x=%v: sparse mean %v vs exact %v beyond envelope %v (resid %v)",
					sp.M(), n, noise, q, ms, me, envelope, sp.SelectionResidual())
			}
			// FITC variances are approximations, not bounded by the same
			// envelope, but they must stay finite and non-negative.
			if _, vs := sp.Predict([]float64{q}); vs < 0 || math.IsNaN(vs) || math.IsInf(vs, 0) {
				t.Fatalf("compressed variance %v invalid", vs)
			}
		}
	})
}
