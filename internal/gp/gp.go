// Package gp implements exact Gaussian process regression: Cholesky-based
// fitting, predictive means/variances, joint posterior sampling (needed by
// the Monte-Carlo batch acquisition functions), and marginal-likelihood
// hyperparameter optimization.
package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/optim"
)

const log2Pi = 1.8378770664093453

// GP is an exact Gaussian process regressor with a constant (empirical)
// mean function and homoscedastic observation noise.
type GP struct {
	Kern     kernel.Kernel
	NoiseVar float64 // observation noise variance σₙ²

	x     [][]float64
	y     mat.Vector // raw targets
	mean  float64    // constant mean subtracted before solving
	chol  *mat.Cholesky
	alpha mat.Vector // (K+σₙ²I)⁻¹ (y - mean)
	gen   uint64     // factorization epoch; see Generation

	// fallbacks, when set, additionally receives every SampleJoint MVN
	// fallback of THIS model, so an owner (e.g. one pamo.Scheduler) can
	// attribute degraded sampling to itself instead of reading the
	// process-wide counter shared with every other concurrent run.
	fallbacks *atomic.Uint64
}

// SetFallbackCounter injects a per-owner counter that is incremented (in
// addition to the process-wide MVNFallbacks counter) whenever this model's
// joint posterior sampling degrades to the deterministic mean.
func (g *GP) SetFallbackCounter(c *atomic.Uint64) { g.fallbacks = c }

// New returns an unfitted GP with the given kernel and noise variance.
func New(k kernel.Kernel, noiseVar float64) *GP {
	if noiseVar <= 0 {
		noiseVar = 1e-6
	}
	return &GP{Kern: k, NoiseVar: noiseVar}
}

// ErrNotFitted is returned by methods that require a prior Fit call.
var ErrNotFitted = errors.New("gp: model is not fitted")

// Regressor is the contract shared by the exact GP and the inducing-point
// SparseGP: conditioning, incremental updates, posterior queries, joint
// sampling, and hyperparameter handling. Schedulers program against it so
// the outcome-model family is a runtime knob rather than a compile-time
// choice.
type Regressor interface {
	Fit(xs [][]float64, ys []float64) error
	AddObservation(x []float64, y float64) error
	SetTargets(ys []float64) error
	N() int
	X() [][]float64
	Y() []float64
	Predict(x []float64) (mu, variance float64)
	PredictMean(x []float64) float64
	PredictBatch(xs [][]float64) (mat.Vector, *mat.Matrix)
	SampleJoint(xs [][]float64, nSamples int, rng *rand.Rand) [][]float64
	LogMarginalLikelihood() float64
	LeaveOneOut() (mu, variance []float64)
	LOOLogLikelihood() float64
	OptimizeHyperparams(nStarts int, rng *rand.Rand) error
	SetFallbackCounter(c *atomic.Uint64)
	Kernel() kernel.Kernel
	Noise() float64
	SetNoise(v float64)
	Generation() uint64
}

var (
	_ Regressor = (*GP)(nil)
	_ Regressor = (*SparseGP)(nil)
)

// Kernel returns the covariance kernel.
func (g *GP) Kernel() kernel.Kernel { return g.Kern }

// Noise returns the observation noise variance.
func (g *GP) Noise() float64 { return g.NoiseVar }

// SetNoise replaces the observation noise variance. Takes effect at the
// next Fit/refit, like kernel hyperparameter edits.
func (g *GP) SetNoise(v float64) { g.NoiseVar = v }

// N returns the number of training points.
func (g *GP) N() int { return len(g.x) }

// X returns the training inputs (not a copy).
func (g *GP) X() [][]float64 { return g.x }

// Y returns the training targets (not a copy).
func (g *GP) Y() []float64 { return g.y }

// Fit conditions the GP on inputs xs and targets ys. It replaces any
// previous training data.
func (g *GP) Fit(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("gp: %d inputs vs %d targets", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return errors.New("gp: empty training set")
	}
	for i, x := range xs {
		if len(x) != g.Kern.Dim() {
			return fmt.Errorf("gp: input %d has dim %d, kernel wants %d", i, len(x), g.Kern.Dim())
		}
	}
	g.x = xs
	g.y = mat.Vector(ys).Clone()
	g.mean = g.y.Mean()
	return g.refactor()
}

// AddObservation appends one training point without refactorizing from
// scratch: the Cholesky factor is extended in O(n²) (mat.Cholesky.Extend)
// and alpha is re-solved against the updated constant mean. When the
// extension is numerically infeasible — or the GP has never been fitted —
// it falls back to a full Fit/refactor, so the call always leaves the model
// conditioned on the enlarged training set.
//
// Hyperparameter changes invalidate the factor entirely; callers that tune
// hyperparameters must still go through Fit/OptimizeHyperparams.
func (g *GP) AddObservation(x []float64, y float64) error {
	if len(x) != g.Kern.Dim() {
		return fmt.Errorf("gp: input has dim %d, kernel wants %d", len(x), g.Kern.Dim())
	}
	if g.chol == nil {
		if len(g.x) == 0 {
			return g.Fit([][]float64{x}, []float64{y})
		}
		return ErrNotFitted
	}
	n := len(g.x)
	ks := mat.NewVector(n)
	for i, xi := range g.x {
		ks[i] = g.Kern.Eval(xi, x)
	}
	diag := g.Kern.Eval(x, x) + g.NoiseVar
	if err := g.chol.Extend(ks, diag); err != nil {
		// Numerically singular extension (e.g. a duplicate input): rebuild
		// with CholJitter, which can rescue it with fresh diagonal jitter.
		g.x = append(g.x, x)
		g.y = append(g.y, y)
		g.mean = g.y.Mean()
		return g.refactor()
	}
	g.x = append(g.x, x)
	g.y = append(g.y, y)
	return g.SetTargets(g.y)
}

// SetTargets replaces the training targets in place (same training inputs)
// and re-solves alpha against the existing Cholesky factor in O(n²). The
// factor depends only on the inputs and hyperparameters, so wholesale
// target rescaling — as done by standardizing wrappers after every new
// measurement — does not need a refactorization.
func (g *GP) SetTargets(ys []float64) error {
	if g.chol == nil {
		return ErrNotFitted
	}
	if len(ys) != len(g.x) {
		return fmt.Errorf("gp: %d targets for %d inputs", len(ys), len(g.x))
	}
	if &ys[0] != &g.y[0] {
		g.y = mat.Vector(ys).Clone()
	}
	g.mean = g.y.Mean()
	resid := g.y.Clone()
	for i := range resid {
		resid[i] -= g.mean
	}
	g.alpha = g.chol.SolveVec(resid)
	return nil
}

// refactor recomputes the Cholesky factor and alpha for the current data
// and hyperparameters, advancing the generation so cross-covariance caches
// drop entries computed under the old kernel or training prefix.
func (g *GP) refactor() error {
	g.gen++
	n := len(g.x)
	k := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.Kern.Eval(g.x[i], g.x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	k.AddScaledEye(g.NoiseVar)
	c, err := mat.CholJitter(k)
	if err != nil {
		return fmt.Errorf("gp: covariance factorization: %w", err)
	}
	g.chol = c
	resid := g.y.Clone()
	for i := range resid {
		resid[i] -= g.mean
	}
	g.alpha = c.SolveVec(resid)
	return nil
}

// Predict returns the posterior mean and variance of the latent function at
// x. The variance excludes observation noise.
func (g *GP) Predict(x []float64) (mu, variance float64) {
	if g.chol == nil {
		panic(ErrNotFitted)
	}
	n := len(g.x)
	ks := mat.NewVector(n)
	for i := range g.x {
		ks[i] = g.Kern.Eval(g.x[i], x)
	}
	mu = g.mean + ks.Dot(g.alpha)
	v := mat.ForwardSolve(g.chol.L, ks)
	variance = g.Kern.Eval(x, x) - v.Dot(v)
	if variance < 0 {
		variance = 0
	}
	return mu, variance
}

// PredictMean returns only the posterior mean at x. It skips the O(n²)
// triangular solve Predict performs for the variance, leaving n kernel
// evaluations plus one dot product — the right call for hot loops (candidate
// planning, outcome prediction) that never read the variance.
func (g *GP) PredictMean(x []float64) float64 {
	if g.chol == nil {
		panic(ErrNotFitted)
	}
	var s float64
	for i, xi := range g.x {
		s += g.Kern.Eval(xi, x) * g.alpha[i]
	}
	return g.mean + s
}

// PredictBatch returns the joint posterior mean vector and covariance
// matrix of the latent function at the query points.
func (g *GP) PredictBatch(xs [][]float64) (mu mat.Vector, cov *mat.Matrix) {
	if g.chol == nil {
		panic(ErrNotFitted)
	}
	n, q := len(g.x), len(xs)
	// Cross-covariances: Ks is n×q.
	ks := mat.NewMatrix(n, q)
	for i := 0; i < n; i++ {
		for j := 0; j < q; j++ {
			ks.Set(i, j, g.Kern.Eval(g.x[i], xs[j]))
		}
	}
	// V = L⁻¹·Ks (n×q), computed column-wise.
	v := mat.NewMatrix(n, q)
	col := mat.NewVector(n)
	mu = mat.NewVector(q)
	for j := 0; j < q; j++ {
		for i := 0; i < n; i++ {
			col[i] = ks.At(i, j)
		}
		sol := mat.ForwardSolve(g.chol.L, col)
		for i := 0; i < n; i++ {
			v.Set(i, j, sol[i])
		}
		mu[j] = g.mean + col.Dot(g.alpha)
	}
	// cov = K** - VᵀV.
	cov = mat.NewMatrix(q, q)
	for a := 0; a < q; a++ {
		for b := a; b < q; b++ {
			s := g.Kern.Eval(xs[a], xs[b])
			for i := 0; i < n; i++ {
				s -= v.At(i, a) * v.At(i, b)
			}
			cov.Set(a, b, s)
			cov.Set(b, a, s)
		}
	}
	return mu, cov
}

// SampleJoint draws nSamples correlated samples from the joint posterior at
// xs. The result is nSamples×len(xs).
func (g *GP) SampleJoint(xs [][]float64, nSamples int, rng *rand.Rand) [][]float64 {
	mu, cov := g.PredictBatch(xs)
	return SampleMVNCounted(mu, cov, nSamples, rng, g.fallbacks)
}

// mvnFallbacks counts SampleMVN calls that degraded to the deterministic
// mean because the covariance could not be factorized even with jitter.
// Incremented atomically so concurrent samplers can share it; read it with
// MVNFallbacks.
var mvnFallbacks atomic.Uint64

// MVNFallbacks returns the process-wide number of SampleMVN calls that
// silently returned the deterministic mean instead of posterior draws.
// Consumers (e.g. pamo's diagnostics) snapshot it before a run and report
// the delta, so degraded sampling is visible instead of silent.
func MVNFallbacks() uint64 { return mvnFallbacks.Load() }

// SampleMVN draws nSamples vectors from N(mu, cov) using a jittered
// Cholesky factor. A covariance that is numerically singular (common for
// posterior covariances at nearly-duplicated points) is handled by the
// jitter; if factorization still fails the deterministic mean is returned
// for every sample and the MVNFallbacks counter is incremented.
func SampleMVN(mu mat.Vector, cov *mat.Matrix, nSamples int, rng *rand.Rand) [][]float64 {
	return SampleMVNCounted(mu, cov, nSamples, rng, nil)
}

// SampleMVNCounted is SampleMVN with an optional per-owner fallback
// counter: when the covariance cannot be factorized, both the process-wide
// counter and (if non-nil) counter are incremented, so a consumer that owns
// several models can attribute degraded sampling to itself even while other
// samplers run concurrently in the same process.
func SampleMVNCounted(mu mat.Vector, cov *mat.Matrix, nSamples int, rng *rand.Rand, counter *atomic.Uint64) [][]float64 {
	q := len(mu)
	out := make([][]float64, nSamples)
	c, err := mat.CholJitter(cov.Clone())
	if err != nil {
		mvnFallbacks.Add(1)
		if counter != nil {
			counter.Add(1)
		}
	}
	for s := 0; s < nSamples; s++ {
		row := make([]float64, q)
		copy(row, mu)
		if err == nil {
			z := mat.NewVector(q)
			for i := range z {
				z[i] = rng.NormFloat64()
			}
			for i := 0; i < q; i++ {
				var acc float64
				for j := 0; j <= i; j++ {
					acc += c.L.At(i, j) * z[j]
				}
				row[i] += acc
			}
		}
		out[s] = row
	}
	return out
}

// LogMarginalLikelihood returns log p(y | X, θ) under the current
// hyperparameters.
func (g *GP) LogMarginalLikelihood() float64 {
	if g.chol == nil {
		panic(ErrNotFitted)
	}
	n := float64(len(g.x))
	resid := g.y.Clone()
	for i := range resid {
		resid[i] -= g.mean
	}
	return -0.5*resid.Dot(g.alpha) - 0.5*g.chol.LogDet() - 0.5*n*log2Pi
}

// OptimizeHyperparams maximizes the log marginal likelihood over the
// kernel's log-parameters and the log noise variance using multi-start
// Nelder–Mead. nStarts must be ≥ 1 — a non-positive count would silently
// leave the hyperparameters untouched, so it is rejected explicitly. The GP
// must already be fitted; on return it is refitted with the best
// hyperparameters found.
func (g *GP) OptimizeHyperparams(nStarts int, rng *rand.Rand) error {
	if nStarts <= 0 {
		return fmt.Errorf("gp: OptimizeHyperparams needs nStarts >= 1, got %d", nStarts)
	}
	if g.chol == nil {
		return ErrNotFitted
	}
	kp := g.Kern.LogParams()
	x0 := append(append([]float64(nil), kp...), math.Log(g.NoiseVar))

	obj := func(p []float64) float64 {
		for _, v := range p {
			// Keep the optimizer inside a numerically sane box.
			if v < -12 || v > 8 {
				return math.Inf(1)
			}
		}
		g.Kern.SetLogParams(p[:len(p)-1])
		g.NoiseVar = math.Exp(p[len(p)-1])
		if err := g.refactor(); err != nil {
			return math.Inf(1)
		}
		return -g.LogMarginalLikelihood()
	}

	res := optim.MultiStartNelderMead(obj, x0, nStarts, 1.5, rng, optim.NelderMeadOptions{MaxIters: 250 * len(x0), TolF: 1e-7, TolX: 1e-4})
	if math.IsInf(res.F, 1) {
		// Restore the original parameters; nothing better was found.
		g.Kern.SetLogParams(x0[:len(x0)-1])
		g.NoiseVar = math.Exp(x0[len(x0)-1])
		return g.refactor()
	}
	g.Kern.SetLogParams(res.X[:len(res.X)-1])
	g.NoiseVar = math.Exp(res.X[len(res.X)-1])
	return g.refactor()
}
