package gp

import (
	"math"
	"testing"

	"repro/internal/kernel"
)

// regs adapts a slice of exact GPs to the Regressor slice PoolHyperparams
// takes, mapping nil pointers to nil interface values.
func regs(gs ...*GP) []Regressor {
	out := make([]Regressor, len(gs))
	for i, g := range gs {
		if g != nil {
			out[i] = g
		}
	}
	return out
}

func TestPoolHyperparamsMeans(t *testing.T) {
	mk := func(variance, ls, noise float64) *GP {
		k := kernel.NewMatern52(1)
		k.SetLogParams([]float64{math.Log(variance), math.Log(ls)})
		return New(k, noise)
	}
	donors := regs(mk(1, 0.1, 1e-4), mk(4, 0.4, 1e-2))
	lp, noise, ok := PoolHyperparams(donors)
	if !ok {
		t.Fatal("pooling failed")
	}
	// Log-space mean = geometric mean on the natural scale.
	if got, want := math.Exp(lp[0]), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("pooled variance = %v, want %v", got, want)
	}
	if got, want := math.Exp(lp[1]), 0.2; math.Abs(got-want) > 1e-12 {
		t.Errorf("pooled lengthscale = %v, want %v", got, want)
	}
	if want := 1e-3; math.Abs(noise-want) > 1e-12 {
		t.Errorf("pooled noise = %v, want %v", noise, want)
	}
}

func TestPoolHyperparamsRejects(t *testing.T) {
	if _, _, ok := PoolHyperparams(nil); ok {
		t.Error("empty donor set pooled")
	}
	if _, _, ok := PoolHyperparams(regs(nil)); ok {
		t.Error("nil donor pooled")
	}
	mixed := regs(New(kernel.NewRBF(1), 1e-3), New(kernel.NewRBF(2), 1e-3))
	if _, _, ok := PoolHyperparams(mixed); ok {
		t.Error("mismatched kernel dimensions pooled")
	}
}

func TestPoolHyperparamsNoiseFloor(t *testing.T) {
	// A jitter-free donor must not drive the geometric mean to zero.
	donors := regs(New(kernel.NewRBF(1), 0), New(kernel.NewRBF(1), 1e-3))
	_, noise, ok := PoolHyperparams(donors)
	if !ok || noise <= 0 {
		t.Fatalf("pooling with zero-noise donor: noise=%v ok=%v", noise, ok)
	}
}

// TestWarmStartBeatsColdFewShot is the differential test for the warm-start
// path: on a fast-varying target with only a handful of observations, a GP
// whose hyperparameters are pooled from donors that learned related tasks
// must out-predict a cold GP left at kernel defaults. The donors' tuned
// lengthscales (≈0.15) match the target's variation; the cold default (1.0)
// oversmooths it.
func TestWarmStartBeatsColdFewShot(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(14 * x) }
	mkDonor := func(ls float64) *GP {
		k := kernel.NewMatern52(1)
		k.SetLogParams([]float64{math.Log(1.0), math.Log(ls)})
		return New(k, 1e-4)
	}
	donors := regs(mkDonor(0.12), mkDonor(0.18), mkDonor(0.15))
	lp, noise, ok := PoolHyperparams(donors)
	if !ok {
		t.Fatal("pooling failed")
	}

	var xs [][]float64
	var ys []float64
	for i := 0; i < 8; i++ {
		x := float64(i) / 7
		xs = append(xs, []float64{x})
		ys = append(ys, f(x))
	}

	warm := New(kernel.NewMatern52(1), noise)
	warm.Kern.SetLogParams(lp)
	if err := warm.Fit(xs, ys); err != nil {
		t.Fatalf("warm fit: %v", err)
	}
	cold := New(kernel.NewMatern52(1), 1e-4)
	if err := cold.Fit(xs, ys); err != nil {
		t.Fatalf("cold fit: %v", err)
	}

	rmse := func(g *GP) float64 {
		var s float64
		n := 0
		for x := 0.0; x <= 1.0; x += 0.01 {
			d := g.PredictMean([]float64{x}) - f(x)
			s += d * d
			n++
		}
		return math.Sqrt(s / float64(n))
	}
	w, c := rmse(warm), rmse(cold)
	if !(w < c) {
		t.Fatalf("warm RMSE %v not better than cold %v", w, c)
	}
}
