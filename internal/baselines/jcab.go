// Package baselines reimplements the two comparison schedulers of the
// paper's evaluation at the algorithmic level: JCAB (Zhang et al., ToN
// 2021 — Lyapunov drift-plus-penalty configuration adaptation with
// First-Fit placement) and FACT (Liu et al., INFOCOM 2018 — block
// coordinate descent over resolution and server allocation). Both are
// single-objective optimizers with linearly weighted metrics and neither
// controls delay jitter, which is exactly the gap PaMO exploits.
package baselines

import (
	"context"
	"errors"
	"math"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/videosim"
)

// JCABOptions tunes the JCAB baseline.
type JCABOptions struct {
	WAcc   float64 // weight of accuracy in the drift-plus-penalty objective
	WEng   float64 // weight of energy
	V      float64 // Lyapunov trade-off parameter (default 50)
	Rounds int     // virtual-queue iterations (default 25)
	Budget float64 // energy budget in W (default: half the max-config power)
	Seed   uint64
}

func (o JCABOptions) withDefaults(sys *objective.System) JCABOptions {
	if o.WAcc == 0 {
		o.WAcc = 1
	}
	if o.WEng == 0 {
		o.WEng = 1
	}
	if o.V == 0 {
		o.V = 50
	}
	if o.Rounds == 0 {
		o.Rounds = 25
	}
	if o.Budget == 0 {
		maxCfg := videosim.Config{
			Resolution: videosim.Resolutions[len(videosim.Resolutions)-1],
			FPS:        videosim.FrameRates[len(videosim.FrameRates)-1],
		}
		var p float64
		for _, c := range sys.Clips {
			p += c.Power(maxCfg)
		}
		o.Budget = p / 2
	}
	return o
}

// ErrNoPlacement is returned when First-Fit cannot place the streams even
// at the minimum configuration.
var ErrNoPlacement = errors.New("baselines: first-fit placement failed at minimum configuration")

// JCAB runs the Lyapunov-style baseline: each round, every stream picks
// the configuration maximizing V·w_acc·acc − Q·w_eng·power; the virtual
// energy queue Q accumulates budget overruns. Placement is First-Fit under
// the utilization constraint only (Const1), with per-stream config
// downgrade on placement failure. Camera offsets are uncoordinated
// (random), so delay jitter is whatever it happens to be. ctx is checked
// between rounds and placement attempts.
func JCAB(ctx context.Context, sys *objective.System, opt JCABOptions) (eva.Decision, error) {
	opt = opt.withDefaults(sys)
	rng := stats.NewRNG(opt.Seed + 0x1CAB)
	grid := eva.ConfigGrid()

	// Drift-plus-penalty configuration adaptation. The virtual queue makes
	// per-round choices oscillate around the budget (bang-bang); Lyapunov
	// guarantees concern the *time average*, so the static decision takes
	// each video's modal configuration over the rounds.
	q := 0.0
	counts := make([]map[videosim.Config]int, sys.M())
	for i := range counts {
		counts[i] = map[videosim.Config]int{}
	}
	for r := 0; r < opt.Rounds; r++ {
		if err := ctx.Err(); err != nil {
			return eva.Decision{}, err
		}
		var totalPower float64
		for i, clip := range sys.Clips {
			best, bestV := grid[0], math.Inf(-1)
			for _, cfg := range grid {
				v := opt.V*opt.WAcc*clip.Accuracy(cfg) - q*opt.WEng*clip.Power(cfg)
				if v > bestV {
					best, bestV = cfg, v
				}
			}
			counts[i][best]++
			totalPower += clip.Power(best)
		}
		q = math.Max(0, q+totalPower-opt.Budget)
	}
	cfgs := make([]videosim.Config, sys.M())
	for i := range cfgs {
		bestN := -1
		for cfg, n := range counts[i] {
			if n > bestN || (n == bestN && less(cfg, cfgs[i])) {
				cfgs[i], bestN = cfg, n
			}
		}
	}

	// First-Fit placement with downgrade-on-failure. The attempt budget
	// covers walking every video from the max to the min configuration.
	maxAttempts := 1 + sys.M()*(len(videosim.Resolutions)+len(videosim.FrameRates))
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return eva.Decision{}, err
		}
		streams := eva.BuildStreams(sys, cfgs)
		assign, failed := firstFit(streams, sys.N())
		if failed < 0 {
			return eva.Decision{
				Configs: cfgs,
				Streams: streams,
				Assign:  assign,
				Offsets: eva.RandomOffsets(streams, rng),
			}, nil
		}
		// Downgrade the failing video; when it is already at the minimum,
		// downgrade the heaviest remaining video instead (first-fit never
		// revisits early placements, so capacity hogs must be squeezed).
		video := streams[failed].Video
		if !downgrade(&cfgs[video]) {
			heaviest, load := -1, 0.0
			for i, clip := range sys.Clips {
				u := clip.ProcTimeOf(cfgs[i]) * cfgs[i].FPS
				if u > load && downgradable(cfgs[i]) {
					heaviest, load = i, u
				}
			}
			if heaviest < 0 {
				return eva.Decision{}, ErrNoPlacement
			}
			downgrade(&cfgs[heaviest])
		}
	}
	return eva.Decision{}, ErrNoPlacement
}

// FirstFit places each stream on the first server whose utilization stays
// ≤ 1 (Const1 only — no jitter control). It returns the assignment and -1,
// or the index of the first stream that fits nowhere. Exported for the
// zero-jitter ablation study.
func FirstFit(streams []sched.Stream, n int) ([]int, int) {
	return firstFit(streams, n)
}

// firstFit places each stream on the first server whose utilization stays
// ≤ 1. It returns the assignment and -1, or the index of the first stream
// that fits nowhere.
func firstFit(streams []sched.Stream, n int) ([]int, int) {
	load := make([]float64, n)
	assign := make([]int, len(streams))
	for i, s := range streams {
		u := s.Proc / s.Period.Float()
		placed := false
		for j := 0; j < n; j++ {
			if load[j]+u <= 1+1e-12 {
				load[j] += u
				assign[i] = j
				placed = true
				break
			}
		}
		if !placed {
			return nil, i
		}
	}
	return assign, -1
}

// downgradable reports whether c has any knob above its minimum.
func downgradable(c videosim.Config) bool {
	return indexOf(videosim.FrameRates, c.FPS) > 0 || indexOf(videosim.Resolutions, c.Resolution) > 0
}

// downgrade lowers a configuration one knob step (fps first, then
// resolution); it reports false when already at the minimum.
func downgrade(c *videosim.Config) bool {
	if i := indexOf(videosim.FrameRates, c.FPS); i > 0 {
		c.FPS = videosim.FrameRates[i-1]
		return true
	}
	if i := indexOf(videosim.Resolutions, c.Resolution); i > 0 {
		c.Resolution = videosim.Resolutions[i-1]
		return true
	}
	return false
}

func indexOf(grid []float64, v float64) int {
	for i, g := range grid {
		if g == v {
			return i
		}
	}
	return 0
}

// less orders configs deterministically so modal ties don't depend on map
// iteration order.
func less(a, b videosim.Config) bool {
	if a.Resolution != b.Resolution {
		return a.Resolution < b.Resolution
	}
	return a.FPS < b.FPS
}
