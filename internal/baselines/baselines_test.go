package baselines

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/sched"
	"repro/internal/videosim"
)

func testSys(m, n int, seed uint64) *objective.System {
	servers := make([]cluster.Server, n)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: float64(10+5*j) * 1e6}
	}
	return &objective.System{Clips: videosim.StandardClips(m, seed), Servers: servers}
}

func checkDecision(t *testing.T, sys *objective.System, d eva.Decision) {
	t.Helper()
	if len(d.Configs) != sys.M() {
		t.Fatalf("%d configs for %d videos", len(d.Configs), sys.M())
	}
	if len(d.Streams) != len(d.Assign) || len(d.Streams) != len(d.Offsets) {
		t.Fatalf("stream/assign/offset length mismatch: %d/%d/%d", len(d.Streams), len(d.Assign), len(d.Offsets))
	}
	for i, a := range d.Assign {
		if a < 0 || a >= sys.N() {
			t.Fatalf("stream %d assigned to %d", i, a)
		}
	}
	// Const1 must hold for both baselines (they respect utilization).
	if !sched.CheckConst1(d.Streams, d.Assign, sys.N()) {
		t.Fatal("Const1 violated")
	}
	// Evaluation must succeed and be finite.
	out := eva.Evaluate(sys, d)
	for k, v := range out {
		if v < 0 {
			t.Fatalf("objective %s negative: %v", objective.Names[k], v)
		}
	}
}

func TestJCABProducesValidDecision(t *testing.T) {
	sys := testSys(8, 5, 99)
	d, err := JCAB(context.Background(), sys, JCABOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, sys, d)
}

func TestJCABHandlesHeavyLoad(t *testing.T) {
	// 12 videos on 3 servers: placement requires aggressive downgrading.
	sys := testSys(12, 3, 7)
	d, err := JCAB(context.Background(), sys, JCABOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, sys, d)
}

func TestJCABEnergyWeightLowersPower(t *testing.T) {
	sys := testSys(6, 4, 11)
	light, err := JCAB(context.Background(), sys, JCABOptions{WEng: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := JCAB(context.Background(), sys, JCABOptions{WEng: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pl := eva.Evaluate(sys, light)[objective.Energy]
	ph := eva.Evaluate(sys, heavy)[objective.Energy]
	if ph > pl {
		t.Fatalf("heavier energy weight increased power: %v -> %v", pl, ph)
	}
}

func TestJCABDeterministicForSeed(t *testing.T) {
	sys := testSys(5, 3, 13)
	a, err := JCAB(context.Background(), sys, JCABOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := JCAB(context.Background(), sys, JCABOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Configs {
		if a.Configs[i] != b.Configs[i] {
			t.Fatalf("config %d differs across identical runs", i)
		}
	}
}

func TestFACTProducesValidDecision(t *testing.T) {
	sys := testSys(8, 5, 99)
	d, err := FACT(context.Background(), sys, FACTOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, sys, d)
}

func TestFACTPrefersFastUplinkForHeavyStreams(t *testing.T) {
	sys := testSys(2, 2, 21)
	// Server 1 has triple the uplink of server 0.
	sys.Servers[0].Uplink = 5e6
	sys.Servers[1].Uplink = 1.5e7
	d, err := FACT(context.Background(), sys, FACTOptions{WLat: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// With heavy latency weight and room on both servers, at least one
	// stream should sit on the fast uplink.
	onFast := false
	for _, a := range d.Assign {
		if a == 1 {
			onFast = true
		}
	}
	if !onFast {
		t.Fatalf("no stream on the fast server: %v", d.Assign)
	}
}

func TestFACTLatencyWeightTradesAccuracy(t *testing.T) {
	sys := testSys(6, 3, 31)
	latHeavy, err := FACT(context.Background(), sys, FACTOptions{WLat: 10, WAcc: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	accHeavy, err := FACT(context.Background(), sys, FACTOptions{WLat: 0.1, WAcc: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ol := eva.Evaluate(sys, latHeavy)
	oa := eva.Evaluate(sys, accHeavy)
	if oa[objective.Accuracy] < ol[objective.Accuracy] {
		t.Fatalf("accuracy-heavy FACT less accurate: %v vs %v", oa[objective.Accuracy], ol[objective.Accuracy])
	}
}

func TestFACTAvoidsOverload(t *testing.T) {
	sys := testSys(10, 4, 41)
	d, err := FACT(context.Background(), sys, FACTOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// FACT's internal model forbids utilization ≥ 1, so the decision's
	// per-server load must stay below 1.
	load := make([]float64, sys.N())
	for i, st := range d.Streams {
		load[d.Assign[i]] += st.Proc / st.Period.Float()
	}
	for j, u := range load {
		if u > 1+1e-9 {
			t.Fatalf("server %d overloaded: %v", j, u)
		}
	}
}

func TestDowngradeLadder(t *testing.T) {
	c := videosim.Config{Resolution: videosim.Resolutions[1], FPS: videosim.FrameRates[1]}
	steps := 0
	for downgrade(&c) {
		steps++
		if steps > 10 {
			t.Fatal("downgrade does not terminate")
		}
	}
	if c.Resolution != videosim.Resolutions[0] || c.FPS != videosim.FrameRates[0] {
		t.Fatalf("downgrade ended at %+v", c)
	}
	if downgradable(c) {
		t.Fatal("min config reported downgradable")
	}
}

func TestFirstFitRespectsCapacity(t *testing.T) {
	streams := []sched.Stream{
		{Period: sched.RatFromFPS(10), Proc: 0.04},
		{Period: sched.RatFromFPS(10), Proc: 0.04},
		{Period: sched.RatFromFPS(10), Proc: 0.04},
	}
	assign, failed := firstFit(streams, 2)
	if failed >= 0 {
		t.Fatalf("fit should succeed: failed=%d", failed)
	}
	load := make([]float64, 2)
	for i, s := range streams {
		load[assign[i]] += s.Proc / s.Period.Float()
	}
	for j, u := range load {
		if u > 1 {
			t.Fatalf("server %d over capacity: %v", j, u)
		}
	}
	// Infeasible case.
	heavy := []sched.Stream{
		{Period: sched.RatFromFPS(10), Proc: 0.11},
	}
	if _, failed := firstFit(heavy, 1); failed != 0 {
		t.Fatalf("overloaded stream not rejected: %d", failed)
	}
}
