package baselines

import (
	"context"
	"math"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/stats"
	"repro/internal/videosim"
)

// FACTOptions tunes the FACT baseline.
type FACTOptions struct {
	WLat    float64 // weight of latency
	WAcc    float64 // weight of (1 − accuracy)
	MaxIter int     // BCD sweeps (default 20)
	FPS     float64 // fixed frame rate (FACT does not adapt it; default max)
	Seed    uint64
}

func (o FACTOptions) withDefaults() FACTOptions {
	if o.WLat == 0 {
		o.WLat = 1
	}
	if o.WAcc == 0 {
		o.WAcc = 1
	}
	if o.MaxIter == 0 {
		o.MaxIter = 20
	}
	if o.FPS == 0 {
		// FACT does not adapt the frame rate; a mid-grid default mirrors an
		// application-chosen rate (its AR use case runs well below camera max).
		o.FPS = 15
	}
	return o
}

// FACT runs the block-coordinate-descent baseline: it alternates
// (a) per-stream resolution selection minimizing w_lat·latency + w_acc·(1−acc)
// with a queueing-aware latency estimate, and (b) greedy re-assignment of
// each stream to the server minimizing its estimated latency, until a sweep
// changes nothing. Frame rate stays fixed (FACT ignores bandwidth and
// energy), and offsets are uncoordinated. ctx is checked between BCD
// sweeps.
func FACT(ctx context.Context, sys *objective.System, opt FACTOptions) (eva.Decision, error) {
	opt = opt.withDefaults()
	rng := stats.NewRNG(opt.Seed + 0xFAC7)
	m := sys.M()

	// State: per-video resolution index and per-video server.
	resIdx := make([]int, m)
	assign := make([]int, m)
	for i := range resIdx {
		resIdx[i] = len(videosim.Resolutions) / 2
		assign[i] = i % sys.N()
	}
	cfg := func(i int) videosim.Config {
		return videosim.Config{Resolution: videosim.Resolutions[resIdx[i]], FPS: opt.FPS}
	}
	// serverLoad returns Σ s·p utilization on server j, excluding video skip.
	serverLoad := func(j, skip int) float64 {
		var u float64
		for i := 0; i < m; i++ {
			if i == skip || assign[i] != j {
				continue
			}
			u += sys.Clips[i].ProcTimeOf(cfg(i)) * cfg(i).FPS
		}
		return u
	}
	// latEst is FACT's internal latency model: processing + transmission,
	// inflated by the server's utilization (an M/D/1-style congestion
	// factor capped at 10×).
	latEst := func(i, j int, c videosim.Config) float64 {
		clip := sys.Clips[i]
		proc := clip.ProcTime(c.Resolution)
		tx := clip.BitsPerFrame(c.Resolution) / sys.Servers[j].Uplink
		u := serverLoad(j, i) + proc*c.FPS
		if u >= 1 {
			// Overload means unbounded queueing; FACT's model forbids it.
			return 1e3 * u
		}
		inflate := 1.0
		if u > 0.7 {
			inflate = math.Min(10, 1/(1-u))
		}
		return (proc + tx) * inflate
	}
	cost := func(i, j int, c videosim.Config) float64 {
		return opt.WLat*latEst(i, j, c) + opt.WAcc*(1-sys.Clips[i].Accuracy(c))
	}

	for iter := 0; iter < opt.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return eva.Decision{}, err
		}
		changed := false
		// Block 1: resolutions.
		for i := 0; i < m; i++ {
			best, bestC := resIdx[i], math.Inf(1)
			for ri := range videosim.Resolutions {
				c := videosim.Config{Resolution: videosim.Resolutions[ri], FPS: opt.FPS}
				if v := cost(i, assign[i], c); v < bestC {
					best, bestC = ri, v
				}
			}
			if best != resIdx[i] {
				resIdx[i] = best
				changed = true
			}
		}
		// Block 2: assignment.
		for i := 0; i < m; i++ {
			best, bestC := assign[i], math.Inf(1)
			for j := 0; j < sys.N(); j++ {
				if v := cost(i, j, cfg(i)); v < bestC {
					best, bestC = j, v
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	cfgs := make([]videosim.Config, m)
	for i := range cfgs {
		cfgs[i] = cfg(i)
	}
	streams := eva.BuildStreams(sys, cfgs)
	// Sub-streams inherit their video's server (FACT is unaware of
	// splitting; an overloaded stream simply queues).
	sAssign := make([]int, len(streams))
	for k, st := range streams {
		sAssign[k] = assign[st.Video]
	}
	return eva.Decision{
		Configs: cfgs,
		Streams: streams,
		Assign:  sAssign,
		Offsets: eva.RandomOffsets(streams, rng),
	}, nil
}
