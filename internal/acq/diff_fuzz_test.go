package acq

import (
	"math"
	"math/rand/v2"
	"testing"
)

// replaySampler replays rows of a fixed draw matrix z[sample][point]. Points
// are index-encoded — point i is []float64{float64(i)} — so any subset of
// the universe samples exactly the corresponding columns of z, in request
// order, ignoring the rng. This makes the per-trial acquisitions and the
// shared-sample scorer integrate over the *same* draws, turning their
// statistical equivalence into a deterministic, checkable identity.
type replaySampler struct {
	z [][]float64
}

func (r replaySampler) SampleBenefit(points [][]float64, nSamples int, _ *rand.Rand) [][]float64 {
	if nSamples > len(r.z) {
		nSamples = len(r.z)
	}
	out := make([][]float64, nSamples)
	for s := 0; s < nSamples; s++ {
		row := make([]float64, len(points))
		for j, p := range points {
			row[j] = r.z[s][int(p[0])]
		}
		out[s] = row
	}
	return out
}

func point(i int) []float64 { return []float64{float64(i)} }

// FuzzSharedVsPerTrial differentially fuzzes the shared-sample greedy batch
// construction against the per-trial Monte-Carlo acquisitions. Restricted to
// a common draw matrix, both paths accumulate the identical per-sample terms
// in the identical order, so the scores must agree to float round-off and the
// greedy argmax choices must match exactly — any divergence is a real bug in
// one of the two estimators (this is the harness that would have caught an
// incumbent-column or hinge-baseline mix-up in SharedScorer).
func FuzzSharedVsPerTrial(f *testing.F) {
	f.Add(uint64(1), 6, 8, 2, 2, byte(0))
	f.Add(uint64(42), 10, 16, 0, 3, byte(1))
	f.Add(uint64(7), 4, 5, 3, 1, byte(2))
	f.Add(uint64(1234), 12, 32, 1, 3, byte(3))
	f.Fuzz(func(t *testing.T, seed uint64, nPts, nSamples, nObs, batch int, kind byte) {
		nPts = 2 + abs(nPts)%11        // universe size 2..12
		nSamples = 1 + abs(nSamples)%32 // draws 1..32
		nObs = abs(nObs) % 4
		if nObs >= nPts {
			nObs = nPts - 1
		}
		batch = 1 + abs(batch)%3
		nCand := nPts - nObs
		if batch > nCand {
			batch = nCand
		}

		rng := rand.New(rand.NewPCG(seed, 0x5eed))
		z := make([][]float64, nSamples)
		for s := range z {
			z[s] = make([]float64, nPts)
			for j := range z[s] {
				z[s][j] = rng.NormFloat64()
			}
		}
		rs := replaySampler{z: z}

		// Candidates are columns [0, nCand), observed points the rest.
		obsPts := make([][]float64, nObs)
		obsCols := make([]int, nObs)
		for k := 0; k < nObs; k++ {
			obsPts[k] = point(nCand + k)
			obsCols[k] = nCand + k
		}
		const beta = 1.5
		best := z[0][0] // arbitrary but deterministic qEI incumbent value

		var sc *SharedScorer
		switch kind % 4 {
		case 0:
			sc = NewSharedQNEI(z, obsCols)
		case 1:
			sc = NewSharedQEI(z, best)
		case 2:
			sc = NewSharedQSR(z)
		default:
			sc = NewSharedQUCB(z, beta)
		}
		perTrial := func(trial [][]float64) float64 {
			switch kind % 4 {
			case 0:
				return QNEI(rs, trial, obsPts, nSamples, rng)
			case 1:
				return QEI(rs, trial, best, nSamples, rng)
			case 2:
				return QSR(rs, trial, nSamples, rng)
			default:
				return QUCB(rs, trial, beta, nSamples, rng)
			}
		}

		var committed [][]float64
		inBatch := make([]bool, nCand)
		for step := 0; step < batch; step++ {
			bestShared, bestTrial := math.Inf(-1), math.Inf(-1)
			argShared, argTrial := -1, -1
			for c := 0; c < nCand; c++ {
				if inBatch[c] {
					continue
				}
				sv := sc.Score(c)
				trial := append(append([][]float64{}, committed...), point(c))
				tv := perTrial(trial)
				if d := math.Abs(sv - tv); d > 1e-12*(1+math.Abs(tv)) {
					t.Fatalf("step %d cand %d kind %d: shared %v vs per-trial %v (Δ=%v)",
						step, c, kind%4, sv, tv, d)
				}
				if sv > bestShared {
					bestShared, argShared = sv, c
				}
				if tv > bestTrial {
					bestTrial, argTrial = tv, c
				}
			}
			if argShared != argTrial {
				t.Fatalf("step %d kind %d: greedy argmax diverged: shared picked %d (%v), per-trial %d (%v)",
					step, kind%4, argShared, bestShared, argTrial, bestTrial)
			}
			sc.Add(argShared)
			committed = append(committed, point(argShared))
			inBatch[argShared] = true
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
