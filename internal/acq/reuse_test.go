package acq

import (
	"math"
	"math/rand/v2"
	"testing"
)

func testDraws(seed uint64, nSamples, nPoints int) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 0x0d12))
	z := make([][]float64, nSamples)
	for s := range z {
		z[s] = make([]float64, nPoints)
		for i := range z[s] {
			z[s][i] = rng.NormFloat64()
		}
	}
	return z
}

func TestDrawCacheReuseWithinTolerance(t *testing.T) {
	c := NewDrawCache(4)
	z := testDraws(1, 8, 5)
	probe := []float64{1, 2, 3}
	c.Store("u", probe, z)

	if got, ok := c.TryReuse("u", []float64{1, 2, 3}, 0); !ok || &got[0][0] != &z[0][0] {
		t.Fatal("identical probe at tol 0 must reuse the stored draws")
	}
	if _, ok := c.TryReuse("u", []float64{1, 2.0005, 3}, 1e-3); !ok {
		t.Fatal("probe within tol must reuse")
	}
	if _, ok := c.TryReuse("u", []float64{1, 2.01, 3}, 1e-3); ok {
		t.Fatal("probe beyond tol must refuse")
	}
	if _, ok := c.TryReuse("v", probe, 1); ok {
		t.Fatal("unknown key must refuse")
	}
	if _, ok := c.TryReuse("u", []float64{1, 2}, 1); ok {
		t.Fatal("probe length mismatch must refuse")
	}
	if _, ok := c.TryReuse("u", []float64{1, math.NaN(), 3}, 1); ok {
		t.Fatal("NaN probe must refuse")
	}
	if c.Hits() != 2 {
		t.Fatalf("Hits = %d, want 2", c.Hits())
	}
}

func TestDrawCacheProbeIsCopied(t *testing.T) {
	c := NewDrawCache(4)
	probe := []float64{1, 2}
	c.Store("u", probe, testDraws(2, 4, 3))
	probe[0] = 99 // caller mutates its buffer after Store
	if _, ok := c.TryReuse("u", []float64{1, 2}, 0); !ok {
		t.Fatal("stored probe must be an independent copy")
	}
}

func TestDrawCacheFIFOEviction(t *testing.T) {
	c := NewDrawCache(2)
	c.Store("a", []float64{1}, testDraws(3, 4, 3))
	c.Store("b", []float64{2}, testDraws(4, 4, 3))
	c.Store("a", []float64{1.5}, testDraws(5, 4, 3)) // refresh, not a new slot
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Store("c", []float64{3}, testDraws(6, 4, 3)) // evicts "a" (oldest)
	if c.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", c.Len())
	}
	if _, ok := c.TryReuse("a", []float64{1.5}, 1); ok {
		t.Fatal("oldest entry must have been evicted")
	}
	if _, ok := c.TryReuse("b", []float64{2}, 0); !ok {
		t.Fatal("entry b must survive eviction")
	}
	if _, ok := c.TryReuse("c", []float64{3}, 0); !ok {
		t.Fatal("entry c must survive eviction")
	}
	// The refresh of "a" installed the new probe before eviction; a fresh
	// store of "a" now keys on whatever probe comes with it.
	c.Store("a", []float64{7}, testDraws(9, 4, 3))
	if _, ok := c.TryReuse("a", []float64{7}, 0); !ok {
		t.Fatal("re-stored entry lookup failed")
	}
}

// TestReuseQNEIMatchesNew pins the in-place scorer rebuild to the fresh
// constructor: same draws, same observation columns, same scores — including
// the qSR degeneration with no observation columns, and after the buffers
// were dirtied by a previous batch.
func TestReuseQNEIMatchesNew(t *testing.T) {
	z1 := testDraws(7, 32, 12)
	z2 := testDraws(8, 32, 12)
	obsCols := []int{9, 10, 11}

	sc := NewSharedQNEI(z1, obsCols)
	sc.Add(0)
	sc.Add(3) // dirty the running max

	sc.ReuseQNEI(z2, obsCols)
	ref := NewSharedQNEI(z2, obsCols)
	for c := 0; c < 9; c++ {
		if got, want := sc.Score(c), ref.Score(c); got != want {
			t.Fatalf("col %d: reuse score %v vs fresh %v", c, got, want)
		}
	}
	sc.Add(2)
	ref.Add(2)
	if got, want := sc.Score(5), ref.Score(5); got != want {
		t.Fatalf("post-Add score %v vs %v", got, want)
	}

	sc.ReuseQNEI(z1, nil)
	refSR := NewSharedQSR(z1)
	for c := 0; c < 12; c++ {
		if got, want := sc.Score(c), refSR.Score(c); got != want {
			t.Fatalf("qSR col %d: reuse score %v vs fresh %v", c, got, want)
		}
	}
}
