// Package acq implements the Monte-Carlo batch acquisition functions used
// by PaMO's Bayesian optimization loop (Section 4.3): qNEI (the paper's
// choice), and the qEI / qUCB / qSR variants used in the ablation study,
// plus the EUBO criterion for preference-pair selection (Section 4.2).
//
// All batch acquisitions are defined against a Sampler that yields joint
// posterior samples of the (noisy, preference-weighted) benefit z = g(f(x))
// at arbitrary decision points, so they integrate over the uncertainty of
// both the outcome models and the preference model exactly as Eq. 12
// prescribes.
package acq

import (
	"math"
	"math/rand/v2"

	"repro/internal/prefgp"
	"repro/internal/stats"
)

// Sampler provides joint posterior samples of the scalar benefit at a set
// of decision points. The result has shape [nSamples][len(points)].
type Sampler interface {
	SampleBenefit(points [][]float64, nSamples int, rng *rand.Rand) [][]float64
}

// QNEI is the batch Noisy Expected Improvement of candidate batch cand
// given the previously observed points obs. Both candidate and incumbent
// benefits are drawn from the same joint posterior sample, so observation
// noise and model uncertainty affect the incumbent too — the "anti-noise"
// property the paper relies on:
//
//	qNEI = E[ max(0, max_i z(cand_i) − max_j z(obs_j)) ].
func QNEI(s Sampler, cand, obs [][]float64, nSamples int, rng *rand.Rand) float64 {
	if len(cand) == 0 {
		return 0
	}
	if len(obs) == 0 {
		// No incumbent: qNEI degenerates to qSR.
		return QSR(s, cand, nSamples, rng)
	}
	all := make([][]float64, 0, len(cand)+len(obs))
	all = append(all, cand...)
	all = append(all, obs...)
	samples := s.SampleBenefit(all, nSamples, rng)
	var acc float64
	for _, z := range samples {
		best := math.Inf(-1)
		for _, v := range z[:len(cand)] {
			if v > best {
				best = v
			}
		}
		inc := math.Inf(-1)
		for _, v := range z[len(cand):] {
			if v > inc {
				inc = v
			}
		}
		if d := best - inc; d > 0 {
			acc += d
		}
	}
	return acc / float64(len(samples))
}

// QEI is the batch Expected Improvement over a fixed (noise-free) incumbent
// value best: E[max(0, max_i z(cand_i) − best)].
func QEI(s Sampler, cand [][]float64, best float64, nSamples int, rng *rand.Rand) float64 {
	if len(cand) == 0 {
		return 0
	}
	samples := s.SampleBenefit(cand, nSamples, rng)
	var acc float64
	for _, z := range samples {
		m := math.Inf(-1)
		for _, v := range z {
			if v > m {
				m = v
			}
		}
		if d := m - best; d > 0 {
			acc += d
		}
	}
	return acc / float64(len(samples))
}

// QSR is the batch Simple Regret acquisition: E[max_i z(cand_i)].
func QSR(s Sampler, cand [][]float64, nSamples int, rng *rand.Rand) float64 {
	if len(cand) == 0 {
		return math.Inf(-1)
	}
	samples := s.SampleBenefit(cand, nSamples, rng)
	var acc float64
	for _, z := range samples {
		m := math.Inf(-1)
		for _, v := range z {
			if v > m {
				m = v
			}
		}
		acc += m
	}
	return acc / float64(len(samples))
}

// QUCB is the Monte-Carlo batch Upper Confidence Bound (Wilson et al.):
//
//	qUCB = E[ max_i ( μ_i + √(βπ/2)·|z_i − μ_i| ) ],
//
// where μ is the per-point posterior mean estimated from the same sample
// set. beta controls exploration (typical 0.2–4).
func QUCB(s Sampler, cand [][]float64, beta float64, nSamples int, rng *rand.Rand) float64 {
	if len(cand) == 0 {
		return math.Inf(-1)
	}
	samples := s.SampleBenefit(cand, nSamples, rng)
	q := len(cand)
	mu := make([]float64, q)
	for _, z := range samples {
		for i, v := range z {
			mu[i] += v
		}
	}
	for i := range mu {
		mu[i] /= float64(len(samples))
	}
	scale := math.Sqrt(beta * math.Pi / 2)
	var acc float64
	for _, z := range samples {
		m := math.Inf(-1)
		for i, v := range z {
			u := mu[i] + scale*math.Abs(v-mu[i])
			if u > m {
				m = u
			}
		}
		acc += m
	}
	return acc / float64(len(samples))
}

// --- shared-sample acquisition ------------------------------------------
//
// The Monte-Carlo acquisitions above draw a fresh joint sample set for every
// trial batch, which makes greedy batch construction O(b·|cands|) full GP
// sampling passes. The shared-sample path instead draws the joint posterior
// over the whole candidate∪observation universe once, then scores any batch
// as a column-max over those fixed draws. Because the marginals of a joint
// MVN restricted to a subset of points coincide with sampling that subset
// directly, the scores are statistically equivalent — the estimator merely
// reuses draws (and therefore shares Monte-Carlo noise) across trials, which
// is exactly what makes greedy argmax comparisons cheap and consistent.

// SharedScorer scores greedy batch extensions against a fixed matrix of
// joint posterior draws z[sample][point]. All four batch acquisitions reduce
// to mean-over-samples of f(max over batch columns); the scorer keeps the
// per-sample running max of the committed batch so extending the batch by
// one candidate costs O(nSamples) regardless of batch size.
//
// Score is safe for concurrent use; Add is not.
type SharedScorer struct {
	m    [][]float64 // draws, possibly transformed (qUCB): m[sample][point]
	inc  []float64   // per-sample hinge baseline (qNEI/qEI); nil = no hinge
	base []float64   // running max over committed batch columns, per sample
}

func newSharedScorer(m [][]float64, inc []float64) *SharedScorer {
	base := make([]float64, len(m))
	for i := range base {
		base[i] = math.Inf(-1)
	}
	return &SharedScorer{m: m, inc: inc, base: base}
}

// NewSharedQNEI builds a qNEI scorer from shared draws z over the universe,
// with obsCols indexing the observed (incumbent) points inside z. With no
// observed columns it degenerates to qSR, mirroring QNEI.
func NewSharedQNEI(z [][]float64, obsCols []int) *SharedScorer {
	if len(obsCols) == 0 {
		return NewSharedQSR(z)
	}
	inc := make([]float64, len(z))
	for s, row := range z {
		best := math.Inf(-1)
		for _, c := range obsCols {
			if row[c] > best {
				best = row[c]
			}
		}
		inc[s] = best
	}
	return newSharedScorer(z, inc)
}

// NewSharedQEI builds a qEI scorer over shared draws with a fixed noise-free
// incumbent value best.
func NewSharedQEI(z [][]float64, best float64) *SharedScorer {
	inc := make([]float64, len(z))
	for i := range inc {
		inc[i] = best
	}
	return newSharedScorer(z, inc)
}

// NewSharedQSR builds a qSR scorer over shared draws.
func NewSharedQSR(z [][]float64) *SharedScorer {
	return newSharedScorer(z, nil)
}

// NewSharedQUCB builds a qUCB scorer over shared draws: each column is
// transformed to μ_i + √(βπ/2)·|z − μ_i| with μ estimated from the same
// draws (as in QUCB), after which qUCB is a plain mean-of-max.
func NewSharedQUCB(z [][]float64, beta float64) *SharedScorer {
	if len(z) == 0 {
		return newSharedScorer(z, nil)
	}
	q := len(z[0])
	mu := make([]float64, q)
	for _, row := range z {
		for i, v := range row {
			mu[i] += v
		}
	}
	for i := range mu {
		mu[i] /= float64(len(z))
	}
	scale := math.Sqrt(beta * math.Pi / 2)
	u := make([][]float64, len(z))
	for s, row := range z {
		ur := make([]float64, q)
		for i, v := range row {
			ur[i] = mu[i] + scale*math.Abs(v-mu[i])
		}
		u[s] = ur
	}
	return newSharedScorer(u, nil)
}

// Score returns the acquisition value of the committed batch extended by
// column col, without committing it.
func (sc *SharedScorer) Score(col int) float64 {
	if len(sc.m) == 0 {
		return math.Inf(-1)
	}
	var acc float64
	if sc.inc == nil {
		for s, row := range sc.m {
			v := row[col]
			if b := sc.base[s]; b > v {
				v = b
			}
			acc += v
		}
	} else {
		for s, row := range sc.m {
			v := row[col]
			if b := sc.base[s]; b > v {
				v = b
			}
			if d := v - sc.inc[s]; d > 0 {
				acc += d
			}
		}
	}
	return acc / float64(len(sc.m))
}

// Add commits column col to the batch, folding it into the running max.
func (sc *SharedScorer) Add(col int) {
	for s, row := range sc.m {
		if row[col] > sc.base[s] {
			sc.base[s] = row[col]
		}
	}
}

// AnalyticEI is the closed-form expected improvement of a single Gaussian
// candidate N(mu, sigma²) over a fixed incumbent:
//
//	EI = σ·(u·Φ(u) + φ(u)),  u = (μ − best)/σ.
//
// It is the q=1, noise-free special case the Monte-Carlo batch
// acquisitions generalize, and the tests cross-check them against it.
func AnalyticEI(mu, sigma, best float64) float64 {
	if sigma <= 0 {
		return math.Max(0, mu-best)
	}
	u := (mu - best) / sigma
	return sigma * (u*stats.NormCDF(u) + stats.NormPDF(u))
}

// EUBO is the Expected Utility of the Best Option for a candidate
// comparison pair (y1, y2) under the preference model's posterior:
// E[max(g(y1), g(y2))], computed in closed form from the bivariate
// Gaussian posterior (Lin et al. 2022, Eq. 11 in the paper).
func EUBO(m *prefgp.Model, y1, y2 []float64) float64 {
	mu, cov := m.Predict([][]float64{y1, y2})
	s1 := math.Sqrt(math.Max(cov.At(0, 0), 0))
	s2 := math.Sqrt(math.Max(cov.At(1, 1), 0))
	return stats.EMaxGaussianPair(mu[0], mu[1], s1, s2, cov.At(0, 1))
}

// SelectEUBOPair returns the indices (i, j) of the candidate outcome
// vectors whose comparison maximizes EUBO. One batch Predict over all
// candidates yields the joint posterior, from which every pair's bivariate
// marginal (means, variances, covariance) is read directly — O(|cands|)
// posterior algebra instead of the O(|cands|²) two-point Predict calls of a
// pairwise scan.
func SelectEUBOPair(m *prefgp.Model, candidates [][]float64) (int, int, float64) {
	bestI, bestJ := -1, -1
	best := math.Inf(-1)
	if len(candidates) < 2 {
		return bestI, bestJ, best
	}
	mu, cov := m.Predict(candidates)
	sd := make([]float64, len(candidates))
	for i := range sd {
		sd[i] = math.Sqrt(math.Max(cov.At(i, i), 0))
	}
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			v := stats.EMaxGaussianPair(mu[i], mu[j], sd[i], sd[j], cov.At(i, j))
			if v > best {
				best, bestI, bestJ = v, i, j
			}
		}
	}
	return bestI, bestJ, best
}
