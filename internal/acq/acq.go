// Package acq implements the Monte-Carlo batch acquisition functions used
// by PaMO's Bayesian optimization loop (Section 4.3): qNEI (the paper's
// choice), and the qEI / qUCB / qSR variants used in the ablation study,
// plus the EUBO criterion for preference-pair selection (Section 4.2).
//
// All batch acquisitions are defined against a Sampler that yields joint
// posterior samples of the (noisy, preference-weighted) benefit z = g(f(x))
// at arbitrary decision points, so they integrate over the uncertainty of
// both the outcome models and the preference model exactly as Eq. 12
// prescribes.
package acq

import (
	"math"
	"math/rand/v2"

	"repro/internal/prefgp"
	"repro/internal/stats"
)

// Sampler provides joint posterior samples of the scalar benefit at a set
// of decision points. The result has shape [nSamples][len(points)].
type Sampler interface {
	SampleBenefit(points [][]float64, nSamples int, rng *rand.Rand) [][]float64
}

// QNEI is the batch Noisy Expected Improvement of candidate batch cand
// given the previously observed points obs. Both candidate and incumbent
// benefits are drawn from the same joint posterior sample, so observation
// noise and model uncertainty affect the incumbent too — the "anti-noise"
// property the paper relies on:
//
//	qNEI = E[ max(0, max_i z(cand_i) − max_j z(obs_j)) ].
func QNEI(s Sampler, cand, obs [][]float64, nSamples int, rng *rand.Rand) float64 {
	if len(cand) == 0 {
		return 0
	}
	if len(obs) == 0 {
		// No incumbent: qNEI degenerates to qSR.
		return QSR(s, cand, nSamples, rng)
	}
	all := make([][]float64, 0, len(cand)+len(obs))
	all = append(all, cand...)
	all = append(all, obs...)
	samples := s.SampleBenefit(all, nSamples, rng)
	var acc float64
	for _, z := range samples {
		best := math.Inf(-1)
		for _, v := range z[:len(cand)] {
			if v > best {
				best = v
			}
		}
		inc := math.Inf(-1)
		for _, v := range z[len(cand):] {
			if v > inc {
				inc = v
			}
		}
		if d := best - inc; d > 0 {
			acc += d
		}
	}
	return acc / float64(len(samples))
}

// QEI is the batch Expected Improvement over a fixed (noise-free) incumbent
// value best: E[max(0, max_i z(cand_i) − best)].
func QEI(s Sampler, cand [][]float64, best float64, nSamples int, rng *rand.Rand) float64 {
	if len(cand) == 0 {
		return 0
	}
	samples := s.SampleBenefit(cand, nSamples, rng)
	var acc float64
	for _, z := range samples {
		m := math.Inf(-1)
		for _, v := range z {
			if v > m {
				m = v
			}
		}
		if d := m - best; d > 0 {
			acc += d
		}
	}
	return acc / float64(len(samples))
}

// QSR is the batch Simple Regret acquisition: E[max_i z(cand_i)].
func QSR(s Sampler, cand [][]float64, nSamples int, rng *rand.Rand) float64 {
	if len(cand) == 0 {
		return math.Inf(-1)
	}
	samples := s.SampleBenefit(cand, nSamples, rng)
	var acc float64
	for _, z := range samples {
		m := math.Inf(-1)
		for _, v := range z {
			if v > m {
				m = v
			}
		}
		acc += m
	}
	return acc / float64(len(samples))
}

// QUCB is the Monte-Carlo batch Upper Confidence Bound (Wilson et al.):
//
//	qUCB = E[ max_i ( μ_i + √(βπ/2)·|z_i − μ_i| ) ],
//
// where μ is the per-point posterior mean estimated from the same sample
// set. beta controls exploration (typical 0.2–4).
func QUCB(s Sampler, cand [][]float64, beta float64, nSamples int, rng *rand.Rand) float64 {
	if len(cand) == 0 {
		return math.Inf(-1)
	}
	samples := s.SampleBenefit(cand, nSamples, rng)
	q := len(cand)
	mu := make([]float64, q)
	for _, z := range samples {
		for i, v := range z {
			mu[i] += v
		}
	}
	for i := range mu {
		mu[i] /= float64(len(samples))
	}
	scale := math.Sqrt(beta * math.Pi / 2)
	var acc float64
	for _, z := range samples {
		m := math.Inf(-1)
		for i, v := range z {
			u := mu[i] + scale*math.Abs(v-mu[i])
			if u > m {
				m = u
			}
		}
		acc += m
	}
	return acc / float64(len(samples))
}

// AnalyticEI is the closed-form expected improvement of a single Gaussian
// candidate N(mu, sigma²) over a fixed incumbent:
//
//	EI = σ·(u·Φ(u) + φ(u)),  u = (μ − best)/σ.
//
// It is the q=1, noise-free special case the Monte-Carlo batch
// acquisitions generalize, and the tests cross-check them against it.
func AnalyticEI(mu, sigma, best float64) float64 {
	if sigma <= 0 {
		return math.Max(0, mu-best)
	}
	u := (mu - best) / sigma
	return sigma * (u*stats.NormCDF(u) + stats.NormPDF(u))
}

// EUBO is the Expected Utility of the Best Option for a candidate
// comparison pair (y1, y2) under the preference model's posterior:
// E[max(g(y1), g(y2))], computed in closed form from the bivariate
// Gaussian posterior (Lin et al. 2022, Eq. 11 in the paper).
func EUBO(m *prefgp.Model, y1, y2 []float64) float64 {
	mu, cov := m.Predict([][]float64{y1, y2})
	s1 := math.Sqrt(math.Max(cov.At(0, 0), 0))
	s2 := math.Sqrt(math.Max(cov.At(1, 1), 0))
	return stats.EMaxGaussianPair(mu[0], mu[1], s1, s2, cov.At(0, 1))
}

// SelectEUBOPair returns the indices (i, j) of the candidate outcome
// vectors whose comparison maximizes EUBO. It scans all pairs; candidate
// sets are expected to be modest (tens of vectors).
func SelectEUBOPair(m *prefgp.Model, candidates [][]float64) (int, int, float64) {
	bestI, bestJ := -1, -1
	best := math.Inf(-1)
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			if v := EUBO(m, candidates[i], candidates[j]); v > best {
				best, bestI, bestJ = v, i, j
			}
		}
	}
	return bestI, bestJ, best
}
