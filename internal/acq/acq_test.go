package acq

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/kernel"
	"repro/internal/prefgp"
	"repro/internal/stats"
)

// gaussSampler is an analytic test sampler: independent Gaussian benefit at
// each point with mean = -(x[0]-2)² and std sigma.
type gaussSampler struct{ sigma float64 }

func (g gaussSampler) meanAt(p []float64) float64 { d := p[0] - 2; return -d * d }

func (g gaussSampler) SampleBenefit(points [][]float64, nSamples int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, nSamples)
	for s := range out {
		row := make([]float64, len(points))
		for i, p := range points {
			row[i] = g.meanAt(p) + g.sigma*rng.NormFloat64()
		}
		out[s] = row
	}
	return out
}

func TestQNEIPrefersImprovingCandidates(t *testing.T) {
	s := gaussSampler{sigma: 0.05}
	rng := stats.NewRNG(1)
	obs := [][]float64{{0}, {0.5}} // benefit -4, -2.25
	good := [][]float64{{2}}       // benefit 0 — big improvement
	bad := [][]float64{{-1}}       // benefit -9 — no improvement
	vGood := QNEI(s, good, obs, 4000, rng)
	vBad := QNEI(s, bad, obs, 4000, rng)
	if vGood < 1.5 {
		t.Fatalf("qNEI(good) = %v, want ≈ 2.25", vGood)
	}
	if vBad > 0.01 {
		t.Fatalf("qNEI(bad) = %v, want ≈ 0", vBad)
	}
}

func TestQNEIBatchAtLeastSingle(t *testing.T) {
	s := gaussSampler{sigma: 0.3}
	obs := [][]float64{{1}}
	single := QNEI(s, [][]float64{{1.8}}, obs, 6000, stats.NewRNG(2))
	batch := QNEI(s, [][]float64{{1.8}, {2.2}}, obs, 6000, stats.NewRNG(2))
	if batch+0.02 < single {
		t.Fatalf("batch qNEI %v < single qNEI %v", batch, single)
	}
}

func TestQNEIEmptyObsFallsBackToQSR(t *testing.T) {
	s := gaussSampler{sigma: 0.01}
	rng := stats.NewRNG(3)
	cand := [][]float64{{2}}
	v := QNEI(s, cand, nil, 2000, rng)
	if math.Abs(v-0) > 0.01 { // mean benefit at x=2 is 0
		t.Fatalf("qNEI no-obs = %v", v)
	}
}

func TestQNEIEmptyCand(t *testing.T) {
	s := gaussSampler{sigma: 0.1}
	if v := QNEI(s, nil, [][]float64{{0}}, 100, stats.NewRNG(4)); v != 0 {
		t.Fatalf("empty cand qNEI = %v", v)
	}
}

func TestQEIAgainstClosedForm(t *testing.T) {
	// Single candidate, Gaussian N(mu, s²), incumbent best: EI has the
	// closed form s·(u·Φ(u) + φ(u)), u = (mu-best)/s.
	sampler := gaussSampler{sigma: 0.7}
	best := -1.0
	mu := sampler.meanAt([]float64{1.5}) // -0.25
	u := (mu - best) / 0.7
	want := 0.7 * (u*stats.NormCDF(u) + stats.NormPDF(u))
	got := QEI(sampler, [][]float64{{1.5}}, best, 200000, stats.NewRNG(5))
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("qEI = %v, closed form %v", got, want)
	}
}

func TestAnalyticEI(t *testing.T) {
	// Degenerate σ: improvement is deterministic.
	if got := AnalyticEI(2, 0, 1); got != 1 {
		t.Fatalf("deterministic EI = %v", got)
	}
	if got := AnalyticEI(0, 0, 1); got != 0 {
		t.Fatalf("deterministic no-improvement EI = %v", got)
	}
	// Far-below candidates have ~0 EI; far-above ≈ mu − best.
	if got := AnalyticEI(-10, 1, 0); got > 1e-6 {
		t.Fatalf("hopeless EI = %v", got)
	}
	if got := AnalyticEI(10, 1, 0); math.Abs(got-10) > 1e-6 {
		t.Fatalf("sure-thing EI = %v", got)
	}
	// Monotone in mu.
	if AnalyticEI(0.5, 1, 0) <= AnalyticEI(-0.5, 1, 0) {
		t.Fatal("EI not monotone in mean")
	}
	// MC agreement (same setup as TestQEIAgainstClosedForm).
	sampler := gaussSampler{sigma: 0.7}
	mu := sampler.meanAt([]float64{1.5})
	want := AnalyticEI(mu, 0.7, -1)
	got := QEI(sampler, [][]float64{{1.5}}, -1, 200000, stats.NewRNG(55))
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("qEI %v vs analytic %v", got, want)
	}
}

func TestQSRMatchesMeanOfMax(t *testing.T) {
	sampler := gaussSampler{sigma: 0.0001}
	got := QSR(sampler, [][]float64{{0}, {2}, {3}}, 500, stats.NewRNG(6))
	if math.Abs(got-0) > 0.01 { // max mean benefit is 0 at x=2
		t.Fatalf("qSR = %v", got)
	}
}

func TestQUCBIncreasesWithBeta(t *testing.T) {
	sampler := gaussSampler{sigma: 0.5}
	cand := [][]float64{{1.0}, {2.5}}
	lo := QUCB(sampler, cand, 0.1, 8000, stats.NewRNG(7))
	hi := QUCB(sampler, cand, 4.0, 8000, stats.NewRNG(7))
	if hi <= lo {
		t.Fatalf("qUCB not increasing in beta: %v vs %v", lo, hi)
	}
}

func TestQUCBEmptyCand(t *testing.T) {
	if v := QUCB(gaussSampler{}, nil, 1, 10, stats.NewRNG(8)); !math.IsInf(v, -1) {
		t.Fatalf("empty qUCB = %v", v)
	}
}

func buildPrefModel(t *testing.T) *prefgp.Model {
	t.Helper()
	m := prefgp.NewModel(kernel.NewRBF(2), 0.05)
	rng := stats.NewRNG(9)
	util := func(y []float64) float64 { return y[0] + 2*y[1] }
	var pts [][]float64
	for i := 0; i < 20; i++ {
		y := []float64{rng.Float64(), rng.Float64()}
		pts = append(pts, y)
		m.AddPoint(y)
	}
	for v := 0; v < 10; v++ {
		a, b := 2*v, 2*v+1
		if util(pts[a]) >= util(pts[b]) {
			_ = m.AddComparison(a, b)
		} else {
			_ = m.AddComparison(b, a)
		}
	}
	if err := m.Fit(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEUBOBasicProperties(t *testing.T) {
	m := buildPrefModel(t)
	y1 := []float64{0.9, 0.9}
	y2 := []float64{0.1, 0.1}
	e := EUBO(m, y1, y2)
	mu1, _ := m.PredictOne(y1)
	mu2, _ := m.PredictOne(y2)
	// E[max] is at least the max of the means.
	if e < math.Max(mu1, mu2)-1e-9 {
		t.Fatalf("EUBO %v < max mean %v", e, math.Max(mu1, mu2))
	}
	// Symmetry.
	if e2 := EUBO(m, y2, y1); math.Abs(e-e2) > 1e-6 {
		t.Fatalf("EUBO asymmetric: %v vs %v", e, e2)
	}
}

func TestSelectEUBOPair(t *testing.T) {
	m := buildPrefModel(t)
	cands := [][]float64{{0.1, 0.1}, {0.5, 0.5}, {0.95, 0.95}, {0.9, 0.1}}
	i, j, v := SelectEUBOPair(m, cands)
	if i < 0 || j <= i || j >= len(cands) {
		t.Fatalf("invalid pair (%d, %d)", i, j)
	}
	if math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("EUBO value %v", v)
	}
	// The returned pair must actually achieve the max over all pairs.
	for a := 0; a < len(cands); a++ {
		for b := a + 1; b < len(cands); b++ {
			if e := EUBO(m, cands[a], cands[b]); e > v+1e-12 {
				t.Fatalf("pair (%d,%d) EUBO %v beats returned %v", a, b, e, v)
			}
		}
	}
}

func TestSelectEUBOPairTooFewCandidates(t *testing.T) {
	m := buildPrefModel(t)
	i, j, _ := SelectEUBOPair(m, [][]float64{{0.5, 0.5}})
	if i != -1 || j != -1 {
		t.Fatalf("expected (-1, -1), got (%d, %d)", i, j)
	}
}

// sharedBruteForce computes the batch acquisition over a fixed draw matrix
// directly from its definition, as a reference for the incremental scorer.
func sharedBruteForce(z [][]float64, batch []int, inc []float64) float64 {
	var acc float64
	for s, row := range z {
		best := math.Inf(-1)
		for _, c := range batch {
			if row[c] > best {
				best = row[c]
			}
		}
		v := best
		if inc != nil {
			v = math.Max(0, best-inc[s])
		}
		acc += v
	}
	return acc / float64(len(z))
}

func sharedTestDraws(nSamples, nPoints int) [][]float64 {
	rng := stats.NewRNG(101)
	z := make([][]float64, nSamples)
	for s := range z {
		row := make([]float64, nPoints)
		for i := range row {
			row[i] = 2*rng.Float64() - 1
		}
		z[s] = row
	}
	return z
}

func TestSharedScorerMatchesBruteForce(t *testing.T) {
	z := sharedTestDraws(64, 9)
	obsCols := []int{6, 7, 8}
	inc := make([]float64, len(z))
	for s, row := range z {
		inc[s] = math.Max(row[6], math.Max(row[7], row[8]))
	}
	qnei := NewSharedQNEI(z, obsCols)
	qsr := NewSharedQSR(z)
	qei := NewSharedQEI(z, 0.25)
	best := make([]float64, len(z))
	for i := range best {
		best[i] = 0.25
	}
	var batch []int
	for _, col := range []int{3, 0, 5} {
		// Score every candidate before committing, against brute force.
		for ci := 0; ci < 6; ci++ {
			trial := append(append([]int(nil), batch...), ci)
			if got, want := qnei.Score(ci), sharedBruteForce(z, trial, inc); math.Abs(got-want) > 1e-12 {
				t.Fatalf("qNEI batch %v + %d: %v vs %v", batch, ci, got, want)
			}
			if got, want := qsr.Score(ci), sharedBruteForce(z, trial, nil); math.Abs(got-want) > 1e-12 {
				t.Fatalf("qSR batch %v + %d: %v vs %v", batch, ci, got, want)
			}
			if got, want := qei.Score(ci), sharedBruteForce(z, trial, best); math.Abs(got-want) > 1e-12 {
				t.Fatalf("qEI batch %v + %d: %v vs %v", batch, ci, got, want)
			}
		}
		qnei.Add(col)
		qsr.Add(col)
		qei.Add(col)
		batch = append(batch, col)
	}
}

func TestSharedQUCBMatchesTransformedMax(t *testing.T) {
	z := sharedTestDraws(128, 5)
	const beta = 2.0
	sc := NewSharedQUCB(z, beta)
	// Reference: explicit transform then mean-of-max.
	q := len(z[0])
	mu := make([]float64, q)
	for _, row := range z {
		for i, v := range row {
			mu[i] += v
		}
	}
	for i := range mu {
		mu[i] /= float64(len(z))
	}
	scale := math.Sqrt(beta * math.Pi / 2)
	u := make([][]float64, len(z))
	for s, row := range z {
		ur := make([]float64, q)
		for i, v := range row {
			ur[i] = mu[i] + scale*math.Abs(v-mu[i])
		}
		u[s] = ur
	}
	sc.Add(1)
	for ci := 0; ci < q; ci++ {
		want := sharedBruteForce(u, []int{1, ci}, nil)
		if got := sc.Score(ci); math.Abs(got-want) > 1e-12 {
			t.Fatalf("qUCB col %d: %v vs %v", ci, got, want)
		}
	}
}

func TestSharedQNEIAgreesWithPerTrialQNEI(t *testing.T) {
	// On the same sampler, the shared-draw qNEI estimate of a batch must
	// agree with the per-trial estimate within Monte-Carlo error.
	s := gaussSampler{sigma: 0.3}
	cands := [][]float64{{0}, {1}, {1.8}, {2.2}, {3}}
	obs := [][]float64{{0.5}, {1.2}}
	const nSamples = 60000
	perTrial := QNEI(s, [][]float64{{1.8}, {3}}, obs, nSamples, stats.NewRNG(7))

	universe := append(append([][]float64(nil), cands...), obs...)
	z := s.SampleBenefit(universe, nSamples, stats.NewRNG(8))
	sc := NewSharedQNEI(z, []int{5, 6})
	sc.Add(2) // candidate {1.8}
	shared := sc.Score(4) // batch {1.8, 3}
	if math.Abs(perTrial-shared) > 0.02 {
		t.Fatalf("per-trial qNEI %v vs shared %v", perTrial, shared)
	}
}

func TestSharedQNEINoObsDegeneratesToQSR(t *testing.T) {
	z := sharedTestDraws(32, 4)
	a := NewSharedQNEI(z, nil)
	b := NewSharedQSR(z)
	for ci := 0; ci < 4; ci++ {
		if a.Score(ci) != b.Score(ci) {
			t.Fatalf("col %d: %v vs %v", ci, a.Score(ci), b.Score(ci))
		}
	}
}

func TestSharedScorerEmptyDraws(t *testing.T) {
	sc := NewSharedQSR(nil)
	if v := sc.Score(0); !math.IsInf(v, -1) {
		t.Fatalf("empty-draws score = %v", v)
	}
}
