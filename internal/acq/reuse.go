package acq

import (
	"math"
	"sync"
)

// DrawCache memoizes shared joint posterior draws across acquisition epochs.
//
// The shared-sample path (SharedScorer) pays one joint sampling pass over the
// candidate ∪ observation universe per batch selection — by far the most
// expensive step of an acquisition round once the outcome models have
// accumulated observations. When the same universe is scored again (e.g. a
// periodic fleet re-solve replaying the same candidate stream with
// warm-started models) and the posterior has barely moved, re-drawing buys
// nothing: the cached draws come from a statistically indistinguishable
// distribution. DrawCache keeps the draw matrix of recent universes keyed by
// an exact universe fingerprint, guarded by a posterior probe — mean/variance
// summaries at the universe points — so reuse happens only when the caller's
// current posterior sits within tol of the one that produced the draws.
//
// Entries are evicted FIFO beyond the capacity passed to NewDrawCache, so a
// long-running fleet cannot grow the cache without bound. The zero value is
// not usable; construct with NewDrawCache. All methods are safe for
// concurrent use — one cache may be shared by many Scheduler instances.
type DrawCache struct {
	mu      sync.Mutex
	entries map[string]*drawEntry
	order   []string // insertion order, oldest first
	cap     int
	hits    uint64
}

type drawEntry struct {
	probe []float64
	z     [][]float64
}

// DefaultDrawCacheCap bounds the number of cached universes when
// NewDrawCache is given a non-positive capacity.
const DefaultDrawCacheCap = 32

// NewDrawCache returns an empty cache holding at most capEntries universes
// (DefaultDrawCacheCap when capEntries <= 0).
func NewDrawCache(capEntries int) *DrawCache {
	if capEntries <= 0 {
		capEntries = DefaultDrawCacheCap
	}
	return &DrawCache{
		entries: make(map[string]*drawEntry, capEntries),
		cap:     capEntries,
	}
}

// TryReuse returns the cached draw matrix for key when one exists and every
// probe component moved by at most tol since the draws were taken. The probe
// must be built the same way as the one passed to Store — a length mismatch
// is treated as a miss, never an error. The returned matrix is shared with
// the cache: callers must treat it as read-only.
//
// TryReuse performs no allocations, so the amortized epoch — probe, reuse,
// score — stays allocation-free on the acquisition side.
func (c *DrawCache) TryReuse(key string, probe []float64, tol float64) ([][]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || len(e.probe) != len(probe) {
		return nil, false
	}
	for i, v := range probe {
		d := v - e.probe[i]
		if math.IsNaN(d) || d > tol || d < -tol {
			return nil, false
		}
	}
	c.hits++
	return e.z, true
}

// Store records the draw matrix z for the universe identified by key, taken
// under the posterior summarized by probe. The probe is copied; z is stored
// as-is (the caller hands over ownership — SampleBenefit results are built
// fresh per round, so no caller mutates them afterwards). Storing an existing
// key refreshes its probe and draws without changing its eviction position.
func (c *DrawCache) Store(key string, probe []float64, z [][]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.probe = append(e.probe[:0], probe...)
		e.z = z
		return
	}
	for len(c.order) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = &drawEntry{probe: append([]float64(nil), probe...), z: z}
	c.order = append(c.order, key)
}

// Len reports the number of cached universes.
func (c *DrawCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits reports the cumulative number of successful TryReuse calls.
func (c *DrawCache) Hits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// ReuseQNEI re-initializes the scorer in place as a qNEI scorer over a new
// (typically cached) draw matrix, reusing the incumbent and running-max
// buffers whenever their capacity allows. Together with DrawCache.TryReuse
// this makes a fully amortized acquisition epoch allocation-free. Mirrors
// NewSharedQNEI, including the qSR degeneration when obsCols is empty.
func (sc *SharedScorer) ReuseQNEI(z [][]float64, obsCols []int) {
	sc.m = z
	if cap(sc.base) >= len(z) {
		sc.base = sc.base[:len(z)]
	} else {
		sc.base = make([]float64, len(z))
	}
	for i := range sc.base {
		sc.base[i] = math.Inf(-1)
	}
	if len(obsCols) == 0 {
		sc.inc = nil
		return
	}
	if cap(sc.inc) >= len(z) {
		sc.inc = sc.inc[:len(z)]
	} else {
		sc.inc = make([]float64, len(z))
	}
	for s, row := range z {
		best := math.Inf(-1)
		for _, c := range obsCols {
			if row[c] > best {
				best = row[c]
			}
		}
		sc.inc[s] = best
	}
}
