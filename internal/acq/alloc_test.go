//go:build !race

package acq

import (
	"math/rand/v2"
	"testing"
)

// TestSharedScorerZeroAlloc pins the hot loop of greedy batch construction:
// once the shared draws are in place, scoring every candidate column and
// committing the argmax must not touch the heap, for both the hinged (qNEI)
// and hinge-free (qSR) reductions. (Skipped under -race, which instruments
// allocation.)
func TestSharedScorerZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	const nSamples, nPoints = 64, 40
	z := make([][]float64, nSamples)
	for s := range z {
		z[s] = make([]float64, nPoints)
		for i := range z[s] {
			z[s][i] = rng.NormFloat64()
		}
	}
	for _, tc := range []struct {
		name string
		sc   *SharedScorer
	}{
		{"qnei", NewSharedQNEI(z, []int{0, 1, 2})},
		{"qsr", NewSharedQSR(z)},
	} {
		tc.sc.Score(3) // warm any lazy state
		if n := testing.AllocsPerRun(20, func() {
			best, bestV := -1, 0.0
			for c := 3; c < nPoints; c++ {
				if v := tc.sc.Score(c); best < 0 || v > bestV {
					best, bestV = c, v
				}
			}
			tc.sc.Add(best)
		}); n != 0 {
			t.Fatalf("%s: warm greedy scoring allocates %v times per run, want 0", tc.name, n)
		}
	}
}

// TestDrawReuseZeroAlloc pins the fully amortized acquisition epoch: probing
// the cache for reusable draws, rebuilding the scorer in place over them, and
// running the greedy scan must all stay off the heap once the scorer's
// buffers are warm. This is the path that replaces the joint sampling pass
// when the posterior hasn't moved.
func TestDrawReuseZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 5))
	const nSamples, nPoints = 64, 40
	z := make([][]float64, nSamples)
	for s := range z {
		z[s] = make([]float64, nPoints)
		for i := range z[s] {
			z[s][i] = rng.NormFloat64()
		}
	}
	probe := make([]float64, 2*nPoints)
	for i := range probe {
		probe[i] = rng.NormFloat64()
	}
	cache := NewDrawCache(4)
	cache.Store("universe-a", probe, z)

	obsCols := []int{0, 1, 2}
	sc := NewSharedQNEI(z, obsCols)
	sc.Score(3) // warm
	if n := testing.AllocsPerRun(20, func() {
		cached, ok := cache.TryReuse("universe-a", probe, 1e-3)
		if !ok {
			t.Fatal("reuse refused")
		}
		sc.ReuseQNEI(cached, obsCols)
		best, bestV := -1, 0.0
		for c := 3; c < nPoints; c++ {
			if v := sc.Score(c); best < 0 || v > bestV {
				best, bestV = c, v
			}
		}
		sc.Add(best)
	}); n != 0 {
		t.Fatalf("amortized epoch allocates %v times per run, want 0", n)
	}
}
