//go:build !race

package acq

import (
	"math/rand/v2"
	"testing"
)

// TestSharedScorerZeroAlloc pins the hot loop of greedy batch construction:
// once the shared draws are in place, scoring every candidate column and
// committing the argmax must not touch the heap, for both the hinged (qNEI)
// and hinge-free (qSR) reductions. (Skipped under -race, which instruments
// allocation.)
func TestSharedScorerZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	const nSamples, nPoints = 64, 40
	z := make([][]float64, nSamples)
	for s := range z {
		z[s] = make([]float64, nPoints)
		for i := range z[s] {
			z[s][i] = rng.NormFloat64()
		}
	}
	for _, tc := range []struct {
		name string
		sc   *SharedScorer
	}{
		{"qnei", NewSharedQNEI(z, []int{0, 1, 2})},
		{"qsr", NewSharedQSR(z)},
	} {
		tc.sc.Score(3) // warm any lazy state
		if n := testing.AllocsPerRun(20, func() {
			best, bestV := -1, 0.0
			for c := 3; c < nPoints; c++ {
				if v := tc.sc.Score(c); best < 0 || v > bestV {
					best, bestV = c, v
				}
			}
			tc.sc.Add(best)
		}); n != 0 {
			t.Fatalf("%s: warm greedy scoring allocates %v times per run, want 0", tc.name, n)
		}
	}
}
