package mat

import "sync"

// Workspace is a bump-allocated arena of float64 scratch for the hot
// prediction and sampling paths: vectors and matrices are carved out of one
// reusable backing buffer, so a warm workspace serves an entire
// Predict/sample cycle without touching the garbage collector.
//
// Ownership rules (see DESIGN.md "Scaling"):
//
//   - A workspace is single-goroutine. Parallel stages take one workspace
//     per goroutine (GetWorkspace/PutWorkspace pool them).
//   - Reset invalidates everything previously handed out; callers must not
//     retain workspace-backed slices across Reset or PutWorkspace. Results
//     that outlive the call must be copied into caller-owned memory.
//   - Vec and Mat return zeroed memory, exactly like NewVector/NewMatrix.
type Workspace struct {
	buf  []float64
	off  int
	hdrs []Matrix
	hoff int
}

// NewWorkspace returns an empty workspace. It grows on demand; after the
// first full cycle at a given problem size, subsequent cycles are
// allocation-free.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset rewinds the arena, invalidating all outstanding slices while
// keeping the backing storage for reuse.
func (w *Workspace) Reset() {
	w.off = 0
	w.hoff = 0
}

// take carves n zeroed float64s out of the arena, growing it if needed.
// Growth allocates a fresh block; slices handed out earlier keep the old
// block alive, so they stay valid for the rest of the cycle.
func (w *Workspace) take(n int) []float64 {
	if w.off+n > len(w.buf) {
		grown := 2 * len(w.buf)
		if grown < w.off+n {
			grown = w.off + n
		}
		w.buf = make([]float64, grown)
		w.off = 0
	}
	s := w.buf[w.off : w.off+n : w.off+n]
	w.off += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Vec returns a zeroed workspace-backed vector of length n.
func (w *Workspace) Vec(n int) Vector { return Vector(w.take(n)) }

// Mat returns a zeroed workspace-backed rows×cols matrix.
func (w *Workspace) Mat(rows, cols int) *Matrix {
	if w.hoff == len(w.hdrs) {
		w.hdrs = append(w.hdrs, Matrix{})
	}
	m := &w.hdrs[w.hoff]
	w.hoff++
	m.Rows, m.Cols = rows, cols
	m.Data = w.take(rows * cols)
	return m
}

var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace returns a reset workspace from the process-wide pool.
// Pair every Get with PutWorkspace once no workspace-backed slice is live.
func GetWorkspace() *Workspace {
	w := wsPool.Get().(*Workspace)
	w.Reset()
	return w
}

// PutWorkspace returns w to the pool for reuse by any goroutine.
func PutWorkspace(w *Workspace) { wsPool.Put(w) }
