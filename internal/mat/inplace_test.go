package mat

import (
	"math"
	"math/rand/v2"
	"testing"
)

func ipRandMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func ipRandSPD(rng *rand.Rand, n int) *Matrix {
	b := ipRandMatrix(rng, n, n+2)
	a := b.Mul(b.T())
	a.AddScaledEye(0.5)
	return a
}

// TestMulToMatchesMul pins the blocked kernel bit-exact against the
// reference product, including shapes that straddle the tile boundary.
func TestMulToMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 11))
	naive := func(a, b *Matrix) *Matrix {
		out := NewMatrix(a.Rows, b.Cols)
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < b.Cols; j++ {
				var s float64
				for k := 0; k < a.Cols; k++ {
					s += a.At(i, k) * b.At(k, j)
				}
				out.Set(i, j, s)
			}
		}
		return out
	}
	for _, dims := range [][3]int{{3, 4, 5}, {1, 1, 1}, {7, 130, 2}, {5, 3, 129}, {2, 2, 300}} {
		a := ipRandMatrix(rng, dims[0], dims[1])
		b := ipRandMatrix(rng, dims[1], dims[2])
		want := naive(a, b)
		got := a.Mul(b)
		dst := NewMatrix(dims[0], dims[2])
		for i := range dst.Data {
			dst.Data[i] = math.NaN() // MulTo must fully overwrite dst
		}
		got2 := a.MulTo(dst, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("dims %v: Mul[%d] = %g, want %g", dims, i, got.Data[i], want.Data[i])
			}
			if got2.Data[i] != want.Data[i] {
				t.Fatalf("dims %v: MulTo[%d] = %g, want %g", dims, i, got2.Data[i], want.Data[i])
			}
		}
	}
}

func TestMulVecToMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 12))
	m := ipRandMatrix(rng, 9, 17)
	v := Vector(ipRandMatrix(rng, 1, 17).Data)
	want := m.MulVec(v)
	got := m.MulVecTo(NewVector(9), v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecTo[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestSolveToAliasing checks the in-place triangular solves against their
// allocating counterparts, including the dst==b aliasing case.
func TestSolveToAliasing(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 13))
	for _, n := range []int{1, 2, 5, 17} {
		a := ipRandSPD(rng, n)
		c, err := Chol(a)
		if err != nil {
			t.Fatal(err)
		}
		b := Vector(ipRandMatrix(rng, 1, n).Data)

		wantY := ForwardSolve(c.L, b)
		gotY := ForwardSolveTo(NewVector(n), c.L, b)
		// aliased: dst starts as a copy of b and is solved in place
		aliasY := b.Clone()
		ForwardSolveTo(aliasY, c.L, aliasY)
		wantX := BackSolveTrans(c.L, wantY)
		aliasX := wantY.Clone()
		BackSolveTransTo(aliasX, c.L, aliasX)

		wantSolve := c.SolveVec(b)
		gotSolve := c.SolveVecTo(b.Clone(), b)

		for i := 0; i < n; i++ {
			if gotY[i] != wantY[i] || aliasY[i] != wantY[i] {
				t.Fatalf("n=%d: ForwardSolveTo[%d] = %g/%g, want %g", n, i, gotY[i], aliasY[i], wantY[i])
			}
			if aliasX[i] != wantX[i] {
				t.Fatalf("n=%d: BackSolveTransTo[%d] = %g, want %g", n, i, aliasX[i], wantX[i])
			}
			if gotSolve[i] != wantSolve[i] {
				t.Fatalf("n=%d: SolveVecTo[%d] = %g, want %g", n, i, gotSolve[i], wantSolve[i])
			}
		}
	}
}

// TestCholJitterInto pins the workspace factorization bit-exact against
// CholJitter, for both a clean SPD matrix and one needing jitter.
func TestCholJitterInto(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 14))
	a := ipRandSPD(rng, 8)
	// A rank-deficient PSD matrix forces the jitter ladder.
	v := ipRandMatrix(rng, 8, 1)
	sing := v.Mul(v.T())
	for _, m := range []*Matrix{a, sing} {
		want, errWant := CholJitter(m)
		dst := NewMatrix(8, 8)
		for i := range dst.Data {
			dst.Data[i] = math.NaN()
		}
		got, errGot := CholJitterInto(dst, m)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("error mismatch: %v vs %v", errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		if got.Jitter != want.Jitter {
			t.Fatalf("jitter %g, want %g", got.Jitter, want.Jitter)
		}
		for i := range want.L.Data {
			if got.L.Data[i] != want.L.Data[i] {
				t.Fatalf("L[%d] = %g, want %g", i, got.L.Data[i], want.L.Data[i])
			}
		}
	}
}

func TestWorkspaceReuse(t *testing.T) {
	w := NewWorkspace()
	v := w.Vec(4)
	for i := range v {
		v[i] = float64(i + 1)
	}
	m := w.Mat(3, 3)
	m.Set(0, 0, 7)
	// The matrix must not overlap the vector.
	if v[3] != 4 {
		t.Fatalf("workspace Mat clobbered earlier Vec: %v", v)
	}
	w.Reset()
	v2 := w.Vec(4)
	for i, x := range v2 {
		if x != 0 {
			t.Fatalf("Vec after Reset not zeroed at %d: %g", i, x)
		}
	}
	m2 := w.Mat(3, 3)
	for i, x := range m2.Data {
		if x != 0 {
			t.Fatalf("Mat after Reset not zeroed at %d: %g", i, x)
		}
	}
	// Growth mid-cycle must leave earlier slices intact.
	w.Reset()
	small := w.Vec(2)
	small[0], small[1] = 5, 6
	big := w.Vec(1 << 12)
	big[0] = 1
	if small[0] != 5 || small[1] != 6 {
		t.Fatalf("growth invalidated earlier slice: %v", small)
	}
	// Pool round trip.
	PutWorkspace(w)
	w2 := GetWorkspace()
	defer PutWorkspace(w2)
	if got := w2.Vec(3); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("pooled workspace not reset: %v", got)
	}
}

func BenchmarkSolveVecTo(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 15))
	a := ipRandSPD(rng, 64)
	c, err := Chol(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := Vector(ipRandMatrix(rng, 1, 64).Data)
	dst := NewVector(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SolveVecTo(dst, rhs)
	}
}

func BenchmarkMulTo(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 16))
	x := ipRandMatrix(rng, 96, 96)
	y := ipRandMatrix(rng, 96, 96)
	dst := NewMatrix(96, 96)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MulTo(dst, y)
	}
}
