package mat

import (
	"fmt"
	"math"
)

// mulTile is the column-tile width for matrix multiply. Tiling runs over
// output columns only: every output element still accumulates its k-terms in
// ascending order, so tiled and untiled products are bit-identical — the
// blocking changes which elements are resident in cache, never the float
// summation order.
const mulTile = 128

// MulTo computes dst = m·b without allocating. dst must be Rows×b.Cols and
// must not alias m or b. It returns dst. The result is bit-identical to Mul.
func (m *Matrix) MulTo(dst, b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulTo dims %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTo dst %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Rows, b.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for j0 := 0; j0 < b.Cols; j0 += mulTile {
		j1 := j0 + mulTile
		if j1 > b.Cols {
			j1 = b.Cols
		}
		for i := 0; i < m.Rows; i++ {
			ri := m.Data[i*m.Cols : (i+1)*m.Cols]
			oi := dst.Data[i*dst.Cols+j0 : i*dst.Cols+j1]
			for k, a := range ri {
				if a == 0 {
					continue
				}
				bk := b.Data[k*b.Cols+j0 : k*b.Cols+j1]
				for j, bv := range bk {
					oi[j] += a * bv
				}
			}
		}
	}
	return dst
}

// MulVecTo computes dst = m·v without allocating. dst must have length Rows
// and must not alias v. It returns dst.
func (m *Matrix) MulVecTo(dst, v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mat: MulVecTo dims %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecTo dst %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Row(i).Dot(v)
	}
	return dst
}

// ForwardSolveTo solves L·y = b into dst without allocating. dst may alias b
// (forward substitution reads b[i] before writing dst[i]). It returns dst.
func ForwardSolveTo(dst Vector, l *Matrix, b Vector) Vector {
	n := l.Rows
	if len(b) != n || len(dst) != n {
		panic(fmt.Sprintf("mat: ForwardSolveTo dims %d/%d vs %d", len(dst), len(b), n))
	}
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Data[i*l.Cols : i*l.Cols+i]
		for k, v := range row {
			sum -= v * dst[k]
		}
		dst[i] = sum / l.At(i, i)
	}
	return dst
}

// BackSolveTransTo solves Lᵀ·x = y into dst without allocating, where l is
// lower triangular. dst may alias y. It returns dst.
func BackSolveTransTo(dst Vector, l *Matrix, y Vector) Vector {
	n := l.Rows
	if len(y) != n || len(dst) != n {
		panic(fmt.Sprintf("mat: BackSolveTransTo dims %d/%d vs %d", len(dst), len(y), n))
	}
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * dst[k]
		}
		dst[i] = sum / l.At(i, i)
	}
	return dst
}

// SolveVecTo solves A·x = b into dst given A = L·Lᵀ, without allocating.
// dst may alias b. It returns dst.
func (c *Cholesky) SolveVecTo(dst, b Vector) Vector {
	ForwardSolveTo(dst, c.L, b)
	return BackSolveTransTo(dst, c.L, dst)
}

// CholJitterInto factorizes a into the caller-owned n×n factor matrix l,
// with the same progressive-jitter ladder as CholJitter, and returns a
// Cholesky whose L field is l. No matrix is allocated; jitter retries reuse
// l. The factor values are bit-identical to CholJitter's.
func CholJitterInto(l, a *Matrix) (Cholesky, error) {
	if err := cholInto(l, a, 0); err == nil {
		return Cholesky{L: l}, nil
	}
	scale := meanDiag(a)
	if scale <= 0 {
		scale = 1
	}
	for j := 1e-10 * scale; j <= 1e-4*scale; j *= 10 {
		if err := cholInto(l, a, j); err == nil {
			return Cholesky{L: l, Jitter: j}, nil
		}
	}
	return Cholesky{}, fmt.Errorf("%w (after jitter up to %g)", ErrNotPositiveDefinite, 1e-4*scale)
}

// cholInto factorizes a+jitter·I into the caller-owned matrix l, zeroing it
// first so retries and reused workspace memory start clean.
func cholInto(l, a *Matrix, jitter float64) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: Chol on non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	if l.Rows != n || l.Cols != n {
		panic(fmt.Sprintf("mat: cholInto dst %dx%d, want %dx%d", l.Rows, l.Cols, n, n))
	}
	for i := range l.Data {
		l.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return nil
}
