//go:build !race

package mat

import (
	"math/rand/v2"
	"testing"
)

// TestInPlaceOpsZeroAlloc pins the steady-state allocation budget of the
// workspace-backed hot path: once a workspace has grown to size, a full
// solve/multiply cycle must not touch the heap. (Skipped under -race, which
// instruments allocation.)
func TestInPlaceOpsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 21))
	a := ipRandSPD(rng, 32)
	c, err := Chol(a)
	if err != nil {
		t.Fatal(err)
	}
	rhs := Vector(ipRandMatrix(rng, 1, 32).Data)
	x := ipRandMatrix(rng, 32, 32)
	w := NewWorkspace()
	cycle := func() {
		w.Reset()
		dst := w.Vec(32)
		c.SolveVecTo(dst, rhs)
		m := w.Mat(32, 32)
		x.MulTo(m, a)
		f := w.Mat(32, 32)
		if _, err := CholJitterInto(f, a); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm the arena
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Fatalf("warm workspace cycle allocates %v times per run, want 0", n)
	}
}
