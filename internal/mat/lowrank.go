package mat

import (
	"fmt"
	"math"
)

// Low-rank workspace kernels for the sparse-GP hot path: the inducing-point
// posterior P = K_uu + σ⁻²·K_uf·K_fu changes by a symmetric rank-1 term per
// observation, so conditioning stays O(m²) instead of the O(m³) of a fresh
// factorization. Both kernels are in-place and allocation-free.

// SymRank1Update accumulates a += s·v·vᵀ in place. a must be square with
// dimension len(v); symmetry is preserved exactly (the same product lands on
// both triangles).
func SymRank1Update(a *Matrix, v Vector, s float64) {
	n := a.Rows
	if a.Cols != n || len(v) != n {
		panic(fmt.Sprintf("mat: SymRank1Update dims %dx%d vs %d", a.Rows, a.Cols, len(v)))
	}
	for i := 0; i < n; i++ {
		svi := s * v[i]
		a.Data[i*n+i] += svi * v[i]
		for j := i + 1; j < n; j++ {
			d := svi * v[j]
			a.Data[i*n+j] += d
			a.Data[j*n+i] += d
		}
	}
}

// Rank1Update rewrites the factor so that L·Lᵀ becomes L·Lᵀ + v·vᵀ, using
// the classical Givens-based update (Golub & Van Loan §6.5.4) in O(n²).
// Updates (unlike downdates) are unconditionally stable: every new pivot is
// hypot(old pivot, v[k]) > 0. v is consumed as scratch and left clobbered;
// callers that need it afterwards must pass a copy. The Jitter bookkeeping
// is unchanged — the factor keeps representing (A + Jitter·I) + v·vᵀ.
func (c *Cholesky) Rank1Update(v Vector) {
	l := c.L
	n := l.Rows
	if len(v) != n {
		panic(fmt.Sprintf("mat: Rank1Update dims %d vs %d", n, len(v)))
	}
	for k := 0; k < n; k++ {
		lkk := l.At(k, k)
		r := math.Hypot(lkk, v[k])
		cc := r / lkk
		ss := v[k] / lkk
		l.Set(k, k, r)
		for i := k + 1; i < n; i++ {
			lik := (l.At(i, k) + ss*v[i]) / cc
			l.Set(i, k, lik)
			v[i] = cc*v[i] - ss*lik
		}
	}
}
