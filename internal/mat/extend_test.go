package mat

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

// TestCholeskyExtendFailureLeavesFactorUntouched pins the error contract of
// the incremental extension: a rejected Extend must not modify the factor,
// so callers (gp.AddObservation's CholJitter fallback, and anything that
// retries) can keep using it. The instance is chosen so the new pivot is
// exactly negative, not rounding-borderline: A = I₂, col = [1, 1], diag = 1
// gives d = 1 + 0 − (1² + 1²) = −1.
func TestCholeskyExtendFailureLeavesFactorUntouched(t *testing.T) {
	c, err := Chol(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), c.L.Data...)
	col := NewVector(2)
	col[0], col[1] = 1, 1
	if err := c.Extend(col, 1); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
	if c.L.Rows != 2 || c.L.Cols != 2 {
		t.Fatalf("factor grew to %dx%d on a failed extension", c.L.Rows, c.L.Cols)
	}
	for i, v := range c.L.Data {
		if v != before[i] {
			t.Fatalf("L.Data[%d] changed from %v to %v on a failed extension", i, before[i], v)
		}
	}
	// The untouched factor must still solve correctly (A = I ⇒ x = b)...
	b := NewVector(2)
	b[0], b[1] = 3, -4
	x := c.SolveVec(b)
	if x[0] != 3 || x[1] != -4 {
		t.Fatalf("solve after failed extension: got %v", x)
	}
	// ...and still accept a valid extension.
	ok := NewVector(2)
	if err := c.Extend(ok, 2); err != nil {
		t.Fatalf("valid extension after failed one: %v", err)
	}
	if c.L.Rows != 3 {
		t.Fatalf("factor is %dx%d after valid extension", c.L.Rows, c.L.Cols)
	}
}

// FuzzCholeskyExtendVsRefactor differentially fuzzes the O(n²) incremental
// extension against a from-scratch factorization of the same matrix: for a
// random SPD matrix, factoring the leading block and extending by the last
// row/column must solve linear systems identically (to conditioning-scaled
// round-off) to the full O(n³) factorization. A rejected extension is only
// acceptable when the full factorization also fails at zero jitter — the two
// paths must agree on feasibility, not just on values.
func FuzzCholeskyExtendVsRefactor(f *testing.F) {
	f.Add(uint64(1), 4)
	f.Add(uint64(42), 9)
	f.Add(uint64(7), 1)
	f.Add(uint64(1234), 20)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		n = 1 + absiE(n)%24
		rng := rand.New(rand.NewPCG(seed, 0xC401))
		a := randSPD(rng, n+1)

		sub := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sub.Set(i, j, a.At(i, j))
			}
		}
		c, err := Chol(sub)
		if err != nil {
			t.Skip("leading block not factorizable at zero jitter")
		}
		col := NewVector(n)
		for i := 0; i < n; i++ {
			col[i] = a.At(i, n)
		}
		extErr := c.Extend(col, a.At(n, n))
		full, fullErr := Chol(a)
		if extErr != nil {
			if fullErr == nil {
				t.Fatalf("Extend rejected a matrix the full factorization accepts: %v", extErr)
			}
			return
		}
		if fullErr != nil {
			t.Skip("full factorization needed jitter; extension got lucky on rounding")
		}

		b := NewVector(n + 1)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xe := c.SolveVec(b)
		xf := full.SolveVec(b)
		// Solution agreement scaled by the solution magnitude: both factor
		// the same matrix, differing only in round-off amplified by κ(A).
		var scale float64 = 1
		for i := range xf {
			scale = math.Max(scale, math.Abs(xf[i]))
		}
		for i := range xe {
			if math.Abs(xe[i]-xf[i]) > 1e-6*scale {
				t.Fatalf("n=%d: x[%d] = %v (extended) vs %v (full)", n, i, xe[i], xf[i])
			}
		}
	})
}

func absiE(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
