package mat

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %v", got)
	}
	if got := v.Mean(); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := v.Max(); got != 3 {
		t.Errorf("Max = %v", got)
	}
	if got := v.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := v.ArgMax(); got != 2 {
		t.Errorf("ArgMax = %v", got)
	}
	if got := v.Norm2(); !almostEq(got, math.Sqrt(14), 1e-12) {
		t.Errorf("Norm2 = %v", got)
	}
	w := v.Clone()
	w.Scale(2)
	if v[0] != 1 || w[0] != 2 {
		t.Errorf("Clone is not independent: %v %v", v, w)
	}
	w.AddScaled(-1, Vector{2, 4, 6})
	for _, x := range w {
		if x != 0 {
			t.Errorf("AddScaled result %v, want zeros", w)
		}
	}
	u := Vector{1, 1, 1}
	u.Add(Vector{1, 2, 3}).Sub(Vector{2, 3, 4})
	for _, x := range u {
		if x != 0 {
			t.Errorf("Add/Sub result %v, want zeros", u)
		}
	}
}

func TestEmptyVectorMean(t *testing.T) {
	if got := (Vector{}).Mean(); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
}

func TestMatrixFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows layout wrong: %+v", m)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
}

func TestMatrixRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatrixMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec(Vector{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T wrong: %+v", at)
	}
}

func TestIdentityMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := Identity(2).Mul(a); got.At(0, 0) != 1 || got.At(1, 1) != 4 || got.At(0, 1) != 2 {
		t.Fatalf("I·A != A: %+v", got)
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {4, 1}})
	if d := a.SymmetricMaxAbsOffDiag(); d != 2 {
		t.Fatalf("asymmetry = %v, want 2", d)
	}
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("Symmetrize wrong: %+v", a)
	}
	if d := a.SymmetricMaxAbsOffDiag(); d != 0 {
		t.Fatalf("post-Symmetrize asymmetry = %v", d)
	}
}

// randSPD builds a random symmetric positive definite matrix A = BᵀB + n·I.
func randSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.T().Mul(b)
	a.AddScaledEye(float64(n))
	return a
}

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 5, 20} {
		a := randSPD(rng, n)
		c, err := Chol(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		recon := c.L.Mul(c.L.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(recon.At(i, j), a.At(i, j), 1e-9*float64(n)) {
					t.Fatalf("n=%d: recon[%d][%d]=%v want %v", n, i, j, recon.At(i, j), a.At(i, j))
				}
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{1, 3, 10} {
		a := randSPD(rng, n)
		x := NewVector(n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		c, err := Chol(a)
		if err != nil {
			t.Fatal(err)
		}
		got := c.SolveVec(b)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				t.Fatalf("n=%d: solve[%d]=%v want %v", n, i, got[i], x[i])
			}
		}
	}
}

func TestCholeskySolveMatrixAndInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := randSPD(rng, 6)
	c, err := Chol(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := c.Inverse()
	prod := a.Mul(inv)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(prod.At(i, j), want, 1e-8) {
				t.Fatalf("A·A⁻¹[%d][%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	c, err := Chol(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LogDet(); !almostEq(got, math.Log(36), 1e-12) {
		t.Fatalf("LogDet = %v, want log 36", got)
	}
}

func TestCholNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Chol(a); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
}

func TestCholJitterRescuesSingular(t *testing.T) {
	// Rank-1 PSD matrix: plain Chol fails, jittered succeeds.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Chol(a); err == nil {
		t.Fatal("expected plain Chol to fail on singular matrix")
	}
	c, err := CholJitter(a)
	if err != nil {
		t.Fatalf("CholJitter failed: %v", err)
	}
	if c.Jitter <= 0 {
		t.Fatalf("expected positive jitter, got %v", c.Jitter)
	}
}

func TestTriangularSolves(t *testing.T) {
	l := FromRows([][]float64{{2, 0}, {1, 3}})
	y := ForwardSolve(l, Vector{4, 7})
	if !almostEq(y[0], 2, 1e-12) || !almostEq(y[1], 5.0/3, 1e-12) {
		t.Fatalf("ForwardSolve = %v", y)
	}
	x := BackSolveTrans(l, Vector{2, 3})
	// Lᵀ = [[2,1],[0,3]]; x2 = 1, x1 = (2-1)/2 = 0.5
	if !almostEq(x[1], 1, 1e-12) || !almostEq(x[0], 0.5, 1e-12) {
		t.Fatalf("BackSolveTrans = %v", x)
	}
}

// Property: for random SPD A and random b, x = Chol(A).SolveVec(b)
// satisfies A·x = b.
func TestCholeskySolveProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		n := 1 + int(seed%8)
		a := randSPD(r, n)
		b := NewVector(n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		c, err := CholJitter(a)
		if err != nil {
			return false
		}
		x := c.SolveVec(b)
		ax := a.MulVec(x)
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	_ = rng
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	a.Set(0, 0, 99)
	if b.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestDimensionPanics(t *testing.T) {
	cases := []func(){
		func() { NewMatrix(-1, 2) },
		func() { FromRows([][]float64{{1}}).MulVec(Vector{1, 2}) },
		func() { FromRows([][]float64{{1}}).Mul(FromRows([][]float64{{1, 2}, {3, 4}})) },
		func() { FromRows([][]float64{{1, 2}}).AddScaledEye(1) },
		func() { FromRows([][]float64{{1}}).Add(FromRows([][]float64{{1, 2}})) },
		func() { FromRows([][]float64{{1, 2}}).Symmetrize() },
		func() { FromRows([][]float64{{1, 2}}).SymmetricMaxAbsOffDiag() },
		func() { ForwardSolve(Identity(2), Vector{1}) },
		func() { BackSolveTrans(Identity(2), Vector{1}) },
		func() { _, _ = Chol(FromRows([][]float64{{1, 2}})) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCholeskySolveDimMismatchPanics(t *testing.T) {
	c, err := Chol(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Solve(NewMatrix(3, 1))
}

func TestCholJitterFailsOnIndefinite(t *testing.T) {
	// A strongly indefinite matrix cannot be rescued by the bounded jitter.
	a := FromRows([][]float64{{1, 100}, {100, 1}})
	_, err := CholJitter(a)
	if err == nil {
		t.Fatal("expected CholJitter to give up on an indefinite matrix")
	}
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func BenchmarkCholesky50(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 10))
	a := randSPD(rng, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Chol(a); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCholeskyExtendMatchesFullFactorization(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, n := range []int{1, 3, 8, 25} {
		a := randSPD(rng, n+1)
		// Factor the leading n×n block, then extend by the last row/col.
		sub := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sub.Set(i, j, a.At(i, j))
			}
		}
		c, err := Chol(sub)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		col := NewVector(n)
		for i := 0; i < n; i++ {
			col[i] = a.At(i, n)
		}
		if err := c.Extend(col, a.At(n, n)); err != nil {
			t.Fatalf("n=%d extend: %v", n, err)
		}
		full, err := Chol(a)
		if err != nil {
			t.Fatalf("n=%d full: %v", n, err)
		}
		for i := 0; i <= n; i++ {
			for j := 0; j <= i; j++ {
				if !almostEq(c.L.At(i, j), full.L.At(i, j), 1e-9*float64(n+1)) {
					t.Fatalf("n=%d: L[%d][%d]=%v want %v", n, i, j, c.L.At(i, j), full.L.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyExtendRepeatedSolves(t *testing.T) {
	// Grow a factorization one point at a time and check A·x = b solves
	// against a from-scratch factorization at every size.
	rng := rand.New(rand.NewPCG(21, 22))
	const max = 12
	a := randSPD(rng, max)
	c, err := Chol(&Matrix{Rows: 1, Cols: 1, Data: []float64{a.At(0, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < max; n++ {
		col := NewVector(n)
		for i := 0; i < n; i++ {
			col[i] = a.At(i, n)
		}
		if err := c.Extend(col, a.At(n, n)); err != nil {
			t.Fatalf("extend to %d: %v", n+1, err)
		}
		b := NewVector(n + 1)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := c.SolveVec(b)
		ax := NewVector(n + 1)
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				ax[i] += a.At(i, j) * x[j]
			}
		}
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-8) {
				t.Fatalf("n=%d: (Ax)[%d]=%v want %v", n+1, i, ax[i], b[i])
			}
		}
	}
}

func TestCholeskyExtendPreservesJitter(t *testing.T) {
	// A factor produced with jitter must extend the jittered matrix, not the
	// raw one: reconstructing L·Lᵀ should give A + Jitter·I on the diagonal.
	a := randSPD(rand.New(rand.NewPCG(31, 32)), 4)
	c, err := cholWithJitter(a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	col := NewVector(4)
	for i := range col {
		col[i] = 0.1 * float64(i)
	}
	const diag = 6.0
	if err := c.Extend(col, diag); err != nil {
		t.Fatal(err)
	}
	recon := c.L.Mul(c.L.T())
	if !almostEq(recon.At(4, 4), diag+0.5, 1e-9) {
		t.Fatalf("extended diagonal %v, want %v", recon.At(4, 4), diag+0.5)
	}
}

func TestCholeskyExtendRejectsSingular(t *testing.T) {
	// Extending with a duplicate of an existing point makes the matrix
	// exactly singular; Extend must refuse rather than produce NaNs.
	a := Identity(2)
	a.Set(0, 1, 0.9)
	a.Set(1, 0, 0.9)
	c, err := Chol(a)
	if err != nil {
		t.Fatal(err)
	}
	col := NewVector(2)
	col[0], col[1] = 1, 0.9 // identical to row 0
	if err := c.Extend(col, 1); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

func TestCholeskyExtendDimMismatchPanics(t *testing.T) {
	c, err := Chol(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong column length")
		}
	}()
	_ = c.Extend(NewVector(2), 1)
}
