package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a vector sharing the matrix's backing storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MulVec returns m·v as a new vector.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec dims %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(v)
	}
	return out
}

// Mul returns m·b as a new matrix. The product is computed with the
// column-tiled kernel in MulTo; see there for the determinism contract.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dims %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	return m.MulTo(NewMatrix(m.Rows, b.Cols), b)
}

// AddScaledEye adds a*I to the square matrix m in place.
func (m *Matrix) AddScaledEye(a float64) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("mat: AddScaledEye on %dx%d", m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += a
	}
}

// Add sets m = m + b in place and returns m.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Add dims %dx%d + %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
	return m
}

// Scale multiplies every element by a in place and returns m.
func (m *Matrix) Scale(a float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// SymmetricMaxAbsOffDiag returns the largest |m[i][j]-m[j][i]| of a square
// matrix — a cheap asymmetry diagnostic used by tests and the GP layer.
func (m *Matrix) SymmetricMaxAbsOffDiag() float64 {
	if m.Rows != m.Cols {
		panic("mat: SymmetricMaxAbsOffDiag on non-square matrix")
	}
	var worst float64
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			d := math.Abs(m.At(i, j) - m.At(j, i))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Symmetrize replaces m with (m + mᵀ)/2 in place.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mat: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}
