package mat

import (
	"math/rand/v2"
	"testing"
)

// benchSPD builds a deterministic SPD matrix of size n for benchmarking.
func benchSPD(n int) *Matrix {
	return randSPD(rand.New(rand.NewPCG(1, uint64(n))), n)
}

func BenchmarkCholJitter(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		a := benchSPD(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CholJitter(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCholeskyExtend measures appending one row/column to an existing
// n×n factor — the GP.AddObservation fast path — against the full
// refactorization BenchmarkCholJitter pays at the same size.
func BenchmarkCholeskyExtend(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		a := benchSPD(n + 1)
		sub := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sub.Set(i, j, a.At(i, j))
			}
		}
		col := NewVector(n)
		for i := 0; i < n; i++ {
			col[i] = a.At(i, n)
		}
		diag := a.At(n, n)
		base, err := Chol(sub)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := &Cholesky{L: base.L, Jitter: base.Jitter}
				if err := c.Extend(col, diag); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 50:
		return "n=50"
	case 200:
		return "n=200"
	default:
		return "n=800"
	}
}
