package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when Cholesky factorization fails even
// after the maximum diagonal jitter has been applied.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ, plus the jitter that was added to the diagonal
// to make the factorization succeed.
type Cholesky struct {
	L      *Matrix
	Jitter float64
}

// Chol factorizes the symmetric positive definite matrix a. The input is not
// modified. It fails with ErrNotPositiveDefinite if a has a non-positive
// pivot.
func Chol(a *Matrix) (*Cholesky, error) {
	return cholWithJitter(a, 0)
}

// CholJitter factorizes a, progressively adding diagonal jitter
// (1e-10·scale, ×10 each retry, up to 1e-4·scale where scale is the mean
// diagonal) until the factorization succeeds. GP covariance matrices built
// from nearly-duplicate inputs routinely need this.
func CholJitter(a *Matrix) (*Cholesky, error) {
	c, err := cholWithJitter(a, 0)
	if err == nil {
		return c, nil
	}
	scale := meanDiag(a)
	if scale <= 0 {
		scale = 1
	}
	for j := 1e-10 * scale; j <= 1e-4*scale; j *= 10 {
		if c, err = cholWithJitter(a, j); err == nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w (after jitter up to %g)", ErrNotPositiveDefinite, 1e-4*scale)
}

func meanDiag(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		s += a.At(i, i)
	}
	return s / float64(a.Rows)
}

func cholWithJitter(a *Matrix, jitter float64) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: Chol on non-square %dx%d", a.Rows, a.Cols))
	}
	l := NewMatrix(a.Rows, a.Rows)
	if err := cholInto(l, a, jitter); err != nil {
		return nil, err
	}
	return &Cholesky{L: l, Jitter: jitter}, nil
}

// Extend grows the factorization of the n×n matrix A to cover the (n+1)×
// (n+1) matrix obtained by appending col as the new last row/column and
// diag as the new diagonal element. It costs O(n²) — one triangular solve
// plus a copy — instead of the O(n³) of refactorizing from scratch. The
// jitter that stabilized the original factorization is applied to the new
// diagonal element too, so the extended factor represents A' + Jitter·I
// exactly like the original represented A + Jitter·I.
//
// It fails with ErrNotPositiveDefinite when the Schur complement of the new
// point is non-positive (the extended matrix is numerically singular);
// callers should fall back to a full CholJitter refactorization.
func (c *Cholesky) Extend(col Vector, diag float64) error {
	n := c.L.Rows
	if len(col) != n {
		panic(fmt.Sprintf("mat: Cholesky Extend dims %d vs %d", n, len(col)))
	}
	v := ForwardSolve(c.L, col)
	d := diag + c.Jitter - v.Dot(v)
	if d <= 0 || math.IsNaN(d) {
		return ErrNotPositiveDefinite
	}
	l := NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(l.Data[i*(n+1):i*(n+1)+i+1], c.L.Data[i*n:i*n+i+1])
	}
	copy(l.Data[n*(n+1):n*(n+1)+n], v)
	l.Set(n, n, math.Sqrt(d))
	c.L = l
	return nil
}

// SolveVec solves A·x = b given A = L·Lᵀ, returning a new vector.
func (c *Cholesky) SolveVec(b Vector) Vector {
	y := ForwardSolve(c.L, b)
	return BackSolveTrans(c.L, y)
}

// Solve solves A·X = B column-by-column, returning a new matrix.
func (c *Cholesky) Solve(b *Matrix) *Matrix {
	n := c.L.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("mat: Cholesky Solve dims %d vs %d", n, b.Rows))
	}
	out := NewMatrix(n, b.Cols)
	col := NewVector(n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x := c.SolveVec(col)
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// LogDet returns log det(A) = 2·Σ log L[i][i].
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// Inverse returns A⁻¹ as a dense matrix. Prefer SolveVec when possible; this
// exists for the Laplace-approximation algebra that genuinely needs the
// full inverse.
func (c *Cholesky) Inverse() *Matrix {
	return c.Solve(Identity(c.L.Rows))
}

// ForwardSolve solves the lower-triangular system L·y = b.
func ForwardSolve(l *Matrix, b Vector) Vector {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: ForwardSolve dims %d vs %d", n, len(b)))
	}
	y := NewVector(n)
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Data[i*l.Cols : i*l.Cols+i]
		for k, v := range row {
			sum -= v * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	return y
}

// BackSolveTrans solves the upper-triangular system Lᵀ·x = y where l is
// lower triangular.
func BackSolveTrans(l *Matrix, y Vector) Vector {
	n := l.Rows
	if len(y) != n {
		panic(fmt.Sprintf("mat: BackSolveTrans dims %d vs %d", n, len(y)))
	}
	x := NewVector(n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}
