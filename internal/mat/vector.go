// Package mat provides the dense linear algebra needed by the Gaussian
// process and Bayesian optimization layers: vectors, row-major matrices,
// Cholesky factorization, and triangular solves. It is intentionally small
// and allocation-conscious rather than a general BLAS replacement.
package mat

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. The lengths must match.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// AddScaled sets v = v + a*w in place and returns v.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Scale multiplies every element of v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Sub sets v = v - w in place and returns v.
func (v Vector) Sub(w Vector) Vector { return v.AddScaled(-1, w) }

// Add sets v = v + w in place and returns v.
func (v Vector) Add(w Vector) Vector { return v.AddScaled(1, w) }

// Max returns the maximum element of v. It panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("mat: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element of v. It panics on an empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("mat: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// ArgMax returns the index of the maximum element of v.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		panic("mat: ArgMax of empty vector")
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
