package mat

import (
	"math"
	"math/rand/v2"
	"testing"
)

func lrRandSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Mul(b.T())
	a.AddScaledEye(float64(n))
	return a
}

func TestSymRank1Update(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	for _, n := range []int{1, 3, 8} {
		a := lrRandSPD(rng, n)
		want := a.Clone()
		v := NewVector(n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		s := 2.5
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				d := (s * v[i]) * v[j]
				want.Set(i, j, want.At(i, j)+d)
				if i != j {
					want.Set(j, i, want.At(j, i)+d)
				}
			}
		}
		SymRank1Update(a, v, s)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if a.At(i, j) != want.At(i, j) {
					t.Fatalf("n=%d (%d,%d): got %g want %g", n, i, j, a.At(i, j), want.At(i, j))
				}
				if a.At(i, j) != a.At(j, i) {
					t.Fatalf("n=%d: symmetry broken at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestSymRank1UpdateDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	SymRank1Update(NewMatrix(3, 3), NewVector(2), 1)
}

// TestRank1UpdateMatchesRefactor checks L·Lᵀ + v·vᵀ against a fresh
// factorization of the updated matrix across sizes and repeated updates.
func TestRank1UpdateMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 2))
	for _, n := range []int{1, 2, 5, 16, 40} {
		a := lrRandSPD(rng, n)
		c, err := Chol(a)
		if err != nil {
			t.Fatalf("n=%d: chol: %v", n, err)
		}
		for rep := 0; rep < 3; rep++ {
			v := NewVector(n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			SymRank1Update(a, v, 1)
			c.Rank1Update(v.Clone()) // v is scratch-consumed
			want, err := Chol(a)
			if err != nil {
				t.Fatalf("n=%d rep=%d: refactor: %v", n, rep, err)
			}
			scale := meanDiag(a)
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					got, w := c.L.At(i, j), want.L.At(i, j)
					if math.Abs(got-w) > 1e-9*scale {
						t.Fatalf("n=%d rep=%d L(%d,%d): got %g want %g", n, rep, i, j, got, w)
					}
				}
			}
		}
	}
}

func TestRank1UpdatePreservesJitter(t *testing.T) {
	// A factor carrying jitter must keep representing (A + Jitter·I) + v·vᵀ.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	c, err := CholJitter(a)
	if err != nil {
		t.Fatalf("CholJitter: %v", err)
	}
	if c.Jitter == 0 {
		t.Fatal("test needs a jittered factor")
	}
	v := Vector{0.5, -0.25}
	c.Rank1Update(v.Clone())
	upd := a.Clone()
	upd.AddScaledEye(c.Jitter)
	SymRank1Update(upd, v, 1)
	want, err := Chol(upd)
	if err != nil {
		t.Fatalf("refactor: %v", err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(c.L.At(i, j)-want.L.At(i, j)) > 1e-12 {
				t.Fatalf("L(%d,%d): got %g want %g", i, j, c.L.At(i, j), want.L.At(i, j))
			}
		}
	}
}

func TestRank1UpdateDimPanics(t *testing.T) {
	c, err := Chol(lrRandSPD(rand.New(rand.NewPCG(7, 3)), 3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	c.Rank1Update(NewVector(2))
}
