package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestInjectorStateTransitions(t *testing.T) {
	sc := &Scenario{
		Name: "transitions",
		Events: []Event{
			{Epoch: 1, Action: ServerDown, Target: 1},
			{Epoch: 1, Action: CameraStall, Target: 2},
			{Epoch: 2, Action: LinkDegrade, Target: 0, Factor: 0.25},
			{Epoch: 3, Action: ServerUp, Target: 1},
			{Epoch: 3, Action: CameraResume, Target: 2},
			{Epoch: 4, Action: LinkRestore, Target: 0},
		},
	}
	in, err := NewInjector(sc, 3, 4)
	if err != nil {
		t.Fatal(err)
	}

	if evs := in.Advance(0); len(evs) != 0 {
		t.Fatalf("epoch 0 applied %d events", len(evs))
	}
	st := in.State()
	if st.NumHealthy() != 3 || len(st.StalledCameras()) != 0 {
		t.Fatalf("epoch 0 state: %+v", st)
	}

	if evs := in.Advance(1); len(evs) != 2 {
		t.Fatalf("epoch 1 applied %d events, want 2", len(evs))
	}
	st = in.State()
	if !st.Down[1] || st.NumHealthy() != 2 {
		t.Fatalf("server 1 not down: %+v", st)
	}
	if h := st.Healthy(); h == nil || h[1] || !h[0] || !h[2] {
		t.Fatalf("healthy mask wrong: %v", h)
	}
	if got := st.StalledCameras(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("stalled = %v", got)
	}

	in.Advance(2)
	st = in.State()
	if st.LinkScale[0] != 0.25 || st.LinkScale[1] != 1 {
		t.Fatalf("link scales = %v", st.LinkScale)
	}

	in.Advance(3)
	st = in.State()
	if st.Down[1] || len(st.StalledCameras()) != 0 {
		t.Fatalf("recovery not applied: %+v", st)
	}

	in.Advance(4)
	if st = in.State(); st.LinkScale[0] != 1 {
		t.Fatalf("link not restored: %v", st.LinkScale)
	}
	// Past the script: nothing more happens.
	if evs := in.Advance(99); evs != nil {
		t.Fatalf("spurious events: %v", evs)
	}
}

func TestInjectorCatchesUpSkippedEpochs(t *testing.T) {
	sc := &Scenario{Events: []Event{
		{Epoch: 0, Action: ServerDown, Target: 0},
		{Epoch: 2, Action: ServerDown, Target: 1},
		{Epoch: 5, Action: ServerUp, Target: 0},
	}}
	in, err := NewInjector(sc, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Jumping straight to epoch 5 applies everything at or before it, in order.
	evs := in.Advance(5)
	if len(evs) != 3 {
		t.Fatalf("applied %d events, want 3", len(evs))
	}
	st := in.State()
	if st.Down[0] || !st.Down[1] || st.NumHealthy() != 2 {
		t.Fatalf("state after catch-up: %+v", st)
	}
}

func TestStateCopyIsolation(t *testing.T) {
	sc := &Scenario{Events: []Event{{Epoch: 0, Action: ServerDown, Target: 0}}}
	in, _ := NewInjector(sc, 2, 2)
	in.Advance(0)
	st := in.State()
	st.Down[0] = false
	st.LinkScale[1] = 0.1
	if fresh := in.State(); !fresh.Down[0] || fresh.LinkScale[1] != 1 {
		t.Fatal("State() exposed internal slices")
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if evs := in.Advance(3); evs != nil {
		t.Fatalf("nil injector applied events: %v", evs)
	}
	st := in.State()
	if st.Healthy() != nil || st.StalledCameras() != nil || st.NumHealthy() != 0 {
		t.Fatalf("nil injector state not empty: %+v", st)
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := Generate(GenOptions{Epochs: 20, Servers: 4, Cameras: 6, Seed: 9})
	if len(sc.Events) == 0 {
		t.Fatal("generated scenario is empty; pick a different seed")
	}
	var buf bytes.Buffer
	if err := sc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario:\n%+v\n%+v", sc, back)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"negative epoch", Event{Epoch: -1, Action: ServerDown, Target: 0}},
		{"server out of range", Event{Epoch: 0, Action: ServerDown, Target: 3}},
		{"camera out of range", Event{Epoch: 0, Action: CameraStall, Target: 5}},
		{"unknown action", Event{Epoch: 0, Action: "meteor_strike", Target: 0}},
		{"factor zero", Event{Epoch: 0, Action: LinkDegrade, Target: 0, Factor: 0}},
		{"factor above one", Event{Epoch: 0, Action: LinkDegrade, Target: 0, Factor: 1.5}},
	}
	for _, tc := range cases {
		sc := &Scenario{Events: []Event{tc.ev}}
		if err := sc.Validate(3, 5); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if _, err := NewInjector(sc, 3, 5); err == nil {
			t.Errorf("%s: injector accepted", tc.name)
		}
	}
	ok := &Scenario{Events: []Event{
		{Epoch: 0, Action: LinkDegrade, Target: 2, Factor: 1},
		{Epoch: 1, Action: CameraStall, Target: 4},
	}}
	if err := ok.Validate(3, 5); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opt := GenOptions{Epochs: 30, Servers: 5, Cameras: 8, Seed: 42}
	a, b := Generate(opt), Generate(opt)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same options produced different scenarios")
	}
	c := Generate(GenOptions{Epochs: 30, Servers: 5, Cameras: 8, Seed: 43})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scenarios")
	}
}

func TestGenerateValidAndNeverKillsLastServer(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		opt := GenOptions{
			Epochs: 40, Servers: 3, Cameras: 5, Seed: seed,
			CrashProb: 0.3, MeanOutage: 6, // aggressive: outages overlap across servers
		}
		sc := Generate(opt)
		if err := sc.Validate(opt.Servers, opt.Cameras); err != nil {
			t.Fatalf("seed %d: invalid scenario: %v", seed, err)
		}
		in, err := NewInjector(sc, opt.Servers, opt.Cameras)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for epoch := 0; epoch < opt.Epochs; epoch++ {
			in.Advance(epoch)
			if in.State().NumHealthy() < 1 {
				t.Fatalf("seed %d epoch %d: no healthy servers", seed, epoch)
			}
		}
	}
}

func TestLoadRejectsTrailingData(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"name":"a"}{"name":"b"}`)); err == nil {
		t.Fatal("trailing scenario object accepted")
	}
	if _, err := Load(strings.NewReader(`{"name":"a"} 42`)); err == nil {
		t.Fatal("trailing literal accepted")
	}
	if sc, err := Load(strings.NewReader("{\"name\":\"a\",\"events\":[]}\n  \n")); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	} else if sc.Name != "a" {
		t.Fatalf("name = %q", sc.Name)
	}
}

func TestScenarioSplit(t *testing.T) {
	sc := &Scenario{Name: "mix", Events: []Event{
		{Epoch: 0, Action: LinkDegrade, Target: 0, Factor: 0.5},
		{Epoch: 1, Action: ServerDown, Target: 1},
		{Epoch: 2, Action: CameraStall, Target: 2},
		{Epoch: 3, Action: ServerUp, Target: 1},
		{Epoch: 4, Action: LinkRestore, Target: 0},
	}}
	liveness, env := sc.Split()
	wantLive := []Event{
		{Epoch: 1, Action: ServerDown, Target: 1},
		{Epoch: 3, Action: ServerUp, Target: 1},
	}
	wantEnv := []Event{
		{Epoch: 0, Action: LinkDegrade, Target: 0, Factor: 0.5},
		{Epoch: 2, Action: CameraStall, Target: 2},
		{Epoch: 4, Action: LinkRestore, Target: 0},
	}
	if !reflect.DeepEqual(liveness.Events, wantLive) {
		t.Fatalf("liveness events = %+v", liveness.Events)
	}
	if !reflect.DeepEqual(env.Events, wantEnv) {
		t.Fatalf("env events = %+v", env.Events)
	}
	if liveness.Name != "mix-liveness" || env.Name != "mix-env" {
		t.Fatalf("names = %q, %q", liveness.Name, env.Name)
	}
	// The original scenario is untouched and the halves cover it exactly.
	if len(liveness.Events)+len(env.Events) != len(sc.Events) {
		t.Fatal("split dropped or duplicated events")
	}
}
