// Package fault is a deterministic fault-injection subsystem for the
// online runtime: scenario scripts crash and recover servers, stall
// cameras, and degrade per-server uplink bandwidth at epoch granularity.
// Scenarios are plain data (JSON-serializable) and their application is a
// pure function of (scenario, epoch), so a faulted run is exactly as
// reproducible as a healthy one — the property the failover-determinism
// tests rely on.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"sort"
)

// Action is one kind of injected fault or recovery.
type Action string

// The supported fault actions. Targets are server indices for the
// server/link actions and camera (video) indices for the stall actions.
const (
	ServerDown   Action = "server_down"
	ServerUp     Action = "server_up"
	CameraStall  Action = "camera_stall"
	CameraResume Action = "camera_resume"
	LinkDegrade  Action = "link_degrade" // scale the target's uplink by Factor
	LinkRestore  Action = "link_restore" // reset the target's uplink to nominal
)

// ActionCode maps an action to the numeric code telemetry events carry
// (obs event fields are numeric). Unknown actions map to 0.
func ActionCode(a Action) float64 {
	switch a {
	case ServerDown:
		return 1
	case ServerUp:
		return 2
	case CameraStall:
		return 3
	case CameraResume:
		return 4
	case LinkDegrade:
		return 5
	case LinkRestore:
		return 6
	}
	return 0
}

// Event is one scripted fault at epoch granularity.
type Event struct {
	Epoch  int     `json:"epoch"`
	Action Action  `json:"action"`
	Target int     `json:"target"`
	Factor float64 `json:"factor,omitempty"` // LinkDegrade: new uplink scale in (0, 1]
}

// Scenario is a named script of fault events.
type Scenario struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
}

// Validate checks every event against the system shape: targets in range,
// known actions, non-negative epochs, and degrade factors in (0, 1].
func (s *Scenario) Validate(servers, cameras int) error {
	for i, e := range s.Events {
		if e.Epoch < 0 {
			return fmt.Errorf("fault: event %d: negative epoch %d", i, e.Epoch)
		}
		switch e.Action {
		case ServerDown, ServerUp, LinkDegrade, LinkRestore:
			if e.Target < 0 || e.Target >= servers {
				return fmt.Errorf("fault: event %d: server target %d out of range [0,%d)", i, e.Target, servers)
			}
		case CameraStall, CameraResume:
			if e.Target < 0 || e.Target >= cameras {
				return fmt.Errorf("fault: event %d: camera target %d out of range [0,%d)", i, e.Target, cameras)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown action %q", i, e.Action)
		}
		if e.Action == LinkDegrade && (e.Factor <= 0 || e.Factor > 1) {
			return fmt.Errorf("fault: event %d: link_degrade factor %v outside (0, 1]", i, e.Factor)
		}
	}
	return nil
}

// Load parses a scenario from JSON. It rejects trailing data after the
// scenario object — the chaos harness feeds scripts from the command line
// and CI, where a concatenated or truncated file must fail loudly, not
// load its first half.
func Load(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: parsing scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("fault: parsing scenario: trailing data after scenario object")
	}
	return &s, nil
}

// Split partitions a scenario into the part the distributed control plane
// must act out as real process failures (server crash/recovery → hollow
// agents killed and restarted, so the controller has to *infer* them from
// missed heartbeats) and the part that stays environmental (camera stalls,
// link degradation — observable state the controller merges from an
// injector as before). Event order within each half is preserved.
func (s *Scenario) Split() (liveness, env *Scenario) {
	liveness = &Scenario{Name: s.Name + "-liveness"}
	env = &Scenario{Name: s.Name + "-env"}
	for _, e := range s.Events {
		switch e.Action {
		case ServerDown, ServerUp:
			liveness.Events = append(liveness.Events, e)
		default:
			env.Events = append(env.Events, e)
		}
	}
	return liveness, env
}

// LoadFile parses a scenario from a JSON file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// GenOptions tunes the deterministic scenario generator.
type GenOptions struct {
	Epochs  int
	Servers int
	Cameras int
	Seed    uint64
	// CrashProb is the per-server per-epoch probability of a crash (default
	// 0.05); StallProb and DegradeProb are the camera-stall and
	// link-degrade analogues (default 0.03 and 0.05).
	CrashProb   float64
	StallProb   float64
	DegradeProb float64
	// MeanOutage is the expected outage length in epochs (default 2).
	MeanOutage int
}

func (o GenOptions) withDefaults() GenOptions {
	if o.CrashProb == 0 {
		o.CrashProb = 0.05
	}
	if o.StallProb == 0 {
		o.StallProb = 0.03
	}
	if o.DegradeProb == 0 {
		o.DegradeProb = 0.05
	}
	if o.MeanOutage <= 0 {
		o.MeanOutage = 2
	}
	return o
}

// Generate builds a seed-driven random scenario: servers crash and recover
// after geometric outages, cameras stall, links degrade to a random
// fraction of nominal. It never takes down the last healthy server, so a
// generated scenario always leaves some capacity. The output depends only
// on the options, never on call order or wall clock.
func Generate(o GenOptions) *Scenario {
	o = o.withDefaults()
	rng := rand.New(rand.NewPCG(o.Seed, 0xFA017))
	sc := &Scenario{Name: fmt.Sprintf("generated-%d", o.Seed)}
	// upAt[j] is the first epoch server j is up again (0 = up now); the
	// camera/link analogues likewise. A component can only fail once its
	// previous outage has ended, so generated events never overlap.
	upAt := make([]int, o.Servers)
	resumeAt := make([]int, o.Cameras)
	restoreAt := make([]int, o.Servers)
	outage := func() int { return 1 + rng.IntN(2*o.MeanOutage-1) }
	downAt := func(epoch int) int {
		n := 0
		for _, u := range upAt {
			if u > epoch {
				n++
			}
		}
		return n
	}
	for epoch := 0; epoch < o.Epochs; epoch++ {
		for j := 0; j < o.Servers; j++ {
			if upAt[j] > epoch || downAt(epoch) >= o.Servers-1 {
				continue
			}
			if rng.Float64() < o.CrashProb {
				sc.Events = append(sc.Events, Event{Epoch: epoch, Action: ServerDown, Target: j})
				up := epoch + outage()
				if up < o.Epochs {
					sc.Events = append(sc.Events, Event{Epoch: up, Action: ServerUp, Target: j})
					upAt[j] = up
				} else {
					upAt[j] = o.Epochs // down for the rest of the run
				}
			}
		}
		for i := 0; i < o.Cameras; i++ {
			if resumeAt[i] <= epoch && rng.Float64() < o.StallProb {
				sc.Events = append(sc.Events, Event{Epoch: epoch, Action: CameraStall, Target: i})
				if up := epoch + outage(); up < o.Epochs {
					sc.Events = append(sc.Events, Event{Epoch: up, Action: CameraResume, Target: i})
					resumeAt[i] = up
				} else {
					resumeAt[i] = o.Epochs
				}
			}
		}
		for j := 0; j < o.Servers; j++ {
			if restoreAt[j] <= epoch && rng.Float64() < o.DegradeProb {
				factor := 0.2 + 0.6*rng.Float64()
				sc.Events = append(sc.Events, Event{Epoch: epoch, Action: LinkDegrade, Target: j, Factor: factor})
				if up := epoch + outage(); up < o.Epochs {
					sc.Events = append(sc.Events, Event{Epoch: up, Action: LinkRestore, Target: j})
					restoreAt[j] = up
				} else {
					restoreAt[j] = o.Epochs
				}
			}
		}
	}
	sortEvents(sc.Events)
	return sc
}

func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Epoch < evs[b].Epoch })
}

// ChurnOp is one scripted stream arrival or departure at epoch granularity.
// Like fault events, churn ops are plain data: the runtime layer decides
// what a named stream's content looks like, so the schedule itself stays a
// pure function of its options.
type ChurnOp struct {
	Epoch int    `json:"epoch"`
	Add   bool   `json:"add"` // false = deregister Name
	Name  string `json:"name"`
}

// ChurnScript is a named deterministic schedule of stream churn.
type ChurnScript struct {
	Name string    `json:"name"`
	Ops  []ChurnOp `json:"ops"`
}

// ChurnOptions tunes GenerateChurn.
type ChurnOptions struct {
	Epochs int
	// Initial is the set of stream names live at epoch 0 — departures may
	// target them; the generator never re-adds a departed name.
	Initial []string
	// Rate is the mean churn events per epoch at the diurnal peak (default
	// 0.5). Double it for a 2×-churn stress schedule.
	Rate float64
	// PeriodEpochs is the diurnal period (default 1440: a 24h day at
	// one-minute epochs). Arrivals dominate through the rising half of the
	// cycle and departures through the falling half, so the live population
	// swells by day and thins by night.
	PeriodEpochs int
	// MinStreams/MaxStreams bound the live population (defaults: 2 and
	// 2×len(Initial), at least 4).
	MinStreams int
	MaxStreams int
	Seed       uint64
}

func (o ChurnOptions) withDefaults() ChurnOptions {
	if o.Rate == 0 {
		o.Rate = 0.5
	}
	if o.PeriodEpochs <= 0 {
		o.PeriodEpochs = 1440
	}
	if o.MinStreams <= 0 {
		o.MinStreams = 2
	}
	if o.MaxStreams <= 0 {
		o.MaxStreams = 2 * len(o.Initial)
		if o.MaxStreams < 4 {
			o.MaxStreams = 4
		}
	}
	return o
}

// GenerateChurn builds a deterministic diurnal churn schedule: the event
// intensity follows a raised sinusoid over PeriodEpochs, and each event is
// an arrival or departure biased by the cycle's phase. Arrivals mint fresh
// "cam-<serial>" names; departures pick uniformly among the live set. The
// population never leaves [MinStreams, MaxStreams], and the output depends
// only on the options — never on call order or wall clock.
func GenerateChurn(o ChurnOptions) *ChurnScript {
	o = o.withDefaults()
	rng := rand.New(rand.NewPCG(o.Seed, 0xC4012))
	sc := &ChurnScript{Name: fmt.Sprintf("churn-%d", o.Seed)}
	live := append([]string(nil), o.Initial...)
	serial := 0
	for epoch := 0; epoch < o.Epochs; epoch++ {
		phase := 2 * math.Pi * float64(epoch) / float64(o.PeriodEpochs)
		intensity := o.Rate * (0.5 + 0.5*math.Sin(phase))
		events := int(intensity)
		if rng.Float64() < intensity-float64(events) {
			events++
		}
		for k := 0; k < events; k++ {
			// Rising half of the day: mostly arrivals; falling half: mostly
			// departures. The population bounds override the bias.
			add := rng.Float64() < 0.5+0.4*math.Cos(phase)
			if len(live) <= o.MinStreams {
				add = true
			} else if len(live) >= o.MaxStreams {
				add = false
			}
			if add {
				serial++
				name := fmt.Sprintf("cam-%04d", serial)
				sc.Ops = append(sc.Ops, ChurnOp{Epoch: epoch, Add: true, Name: name})
				live = append(live, name)
			} else {
				i := rng.IntN(len(live))
				sc.Ops = append(sc.Ops, ChurnOp{Epoch: epoch, Add: false, Name: live[i]})
				live = append(live[:i], live[i+1:]...)
			}
		}
	}
	return sc
}

// OpsAt returns the ops scheduled at the given epoch. Ops are emitted in
// generation order, which is non-decreasing in epoch.
func (sc *ChurnScript) OpsAt(epoch int) []ChurnOp {
	var out []ChurnOp
	for _, op := range sc.Ops {
		if op.Epoch == epoch {
			out = append(out, op)
		}
	}
	return out
}

// State is the injector's view of the cluster at one epoch.
type State struct {
	Down      []bool    // per server
	Stalled   []bool    // per camera
	LinkScale []float64 // per server, 1 = nominal uplink
}

// NumHealthy returns the number of servers currently up.
func (st State) NumHealthy() int {
	n := 0
	for _, d := range st.Down {
		if !d {
			n++
		}
	}
	return n
}

// Healthy returns the per-server liveness mask (true = up), or nil when
// the state is empty (no injector).
func (st State) Healthy() []bool {
	if st.Down == nil {
		return nil
	}
	h := make([]bool, len(st.Down))
	for j, d := range st.Down {
		h[j] = !d
	}
	return h
}

// StalledCameras returns the sorted indices of stalled cameras.
func (st State) StalledCameras() []int {
	var out []int
	for i, s := range st.Stalled {
		if s {
			out = append(out, i)
		}
	}
	return out
}

func (st State) clone() State {
	out := State{}
	if st.Down != nil {
		out.Down = append([]bool(nil), st.Down...)
	}
	if st.Stalled != nil {
		out.Stalled = append([]bool(nil), st.Stalled...)
	}
	if st.LinkScale != nil {
		out.LinkScale = append([]float64(nil), st.LinkScale...)
	}
	return out
}

// Injector applies a scenario's events epoch by epoch and tracks the
// resulting cluster state. All methods are safe on a nil receiver (the
// no-faults configuration), returning empty results.
type Injector struct {
	events []Event // sorted by epoch (stable)
	next   int
	st     State
}

// NewInjector validates the scenario against the system shape and returns
// an injector positioned before epoch 0.
func NewInjector(sc *Scenario, servers, cameras int) (*Injector, error) {
	if err := sc.Validate(servers, cameras); err != nil {
		return nil, err
	}
	events := append([]Event(nil), sc.Events...)
	sortEvents(events)
	in := &Injector{
		events: events,
		st: State{
			Down:      make([]bool, servers),
			Stalled:   make([]bool, cameras),
			LinkScale: make([]float64, servers),
		},
	}
	for j := range in.st.LinkScale {
		in.st.LinkScale[j] = 1
	}
	return in, nil
}

// Advance applies every not-yet-applied event scheduled at or before the
// given epoch and returns those applied. Call it once per epoch with
// non-decreasing epochs. Nil-safe (returns nil).
func (in *Injector) Advance(epoch int) []Event {
	if in == nil {
		return nil
	}
	var applied []Event
	for in.next < len(in.events) && in.events[in.next].Epoch <= epoch {
		e := in.events[in.next]
		in.next++
		in.apply(e)
		applied = append(applied, e)
	}
	return applied
}

func (in *Injector) apply(e Event) {
	switch e.Action {
	case ServerDown:
		in.st.Down[e.Target] = true
	case ServerUp:
		in.st.Down[e.Target] = false
	case CameraStall:
		in.st.Stalled[e.Target] = true
	case CameraResume:
		in.st.Stalled[e.Target] = false
	case LinkDegrade:
		in.st.LinkScale[e.Target] = e.Factor
	case LinkRestore:
		in.st.LinkScale[e.Target] = 1
	}
}

// State returns a copy of the current cluster state. Nil-safe (returns the
// zero State, which reads as fully healthy).
func (in *Injector) State() State {
	if in == nil {
		return State{}
	}
	return in.st.clone()
}
