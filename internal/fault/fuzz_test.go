package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzScenarioJSON hammers the scenario parser with arbitrary bytes: the
// chaos harness feeds scripts from the command line and CI, so Load must
// reject malformed input with an error — never panic, never silently
// accept garbage. For inputs that do parse and validate, the fuzzer closes
// the round-trip loop: Save∘Load must be the identity, and re-parsing the
// saved form must validate against the same shape.
func FuzzScenarioJSON(f *testing.F) {
	f.Add([]byte(`{"name":"x","events":[{"epoch":1,"action":"server_down","target":0}]}`))
	f.Add([]byte(`{"name":"deg","events":[{"epoch":0,"action":"link_degrade","target":1,"factor":0.5}]}`))
	f.Add([]byte(`{"name":"empty","events":[]}`))
	f.Add([]byte(`{"name":"trailing"}{"name":"second"}`))
	f.Add([]byte(`{"name":"bad","events":[{"epoch":-1,"action":"server_down","target":0}]}`))
	f.Add([]byte(`{"events":[{"action":"nonsense","target":99}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — the property is "no panic"
		}
		if sc == nil {
			t.Fatal("Load returned nil scenario with nil error")
		}
		// Only shape-valid scenarios continue to the round-trip: Validate
		// itself must not panic on whatever parsed.
		if sc.Validate(4, 4) != nil {
			return
		}
		var buf bytes.Buffer
		if err := sc.Save(&buf); err != nil {
			t.Fatalf("Save of parsed scenario: %v", err)
		}
		back, err := Load(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-Load of saved scenario: %v\nsaved: %s", err, buf.String())
		}
		if back.Name != sc.Name || !reflect.DeepEqual(back.Events, sc.Events) {
			t.Fatalf("round-trip drift:\n got %+v\nwant %+v", back, sc)
		}
		if err := back.Validate(4, 4); err != nil {
			t.Fatalf("round-tripped scenario no longer validates: %v", err)
		}
	})
}
