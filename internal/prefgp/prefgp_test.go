package prefgp

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/stats"
)

// trueUtility is a hidden ground-truth utility used by tests: a weighted
// negative L1 distance to the utopia point (like the paper's Eq. 13).
func trueUtility(y []float64) float64 {
	w := []float64{1, 2, 0.5}
	var s float64
	for i, v := range y {
		s -= w[i] * math.Abs(v-1)
	}
	return s
}

func buildModel(t testing.TB, nPairs int, seed uint64) (*Model, [][]float64) {
	t.Helper()
	rng := stats.NewRNG(seed)
	m := NewModel(kernel.NewRBF(3), 0.05)
	var pts [][]float64
	for i := 0; i < 2*nPairs; i++ {
		y := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		pts = append(pts, y)
		m.AddPoint(y)
	}
	for v := 0; v < nPairs; v++ {
		a, b := 2*v, 2*v+1
		if trueUtility(pts[a]) >= trueUtility(pts[b]) {
			if err := m.AddComparison(a, b); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := m.AddComparison(b, a); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Fit(); err != nil {
		t.Fatal(err)
	}
	return m, pts
}

func TestAddPointDedup(t *testing.T) {
	m := NewModel(kernel.NewRBF(2), 0.1)
	i := m.AddPoint([]float64{0.5, 0.5})
	j := m.AddPoint([]float64{0.5, 0.5})
	k := m.AddPoint([]float64{0.5, 0.6})
	if i != j || k == i {
		t.Fatalf("dedup wrong: %d %d %d", i, j, k)
	}
	if m.NumPoints() != 2 {
		t.Fatalf("NumPoints = %d", m.NumPoints())
	}
}

func TestAddComparisonValidation(t *testing.T) {
	m := NewModel(kernel.NewRBF(1), 0.1)
	a := m.AddPoint([]float64{0})
	if err := m.AddComparison(a, a); err == nil {
		t.Error("self-comparison should fail")
	}
	if err := m.AddComparison(a, 5); err == nil {
		t.Error("out-of-range should fail")
	}
}

func TestFitRequiresData(t *testing.T) {
	m := NewModel(kernel.NewRBF(1), 0.1)
	if err := m.Fit(); err == nil {
		t.Error("empty fit should fail")
	}
	m.AddPoint([]float64{0})
	if err := m.Fit(); err == nil {
		t.Error("fit without comparisons should fail")
	}
}

func TestPredictUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(kernel.NewRBF(1), 0.1).PredictOne([]float64{0})
}

func TestLatentOrderingRespectsComparisons(t *testing.T) {
	// A transitive chain a ≻ b ≻ c must produce decreasing latent means.
	m := NewModel(kernel.NewRBF(1), 0.1)
	a := m.AddPoint([]float64{0.9})
	b := m.AddPoint([]float64{0.5})
	c := m.AddPoint([]float64{0.1})
	for i := 0; i < 3; i++ { // repeated comparisons sharpen the posterior
		_ = m.AddComparison(a, b)
		_ = m.AddComparison(b, c)
	}
	if err := m.Fit(); err != nil {
		t.Fatal(err)
	}
	ua, _ := m.PredictOne([]float64{0.9})
	ub, _ := m.PredictOne([]float64{0.5})
	uc, _ := m.PredictOne([]float64{0.1})
	if !(ua > ub && ub > uc) {
		t.Fatalf("latent ordering wrong: %v %v %v", ua, ub, uc)
	}
}

func TestProbPreferConsistency(t *testing.T) {
	m, _ := buildModel(t, 20, 1)
	y1 := []float64{0.9, 0.9, 0.9} // near utopia
	y2 := []float64{0.1, 0.1, 0.1}
	p := m.ProbPrefer(y1, y2)
	if p < 0.7 {
		t.Fatalf("ProbPrefer(best, worst) = %v, want > 0.7", p)
	}
	// Complementarity.
	if q := m.ProbPrefer(y2, y1); math.Abs(p+q-1) > 1e-9 {
		t.Fatalf("P(a≻b)+P(b≻a) = %v", p+q)
	}
}

func TestPairwiseAccuracyImprovesWithData(t *testing.T) {
	acc := func(nPairs int) float64 {
		m, _ := buildModel(t, nPairs, 7)
		rng := stats.NewRNG(99)
		correct, total := 0, 0
		for i := 0; i < 300; i++ {
			y1 := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			y2 := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			mu1, _ := m.PredictOne(y1)
			mu2, _ := m.PredictOne(y2)
			if (mu1 > mu2) == (trueUtility(y1) > trueUtility(y2)) {
				correct++
			}
			total++
		}
		return float64(correct) / float64(total)
	}
	small := acc(3)
	large := acc(30)
	if large < 0.85 {
		t.Fatalf("accuracy with 30 pairs = %v, want > 0.85", large)
	}
	if large < small-0.05 {
		t.Fatalf("accuracy did not improve: 3 pairs %v, 30 pairs %v", small, large)
	}
}

func TestPosteriorVarianceShrinksNearData(t *testing.T) {
	m, pts := buildModel(t, 15, 3)
	_, vNear := m.PredictOne(pts[0])
	_, vFar := m.PredictOne([]float64{-3, -3, -3})
	if vNear >= vFar {
		t.Fatalf("variance near data %v >= far %v", vNear, vFar)
	}
}

func TestSampleShapesAndSpread(t *testing.T) {
	m, _ := buildModel(t, 10, 5)
	rng := stats.NewRNG(11)
	qs := [][]float64{{0.2, 0.2, 0.2}, {0.8, 0.8, 0.8}}
	samples := m.Sample(qs, 500, rng)
	if len(samples) != 500 || len(samples[0]) != 2 {
		t.Fatalf("sample shape %dx%d", len(samples), len(samples[0]))
	}
	mu, cov := m.Predict(qs)
	col := make([]float64, len(samples))
	for i, s := range samples {
		col[i] = s[0]
	}
	if math.Abs(stats.Mean(col)-mu[0]) > 0.15 {
		t.Fatalf("sample mean %v vs posterior %v", stats.Mean(col), mu[0])
	}
	if cov.At(0, 0) > 1e-9 && stats.Variance(col) < cov.At(0, 0)/10 {
		t.Fatalf("sample variance %v vs posterior %v", stats.Variance(col), cov.At(0, 0))
	}
}

func TestPredictBatchMatchesPredictOne(t *testing.T) {
	m, _ := buildModel(t, 12, 61)
	qs := [][]float64{{0.2, 0.4, 0.6}, {0.9, 0.1, 0.5}, {0.5, 0.5, 0.5}}
	mu, cov := m.Predict(qs)
	for i, q := range qs {
		m1, v1 := m.PredictOne(q)
		if math.Abs(mu[i]-m1) > 1e-9 {
			t.Fatalf("batch mean[%d] = %v, single = %v", i, mu[i], m1)
		}
		vd := cov.At(i, i)
		if vd < 0 {
			vd = 0
		}
		if math.Abs(vd-v1) > 1e-9 {
			t.Fatalf("batch var[%d] = %v, single = %v", i, vd, v1)
		}
	}
	if d := cov.SymmetricMaxAbsOffDiag(); d > 1e-9 {
		t.Fatalf("posterior covariance asymmetry %v", d)
	}
}

func TestLogEvidenceFiniteAndDataSensitive(t *testing.T) {
	small, _ := buildModel(t, 4, 31)
	large, _ := buildModel(t, 20, 31)
	es, el := small.LogEvidence(), large.LogEvidence()
	if math.IsNaN(es) || math.IsInf(es, 0) || math.IsNaN(el) || math.IsInf(el, 0) {
		t.Fatalf("evidence not finite: %v %v", es, el)
	}
	// More comparisons = more likelihood terms = lower total evidence.
	if el >= es {
		t.Fatalf("evidence did not decrease with more data: %v -> %v", es, el)
	}
}

func TestLogEvidenceUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(kernel.NewRBF(2), 0.1).LogEvidence()
}

func TestOptimizeHyperparamsImprovesEvidence(t *testing.T) {
	m, _ := buildModel(t, 15, 41)
	before := m.LogEvidence()
	if err := m.OptimizeHyperparams(2, stats.NewRNG(5)); err != nil {
		t.Fatal(err)
	}
	after := m.LogEvidence()
	if after < before-1e-6 {
		t.Fatalf("evidence degraded: %v -> %v", before, after)
	}
	if err := NewModel(kernel.NewRBF(3), 0.1).OptimizeHyperparams(1, stats.NewRNG(1)); err == nil {
		t.Fatal("optimize before Fit should fail")
	}
}

func BenchmarkPrefFit20Pairs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buildModel(b, 20, 42)
	}
}
