// Package prefgp implements Gaussian-process preference learning following
// Chu & Ghahramani (ICML 2005), the model PaMO uses to surrogate the system
// pricing-preference function g: R^k → R from pairwise comparisons of
// outcome vectors (Section 4.2 of the paper).
//
// The latent utility g over the observed outcome vectors has a GP prior;
// each comparison y⁽¹⁾ ≻ y⁽²⁾ contributes a probit likelihood
// Φ((g(y⁽¹⁾)−g(y⁽²⁾))/(√2·λ)). The posterior is approximated with a Laplace
// approximation found by damped Newton iterations.
package prefgp

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/stats"
)

// Comparison records that the decision maker prefers point Winner to point
// Loser (indices into the model's point list).
type Comparison struct {
	Winner, Loser int
}

// Model is a preference GP over outcome vectors.
type Model struct {
	Kern   kernel.Kernel
	Lambda float64 // probit noise scale λ (paper's hyperparameter)

	points [][]float64
	comps  []Comparison

	// Laplace posterior state (valid after Fit).
	ghat     mat.Vector  // MAP latent utilities at points
	kinv     *mat.Matrix // K⁻¹ over points
	ainv     *mat.Matrix // (K⁻¹+W)⁻¹ — posterior covariance of g at points
	evidence float64     // Laplace log marginal likelihood of the comparisons

	// fallbacks, when set, receives every Sample MVN fallback of this
	// model so an owner can attribute degraded sampling to itself (see
	// gp.SampleMVNCounted).
	fallbacks *atomic.Uint64
}

// SetFallbackCounter injects a per-owner counter incremented whenever
// Sample degrades to the deterministic posterior mean.
func (m *Model) SetFallbackCounter(c *atomic.Uint64) { m.fallbacks = c }

// NewModel returns an empty preference model. lambda defaults to 0.1 when
// non-positive; outcome vectors are expected to be normalized to [0,1]^k so
// the default unit kernel lengthscales are sensible.
func NewModel(k kernel.Kernel, lambda float64) *Model {
	if lambda <= 0 {
		lambda = 0.1
	}
	return &Model{Kern: k, Lambda: lambda}
}

// AddPoint registers an outcome vector and returns its index. An exact
// duplicate of an existing point returns the existing index.
func (m *Model) AddPoint(y []float64) int {
	for i, p := range m.points {
		if equal(p, y) {
			return i
		}
	}
	m.points = append(m.points, append([]float64(nil), y...))
	return len(m.points) - 1
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AddComparison records winner ≻ loser. Indices must come from AddPoint.
func (m *Model) AddComparison(winner, loser int) error {
	n := len(m.points)
	if winner < 0 || winner >= n || loser < 0 || loser >= n {
		return fmt.Errorf("prefgp: comparison (%d, %d) out of range [0,%d)", winner, loser, n)
	}
	if winner == loser {
		return errors.New("prefgp: comparison of a point with itself")
	}
	m.comps = append(m.comps, Comparison{Winner: winner, Loser: loser})
	return nil
}

// NumPoints returns the number of registered outcome vectors.
func (m *Model) NumPoints() int { return len(m.points) }

// NumComparisons returns the number of recorded comparisons.
func (m *Model) NumComparisons() int { return len(m.comps) }

// Points returns the registered outcome vectors (not a copy).
func (m *Model) Points() [][]float64 { return m.points }

// Fit computes the Laplace approximation of the posterior over latent
// utilities. It must be called after adding points/comparisons and before
// prediction.
func (m *Model) Fit() error {
	n := len(m.points)
	if n == 0 {
		return errors.New("prefgp: no points")
	}
	if len(m.comps) == 0 {
		return errors.New("prefgp: no comparisons")
	}
	// Prior covariance and its inverse.
	k := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := m.Kern.Eval(m.points[i], m.points[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	ck, err := mat.CholJitter(k)
	if err != nil {
		return fmt.Errorf("prefgp: prior covariance: %w", err)
	}
	m.kinv = ck.Inverse()

	// Damped Newton iterations for the MAP latent utilities.
	g := mat.NewVector(n)
	c := 1 / (math.Sqrt2 * m.Lambda)
	psi := func(gv mat.Vector) float64 {
		// ψ(g) = −Σ log Φ(z_v) + ½ gᵀK⁻¹g
		s := 0.5 * gv.Dot(m.kinv.MulVec(gv))
		for _, cp := range m.comps {
			z := c * (gv[cp.Winner] - gv[cp.Loser])
			s -= stats.NormLogCDF(z)
		}
		return s
	}
	cur := psi(g)
	for iter := 0; iter < 100; iter++ {
		grad, w := m.nllGradHess(g, c)
		// ∇ψ = ∇nll + K⁻¹g ; Hψ = W + K⁻¹.
		gradPsi := grad.Add(m.kinv.MulVec(g))
		h := w.Add(m.kinv) // w is freshly allocated each call; safe to mutate
		ch, err := mat.CholJitter(h)
		if err != nil {
			return fmt.Errorf("prefgp: Newton Hessian: %w", err)
		}
		step := ch.SolveVec(gradPsi)
		// Damped line search on ψ.
		t := 1.0
		var next mat.Vector
		improved := false
		for ls := 0; ls < 30; ls++ {
			next = g.Clone().AddScaled(-t, step)
			if v := psi(next); v < cur {
				cur = v
				improved = true
				break
			}
			t /= 2
		}
		if !improved {
			break
		}
		delta := 0.0
		for i := range g {
			delta = math.Max(delta, math.Abs(next[i]-g[i]))
		}
		g = next
		if delta < 1e-8 {
			break
		}
	}
	m.ghat = g

	// Posterior covariance (K⁻¹+W)⁻¹ at the MAP point.
	_, w := m.nllGradHess(g, c)
	a := w.Add(m.kinv.Clone())
	ca, err := mat.CholJitter(a)
	if err != nil {
		return fmt.Errorf("prefgp: Laplace covariance: %w", err)
	}
	m.ainv = ca.Inverse()
	m.ainv.Symmetrize()

	// Laplace evidence: log q(P|θ) = −ψ(ĝ) − ½ log det(I + K·W)
	// with det(I + K·W) = det(K)·det(K⁻¹ + W).
	m.evidence = -cur - 0.5*(ck.LogDet()+ca.LogDet())
	return nil
}

// LogEvidence returns the Laplace approximation of the log marginal
// likelihood of the comparison data under the current hyperparameters.
// Valid after Fit.
func (m *Model) LogEvidence() float64 {
	if m.ainv == nil {
		panic(ErrNotFitted)
	}
	return m.evidence
}

// nllGradHess returns the gradient and Hessian (W) of the negative log
// likelihood at latent utilities g, with probit scale c = 1/(√2λ).
func (m *Model) nllGradHess(g mat.Vector, c float64) (mat.Vector, *mat.Matrix) {
	n := len(g)
	grad := mat.NewVector(n)
	w := mat.NewMatrix(n, n)
	for _, cp := range m.comps {
		z := c * (g[cp.Winner] - g[cp.Loser])
		rho := stats.InvMills(z)     // φ(z)/Φ(z)
		curv := rho * (rho + z)      // -d²logΦ/dz² ≥ 0
		grad[cp.Winner] -= c * rho   // d(−logΦ)/dg_w
		grad[cp.Loser] += c * rho
		cc := c * c * curv
		w.Data[cp.Winner*n+cp.Winner] += cc
		w.Data[cp.Loser*n+cp.Loser] += cc
		w.Data[cp.Winner*n+cp.Loser] -= cc
		w.Data[cp.Loser*n+cp.Winner] -= cc
	}
	return grad, w
}

// ErrNotFitted is returned by predictions before Fit.
var ErrNotFitted = errors.New("prefgp: model is not fitted")

// Predict returns the joint posterior mean and covariance of the latent
// utility at the query outcome vectors.
//
//	μ* = K*ᵀ K⁻¹ ĝ
//	Σ* = K** − K*ᵀ(K⁻¹ − K⁻¹ A⁻¹ K⁻¹)K*,  A = K⁻¹ + W.
func (m *Model) Predict(ys [][]float64) (mat.Vector, *mat.Matrix) {
	if m.ainv == nil {
		panic(ErrNotFitted)
	}
	n, q := len(m.points), len(ys)
	ks := mat.NewMatrix(n, q)
	for i := 0; i < n; i++ {
		for j := 0; j < q; j++ {
			ks.Set(i, j, m.Kern.Eval(m.points[i], ys[j]))
		}
	}
	kinvKs := m.kinv.Mul(ks) // n×q
	kinvGhat := m.kinv.MulVec(m.ghat)
	mu := mat.NewVector(q)
	for j := 0; j < q; j++ {
		mu[j] = colDot(ks, j, kinvGhat)
	}
	// Σ* = K** − Ksᵀ·K⁻¹·Ks + (K⁻¹Ks)ᵀ·A⁻¹·(K⁻¹Ks)
	cov := mat.NewMatrix(q, q)
	aKinvKs := m.ainv.Mul(kinvKs) // n×q
	for a := 0; a < q; a++ {
		for b := a; b < q; b++ {
			v := m.Kern.Eval(ys[a], ys[b])
			for i := 0; i < n; i++ {
				v -= ks.At(i, a) * kinvKs.At(i, b)
				v += kinvKs.At(i, a) * aKinvKs.At(i, b)
			}
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return mu, cov
}

func colDot(m *mat.Matrix, j int, v mat.Vector) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, j) * v[i]
	}
	return s
}

// PredictOne returns the posterior mean and variance of the utility at y.
func (m *Model) PredictOne(y []float64) (mu, variance float64) {
	mv, cov := m.Predict([][]float64{y})
	v := cov.At(0, 0)
	if v < 0 {
		v = 0
	}
	return mv[0], v
}

// Sample draws nSamples joint samples of the latent utility at ys.
func (m *Model) Sample(ys [][]float64, nSamples int, rng *rand.Rand) [][]float64 {
	mu, cov := m.Predict(ys)
	return gp.SampleMVNCounted(mu, cov, nSamples, rng, m.fallbacks)
}

// ProbPrefer returns the posterior predictive probability that y1 ≻ y2,
// integrating the probit likelihood over the joint posterior of
// (g(y1), g(y2)).
func (m *Model) ProbPrefer(y1, y2 []float64) float64 {
	mu, cov := m.Predict([][]float64{y1, y2})
	dmu := mu[0] - mu[1]
	dvar := cov.At(0, 0) + cov.At(1, 1) - 2*cov.At(0, 1)
	if dvar < 0 {
		dvar = 0
	}
	den := math.Sqrt(2*m.Lambda*m.Lambda + dvar)
	return stats.NormCDF(dmu / den)
}
