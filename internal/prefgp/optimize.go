package prefgp

import (
	"errors"
	"math"
	"math/rand/v2"

	"repro/internal/optim"
)

// OptimizeHyperparams maximizes the Laplace evidence over the kernel's
// log-parameters and log λ using multi-start Nelder–Mead, refitting the
// model at the optimum. The model must already be fitted.
func (m *Model) OptimizeHyperparams(nStarts int, rng *rand.Rand) error {
	if m.ainv == nil {
		return errors.New("prefgp: optimize before Fit")
	}
	kp := m.Kern.LogParams()
	x0 := append(append([]float64(nil), kp...), math.Log(m.Lambda))

	obj := func(p []float64) float64 {
		for _, v := range p {
			if v < -8 || v > 6 {
				return math.Inf(1)
			}
		}
		m.Kern.SetLogParams(p[:len(p)-1])
		m.Lambda = math.Exp(p[len(p)-1])
		if err := m.Fit(); err != nil {
			return math.Inf(1)
		}
		return -m.evidence
	}

	res := optim.MultiStartNelderMead(obj, x0, nStarts, 1.0, rng,
		optim.NelderMeadOptions{MaxIters: 120 * len(x0), TolF: 1e-6, TolX: 1e-3})
	best := res.X
	if math.IsInf(res.F, 1) {
		best = x0
	}
	m.Kern.SetLogParams(best[:len(best)-1])
	m.Lambda = math.Exp(best[len(best)-1])
	return m.Fit()
}
