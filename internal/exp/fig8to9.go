package exp

import (
	"io"

	"repro/internal/objective"
	"repro/internal/pref"
	"repro/internal/stats"
	"repro/internal/videosim"
)

// Fig8Config parameterizes the outcome-model accuracy experiment.
type Fig8Config struct {
	TrainSizes []int // paper: 200..600 step 100
	TestSize   int   // paper: 20
	Reps       int   // paper: 10
	Seed       uint64
	Noise      float64 // profiling noise (default 2%)
}

func (c Fig8Config) withDefaults() Fig8Config {
	if len(c.TrainSizes) == 0 {
		c.TrainSizes = []int{200, 300, 400, 500, 600}
	}
	if c.TestSize == 0 {
		c.TestSize = 20
	}
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.Noise == 0 {
		c.Noise = 0.02
	}
	return c
}

// Fig8Metrics matches the paper's five outcome models: latency (per-frame
// processing), accuracy, bandwidth, computation, energy.
var Fig8Metrics = []string{"latency", "accuracy", "bandwidth", "computation", "energy"}

// Fig8Result is mean R² per metric per training size.
type Fig8Result struct {
	TrainSize int
	R2        [5]float64 // indexed as Fig8Metrics
}

// Fig8 reproduces Figure 8: the coefficient of determination of the GP
// outcome models on held-out configurations as the training set grows.
// Training configurations are random grid points measured with profiling
// noise and content drift; test outcomes are the noise-free ground truth.
func Fig8(w io.Writer, cfg Fig8Config) []Fig8Result {
	cfg = cfg.withDefaults()
	t := Table{
		Title:  "Figure 8 — outcome model R² vs training set size",
		Header: []string{"train_size", "latency", "accuracy", "bandwidth", "computation", "energy"},
	}
	var results []Fig8Result
	for _, size := range cfg.TrainSizes {
		var acc [5]float64
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(size*31+rep)
			r2 := fig8Rep(size, cfg.TestSize, cfg.Noise, seed)
			for k := range acc {
				acc[k] += r2[k]
			}
		}
		var row Fig8Result
		row.TrainSize = size
		for k := range acc {
			row.R2[k] = acc[k] / float64(cfg.Reps)
		}
		results = append(results, row)
		t.Add(size, row.R2[0], row.R2[1], row.R2[2], row.R2[3], row.R2[4])
	}
	t.Notes = append(t.Notes, "R² on 20 random held-out configurations, averaged over repetitions; targets are ground truth")
	t.Fprint(w)
	return results
}

func fig8Rep(trainSize, testSize int, noise float64, seed uint64) [5]float64 {
	rng := stats.NewRNG(seed)
	clip := videosim.StandardClips(1, seed)[0]
	prof := videosim.NewProfiler(noise, rng)

	gps := newTrainedClipGPs(clip, prof, trainSize, rng)

	randCfg := func() videosim.Config {
		return videosim.Config{
			Resolution: videosim.Resolutions[rng.IntN(len(videosim.Resolutions))],
			FPS:        videosim.FrameRates[rng.IntN(len(videosim.FrameRates))],
		}
	}
	obs := make([][]float64, 5)
	preds := make([][]float64, 5)
	for i := 0; i < testSize; i++ {
		cfg := randCfg()
		truth := []float64{
			clip.ProcTimeOf(cfg),
			clip.Accuracy(cfg),
			clip.Bandwidth(cfg),
			clip.Compute(cfg),
			clip.Power(cfg),
		}
		pred := gps.predict(cfg)
		for k := 0; k < 5; k++ {
			obs[k] = append(obs[k], truth[k])
			preds[k] = append(preds[k], pred[k])
		}
	}
	var out [5]float64
	for k := 0; k < 5; k++ {
		out[k] = stats.R2(obs[k], preds[k])
	}
	return out
}

// Fig9Config parameterizes the preference-model accuracy experiment.
type Fig9Config struct {
	Pairs    []int // paper: 3, 6, 9, 18, 27
	TestSize int   // paper: 500
	Reps     int   // paper: 10
	PoolSize int   // candidate outcome vectors available for comparison
	Seed     uint64
}

func (c Fig9Config) withDefaults() Fig9Config {
	if len(c.Pairs) == 0 {
		c.Pairs = []int{3, 6, 9, 18, 27}
	}
	if c.TestSize == 0 {
		c.TestSize = 500
	}
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.PoolSize == 0 {
		c.PoolSize = 30
	}
	return c
}

// Fig9Result is the mean pairwise accuracy for one comparison budget.
type Fig9Result struct {
	Pairs    int
	Accuracy float64
}

// Fig9 reproduces Figure 9: pairwise prediction accuracy of the learned
// preference model versus the number of training comparison pairs.
func Fig9(w io.Writer, cfg Fig9Config) []Fig9Result {
	cfg = cfg.withDefaults()
	t := Table{
		Title:  "Figure 9 — preference model accuracy vs comparison pairs",
		Header: []string{"pairs", "accuracy"},
	}
	truth := objective.Preference{W: objective.Vector{1, 2, 0.5, 1.5, 1}}
	var results []Fig9Result
	for _, nPairs := range cfg.Pairs {
		var acc float64
		poolSize := cfg.PoolSize
		if poolSize < 2*nPairs+6 {
			// Larger budgets need a deeper pool or EUBO runs out of
			// informative pairs.
			poolSize = 2*nPairs + 6
		}
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := stats.NewRNG(cfg.Seed + uint64(nPairs*101+rep))
			pool := make([]objective.Vector, poolSize)
			for i := range pool {
				for k := range pool[i] {
					pool[i][k] = rng.Float64()
				}
			}
			dm := &pref.Oracle{Pref: truth}
			l := pref.NewLearner(dm, true, rng)
			if err := l.Learn(pool, nPairs); err != nil {
				continue
			}
			acc += pref.PairwiseAccuracy(l.Model, truth, cfg.TestSize, stats.NewRNG(cfg.Seed+uint64(rep)+7777))
		}
		r := Fig9Result{Pairs: nPairs, Accuracy: acc / float64(cfg.Reps)}
		results = append(results, r)
		t.Add(nPairs, r.Accuracy)
	}
	t.Notes = append(t.Notes, "accuracy: agreement with the true Eq. 13 ranking on random outcome pairs")
	t.Fprint(w)
	return results
}
