package exp

import "testing"

// TestChurnScenario runs the 24h diurnal churn day end to end and gates the
// properties the churn work exists for: the strict checker stays silent,
// most churn epochs avoid a full resolve, the periodic refreshes actually
// exercise the model bank, and the run is deterministic.
func TestChurnScenario(t *testing.T) {
	rep, err := Churn(ChurnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChurnEpochs == 0 || rep.ChurnOps == 0 {
		t.Fatalf("schedule produced no churn: %+v", rep)
	}
	if rep.FastEpochs+rep.ResolveEpochs != rep.ChurnEpochs {
		t.Fatalf("fast %d + resolve %d != churn epochs %d",
			rep.FastEpochs, rep.ResolveEpochs, rep.ChurnEpochs)
	}
	// The acceptance gate: at least 70% of churn epochs absorbed by the
	// admit/evict fast path.
	if rep.AdmitHitRate < 0.7 {
		t.Errorf("admit hit rate %.3f below 0.7: %+v", rep.AdmitHitRate, rep)
	}
	// The periodic configuration refreshes must re-run the optimizer and
	// seed arrivals from the bank instead of profiling everything cold.
	if rep.FullReplans < 2 {
		t.Errorf("full replans = %d, want >= 2 (refresh cadence broken)", rep.FullReplans)
	}
	if rep.WarmStarts == 0 {
		t.Errorf("no warm starts across refreshes: %+v", rep)
	}
	if rep.IncrementalReplans == 0 {
		t.Errorf("no incremental replans: %+v", rep)
	}
	if rep.DegradedEpochs != 0 {
		t.Errorf("degraded epochs = %d, want 0", rep.DegradedEpochs)
	}

	again, err := Churn(ChurnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if again != rep {
		t.Errorf("churn scenario not deterministic:\n first %+v\nsecond %+v", rep, again)
	}
}
