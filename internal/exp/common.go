package exp

import (
	"context"
	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/stats"
	"repro/internal/videosim"
)

// NewSystem builds the experiment system: m MOT16-like clips and n edge
// servers whose uplinks are drawn from the paper's bandwidth set
// {5, 10, 15, 20, 25, 30} Mbps.
func NewSystem(m, n int, seed uint64) *objective.System {
	rng := stats.NewRNG(seed ^ 0x5E5)
	bws := []float64{5e6, 10e6, 15e6, 20e6, 25e6, 30e6}
	servers := make([]cluster.Server, n)
	for j := range servers {
		servers[j] = cluster.Server{Name: "edge", Uplink: bws[rng.IntN(len(bws))]}
	}
	return &objective.System{Clips: videosim.StandardClips(m, seed), Servers: servers}
}

// MethodResult is one scheduler's outcome on an instance (or the average
// over repetitions, in which case NormStd carries the run-to-run spread).
type MethodResult struct {
	Name    string
	Outcome objective.Vector // measured (DES latency)
	Benefit float64          // true benefit U (Eq. 13)
	Norm    float64          // normalized against PaMO+ (footnote 2)
	NormStd float64          // std of Norm across repetitions (0 for single runs)
	Ratio   [objective.K]float64
	Err     error
}

// MethodsConfig controls a four-method comparison run.
type MethodsConfig struct {
	Truth     objective.Preference
	Seed      uint64
	PaMOOpt   pamo.Options // Seed/TruePref filled in per run
	DMNoise   float64
	SkipPaMO  bool // only run the baselines and PaMO+ (weight sweeps)
}

// withPlusBudget scales a PaMO option set up for the PaMO+ reference run.
func withPlusBudget(o pamo.Options) pamo.Options {
	scale := func(v int, d int) int {
		if v == 0 {
			return d
		}
		return v + v/2
	}
	o.CandPool = scale(o.CandPool, 30)
	o.MaxIter = scale(o.MaxIter, 18)
	o.Batch = scale(o.Batch, 6)
	return o
}

// RunMethods runs JCAB, FACT, PaMO and PaMO+ on the system and scores all
// of them with the hidden true preference.
func RunMethods(sys *objective.System, cfg MethodsConfig) []MethodResult {
	norm := objective.NewNormalizer(sys)
	score := func(name string, out objective.Vector, err error) MethodResult {
		if err != nil {
			return MethodResult{Name: name, Err: err}
		}
		nv := norm.Normalize(out)
		return MethodResult{
			Name:    name,
			Outcome: out,
			Benefit: cfg.Truth.Benefit(nv),
			Ratio:   cfg.Truth.BenefitRatio(nv),
		}
	}

	var results []MethodResult

	jd, jerr := baselines.JCAB(context.Background(), sys, baselines.JCABOptions{
		WAcc: cfg.Truth.W[objective.Accuracy],
		WEng: cfg.Truth.W[objective.Energy],
		Seed: cfg.Seed,
	})
	var jout objective.Vector
	if jerr == nil {
		jout = eva.Evaluate(sys, jd)
	}
	results = append(results, score("JCAB", jout, jerr))

	fd, ferr := baselines.FACT(context.Background(), sys, baselines.FACTOptions{
		WLat: cfg.Truth.W[objective.Latency],
		WAcc: cfg.Truth.W[objective.Accuracy],
		Seed: cfg.Seed,
	})
	var fout objective.Vector
	if ferr == nil {
		fout = eva.Evaluate(sys, fd)
	}
	results = append(results, score("FACT", fout, ferr))

	if !cfg.SkipPaMO {
		dm := &pref.Oracle{Pref: cfg.Truth, Noise: cfg.DMNoise, Rng: stats.NewRNG(cfg.Seed + 0xD1)}
		po := cfg.PaMOOpt
		po.Seed = cfg.Seed
		po.UseEUBO = true
		res, err := pamo.New(sys, dm, po).Run()
		var out objective.Vector
		if err == nil {
			out = res.Best.Raw
		}
		results = append(results, score("PaMO", out, err))
	}

	// PaMO+ is the normalization reference (the best achievable under the
	// true preference), so give it a larger search budget than PaMO.
	pp := withPlusBudget(cfg.PaMOOpt)
	pp.Seed = cfg.Seed
	pp.UseTruePref = true
	pp.TruePref = cfg.Truth
	resPlus, errPlus := pamo.New(sys, nil, pp).Run()
	var outPlus objective.Vector
	if errPlus == nil {
		outPlus = resPlus.Best.Raw
	}
	results = append(results, score("PaMO+", outPlus, errPlus))

	// Normalize against PaMO+ per the paper's footnote.
	maxU := results[len(results)-1].Benefit
	for i := range results {
		if results[i].Err == nil {
			results[i].Norm = objective.NormalizeBenefit(results[i].Benefit, maxU, cfg.Truth)
		}
	}
	return results
}

// averageRuns repeats RunMethods reps times with distinct seeds and
// averages the normalized benefits (the paper averages three repetitions);
// NormStd records the run-to-run spread.
func averageRuns(sys *objective.System, cfg MethodsConfig, reps int) []MethodResult {
	var acc []MethodResult
	norms := map[int][]float64{}
	for r := 0; r < reps; r++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(r)*1000
		res := RunMethods(sys, c)
		for i := range res {
			norms[i] = append(norms[i], res[i].Norm)
		}
		if acc == nil {
			acc = res
			continue
		}
		for i := range res {
			acc[i].Benefit += res[i].Benefit
			acc[i].Norm += res[i].Norm
			for k := range acc[i].Ratio {
				acc[i].Ratio[k] += res[i].Ratio[k]
			}
		}
	}
	for i := range acc {
		acc[i].Benefit /= float64(reps)
		acc[i].Norm /= float64(reps)
		acc[i].NormStd = stats.Std(norms[i])
		for k := range acc[i].Ratio {
			acc[i].Ratio[k] /= float64(reps)
		}
	}
	return acc
}
