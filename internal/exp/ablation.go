package exp

import (
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/sched"
	"repro/internal/stats"
)

// AblationAcqConfig parameterizes the acquisition-function ablation
// (the paper's PaMO_{qUCB/qSR/qEI} variants).
type AblationAcqConfig struct {
	Videos, Servers int
	Reps            int
	Noise           float64 // profiling noise (0 = default 2%); the paper's anti-noise claim shows at high values
	Seed            uint64
	PaMOOpt         pamo.Options
}

// AblationAcqRow is one acquisition variant's average result.
type AblationAcqRow struct {
	Acq     pamo.Acquisition
	Benefit float64 // mean true benefit
	Iters   float64 // mean iterations to termination
}

// AblationAcq compares qNEI against qEI/qUCB/qSR on identical instances.
func AblationAcq(w io.Writer, cfg AblationAcqConfig) []AblationAcqRow {
	if cfg.Videos == 0 {
		cfg.Videos = 8
	}
	if cfg.Servers == 0 {
		cfg.Servers = 5
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	truth := objective.UniformPreference()
	title := "Ablation — acquisition functions (mean true benefit; higher is better)"
	if cfg.Noise > 0 {
		title = fmt.Sprintf("%s, noise %.0f%%", title, cfg.Noise*100)
	}
	t := Table{
		Title:  title,
		Header: []string{"acquisition", "benefit", "iterations"},
	}
	var rows []AblationAcqRow
	for _, a := range []pamo.Acquisition{pamo.QNEI, pamo.QEI, pamo.QUCB, pamo.QSR} {
		var sumB, sumI float64
		for rep := 0; rep < cfg.Reps; rep++ {
			sys := NewSystem(cfg.Videos, cfg.Servers, cfg.Seed+uint64(rep)*31)
			norm := objective.NewNormalizer(sys)
			opt := cfg.PaMOOpt
			opt.Seed = cfg.Seed + uint64(rep)
			opt.Acq = a
			opt.UseEUBO = true
			if cfg.Noise > 0 {
				opt.ProfilerNoise = cfg.Noise
			}
			dm := &pref.Oracle{Pref: truth, Rng: stats.NewRNG(cfg.Seed + uint64(rep))}
			res, err := pamo.New(sys, dm, opt).Run()
			if err != nil {
				continue
			}
			sumB += truth.Benefit(norm.Normalize(res.Best.Raw))
			sumI += float64(res.Iters)
		}
		row := AblationAcqRow{Acq: a, Benefit: sumB / float64(cfg.Reps), Iters: sumI / float64(cfg.Reps)}
		rows = append(rows, row)
		t.Add(string(a), row.Benefit, row.Iters)
	}
	t.Fprint(w)
	return rows
}

// AblationEUBO compares EUBO-selected comparison pairs against random
// pairs at equal budgets (the design choice of Section 4.2).
func AblationEUBO(w io.Writer, budgets []int, reps int, seed uint64) Table {
	if len(budgets) == 0 {
		budgets = []int{3, 9, 18}
	}
	if reps == 0 {
		reps = 6
	}
	truth := objective.Preference{W: objective.Vector{0.2, 1, 1.6, 3.2, 1}}
	t := Table{
		Title:  "Ablation — EUBO vs random comparison-pair selection (pairwise accuracy)",
		Header: []string{"pairs", "eubo", "random"},
	}
	for _, budget := range budgets {
		var accE, accR float64
		for rep := 0; rep < reps; rep++ {
			rng := stats.NewRNG(seed + uint64(budget*100+rep))
			pool := make([]objective.Vector, 24)
			for i := range pool {
				for k := range pool[i] {
					pool[i][k] = rng.Float64()
				}
			}
			for _, useEUBO := range []bool{true, false} {
				dm := &pref.Oracle{Pref: truth}
				l := pref.NewLearner(dm, useEUBO, stats.NewRNG(seed+uint64(rep)*7+boolTo(useEUBO)))
				if err := l.Learn(pool, budget); err != nil {
					continue
				}
				a := pref.PairwiseAccuracy(l.Model, truth, 300, stats.NewRNG(seed+uint64(rep)+99))
				if useEUBO {
					accE += a
				} else {
					accR += a
				}
			}
		}
		t.Add(budget, accE/float64(reps), accR/float64(reps))
	}
	t.Fprint(w)
	return t
}

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// AblationZeroJitter contrasts Algorithm 1 (Const2 grouping + Theorem 1
// offsets) with utilization-only First-Fit placement on the same workload,
// measured by the DES: jitter, worst queueing delay, and mean latency.
func AblationZeroJitter(w io.Writer, videos, servers int, seed uint64) Table {
	if videos == 0 {
		videos = 8
	}
	if servers == 0 {
		servers = 5
	}
	sys := NewSystem(videos, servers, seed)
	rng := stats.NewRNG(seed + 0x2F)
	streams := buildUniformStreams(sys, 1000, 10)

	t := Table{
		Title:  "Ablation — zero-jitter scheduling (Algorithm 1) vs First-Fit",
		Header: []string{"policy", "max_jitter_s", "max_wait_s", "mean_latency_s"},
	}

	if plan, err := sched.Schedule(streams, sys.Servers); err == nil {
		specs, assign := plan.ToClusterStreams(streams, sys.Servers)
		results := cluster.SimulateCluster(specs, sys.Servers, assign, 30)
		t.Add("algorithm1", cluster.MaxJitter(results), maxWait(results), cluster.MeanLatency(results))
	} else {
		t.Add("algorithm1", "infeasible", "-", "-")
	}

	if assign, failed := baselines.FirstFit(streams, servers); failed < 0 {
		specs := make([]cluster.StreamSpec, len(streams))
		for i, s := range streams {
			specs[i] = cluster.StreamSpec{
				Period: s.Period.Float(),
				Offset: rng.Float64() * s.Period.Float(),
				Proc:   s.Proc,
				Bits:   s.Bits,
			}
		}
		results := cluster.SimulateCluster(specs, sys.Servers, assign, 30)
		t.Add("first-fit", cluster.MaxJitter(results), maxWait(results), cluster.MeanLatency(results))
	} else {
		t.Add("first-fit", "infeasible", "-", "-")
	}
	t.Fprint(w)
	return t
}

func buildUniformStreams(sys *objective.System, res, fps float64) []sched.Stream {
	streams := make([]sched.Stream, sys.M())
	for i, c := range sys.Clips {
		streams[i] = sched.Stream{
			Video:  i,
			Period: sched.RatFromFPS(int64(fps)),
			Proc:   c.ProcTime(res),
			Bits:   c.BitsPerFrame(res),
		}
	}
	return sched.SplitHighRate(streams)
}

func maxWait(results []cluster.Result) float64 {
	var m float64
	for _, r := range results {
		if r.MaxWait > m {
			m = r.MaxWait
		}
	}
	return m
}

// AblationHungarian compares Hungarian group→server mapping against a
// naive in-order mapping on the communication-latency objective.
func AblationHungarian(w io.Writer, videos, servers int, seed uint64) Table {
	if videos == 0 {
		videos = 8
	}
	if servers == 0 {
		servers = 5
	}
	sys := NewSystem(videos, servers, seed)
	streams := buildUniformStreams(sys, 1250, 10)
	t := Table{
		Title:  "Ablation — Hungarian vs in-order group→server mapping (total comm latency)",
		Header: []string{"mapping", "comm_latency_s"},
	}
	groups, err := sched.GroupStreams(streams, servers)
	if err != nil {
		t.Add("both", "infeasible")
		t.Fprint(w)
		return t
	}
	plan, err := sched.MapGroups(groups, streams, sys.Servers)
	if err != nil {
		t.Add("both", "infeasible")
		t.Fprint(w)
		return t
	}
	t.Add("hungarian", plan.CommLatency)

	// In-order mapping: group g → server g.
	var naive float64
	for g, members := range groups {
		for _, si := range members {
			naive += streams[si].Bits / sys.Servers[g].Uplink
		}
	}
	t.Add("in-order", naive)
	t.Notes = append(t.Notes, "Hungarian cost is optimal: it is never above the in-order mapping")
	t.Fprint(w)
	return t
}
