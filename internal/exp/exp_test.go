package exp

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/objective"
	"repro/internal/pamo"
)

func tinyOpts() pamo.Options {
	return pamo.Options{
		InitProfiles: 10, InitObs: 2, PrefPairs: 6, PrefPool: 8,
		Batch: 2, MCSamples: 8, CandPool: 6, MaxIter: 2,
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.Add(1, 2.5)
	tab.Add("xyz", "w")
	tab.Notes = append(tab.Notes, "a note")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "a ", "bb", "xyz", "2.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in rendered table:\n%s", want, out)
		}
	}
}

func TestTableMarkdownRendering(t *testing.T) {
	tab := Table{Title: "md", Header: []string{"a", "b"}}
	tab.Add(1, "x")
	tab.Notes = append(tab.Notes, "note text")
	var sb strings.Builder
	tab.Fmarkdown(&sb)
	out := sb.String()
	for _, want := range []string{"### md", "| a | b |", "| --- | --- |", "| 1 | x |", "*note text*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in markdown:\n%s", want, out)
		}
	}
}

func TestFig2SurfacesMatchPaperShape(t *testing.T) {
	tables := Fig2(io.Discard, 2024)
	if len(tables) != 2 {
		t.Fatalf("expected 2 clips, got %d", len(tables))
	}
	// 7 resolutions × 6 rates rows per clip.
	if len(tables[0].Rows) != 42 {
		t.Fatalf("rows = %d", len(tables[0].Rows))
	}
	// Fitted surfaces track ground truth: compare the mAP column (index 2)
	// with fit_mAP (index 3) row by row.
	for _, row := range tables[0].Rows {
		truth := atofOrFail(t, row[2])
		fit := atofOrFail(t, row[3])
		if truth > 0.1 && (fit < truth*0.8 || fit > truth*1.2) {
			t.Fatalf("fitted mAP %v far from truth %v", fit, truth)
		}
	}
}

func atofOrFail(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

func TestFig3LatencyAccumulates(t *testing.T) {
	lat := Fig3Timeline()
	if len(lat) < 10 {
		t.Fatalf("too few frames: %d", len(lat))
	}
	// The overloaded stream's latency trend must grow substantially.
	if lat[len(lat)-1] < 3*lat[0] {
		t.Fatalf("no accumulation: first %v last %v", lat[0], lat[len(lat)-1])
	}
}

func TestFig4SeparatesGroupings(t *testing.T) {
	tab := Fig4(io.Discard)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Row 0 (harmonic) jitter column must be ~0; row 1 must be > 0.
	if tab.Rows[0][4] == tab.Rows[1][4] {
		t.Fatalf("groupings indistinguishable: %v", tab.Rows)
	}
}

func TestFig6TinyRun(t *testing.T) {
	rows := Fig6(io.Discard, Fig6Config{
		Videos: 4, Servers: 3, Weights: []float64{1}, Reps: 1,
		Seed: 11, PaMOOpt: tinyOpts(),
	})
	if len(rows) != 5 { // one weight × five objectives
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, m := range r.Results {
			if m.Err != nil {
				t.Fatalf("%s failed: %v", m.Name, m.Err)
			}
			if m.Norm < 0 || m.Norm > 1.05 {
				t.Fatalf("%s normalized benefit %v out of range", m.Name, m.Norm)
			}
		}
		// PaMO+ is the normalization reference: exactly 1.
		last := r.Results[len(r.Results)-1]
		if last.Name != "PaMO+" || last.Norm != 1 {
			t.Fatalf("PaMO+ norm = %v (%s)", last.Norm, last.Name)
		}
	}
}

func TestFig7TinyRun(t *testing.T) {
	rows := Fig7(io.Discard, Fig7Config{
		Nodes: []int{4}, Videos: []int{5}, Reps: 1, Seed: 3, PaMOOpt: tinyOpts(),
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig8R2ImprovesWithTrainingSize(t *testing.T) {
	res := Fig8(io.Discard, Fig8Config{TrainSizes: []int{40, 300}, Reps: 3, Seed: 5})
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	var worstSmall, worstLarge float64 = 1, 1
	for k := 0; k < 5; k++ {
		if res[0].R2[k] < worstSmall {
			worstSmall = res[0].R2[k]
		}
		if res[1].R2[k] < worstLarge {
			worstLarge = res[1].R2[k]
		}
	}
	if worstLarge < 0.9 {
		t.Fatalf("R² at 300 samples = %v, want > 0.9", worstLarge)
	}
	if worstLarge < worstSmall-0.02 {
		t.Fatalf("R² did not improve: %v -> %v", worstSmall, worstLarge)
	}
}

func TestFig9AccuracyGrows(t *testing.T) {
	res := Fig9(io.Discard, Fig9Config{Pairs: []int{3, 18}, Reps: 4, Seed: 5})
	if res[1].Accuracy < 0.75 {
		t.Fatalf("accuracy at 18 pairs = %v", res[1].Accuracy)
	}
	if res[1].Accuracy < res[0].Accuracy-0.05 {
		t.Fatalf("accuracy regressed: %v -> %v", res[0].Accuracy, res[1].Accuracy)
	}
}

func TestFig10aBaselinesNeverBeatPaMOPlus(t *testing.T) {
	rows := Fig10a(io.Discard, Fig10aConfig{
		Weights: []float64{0.2, 5}, Setups: [][2]int{{3, 4}},
		Seed: 13, PaMOOpt: tinyOpts(),
	})
	for _, r := range rows {
		if r.JCAB > 1.05 || r.FACT > 1.05 {
			t.Fatalf("baseline exceeded the PaMO+ reference: %+v", r)
		}
	}
}

func TestFig10bRuns(t *testing.T) {
	rows := Fig10b(io.Discard, Fig10bConfig{
		Thresholds: []float64{0.1}, Setups: [][2]int{{3, 4}},
		Seed: 17, PaMOOpt: tinyOpts(),
	})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestAblationZeroJitterAdvantage(t *testing.T) {
	tab := AblationZeroJitter(io.Discard, 8, 5, 21)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] == "infeasible" || tab.Rows[1][1] == "infeasible" {
		t.Skip("instance infeasible for one policy")
	}
	// Algorithm 1's jitter must be (numerically) zero; first-fit's is not
	// guaranteed to be, and on this seed it jitters.
	if tab.Rows[0][1] >= tab.Rows[1][1] {
		t.Fatalf("algorithm1 jitter %s not below first-fit %s", tab.Rows[0][1], tab.Rows[1][1])
	}
}

func TestAblationHungarianOptimal(t *testing.T) {
	tab := AblationHungarian(io.Discard, 8, 5, 23)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationEUBORuns(t *testing.T) {
	tab := AblationEUBO(io.Discard, []int{6}, 2, 29)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestPricingAblationRuns(t *testing.T) {
	rows := Pricing(io.Discard, PricingConfig{
		Videos: 4, Servers: 3, Reps: 1, Seed: 7, PaMOOpt: tinyOpts(),
	})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Benefit == 0 {
			t.Fatalf("method %s produced no benefit value", r.Method)
		}
	}
}

func TestChartBuilders(t *testing.T) {
	if c := Fig3Chart(); len(c.Series) != 1 || len(c.Series[0].Y) == 0 {
		t.Fatal("Fig3Chart empty")
	}
	mk := func(norms ...float64) []MethodResult {
		names := []string{"JCAB", "FACT", "PaMO", "PaMO+"}
		out := make([]MethodResult, 4)
		for i := range out {
			out[i] = MethodResult{Name: names[i], Norm: norms[i]}
		}
		return out
	}
	rows6 := []Fig6Row{
		{Objective: objective.Latency, Weight: 0.2, Results: mk(0.8, 0.9, 1, 1)},
		{Objective: objective.Latency, Weight: 3.2, Results: mk(0.7, 0.8, 0.95, 1)},
	}
	charts6 := Fig6Charts(rows6)
	if len(charts6) != 1 || len(charts6[0].Series) != 4 || len(charts6[0].Series[0].X) != 2 {
		t.Fatalf("Fig6Charts shape wrong: %+v", charts6)
	}
	rows7 := []Fig7Row{
		{Nodes: 5, Videos: 10, Sweep: "nodes", Results: mk(0.8, 0.9, 1, 1)},
		{Nodes: 5, Videos: 8, Sweep: "videos", Results: mk(0.8, 0.9, 1, 1)},
	}
	charts7 := Fig7Charts(rows7)
	if len(charts7) != 2 {
		t.Fatalf("Fig7Charts = %d", len(charts7))
	}
	if len(charts7[0].Series[0].X) != 1 || len(charts7[1].Series[0].X) != 1 {
		t.Fatal("Fig7 sweep split wrong")
	}
	if c := Fig8Chart([]Fig8Result{{TrainSize: 100, R2: [5]float64{0.9, 0.9, 0.9, 0.9, 0.9}}}); len(c.Series) != 5 {
		t.Fatal("Fig8Chart series")
	}
	if c := Fig9Chart([]Fig9Result{{Pairs: 3, Accuracy: 0.7}}); len(c.Series[0].X) != 1 {
		t.Fatal("Fig9Chart")
	}
	if c := Fig10aChart([]Fig10aRow{{Weight: 1, JCAB: 0.8, FACT: 0.9, PaMO: 1, PaMOPlus: 1}}); len(c.Series) != 4 {
		t.Fatal("Fig10aChart")
	}
	if c := NoiseChart([]NoiseRow{{Noise: 0.02, Benefit: -1}}); len(c.Series[0].Y) != 1 {
		t.Fatal("NoiseChart")
	}
	// WriteChart round trip.
	dir := t.TempDir()
	if err := WriteChart(dir, "x", Fig3Chart()); err != nil {
		t.Fatal(err)
	}
}

func TestAverageRunsStd(t *testing.T) {
	sys := NewSystem(4, 3, 19)
	truth := objective.UniformPreference()
	res := averageRuns(sys, MethodsConfig{Truth: truth, Seed: 19, PaMOOpt: tinyOpts()}, 2)
	if len(res) != 4 {
		t.Fatalf("methods = %d", len(res))
	}
	for _, r := range res {
		if r.NormStd < 0 {
			t.Fatalf("%s: negative std %v", r.Name, r.NormStd)
		}
	}
	// Single-rep runs have zero spread.
	res1 := averageRuns(sys, MethodsConfig{Truth: truth, Seed: 19, PaMOOpt: tinyOpts()}, 1)
	for _, r := range res1 {
		if r.NormStd != 0 {
			t.Fatalf("%s: single-rep std %v", r.Name, r.NormStd)
		}
	}
}

func TestHeadlineAggregation(t *testing.T) {
	mk := func(j, f, p, plus float64) []MethodResult {
		return []MethodResult{
			{Name: "JCAB", Norm: j},
			{Name: "FACT", Norm: f},
			{Name: "PaMO", Norm: p},
			{Name: "PaMO+", Norm: plus},
		}
	}
	rows6 := []Fig6Row{
		{Results: mk(0.8, 0.9, 1.0, 1.0)},  // +25% vs JCAB, +11.1% vs FACT
		{Results: mk(0.65, 0.85, 0.98, 1)}, // +50.8% vs JCAB
	}
	rows7 := []Fig7Row{{Results: mk(0.9, 0.95, 0.96, 1)}}
	h := Headline(io.Discard, rows6, rows7)
	if h.Cells != 3 {
		t.Fatalf("cells = %d", h.Cells)
	}
	if h.VsJCABMax < 50 || h.VsJCABMax > 51 {
		t.Fatalf("vs JCAB max = %v", h.VsJCABMax)
	}
	if h.VsFACTMin > 1.1 || h.VsFACTMin < 1.0 {
		t.Fatalf("vs FACT min = %v", h.VsFACTMin)
	}
	if h.GapToPlusMax < 3.9 || h.GapToPlusMax > 4.1 {
		t.Fatalf("gap to PaMO+ = %v", h.GapToPlusMax)
	}
}

func TestNoiseSensitivityRuns(t *testing.T) {
	rows := NoiseSensitivity(io.Discard, NoiseConfig{
		Videos: 4, Servers: 3, Levels: []float64{0.02, 0.2}, Reps: 1,
		Seed: 9, PaMOOpt: tinyOpts(),
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Benefit == 0 {
			t.Fatalf("noise %v produced no result", r.Noise)
		}
	}
}

func TestROIExtensionRuns(t *testing.T) {
	rows := ROI(io.Discard, ROIConfig{
		Videos: 4, Servers: 3, Reps: 1, Seed: 9, PaMOOpt: tinyOpts(),
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Benefit == 0 || r.Acc == 0 {
			t.Fatalf("variant %s produced empty results", r.Variant)
		}
	}
}

func TestFeasibilityHeuristicSubsetOfExact(t *testing.T) {
	rows := Feasibility(io.Discard, FeasibilityConfig{Instances: 40, Seed: 11})
	for _, r := range rows {
		if r.HeurOnly != 0 {
			t.Fatalf("heuristic accepted an exact-infeasible instance: %+v", r)
		}
		total := r.BothFeasible + r.ExactOnly + r.BothInfeasible + r.HeurOnly
		if total != 40 {
			t.Fatalf("cell does not account for all instances: %+v", r)
		}
	}
}

func TestNewSystemUplinksFromPaperSet(t *testing.T) {
	sys := NewSystem(4, 10, 31)
	allowed := map[float64]bool{5e6: true, 10e6: true, 15e6: true, 20e6: true, 25e6: true, 30e6: true}
	for _, s := range sys.Servers {
		if !allowed[s.Uplink] {
			t.Fatalf("uplink %v not in the paper's bandwidth set", s.Uplink)
		}
	}
}
