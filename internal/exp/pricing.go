package exp

import (
	"io"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pricing"
)

// PricingConfig parameterizes the pricing-rule experiment — the paper's
// motivating scenario made concrete: the true benefit is a *non-linear*
// billing scheme (tiered electricity, metered uplink, SLA revenue), and we
// compare PaMO's comparison-learned preference against the classical
// fixed-weight definitions of the paper's reference [10].
type PricingConfig struct {
	Videos, Servers int
	Reps            int
	Seed            uint64
	PaMOOpt         pamo.Options
}

// PricingRow is one scorer's average hourly net benefit.
type PricingRow struct {
	Method  string
	Benefit float64 // currency per hour, ground truth billing
}

// Pricing runs the weight-rules ablation: every method uses the same PaMO
// BO machinery; they differ only in how candidate outcomes are scored —
// a preference model learned from the billing oracle's comparisons, or a
// fixed linear weighting (Equal / rank-order-centroid / rank-sum), or the
// billing scheme itself (oracle upper reference).
func Pricing(w io.Writer, cfg PricingConfig) []PricingRow {
	if cfg.Videos == 0 {
		cfg.Videos = 8
	}
	if cfg.Servers == 0 {
		cfg.Servers = 5
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	t := Table{
		Title:  "Pricing ablation — learned preference vs classical fixed weights (hourly net benefit)",
		Header: []string{"scorer", "net_benefit_per_hour"},
	}

	// A sensible importance ranking a human might guess for the billing:
	// energy > accuracy > network > latency > compute.
	guessRanks := [objective.K]int{4, 2, 3, 5, 1}
	roc, err := objective.ROCWeights(guessRanks)
	if err != nil {
		panic(err)
	}
	rs, err := objective.RankSumWeights(guessRanks)
	if err != nil {
		panic(err)
	}
	// Scale the unit-sum rule weights to Eq. 13's magnitude (sum = K).
	for k := 0; k < objective.K; k++ {
		roc.W[k] *= objective.K
		rs.W[k] *= objective.K
	}

	methods := []struct {
		name   string
		weights *objective.Preference // nil = learned preference
	}{
		{"learned (PaMO)", nil},
		{"equal weights", ptr(objective.UniformPreference())},
		{"ROC weights", ptr(roc)},
		{"rank-sum weights", ptr(rs)},
	}

	var rows []PricingRow
	for _, m := range methods {
		var sum float64
		n := 0
		for rep := 0; rep < cfg.Reps; rep++ {
			sys := NewSystem(cfg.Videos, cfg.Servers, cfg.Seed+uint64(rep)*17)
			norm := objective.NewNormalizer(sys)
			billing := pricing.CityBilling(cfg.Videos)

			opt := cfg.PaMOOpt
			opt.Seed = cfg.Seed + uint64(rep)
			var res *pamo.Result
			var err error
			if m.weights == nil {
				dm := &pricing.Oracle{Billing: billing, Norm: norm}
				opt.UseEUBO = true
				// The billing benefit has sharp non-linearities (SLA
				// thresholds, tariff tiers): give the learned model more
				// comparisons and evidence-tuned hyperparameters.
				if opt.PrefPairs == 0 {
					opt.PrefPairs = 30
				}
				opt.OptimizePrefHyper = true
				res, err = pamo.New(sys, dm, opt).Run()
			} else {
				opt.UseTruePref = true
				opt.TruePref = *m.weights
				res, err = pamo.New(sys, nil, opt).Run()
			}
			if err != nil {
				continue
			}
			sum += billing.NetBenefit(eva.Evaluate(sys, res.Best.Decision))
			n++
		}
		row := PricingRow{Method: m.name}
		if n > 0 {
			row.Benefit = sum / float64(n)
		}
		rows = append(rows, row)
		t.Add(m.name, row.Benefit)
	}
	t.Notes = append(t.Notes,
		"true benefit: tiered electricity + metered uplink + SLA revenue (internal/pricing.CityBilling)",
		"fixed-weight methods optimize a linear Eq. 13 guess; the learned method asks the billing oracle comparisons")
	t.Fprint(w)
	return rows
}

func ptr(p objective.Preference) *objective.Preference { return &p }

