package exp

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/objective"
	"repro/internal/plot"
)

// WriteChart renders a chart to <dir>/<name>.svg.
func WriteChart(dir, name string, c *plot.Chart) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return c.SVG(f)
}

// Fig3Chart plots the contended stream's per-frame latency (Figure 3a).
func Fig3Chart() *plot.Chart {
	lat := Fig3Timeline()
	x := make([]float64, len(lat))
	for i := range x {
		x[i] = float64(i)
	}
	return &plot.Chart{
		Title:  "Figure 3(a): latency accumulation under contention",
		XLabel: "frame index (10 fps stream)",
		YLabel: "end-to-end latency (s)",
		Series: []plot.Series{{Name: "video2", X: x, Y: lat}},
	}
}

// Fig6Charts builds one chart per weighted objective from Fig6 rows.
func Fig6Charts(rows []Fig6Row) []*plot.Chart {
	byObj := map[objective.Objective][]Fig6Row{}
	for _, r := range rows {
		byObj[r.Objective] = append(byObj[r.Objective], r)
	}
	var charts []*plot.Chart
	for k := 0; k < objective.K; k++ {
		group := byObj[objective.Objective(k)]
		if len(group) == 0 {
			continue
		}
		c := &plot.Chart{
			Title:  fmt.Sprintf("Figure 6: normalized benefit vs w_%s", objective.Names[k]),
			XLabel: "weight",
			YLabel: "normalized benefit",
		}
		for mi, name := range []string{"JCAB", "FACT", "PaMO", "PaMO+"} {
			var s plot.Series
			s.Name = name
			for _, r := range group {
				s.X = append(s.X, r.Weight)
				s.Y = append(s.Y, r.Results[mi].Norm)
			}
			c.Series = append(c.Series, s)
		}
		charts = append(charts, c)
	}
	return charts
}

// Fig7Charts builds the node-sweep and video-sweep charts.
func Fig7Charts(rows []Fig7Row) []*plot.Chart {
	nodes := &plot.Chart{
		Title: "Figure 7: benefit vs node number (10 videos)", XLabel: "nodes", YLabel: "normalized benefit"}
	videos := &plot.Chart{
		Title: "Figure 7: benefit vs video number (5 servers)", XLabel: "videos", YLabel: "normalized benefit"}
	for mi, name := range []string{"JCAB", "FACT", "PaMO", "PaMO+"} {
		var sn, sv plot.Series
		sn.Name, sv.Name = name, name
		for _, r := range rows {
			if r.Sweep == "nodes" {
				sn.X = append(sn.X, float64(r.Nodes))
				sn.Y = append(sn.Y, r.Results[mi].Norm)
			} else {
				sv.X = append(sv.X, float64(r.Videos))
				sv.Y = append(sv.Y, r.Results[mi].Norm)
			}
		}
		nodes.Series = append(nodes.Series, sn)
		videos.Series = append(videos.Series, sv)
	}
	return []*plot.Chart{nodes, videos}
}

// Fig8Chart plots R² vs training size per objective model.
func Fig8Chart(res []Fig8Result) *plot.Chart {
	c := &plot.Chart{
		Title: "Figure 8: outcome model R² vs training size", XLabel: "training samples", YLabel: "R²"}
	for k, name := range Fig8Metrics {
		var s plot.Series
		s.Name = name
		for _, r := range res {
			s.X = append(s.X, float64(r.TrainSize))
			s.Y = append(s.Y, r.R2[k])
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// Fig9Chart plots preference accuracy vs comparison pairs.
func Fig9Chart(res []Fig9Result) *plot.Chart {
	var s plot.Series
	s.Name = "accuracy"
	for _, r := range res {
		s.X = append(s.X, float64(r.Pairs))
		s.Y = append(s.Y, r.Accuracy)
	}
	return &plot.Chart{
		Title: "Figure 9: preference model accuracy", XLabel: "comparison pairs", YLabel: "pairwise accuracy",
		Series: []plot.Series{s},
	}
}

// Fig10aChart plots the baseline weight sensitivity for one setup.
func Fig10aChart(rows []Fig10aRow) *plot.Chart {
	c := &plot.Chart{
		Title: "Figure 10(a): baseline weight sensitivity", XLabel: "internal weight", YLabel: "normalized benefit"}
	series := map[string]*plot.Series{}
	order := []string{"JCAB", "FACT", "PaMO", "PaMO+"}
	for _, name := range order {
		series[name] = &plot.Series{Name: name}
	}
	for _, r := range rows {
		series["JCAB"].X = append(series["JCAB"].X, r.Weight)
		series["JCAB"].Y = append(series["JCAB"].Y, r.JCAB)
		series["FACT"].X = append(series["FACT"].X, r.Weight)
		series["FACT"].Y = append(series["FACT"].Y, r.FACT)
		series["PaMO"].X = append(series["PaMO"].X, r.Weight)
		series["PaMO"].Y = append(series["PaMO"].Y, r.PaMO)
		series["PaMO+"].X = append(series["PaMO+"].X, r.Weight)
		series["PaMO+"].Y = append(series["PaMO+"].Y, r.PaMOPlus)
	}
	for _, name := range order {
		c.Series = append(c.Series, *series[name])
	}
	return c
}

// Fig10bChart plots the termination-threshold sensitivity for one setup.
func Fig10bChart(rows []Fig10bRow) *plot.Chart {
	c := &plot.Chart{
		Title: "Figure 10(b): termination threshold sensitivity", XLabel: "delta", YLabel: "normalized benefit"}
	series := map[string]*plot.Series{}
	order := []string{"JCAB", "FACT", "PaMO", "PaMO+"}
	for _, name := range order {
		series[name] = &plot.Series{Name: name}
	}
	for _, r := range rows {
		series["JCAB"].X = append(series["JCAB"].X, r.Delta)
		series["JCAB"].Y = append(series["JCAB"].Y, r.JCAB)
		series["FACT"].X = append(series["FACT"].X, r.Delta)
		series["FACT"].Y = append(series["FACT"].Y, r.FACT)
		series["PaMO"].X = append(series["PaMO"].X, r.Delta)
		series["PaMO"].Y = append(series["PaMO"].Y, r.PaMO)
		series["PaMO+"].X = append(series["PaMO+"].X, r.Delta)
		series["PaMO+"].Y = append(series["PaMO+"].Y, r.PaMOPlus)
	}
	for _, name := range order {
		c.Series = append(c.Series, *series[name])
	}
	return c
}

// NoiseChart plots PaMO's benefit vs profiling noise.
func NoiseChart(rows []NoiseRow) *plot.Chart {
	var s plot.Series
	s.Name = "PaMO"
	for _, r := range rows {
		s.X = append(s.X, r.Noise)
		s.Y = append(s.Y, r.Benefit)
	}
	return &plot.Chart{
		Title: "Sensitivity: benefit vs profiling noise", XLabel: "relative noise std", YLabel: "true benefit",
		Series: []plot.Series{s},
	}
}
