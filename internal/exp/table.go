// Package exp contains the experiment runners that regenerate every figure
// of the paper's evaluation (Section 5) on the simulated substrate, plus
// the ablation studies called out in DESIGN.md. Each runner returns
// structured results and can render an aligned text table.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row; values are formatted with %v (floats via %.4g).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Fmarkdown renders the table as GitHub-flavored markdown.
func (t *Table) Fmarkdown(w io.Writer) {
	fmt.Fprintf(w, "\n### %s\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
}
