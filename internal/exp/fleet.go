package exp

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/stats"
)

// FleetConfig sizes the fleet-scale control-plane benchmark: a cluster two
// orders of magnitude beyond the paper's testbed (256 streams × 32 servers
// by default) driven through repeated replan-and-simulate epochs, the shape
// of the fault-tolerant runtime's steady state. Procs and frame sizes drift
// every epoch and a server flaps periodically, so every epoch needs a real
// replan, not a cache hit.
type FleetConfig struct {
	Streams    int     // pre-split stream count (default 256)
	Servers    int     // default 32
	Epochs     int     // replan+simulate epochs per run (default 8)
	Horizon    float64 // DES horizon per epoch, seconds (default 2)
	FaultEvery int     // every k-th epoch one server is down (default 4, <0 disables)
	Seed       uint64
	// Cold forces the pre-optimization path on every epoch: a full
	// Algorithm 1 solve from scratch (sort, priorities, exact-rational
	// grouping, fresh Hungarian matrices) plus freshly allocated simulation
	// buffers. The default warm path reuses the previous epoch's grouping
	// through sched.Replanner and simulates through per-server
	// cluster.Arenas, re-solving only the group→server mapping.
	Cold bool
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Streams == 0 {
		c.Streams = 256
	}
	if c.Servers == 0 {
		c.Servers = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 8
	}
	if c.Horizon == 0 {
		c.Horizon = 2
	}
	if c.FaultEvery == 0 {
		c.FaultEvery = 4
	}
	if c.Seed == 0 {
		c.Seed = 2024
	}
	return c
}

// FleetReport aggregates one fleet run. The latency/comm numbers double as
// a determinism fingerprint: cold and warm paths must produce identical
// plans per epoch whenever the incremental solve is exact, and the
// benchmark's test asserts the report is reproducible run-to-run.
type FleetReport struct {
	Streams, Servers, Epochs int
	Frames                   int
	MeanLatencyS             float64
	CommLatencyS             float64 // summed over epochs
	MaxJitterS               float64
	FullReplans              int
	IncrementalReplans       int
}

// fleetWorkload builds the deterministic base workload: periods drawn from
// an harmonic fps set (every period a multiple of 1/30 s, so Algorithm 1's
// period-multiple grouping condition has room), per-frame costs sized for
// ~70% aggregate group utilization, and heterogeneous uplinks.
func fleetWorkload(cfg FleetConfig) ([]sched.Stream, []cluster.Server) {
	rng := stats.NewRNG(cfg.Seed)
	fps := []int64{30, 15, 10, 6, 5}
	streams := make([]sched.Stream, cfg.Streams)
	for i := range streams {
		p := sched.RatFromFPS(fps[rng.IntN(len(fps))])
		streams[i] = sched.Stream{
			Video:  i,
			Period: p,
			// 2–16% of the fastest period: dense enough that grouping is
			// non-trivial, sparse enough that a feasible packing exists.
			Proc: (1.0 / 30) * (0.02 + 0.14*rng.Float64()),
			Bits: 1e5 * (1 + 9*rng.Float64()),
		}
	}
	servers := make([]cluster.Server, cfg.Servers)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: 20e6 * float64(1+rng.IntN(5))}
	}
	return streams, servers
}

// fleetDrift writes the epoch's drifted per-frame costs into dst (same
// base workload, procs and bits modulated per stream per epoch). The
// modulation is bounded so every epoch stays feasible.
func fleetDrift(dst, base []sched.Stream, epoch int) {
	copy(dst, base)
	for i := range dst {
		ph := float64(epoch) + float64(i)*0.618
		dst[i].Proc = base[i].Proc * (1 + fleetProcAmp*math.Sin(ph))
		dst[i].Bits = base[i].Bits * (1 + 0.25*math.Sin(ph*1.7))
	}
}

// fleetProcAmp is the relative amplitude of the per-epoch processing-time
// drift; fleetProcMargin is the worst-case headroom the planner budgets for
// it. Planning with Proc·(1+amp) upper-bounds every drifted epoch, so the
// admission arithmetic (and with it a previously adopted grouping) stays
// valid under drift — the WCET discipline real admission controllers use.
// Theorem 1's offsets computed for the budgeted procs stay zero-jitter when
// the actual procs run shorter: each frame still finishes before the next
// planned slot opens.
const (
	fleetProcAmp    = 0.06
	fleetProcMargin = 1 + fleetProcAmp
)

// fleetPlanStreams writes the epoch's planning view into dst: worst-case
// (margin-budgeted) processing times, the epoch's actual frame sizes. Bits
// stay exact because Theorem 1's transmission staggering must match what the
// network will really carry; procs are budgeted because admission must
// survive drift.
func fleetPlanStreams(dst, base, actual []sched.Stream) {
	copy(dst, base)
	for i := range dst {
		dst[i].Proc = base[i].Proc * fleetProcMargin
		dst[i].Bits = actual[i].Bits
	}
}

// fleetMask returns the epoch's server liveness mask (nil = all healthy):
// on fault epochs one rotating server is down, forcing a replan onto the
// survivors exactly as the fault-tolerant runtime would.
func fleetMask(cfg FleetConfig, epoch int) []bool {
	if cfg.FaultEvery <= 0 || epoch == 0 || epoch%cfg.FaultEvery != 0 {
		return nil
	}
	mask := make([]bool, cfg.Servers)
	for j := range mask {
		mask[j] = true
	}
	mask[(epoch/cfg.FaultEvery-1)%cfg.Servers] = false
	return mask
}

// Fleet runs the fleet-scale benchmark loop once and returns the aggregate
// report. Each epoch: drift the workload, plan against the margin-budgeted
// view (full Algorithm 1 when Cold or when the incremental path is
// inapplicable, otherwise a grouping-reusing incremental solve), apply
// Theorem 1 offsets, and verify the plan empirically with the discrete-event
// simulator running the epoch's actual drifted costs.
func Fleet(cfg FleetConfig) FleetReport {
	cfg = cfg.withDefaults()
	base, servers := fleetWorkload(cfg)
	rep := FleetReport{Streams: cfg.Streams, Servers: cfg.Servers, Epochs: cfg.Epochs}

	streams := make([]sched.Stream, len(base))
	planning := make([]sched.Stream, len(base))
	var latSum float64
	if cfg.Cold {
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			fleetDrift(streams, base, epoch)
			fleetPlanStreams(planning, base, streams)
			mask := fleetMask(cfg, epoch)
			split := sched.SplitHighRate(planning)
			plan, err := sched.ScheduleMasked(split, servers, mask)
			if err != nil {
				panic("exp: infeasible fleet workload: " + err.Error())
			}
			rep.FullReplans++
			rep.CommLatencyS += plan.CommLatency
			specs, assign := plan.ToClusterStreams(split, servers)
			for k := range specs {
				specs[k].Proc = streams[split[k].Video].Proc
			}
			results := cluster.SimulateCluster(specs, servers, assign, cfg.Horizon)
			for _, r := range results {
				for _, f := range r.Frames {
					latSum += f.Latency()
				}
				rep.Frames += len(r.Frames)
				rep.MaxJitterS = math.Max(rep.MaxJitterS, r.MaxJitter)
			}
		}
	} else {
		rp := sched.NewReplanner()
		arenas := make([]*cluster.Arena, len(servers))
		specs := make([]cluster.StreamSpec, 0, len(base))
		srvSpecs := make([][]cluster.StreamSpec, len(servers))
		for j := range arenas {
			arenas[j] = cluster.NewArena()
		}
		var split []sched.Stream
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			fleetDrift(streams, base, epoch)
			fleetPlanStreams(planning, base, streams)
			mask := fleetMask(cfg, epoch)
			// The planning view's periods and budgeted procs are
			// epoch-invariant, so the split structure is too (splitting
			// depends only on Proc/Period): compute it once and refresh the
			// per-epoch frame sizes through the sub-streams' parent index.
			if split == nil {
				split = sched.SplitHighRate(planning)
			} else {
				for k := range split {
					split[k].Bits = planning[split[k].Video].Bits
				}
			}
			plan, incremental, err := rp.Replan(split, servers, mask)
			if err != nil {
				panic("exp: infeasible fleet workload: " + err.Error())
			}
			if incremental {
				rep.IncrementalReplans++
			} else {
				rep.FullReplans++
			}
			rep.CommLatencyS += plan.CommLatency
			// Theorem 1 offsets plus per-server spec partitions, without
			// the name-formatting allocations of ToClusterStreams. Offsets
			// are computed from the budgeted procs (matching the cold path),
			// then the actual drifted procs are swapped in for simulation.
			specs = specs[:0]
			for _, s := range split {
				specs = append(specs, cluster.StreamSpec{
					Period: s.Period.Float(), Proc: s.Proc, Bits: s.Bits,
				})
			}
			for j := range srvSpecs {
				srvSpecs[j] = srvSpecs[j][:0]
			}
			for g, members := range plan.Groups {
				if len(members) == 0 {
					continue
				}
				srv := plan.GroupServer[g]
				at := len(srvSpecs[srv])
				for _, si := range members {
					srvSpecs[srv] = append(srvSpecs[srv], specs[si])
				}
				part := srvSpecs[srv][at:]
				cluster.ZeroJitterOffsetsInPlaceOn(part, servers[srv])
				for gi, si := range members {
					part[gi].Proc = streams[split[si].Video].Proc
				}
			}
			for j := range servers {
				res := arenas[j].SimulateServer(srvSpecs[j], servers[j], cfg.Horizon)
				for _, f := range res.Frames {
					latSum += f.Latency()
				}
				rep.Frames += len(res.Frames)
				rep.MaxJitterS = math.Max(rep.MaxJitterS, res.MaxJitter)
			}
		}
	}
	if rep.Frames > 0 {
		rep.MeanLatencyS = latSum / float64(rep.Frames)
	}
	return rep
}
