package exp

import (
	"context"
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/stats"
)

// Fig10aConfig parameterizes the baseline weight-sensitivity experiment.
type Fig10aConfig struct {
	Weights []float64 // paper: 0.05..5
	Setups  [][2]int  // (servers, videos); paper: {5,8} and {6,10}
	Reps    int
	Seed    uint64
	PaMOOpt pamo.Options
}

func (c Fig10aConfig) withDefaults() Fig10aConfig {
	if len(c.Weights) == 0 {
		c.Weights = []float64{0.05, 0.1, 0.2, 0.5, 0.8, 1, 2, 5}
	}
	if len(c.Setups) == 0 {
		c.Setups = [][2]int{{5, 8}, {6, 10}}
	}
	if c.Reps == 0 {
		c.Reps = 1
	}
	return c
}

// Fig10aRow holds one setup's sweep.
type Fig10aRow struct {
	Servers, Videos int
	Weight          float64
	JCAB, FACT      float64 // normalized benefit at this internal weight
	PaMO, PaMOPlus  float64 // weight-independent references
}

// Fig10a reproduces Figure 10(a): JCAB's and FACT's normalized benefit as
// their *internal* objective weights sweep 0.05–5 while the true system
// preference stays uniform. PaMO and PaMO+ are weight-free references.
// The point of the figure: no weight setting lets the single-objective
// baselines reach PaMO.
func Fig10a(w io.Writer, cfg Fig10aConfig) []Fig10aRow {
	cfg = cfg.withDefaults()
	truth := objective.UniformPreference()
	var rows []Fig10aRow
	t := Table{
		Title:  "Figure 10(a) — baseline sensitivity to internal weights (true preference uniform)",
		Header: []string{"setup", "weight", "JCAB", "FACT", "PaMO", "PaMO+"},
	}
	for _, setup := range cfg.Setups {
		n, m := setup[0], setup[1]
		sys := NewSystem(m, n, cfg.Seed+uint64(n*10+m))
		norm := objective.NewNormalizer(sys)

		// Weight-free references, once per setup.
		pp := cfg.PaMOOpt
		pp.Seed = cfg.Seed
		pp.UseTruePref = true
		pp.TruePref = truth
		resPlus, err := pamo.New(sys, nil, pp).Run()
		if err != nil {
			panic(fmt.Sprintf("fig10a: PaMO+ failed: %v", err))
		}
		maxU := truth.Benefit(norm.Normalize(resPlus.Best.Raw))

		po := cfg.PaMOOpt
		po.Seed = cfg.Seed
		po.UseEUBO = true
		dm := &pref.Oracle{Pref: truth, Rng: stats.NewRNG(cfg.Seed + 5)}
		resP, err := pamo.New(sys, dm, po).Run()
		if err != nil {
			panic(fmt.Sprintf("fig10a: PaMO failed: %v", err))
		}
		pamoNorm := objective.NormalizeBenefit(truth.Benefit(norm.Normalize(resP.Best.Raw)), maxU, truth)

		for _, wt := range cfg.Weights {
			jNorm, fNorm := 0.0, 0.0
			if d, err := baselines.JCAB(context.Background(), sys, baselines.JCABOptions{WEng: wt, Seed: cfg.Seed}); err == nil {
				u := truth.Benefit(norm.Normalize(eva.Evaluate(sys, d)))
				jNorm = objective.NormalizeBenefit(u, maxU, truth)
			}
			if d, err := baselines.FACT(context.Background(), sys, baselines.FACTOptions{WLat: wt, Seed: cfg.Seed}); err == nil {
				u := truth.Benefit(norm.Normalize(eva.Evaluate(sys, d)))
				fNorm = objective.NormalizeBenefit(u, maxU, truth)
			}
			rows = append(rows, Fig10aRow{Servers: n, Videos: m, Weight: wt, JCAB: jNorm, FACT: fNorm, PaMO: pamoNorm, PaMOPlus: 1})
			t.Add(fmt.Sprintf("n%dv%d", n, m), wt, jNorm, fNorm, pamoNorm, 1.0)
		}
	}
	t.Notes = append(t.Notes, "JCAB sweeps its energy weight, FACT its latency weight; PaMO needs no weight tuning")
	t.Fprint(w)
	return rows
}

// Fig10bConfig parameterizes the termination-threshold experiment.
type Fig10bConfig struct {
	Thresholds []float64 // paper: 0.02..0.2
	Setups     [][2]int
	Seed       uint64
	PaMOOpt    pamo.Options
}

func (c Fig10bConfig) withDefaults() Fig10bConfig {
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{0.02, 0.04, 0.06, 0.08, 0.1, 0.2}
	}
	if len(c.Setups) == 0 {
		c.Setups = [][2]int{{5, 8}, {6, 10}}
	}
	return c
}

// Fig10bRow is one (setup, threshold) cell.
type Fig10bRow struct {
	Servers, Videos int
	Delta           float64
	PaMO, PaMOPlus  float64
	JCAB, FACT      float64
}

// Fig10b reproduces Figure 10(b): sensitivity to the termination threshold
// δ. PaMO's BO loop stops when the benefit improves by less than δ; the
// baselines' iterative solvers get an equivalent stopping rule (JCAB's
// rounds and FACT's sweeps scale inversely with δ).
func Fig10b(w io.Writer, cfg Fig10bConfig) []Fig10bRow {
	cfg = cfg.withDefaults()
	truth := objective.UniformPreference()
	var rows []Fig10bRow
	t := Table{
		Title:  "Figure 10(b) — sensitivity to the termination threshold δ",
		Header: []string{"setup", "delta", "JCAB", "FACT", "PaMO", "PaMO+"},
	}
	for _, setup := range cfg.Setups {
		n, m := setup[0], setup[1]
		sys := NewSystem(m, n, cfg.Seed+uint64(n*10+m))
		norm := objective.NewNormalizer(sys)
		for _, delta := range cfg.Thresholds {
			// δ → iteration budgets for the baselines' solvers.
			iters := int(1 / delta)
			if iters < 2 {
				iters = 2
			}
			pp := cfg.PaMOOpt
			pp.Seed = cfg.Seed
			pp.Delta = delta
			pp.UseTruePref = true
			pp.TruePref = truth
			resPlus, err := pamo.New(sys, nil, pp).Run()
			if err != nil {
				panic(fmt.Sprintf("fig10b: PaMO+ failed: %v", err))
			}
			maxU := truth.Benefit(norm.Normalize(resPlus.Best.Raw))

			po := cfg.PaMOOpt
			po.Seed = cfg.Seed
			po.Delta = delta
			po.UseEUBO = true
			dm := &pref.Oracle{Pref: truth, Rng: stats.NewRNG(cfg.Seed + 5)}
			resP, err := pamo.New(sys, dm, po).Run()
			if err != nil {
				panic(fmt.Sprintf("fig10b: PaMO failed: %v", err))
			}
			pamoNorm := objective.NormalizeBenefit(truth.Benefit(norm.Normalize(resP.Best.Raw)), maxU, truth)

			jNorm, fNorm := 0.0, 0.0
			if d, err := baselines.JCAB(context.Background(), sys, baselines.JCABOptions{Rounds: iters, Seed: cfg.Seed}); err == nil {
				u := truth.Benefit(norm.Normalize(eva.Evaluate(sys, d)))
				jNorm = objective.NormalizeBenefit(u, maxU, truth)
			}
			if d, err := baselines.FACT(context.Background(), sys, baselines.FACTOptions{MaxIter: iters, Seed: cfg.Seed}); err == nil {
				u := truth.Benefit(norm.Normalize(eva.Evaluate(sys, d)))
				fNorm = objective.NormalizeBenefit(u, maxU, truth)
			}
			rows = append(rows, Fig10bRow{Servers: n, Videos: m, Delta: delta, PaMO: pamoNorm, PaMOPlus: 1, JCAB: jNorm, FACT: fNorm})
			t.Add(fmt.Sprintf("n%dv%d", n, m), delta, jNorm, fNorm, pamoNorm, 1.0)
		}
	}
	t.Fprint(w)
	return rows
}
