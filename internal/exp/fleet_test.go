package exp

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// TestFleetWarmFirstEpochMatchesCold pins that with a single epoch — where
// the warm path has nothing to reuse and falls back to a full solve — cold
// and warm runs produce identical fingerprints: same frames, latencies, and
// communication cost, just computed in reused buffers.
func TestFleetWarmFirstEpochMatchesCold(t *testing.T) {
	cfg := FleetConfig{Streams: 48, Servers: 8, Epochs: 1, FaultEvery: -1}
	cold := Fleet(FleetConfig{Streams: 48, Servers: 8, Epochs: 1, FaultEvery: -1, Cold: true})
	warm := Fleet(cfg)
	cold.FullReplans, warm.FullReplans = 0, 0 // both 1; zero for the compare
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("single-epoch fingerprints diverged:\ncold %+v\nwarm %+v", cold, warm)
	}
}

// TestFleetWarmPath exercises the multi-epoch warm loop: the incremental
// path must carry the steady-state epochs, every plan must stay zero-jitter
// under the drifted costs (the exact Const2 re-check is what licenses the
// grouping reuse), and the whole run must be reproducible.
func TestFleetWarmPath(t *testing.T) {
	cfg := FleetConfig{Streams: 64, Servers: 8, Epochs: 6, FaultEvery: 3}
	rep := Fleet(cfg)
	if rep.FullReplans+rep.IncrementalReplans != cfg.Epochs {
		t.Fatalf("replans %d+%d don't cover %d epochs",
			rep.FullReplans, rep.IncrementalReplans, cfg.Epochs)
	}
	if rep.IncrementalReplans == 0 {
		t.Fatal("warm fleet run never took the incremental path")
	}
	if rep.FullReplans == 0 {
		t.Fatal("epoch 0 must be a full solve")
	}
	if rep.MaxJitterS > cluster.JitterEps {
		t.Fatalf("warm fleet run jitter %g above the zero-jitter tolerance", rep.MaxJitterS)
	}
	if rep.Frames == 0 || rep.MeanLatencyS <= 0 {
		t.Fatalf("empty simulation: %+v", rep)
	}
	if again := Fleet(cfg); !reflect.DeepEqual(rep, again) {
		t.Fatalf("warm fleet run not reproducible:\n%+v\n%+v", rep, again)
	}
}

// TestFleetColdDeterministic pins the cold baseline's reproducibility too —
// it is the reference the benchmark's speedup claims are measured against.
func TestFleetColdDeterministic(t *testing.T) {
	cfg := FleetConfig{Streams: 48, Servers: 8, Epochs: 4, Cold: true}
	a, b := Fleet(cfg), Fleet(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cold fleet run not reproducible:\n%+v\n%+v", a, b)
	}
}
