package exp

import (
	"fmt"
	"io"

	"repro/internal/objective"
	"repro/internal/pamo"
)

// Fig6Config parameterizes the preference-sweep experiment.
type Fig6Config struct {
	Videos  int       // paper: 8
	Servers int       // paper: 5
	Weights []float64 // paper: {0.2, 0.4, 1.6, 3.2}
	Reps    int       // paper: 3
	Seed    uint64
	PaMOOpt pamo.Options
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Videos == 0 {
		c.Videos = 8
	}
	if c.Servers == 0 {
		c.Servers = 5
	}
	if len(c.Weights) == 0 {
		c.Weights = []float64{0.2, 0.4, 1.6, 3.2}
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	return c
}

// Fig6Row is one (objective, weight) cell of Figure 6.
type Fig6Row struct {
	Objective objective.Objective
	Weight    float64
	Results   []MethodResult
}

// Fig6 reproduces Figure 6: normalized benefit of JCAB/FACT/PaMO/PaMO+
// across preference functions built by setting one objective's weight to
// each value in Weights (others stay 1), plus the per-objective benefit
// ratio of the PaMO solution.
func Fig6(w io.Writer, cfg Fig6Config) []Fig6Row {
	cfg = cfg.withDefaults()
	sys := NewSystem(cfg.Videos, cfg.Servers, cfg.Seed)
	t := Table{
		Title: fmt.Sprintf("Figure 6 — normalized benefit across preference functions (%d videos, %d servers, %d reps)",
			cfg.Videos, cfg.Servers, cfg.Reps),
		Header: []string{"weighted_obj", "w", "JCAB", "FACT", "PaMO", "PaMO+", "PaMO±std"},
	}
	ratio := Table{
		Title:  "Figure 6 (shades) — benefit ratio of the PaMO solution by objective",
		Header: []string{"weighted_obj", "w", "latency", "accuracy", "network", "compute", "energy"},
	}
	var rows []Fig6Row
	for k := 0; k < objective.K; k++ {
		for _, wv := range cfg.Weights {
			truth := objective.UniformPreference()
			truth.W[k] = wv
			res := averageRuns(sys, MethodsConfig{
				Truth:   truth,
				Seed:    cfg.Seed + uint64(k*100) + uint64(wv*10),
				PaMOOpt: cfg.PaMOOpt,
			}, cfg.Reps)
			rows = append(rows, Fig6Row{Objective: objective.Objective(k), Weight: wv, Results: res})
			t.Add(objective.Names[k], wv, res[0].Norm, res[1].Norm, res[2].Norm, res[3].Norm, res[2].NormStd)
			r := res[2].Ratio
			ratio.Add(objective.Names[k], wv, r[0], r[1], r[2], r[3], r[4])
		}
	}
	t.Notes = append(t.Notes, "normalized benefit: 1.0 = PaMO+ (true preference), 0 = worst-case floor (footnote 2)")
	t.Fprint(w)
	ratio.Fprint(w)
	return rows
}

// Fig7Config parameterizes the scale-sweep experiment.
type Fig7Config struct {
	Nodes   []int // paper: 5..9 with 10 videos
	Videos  []int // paper: 7..11 with 5 servers
	Reps    int
	Seed    uint64
	PaMOOpt pamo.Options
}

func (c Fig7Config) withDefaults() Fig7Config {
	if len(c.Nodes) == 0 {
		c.Nodes = []int{5, 6, 7, 8, 9}
	}
	if len(c.Videos) == 0 {
		c.Videos = []int{7, 8, 9, 10, 11}
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	return c
}

// Fig7Row is one scale point of Figure 7. Sweep is "nodes" for the
// fixed-videos sweep and "videos" for the fixed-servers sweep.
type Fig7Row struct {
	Nodes, Videos int
	Sweep         string
	Results       []MethodResult
}

// Fig7 reproduces Figure 7: normalized benefit for varying server count
// (10 videos) and varying video count (5 servers), uniform preference.
func Fig7(w io.Writer, cfg Fig7Config) []Fig7Row {
	cfg = cfg.withDefaults()
	truth := objective.UniformPreference()
	var rows []Fig7Row

	t1 := Table{
		Title:  "Figure 7 (left) — normalized benefit vs node number (10 videos)",
		Header: []string{"nodes", "JCAB", "FACT", "PaMO", "PaMO+", "PaMO±std"},
	}
	for _, n := range cfg.Nodes {
		sys := NewSystem(10, n, cfg.Seed+uint64(n))
		res := averageRuns(sys, MethodsConfig{Truth: truth, Seed: cfg.Seed + uint64(n)*7, PaMOOpt: cfg.PaMOOpt}, cfg.Reps)
		rows = append(rows, Fig7Row{Nodes: n, Videos: 10, Sweep: "nodes", Results: res})
		t1.Add(n, res[0].Norm, res[1].Norm, res[2].Norm, res[3].Norm, res[2].NormStd)
	}
	t1.Fprint(w)

	t2 := Table{
		Title:  "Figure 7 (right) — normalized benefit vs video number (5 servers)",
		Header: []string{"videos", "JCAB", "FACT", "PaMO", "PaMO+", "PaMO±std"},
	}
	for _, m := range cfg.Videos {
		sys := NewSystem(m, 5, cfg.Seed+uint64(100+m))
		res := averageRuns(sys, MethodsConfig{Truth: truth, Seed: cfg.Seed + uint64(m)*13, PaMOOpt: cfg.PaMOOpt}, cfg.Reps)
		rows = append(rows, Fig7Row{Nodes: 5, Videos: m, Sweep: "videos", Results: res})
		t2.Add(m, res[0].Norm, res[1].Norm, res[2].Norm, res[3].Norm, res[2].NormStd)
	}
	t2.Fprint(w)
	return rows
}
