package exp

import (
	"math"
	"math/rand/v2"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/videosim"
)

// clipGPs are the five per-clip outcome GPs used by the Figure 8
// experiment, trained on noisy profiling data with standardized targets.
type clipGPs struct {
	gps    [5]*gp.GP
	scales [5]float64
}

func encodeCfg(c videosim.Config) []float64 {
	rLo := videosim.Resolutions[0]
	rHi := videosim.Resolutions[len(videosim.Resolutions)-1]
	sLo := videosim.FrameRates[0]
	sHi := videosim.FrameRates[len(videosim.FrameRates)-1]
	return []float64{
		(c.Resolution - rLo) / (rHi - rLo),
		(c.FPS - sLo) / (sHi - sLo),
	}
}

// newTrainedClipGPs profiles the clip at n random grid configurations and
// fits the five outcome GPs (latency=per-frame processing time, accuracy,
// bandwidth, computation, energy).
func newTrainedClipGPs(clip *videosim.Clip, prof *videosim.Profiler, n int, rng *rand.Rand) *clipGPs {
	xs := make([][]float64, 0, n)
	ys := [5][]float64{}
	for i := 0; i < n; i++ {
		cfg := videosim.Config{
			Resolution: videosim.Resolutions[rng.IntN(len(videosim.Resolutions))],
			FPS:        videosim.FrameRates[rng.IntN(len(videosim.FrameRates))],
		}
		m := prof.Measure(clip, cfg)
		xs = append(xs, encodeCfg(cfg))
		vals := []float64{m.ProcTime, m.Acc, m.Bandwidth, m.Compute, m.Power}
		for k := range ys {
			ys[k] = append(ys[k], vals[k])
		}
	}
	out := &clipGPs{}
	for k := 0; k < 5; k++ {
		sd := stdOf(ys[k])
		if sd < 1e-12 {
			sd = 1
		}
		out.scales[k] = sd
		scaled := make([]float64, len(ys[k]))
		for i, y := range ys[k] {
			scaled[i] = y / sd
		}
		kn := kernel.NewMatern52(2)
		p := kn.LogParams()
		p[1], p[2] = math.Log(0.4), math.Log(0.4)
		kn.SetLogParams(p)
		g := gp.New(kn, 1e-3)
		if err := g.Fit(xs, scaled); err != nil {
			panic(err)
		}
		out.gps[k] = g
	}
	return out
}

// predict returns the five posterior means (physical units) at cfg.
func (c *clipGPs) predict(cfg videosim.Config) [5]float64 {
	var out [5]float64
	x := encodeCfg(cfg)
	for k := 0; k < 5; k++ {
		mu, _ := c.gps[k].Predict(x)
		out[k] = mu * c.scales[k]
	}
	return out
}

func stdOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
