package exp

import (
	"reflect"
	"testing"
)

// TestShardScaleSmall runs the shard benchmark loop at toy size across shard
// counts: every run must finish without fallbacks or strict-mode violations
// (ShardScale panics on either), commit one plan per epoch per cell, and be
// exactly reproducible — the properties the committed BENCH_pr6.json rows
// depend on.
func TestShardScaleSmall(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		cfg := ShardConfig{Streams: 96, Servers: 12, Epochs: 3, Shards: shards}
		rep := ShardScale(cfg)
		if rep.Violations != 0 {
			t.Fatalf("shards=%d: %d strict-mode violations", shards, rep.Violations)
		}
		if rep.Fallbacks != 0 {
			t.Fatalf("shards=%d: %d serial fallbacks on a feasible workload", shards, rep.Fallbacks)
		}
		if want := shards * cfg.Epochs; rep.Commits != want {
			t.Fatalf("shards=%d: commits = %d, want %d (one per cell per epoch)", shards, rep.Commits, want)
		}
		if rep.CommLatencyS <= 0 {
			t.Fatalf("shards=%d: empty comm latency %v", shards, rep.CommLatencyS)
		}
		if again := ShardScale(cfg); !reflect.DeepEqual(rep, again) {
			t.Fatalf("shards=%d: shard bench not reproducible:\n%+v\n%+v", shards, rep, again)
		}
	}
}

// TestShardScaleRetryHistAccounts pins the retry histogram's accounting:
// every commit lands in exactly one retry bucket, so the histogram mass must
// equal the commit count.
func TestShardScaleRetryHistAccounts(t *testing.T) {
	rep := ShardScale(ShardConfig{Streams: 96, Servers: 12, Epochs: 3, Shards: 4})
	total := 0
	for _, n := range rep.RetryHist {
		total += n
	}
	if total != rep.Commits {
		t.Fatalf("retry histogram mass %d != commits %d", total, rep.Commits)
	}
}
