package exp

import (
	"io"
	"math"
)

// HeadlineStats reproduces the paper's §5.2 headline numbers: the range of
// PaMO's relative benefit improvement over each baseline, and its relative
// gap to PaMO+, computed across the cells of Figures 6 and 7.
type HeadlineStats struct {
	VsJCABMin, VsJCABMax float64 // percent improvement over JCAB
	VsFACTMin, VsFACTMax float64 // percent improvement over FACT
	GapToPlusMax         float64 // percent shortfall vs PaMO+ (worst cell)
	Cells                int
}

// Headline aggregates Fig6 and Fig7 rows. The paper reports up to 53.9%
// over JCAB, up to 26.5% over FACT, and errors of 0.0006%–11.26% vs PaMO+.
func Headline(w io.Writer, fig6 []Fig6Row, fig7 []Fig7Row) HeadlineStats {
	h := HeadlineStats{
		VsJCABMin: math.Inf(1), VsJCABMax: math.Inf(-1),
		VsFACTMin: math.Inf(1), VsFACTMax: math.Inf(-1),
	}
	consume := func(results []MethodResult) {
		var jcab, fact, pamo, plus *MethodResult
		for i := range results {
			switch results[i].Name {
			case "JCAB":
				jcab = &results[i]
			case "FACT":
				fact = &results[i]
			case "PaMO":
				pamo = &results[i]
			case "PaMO+":
				plus = &results[i]
			}
		}
		if pamo == nil || pamo.Err != nil {
			return
		}
		h.Cells++
		if jcab != nil && jcab.Err == nil && jcab.Norm > 0 {
			imp := 100 * (pamo.Norm - jcab.Norm) / jcab.Norm
			h.VsJCABMin = math.Min(h.VsJCABMin, imp)
			h.VsJCABMax = math.Max(h.VsJCABMax, imp)
		}
		if fact != nil && fact.Err == nil && fact.Norm > 0 {
			imp := 100 * (pamo.Norm - fact.Norm) / fact.Norm
			h.VsFACTMin = math.Min(h.VsFACTMin, imp)
			h.VsFACTMax = math.Max(h.VsFACTMax, imp)
		}
		if plus != nil && plus.Err == nil && plus.Norm > 0 {
			gap := 100 * (plus.Norm - pamo.Norm) / plus.Norm
			h.GapToPlusMax = math.Max(h.GapToPlusMax, gap)
		}
	}
	for _, r := range fig6 {
		consume(r.Results)
	}
	for _, r := range fig7 {
		consume(r.Results)
	}

	t := Table{
		Title:  "Headline (§5.2) — PaMO's relative benefit across all Fig. 6 + Fig. 7 cells",
		Header: []string{"comparison", "min_%", "max_%"},
	}
	t.Add("PaMO vs JCAB", h.VsJCABMin, h.VsJCABMax)
	t.Add("PaMO vs FACT", h.VsFACTMin, h.VsFACTMax)
	t.Add("shortfall vs PaMO+", 0.0, h.GapToPlusMax)
	t.Notes = append(t.Notes, "paper: up to 53.9% over JCAB, up to 26.5% over FACT, ≤ 11.26% below PaMO+")
	t.Fprint(w)
	return h
}
