package exp

import (
	"io"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/stats"
)

// NoiseConfig parameterizes the profiling-noise robustness study.
type NoiseConfig struct {
	Videos, Servers int
	Levels          []float64 // relative measurement noise std
	DMNoise         float64   // decision-maker response noise
	Reps            int
	Seed            uint64
	PaMOOpt         pamo.Options
}

// NoiseRow is one noise level's averaged result.
type NoiseRow struct {
	Noise   float64
	Benefit float64 // mean true benefit of PaMO's decision
	Iters   float64
}

// NoiseSensitivity extends the paper's sensitivity analysis (§5.4): PaMO's
// achieved true benefit as profiling measurement noise grows from clean to
// very noisy. The GP outcome models absorb moderate noise (that is the
// qNEI design point); heavy noise should degrade gracefully, not
// catastrophically.
func NoiseSensitivity(w io.Writer, cfg NoiseConfig) []NoiseRow {
	if cfg.Videos == 0 {
		cfg.Videos = 8
	}
	if cfg.Servers == 0 {
		cfg.Servers = 5
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = []float64{0.005, 0.02, 0.05, 0.1, 0.2}
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	truth := objective.UniformPreference()
	t := Table{
		Title:  "Sensitivity — PaMO vs profiling measurement noise",
		Header: []string{"noise_std", "benefit", "iterations"},
	}
	var rows []NoiseRow
	for _, lvl := range cfg.Levels {
		var sumB, sumI float64
		n := 0
		for rep := 0; rep < cfg.Reps; rep++ {
			sys := NewSystem(cfg.Videos, cfg.Servers, cfg.Seed+uint64(rep)*13)
			norm := objective.NewNormalizer(sys)
			opt := cfg.PaMOOpt
			opt.Seed = cfg.Seed + uint64(rep)
			opt.ProfilerNoise = lvl
			opt.UseEUBO = true
			dm := &pref.Oracle{Pref: truth, Noise: cfg.DMNoise, Rng: stats.NewRNG(cfg.Seed + uint64(rep))}
			res, err := pamo.New(sys, dm, opt).Run()
			if err != nil {
				continue
			}
			sumB += truth.Benefit(norm.Normalize(eva.Evaluate(sys, res.Best.Decision)))
			sumI += float64(res.Iters)
			n++
		}
		row := NoiseRow{Noise: lvl}
		if n > 0 {
			row.Benefit = sumB / float64(n)
			row.Iters = sumI / float64(n)
		}
		rows = append(rows, row)
		t.Add(lvl, row.Benefit, row.Iters)
	}
	t.Notes = append(t.Notes, "benefit is the Eq. 13 true benefit of the deployed decision (uniform weights; higher is better)")
	t.Fprint(w)
	return rows
}
