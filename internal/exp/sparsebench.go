package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/acq"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/pamo"
)

// SparseScaleConfig sizes the 10×-observation scale scenario for the
// sparse-BO work: every outcome GP is conditioned on ObsScale× the usual
// profiling budget before the BO loop starts, which pushes the exact GP's
// cubic factorizations and quadratic per-observation updates into the solve's
// critical path. The scenario then re-solves the same instance for Epochs
// epochs (the fleet nightly-replan pattern), which is where the cross-epoch
// acquisition draw cache earns its keep.
type SparseScaleConfig struct {
	Videos  int // default 6
	Servers int // default 4
	// ObsScale multiplies the paper-default profiling budget of 24
	// configurations per clip (default 10 → 240 points per metric GP).
	ObsScale int
	Epochs   int // re-solve epochs over the identical instance (default 2)
	Inducing int // inducing cap m for the sparse models (default 64)
	MaxIter  int // BO iteration cap per epoch (default 5)
	Seed     uint64
	// Exact selects exact GPs with fresh acquisition draws every epoch —
	// the "before" path the benchmark compares against. The default (false)
	// runs inducing-point sparse models with the MaxObs forgetting budget
	// pinned to the initial profile count, plus cross-epoch draw reuse.
	Exact bool
	// Fast shrinks the instance for CI smoke (fewer clips, shorter loop)
	// while keeping the 10× observation scale that the speedup gate is
	// defined at.
	Fast bool
}

func (c SparseScaleConfig) withDefaults() SparseScaleConfig {
	if c.Videos == 0 {
		c.Videos = 6
		if c.Fast {
			c.Videos = 3
		}
	}
	if c.Servers == 0 {
		c.Servers = 4
		if c.Fast {
			c.Servers = 3
		}
	}
	if c.ObsScale == 0 {
		c.ObsScale = 10
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.Inducing == 0 {
		c.Inducing = 64
	}
	if c.MaxIter == 0 {
		c.MaxIter = 5
		if c.Fast {
			c.MaxIter = 3
		}
	}
	if c.Seed == 0 {
		c.Seed = 2024
	}
	return c
}

// SparseScaleReport aggregates one scale run. The GP lifecycle counters
// come from the scheduler's gp_* metrics; DrawsReused counts acquisition
// rounds served from the cross-epoch draw cache instead of a fresh joint
// sampling pass.
type SparseScaleReport struct {
	Videos, Servers, Epochs int
	ObsPerClip              int // initial profiling observations per clip
	Inducing                int // inducing cap (0 for the exact path)
	Benefit                 float64
	Iters                   int // BO iterations of the last epoch
	GPObs                   uint64
	GPInducing              uint64
	GPForgets               uint64
	DrawsReused             uint64
}

// sparseScaleOpts builds the PaMO option set for one scale epoch. The run
// uses the true preference (PaMO+ mode), so the benefit difference between
// the exact and sparse paths isolates the outcome-model approximation
// rather than preference-learning noise.
func sparseScaleOpts(cfg SparseScaleConfig, rec *obs.Recorder) pamo.Options {
	opt := pamo.Options{
		InitProfiles: 24 * cfg.ObsScale, InitObs: 3,
		PrefPairs: 8, PrefPool: 10,
		Batch: 2, MCSamples: 16, CandPool: 12, MaxIter: cfg.MaxIter,
		Seed:        cfg.Seed,
		UseTruePref: true, TruePref: objective.UniformPreference(),
		Obs: rec,
	}
	if !cfg.Exact {
		opt.Sparse = true
		opt.SparseInducing = cfg.Inducing
		// Pin the model budget at the initial profile count: every BO
		// observation beyond it displaces the retained point whose
		// leave-one-out impact on the incumbent's posterior is smallest.
		opt.SparseMaxObs = opt.InitProfiles
	}
	return opt
}

// SparseScale runs the 10×-observation scale scenario once: Epochs
// identical re-solves of one instance, exact models + fresh draws when
// cfg.Exact, sparse models + the shared draw cache otherwise. Epoch results
// are byte-identical across epochs (same seed, same system), so on the
// sparse path every epoch after the first reuses the cached joint draws.
func SparseScale(cfg SparseScaleConfig) (SparseScaleReport, error) {
	cfg = cfg.withDefaults()
	sys := NewSystem(cfg.Videos, cfg.Servers, cfg.Seed)
	norm := objective.NewNormalizer(sys)
	rec := obs.NewRecorder(nil)
	opt := sparseScaleOpts(cfg, rec)
	if !cfg.Exact {
		opt.ReuseDraws = true
		opt.Draws = acq.NewDrawCache(0)
	}

	var last *pamo.Result
	for e := 0; e < cfg.Epochs; e++ {
		res, err := pamo.New(sys, nil, opt).Run()
		if err != nil {
			return SparseScaleReport{}, fmt.Errorf("sparse scale epoch %d: %w", e, err)
		}
		last = res
	}

	reg := rec.Registry()
	rep := SparseScaleReport{
		Videos: cfg.Videos, Servers: cfg.Servers, Epochs: cfg.Epochs,
		ObsPerClip:  opt.InitProfiles,
		Benefit:     opt.TruePref.Benefit(norm.Normalize(last.Best.Raw)),
		Iters:       last.Iters,
		GPObs:       reg.Counter("gp_obs_total").Value(),
		GPInducing:  reg.Counter("gp_inducing_total").Value(),
		GPForgets:   reg.Counter("gp_forget_total").Value(),
		DrawsReused: reg.Counter("acq_draws_reused_total").Value(),
	}
	if !cfg.Exact {
		rep.Inducing = cfg.Inducing
	}
	return rep, nil
}

// AblationSparseConfig parameterizes the regret-vs-exact ablation: the
// same 10×-observation instance solved with exact outcome models and with
// sparse models across inducing budgets.
type AblationSparseConfig struct {
	Videos, Servers int
	ObsScale        int
	Budgets         []int // inducing budgets m (default {8, 16, 32, 64})
	Reps            int   // default 3
	Seed            uint64
	Fast            bool
}

// AblationSparseRow is one inducing budget's paired comparison against the
// exact reference on identical instances. Regret is the mean true-benefit
// gap exact − sparse (negative means the sparse run found a better point);
// Speedup is exact wall time over sparse wall time at this budget.
type AblationSparseRow struct {
	Inducing int // 0 = the exact reference row
	Benefit  float64
	Regret   float64
	Seconds  float64
	Speedup  float64
	Forgets  uint64
}

// AblationSparse sweeps the inducing budget on the 10×-observation
// instance. Each budget solves the same Reps instances as the exact
// reference (paired seeds), so regret is a paired difference, not a
// cross-instance one.
func AblationSparse(w io.Writer, cfg AblationSparseConfig) []AblationSparseRow {
	if cfg.Reps == 0 {
		cfg.Reps = 3
		if cfg.Fast {
			cfg.Reps = 1
		}
	}
	if len(cfg.Budgets) == 0 {
		cfg.Budgets = []int{8, 16, 32, 64}
		if cfg.Fast {
			cfg.Budgets = []int{16, 64}
		}
	}

	run := func(rep int, exact bool, m int) (float64, float64, uint64) {
		c := SparseScaleConfig{
			Videos: cfg.Videos, Servers: cfg.Servers, ObsScale: cfg.ObsScale,
			Epochs: 1, Inducing: m, Seed: cfg.Seed + uint64(rep)*997,
			Exact: exact, Fast: cfg.Fast,
		}
		t0 := time.Now()
		r, err := SparseScale(c)
		if err != nil {
			// The ablation is comparative; a failed rep contributes a
			// zero-benefit row rather than aborting the sweep.
			return 0, time.Since(t0).Seconds(), 0
		}
		return r.Benefit, time.Since(t0).Seconds(), r.GPForgets
	}

	exactB := make([]float64, cfg.Reps)
	var exactRow AblationSparseRow
	for rep := 0; rep < cfg.Reps; rep++ {
		b, s, _ := run(rep, true, 0)
		exactB[rep] = b
		exactRow.Benefit += b / float64(cfg.Reps)
		exactRow.Seconds += s / float64(cfg.Reps)
	}
	exactRow.Speedup = 1
	rows := []AblationSparseRow{exactRow}

	for _, m := range cfg.Budgets {
		var row AblationSparseRow
		row.Inducing = m
		for rep := 0; rep < cfg.Reps; rep++ {
			b, s, forgets := run(rep, false, m)
			row.Benefit += b / float64(cfg.Reps)
			row.Regret += (exactB[rep] - b) / float64(cfg.Reps)
			row.Seconds += s / float64(cfg.Reps)
			row.Forgets += forgets
		}
		row.Speedup = exactRow.Seconds / row.Seconds
		rows = append(rows, row)
	}

	t := Table{
		Title: fmt.Sprintf(
			"Ablation — sparse outcome models vs exact at 10x observations (%d reps; regret = exact − sparse true benefit)",
			cfg.Reps),
		Header: []string{"model", "benefit", "regret", "seconds", "speedup", "forgets"},
	}
	for _, r := range rows {
		name := "exact"
		if r.Inducing > 0 {
			name = fmt.Sprintf("sparse m=%d", r.Inducing)
		}
		t.Add(name, r.Benefit, r.Regret, r.Seconds, r.Speedup, r.Forgets)
	}
	t.Notes = append(t.Notes,
		"sparse rows run the MaxObs forgetting budget pinned at the initial profile count",
		"speedup is exact wall time / sparse wall time on this host; BENCH_pr10.json pins the benchmarked ratio")
	t.Fprint(w)
	return rows
}
