package exp

import (
	"io"
	"math"
	"testing"
)

// TestSparseScaleLifecycle runs the CI shape of the 10×-observation scale
// scenario both ways and pins the semantics the BENCH_pr10 gates rely on:
// the sparse path actually runs sparse models (inducing adds and MaxObs
// forgets happen), actually reuses cached draws on the repeated epoch, and
// stays close to the exact run's true benefit on the same instance.
func TestSparseScaleLifecycle(t *testing.T) {
	exact, err := SparseScale(SparseScaleConfig{Fast: true, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if exact.GPInducing != 0 || exact.GPForgets != 0 || exact.DrawsReused != 0 {
		t.Fatalf("exact path moved sparse counters: %+v", exact)
	}
	if exact.GPObs == 0 || !isFinite(exact.Benefit) {
		t.Fatalf("exact run implausible: %+v", exact)
	}

	sparse, err := SparseScale(SparseScaleConfig{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.GPObs != exact.GPObs {
		t.Fatalf("paths fed different observation counts: sparse %d exact %d",
			sparse.GPObs, exact.GPObs)
	}
	if sparse.GPInducing == 0 {
		t.Fatal("sparse run promoted no inducing points")
	}
	if sparse.GPForgets == 0 {
		t.Fatal("MaxObs budget never forgot an observation")
	}
	if sparse.DrawsReused == 0 {
		t.Fatal("repeated epoch reused no cached draws")
	}
	if sparse.Inducing == 0 {
		t.Fatalf("sparse report lost its inducing cap: %+v", sparse)
	}
	// The model approximation may move the chosen schedule, but not far:
	// the bound is loose on purpose — FuzzSparseVsExactGP owns the tight
	// posterior comparison, this test owns end-to-end sanity.
	if d := math.Abs(sparse.Benefit - exact.Benefit); d > 0.15 {
		t.Fatalf("sparse benefit %v vs exact %v diverged by %v", sparse.Benefit, exact.Benefit, d)
	}
}

// TestAblationSparseRuns exercises the regret-vs-exact sweep at its
// smallest shape: one exact reference row plus one row per budget, paired
// regret consistent with the row benefits.
func TestAblationSparseRuns(t *testing.T) {
	rows := AblationSparse(io.Discard, AblationSparseConfig{
		Budgets: []int{16}, Reps: 1, Fast: true,
	})
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want exact + 1 budget", len(rows))
	}
	if rows[0].Inducing != 0 || rows[0].Speedup != 1 {
		t.Fatalf("first row is not the exact reference: %+v", rows[0])
	}
	r := rows[1]
	if r.Inducing != 16 {
		t.Fatalf("budget row carries m=%d, want 16", r.Inducing)
	}
	if got := rows[0].Benefit - r.Benefit; math.Abs(got-r.Regret) > 1e-12 {
		t.Fatalf("regret %v inconsistent with benefits (want %v)", r.Regret, got)
	}
	if r.Forgets == 0 {
		t.Fatal("sparse ablation row never forgot an observation")
	}
	if r.Seconds <= 0 || rows[0].Seconds <= 0 {
		t.Fatalf("non-positive wall times: %+v", rows)
	}
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
