package exp

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/stats"
)

// ShardConfig sizes the sharded control-plane scaling benchmark: a cluster
// another order of magnitude past the fleet bench (4096 streams × 256
// servers by default) solved repeatedly under drift at a given shard count.
// The benchmark measures the scheduling solve alone — no DES — because the
// question it answers is how the control plane itself scales.
type ShardConfig struct {
	Streams int // pre-split stream count (default 4096)
	Servers int // default 256
	Epochs  int // solves per run, each on drifted costs (default 4)
	Shards  int // cells (default 1 = the serial baseline)
	Seed    uint64
}

func (c ShardConfig) withDefaults() ShardConfig {
	if c.Streams == 0 {
		c.Streams = 4096
	}
	if c.Servers == 0 {
		c.Servers = 256
	}
	if c.Epochs == 0 {
		c.Epochs = 4
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Seed == 0 {
		c.Seed = 2024
	}
	return c
}

// ShardReport aggregates one run: protocol stats summed over epochs plus
// the strict-mode violation count (always zero, or the run panicked).
type ShardReport struct {
	Streams, Servers, Epochs, Shards int
	Conflicts, Retries, Commits      int
	Rounds, Fallbacks                int
	RetryHist                        [8]int // commits by retry count, last bucket 7+
	CommLatencyS                     float64
	Violations                       uint64
}

// shardWorkload builds the deterministic 4096×256-class workload: harmonic
// periods, per-frame costs sized for ~60% of the tightest per-group budget
// at 16 streams/server, heterogeneous uplinks. Deliberately denser in
// streams and sparser in per-stream cost than the fleet workload, so
// placement pressure comes from packing many small claims, the regime where
// cross-cell conflicts are interesting.
func shardWorkload(cfg ShardConfig) ([]sched.Stream, []cluster.Server) {
	rng := stats.NewRNG(cfg.Seed)
	fps := []int64{30, 15, 10, 6, 5}
	streams := make([]sched.Stream, cfg.Streams)
	for i := range streams {
		p := sched.RatFromFPS(fps[rng.IntN(len(fps))])
		streams[i] = sched.Stream{
			Video:  i,
			Period: p,
			Proc:   (1.0 / 30) * (0.01 + 0.07*rng.Float64()),
			Bits:   1e5 * (1 + 9*rng.Float64()),
		}
	}
	servers := make([]cluster.Server, cfg.Servers)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: 20e6 * float64(1+rng.IntN(5))}
	}
	return streams, servers
}

// ShardScale runs the sharded control-plane benchmark loop once: each epoch
// drifts the per-frame costs (the same bounded modulation as the fleet
// bench, planned with the same worst-case margin) and solves the full
// placement through shard.Planner at the configured shard count. Every
// epoch's committed plan is audited by a strict exact-constraint checker —
// a Const1/Const2 violation on any shared server panics the benchmark.
func ShardScale(cfg ShardConfig) ShardReport {
	cfg = cfg.withDefaults()
	base, servers := shardWorkload(cfg)
	rep := ShardReport{Streams: cfg.Streams, Servers: cfg.Servers, Epochs: cfg.Epochs, Shards: cfg.Shards}

	chk := check.New(true, nil)
	pl := shard.New(shard.Options{Shards: cfg.Shards, Check: chk})
	streams := make([]sched.Stream, len(base))
	planning := make([]sched.Stream, len(base))
	var split []sched.Stream
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		fleetDrift(streams, base, epoch)
		fleetPlanStreams(planning, base, streams)
		if split == nil {
			split = sched.SplitHighRate(planning)
		} else {
			for k := range split {
				split[k].Bits = planning[split[k].Video].Bits
			}
		}
		snap := sched.NewSnapshot(uint64(epoch), servers, nil)
		plan, st, err := pl.Plan(split, snap)
		if err != nil {
			panic("exp: shard bench: " + err.Error())
		}
		rep.Conflicts += st.Conflicts
		rep.Retries += st.Retries
		rep.Commits += st.Commits
		rep.Rounds += st.Rounds
		if st.FellBack {
			rep.Fallbacks++
		}
		for b, n := range st.RetryHist {
			rep.RetryHist[b] += n
		}
		rep.CommLatencyS += plan.CommLatency
	}
	rep.Violations = chk.Violations()
	if rep.Violations != 0 {
		panic(fmt.Sprintf("exp: shard bench: %d strict-mode violations", rep.Violations))
	}
	return rep
}
