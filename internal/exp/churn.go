package exp

import (
	"context"
	"fmt"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/pamo"
	"repro/internal/pref"
	"repro/internal/runtime"
)

// ChurnConfig sizes the diurnal churn scenario: a 24-hour day of stream
// arrivals and departures over a heterogeneous-speed edge cluster, driven
// through the fault-tolerant controller with the incremental admit/evict
// fast path and the warm-started model bank enabled, audited end to end by
// a strict checker. This is the closing scenario for the churn work: most
// churn epochs must be absorbed without a full Algorithm 1 + profiling
// resolve, and arrivals must reach steady-state quality on a fraction of
// the cold profiling budget.
type ChurnConfig struct {
	Videos       int     // initial streams (default 4)
	Servers      int     // default 5
	Epochs       int     // default 96 — a day at 15-minute epochs
	PeriodEpochs int     // diurnal period (default Epochs: one full day)
	Rate         float64 // peak churn events/epoch (default 1.0 = 2× nominal)
	ReplanEvery  int     // scheduled replan cadence (default 8)
	FullEvery    int     // full configuration-refresh cadence (default 24: every 6h)
	Seed         uint64  // default 77
	// Cold disables everything the churn work added on top of the
	// controller: no incremental admit/evict fast path, no periodic-refresh
	// split, no model bank — every churn epoch invalidates the decision and
	// pays a full Algorithm 2 resolve with cold profiling. The benchmark's
	// before/after comparison runs the same day both ways.
	Cold bool
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Videos == 0 {
		c.Videos = 4
	}
	if c.Servers == 0 {
		c.Servers = 5
	}
	if c.Epochs == 0 {
		c.Epochs = 96
	}
	if c.PeriodEpochs == 0 {
		c.PeriodEpochs = c.Epochs
	}
	if c.Rate == 0 {
		// The fault generator's nominal peak rate is 0.5; the stress
		// scenario doubles it.
		c.Rate = 1.0
	}
	if c.ReplanEvery == 0 {
		c.ReplanEvery = 8
	}
	if c.FullEvery == 0 {
		c.FullEvery = 24
	}
	if c.Seed == 0 {
		c.Seed = 77
	}
	return c
}

// churnSpeeds is the heterogeneous speed-class set the scenario cycles
// across servers. Every value is dyadic, so the speed-scaled Const2
// arithmetic stays exact.
var churnSpeeds = []float64{1, 1.5, 0.75, 2, 1.25}

// ChurnReport aggregates one churn run. AdmitHitRate is the fraction of
// churn epochs absorbed by the admit/evict fast path (no full resolve);
// the warm/cold counters record how arrivals seeded their outcome models.
type ChurnReport struct {
	Videos, Servers, Epochs int
	FinalStreams            int
	ChurnOps                int
	ChurnEpochs             int
	FastEpochs              int
	ResolveEpochs           int
	AdmitHitRate            float64
	FullReplans             int
	IncrementalReplans      int
	BankHits                int
	WarmStarts              int
	ColdStarts              int
	Profiles                int
	MeanBenefit             float64
	DegradedEpochs          int
}

// Churn runs the 24h diurnal churn scenario once. The strict checker makes
// every installed decision a hard assertion: any exact-feasibility
// violation — including the speed-scaled Const2 on the fast-path admissions
// — aborts the run with an error.
func Churn(cfg ChurnConfig) (ChurnReport, error) {
	cfg = cfg.withDefaults()
	sys := NewSystem(cfg.Videos, cfg.Servers, cfg.Seed)
	for j := range sys.Servers {
		sys.Servers[j].SpeedFactor = churnSpeeds[j%len(churnSpeeds)]
	}
	names := make([]string, len(sys.Clips))
	for i, clip := range sys.Clips {
		names[i] = clip.Name
	}
	script := fault.GenerateChurn(fault.ChurnOptions{
		Epochs:       cfg.Epochs,
		Initial:      names,
		Rate:         cfg.Rate,
		PeriodEpochs: cfg.PeriodEpochs,
		MaxStreams:   2 * cfg.Videos,
		Seed:         cfg.Seed,
	})

	rec := obs.NewRecorder(nil)
	defer rec.Close()
	chk := check.New(true, rec)
	truth := objective.UniformPreference()
	popt := churnPamoOpts(cfg.Seed, chk, rec)
	ropt := runtime.Options{
		ReplanEvery:      cfg.ReplanEvery,
		Incremental:      true,
		FullResolveEvery: cfg.FullEvery,
		Check:            chk,
	}
	if cfg.Cold {
		popt.Models = nil
		ropt.Incremental = false
		ropt.FullResolveEvery = 0
	}
	ctl := &runtime.Controller{
		Sys:   sys,
		Sched: &runtime.PaMOScheduler{DM: &pref.Oracle{Pref: truth}, Opt: popt},
		Truth: truth,
		Norm:  objective.NewNormalizer(sys),
		Opt:   ropt,
		Ops:   runtime.NewChurnFeed(script, cfg.Seed),
		Obs:   rec,
	}
	trace, err := ctl.Run(context.Background(), cfg.Epochs)
	if err != nil {
		return ChurnReport{}, fmt.Errorf("exp: churn run: %w", err)
	}

	reg := rec.Registry()
	cv := func(name string) int { return int(reg.Counter(name).Value()) }
	rep := ChurnReport{
		Videos:             cfg.Videos,
		Servers:            cfg.Servers,
		Epochs:             len(trace.Reports),
		FinalStreams:       sys.M(),
		ChurnOps:           cv("runtime_churn_ops_total"),
		ChurnEpochs:        cv("runtime_churn_epochs_total"),
		FastEpochs:         cv("runtime_churn_fast_total"),
		ResolveEpochs:      cv("runtime_churn_resolve_total"),
		FullReplans:        cv("runtime_replans_total") - cv("runtime_replans_incremental_total"),
		IncrementalReplans: cv("runtime_replans_incremental_total"),
		BankHits:           cv("pamo_bank_hits_total"),
		WarmStarts:         cv("pamo_warm_starts_total"),
		ColdStarts:         cv("pamo_cold_starts_total"),
		Profiles:           cv("pamo_profiles_total"),
		DegradedEpochs:     cv("runtime_degraded_epochs_total"),
		MeanBenefit:        trace.MeanBenefit(),
	}
	if total := rep.FastEpochs + rep.ResolveEpochs; total > 0 {
		rep.AdmitHitRate = float64(rep.FastEpochs) / float64(total)
	}
	return rep, nil
}

// churnPamoOpts is the optimizer budget for the scenario's full resolves:
// small enough that a day-long run finishes quickly, with the model bank
// enabled so every resolve warm-starts arrivals from the clips already
// profiled and keeps previously conditioned models across replans.
func churnPamoOpts(seed uint64, chk *check.Checker, rec *obs.Recorder) pamo.Options {
	return pamo.Options{
		InitProfiles: 10, InitObs: 2, PrefPairs: 6, PrefPool: 8,
		Batch: 2, MCSamples: 8, CandPool: 6, MaxIter: 2,
		Seed:   seed,
		Models: pamo.NewBank(),
		Check:  chk,
		Obs:    rec,
	}
}
