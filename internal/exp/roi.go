package exp

import (
	"io"

	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/pamo"
)

// ROIConfig parameterizes the adaptive-encoding extension experiment.
type ROIConfig struct {
	Videos, Servers int
	Reps            int
	Seed            uint64
	PaMOOpt         pamo.Options
}

// ROIRow is one variant's averaged result.
type ROIRow struct {
	Variant string
	Benefit float64
	Energy  float64
	Network float64
	Acc     float64
}

// ROI runs the paper's proposed extension (conclusion: "adaptive encoding
// and segmented inference to further improve video analysis performance
// and resource efficiency"): PaMO+ searching the standard two-knob space
// versus the same search with the region-of-interest fraction as a third
// knob, under a resource-heavy preference where trimming background pixels
// should pay.
func ROI(w io.Writer, cfg ROIConfig) []ROIRow {
	if cfg.Videos == 0 {
		cfg.Videos = 8
	}
	if cfg.Servers == 0 {
		cfg.Servers = 5
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	truth := objective.UniformPreference()
	truth.W[objective.Network] = 2
	truth.W[objective.Energy] = 2

	t := Table{
		Title:  "Extension — ROI (adaptive encoding + segmented inference) as a third knob",
		Header: []string{"variant", "benefit", "power_W", "uplink_Mbps", "mAP"},
	}
	variants := []struct {
		name string
		grid []float64
	}{
		{"full-frame (paper)", nil},
		{"ROI {0.5, 0.75, 1}", []float64{0.5, 0.75, 1}},
	}
	var rows []ROIRow
	for _, v := range variants {
		var row ROIRow
		row.Variant = v.name
		n := 0
		for rep := 0; rep < cfg.Reps; rep++ {
			sys := NewSystem(cfg.Videos, cfg.Servers, cfg.Seed+uint64(rep)*23)
			norm := objective.NewNormalizer(sys)
			opt := cfg.PaMOOpt
			opt.Seed = cfg.Seed + uint64(rep)
			opt.UseTruePref = true
			opt.TruePref = truth
			opt.ROIGrid = v.grid
			res, err := pamo.New(sys, nil, opt).Run()
			if err != nil {
				continue
			}
			out := eva.Evaluate(sys, res.Best.Decision)
			row.Benefit += truth.Benefit(norm.Normalize(out))
			row.Energy += out[objective.Energy]
			row.Network += out[objective.Network] / 1e6
			row.Acc += out[objective.Accuracy]
			n++
		}
		if n > 0 {
			row.Benefit /= float64(n)
			row.Energy /= float64(n)
			row.Network /= float64(n)
			row.Acc /= float64(n)
		}
		rows = append(rows, row)
		t.Add(row.Variant, row.Benefit, row.Energy, row.Network, row.Acc)
	}
	t.Notes = append(t.Notes, "preference: network and energy weighted 2×; the ROI knob trades a small mAP loss for large resource savings")
	t.Fprint(w)
	return rows
}
