package exp

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/videosim"
)

// Fig2 reproduces the profiling surfaces of Figure 2: the five outcome
// metrics of two MOT16-like clips across the (resolution, fps) grid at a
// 100 Mbps link — the ground truth ("actual measured data") side by side
// with a GP fit trained on noisy profiling runs ("the fitted surface").
func Fig2(w io.Writer, seed uint64) []Table {
	clips := videosim.StandardClips(2, seed)
	const linkBps = 100e6
	var tables []Table
	for ci, clip := range clips {
		rng := stats.NewRNG(seed + uint64(ci) + 1)
		prof := videosim.NewProfiler(0.02, rng)
		gps := newTrainedClipGPs(clip, prof, 300, rng)
		t := Table{
			Title: "Figure 2 — outcome surfaces for " + clip.Name,
			Header: []string{"resolution", "fps", "mAP", "fit_mAP",
				"e2e_latency_s", "bandwidth_Mbps", "fit_Mbps", "compute_TFLOPS", "power_W"},
		}
		for _, r := range videosim.Resolutions {
			for _, s := range videosim.FrameRates {
				cfg := videosim.Config{Resolution: r, FPS: s}
				lat := clip.ProcTime(r) + clip.BitsPerFrame(r)/linkBps
				fit := gps.predict(cfg)
				t.Add(r, s, clip.Accuracy(cfg), fit[1], lat,
					clip.Bandwidth(cfg)/1e6, fit[2]/1e6, clip.Compute(cfg), clip.Power(cfg))
			}
		}
		t.Notes = append(t.Notes,
			"latency is per-frame (uncontended); it is independent of fps as in the paper's second panel",
			"fit_* columns are GP surfaces trained on 300 noisy profiling runs (the paper's fitted surfaces)")
		tables = append(tables, t)
	}
	for i := range tables {
		tables[i].Fprint(w)
	}
	return tables
}

// Fig3 reproduces Figure 3(a): latency accumulation when two streams
// contend on one server. Video 1 runs at 5 fps and Video 2 at 10 fps with
// per-frame times that exceed the server's capacity, so each successive
// frame of Video 2 waits longer.
func Fig3(w io.Writer) Table {
	streams := []cluster.StreamSpec{
		{Name: "video1(5fps)", Period: 0.2, Proc: 0.1},
		{Name: "video2(10fps)", Period: 0.1, Proc: 0.08},
	}
	res := cluster.SimulateServer(streams, cluster.Server{Uplink: 0}, 2.0)
	t := Table{
		Title:  "Figure 3(a) — latency accumulation under resource contention",
		Header: []string{"frame", "stream", "capture_s", "start_s", "finish_s", "latency_s", "wait_s"},
	}
	for i, f := range res.Frames {
		name := streams[f.Stream].Name
		t.Add(i, name, f.Capture, f.Start, f.Finish, f.Latency(), f.Wait())
	}
	t.Notes = append(t.Notes,
		"Σ p·s = 0.5 + 0.8 = 1.3 > 1: per-frame waits grow without bound, as in the paper's Figure 3(a)")
	t.Fprint(w)
	return t
}

// Fig4 reproduces Figure 4: pairing streams with mismatched periods causes
// delay jitter even at feasible utilization (videos 1+3), while the
// harmonic pairing (videos 1+2) is jitter-free under Theorem 1 offsets.
func Fig4(w io.Writer) Table {
	v1 := cluster.StreamSpec{Name: "video1", Period: 0.2, Proc: 0.08}
	v2 := cluster.StreamSpec{Name: "video2", Period: 0.4, Proc: 0.10}
	v3 := cluster.StreamSpec{Name: "video3", Period: 0.3, Proc: 0.10}
	srv := cluster.Server{Uplink: 0}

	t := Table{
		Title:  "Figure 4 — delay jitter from poor grouping",
		Header: []string{"grouping", "gcd_of_periods_s", "sum_proc_s", "const2_ok", "max_jitter_s", "max_wait_s"},
	}
	add := func(label string, a, b cluster.StreamSpec, gcd float64) {
		sum := a.Proc + b.Proc
		specs := cluster.ZeroJitterOffsets([]cluster.StreamSpec{a, b}, srv.Uplink)
		res := cluster.SimulateServer(specs, srv, 60)
		t.Add(label, gcd, sum, sum <= gcd, res.MaxJitter, res.MaxWait)
	}
	add("video1+video2 (harmonic)", v1, v2, 0.2)
	add("video1+video3 (mismatched)", v1, v3, 0.1)
	t.Notes = append(t.Notes,
		"Const2 (Σp ≤ gcd of periods) separates the jitter-free pairing from the jittering one")
	t.Fprint(w)
	return t
}

// Fig3Timeline returns the per-frame latency series of the contended
// stream, used by tests to assert monotone accumulation.
func Fig3Timeline() []float64 {
	streams := []cluster.StreamSpec{
		{Period: 0.2, Proc: 0.1},
		{Period: 0.1, Proc: 0.08},
	}
	res := cluster.SimulateServer(streams, cluster.Server{Uplink: 0}, 3.0)
	var lat []float64
	for _, f := range res.Frames {
		if f.Stream == 1 {
			lat = append(lat, f.Latency())
		}
	}
	return lat
}
