package exp

import (
	"io"
	"time"

	"repro/internal/sched"
	"repro/internal/stats"
)

// FeasibilityConfig parameterizes the heuristic-vs-exact grouping study.
type FeasibilityConfig struct {
	Instances int // random instances per (m, n) cell (default 200)
	Seed      uint64
}

// FeasibilityRow summarizes one (streams, servers) cell.
type FeasibilityRow struct {
	Streams, Servers int
	BothFeasible     int
	ExactOnly        int // exact feasible, heuristic rejected (Theorem 3 gap)
	BothInfeasible   int
	HeurOnly         int // must stay 0: heuristic ⊆ exact
	HeurNanos        int64
	ExactNanos       int64
}

// Feasibility measures how often Algorithm 1's Theorem-3 grouping rejects
// instances that are actually Const2-feasible (found by the exact
// branch-and-bound), and the runtime gap between the two. This quantifies
// the price of the paper's polynomial-time heuristic.
func Feasibility(w io.Writer, cfg FeasibilityConfig) []FeasibilityRow {
	if cfg.Instances == 0 {
		cfg.Instances = 200
	}
	fpsChoices := []int64{5, 6, 10, 15, 25, 30}
	cells := [][2]int{{4, 2}, {6, 3}, {8, 4}, {10, 5}}
	t := Table{
		Title:  "Heuristic (Algorithm 1) vs exact Const2 grouping — feasibility and runtime",
		Header: []string{"streams", "servers", "both_feasible", "exact_only", "both_infeasible", "heur_only", "heur_us", "exact_us"},
	}
	var rows []FeasibilityRow
	for _, cell := range cells {
		m, n := cell[0], cell[1]
		row := FeasibilityRow{Streams: m, Servers: n}
		rng := stats.NewRNG(cfg.Seed + uint64(m*100+n))
		for inst := 0; inst < cfg.Instances; inst++ {
			streams := make([]sched.Stream, m)
			for i := range streams {
				fps := fpsChoices[rng.IntN(len(fpsChoices))]
				period := sched.RatFromFPS(fps)
				streams[i] = sched.Stream{
					Video:  i,
					Period: period,
					// 5–40% of the own-period budget: a mix of feasible and
					// infeasible instances once several streams share a
					// group's gcd budget.
					Proc: period.Float() * (0.05 + 0.35*rng.Float64()),
					Bits: 1e5,
				}
			}
			t0 := time.Now()
			_, hErr := sched.GroupStreams(streams, n)
			row.HeurNanos += time.Since(t0).Nanoseconds()
			t0 = time.Now()
			_, exOK := sched.ExactGroup(streams, n)
			row.ExactNanos += time.Since(t0).Nanoseconds()
			switch {
			case hErr == nil && exOK:
				row.BothFeasible++
			case hErr == nil && !exOK:
				row.HeurOnly++
			case hErr != nil && exOK:
				row.ExactOnly++
			default:
				row.BothInfeasible++
			}
		}
		rows = append(rows, row)
		inst := float64(cfg.Instances)
		t.Add(m, n, row.BothFeasible, row.ExactOnly, row.BothInfeasible, row.HeurOnly,
			float64(row.HeurNanos)/1e3/inst, float64(row.ExactNanos)/1e3/inst)
	}
	t.Notes = append(t.Notes,
		"heur_only must be 0 (Theorem 3 ⊆ Const2); exact_only is the feasibility the heuristic gives up for polynomial time")
	t.Fprint(w)
	return rows
}
