// Package pamo implements the paper's core contribution: the
// preference-aware multi-objective Bayesian-optimization scheduler
// (Algorithm 2). It owns per-clip Gaussian-process outcome models, the
// preference model learned from decision-maker comparisons, the zero-jitter
// scheduling of Algorithm 1, and the qNEI-driven solution search.
package pamo

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/check"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/videosim"
)

// metric indexes the per-clip quantities the profiler can measure and the
// outcome models must learn.
type metric int

const (
	mAcc  metric = iota // mAP
	mProc               // per-frame processing time (s)
	mBits               // encoded frame size (bits)
	mComp               // computing power (TFLOPS)
	mPow                // power (W)
	numMetrics
)

// encodeCfg maps a configuration onto the GP input space [0,1]³
// (resolution, fps, ROI fraction — the last constant at 1 unless the ROI
// extension is enabled).
func encodeCfg(c videosim.Config) []float64 {
	rLo := videosim.Resolutions[0]
	rHi := videosim.Resolutions[len(videosim.Resolutions)-1]
	sLo := videosim.FrameRates[0]
	sHi := videosim.FrameRates[len(videosim.FrameRates)-1]
	roi := c.ROI
	if roi <= 0 || roi > 1 {
		roi = 1
	}
	return []float64{
		(c.Resolution - rLo) / (rHi - rLo),
		(c.FPS - sLo) / (sHi - sLo),
		roi,
	}
}

// metricGP is a GP over the encoded configuration space with target
// standardization, so kernel variance ≈ 1 regardless of the metric's
// physical scale.
type metricGP struct {
	g     *gp.GP
	cache *gp.CrossCache // memoized k(x, X) for pool scoring across iterations
	scale float64
	xs    [][]float64
	ys    []float64
	// cholInc/cholFull count which refit path conditioned the GP:
	// incremental Cholesky extensions vs full refactorizations. Nil (the
	// untelemetered default) is a no-op.
	cholInc  *obs.Counter
	cholFull *obs.Counter
	// chk, when non-nil, verifies the posterior after every incremental
	// Cholesky extension (finite means, PSD covariance at the new inputs).
	chk *check.Checker
}

// newMetricGP builds one outcome GP. mvn, when non-nil, receives this
// model's posterior-sampling fallbacks so the owning scheduler can
// attribute them to itself (see gp.SetFallbackCounter).
func newMetricGP(mvn *atomic.Uint64, cholInc, cholFull *obs.Counter, chk *check.Checker) *metricGP {
	k := kernel.NewMatern52(3)
	p := k.LogParams()
	p[1], p[2], p[3] = math.Log(0.4), math.Log(0.4), math.Log(0.5)
	k.SetLogParams(p)
	g := gp.New(k, 1e-3)
	if mvn != nil {
		g.SetFallbackCounter(mvn)
	}
	return &metricGP{g: g, cache: g.NewCrossCache(), scale: 1, cholInc: cholInc, cholFull: cholFull, chk: chk}
}

// add appends one observation.
func (m *metricGP) add(x []float64, y float64) {
	m.xs = append(m.xs, x)
	m.ys = append(m.ys, y)
}

// refit standardizes the targets and re-conditions the GP. A GP that is
// already conditioned on a prefix of the data — the shape of every
// per-observation refit, since metricGP only ever appends measurements — is
// extended through the incremental Cholesky fast path (O(n²) per new point)
// and then handed the rescaled target vector, which only re-solves alpha.
// Only the first fit and hyperparameter changes pay the full O(n³)
// refactorization.
func (m *metricGP) refit() error {
	if len(m.xs) == 0 {
		return fmt.Errorf("pamo: refit with no data")
	}
	sd := std(m.ys)
	if sd < 1e-12 {
		sd = math.Abs(mean(m.ys))
		if sd < 1e-12 {
			sd = 1
		}
	}
	m.scale = sd
	scaled := make([]float64, len(m.ys))
	for i, y := range m.ys {
		scaled[i] = y / sd
	}
	if n := m.g.N(); n > 0 && n <= len(m.xs) {
		first := n
		for i := n; i < len(m.xs); i++ {
			if err := m.g.AddObservation(m.xs[i], scaled[i]); err != nil {
				m.cholFull.Inc()
				return m.g.Fit(m.xs, scaled)
			}
			m.cholInc.Inc()
		}
		if err := m.g.SetTargets(scaled); err != nil {
			return err
		}
		return m.verifyPosterior(first)
	}
	m.cholFull.Inc()
	return m.g.Fit(m.xs, scaled)
}

// verifyPosterior guards the incremental-Cholesky fast path: after
// Cholesky.Extend the posterior at the newly added inputs must have finite
// means and a positive semi-definite covariance, so a corrupted factor
// surfaces here immediately instead of as silently wrong acquisitions.
// No-op without a checker (the common untelemetered configuration pays
// nothing).
func (m *metricGP) verifyPosterior(from int) error {
	if m.chk == nil || from >= len(m.xs) {
		return nil
	}
	mu, cov := m.g.PredictBatch(m.xs[from:])
	if err := m.chk.Finite("gp_posterior_mean", mu...); err != nil {
		return err
	}
	return m.chk.PSDCov("gp_posterior_cov", cov)
}

// optimize tunes the GP hyperparameters by marginal likelihood.
func (m *metricGP) optimize(nStarts int, rng *rand.Rand) error {
	return m.g.OptimizeHyperparams(nStarts, rng)
}

// mean returns the posterior mean at config c in physical units. It uses
// the variance-free prediction path: candidate planning calls this for
// every clip of every pool candidate, and the O(n²) variance solve of a
// full Predict is pure waste there.
func (m *metricGP) mean(c videosim.Config) float64 {
	return m.cache.PredictMean(encodeCfg(c)) * m.scale
}

// sampleJoint draws joint posterior samples (physical units) at the given
// configs: result[sample][point].
func (m *metricGP) sampleJoint(cfgs []videosim.Config, n int, rng *rand.Rand) [][]float64 {
	pts := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		pts[i] = encodeCfg(c)
	}
	ws := mat.GetWorkspace()
	out := m.g.SampleJointWith(ws, m.cache, pts, n, rng)
	mat.PutWorkspace(ws)
	for _, row := range out {
		for i := range row {
			row[i] *= m.scale
		}
	}
	return out
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func std(xs []float64) float64 {
	m := mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// clipModels bundles the five metric GPs of one video source.
type clipModels struct {
	m [numMetrics]*metricGP
}

func newClipModels(mvn *atomic.Uint64, cholInc, cholFull *obs.Counter, chk *check.Checker) *clipModels {
	var c clipModels
	for i := range c.m {
		c.m[i] = newMetricGP(mvn, cholInc, cholFull, chk)
	}
	return &c
}

// addMeasurement records one profiling measurement at cfg.
func (c *clipModels) addMeasurement(cfg videosim.Config, obs videosim.Measurement) {
	x := encodeCfg(cfg)
	c.m[mAcc].add(x, obs.Acc)
	c.m[mProc].add(x, obs.ProcTime)
	c.m[mBits].add(x, obs.Bits)
	c.m[mComp].add(x, obs.Compute)
	c.m[mPow].add(x, obs.Power)
}

// refit re-conditions all five GPs.
func (c *clipModels) refit() error {
	for i := range c.m {
		if err := c.m[i].refit(); err != nil {
			return err
		}
	}
	return nil
}
