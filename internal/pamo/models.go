// Package pamo implements the paper's core contribution: the
// preference-aware multi-objective Bayesian-optimization scheduler
// (Algorithm 2). It owns per-clip Gaussian-process outcome models, the
// preference model learned from decision-maker comparisons, the zero-jitter
// scheduling of Algorithm 1, and the qNEI-driven solution search.
package pamo

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/check"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/videosim"
)

// metric indexes the per-clip quantities the profiler can measure and the
// outcome models must learn.
type metric int

const (
	mAcc  metric = iota // mAP
	mProc               // per-frame processing time (s)
	mBits               // encoded frame size (bits)
	mComp               // computing power (TFLOPS)
	mPow                // power (W)
	numMetrics
)

// encodeCfg maps a configuration onto the GP input space [0,1]³
// (resolution, fps, ROI fraction — the last constant at 1 unless the ROI
// extension is enabled).
func encodeCfg(c videosim.Config) []float64 {
	rLo := videosim.Resolutions[0]
	rHi := videosim.Resolutions[len(videosim.Resolutions)-1]
	sLo := videosim.FrameRates[0]
	sHi := videosim.FrameRates[len(videosim.FrameRates)-1]
	roi := c.ROI
	if roi <= 0 || roi > 1 {
		roi = 1
	}
	return []float64{
		(c.Resolution - rLo) / (rHi - rLo),
		(c.FPS - sLo) / (sHi - sLo),
		roi,
	}
}

// modelSpec selects the outcome-model family and telemetry sinks for new
// metric GPs. The zero value is the exact GP with no telemetry — the
// configuration every golden run pins.
type modelSpec struct {
	sparse    bool
	sparseOpt gp.SparseOptions
	// gpObs/gpInducing/gpForget receive GP lifecycle counts
	// (gp_obs_total / gp_inducing_total / gp_forget_total). Nil-safe.
	gpObs      *obs.Counter
	gpInducing *obs.Counter
	gpForget   *obs.Counter
}

// metricGP is a GP over the encoded configuration space with target
// standardization, so kernel variance ≈ 1 regardless of the metric's
// physical scale. The underlying regressor is either the exact GP (the
// default; golden-pinned) or the inducing-point SparseGP, chosen by
// modelSpec at construction.
type metricGP struct {
	g     gp.Regressor
	exact *gp.GP         // non-nil iff g is the exact model
	sp    *gp.SparseGP   // non-nil iff g is the sparse model
	cache *gp.CrossCache // exact only: memoized k(x, X) for pool scoring
	spec  modelSpec
	// fed counts how many of allData's points have been conditioned into g.
	// The exact model's N() equals fed, but the sparse model's N() shrinks
	// under the MaxObs forgetting budget, so the refit prefix bookkeeping
	// must not read it back from the regressor.
	fed       int
	lastStats gp.SparseStats // last synced lifecycle counters (sparse only)
	scale     float64
	xs        [][]float64
	ys        []float64
	// vxs/vys are virtual observations borrowed from a warm-start donor
	// (see warmFrom). They condition the GP ahead of the model's own
	// measurements but are down-weighted: while any virtual point remains,
	// the GP runs at inflate× the pooled observation noise, so real
	// measurements overrule them locally as they arrive. Once the model has
	// twice as many real points as virtual ones, the virtual set retires and
	// the noise floor returns to baseNoise.
	vxs       [][]float64
	vys       []float64
	baseNoise float64
	inflate   float64 // > 0 only while the warm-start lifecycle is active
	forceFull bool    // next refit must refactorize (dataset shape or noise changed)
	// cholInc/cholFull count which refit path conditioned the GP:
	// incremental Cholesky extensions vs full refactorizations. Nil (the
	// untelemetered default) is a no-op.
	cholInc  *obs.Counter
	cholFull *obs.Counter
	// chk, when non-nil, verifies the posterior after every incremental
	// Cholesky extension (finite means, PSD covariance at the new inputs).
	chk *check.Checker
}

// newMetricGP builds one outcome GP of the family spec selects. mvn, when
// non-nil, receives this model's posterior-sampling fallbacks so the owning
// scheduler can attribute them to itself (see gp.SetFallbackCounter).
func newMetricGP(spec modelSpec, mvn *atomic.Uint64, cholInc, cholFull *obs.Counter, chk *check.Checker) *metricGP {
	k := kernel.NewMatern52(3)
	p := k.LogParams()
	p[1], p[2], p[3] = math.Log(0.4), math.Log(0.4), math.Log(0.5)
	k.SetLogParams(p)
	m := &metricGP{spec: spec, scale: 1, baseNoise: 1e-3, cholInc: cholInc, cholFull: cholFull, chk: chk}
	if spec.sparse {
		m.sp = gp.NewSparse(k, 1e-3, spec.sparseOpt)
		m.g = m.sp
	} else {
		m.exact = gp.New(k, 1e-3)
		m.cache = m.exact.NewCrossCache()
		m.g = m.exact
	}
	if mvn != nil {
		m.g.SetFallbackCounter(mvn)
	}
	return m
}

// add appends one observation.
func (m *metricGP) add(x []float64, y float64) {
	m.xs = append(m.xs, x)
	m.ys = append(m.ys, y)
}

// warmFrom seeds an unconditioned model from the models of similar clips:
// the kernel hyperparameters become the donors' pooled values
// (gp.PoolHyperparams — element-wise mean in log space), and up to keep
// observations of the first donor (the most similar clip) are injected as
// virtual points. Down-weighting is by noise inflation: the model runs at
// inflate× the pooled noise variance until the virtual set retires, so the
// borrowed targets shape the prior mean without being trusted like real
// measurements. Reports false — leaving the model cold — when it already
// holds data or the donors' hyperparameters cannot be pooled.
func (m *metricGP) warmFrom(donors []*metricGP, keep int, inflate float64) bool {
	if len(m.xs) > 0 || m.g.N() > 0 {
		return false
	}
	gs := make([]gp.Regressor, 0, len(donors))
	for _, d := range donors {
		if d != nil {
			gs = append(gs, d.g)
		}
	}
	lp, noise, ok := gp.PoolHyperparams(gs)
	if !ok {
		return false
	}
	m.g.Kernel().SetLogParams(lp)
	m.baseNoise = noise
	if inflate < 1 {
		inflate = 1
	}
	m.inflate = inflate
	m.g.SetNoise(noise * inflate)
	// Evenly spaced subsample of the most similar donor's raw dataset, so
	// the virtual points span its covered input region deterministically.
	if d := donors[0]; keep > 0 && d != nil && len(d.xs) > 0 {
		if keep > len(d.xs) {
			keep = len(d.xs)
		}
		for k := 0; k < keep; k++ {
			i := k * len(d.xs) / keep
			m.vxs = append(m.vxs, append([]float64(nil), d.xs[i]...))
			m.vys = append(m.vys, d.ys[i])
		}
	}
	m.forceFull = true
	return true
}

// maybeRetire drops the virtual donor points once real measurements
// outnumber them 2:1, restoring the base noise floor. The next refit pays
// one full refactorization for the dataset change.
func (m *metricGP) maybeRetire() {
	if len(m.vxs) == 0 || len(m.xs) < 2*len(m.vxs) {
		return
	}
	m.vxs, m.vys = nil, nil
	m.g.SetNoise(m.baseNoise)
	m.inflate = 0
	m.forceFull = true
}

// allData returns the conditioning dataset: virtual donor points first
// (a stable prefix, so the incremental-Cholesky path keeps working as real
// measurements append behind them), then the model's own measurements.
func (m *metricGP) allData() ([][]float64, []float64) {
	if len(m.vxs) == 0 {
		return m.xs, m.ys
	}
	xs := make([][]float64, 0, len(m.vxs)+len(m.xs))
	ys := make([]float64, 0, len(m.vys)+len(m.ys))
	xs = append(append(xs, m.vxs...), m.xs...)
	ys = append(append(ys, m.vys...), m.ys...)
	return xs, ys
}

// refit standardizes the targets and re-conditions the GP. A GP that is
// already conditioned on a prefix of the data — the shape of every
// per-observation refit, since metricGP only ever appends measurements — is
// extended through the incremental fast path (O(n²) per new point for the
// exact model, O(nm + m²) for the sparse one) and then handed the rescaled
// targets. Only the first fit and hyperparameter changes pay the full
// refactorization.
func (m *metricGP) refit() error {
	err := m.refitData()
	m.syncStats()
	return err
}

func (m *metricGP) refitData() error {
	m.maybeRetire()
	xs, ys := m.allData()
	if len(xs) == 0 {
		return fmt.Errorf("pamo: refit with no data")
	}
	prevScale := m.scale
	sd := std(ys)
	if sd < 1e-12 {
		sd = math.Abs(mean(ys))
		if sd < 1e-12 {
			sd = 1
		}
	}
	m.scale = sd
	scaled := make([]float64, len(ys))
	for i, y := range ys {
		scaled[i] = y / sd
	}
	if m.sp != nil {
		return m.refitSparse(xs, scaled, prevScale/sd)
	}
	if n := m.g.N(); !m.forceFull && n > 0 && n <= len(xs) {
		first := n
		for i := n; i < len(xs); i++ {
			if err := m.g.AddObservation(xs[i], scaled[i]); err != nil {
				m.cholFull.Inc()
				m.fed = len(xs)
				return m.g.Fit(xs, scaled)
			}
			m.cholInc.Inc()
		}
		m.fed = len(xs)
		if err := m.g.SetTargets(scaled); err != nil {
			return err
		}
		return m.verifyPosterior(xs, first)
	}
	m.cholFull.Inc()
	m.forceFull = false
	m.fed = len(xs)
	return m.g.Fit(xs, scaled)
}

// refitSparse conditions the sparse model on the suffix of points it has not
// seen. The standardization scale moves with every new measurement, and the
// sparse model may have forgotten observations — so instead of the exact
// path's full-vector SetTargets, the retained targets are rescaled in place
// (ScaleTargets, O(m²)) and only the new points are fed. The fed counter,
// not the model's shrinking N(), tracks the consumed prefix.
func (m *metricGP) refitSparse(xs [][]float64, scaled []float64, rescale float64) error {
	if n := m.fed; !m.forceFull && n > 0 && n <= len(xs) && m.sp.N() > 0 {
		first := n
		if err := m.sp.ScaleTargets(rescale); err != nil {
			return err
		}
		for i := n; i < len(xs); i++ {
			if err := m.sp.AddObservation(xs[i], scaled[i]); err != nil {
				return err
			}
			m.cholInc.Inc()
		}
		m.fed = len(xs)
		return m.verifyPosterior(xs, first)
	}
	m.cholFull.Inc()
	m.forceFull = false
	m.fed = len(xs)
	return m.sp.Fit(xs, scaled)
}

// syncStats forwards the regressor's lifecycle deltas into the owning
// scheduler's counters: conditioned-observation counts for both model
// families, inducing/forget events for the sparse one. Nil counter handles
// (no recorder) make this free.
func (m *metricGP) syncStats() {
	if m.sp == nil {
		if f := uint64(m.fed); f > m.lastStats.Obs {
			m.spec.gpObs.Add(f - m.lastStats.Obs)
			m.lastStats.Obs = f
		}
		return
	}
	st := m.sp.Stats()
	m.spec.gpObs.Add(st.Obs - m.lastStats.Obs)
	m.spec.gpInducing.Add(st.InducingAdds - m.lastStats.InducingAdds)
	m.spec.gpForget.Add(st.Forgets - m.lastStats.Forgets)
	m.lastStats = st
}

// verifyPosterior guards the incremental-Cholesky fast path: after
// Cholesky.Extend the posterior at the newly added inputs must have finite
// means and a positive semi-definite covariance, so a corrupted factor
// surfaces here immediately instead of as silently wrong acquisitions.
// No-op without a checker (the common untelemetered configuration pays
// nothing).
func (m *metricGP) verifyPosterior(xs [][]float64, from int) error {
	if m.chk == nil || from >= len(xs) {
		return nil
	}
	mu, cov := m.g.PredictBatch(xs[from:])
	if err := m.chk.Finite("gp_posterior_mean", mu...); err != nil {
		return err
	}
	return m.chk.PSDCov("gp_posterior_cov", cov)
}

// optimize tunes the GP hyperparameters by marginal likelihood.
func (m *metricGP) optimize(nStarts int, rng *rand.Rand) error {
	return m.g.OptimizeHyperparams(nStarts, rng)
}

// mean returns the posterior mean at config c in physical units. It uses
// the variance-free prediction path: candidate planning calls this for
// every clip of every pool candidate, and the variance solve of a full
// Predict is pure waste there. Exact models route through the memoized
// cross-covariance cache (O(n) amortized); sparse models read the O(m)
// inducing representation directly.
func (m *metricGP) mean(c videosim.Config) float64 {
	if m.sp != nil {
		return m.sp.PredictMean(encodeCfg(c)) * m.scale
	}
	return m.cache.PredictMean(encodeCfg(c)) * m.scale
}

// meanVar returns the posterior mean and variance at config c in physical
// units. The draw-reuse probe calls this for every universe point: unlike
// mean it pays for the variance solve, because detecting posterior movement
// needs the second moment too.
func (m *metricGP) meanVar(c videosim.Config) (float64, float64) {
	mu, v := m.g.Predict(encodeCfg(c))
	return mu * m.scale, v * m.scale * m.scale
}

// sampleJoint draws joint posterior samples (physical units) at the given
// configs: result[sample][point].
func (m *metricGP) sampleJoint(cfgs []videosim.Config, n int, rng *rand.Rand) [][]float64 {
	pts := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		pts[i] = encodeCfg(c)
	}
	ws := mat.GetWorkspace()
	var out [][]float64
	if m.sp != nil {
		out = m.sp.SampleJointWith(ws, pts, n, rng)
	} else {
		out = m.exact.SampleJointWith(ws, m.cache, pts, n, rng)
	}
	mat.PutWorkspace(ws)
	for _, row := range out {
		for i := range row {
			row[i] *= m.scale
		}
	}
	return out
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func std(xs []float64) float64 {
	m := mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// clipModels bundles the five metric GPs of one video source.
type clipModels struct {
	m [numMetrics]*metricGP
}

func newClipModels(spec modelSpec, mvn *atomic.Uint64, cholInc, cholFull *obs.Counter, chk *check.Checker) *clipModels {
	var c clipModels
	for i := range c.m {
		c.m[i] = newMetricGP(spec, mvn, cholInc, cholFull, chk)
	}
	return &c
}

// addMeasurement records one profiling measurement at cfg.
func (c *clipModels) addMeasurement(cfg videosim.Config, obs videosim.Measurement) {
	x := encodeCfg(cfg)
	c.m[mAcc].add(x, obs.Acc)
	c.m[mProc].add(x, obs.ProcTime)
	c.m[mBits].add(x, obs.Bits)
	c.m[mComp].add(x, obs.Compute)
	c.m[mPow].add(x, obs.Power)
}

// warmFrom warm-starts every metric model from the corresponding models of
// the donor clips (donors[0] most similar first). Reports whether every
// metric pooled successfully; on a false return the models are a mix of
// warm and cold, which is safe — each metricGP either pooled or kept its
// defaults.
func (c *clipModels) warmFrom(donors []*clipModels, keep int, inflate float64) bool {
	all := true
	buf := make([]*metricGP, 0, len(donors))
	for i := range c.m {
		buf = buf[:0]
		for _, d := range donors {
			if d != nil {
				buf = append(buf, d.m[i])
			}
		}
		if !c.m[i].warmFrom(buf, keep, inflate) {
			all = false
		}
	}
	return all
}

// rebind re-points a bank-persisted model set at the owning scheduler's
// telemetry: fallback counter, Cholesky-path counters, GP lifecycle
// counters, and checker. Without it a reused model would keep attributing
// its work to the scheduler that created it. The model family is part of
// the persisted state and is deliberately left alone — a banked exact model
// stays exact even under a sparse-configured scheduler.
func (c *clipModels) rebind(spec modelSpec, mvn *atomic.Uint64, cholInc, cholFull *obs.Counter, chk *check.Checker) {
	for _, m := range c.m {
		m.cholInc, m.cholFull, m.chk = cholInc, cholFull, chk
		m.spec.gpObs, m.spec.gpInducing, m.spec.gpForget = spec.gpObs, spec.gpInducing, spec.gpForget
		m.g.SetFallbackCounter(mvn)
	}
}

// setIncumbent points every sparse metric model's forgetting rule at the
// clip's current incumbent configuration, so the MaxObs budget drops the
// observation least informative about the region the schedule actually
// uses. No-op for exact models.
func (c *clipModels) setIncumbent(cfg videosim.Config) {
	x := encodeCfg(cfg)
	for _, m := range c.m {
		if m.sp != nil {
			m.sp.SetIncumbent(x)
		}
	}
}

// refit re-conditions all five GPs.
func (c *clipModels) refit() error {
	for i := range c.m {
		if err := c.m[i].refit(); err != nil {
			return err
		}
	}
	return nil
}
