package pamo

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/acq"
	"repro/internal/objective"
	"repro/internal/pref"
	"repro/internal/videosim"
)

// readyScheduler builds a scheduler and runs it up to the start of the BO
// loop (outcome models fitted, preference learned, initial observations
// taken), so selectBatch can be exercised directly.
func readyScheduler(tb testing.TB, m, n int, opt Options) *Scheduler {
	tb.Helper()
	sys := testSys(m, n, 7)
	s := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, opt)
	if err := s.profileInit(); err != nil {
		tb.Fatal(err)
	}
	if err := s.learnPreference(); err != nil {
		tb.Fatal(err)
	}
	if err := s.initialObservations(); err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestSharedQNEIAgreesWithPerTrialOnFittedModel(t *testing.T) {
	// Acceptance check for the shared-sample path: on a fixed fitted model,
	// the shared-draw qNEI estimate of a trial batch must agree with the
	// legacy per-trial estimate within Monte-Carlo error.
	s := readyScheduler(t, 4, 3, smallOpts(5))
	cands := s.generateCandidates()
	if len(cands) < 3 {
		t.Skipf("only %d candidates", len(cands))
	}

	universe := append([]candidate(nil), cands...)
	obsStart := len(universe)
	for _, o := range s.obs {
		universe = append(universe, s.observationCandidate(o))
	}
	bs := &benefitSampler{s: s, cands: universe}
	obsPts := make([][]float64, 0, len(s.obs))
	obsCols := make([]int, 0, len(s.obs))
	for i := range s.obs {
		obsPts = append(obsPts, point(obsStart+i))
		obsCols = append(obsCols, obsStart+i)
	}

	const nSamples = 4000
	trialCols := []int{0, 2}
	trial := [][]float64{point(0), point(2)}
	perTrial := acq.QNEI(bs, trial, obsPts, nSamples, rand.New(rand.NewPCG(1, 2)))

	pts := make([][]float64, len(universe))
	for i := range pts {
		pts[i] = point(i)
	}
	z := bs.SampleBenefit(pts, nSamples, rand.New(rand.NewPCG(3, 4)))
	scorer := acq.NewSharedQNEI(z, obsCols)
	scorer.Add(trialCols[0])
	shared := scorer.Score(trialCols[1])

	// Monte-Carlo error of each estimate is O(1/√nSamples); the benefit
	// scale here is O(1), so 3σ-ish tolerance ≈ 0.05 at 4000 samples.
	if math.Abs(perTrial-shared) > 0.05*math.Max(1, math.Abs(perTrial)) {
		t.Fatalf("per-trial qNEI %v vs shared %v", perTrial, shared)
	}
}

func TestSelectBatchSharedAndPerTrialPickPlausibleBatches(t *testing.T) {
	// Both paths must return distinct, in-range candidate batches of the
	// configured size on the same scheduler state.
	s := readyScheduler(t, 4, 3, smallOpts(6))
	cands := s.generateCandidates()
	if len(cands) < int(s.opt.Batch) {
		t.Skipf("only %d candidates", len(cands))
	}
	check := func(batch []candidate) {
		t.Helper()
		if len(batch) != s.opt.Batch {
			t.Fatalf("batch size %d, want %d", len(batch), s.opt.Batch)
		}
		seen := map[string]bool{}
		for _, c := range batch {
			key := cfgKey(c.cfgs)
			if seen[key] {
				t.Fatalf("duplicate candidate in batch: %s", key)
			}
			seen[key] = true
		}
	}
	check(s.selectBatch(cands))
	s.opt.PerTrialAcq = true
	check(s.selectBatch(cands))
}

func TestSelectBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	// The parallel greedy scan must not let goroutine scheduling leak into
	// the selection, on either acquisition path.
	for _, perTrial := range []bool{false, true} {
		opt := smallOpts(9)
		opt.PerTrialAcq = perTrial
		pick := func(workers int) [][]videosim.Config {
			s := readyScheduler(t, 4, 3, opt)
			s.opt.Workers = workers
			cands := s.generateCandidates()
			var out [][]videosim.Config
			for _, c := range s.selectBatch(cands) {
				out = append(out, c.cfgs)
			}
			return out
		}
		serial := pick(1)
		parallel := pick(8)
		if len(serial) != len(parallel) {
			t.Fatalf("perTrial=%v: batch sizes %d vs %d", perTrial, len(serial), len(parallel))
		}
		for i := range serial {
			for j := range serial[i] {
				if serial[i][j] != parallel[i][j] {
					t.Fatalf("perTrial=%v: workers changed slot %d: %+v vs %+v",
						perTrial, i, serial[i], parallel[i])
				}
			}
		}
	}
}

func TestPerTrialAcqRunsEndToEnd(t *testing.T) {
	sys := testSys(4, 3, 21)
	opt := smallOpts(4)
	opt.PerTrialAcq = true
	opt.MaxIter = 2
	res, err := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, opt).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Decision.Configs == nil {
		t.Fatal("no decision")
	}
}

func TestRefitIncrementalMatchesFullFit(t *testing.T) {
	// The incremental per-observation refit path must condition the GP on
	// exactly the same posterior as a from-scratch fit of the same data.
	rng := rand.New(rand.NewPCG(5, 6))
	inc := newMetricGP(modelSpec{}, nil, nil, nil, nil)
	full := newMetricGP(modelSpec{}, nil, nil, nil, nil)
	addBoth := func(cfg videosim.Config, y float64) {
		inc.add(encodeCfg(cfg), y)
		full.add(encodeCfg(cfg), y)
	}
	cfgAt := func(i int) videosim.Config {
		return videosim.Config{
			Resolution: videosim.Resolutions[i%len(videosim.Resolutions)],
			FPS:        videosim.FrameRates[(i/2)%len(videosim.FrameRates)],
		}
	}
	// Bulk phase (like profileInit), one refit.
	for i := 0; i < 10; i++ {
		addBoth(cfgAt(i), rng.NormFloat64()+2)
	}
	if err := inc.refit(); err != nil {
		t.Fatal(err)
	}
	// Streaming phase (like observe): inc refits after every point, full is
	// refitted from scratch once at the end.
	for i := 10; i < 25; i++ {
		y := rng.NormFloat64() + 2
		addBoth(cfgAt(i), y)
		if err := inc.refit(); err != nil {
			t.Fatalf("incremental refit %d: %v", i, err)
		}
	}
	scaled := make([]float64, len(full.ys))
	for i, y := range full.ys {
		scaled[i] = y / inc.scale
	}
	if err := full.g.Fit(full.xs, scaled); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		cfg := videosim.Config{
			Resolution: videosim.Resolutions[rng.IntN(len(videosim.Resolutions))],
			FPS:        videosim.FrameRates[rng.IntN(len(videosim.FrameRates))],
		}
		x := encodeCfg(cfg)
		mi, vi := inc.g.Predict(x)
		mf, vf := full.g.Predict(x)
		if math.Abs(mi-mf) > 1e-7 || math.Abs(vi-vf) > 1e-7 {
			t.Fatalf("cfg %+v: incremental (%v, %v) vs full (%v, %v)", cfg, mi, vi, mf, vf)
		}
	}
}

func TestSamplingFallbacksVisible(t *testing.T) {
	sys := testSys(3, 3, 52)
	s := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, smallOpts(11))
	if got := s.SamplingFallbacks(); got != 0 {
		t.Fatalf("fallbacks before run: %d", got)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MVNFallbacks != s.SamplingFallbacks() {
		t.Fatalf("Result.MVNFallbacks %d vs scheduler %d", res.MVNFallbacks, s.SamplingFallbacks())
	}
}
