package pamo

import (
	"fmt"
	"testing"
)

// benchOpts mirrors smallOpts but with the knobs the acquisition hot path
// actually scales in: candidate pool size and the acquisition variant.
func benchOpts(candPool int, perTrial bool) Options {
	o := smallOpts(2024)
	o.CandPool = candPool
	o.PerTrialAcq = perTrial
	return o
}

// BenchmarkSelectBatch measures one greedy batch construction — the BO
// loop's dominant cost — for the shared-sample and legacy per-trial
// acquisition paths at small and large candidate pools.
func BenchmarkSelectBatch(b *testing.B) {
	for _, candPool := range []int{8, 64} {
		for _, mode := range []struct {
			name     string
			perTrial bool
		}{{"shared", false}, {"perTrial", true}} {
			b.Run(fmt.Sprintf("pool%d/%s", candPool, mode.name), func(b *testing.B) {
				s := readyScheduler(b, 4, 3, benchOpts(candPool, mode.perTrial))
				cands := s.generateCandidates()
				if len(cands) == 0 {
					b.Skip("no feasible candidates")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.selectBatch(cands)
				}
			})
		}
	}
}

// BenchmarkRefit measures re-conditioning all per-clip outcome GPs after one
// observation round — the incremental Cholesky path versus repeated full
// fits would differ here by O(n) per call.
func BenchmarkRefit(b *testing.B) {
	s := readyScheduler(b, 4, 3, smallOpts(2024))
	clip := s.sys.Clips[0]
	cfg := s.randomConfigs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.clips[0].addMeasurement(cfg, s.prof.Measure(clip, cfg))
		if err := s.clips[0].refit(); err != nil {
			b.Fatal(err)
		}
	}
}
