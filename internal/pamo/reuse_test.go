package pamo

import (
	"testing"

	"repro/internal/acq"
	"repro/internal/objective"
	"repro/internal/pref"
)

// runOnce builds a fresh scheduler over an identical system and solves it.
func runOnce(t *testing.T, opt Options) *Result {
	t.Helper()
	sys := testSys(4, 3, 77)
	res, err := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, opt).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameResult(a, b *Result) bool {
	if a.Iters != b.Iters || len(a.History) != len(b.History) || a.Best.Benefit != b.Best.Benefit {
		return false
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			return false
		}
	}
	if a.Best.Raw != b.Best.Raw {
		return false
	}
	return true
}

// TestDrawReuseByteIdenticalEpochs is the differential test for the
// amortized acquisition path. Shared draws are deterministic in
// (Seed, round) via acqStream, and a repeated epoch — a fresh scheduler over
// the identical system and options, the fleet re-solve pattern — replays the
// identical model trajectory. So the draws the second epoch would take are
// byte-identical to the ones the first epoch cached, and serving them from
// the cache must not move a single bit of the result:
//
//	epoch2(with reuse, warm cache) ≡ epoch(s) without reuse.
//
// At the same time the cache must actually serve — otherwise this test
// would pass vacuously with the reuse path dead.
func TestDrawReuseByteIdenticalEpochs(t *testing.T) {
	base := smallOpts(5)
	ref := runOnce(t, base)

	cache := acq.NewDrawCache(0)
	withReuse := base
	withReuse.ReuseDraws = true
	withReuse.DrawReuseTol = 0 // exact probe match only — the strictest gate
	withReuse.Draws = cache

	epoch1 := runOnce(t, withReuse)
	if !sameResult(ref, epoch1) {
		t.Fatalf("cold-cache epoch diverged from reuse-off run:\n  ref %+v\n  got %+v", ref, epoch1)
	}
	if cache.Len() == 0 {
		t.Fatal("first epoch cached no draws")
	}

	epoch2 := runOnce(t, withReuse)
	if !sameResult(ref, epoch2) {
		t.Fatalf("warm-cache epoch diverged from reuse-off run:\n  ref %+v\n  got %+v", ref, epoch2)
	}
	if cache.Hits() == 0 {
		t.Fatal("second epoch reused no draws — the amortized path never fired")
	}
}

// TestDrawReuseKeyDiscrimination: a different seed replays different
// candidate universes, so a shared cache must never serve across them.
func TestDrawReuseKeyDiscrimination(t *testing.T) {
	cache := acq.NewDrawCache(0)
	a := smallOpts(5)
	a.ReuseDraws = true
	a.Draws = cache
	runOnce(t, a)

	b := smallOpts(6)
	b.ReuseDraws = true
	b.Draws = cache
	runOnce(t, b)
	if cache.Hits() != 0 {
		t.Fatalf("cache served %d hits across unrelated runs", cache.Hits())
	}
}
