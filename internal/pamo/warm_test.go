package pamo

import (
	"math"
	"testing"

	"repro/internal/objective"
	"repro/internal/pref"
	"repro/internal/videosim"
)

func TestMetricGPWarmLifecycle(t *testing.T) {
	donor := newMetricGP(modelSpec{}, nil, nil, nil, nil)
	for _, r := range videosim.Resolutions {
		for _, s := range videosim.FrameRates {
			cfg := videosim.Config{Resolution: r, FPS: s}
			donor.add(encodeCfg(cfg), 0.125*r*r*s)
		}
	}
	if err := donor.refit(); err != nil {
		t.Fatal(err)
	}

	warm := newMetricGP(modelSpec{}, nil, nil, nil, nil)
	if !warm.warmFrom([]*metricGP{donor}, 6, 25) {
		t.Fatal("warmFrom declined")
	}
	if len(warm.vxs) != 6 {
		t.Fatalf("virtual points = %d, want 6", len(warm.vxs))
	}
	if got, want := warm.g.Noise(), warm.baseNoise*25; math.Abs(got-want) > 1e-15 {
		t.Fatalf("inflated noise = %v, want %v", got, want)
	}
	// Conditioned on virtual points alone, the model already tracks the
	// donor's surface.
	if err := warm.refit(); err != nil {
		t.Fatal(err)
	}
	cfg := videosim.Config{Resolution: 1250, FPS: 15}
	truth := 0.125 * 1250 * 1250 * 15
	if got := warm.mean(cfg); math.Abs(got-truth)/truth > 0.5 {
		t.Fatalf("virtual-only mean %v too far from donor truth %v", got, truth)
	}

	// Real measurements retire the virtual set at 2:1 and restore the base
	// noise floor.
	for i := 0; i < 12; i++ {
		r := videosim.Resolutions[i%len(videosim.Resolutions)]
		s := videosim.FrameRates[i%len(videosim.FrameRates)]
		warm.add(encodeCfg(videosim.Config{Resolution: r, FPS: s}), 0.125*r*r*s)
	}
	if err := warm.refit(); err != nil {
		t.Fatal(err)
	}
	if len(warm.vxs) != 0 {
		t.Fatalf("virtual set not retired: %d points", len(warm.vxs))
	}
	if warm.g.Noise() != warm.baseNoise {
		t.Fatalf("noise floor %v not restored to %v", warm.g.Noise(), warm.baseNoise)
	}
	if got := warm.mean(cfg); math.Abs(got-truth)/truth > 0.1 {
		t.Fatalf("post-retirement mean %v vs truth %v", got, truth)
	}
}

func TestMetricGPWarmFromDeclines(t *testing.T) {
	donor := newMetricGP(modelSpec{}, nil, nil, nil, nil)
	conditioned := newMetricGP(modelSpec{}, nil, nil, nil, nil)
	conditioned.add([]float64{0, 0, 1}, 1)
	if conditioned.warmFrom([]*metricGP{donor}, 4, 25) {
		t.Error("model holding data accepted a warm start")
	}
	if fresh := newMetricGP(modelSpec{}, nil, nil, nil, nil); fresh.warmFrom(nil, 4, 25) {
		t.Error("warm start with no donors succeeded")
	}
}

func TestBankDonorsDeterministicAndFiltered(t *testing.T) {
	bank := NewBank()
	clips := videosim.StandardClips(4, 42)
	withData := func() *clipModels {
		cm := newClipModels(modelSpec{}, nil, nil, nil, nil)
		cm.m[mAcc].add([]float64{0, 0, 1}, 1)
		return cm
	}
	bank.put(clips[0], withData())
	bank.put(clips[1], withData())
	bank.put(clips[2], newClipModels(modelSpec{}, nil, nil, nil, nil)) // no data: never a donor

	got := bank.donors(clips[3], 3)
	if len(got) != 2 {
		t.Fatalf("donors = %d, want 2 (empty entry filtered)", len(got))
	}
	// Self-exclusion: a clip never donates to itself.
	if self := bank.donors(clips[0], 3); len(self) != 1 {
		t.Fatalf("self-exclusion failed: %d donors", len(self))
	}
	// Deterministic order across repeated calls (map iteration must not
	// leak through).
	for i := 0; i < 10; i++ {
		again := bank.donors(clips[3], 3)
		for k := range got {
			if again[k] != got[k] {
				t.Fatal("donor order unstable")
			}
		}
	}
}

// seededBank runs one scheduler over the three donor clips so the bank
// holds conditioned models for them.
func seededBank(t *testing.T, dm pref.DecisionMaker, opts Options) *Bank {
	t.Helper()
	bank := NewBank()
	opts.Models = bank
	if _, err := New(testSys(3, 4, 7), dm, opts).Run(); err != nil {
		t.Fatalf("donor run: %v", err)
	}
	if bank.Len() != 3 {
		t.Fatalf("bank holds %d clips, want 3", bank.Len())
	}
	return bank
}

// TestBankWarmStartHalvesProfilingCost is the end-to-end differential test
// for the warm-start tentpole: a clip arriving after three similar clips
// have been profiled must land within 10% of the cold-start benefit at no
// more than half the cold initial-profiling cost.
func TestBankWarmStartHalvesProfilingCost(t *testing.T) {
	truth := objective.UniformPreference()
	dm := &pref.Oracle{Pref: truth}
	opts := smallOpts(11)
	opts.UseTruePref = true
	opts.TruePref = truth
	clips := videosim.StandardClips(4, 7)
	newSys := &objective.System{Clips: clips[3:4], Servers: testSys(3, 4, 7).Servers}

	// Initial-profiling cost, isolated from the BO loop's measurements
	// (which both paths pay identically): warm must cost at most half cold.
	probeOpts := opts
	probeOpts.Models = seededBank(t, dm, opts)
	warmProbe := New(newSys, dm, probeOpts)
	if err := warmProbe.profileInit(); err != nil {
		t.Fatalf("warm profileInit: %v", err)
	}
	coldProbe := New(newSys, dm, opts)
	if err := coldProbe.profileInit(); err != nil {
		t.Fatalf("cold profileInit: %v", err)
	}
	if warmProbe.seeds[0] != seedWarm {
		t.Fatalf("new clip seeded %v, want seedWarm", warmProbe.seeds[0])
	}
	if 2*warmProbe.profiles > coldProbe.profiles {
		t.Errorf("warm profiling cost %d exceeds half of cold %d", warmProbe.profiles, coldProbe.profiles)
	}

	// Benefit parity on full runs, each against a fresh bank so the warm
	// run exercises the warm-start path (not a bank hit from the probe).
	runOpts := opts
	runOpts.Models = seededBank(t, dm, opts)
	warmRes, err := New(newSys, dm, runOpts).Run()
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	coldRes, err := New(newSys, dm, opts).Run()
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	wb, cb := warmRes.Best.Benefit, coldRes.Best.Benefit
	if wb < cb-0.1*math.Abs(cb) {
		t.Errorf("warm benefit %v more than 10%% below cold %v", wb, cb)
	}
}
