package pamo

import (
	"sort"
	"sync"

	"repro/internal/videosim"
)

// Bank persists per-clip outcome models across Scheduler instances, keyed
// by clip name. The fault-tolerant runtime rebuilds the whole PaMO
// optimizer on every replan; without a bank each rebuild repays the full
// initial profiling bill for every clip. With one, clips seen before reuse
// their conditioned models outright, and clips arriving through churn
// warm-start from the bank entry of the most similar clip (factor-space
// distance) instead of cold profiling.
//
// The bank stores live pointers: a scheduler registers its models at
// construction and keeps conditioning them in place, so the next scheduler
// inherits everything learned so far. Lookups are mutex-guarded, but the
// models themselves are not — a bank must only be shared by schedulers
// that run one at a time (the runtime's replan loop), never by the
// sharded control plane's concurrent per-cell optimizers.
type Bank struct {
	mu      sync.Mutex
	entries map[string]*bankEntry
}

type bankEntry struct {
	clip   *videosim.Clip
	models *clipModels
}

// NewBank returns an empty model bank.
func NewBank() *Bank {
	return &Bank{entries: map[string]*bankEntry{}}
}

// Len returns the number of clips with banked models.
func (b *Bank) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// get returns the banked models for the exact clip name.
func (b *Bank) get(name string) (*clipModels, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[name]
	if !ok {
		return nil, false
	}
	return e.models, true
}

// donors returns the banked models of up to k clips most similar to clip
// in factor space, closest first, excluding clip's own name and entries
// that hold no measurements yet. Ties break toward the lexicographically
// smallest name, so donor selection is deterministic regardless of map
// iteration order.
func (b *Bank) donors(clip *videosim.Clip, k int) []*clipModels {
	b.mu.Lock()
	defer b.mu.Unlock()
	type cand struct {
		name string
		d    float64
		e    *bankEntry
	}
	cands := make([]cand, 0, len(b.entries))
	for name, e := range b.entries {
		if name == clip.Name || len(e.models.m[mAcc].xs) == 0 {
			continue
		}
		cands = append(cands, cand{name: name, d: clip.FactorDistance(e.clip), e: e})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].name < cands[j].name
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]*clipModels, 0, k)
	for _, c := range cands[:k] {
		out = append(out, c.e.models)
	}
	return out
}

// put registers (or replaces) the models for clip.
func (b *Bank) put(clip *videosim.Clip, models *clipModels) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries[clip.Name] = &bankEntry{clip: clip, models: models}
}
