package pamo

import (
	"fmt"
	"math"
	"math/rand/v2"
	goruntime "runtime"
	"strings"
	"sync"

	"repro/internal/acq"
	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/videosim"
)

// acqStream derives the two PCG seed words for acquisition round round
// under seed. Both words pass through stats.SplitMix64, a 64-bit bijection,
// so the pair is unique for every distinct (seed, round): the first word
// separates seeds, the second separates rounds within a seed. No two
// rounds — of this run or of a run with any other seed — can ever replay
// the same stream, unlike the old Seed^(len(obs)·GOLDEN) derivation.
func acqStream(seed, round uint64) (uint64, uint64) {
	return stats.SplitMix64(seed), stats.SplitMix64(seed + round + 1)
}

// benefitSampler adapts the composed model (per-clip outcome GPs →
// normalized outcome vector → preference GP) into the acq.Sampler
// interface. Points are opaque handles (indices into cands) rather than
// coordinates, because the sampler needs each candidate's plan.
type benefitSampler struct {
	s     *Scheduler
	cands []candidate // the candidate universe this sampler covers
	// workers, when positive, overrides Options.Workers for the per-clip
	// sampling fan-out. The per-trial acquisition scan sets it to 1 so the
	// outer candidate pool is the only source of parallelism.
	workers int
}

// point encodes candidate index i as a 1-vector so it fits acq.Sampler.
func point(i int) []float64 { return []float64{float64(i)} }

// SampleBenefit draws nSamples joint samples of the believed benefit
// z = g(f(x)) at the referenced candidates, propagating both outcome-GP
// and preference-GP uncertainty (the integrand of Eq. 12).
func (bs *benefitSampler) SampleBenefit(points [][]float64, nSamples int, rng *rand.Rand) [][]float64 {
	idx := make([]int, len(points))
	for i, p := range points {
		idx[i] = int(p[0])
	}
	// Joint outcome samples per clip per metric at the configs of every
	// referenced candidate.
	q := len(idx)
	m := bs.s.sys.M()
	samples := make([][]objective.Vector, nSamples) // [sample][point]raw outcome
	for si := range samples {
		samples[si] = make([]objective.Vector, q)
	}
	// Per-clip joint draws across the candidate points. The 5·M draws are
	// independent — the paper's batch recommendation exists precisely so
	// observations can proceed in parallel — so fan them out over workers.
	// Each task gets an RNG derived from (base seed, clip, metric), which
	// keeps results identical regardless of goroutine scheduling.
	type draw struct{ byMetric [numMetrics][][]float64 }
	draws := make([]draw, m)
	seedBase := rng.Uint64()
	workers := bs.workers
	if workers <= 0 {
		workers = bs.s.opt.Workers
	}
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ci := 0; ci < m; ci++ {
		cfgs := make([]videosim.Config, q)
		for j, cand := range idx {
			cfgs[j] = bs.cands[cand].cfgs[ci]
		}
		for mi := metric(0); mi < numMetrics; mi++ {
			wg.Add(1)
			go func(ci int, mi metric, cfgs []videosim.Config) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				taskRng := rand.New(rand.NewPCG(seedBase, uint64(ci)*uint64(numMetrics)+uint64(mi)+1))
				draws[ci].byMetric[mi] = bs.s.clips[ci].m[mi].sampleJoint(cfgs, nSamples, taskRng)
			}(ci, mi, cfgs)
		}
	}
	wg.Wait()
	// Compose raw outcome vectors per sample per point.
	for si := 0; si < nSamples; si++ {
		for j, cand := range idx {
			c := &bs.cands[cand]
			var v objective.Vector
			for ci := 0; ci < m; ci++ {
				d := &draws[ci]
				v[objective.Accuracy] += clamp01(d.byMetric[mAcc][si][j]) / float64(m)
				v[objective.Network] += math.Max(0, d.byMetric[mBits][si][j]) * c.cfgs[ci].FPS
				v[objective.Compute] += math.Max(0, d.byMetric[mComp][si][j])
				v[objective.Energy] += math.Max(0, d.byMetric[mPow][si][j])
			}
			var lat float64
			for k, st := range c.streams {
				b := bs.s.sys.Servers[c.plan.StreamServer[k]].Uplink
				tx := 0.0
				if b > 0 {
					tx = math.Max(0, draws[st.Video].byMetric[mBits][si][j]) / b
				}
				lat += math.Max(0, draws[st.Video].byMetric[mProc][si][j]) + tx
			}
			if len(c.streams) > 0 {
				v[objective.Latency] = lat / float64(len(c.streams))
			}
			samples[si][j] = v
		}
	}
	// Map through the (learned or true) preference to benefit samples. Each
	// outcome sample needs its own preference-posterior draw at q points —
	// O(q³)-ish work that dominates when the shared-sample path covers a
	// large universe — so fan the samples out over the same worker pool,
	// again with per-task RNG streams for schedule-independent results.
	out := make([][]float64, nSamples)
	prefSeed := rng.Uint64()
	for si := 0; si < nSamples; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			row := make([]float64, q)
			if bs.s.opt.UseTruePref {
				for j := range row {
					row[j] = bs.s.opt.TruePref.Benefit(bs.s.norm.Normalize(samples[si][j]))
				}
			} else {
				ys := make([][]float64, q)
				for j := range ys {
					ys[j] = bs.s.norm.Normalize(samples[si][j]).Slice()
				}
				sampleRng := rand.New(rand.NewPCG(prefSeed, uint64(si)))
				row = bs.s.learner.Model.Sample(ys, 1, sampleRng)[0]
			}
			out[si] = row
		}(si)
	}
	wg.Wait()
	return out
}

// selectBatch implements line 15 of Algorithm 2: greedy sequential batch
// construction under the configured acquisition function.
//
// The default path samples the joint posterior over the full candidate ∪
// observation universe once and scores every trial batch as a column-max
// over the shared draws (acq.SharedScorer): the marginals of a joint MVN
// restricted to a subset match sampling the subset directly, so the scores
// are statistically equivalent to the per-trial path at a tiny fraction of
// its O(b·CandPool) GP sampling passes. Options.PerTrialAcq restores the
// legacy re-sampling path.
func (s *Scheduler) selectBatch(cands []candidate) []candidate {
	if s.opt.PerTrialAcq {
		return s.selectBatchPerTrial(cands)
	}
	b := s.opt.Batch
	if b > len(cands) {
		b = len(cands)
	}
	// The sampler's universe covers candidates plus the observed points so
	// qNEI can sample the noisy incumbent jointly.
	universe := append([]candidate(nil), cands...)
	obsStart := len(universe)
	for _, o := range s.obs {
		universe = append(universe, s.observationCandidate(o))
	}
	bs := &benefitSampler{s: s, cands: universe}
	pts := make([][]float64, len(universe))
	for i := range pts {
		pts[i] = point(i)
	}
	// One sampling pass feeds the whole greedy construction. Each
	// acquisition round owns a collision-free PCG stream (see acqStream):
	// the old derivation Seed^(len(obs)·GOLDEN) aliased across runs — e.g.
	// Seed=0 at 0 observations and Seed=GOLDEN at 1 observation XORed to
	// the very same stream, replaying identical acquisition noise.
	round := s.acqRound
	s.acqRound++
	// Amortized path (Options.ReuseDraws): when this exact universe was
	// sampled before — e.g. a fleet re-solve replaying the same candidate
	// stream — and the posterior probe moved by at most DrawReuseTol per
	// component, the cached draws come from a statistically
	// indistinguishable joint posterior and the sampling pass is skipped
	// entirely. Any probe movement beyond the threshold falls back to
	// fresh draws, so a posterior that actually learned something is never
	// scored against stale samples.
	var (
		z        [][]float64
		cacheKey string
		probe    []float64
	)
	if s.opt.ReuseDraws && s.opt.Draws != nil {
		cacheKey = universeKey(universe)
		probe = s.posteriorProbe(universe)
		if cached, ok := s.opt.Draws.TryReuse(cacheKey, probe, s.opt.DrawReuseTol); ok && len(cached) == s.opt.SharedDraws {
			z = cached
			s.met.drawsReused.Inc()
		}
	}
	if z == nil {
		rng := rand.New(rand.NewPCG(acqStream(s.opt.Seed, round)))
		z = bs.SampleBenefit(pts, s.opt.SharedDraws, rng)
		if s.opt.ReuseDraws && s.opt.Draws != nil {
			s.opt.Draws.Store(cacheKey, probe, z)
		}
	}

	var scorer *acq.SharedScorer
	switch s.opt.Acq {
	case QEI:
		incumbent := math.Inf(-1)
		for _, o := range s.obs {
			if o.Benefit > incumbent {
				incumbent = o.Benefit
			}
		}
		scorer = acq.NewSharedQEI(z, incumbent)
	case QUCB:
		scorer = acq.NewSharedQUCB(z, s.opt.UCBBeta)
	case QSR:
		scorer = acq.NewSharedQSR(z)
	default:
		obsCols := make([]int, len(s.obs))
		for i := range obsCols {
			obsCols[i] = obsStart + i
		}
		scorer = acq.NewSharedQNEI(z, obsCols)
	}

	chosen := make([]int, 0, b)
	chosenScores := make([]float64, 0, b)
	inBatch := make([]bool, len(cands))
	scores := make([]float64, len(cands))
	for len(chosen) < b {
		// SharedScorer.Score is pure given the draws, so the parallel scan
		// is deterministic for any worker count.
		s.scanScores(scores, inBatch, scorer.Score)
		bestIdx := argmaxAvailable(scores, inBatch)
		if bestIdx < 0 {
			break
		}
		scorer.Add(bestIdx)
		inBatch[bestIdx] = true
		chosen = append(chosen, bestIdx)
		chosenScores = append(chosenScores, scores[bestIdx])
	}
	s.recordAcq(len(universe), chosenScores)
	out := make([]candidate, len(chosen))
	for i, ci := range chosen {
		out[i] = cands[ci]
	}
	return out
}

// selectBatchPerTrial is the legacy acquisition path: every trial batch
// draws a fresh joint sample set. Kept as a validation reference for the
// shared-sample path (their qNEI estimates agree within Monte-Carlo error)
// and for experiments wanting independent noise per trial.
func (s *Scheduler) selectBatchPerTrial(cands []candidate) []candidate {
	b := s.opt.Batch
	if b > len(cands) {
		b = len(cands)
	}
	universe := append([]candidate(nil), cands...)
	obsStart := len(universe)
	for _, o := range s.obs {
		universe = append(universe, s.observationCandidate(o))
	}
	// The candidate scan below is the parallel axis, so the sampler itself
	// runs serially inside each score call.
	bs := &benefitSampler{s: s, cands: universe, workers: 1}

	obsPts := make([][]float64, 0, len(s.obs))
	for i := range s.obs {
		obsPts = append(obsPts, point(obsStart+i))
	}
	incumbent := math.Inf(-1)
	for _, o := range s.obs {
		if o.Benefit > incumbent {
			incumbent = o.Benefit
		}
	}

	chosen := make([]int, 0, b)
	chosenScores := make([]float64, 0, b)
	inBatch := make([]bool, len(cands))
	scores := make([]float64, len(cands))
	// Per-round stream base: SplitMix64 of (Seed, round) keeps the noise
	// fresh across BO iterations — the old Seed^slot first word replayed
	// the exact same draws every round — while staying collision-free.
	round := s.acqRound
	s.acqRound++
	base := stats.SplitMix64(s.opt.Seed + round + 1)
	for len(chosen) < b {
		slot := uint64(len(chosen))
		s.scanScores(scores, inBatch, func(ci int) float64 {
			trial := make([][]float64, 0, len(chosen)+1)
			for _, c := range chosen {
				trial = append(trial, point(c))
			}
			trial = append(trial, point(ci))
			// Each candidate evaluation owns a PCG stream keyed on two
			// distinct words (base^slot, ci): within a round no (slot,
			// candidate) pair can collide with another, unlike the old
			// Seed+slot·131+ci arithmetic (slot 0/ci 131 aliased slot 1/
			// ci 0), which correlated acquisition noise across trials.
			// Per-candidate streams also keep the parallel scan
			// deterministic regardless of goroutine scheduling.
			rng := rand.New(rand.NewPCG(base^slot, uint64(ci)))
			switch s.opt.Acq {
			case QEI:
				return acq.QEI(bs, trial, incumbent, s.opt.MCSamples, rng)
			case QUCB:
				return acq.QUCB(bs, trial, s.opt.UCBBeta, s.opt.MCSamples, rng)
			case QSR:
				return acq.QSR(bs, trial, s.opt.MCSamples, rng)
			default:
				return acq.QNEI(bs, trial, obsPts, s.opt.MCSamples, rng)
			}
		})
		bestIdx := argmaxAvailable(scores, inBatch)
		if bestIdx < 0 {
			break
		}
		inBatch[bestIdx] = true
		chosen = append(chosen, bestIdx)
		chosenScores = append(chosenScores, scores[bestIdx])
	}
	s.recordAcq(len(universe), chosenScores)
	out := make([]candidate, len(chosen))
	for i, ci := range chosen {
		out[i] = cands[ci]
	}
	return out
}

// scanScores evaluates score(ci) for every candidate not yet in the batch
// across the configured worker pool, writing results into scores. The score
// function must be deterministic per candidate and safe for concurrent use;
// the scan result is then identical for every worker count.
func (s *Scheduler) scanScores(scores []float64, inBatch []bool, score func(ci int) float64) {
	workers := s.opt.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > len(scores) {
		workers = len(scores)
	}
	if workers <= 1 {
		for ci := range scores {
			if !inBatch[ci] {
				scores[ci] = score(ci)
			}
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ci := w; ci < len(scores); ci += workers {
				if !inBatch[ci] {
					scores[ci] = score(ci)
				}
			}
		}(w)
	}
	wg.Wait()
}

// argmaxAvailable returns the index of the highest score among candidates
// not yet in the batch, breaking ties toward the lowest index (matching the
// serial scan's first-wins behavior), or -1 when none is available.
func argmaxAvailable(scores []float64, inBatch []bool) int {
	bestIdx, bestVal := -1, math.Inf(-1)
	for ci, v := range scores {
		if !inBatch[ci] && v > bestVal {
			bestVal, bestIdx = v, ci
		}
	}
	return bestIdx
}

// universeKey fingerprints a sampling universe exactly: per candidate, the
// per-clip configurations plus the stream→server assignment — everything
// SampleBenefit reads from a candidate. Two universes with equal keys
// describe the same decision points, so draws taken at one are draws at the
// other; whether the POSTERIOR still matches is the probe's job.
func universeKey(universe []candidate) string {
	var b strings.Builder
	for i := range universe {
		c := &universe[i]
		b.WriteString(cfgKey(c.cfgs))
		for k, st := range c.streams {
			fmt.Fprintf(&b, "%d>%d,", st.Video, c.plan.StreamServer[k])
		}
		b.WriteByte('|')
	}
	return b.String()
}

// posteriorProbe summarizes the scheduler's belief at the universe points:
// posterior mean and variance of every per-clip metric model at each
// candidate's configs, plus the preference model's mean and variance at each
// candidate's predicted normalized outcome. If every component of this
// vector is unchanged (within tolerance) since a cached draw matrix was
// taken, the joint benefit posterior at these points is unchanged too — the
// draws only depend on the models through exactly these marginals and their
// cross-covariances, which the kernel ties to them.
func (s *Scheduler) posteriorProbe(universe []candidate) []float64 {
	probe := make([]float64, 0, len(universe)*(len(s.clips)*int(numMetrics)+1)*2)
	for i := range universe {
		c := &universe[i]
		for ci := range s.clips {
			for mi := metric(0); mi < numMetrics; mi++ {
				mu, v := s.clips[ci].m[mi].meanVar(c.cfgs[ci])
				probe = append(probe, mu, v)
			}
		}
		if s.learner != nil && !s.opt.UseTruePref {
			y := s.norm.Normalize(s.predictOutcomes(*c)).Slice()
			mu, v := s.learner.Model.PredictOne(y)
			probe = append(probe, mu, v)
		}
	}
	return probe
}

// observationCandidate rebuilds a candidate view of a past observation so
// the sampler can re-sample its benefit jointly with new candidates.
func (s *Scheduler) observationCandidate(o Observation) candidate {
	return candidate{
		cfgs:    o.Decision.Configs,
		streams: o.Decision.Streams,
		plan:    sched.Plan{StreamServer: o.Decision.Assign},
	}
}

// --- observation --------------------------------------------------------

// observe deploys a candidate: physics (ground truth + DES latency)
// happens, the profiler records fresh per-clip samples, and the preference
// model gains one comparison against the incumbent.
func (s *Scheduler) observe(c candidate) (Observation, error) {
	// Every decision the scheduler emits must satisfy the exact feasibility
	// constraints under the processing times it was PLANNED with; a failure
	// here is an Algorithm 1 bug, so it is a hard error under -strict.
	if err := s.opt.Check.VerifyAssignmentServers(c.streams, c.plan.StreamServer, s.sys.Servers); err != nil {
		return Observation{}, fmt.Errorf("pamo: planned decision: %w", err)
	}
	// The deployed streams keep the plan's periods/splitting but the
	// true processing times and frame sizes apply.
	streams := append([]sched.Stream(nil), c.streams...)
	for i := range streams {
		clip := s.sys.Clips[streams[i].Video]
		cfg := c.cfgs[streams[i].Video]
		streams[i].Proc = clip.ProcTimeOf(cfg)
		streams[i].Bits = clip.BitsOf(cfg)
	}
	offsets := s.zeroJitterOffsets(streams, c.plan)
	dec := eva.Decision{
		Configs: c.cfgs,
		Streams: streams,
		Assign:  c.plan.StreamServer,
		Offsets: offsets,
		ZeroJit: true,
	}
	// The same decision under TRUE processing times: a violation here is
	// model error (estimated p below truth), which is an expected operating
	// condition to surface in check_* metrics, never a hard failure.
	s.opt.Check.Relaxed().VerifyDecisionServers(dec, s.sys.Servers)
	raw := eva.Evaluate(s.sys, dec)
	norm := s.norm.Normalize(raw)
	if err := s.opt.Check.Finite("measured_outcomes", raw.Slice()...); err != nil {
		return Observation{}, fmt.Errorf("pamo: deployed decision: %w", err)
	}
	ob := Observation{Decision: dec, Raw: raw, Norm: norm}

	// Update outcome models with fresh profiling at the deployed configs.
	for i, clip := range s.sys.Clips {
		s.clips[i].addMeasurement(c.cfgs[i], s.prof.Measure(clip, c.cfgs[i]))
		s.countProfile()
		if err := s.clips[i].refit(); err != nil {
			return ob, err
		}
	}

	// Update the preference model with one more comparison (line 19).
	if s.learner != nil && len(s.obs) > 0 {
		best := s.bestObservation()
		i := s.learner.Model.AddPoint(norm.Slice())
		j := s.learner.Model.AddPoint(best.Norm.Slice())
		if i != j {
			var err error
			if s.dm.Prefer(norm, best.Norm) {
				err = s.learner.Model.AddComparison(i, j)
			} else {
				err = s.learner.Model.AddComparison(j, i)
			}
			if err == nil {
				s.met.prefComps.Inc()
				if err := s.learner.Model.Fit(); err != nil {
					return ob, err
				}
			}
		}
	}

	ob.Benefit = s.believedBenefit(norm)
	if err := s.opt.Check.Finite("believed_benefit", ob.Benefit); err != nil {
		return ob, fmt.Errorf("pamo: believed benefit: %w", err)
	}
	s.obs = append(s.obs, ob)
	s.met.observations.Inc()
	return ob, nil
}

// zeroJitterOffsets computes Theorem 1 offsets for the deployed streams
// group by group.
func (s *Scheduler) zeroJitterOffsets(streams []sched.Stream, plan sched.Plan) []float64 {
	offsets := make([]float64, len(streams))
	for g, members := range plan.Groups {
		if len(members) == 0 {
			continue
		}
		srv := s.sys.Servers[plan.GroupServer[g]]
		specs := make([]cluster.StreamSpec, len(members))
		for k, si := range members {
			specs[k] = cluster.StreamSpec{
				Period: streams[si].Period.Float(),
				Proc:   streams[si].Proc,
				Bits:   streams[si].Bits,
			}
		}
		specs = cluster.ZeroJitterOffsetsOn(specs, srv)
		for k, si := range members {
			offsets[si] = specs[k].Offset
		}
	}
	return offsets
}

// believedBenefit scores a normalized outcome under the scheduler's
// current belief: the learned preference model's posterior mean, or the
// true preference for PaMO+.
func (s *Scheduler) believedBenefit(norm objective.Vector) float64 {
	if s.opt.UseTruePref {
		return s.opt.TruePref.Benefit(norm)
	}
	mu, _ := s.learner.Model.PredictOne(norm.Slice())
	return mu
}

// refreshBenefits rescores every observation under the latest preference
// model (the learned utility scale drifts as comparisons accumulate).
func (s *Scheduler) refreshBenefits() {
	for i := range s.obs {
		s.obs[i].Benefit = s.believedBenefit(s.obs[i].Norm)
	}
}

func (s *Scheduler) bestObservation() Observation {
	var best Observation
	bestZ := math.Inf(-1)
	for _, o := range s.obs {
		if o.Benefit > bestZ {
			bestZ = o.Benefit
			best = o
		}
	}
	return best
}

// initialObservations seeds the BO loop with a few evaluated random
// feasible configurations so qNEI has a noisy incumbent to improve on.
func (s *Scheduler) initialObservations() error {
	tried := 0
	for len(s.obs) < s.opt.InitObs && tried < s.opt.InitObs*40 {
		tried++
		c, ok := s.plan(s.randomConfigs())
		if !ok {
			continue
		}
		if _, err := s.observe(c); err != nil {
			return err
		}
	}
	if len(s.obs) == 0 {
		return errNoFeasible
	}
	s.refreshBenefits()
	return nil
}

var errNoFeasible = errNoFeasibleT{}

type errNoFeasibleT struct{}

func (errNoFeasibleT) Error() string {
	return "pamo: no feasible zero-jitter configuration found for this system"
}

// Unwrap ties the failure to sched.ErrInfeasible so the fault-tolerant
// runtime can recognize it and fall back to the degradation policy.
func (errNoFeasibleT) Unwrap() error { return sched.ErrInfeasible }
