package pamo

import (
	"math"
	"math/rand/v2"
	goruntime "runtime"
	"sync"

	"repro/internal/acq"
	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/sched"
	"repro/internal/videosim"
)

// benefitSampler adapts the composed model (per-clip outcome GPs →
// normalized outcome vector → preference GP) into the acq.Sampler
// interface. Points are opaque handles (indices into cands) rather than
// coordinates, because the sampler needs each candidate's plan.
type benefitSampler struct {
	s     *Scheduler
	cands []candidate // the candidate universe this sampler covers
}

// point encodes candidate index i as a 1-vector so it fits acq.Sampler.
func point(i int) []float64 { return []float64{float64(i)} }

// SampleBenefit draws nSamples joint samples of the believed benefit
// z = g(f(x)) at the referenced candidates, propagating both outcome-GP
// and preference-GP uncertainty (the integrand of Eq. 12).
func (bs *benefitSampler) SampleBenefit(points [][]float64, nSamples int, rng *rand.Rand) [][]float64 {
	idx := make([]int, len(points))
	for i, p := range points {
		idx[i] = int(p[0])
	}
	// Joint outcome samples per clip per metric at the configs of every
	// referenced candidate.
	q := len(idx)
	m := bs.s.sys.M()
	samples := make([][]objective.Vector, nSamples) // [sample][point]raw outcome
	for si := range samples {
		samples[si] = make([]objective.Vector, q)
	}
	// Per-clip joint draws across the candidate points. The 5·M draws are
	// independent — the paper's batch recommendation exists precisely so
	// observations can proceed in parallel — so fan them out over workers.
	// Each task gets an RNG derived from (base seed, clip, metric), which
	// keeps results identical regardless of goroutine scheduling.
	type draw struct{ byMetric [numMetrics][][]float64 }
	draws := make([]draw, m)
	seedBase := rng.Uint64()
	workers := bs.s.opt.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ci := 0; ci < m; ci++ {
		cfgs := make([]videosim.Config, q)
		for j, cand := range idx {
			cfgs[j] = bs.cands[cand].cfgs[ci]
		}
		for mi := metric(0); mi < numMetrics; mi++ {
			wg.Add(1)
			go func(ci int, mi metric, cfgs []videosim.Config) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				taskRng := rand.New(rand.NewPCG(seedBase, uint64(ci)*uint64(numMetrics)+uint64(mi)+1))
				draws[ci].byMetric[mi] = bs.s.clips[ci].m[mi].sampleJoint(cfgs, nSamples, taskRng)
			}(ci, mi, cfgs)
		}
	}
	wg.Wait()
	// Compose raw outcome vectors per sample per point.
	for si := 0; si < nSamples; si++ {
		for j, cand := range idx {
			c := &bs.cands[cand]
			var v objective.Vector
			for ci := 0; ci < m; ci++ {
				d := &draws[ci]
				v[objective.Accuracy] += clamp01(d.byMetric[mAcc][si][j]) / float64(m)
				v[objective.Network] += math.Max(0, d.byMetric[mBits][si][j]) * c.cfgs[ci].FPS
				v[objective.Compute] += math.Max(0, d.byMetric[mComp][si][j])
				v[objective.Energy] += math.Max(0, d.byMetric[mPow][si][j])
			}
			var lat float64
			for k, st := range c.streams {
				b := bs.s.sys.Servers[c.plan.StreamServer[k]].Uplink
				tx := 0.0
				if b > 0 {
					tx = math.Max(0, draws[st.Video].byMetric[mBits][si][j]) / b
				}
				lat += math.Max(0, draws[st.Video].byMetric[mProc][si][j]) + tx
			}
			if len(c.streams) > 0 {
				v[objective.Latency] = lat / float64(len(c.streams))
			}
			samples[si][j] = v
		}
	}
	// Map through the (learned or true) preference to benefit samples.
	out := make([][]float64, nSamples)
	for si := 0; si < nSamples; si++ {
		row := make([]float64, q)
		if bs.s.opt.UseTruePref {
			for j := range row {
				row[j] = bs.s.opt.TruePref.Benefit(bs.s.norm.Normalize(samples[si][j]))
			}
		} else {
			ys := make([][]float64, q)
			for j := range ys {
				ys[j] = bs.s.norm.Normalize(samples[si][j]).Slice()
			}
			row = bs.s.learner.Model.Sample(ys, 1, rng)[0]
		}
		out[si] = row
	}
	return out
}

// selectBatch implements line 15 of Algorithm 2: greedy sequential batch
// construction under the configured acquisition function.
func (s *Scheduler) selectBatch(cands []candidate) []candidate {
	b := s.opt.Batch
	if b > len(cands) {
		b = len(cands)
	}
	// The sampler's universe covers candidates plus the observed points so
	// qNEI can sample the noisy incumbent jointly.
	universe := append([]candidate(nil), cands...)
	obsStart := len(universe)
	for _, o := range s.obs {
		universe = append(universe, s.observationCandidate(o))
	}
	bs := &benefitSampler{s: s, cands: universe}

	obsPts := make([][]float64, 0, len(s.obs))
	for i := range s.obs {
		obsPts = append(obsPts, point(obsStart+i))
	}
	incumbent := math.Inf(-1)
	for _, o := range s.obs {
		if o.Benefit > incumbent {
			incumbent = o.Benefit
		}
	}

	chosen := make([]int, 0, b)
	inBatch := make([]bool, len(cands))
	for len(chosen) < b {
		bestIdx, bestVal := -1, math.Inf(-1)
		for ci := range cands {
			if inBatch[ci] {
				continue
			}
			trial := make([][]float64, 0, len(chosen)+1)
			for _, c := range chosen {
				trial = append(trial, point(c))
			}
			trial = append(trial, point(ci))
			rng := rand.New(rand.NewPCG(s.opt.Seed+uint64(len(chosen))*131+uint64(ci), 0xACC))
			var v float64
			switch s.opt.Acq {
			case QEI:
				v = acq.QEI(bs, trial, incumbent, s.opt.MCSamples, rng)
			case QUCB:
				v = acq.QUCB(bs, trial, s.opt.UCBBeta, s.opt.MCSamples, rng)
			case QSR:
				v = acq.QSR(bs, trial, s.opt.MCSamples, rng)
			default:
				v = acq.QNEI(bs, trial, obsPts, s.opt.MCSamples, rng)
			}
			if v > bestVal {
				bestVal, bestIdx = v, ci
			}
		}
		if bestIdx < 0 {
			break
		}
		inBatch[bestIdx] = true
		chosen = append(chosen, bestIdx)
	}
	out := make([]candidate, len(chosen))
	for i, ci := range chosen {
		out[i] = cands[ci]
	}
	return out
}

// observationCandidate rebuilds a candidate view of a past observation so
// the sampler can re-sample its benefit jointly with new candidates.
func (s *Scheduler) observationCandidate(o Observation) candidate {
	return candidate{
		cfgs:    o.Decision.Configs,
		streams: o.Decision.Streams,
		plan:    sched.Plan{StreamServer: o.Decision.Assign},
	}
}

// --- observation --------------------------------------------------------

// observe deploys a candidate: physics (ground truth + DES latency)
// happens, the profiler records fresh per-clip samples, and the preference
// model gains one comparison against the incumbent.
func (s *Scheduler) observe(c candidate) (Observation, error) {
	// The deployed streams keep the plan's periods/splitting but the
	// true processing times and frame sizes apply.
	streams := append([]sched.Stream(nil), c.streams...)
	for i := range streams {
		clip := s.sys.Clips[streams[i].Video]
		cfg := c.cfgs[streams[i].Video]
		streams[i].Proc = clip.ProcTimeOf(cfg)
		streams[i].Bits = clip.BitsOf(cfg)
	}
	offsets := s.zeroJitterOffsets(streams, c.plan)
	dec := eva.Decision{
		Configs: c.cfgs,
		Streams: streams,
		Assign:  c.plan.StreamServer,
		Offsets: offsets,
		ZeroJit: true,
	}
	raw := eva.Evaluate(s.sys, dec)
	norm := s.norm.Normalize(raw)
	ob := Observation{Decision: dec, Raw: raw, Norm: norm}

	// Update outcome models with fresh profiling at the deployed configs.
	for i, clip := range s.sys.Clips {
		s.clips[i].addMeasurement(c.cfgs[i], s.prof.Measure(clip, c.cfgs[i]))
		s.profiles++
		if err := s.clips[i].refit(); err != nil {
			return ob, err
		}
	}

	// Update the preference model with one more comparison (line 19).
	if s.learner != nil && len(s.obs) > 0 {
		best := s.bestObservation()
		i := s.learner.Model.AddPoint(norm.Slice())
		j := s.learner.Model.AddPoint(best.Norm.Slice())
		if i != j {
			var err error
			if s.dm.Prefer(norm, best.Norm) {
				err = s.learner.Model.AddComparison(i, j)
			} else {
				err = s.learner.Model.AddComparison(j, i)
			}
			if err == nil {
				if err := s.learner.Model.Fit(); err != nil {
					return ob, err
				}
			}
		}
	}

	ob.Benefit = s.believedBenefit(norm)
	s.obs = append(s.obs, ob)
	return ob, nil
}

// zeroJitterOffsets computes Theorem 1 offsets for the deployed streams
// group by group.
func (s *Scheduler) zeroJitterOffsets(streams []sched.Stream, plan sched.Plan) []float64 {
	offsets := make([]float64, len(streams))
	for g, members := range plan.Groups {
		if len(members) == 0 {
			continue
		}
		srv := s.sys.Servers[plan.GroupServer[g]]
		specs := make([]cluster.StreamSpec, len(members))
		for k, si := range members {
			specs[k] = cluster.StreamSpec{
				Period: streams[si].Period.Float(),
				Proc:   streams[si].Proc,
				Bits:   streams[si].Bits,
			}
		}
		specs = cluster.ZeroJitterOffsets(specs, srv.Uplink)
		for k, si := range members {
			offsets[si] = specs[k].Offset
		}
	}
	return offsets
}

// believedBenefit scores a normalized outcome under the scheduler's
// current belief: the learned preference model's posterior mean, or the
// true preference for PaMO+.
func (s *Scheduler) believedBenefit(norm objective.Vector) float64 {
	if s.opt.UseTruePref {
		return s.opt.TruePref.Benefit(norm)
	}
	mu, _ := s.learner.Model.PredictOne(norm.Slice())
	return mu
}

// refreshBenefits rescores every observation under the latest preference
// model (the learned utility scale drifts as comparisons accumulate).
func (s *Scheduler) refreshBenefits() {
	for i := range s.obs {
		s.obs[i].Benefit = s.believedBenefit(s.obs[i].Norm)
	}
}

func (s *Scheduler) bestObservation() Observation {
	var best Observation
	bestZ := math.Inf(-1)
	for _, o := range s.obs {
		if o.Benefit > bestZ {
			bestZ = o.Benefit
			best = o
		}
	}
	return best
}

// initialObservations seeds the BO loop with a few evaluated random
// feasible configurations so qNEI has a noisy incumbent to improve on.
func (s *Scheduler) initialObservations() error {
	tried := 0
	for len(s.obs) < s.opt.InitObs && tried < s.opt.InitObs*40 {
		tried++
		c, ok := s.plan(s.randomConfigs())
		if !ok {
			continue
		}
		if _, err := s.observe(c); err != nil {
			return err
		}
	}
	if len(s.obs) == 0 {
		return errNoFeasible
	}
	s.refreshBenefits()
	return nil
}

var errNoFeasible = errNoFeasibleT{}

type errNoFeasibleT struct{}

func (errNoFeasibleT) Error() string {
	return "pamo: no feasible zero-jitter configuration found for this system"
}
