package pamo

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/pref"
)

// TestValidateDeterministicMessage pins the Options.Validate fix: with
// several invalid options at once, the error must name ALL of them, in
// struct field order, identically on every call — the old map iteration
// made the reported option depend on Go's randomized map order.
func TestValidateDeterministicMessage(t *testing.T) {
	o := Options{
		InitProfiles: -1,
		PrefPairs:    -3,
		MCSamples:    -2,
		Workers:      -9,
		Delta:        -0.5,
		Acq:          "bogus",
		ROIGrid:      []float64{0.5, 1.5},
	}
	first := o.Validate()
	if first == nil {
		t.Fatal("invalid options accepted")
	}
	msg := first.Error()
	for _, want := range []string{
		"InitProfiles", "PrefPairs", "MCSamples", "Workers",
		"Delta", `"bogus"`, "ROIGrid[1]",
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q does not mention %s", msg, want)
		}
	}
	// Field order is fixed: InitProfiles before PrefPairs before Workers.
	if strings.Index(msg, "InitProfiles") > strings.Index(msg, "PrefPairs") ||
		strings.Index(msg, "PrefPairs") > strings.Index(msg, "Workers") {
		t.Fatalf("violations out of field order: %q", msg)
	}
	for i := 0; i < 100; i++ {
		if got := o.Validate().Error(); got != msg {
			t.Fatalf("run %d: message changed:\n%q\n%q", i, got, msg)
		}
	}
}

// TestAcqStreamNoCollisions pins the seed-derivation fix: across 10k
// acquisition rounds and multiple seeds, every derived PCG stream must be
// distinct. The old derivation Seed^(round·GOLDEN) provably collided —
// demonstrated at the bottom.
func TestAcqStreamNoCollisions(t *testing.T) {
	const golden = 0x9E3779B97F4A7C15
	type pair struct{ hi, lo uint64 }
	seen := make(map[pair][]string, 40000)
	for _, seed := range []uint64{0, 1, golden, 0xDEADBEEF} {
		for round := uint64(0); round < 10000; round++ {
			hi, lo := acqStream(seed, round)
			p := pair{hi, lo}
			seen[p] = append(seen[p], "")
			if len(seen[p]) > 1 {
				t.Fatalf("stream collision at seed=%#x round=%d", seed, round)
			}
		}
	}

	// The old scheme: seed=0 at round 0 and seed=GOLDEN at round 1 both
	// derived state word 0 (with the constant 0xACC as the second word).
	oldDerive := func(seed, round uint64) uint64 { return seed ^ (round * golden) }
	if oldDerive(0, 0) != oldDerive(golden, 1) {
		t.Fatal("expected the old derivation to collide (the bug this test pins)")
	}
}

// TestStrictRunCleanAndCheckedMetrics runs PaMO end to end under a strict
// checker: no invariant may fire on a healthy run, and the check_* metrics
// must show decisions were actually verified.
func TestStrictRunCleanAndCheckedMetrics(t *testing.T) {
	rec := obs.NewRecorder(nil)
	chk := check.New(true, rec)
	sys := testSys(5, 4, 7)
	opt := smallOpts(3)
	opt.Check = chk
	// Fixed belief (PaMO+): the incumbent guard runs in its strict
	// monotone mode.
	opt.UseTruePref = true
	opt.TruePref = objective.UniformPreference()
	s := New(sys, &pref.Oracle{Pref: opt.TruePref}, opt)
	res, err := s.Run()
	if err != nil {
		t.Fatalf("strict run failed: %v", err)
	}
	if res.Iters == 0 {
		t.Fatal("no iterations ran")
	}
	snap := rec.Registry().Snapshot()
	if snap.Counters["check_checks_feasibility"] == 0 {
		t.Fatal("no decision was feasibility-checked")
	}
	if snap.Counters["check_checks_incumbent"] == 0 {
		t.Fatal("incumbent guard never ran")
	}
	if snap.Counters["check_checks_psd"] == 0 {
		t.Fatal("no posterior covariance was PSD-checked")
	}
	// Deployed-decision (true-proc) checks are metric-only: model error may
	// legitimately fire check_violation_const2, but planner-side invariants
	// must be clean, so any violation recorded must come from the relaxed
	// true-proc pass, not from a strict check (which would have errored).
	if v := snap.Counters["check_violations_total"]; v > 0 {
		t.Logf("relaxed true-proc checks recorded %d violations (model error, expected to be possible)", v)
	}
}

// TestLearnedPrefRunUnderStrictChecker: the incumbent guard must tolerate
// benefit-scale drift from preference refreshes (fixedBelief=false) — a
// learned-preference run must not error out on a rescale.
func TestLearnedPrefRunUnderStrictChecker(t *testing.T) {
	rec := obs.NewRecorder(nil)
	opt := smallOpts(11)
	opt.Check = check.New(true, rec)
	sys := testSys(4, 3, 21)
	s := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, opt)
	if _, err := s.Run(); err != nil {
		t.Fatalf("learned-preference strict run failed: %v", err)
	}
}
