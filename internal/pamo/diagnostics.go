package pamo

import (
	"fmt"

	"repro/internal/stats"
)

// MetricDiag is the leave-one-out quality of one clip's metric GP.
type MetricDiag struct {
	Clip   string
	Metric string
	N      int     // training points
	R2     float64 // LOO coefficient of determination
	LogLik float64 // LOO predictive log likelihood (standardized targets)
}

var metricNames = [numMetrics]string{"accuracy", "proc_time", "frame_bits", "compute", "power"}

// SamplingFallbacks returns how many of THIS scheduler's joint-posterior
// sampling calls degraded to the deterministic mean because the covariance
// could not be factorized (gp.SampleMVN's silent fallback). A non-zero
// count means part of the acquisition search ran blind to model
// uncertainty — worth surfacing in any trace/bench report. The counter is
// injected into every outcome GP and the preference model this scheduler
// owns, so concurrently running schedulers no longer cross-attribute each
// other's fallbacks (the old implementation diffed the process-wide
// gp.MVNFallbacks counter and did).
func (s *Scheduler) SamplingFallbacks() uint64 {
	return s.mvn.Load()
}

// Diagnostics reports the leave-one-out fit quality of every clip-metric
// outcome GP — the live-system counterpart of the paper's Figure 8 check.
// Call after Run (or at least after the profiling phase).
func (s *Scheduler) Diagnostics() ([]MetricDiag, error) {
	var out []MetricDiag
	for ci, cm := range s.clips {
		for mi, mg := range cm.m {
			if mg.g.N() == 0 {
				return nil, fmt.Errorf("pamo: diagnostics before profiling (clip %d)", ci)
			}
			mu, _ := mg.g.LeaveOneOut()
			obs := mg.g.Y()
			out = append(out, MetricDiag{
				Clip:   s.sys.Clips[ci].Name,
				Metric: metricNames[mi],
				N:      mg.g.N(),
				R2:     stats.R2(obs, mu),
				LogLik: mg.g.LOOLogLikelihood(),
			})
		}
	}
	return out, nil
}
