package pamo

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/eva"
	"repro/internal/objective"
	"repro/internal/pref"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/videosim"
)

func testSys(m, n int, seed uint64) *objective.System {
	servers := make([]cluster.Server, n)
	for j := range servers {
		servers[j] = cluster.Server{Uplink: float64(10+5*j) * 1e6}
	}
	return &objective.System{Clips: videosim.StandardClips(m, seed), Servers: servers}
}

// smallOpts keeps runs fast for unit tests.
func smallOpts(seed uint64) Options {
	return Options{
		InitProfiles: 15,
		InitObs:      3,
		PrefPairs:    10,
		PrefPool:     12,
		Batch:        2,
		MCSamples:    16,
		CandPool:     8,
		MaxIter:      4,
		Seed:         seed,
		UseEUBO:      true,
	}
}

func TestEncodeCfgRange(t *testing.T) {
	lo := encodeCfg(videosim.Config{Resolution: videosim.Resolutions[0], FPS: videosim.FrameRates[0]})
	hi := encodeCfg(videosim.Config{
		Resolution: videosim.Resolutions[len(videosim.Resolutions)-1],
		FPS:        videosim.FrameRates[len(videosim.FrameRates)-1],
	})
	if lo[0] != 0 || lo[1] != 0 || hi[0] != 1 || hi[1] != 1 {
		t.Fatalf("encode corners: %v %v", lo, hi)
	}
}

func TestMetricGPLearnsCurve(t *testing.T) {
	mg := newMetricGP(modelSpec{}, nil, nil, nil, nil)
	for _, r := range videosim.Resolutions {
		for _, s := range videosim.FrameRates {
			cfg := videosim.Config{Resolution: r, FPS: s}
			mg.add(encodeCfg(cfg), 0.125*r*r*s) // bandwidth-like surface
		}
	}
	if err := mg.refit(); err != nil {
		t.Fatal(err)
	}
	cfg := videosim.Config{Resolution: 1250, FPS: 15}
	truth := 0.125 * 1250 * 1250 * 15
	if got := mg.mean(cfg); math.Abs(got-truth)/truth > 0.1 {
		t.Fatalf("metric GP mean %v vs truth %v", got, truth)
	}
}

func TestMetricGPRefitEmptyFails(t *testing.T) {
	if err := newMetricGP(modelSpec{}, nil, nil, nil, nil).refit(); err == nil {
		t.Fatal("expected error")
	}
}

func TestPlanFeasibilityMatchesConstraints(t *testing.T) {
	sys := testSys(5, 4, 3)
	truth := objective.UniformPreference()
	s := New(sys, &pref.Oracle{Pref: truth}, smallOpts(1))
	if err := s.profileInit(); err != nil {
		t.Fatal(err)
	}
	c, ok := s.plan(s.randomConfigs())
	if !ok {
		t.Skip("random config infeasible; covered elsewhere")
	}
	if !sched.CheckConst2(c.streams, c.plan.StreamServer, sys.N()) {
		t.Fatal("plan violates Const2")
	}
}

func TestRunEndToEnd(t *testing.T) {
	sys := testSys(6, 4, 99)
	truth := objective.UniformPreference()
	dm := &pref.Oracle{Pref: truth}
	s := New(sys, dm, smallOpts(2))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters == 0 || len(res.History) == 0 {
		t.Fatalf("no iterations ran: %+v", res)
	}
	if res.Best.Decision.Configs == nil {
		t.Fatal("no best decision")
	}
	// The returned decision must be feasible and zero-jitter in simulation.
	if j := eva.MaxJitter(sys, res.Best.Decision); j > 1e-3 {
		t.Fatalf("best decision jitters: %v", j)
	}
	// Preference pairs were asked (initial V plus one per observation).
	if res.PrefPairs < 10 {
		t.Fatalf("asked only %d pairs", res.PrefPairs)
	}
	if res.Profiles == 0 {
		t.Fatal("no profiling happened")
	}
}

func TestRunPaMOPlusUsesNoComparisons(t *testing.T) {
	sys := testSys(5, 4, 55)
	truth := objective.UniformPreference()
	opt := smallOpts(3)
	opt.UseTruePref = true
	opt.TruePref = truth
	s := New(sys, nil, opt) // no decision maker needed
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefPairs != 0 {
		t.Fatalf("PaMO+ asked %d comparisons", res.PrefPairs)
	}
}

func TestPaMOPlusAtLeastAsGoodOnAverage(t *testing.T) {
	// Across seeds, PaMO+ (true preference) should achieve true benefit at
	// least around PaMO's (learned preference): the paper reports PaMO
	// within 0.0006%–11% of PaMO+.
	sys := testSys(6, 4, 77)
	truth := objective.Preference{W: objective.Vector{1, 2, 1, 1, 0.5}}
	norm := objective.NewNormalizer(sys)
	var sumPlus, sumLearned float64
	const runs = 2
	for seed := uint64(0); seed < runs; seed++ {
		optP := smallOpts(10 + seed)
		optP.UseTruePref = true
		optP.TruePref = truth
		rp, err := New(sys, nil, optP).Run()
		if err != nil {
			t.Fatal(err)
		}
		sumPlus += truth.Benefit(norm.Normalize(rp.Best.Raw))

		dm := &pref.Oracle{Pref: truth}
		rl, err := New(sys, dm, smallOpts(10+seed)).Run()
		if err != nil {
			t.Fatal(err)
		}
		sumLearned += truth.Benefit(norm.Normalize(rl.Best.Raw))
	}
	if sumLearned > sumPlus+0.3 {
		t.Fatalf("learned preference implausibly beat true preference: %v vs %v", sumLearned/runs, sumPlus/runs)
	}
	// And neither should be terrible (0 is the utopia bound).
	if sumPlus/runs < -2.5 {
		t.Fatalf("PaMO+ mean benefit %v is at the worst-case floor", sumPlus/runs)
	}
}

func TestNoisyDecisionMakerDegradesGracefully(t *testing.T) {
	// With a noisy oracle the learned preference is rougher, but the
	// scheduler must still return a sane, feasible, zero-jitter decision.
	sys := testSys(5, 4, 91)
	truth := objective.UniformPreference()
	norm := objective.NewNormalizer(sys)
	dm := &pref.Oracle{Pref: truth, Noise: 0.3, Rng: stats.NewRNG(7)}
	res, err := New(sys, dm, smallOpts(8)).Run()
	if err != nil {
		t.Fatal(err)
	}
	u := truth.Benefit(norm.Normalize(res.Best.Raw))
	// Even with heavy comparison noise the result must beat the worst-case
	// floor (-5 for uniform weights) by a wide margin.
	if u < -2.5 {
		t.Fatalf("noisy-DM benefit %v at or below the random floor", u)
	}
	if j := eva.MaxJitter(sys, res.Best.Decision); j > 1e-3 {
		t.Fatalf("noisy-DM decision jitters: %v", j)
	}
}

func TestAcquisitionVariantsRun(t *testing.T) {
	sys := testSys(4, 3, 88)
	truth := objective.UniformPreference()
	for _, a := range []Acquisition{QNEI, QEI, QUCB, QSR} {
		opt := smallOpts(7)
		opt.Acq = a
		opt.MaxIter = 2
		res, err := New(sys, &pref.Oracle{Pref: truth}, opt).Run()
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Best.Decision.Configs == nil {
			t.Fatalf("%s: no decision", a)
		}
	}
}

func TestObservationsImproveOverTime(t *testing.T) {
	sys := testSys(5, 4, 33)
	truth := objective.UniformPreference()
	opt := smallOpts(9)
	opt.MaxIter = 6
	opt.Delta = 1e-9 // effectively disable early stopping
	s := New(sys, &pref.Oracle{Pref: truth}, opt)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 2 {
		t.Skipf("converged immediately (history %v)", res.History)
	}
	// Best-so-far believed benefit must be non-decreasing up to the
	// preference-model rescoring drift; allow small dips.
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1]-0.5 {
			t.Fatalf("best benefit collapsed: %v", res.History)
		}
	}
}

func TestDiagnosticsReportLOOQuality(t *testing.T) {
	sys := testSys(3, 3, 71)
	s := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, smallOpts(6))
	if _, err := s.Diagnostics(); err == nil {
		t.Fatal("diagnostics before profiling should fail")
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	diags, err := s.Diagnostics()
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3*5 {
		t.Fatalf("diags = %d, want 15", len(diags))
	}
	for _, d := range diags {
		if d.N == 0 || d.Clip == "" || d.Metric == "" {
			t.Fatalf("incomplete diag %+v", d)
		}
		// The surfaces are smooth and the profiler is 2%-noise: LOO R²
		// should be clearly positive for all metrics.
		if d.R2 < 0.3 {
			t.Fatalf("LOO R² for %s/%s = %v", d.Clip, d.Metric, d.R2)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Batch: -1},
		{Delta: -0.1},
		{Acq: "nonsense"},
		{ROIGrid: []float64{0}},
		{ROIGrid: []float64{1.5}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
	// Run surfaces the validation error.
	sys := testSys(2, 2, 1)
	opt := smallOpts(1)
	opt.Acq = "bogus"
	if _, err := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, opt).Run(); err == nil {
		t.Fatal("Run accepted invalid options")
	}
}

func TestOnIterationCallback(t *testing.T) {
	sys := testSys(4, 3, 22)
	var iters []int
	opt := smallOpts(2)
	opt.Delta = 1e-9
	opt.OnIteration = func(iter int, best float64) {
		iters = append(iters, iter)
		if best > 10 || best < -10 {
			t.Errorf("implausible best benefit %v", best)
		}
	}
	res, err := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, opt).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != res.Iters {
		t.Fatalf("callback fired %d times for %d iterations", len(iters), res.Iters)
	}
	for i, v := range iters {
		if v != i+1 {
			t.Fatalf("iterations out of order: %v", iters)
		}
	}
}

func TestRunFailsWhenNoFeasibleConfigExists(t *testing.T) {
	// Clips so heavy that even the minimum configuration cannot satisfy
	// the zero-jitter constraint on the available servers.
	clips := make([]*videosim.Clip, 6)
	for i := range clips {
		clips[i] = &videosim.Clip{
			Name: "heavy", AccBase: 0.9, AccFactor: 1,
			ComputeFac: 16, BitFac: 1, EnergyFac: 1, // proc(500) ≈ 0.2 s
		}
	}
	sys := &objective.System{
		Clips:   clips,
		Servers: []cluster.Server{{Uplink: 1e7}},
	}
	_, err := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, smallOpts(3)).Run()
	if err == nil {
		t.Fatal("expected failure on an infeasible system")
	}
}

func TestROIGridExpandsSearchSpace(t *testing.T) {
	sys := testSys(4, 3, 44)
	truth := objective.UniformPreference()
	truth.W[objective.Energy] = 2
	opt := smallOpts(5)
	opt.UseTruePref = true
	opt.TruePref = truth
	opt.ROIGrid = []float64{0.5, 1}
	res, err := New(sys, nil, opt).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range res.Best.Decision.Configs {
		if cfg.ROI != 0 && cfg.ROI != 0.5 && cfg.ROI != 1 {
			t.Fatalf("ROI off grid: %v", cfg.ROI)
		}
	}
}

func TestParallelSamplingDeterministicAcrossWorkerCounts(t *testing.T) {
	sys := testSys(5, 4, 66)
	truth := objective.UniformPreference()
	run := func(workers int) []videosim.Config {
		opt := smallOpts(12)
		opt.Workers = workers
		res, err := New(sys, &pref.Oracle{Pref: truth}, opt).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.Decision.Configs
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("worker count changed the decision: %+v vs %+v", serial, parallel)
		}
	}
}

func TestStepKnobStaysOnGrid(t *testing.T) {
	sys := testSys(2, 2, 1)
	s := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, smallOpts(4))
	for i := 0; i < 200; i++ {
		v := stepKnob(videosim.Resolutions, videosim.Resolutions[s.rng.IntN(len(videosim.Resolutions))], s.rng)
		found := false
		for _, g := range videosim.Resolutions {
			if g == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("stepKnob left the grid: %v", v)
		}
	}
}
