package pamo

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"sync/atomic"

	"repro/internal/acq"
	"repro/internal/check"
	"repro/internal/eva"
	"repro/internal/gp"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/pref"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/videosim"
)

// Acquisition selects the acquisition function used by the solution phase.
type Acquisition string

// Supported acquisition functions (the paper's qNEI plus the ablation
// variants of Section 5.1).
const (
	QNEI Acquisition = "qnei"
	QEI  Acquisition = "qei"
	QUCB Acquisition = "qucb"
	QSR  Acquisition = "qsr"
)

// Options tunes the PaMO scheduler. Zero values select defaults sized for
// the paper's experiments (8 videos, 5 servers).
type Options struct {
	InitProfiles int // profiling configs per clip before the loop (default 24)
	InitObs      int // initial full-system observations (default 4)
	PrefPairs    int // V: decision-maker comparisons (default 18)
	PrefPool     int // candidate outcome vectors for EUBO pairs (default 24)
	Batch        int // b: candidates recommended per iteration (default 4)
	MCSamples    int // Monte-Carlo samples inside per-trial acquisitions (default 32)
	// SharedDraws is the number of joint posterior draws for the
	// shared-sample acquisition path (default 4×MCSamples). One draw set
	// over the candidate∪observation universe is reused by every greedy
	// (slot, candidate) score, so the budget can be larger than MCSamples
	// at a fraction of the legacy path's sampling cost. Sharing draws also
	// acts as common random numbers for the greedy argmax: competing
	// candidates are compared under identical noise, so their score
	// *differences* have far lower variance than independently re-sampled
	// per-trial estimates of the same budget.
	SharedDraws int
	// PerTrialAcq selects the legacy acquisition path that re-samples the
	// joint posterior for every trial batch (O(b·CandPool) sampling passes
	// per iteration). It exists as a validation reference for the default
	// shared-sample path and for experiments that want fully independent
	// Monte-Carlo noise per trial.
	PerTrialAcq   bool
	CandPool      int         // candidate configurations per iteration (default 20)
	MaxIter       int         // BO iteration cap (default 12)
	Delta         float64     // convergence threshold δ on benefit change (default 0.02)
	Acq           Acquisition // default QNEI
	UCBBeta       float64     // exploration weight for QUCB (default 2)
	UseTruePref   bool        // PaMO+: score with the true preference function
	TruePref      objective.Preference
	UseEUBO       bool // select comparison pairs by EUBO (default true via NewDefault)
	OptimizeHyper bool // tune outcome-GP hyperparameters after initial profiling
	// OptimizePrefHyper tunes the preference GP's kernel and probit scale
	// by Laplace evidence after the initial comparisons — worthwhile when
	// the hidden benefit has sharp non-linearities (SLA thresholds, tiered
	// tariffs) that the default long lengthscale smooths over.
	OptimizePrefHyper bool
	ProfilerNoise     float64
	// Measurer overrides where profiling measurements come from (e.g. a
	// trace.Replayer); nil selects the live noisy profiler.
	Measurer videosim.Measurer
	// Workers bounds the goroutines used for posterior sampling inside the
	// acquisition function (0 = GOMAXPROCS). Results are deterministic for
	// a given Seed regardless of the worker count.
	Workers int
	// ROIGrid enables the adaptive-encoding/segmented-inference extension:
	// the ROI fraction becomes a third per-stream knob drawn from this
	// grid. Empty means full-frame only (the paper's configuration space).
	ROIGrid []float64
	// OnIteration, when non-nil, is called after every BO iteration with
	// the iteration number (1-based) and the best believed benefit so far.
	OnIteration func(iter int, bestBenefit float64)
	// Obs, when non-nil, receives phase spans ("profiling",
	// "outcome_model", "preference", "solution", plus one "iteration" span
	// per BO round), per-iteration acquisition events, and the pamo_*
	// metrics of the recorder's registry. Nil disables telemetry at
	// zero cost.
	Obs *obs.Recorder
	// Check, when non-nil, verifies correctness invariants as the run
	// proceeds: exact Const1/Const2 feasibility of every planned candidate,
	// deployed-decision feasibility under the TRUE processing times
	// (metric-only — model error there is expected and surfaced, not
	// fatal), finiteness of measured outcomes and benefits, and incumbent
	// monotonicity in the BO loop (strict only under UseTruePref; a learned
	// preference refresh legitimately rescales past benefits). A strict
	// checker turns planner-side violations into hard run errors.
	Check *check.Checker
	Seed  uint64
	// ServerMask restricts planning to the servers marked true (nil = all):
	// the fault-tolerant runtime sets it so replans after a crash land only
	// on survivors. Returned assignments still use the full physical server
	// index space.
	ServerMask []bool
	// Models, when non-nil, persists per-clip outcome models across
	// scheduler instances (see Bank): clips already banked reuse their
	// conditioned models and skip initial profiling entirely; clips the
	// bank has never seen warm-start from the most similar banked clip —
	// pooled kernel hyperpriors plus down-weighted virtual observations —
	// at the reduced WarmProfiles budget. Nil (the default) keeps every
	// clip on the cold path, byte-identical to the pre-bank behavior.
	Models *Bank
	// WarmProfiles is the initial profiling budget for a warm-started clip
	// (default InitProfiles/2 − 2, at least 2, so a warm start costs at most
	// half a cold one including the two corner anchors).
	WarmProfiles int
	// WarmKeep is how many donor observations a warm start injects as
	// virtual points (default 12).
	WarmKeep int
	// WarmNoiseInflate down-weights the virtual donor observations: while
	// any remain, the warm model runs at this multiple of the pooled noise
	// variance (default 25; values below 1 are clamped to 1).
	WarmNoiseInflate float64
	// Sparse selects inducing-point sparse outcome models (SoR with FITC
	// variance correction, see gp.SparseGP) instead of exact GPs: O(m)
	// posterior means and O(nm + m²) incremental refits with m ≪ n, at a
	// bounded approximation cost. Off by default — exact models are the
	// golden-pinned configuration.
	Sparse bool
	// SparseInducing caps the inducing set size m (default 64).
	SparseInducing int
	// SparseMaxObs budget-caps each sparse model's observation set: beyond
	// it, every new observation forgets the retained one whose leave-one-out
	// impact on the incumbent's posterior is smallest. 0 keeps everything.
	SparseMaxObs int
	// ReuseDraws amortizes the shared-sample acquisition across scheduler
	// runs: when an iteration's candidate∪observation universe matches a
	// cached epoch and the posterior moved less than DrawReuseTol at every
	// pooled point, the previous epoch's joint draws are reused instead of
	// re-sampled (see acq.DrawCache). Requires Draws; off by default.
	ReuseDraws bool
	// DrawReuseTol is the maximum absolute posterior movement — believed
	// benefit mean and preference variance per universe point — under which
	// cached draws still stand in for fresh ones (default 1e-3).
	DrawReuseTol float64
	// Draws, when non-nil, persists the shared-draw cache across scheduler
	// instances, like Models does for outcome models: the runtime hands the
	// same cache to every epoch's scheduler so unchanged epochs skip the
	// Monte-Carlo sampling entirely.
	Draws *acq.DrawCache
}

// Validate rejects option values the scheduler cannot run with. Every
// violation is reported, in struct field order, inside one deterministic
// error — the old implementation ranged over a map[string]int, so which
// negative option it named depended on map iteration order and the same
// bad Options could produce different messages across runs.
func (o Options) Validate() error {
	var bad []string
	for _, f := range []struct {
		name string
		v    int
	}{
		{"InitProfiles", o.InitProfiles},
		{"InitObs", o.InitObs},
		{"PrefPairs", o.PrefPairs},
		{"PrefPool", o.PrefPool},
		{"Batch", o.Batch},
		{"MCSamples", o.MCSamples},
		{"SharedDraws", o.SharedDraws},
		{"CandPool", o.CandPool},
		{"MaxIter", o.MaxIter},
		{"Workers", o.Workers},
		{"WarmProfiles", o.WarmProfiles},
		{"WarmKeep", o.WarmKeep},
		{"SparseInducing", o.SparseInducing},
		{"SparseMaxObs", o.SparseMaxObs},
	} {
		if f.v < 0 {
			bad = append(bad, fmt.Sprintf("option %s is negative (%d)", f.name, f.v))
		}
	}
	if o.Delta < 0 {
		bad = append(bad, fmt.Sprintf("Delta is negative (%v)", o.Delta))
	}
	if o.WarmNoiseInflate < 0 {
		bad = append(bad, fmt.Sprintf("WarmNoiseInflate is negative (%v)", o.WarmNoiseInflate))
	}
	if o.DrawReuseTol < 0 {
		bad = append(bad, fmt.Sprintf("DrawReuseTol is negative (%v)", o.DrawReuseTol))
	}
	switch o.Acq {
	case "", QNEI, QEI, QUCB, QSR:
	default:
		bad = append(bad, fmt.Sprintf("unknown acquisition %q", o.Acq))
	}
	for i, r := range o.ROIGrid {
		if r <= 0 || r > 1 {
			bad = append(bad, fmt.Sprintf("ROIGrid[%d] = %v outside (0, 1]", i, r))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("pamo: %s", strings.Join(bad, "; "))
}

func (o Options) withDefaults() Options {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&o.InitProfiles, 24)
	def(&o.InitObs, 4)
	def(&o.PrefPairs, 18)
	def(&o.PrefPool, 24)
	def(&o.Batch, 4)
	def(&o.MCSamples, 32)
	def(&o.SharedDraws, 4*o.MCSamples)
	def(&o.CandPool, 20)
	def(&o.MaxIter, 12)
	if o.Delta == 0 {
		o.Delta = 0.02
	}
	if o.Acq == "" {
		o.Acq = QNEI
	}
	if o.UCBBeta == 0 {
		o.UCBBeta = 2
	}
	if o.ProfilerNoise == 0 {
		o.ProfilerNoise = 0.02
	}
	if o.WarmProfiles == 0 {
		o.WarmProfiles = o.InitProfiles/2 - 2
		if o.WarmProfiles < 2 {
			o.WarmProfiles = 2
		}
	}
	def(&o.WarmKeep, 12)
	if o.WarmNoiseInflate == 0 {
		o.WarmNoiseInflate = 25
	}
	def(&o.SparseInducing, 64)
	if o.DrawReuseTol == 0 {
		o.DrawReuseTol = 1e-3
	}
	return o
}

// Observation is one evaluated full-system configuration.
type Observation struct {
	Decision eva.Decision
	Raw      objective.Vector // measured outcomes (DES latency)
	Norm     objective.Vector
	Benefit  float64 // benefit under the scheduler's current belief
}

// Result is the output of a PaMO run.
type Result struct {
	Best      Observation
	History   []float64 // best believed benefit after each iteration
	Iters     int
	Converged bool
	PrefPairs int // comparisons actually asked
	Profiles  int // profiling measurements taken
	// MVNFallbacks counts joint-posterior sampling calls during this run
	// that degraded to the deterministic mean because a covariance could
	// not be factorized (see gp.SampleMVN). Non-zero values mean part of
	// the acquisition ran without posterior uncertainty.
	MVNFallbacks uint64
}

// Scheduler is the PaMO scheduler instance.
type Scheduler struct {
	sys  *objective.System
	dm   pref.DecisionMaker
	opt  Options
	rng  *rand.Rand
	prof videosim.Measurer
	norm objective.Normalizer

	ctx context.Context // RunContext's cancellation, nil for plain Run
	// evctx is the innermost open span's context: phases and BO iterations
	// update it as their spans open and close so deeply nested emitters
	// (recordAcq, three frames below the iteration loop) attribute events
	// to the right span without threading a context through the acquisition
	// call chain. Schedulers run one RunContext at a time, so plain field
	// writes suffice.
	evctx context.Context

	clips          []*clipModels
	seeds          []clipSeed
	learner        *pref.Learner
	obs            []Observation
	profiles       int
	tournamentAsks int

	rec      *obs.Recorder
	met      schedMetrics
	acqRound uint64 // acquisition rounds run, keys per-round RNG streams
	// mvn counts THIS scheduler's posterior-sampling fallbacks: it is
	// injected into every outcome GP and the preference model, so
	// concurrently running schedulers no longer cross-attribute each
	// other's degraded sampling (the old process-wide counter did).
	mvn atomic.Uint64
}

// New builds a PaMO scheduler for the system. dm answers pairwise
// comparisons; it is ignored when opt.UseTruePref is set (PaMO+).
func New(sys *objective.System, dm pref.DecisionMaker, opt Options) *Scheduler {
	opt = opt.withDefaults()
	rng := stats.NewRNG(opt.Seed + 0x9A30)
	prof := opt.Measurer
	if prof == nil {
		prof = videosim.NewProfiler(opt.ProfilerNoise, stats.NewRNG(opt.Seed+0x70F1))
	}
	if opt.ReuseDraws && opt.Draws == nil {
		// A private cache still amortizes repeated re-solves through the same
		// scheduler; sharing across schedulers requires passing one in.
		opt.Draws = acq.NewDrawCache(0)
	}
	s := &Scheduler{
		sys:  sys,
		dm:   dm,
		opt:  opt,
		rng:  rng,
		prof: prof,
		norm: objective.NewNormalizer(sys),
		rec:  opt.Obs,
	}
	s.met = newSchedMetrics(opt.Obs.Registry())
	s.clips = make([]*clipModels, sys.M())
	s.seeds = make([]clipSeed, sys.M())
	for i := range s.clips {
		s.clips[i], s.seeds[i] = s.seedClip(sys.Clips[i])
	}
	if !opt.UseTruePref {
		s.learner = pref.NewLearner(dm, opt.UseEUBO, stats.NewRNG(opt.Seed+0xE0B0))
		s.learner.Model.SetFallbackCounter(&s.mvn)
	}
	return s
}

// modelSpec resolves the Options knobs into the outcome-model family and
// lifecycle-counter sinks new metric GPs are built with.
func (s *Scheduler) modelSpec() modelSpec {
	return modelSpec{
		sparse: s.opt.Sparse,
		sparseOpt: gp.SparseOptions{
			MaxInducing: s.opt.SparseInducing,
			MaxObs:      s.opt.SparseMaxObs,
		},
		gpObs:      s.met.gpObs,
		gpInducing: s.met.gpInducing,
		gpForget:   s.met.gpForget,
	}
}

// clipSeed records how a clip's outcome models were initialized.
type clipSeed int

const (
	seedCold clipSeed = iota // fresh models, full profiling budget
	seedWarm                 // warm-started from a bank donor, reduced budget
	seedBank                 // reused banked models, no initial profiling
)

// seedClip resolves one clip's outcome models against the model bank.
// Without a bank (the default) every clip is cold — byte-identical to the
// historical behavior. With one: an entry under the clip's own name that
// already holds measurements is reused outright; otherwise fresh models
// warm-start from the most similar banked clips (pooled hyperpriors from
// up to three donors, virtual observations from the closest). The fresh
// models are banked immediately — they are conditioned in place, so
// whatever this run learns is what the next scheduler inherits.
func (s *Scheduler) seedClip(clip *videosim.Clip) (*clipModels, clipSeed) {
	spec := s.modelSpec()
	b := s.opt.Models
	if b == nil {
		s.met.coldStarts.Inc()
		return newClipModels(spec, &s.mvn, s.met.cholInc, s.met.cholFull, s.opt.Check), seedCold
	}
	if cm, ok := b.get(clip.Name); ok && len(cm.m[mAcc].xs) > 0 {
		cm.rebind(spec, &s.mvn, s.met.cholInc, s.met.cholFull, s.opt.Check)
		s.met.bankHits.Inc()
		return cm, seedBank
	}
	cm := newClipModels(spec, &s.mvn, s.met.cholInc, s.met.cholFull, s.opt.Check)
	b.put(clip, cm)
	if donors := b.donors(clip, 3); len(donors) > 0 &&
		cm.warmFrom(donors, s.opt.WarmKeep, s.opt.WarmNoiseInflate) {
		s.met.warmStarts.Inc()
		return cm, seedWarm
	}
	s.met.coldStarts.Inc()
	return cm, seedCold
}

// Run executes Algorithm 2 end to end and returns the best decision found.
// With Options.Obs set, the four phases emit spans ("profiling",
// "outcome_model", "preference", "solution") and every BO round emits an
// "iteration" span plus an "acq" event carrying the greedy slot scores.
func (s *Scheduler) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: ctx is checked between
// phases and before every BO iteration, so the fault-tolerant runtime's
// decide deadline aborts a replan at the next boundary instead of waiting
// out the whole loop.
func (s *Scheduler) RunContext(ctx context.Context) (*Result, error) {
	if err := s.opt.Validate(); err != nil {
		return nil, err
	}
	if s.opt.ServerMask != nil {
		if len(s.opt.ServerMask) != s.sys.N() {
			return nil, fmt.Errorf("pamo: server mask length %d for %d servers", len(s.opt.ServerMask), s.sys.N())
		}
		alive := 0
		for _, ok := range s.opt.ServerMask {
			if ok {
				alive++
			}
		}
		if alive == 0 {
			return nil, fmt.Errorf("%w: no healthy servers in mask", sched.ErrInfeasible)
		}
	}
	s.ctx = ctx
	s.evctx = ctx
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.profileInit(); err != nil {
		return nil, fmt.Errorf("pamo: outcome-model phase: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.preferencePhase(); err != nil {
		return nil, fmt.Errorf("pamo: preference phase: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.solutionPhase()
}

// preferencePhase wraps the preference-modeling phase in its span and
// reports the comparison/EUBO budget actually spent.
func (s *Scheduler) preferencePhase() error {
	var err error
	s.rec.Do(s.ctx, "preference", func(ctx context.Context) {
		_, sp := s.rec.StartSpanCtx(ctx, "preference")
		defer sp.End()
		if err = s.learnPreference(); err != nil {
			return
		}
		if s.learner != nil {
			sp.Field("comparisons", float64(s.learner.Model.NumComparisons()))
			sp.Field("eubo_queries", float64(s.learner.EUBOQueries))
			s.met.euboQueries.Add(uint64(s.learner.EUBOQueries))
			s.met.prefComps.Add(uint64(s.learner.Model.NumComparisons()))
		}
	})
	return err
}

// solutionPhase runs the BO loop (lines 12–21 of Algorithm 2) and the
// final tournament, assembling the Result.
func (s *Scheduler) solutionPhase() (*Result, error) {
	var res *Result
	var err error
	s.rec.Do(s.ctx, "solution", func(ctx context.Context) {
		res, err = s.solutionLoop(ctx)
	})
	return res, err
}

func (s *Scheduler) solutionLoop(ctx context.Context) (*Result, error) {
	sctx, sp := s.rec.StartSpanCtx(ctx, "solution")
	defer sp.End()
	s.evctx = sctx
	defer func() { s.evctx = s.ctx }()
	if err := s.initialObservations(); err != nil {
		return nil, fmt.Errorf("pamo: initial observations: %w", err)
	}
	s.setIncumbents()

	res := &Result{}
	zPrev := math.Inf(-1)
	// The incumbent is strictly non-decreasing only when the benefit scale
	// is fixed (UseTruePref); a learned preference model refreshes between
	// iterations and may legitimately rescale every past benefit.
	guard := s.opt.Check.NewIncumbent(s.opt.UseTruePref)
	for iter := 0; iter < s.opt.MaxIter; iter++ {
		if s.ctx != nil && s.ctx.Err() != nil {
			return nil, s.ctx.Err()
		}
		res.Iters = iter + 1
		s.met.iterations.Inc()
		ictx, iterSp := s.rec.StartSpanCtx(sctx, "iteration", obs.F("iter", float64(iter+1)))
		s.evctx = ictx
		cands := s.generateCandidates()
		if len(cands) == 0 {
			iterSp.End()
			s.evctx = sctx
			break
		}
		batch := s.selectBatch(cands)
		for _, c := range batch {
			if _, err := s.observe(c); err != nil {
				iterSp.End()
				return nil, err
			}
		}
		s.refreshBenefits()
		s.setIncumbents()
		z := s.bestObservation().Benefit
		if err := guard.Observe(z); err != nil {
			iterSp.End()
			return nil, fmt.Errorf("pamo: iteration %d: %w", iter+1, err)
		}
		res.History = append(res.History, z)
		s.met.bestBenefit.Set(z)
		iterSp.Field("candidates", float64(len(cands)))
		iterSp.Field("batch", float64(len(batch)))
		iterSp.Field("best_benefit", z)
		s.met.iterSeconds.Observe(iterSp.End())
		s.evctx = sctx
		if s.opt.OnIteration != nil {
			s.opt.OnIteration(iter+1, z)
		}
		if !math.IsInf(zPrev, -1) && math.Abs(z-zPrev) < s.opt.Delta {
			res.Converged = true
			zPrev = z
			break
		}
		zPrev = z
	}
	res.Best = s.bestObservation()
	// The learned utility is a smoothed surrogate; before committing, let
	// the decision maker pick directly among the top candidates (a few
	// extra comparisons, same interaction the loop already uses). This
	// protects the final answer against surrogate smoothing of sharp
	// pricing features like SLA thresholds.
	if s.learner != nil {
		res.Best = s.finalTournament(3)
	}
	res.Profiles = s.profiles
	res.MVNFallbacks = s.SamplingFallbacks()
	s.met.mvnFallbacks.Set(float64(res.MVNFallbacks))
	if s.learner != nil {
		res.PrefPairs = s.learner.Model.NumComparisons() + s.tournamentAsks
	}
	sp.Field("iters", float64(res.Iters))
	sp.Field("observations", float64(len(s.obs)))
	return res, nil
}

// setIncumbents points every sparse outcome model's benefit-aware
// forgetting rule at the current best observation's per-clip configs, so
// the MaxObs budget keeps the observations most informative about the
// region the schedule actually exploits. No-op for exact models.
func (s *Scheduler) setIncumbents() {
	if !s.opt.Sparse {
		return
	}
	best := s.bestObservation()
	if len(best.Decision.Configs) != len(s.clips) {
		return
	}
	for ci := range s.clips {
		s.clips[ci].setIncumbent(best.Decision.Configs[ci])
	}
}

// finalTournament returns the winner of direct decision-maker comparisons
// among the top-k observations by believed benefit.
func (s *Scheduler) finalTournament(k int) Observation {
	idx := make([]int, len(s.obs))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection of the top k by believed benefit.
	if k > len(idx) {
		k = len(idx)
	}
	for a := 0; a < k; a++ {
		best := a
		for b := a + 1; b < len(idx); b++ {
			if s.obs[idx[b]].Benefit > s.obs[idx[best]].Benefit {
				best = b
			}
		}
		idx[a], idx[best] = idx[best], idx[a]
	}
	winner := idx[0]
	for _, ci := range idx[1:k] {
		s.tournamentAsks++
		if s.dm.Prefer(s.obs[ci].Norm, s.obs[winner].Norm) {
			winner = ci
		}
	}
	return s.obs[winner]
}

// --- phase 1: outcome-model fitting -----------------------------------

func (s *Scheduler) profileInit() error {
	grid := eva.ConfigGrid()
	rois := s.roiGrid()
	// Phase 1a: take every initial profiling measurement. (Measurement and
	// fitting used to interleave per clip; they are split so each phase
	// gets its own span and pprof label. With OptimizeHyper off — the
	// default — the RNG call sequence is unchanged.)
	s.rec.Do(s.ctx, "profiling", func(ctx context.Context) {
		_, sp := s.rec.StartSpanCtx(ctx, "profiling", obs.F("clips", float64(s.sys.M())))
		for ci, clip := range s.sys.Clips {
			if s.seeds[ci] == seedBank {
				// Already conditioned by a previous scheduler run sharing
				// the model bank; no initial profiling to repay.
				continue
			}
			budget := s.opt.InitProfiles
			if s.seeds[ci] == seedWarm {
				// Warm-started: the donor's pooled hyperpriors and virtual
				// observations stand in for most of the cold budget.
				budget = s.opt.WarmProfiles
			}
			// Latin-hypercube over the knob grid, snapped to grid points.
			pts := stats.LatinHypercube(budget, 3, s.rng)
			for _, p := range pts {
				cfg := videosim.Config{
					Resolution: snap(videosim.Resolutions, p[0]),
					FPS:        snap(videosim.FrameRates, p[1]),
					ROI:        snap(rois, p[2]),
				}
				s.clips[ci].addMeasurement(cfg, s.prof.Measure(clip, cfg))
				s.countProfile()
			}
			// Always include the grid corners so bounds are anchored.
			for _, cfg := range []videosim.Config{grid[0], grid[len(grid)-1]} {
				s.clips[ci].addMeasurement(cfg, s.prof.Measure(clip, cfg))
				s.countProfile()
			}
		}
		sp.Field("profiles", float64(s.profiles))
		sp.End()
	})

	// Phase 1b: condition the outcome GPs on the profiling data.
	var err error
	s.rec.Do(s.ctx, "outcome_model", func(ctx context.Context) {
		_, fit := s.rec.StartSpanCtx(ctx, "outcome_model")
		defer fit.End()
		// hyperOptRestarts is the multi-start Nelder–Mead budget per tuned
		// model. gp.OptimizeHyperparams rejects non-positive counts, so the
		// span records the restart count that actually ran (0 = tuning off).
		const hyperOptRestarts = 2
		restarts := 0
		if s.opt.OptimizeHyper {
			restarts = hyperOptRestarts
		}
		fit.Field("hyper_restarts", float64(restarts))
		for ci := range s.clips {
			if err = s.clips[ci].refit(); err != nil {
				return
			}
			if s.opt.OptimizeHyper && s.seeds[ci] != seedBank {
				for _, mg := range s.clips[ci].m {
					if err = mg.optimize(hyperOptRestarts, s.rng); err != nil {
						return
					}
				}
			}
		}
	})
	return err
}

// countProfile tracks one profiling measurement in both the Result
// accounting and the metric registry.
func (s *Scheduler) countProfile() {
	s.profiles++
	s.met.profiles.Inc()
}

func snap(grid []float64, u float64) float64 {
	i := int(u * float64(len(grid)))
	if i >= len(grid) {
		i = len(grid) - 1
	}
	return grid[i]
}

// --- phase 2: preference modeling --------------------------------------

func (s *Scheduler) learnPreference() error {
	if s.opt.UseTruePref {
		return nil
	}
	// Build a pool of predicted outcome vectors for the decision maker to
	// compare (Eq. 9 data): the corners of the configuration space first —
	// comparisons between Pareto extremes carry the most information about
	// which objectives the pricing actually rewards — then random feasible
	// configurations for interior coverage.
	var pool []objective.Vector
	for _, cfgs := range s.extremeConfigs() {
		if c, ok := s.plan(cfgs); ok {
			pool = append(pool, s.norm.Normalize(s.predictOutcomes(c)))
		}
	}
	for attempt := 0; attempt < s.opt.PrefPool*20 && len(pool) < s.opt.PrefPool; attempt++ {
		cfgs := s.randomConfigs()
		c, ok := s.plan(cfgs)
		if !ok {
			continue
		}
		pool = append(pool, s.norm.Normalize(s.predictOutcomes(c)))
	}
	if len(pool) < 2 {
		return fmt.Errorf("%w: no feasible configurations for preference pool", sched.ErrInfeasible)
	}
	if err := s.learner.Learn(pool, s.opt.PrefPairs); err != nil {
		return err
	}
	if s.opt.OptimizePrefHyper {
		return s.learner.Model.OptimizeHyperparams(2, s.rng)
	}
	return nil
}

// extremeConfigs returns uniform configurations spanning the knob-space
// corners, degrading the hot corners knob-by-knob until they schedule.
func (s *Scheduler) extremeConfigs() [][]videosim.Config {
	res := videosim.Resolutions
	fps := videosim.FrameRates
	corners := []videosim.Config{
		{Resolution: res[0], FPS: fps[0]},                   // cheapest
		{Resolution: res[len(res)-1], FPS: fps[len(fps)-1]}, // most accurate
		{Resolution: res[len(res)-1], FPS: fps[0]},          // sharp but slow
		{Resolution: res[0], FPS: fps[len(fps)-1]},          // fast but coarse
		{Resolution: res[len(res)/2], FPS: fps[len(fps)/2]}, // middle
	}
	var out [][]videosim.Config
	for _, corner := range corners {
		cfg := corner
		for step := 0; step < len(res)+len(fps); step++ {
			cfgs := make([]videosim.Config, s.sys.M())
			for i := range cfgs {
				cfgs[i] = cfg
			}
			if _, ok := s.plan(cfgs); ok {
				out = append(out, cfgs)
				break
			}
			// Degrade the heavier knob and retry.
			if i := knobIndex(fps, cfg.FPS); i > 0 {
				cfg.FPS = fps[i-1]
			} else if i := knobIndex(res, cfg.Resolution); i > 0 {
				cfg.Resolution = res[i-1]
			} else {
				break
			}
		}
	}
	return out
}

// --- candidates and planning -------------------------------------------

// candidate is a configuration with its Algorithm 1 plan under the current
// outcome models.
type candidate struct {
	cfgs    []videosim.Config
	streams []sched.Stream // model-estimated, post-split
	plan    sched.Plan
}

// plan runs Algorithm 1 with model-estimated processing times; ok=false
// when no zero-jitter grouping exists.
func (s *Scheduler) plan(cfgs []videosim.Config) (candidate, bool) {
	streams := make([]sched.Stream, s.sys.M())
	for i := range s.sys.Clips {
		proc := math.Max(1e-4, s.clips[i].m[mProc].mean(cfgs[i]))
		bits := math.Max(1, s.clips[i].m[mBits].mean(cfgs[i]))
		streams[i] = sched.Stream{
			Video:  i,
			Period: sched.RatFromFPS(int64(math.Round(cfgs[i].FPS))),
			Proc:   proc,
			Bits:   bits,
		}
	}
	split := sched.SplitHighRate(streams)
	plan, err := sched.ScheduleMasked(split, s.sys.Servers, s.opt.ServerMask)
	if err != nil {
		return candidate{}, false
	}
	return candidate{cfgs: cfgs, streams: split, plan: plan}, true
}

// roiGrid returns the ROI knob values (full frame only by default).
func (s *Scheduler) roiGrid() []float64 {
	if len(s.opt.ROIGrid) == 0 {
		return []float64{1}
	}
	return s.opt.ROIGrid
}

func (s *Scheduler) randomConfigs() []videosim.Config {
	rois := s.roiGrid()
	cfgs := make([]videosim.Config, s.sys.M())
	for i := range cfgs {
		cfgs[i] = videosim.Config{
			Resolution: videosim.Resolutions[s.rng.IntN(len(videosim.Resolutions))],
			FPS:        videosim.FrameRates[s.rng.IntN(len(videosim.FrameRates))],
			ROI:        rois[s.rng.IntN(len(rois))],
		}
	}
	return cfgs
}

// mutateConfigs perturbs 1–2 stream knobs of base by one grid step each.
func (s *Scheduler) mutateConfigs(base []videosim.Config) []videosim.Config {
	cfgs := append([]videosim.Config(nil), base...)
	rois := s.roiGrid()
	for k := 0; k < 1+s.rng.IntN(2); k++ {
		i := s.rng.IntN(len(cfgs))
		switch s.rng.IntN(3) {
		case 0:
			cfgs[i].Resolution = stepKnob(videosim.Resolutions, cfgs[i].Resolution, s.rng)
		case 1:
			cfgs[i].FPS = stepKnob(videosim.FrameRates, cfgs[i].FPS, s.rng)
		default:
			if len(rois) > 1 {
				cfgs[i].ROI = rois[s.rng.IntN(len(rois))]
			} else {
				cfgs[i].Resolution = stepKnob(videosim.Resolutions, cfgs[i].Resolution, s.rng)
			}
		}
	}
	return cfgs
}

// knobIndex returns the grid index of v, or 0 when off-grid.
func knobIndex(grid []float64, v float64) int {
	for i, g := range grid {
		if g == v {
			return i
		}
	}
	return 0
}

func stepKnob(grid []float64, cur float64, rng *rand.Rand) float64 {
	idx := knobIndex(grid, cur)
	if rng.IntN(2) == 0 {
		idx--
	} else {
		idx++
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= len(grid) {
		idx = len(grid) - 1
	}
	return grid[idx]
}

func (s *Scheduler) generateCandidates() []candidate {
	var out []candidate
	seen := map[string]bool{}
	add := func(cfgs []videosim.Config) {
		key := cfgKey(cfgs)
		if seen[key] {
			return
		}
		if c, ok := s.plan(cfgs); ok {
			seen[key] = true
			out = append(out, c)
		}
	}
	best := s.bestObservation()
	// Half exploit: mutations of the incumbent; half explore: random.
	for attempt := 0; attempt < s.opt.CandPool*10 && len(out) < s.opt.CandPool/2; attempt++ {
		if len(best.Decision.Configs) > 0 {
			add(s.mutateConfigs(best.Decision.Configs))
		} else {
			break
		}
	}
	for attempt := 0; attempt < s.opt.CandPool*20 && len(out) < s.opt.CandPool; attempt++ {
		add(s.randomConfigs())
	}
	return out
}

func cfgKey(cfgs []videosim.Config) string {
	key := make([]byte, 0, len(cfgs)*8)
	for _, c := range cfgs {
		key = append(key, []byte(fmt.Sprintf("%g,%g;", c.Resolution, c.FPS))...)
	}
	return string(key)
}

// predictOutcomes composes the posterior-mean outcome vector of a planned
// candidate (Eqs. 2–5 with model means and the plan's assignment).
func (s *Scheduler) predictOutcomes(c candidate) objective.Vector {
	var v objective.Vector
	m := float64(s.sys.M())
	for i := range s.sys.Clips {
		cfg := c.cfgs[i]
		v[objective.Accuracy] += clamp01(s.clips[i].m[mAcc].mean(cfg)) / m
		v[objective.Network] += math.Max(0, s.clips[i].m[mBits].mean(cfg)) * cfg.FPS
		v[objective.Compute] += math.Max(0, s.clips[i].m[mComp].mean(cfg))
		v[objective.Energy] += math.Max(0, s.clips[i].m[mPow].mean(cfg))
	}
	var lat float64
	for k, st := range c.streams {
		b := s.sys.Servers[c.plan.StreamServer[k]].Uplink
		proc := math.Max(0, s.clips[st.Video].m[mProc].mean(c.cfgs[st.Video]))
		bits := math.Max(0, s.clips[st.Video].m[mBits].mean(c.cfgs[st.Video]))
		tx := 0.0
		if b > 0 {
			tx = bits / b
		}
		lat += proc + tx
	}
	if len(c.streams) > 0 {
		v[objective.Latency] = lat / float64(len(c.streams))
	}
	return v
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
