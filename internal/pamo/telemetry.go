package pamo

import (
	"strconv"

	"repro/internal/obs"
)

// Metric names the scheduler registers (see DESIGN.md, "Observability").
// Every handle is nil — and therefore free — when the scheduler runs
// without a recorder.
type schedMetrics struct {
	profiles     *obs.Counter   // pamo_profiles_total
	iterations   *obs.Counter   // pamo_iterations_total
	observations *obs.Counter   // pamo_observations_total
	cholInc      *obs.Counter   // pamo_chol_incremental_total
	cholFull     *obs.Counter   // pamo_chol_refactorize_total
	euboQueries  *obs.Counter   // pamo_eubo_queries_total
	prefComps    *obs.Counter   // pamo_pref_comparisons_total
	bankHits     *obs.Counter   // pamo_bank_hits_total
	warmStarts   *obs.Counter   // pamo_warm_starts_total
	coldStarts   *obs.Counter   // pamo_cold_starts_total
	gpObs        *obs.Counter   // gp_obs_total
	gpInducing   *obs.Counter   // gp_inducing_total
	gpForget     *obs.Counter   // gp_forget_total
	drawsReused  *obs.Counter   // acq_draws_reused_total
	bestBenefit  *obs.Gauge     // pamo_best_benefit
	mvnFallbacks *obs.Gauge     // pamo_mvn_fallbacks
	acqScore     *obs.Histogram // pamo_acq_score
	iterSeconds  *obs.Histogram // pamo_iteration_seconds
}

func newSchedMetrics(reg *obs.Registry) schedMetrics {
	return schedMetrics{
		profiles:     reg.Counter("pamo_profiles_total"),
		iterations:   reg.Counter("pamo_iterations_total"),
		observations: reg.Counter("pamo_observations_total"),
		cholInc:      reg.Counter("pamo_chol_incremental_total"),
		cholFull:     reg.Counter("pamo_chol_refactorize_total"),
		euboQueries:  reg.Counter("pamo_eubo_queries_total"),
		prefComps:    reg.Counter("pamo_pref_comparisons_total"),
		bankHits:     reg.Counter("pamo_bank_hits_total"),
		warmStarts:   reg.Counter("pamo_warm_starts_total"),
		coldStarts:   reg.Counter("pamo_cold_starts_total"),
		gpObs:        reg.Counter("gp_obs_total"),
		gpInducing:   reg.Counter("gp_inducing_total"),
		gpForget:     reg.Counter("gp_forget_total"),
		drawsReused:  reg.Counter("acq_draws_reused_total"),
		bestBenefit:  reg.Gauge("pamo_best_benefit"),
		mvnFallbacks: reg.Gauge("pamo_mvn_fallbacks"),
		acqScore:     reg.Histogram("pamo_acq_score", obs.DefBuckets),
		iterSeconds:  reg.Histogram("pamo_iteration_seconds", obs.DefBuckets),
	}
}

// recordAcq reports one batch construction: the greedy slot scores (the
// per-iteration qNEI/qEI/... values) as an "acq" event plus histogram
// observations. The event is attributed to the innermost open span
// (normally the BO iteration) via s.evctx.
func (s *Scheduler) recordAcq(universe int, slotScores []float64) {
	for _, v := range slotScores {
		s.met.acqScore.Observe(v)
	}
	if s.rec == nil {
		return
	}
	fields := make([]obs.Field, 0, len(slotScores)+2)
	fields = append(fields,
		obs.F("universe", float64(universe)),
		obs.F("batch", float64(len(slotScores))))
	for k, v := range slotScores {
		fields = append(fields, obs.F("slot"+strconv.Itoa(k), v))
	}
	s.rec.EventCtx(s.evctx, "acq", fields...)
}
