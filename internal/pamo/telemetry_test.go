package pamo

import (
	"bytes"
	"testing"

	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/pref"
)

func TestRunEmitsPhaseSpansAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	sys := testSys(3, 3, 31)
	opt := smallOpts(13)
	opt.Obs = rec
	res, err := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, opt).Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans := map[string]int{}
	acq := 0
	for _, ev := range evs {
		if ev.Kind == "span" {
			spans[ev.Name]++
		}
		if ev.Name == "acq" {
			acq++
		}
	}
	for _, phase := range []string{"profiling", "outcome_model", "preference", "solution"} {
		if spans[phase] != 1 {
			t.Fatalf("span %q count %d, want 1 (spans %v)", phase, spans[phase], spans)
		}
	}
	if spans["iteration"] != res.Iters {
		t.Fatalf("iteration spans %d vs result iters %d", spans["iteration"], res.Iters)
	}
	if acq == 0 {
		t.Fatal("no acquisition events")
	}

	snap := rec.Registry().Snapshot()
	if got := snap.Counters["pamo_iterations_total"]; got != uint64(res.Iters) {
		t.Fatalf("pamo_iterations_total %d vs iters %d", got, res.Iters)
	}
	if snap.Counters["pamo_profiles_total"] == 0 {
		t.Fatal("pamo_profiles_total is zero after a run")
	}
	if snap.Counters["pamo_observations_total"] == 0 {
		t.Fatal("pamo_observations_total is zero after a run")
	}
	h, ok := snap.Histograms["pamo_iteration_seconds"]
	if !ok || h.Count != uint64(res.Iters) {
		t.Fatalf("pamo_iteration_seconds count %v (ok=%v), want %d", h.Count, ok, res.Iters)
	}
	if snap.Gauges["pamo_mvn_fallbacks"] != float64(res.MVNFallbacks) {
		t.Fatalf("pamo_mvn_fallbacks gauge %v vs result %d",
			snap.Gauges["pamo_mvn_fallbacks"], res.MVNFallbacks)
	}
}

func TestRunWithNilRecorderMatchesRecorded(t *testing.T) {
	// Telemetry must be strictly observational: the same seed must yield an
	// identical decision with and without a recorder attached.
	runOnce := func(rec *obs.Recorder) *Result {
		sys := testSys(3, 3, 47)
		opt := smallOpts(17)
		opt.Obs = rec
		res, err := New(sys, &pref.Oracle{Pref: objective.UniformPreference()}, opt).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := runOnce(nil)
	recorded := runOnce(obs.NewRecorder(nil))
	if plain.Best.Benefit != recorded.Best.Benefit || plain.Iters != recorded.Iters {
		t.Fatalf("telemetry changed the run: benefit %v vs %v, iters %d vs %d",
			plain.Best.Benefit, recorded.Best.Benefit, plain.Iters, recorded.Iters)
	}
	for i := range plain.Best.Decision.Configs {
		if plain.Best.Decision.Configs[i] != recorded.Best.Decision.Configs[i] {
			t.Fatalf("decision diverged at clip %d", i)
		}
	}
}
