package kernel

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func kernels(dim int) map[string]Kernel {
	return map[string]Kernel{
		"rbf":      NewRBF(dim),
		"matern52": NewMatern52(dim),
		"matern32": NewMatern32(dim),
		"matern12": NewMatern12(dim),
	}
}

func TestKernelBasicProperties(t *testing.T) {
	x := []float64{0.3, -1.2}
	y := []float64{1.0, 0.5}
	for name, k := range kernels(2) {
		// k(x,x) = variance.
		if got := k.Eval(x, x); math.Abs(got-1) > 1e-12 {
			t.Errorf("%s: k(x,x) = %v, want 1", name, got)
		}
		// Symmetry.
		if k.Eval(x, y) != k.Eval(y, x) {
			t.Errorf("%s: asymmetric", name)
		}
		// Bounded by variance.
		if v := k.Eval(x, y); v <= 0 || v >= 1 {
			t.Errorf("%s: k(x,y) = %v out of (0, variance)", name, v)
		}
		if k.Dim() != 2 {
			t.Errorf("%s: Dim = %d", name, k.Dim())
		}
	}
}

func TestRBFKnownValue(t *testing.T) {
	k := NewRBF(1)
	// r² = 1, k = exp(-0.5).
	if got := k.Eval([]float64{0}, []float64{1}); math.Abs(got-math.Exp(-0.5)) > 1e-15 {
		t.Fatalf("RBF = %v", got)
	}
}

func TestMatern52KnownValue(t *testing.T) {
	k := NewMatern52(1)
	r := 2.0
	want := (1 + math.Sqrt(5)*r + 5*r*r/3) * math.Exp(-math.Sqrt(5)*r)
	if got := k.Eval([]float64{0}, []float64{2}); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Matern52 = %v, want %v", got, want)
	}
}

func TestLogParamsRoundTrip(t *testing.T) {
	for name, k := range kernels(3) {
		p := k.LogParams()
		if len(p) != 4 {
			t.Fatalf("%s: LogParams len %d", name, len(p))
		}
		k.SetLogParams([]float64{math.Log(2.5), math.Log(0.5), math.Log(1.5), math.Log(3)})
		p2 := k.LogParams()
		want := []float64{math.Log(2.5), math.Log(0.5), math.Log(1.5), math.Log(3)}
		for i := range want {
			if math.Abs(p2[i]-want[i]) > 1e-12 {
				t.Fatalf("%s: param %d = %v, want %v", name, i, p2[i], want[i])
			}
		}
		if got := k.Eval([]float64{0, 0, 0}, []float64{0, 0, 0}); math.Abs(got-2.5) > 1e-12 {
			t.Fatalf("%s: variance not applied: %v", name, got)
		}
	}
}

func TestSetLogParamsWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRBF(2).SetLogParams([]float64{0})
}

func TestCloneIndependence(t *testing.T) {
	k := NewMatern52(2)
	c := k.Clone()
	k.SetLogParams([]float64{math.Log(9), 0, 0})
	if got := c.Eval([]float64{0, 0}, []float64{0, 0}); got != 1 {
		t.Fatalf("clone affected by parent mutation: %v", got)
	}
}

func TestARDLengthscales(t *testing.T) {
	k := NewRBF(2)
	k.SetLogParams([]float64{0, math.Log(0.1), math.Log(10)})
	// Moving along the short-lengthscale axis decays much faster.
	short := k.Eval([]float64{0, 0}, []float64{1, 0})
	long := k.Eval([]float64{0, 0}, []float64{0, 1})
	if short >= long {
		t.Fatalf("ARD ignored: short-axis %v >= long-axis %v", short, long)
	}
}

// Property: the Gram matrix of random points is positive semi-definite
// (verified via jittered Cholesky).
func TestGramPSDProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n, d := 2+int(seed%8), 1+int(seed%3)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = rng.NormFloat64() * 2
			}
		}
		for _, k := range kernels(d) {
			g := mat.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					g.Set(i, j, k.Eval(pts[i], pts[j]))
				}
			}
			if _, err := mat.CholJitter(g); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelDecayOrdering(t *testing.T) {
	// At the same distance, rougher kernels (smaller ν) decay faster:
	// matern12 < matern32 < matern52 < rbf for moderate r.
	x, y := []float64{0}, []float64{1.0}
	v12 := NewMatern12(1).Eval(x, y)
	v32 := NewMatern32(1).Eval(x, y)
	v52 := NewMatern52(1).Eval(x, y)
	vrb := NewRBF(1).Eval(x, y)
	if !(v12 < v32 && v32 < v52 && v52 < vrb) {
		t.Fatalf("decay ordering violated: %v %v %v %v", v12, v32, v52, vrb)
	}
}
