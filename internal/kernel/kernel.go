// Package kernel provides the covariance functions used by the Gaussian
// process layers: squared-exponential (RBF) and Matérn families, each with
// automatic relevance determination (per-dimension lengthscales) and an
// output variance. Hyperparameters are exposed in log space so optimizers
// can search unconstrained.
package kernel

import (
	"fmt"
	"math"
)

// Kernel is a positive-definite covariance function on R^d.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
	// Dim returns the input dimension the kernel was built for.
	Dim() int
	// LogParams returns the hyperparameters in log space:
	// [log variance, log ℓ₁, …, log ℓ_d].
	LogParams() []float64
	// SetLogParams installs hyperparameters from log space. The length
	// must match LogParams().
	SetLogParams(p []float64)
	// Clone returns an independent copy.
	Clone() Kernel
}

// base carries the variance/lengthscale bookkeeping shared by all kernels.
type base struct {
	Variance     float64   // σ², output scale
	Lengthscales []float64 // per-dimension ℓ (ARD)
}

func newBase(dim int) base {
	ls := make([]float64, dim)
	for i := range ls {
		ls[i] = 1
	}
	return base{Variance: 1, Lengthscales: ls}
}

func (b *base) Dim() int { return len(b.Lengthscales) }

func (b *base) LogParams() []float64 {
	p := make([]float64, 1+len(b.Lengthscales))
	p[0] = math.Log(b.Variance)
	for i, l := range b.Lengthscales {
		p[i+1] = math.Log(l)
	}
	return p
}

func (b *base) SetLogParams(p []float64) {
	if len(p) != 1+len(b.Lengthscales) {
		panic(fmt.Sprintf("kernel: SetLogParams got %d params, want %d", len(p), 1+len(b.Lengthscales)))
	}
	b.Variance = math.Exp(p[0])
	for i := range b.Lengthscales {
		b.Lengthscales[i] = math.Exp(p[i+1])
	}
}

func (b *base) cloneBase() base {
	return base{Variance: b.Variance, Lengthscales: append([]float64(nil), b.Lengthscales...)}
}

// scaledSqDist returns Σ ((x_i-y_i)/ℓ_i)².
func (b *base) scaledSqDist(x, y []float64) float64 {
	var s float64
	for i, l := range b.Lengthscales {
		d := (x[i] - y[i]) / l
		s += d * d
	}
	return s
}

// RBF is the squared-exponential kernel σ²·exp(-r²/2).
type RBF struct{ base }

// NewRBF returns an RBF kernel on R^dim with unit variance and lengthscales.
func NewRBF(dim int) *RBF { return &RBF{newBase(dim)} }

// Eval implements Kernel.
func (k *RBF) Eval(x, y []float64) float64 {
	return k.Variance * math.Exp(-0.5*k.scaledSqDist(x, y))
}

// Clone implements Kernel.
func (k *RBF) Clone() Kernel { return &RBF{k.cloneBase()} }

// Matern52 is the Matérn ν=5/2 kernel
// σ²·(1+√5·r+5r²/3)·exp(-√5·r).
type Matern52 struct{ base }

// NewMatern52 returns a Matérn-5/2 kernel on R^dim.
func NewMatern52(dim int) *Matern52 { return &Matern52{newBase(dim)} }

// Eval implements Kernel.
func (k *Matern52) Eval(x, y []float64) float64 {
	r := math.Sqrt(k.scaledSqDist(x, y))
	s5r := math.Sqrt(5) * r
	return k.Variance * (1 + s5r + 5*r*r/3) * math.Exp(-s5r)
}

// Clone implements Kernel.
func (k *Matern52) Clone() Kernel { return &Matern52{k.cloneBase()} }

// Matern32 is the Matérn ν=3/2 kernel σ²·(1+√3·r)·exp(-√3·r).
type Matern32 struct{ base }

// NewMatern32 returns a Matérn-3/2 kernel on R^dim.
func NewMatern32(dim int) *Matern32 { return &Matern32{newBase(dim)} }

// Eval implements Kernel.
func (k *Matern32) Eval(x, y []float64) float64 {
	r := math.Sqrt(k.scaledSqDist(x, y))
	s3r := math.Sqrt(3) * r
	return k.Variance * (1 + s3r) * math.Exp(-s3r)
}

// Clone implements Kernel.
func (k *Matern32) Clone() Kernel { return &Matern32{k.cloneBase()} }

// Matern12 is the exponential kernel σ²·exp(-r) (Matérn ν=1/2).
type Matern12 struct{ base }

// NewMatern12 returns a Matérn-1/2 kernel on R^dim.
func NewMatern12(dim int) *Matern12 { return &Matern12{newBase(dim)} }

// Eval implements Kernel.
func (k *Matern12) Eval(x, y []float64) float64 {
	return k.Variance * math.Exp(-math.Sqrt(k.scaledSqDist(x, y)))
}

// Clone implements Kernel.
func (k *Matern12) Clone() Kernel { return &Matern12{k.cloneBase()} }
