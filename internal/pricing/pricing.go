// Package pricing models the "intricate pricing rules" that motivate the
// paper (Section 1): tiered electricity tariffs, metered network traffic,
// differentiated server rental, and QoS-based dynamic service pricing.
// Composed into a Billing scheme they induce a *non-linear* system benefit
// over the five objectives — exactly the kind of benefit a fixed linear
// weighting cannot capture but pairwise-comparison preference learning
// can.
package pricing

import (
	"fmt"
	"sort"

	"repro/internal/objective"
)

// Tariff prices a usage level (per hour of operation), in currency units.
type Tariff interface {
	Cost(usage float64) float64
}

// Linear is a flat-rate tariff: cost = Rate·usage.
type Linear struct {
	Rate float64
}

// Cost implements Tariff.
func (l Linear) Cost(usage float64) float64 { return l.Rate * usage }

// Bracket is one marginal-rate tier: usage above From is billed at Rate.
type Bracket struct {
	From float64
	Rate float64
}

// Tiered is a marginal tiered tariff, like residential electricity pricing
// (Wang et al. [29] in the paper): successive usage brackets are billed at
// increasing rates.
type Tiered struct {
	Brackets []Bracket // sorted by From ascending; first From must be 0
}

// NewTiered validates and builds a tiered tariff.
func NewTiered(brackets ...Bracket) (Tiered, error) {
	if len(brackets) == 0 {
		return Tiered{}, fmt.Errorf("pricing: tiered tariff needs at least one bracket")
	}
	sorted := append([]Bracket(nil), brackets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].From < sorted[j].From })
	if sorted[0].From != 0 {
		return Tiered{}, fmt.Errorf("pricing: first bracket must start at 0, got %v", sorted[0].From)
	}
	return Tiered{Brackets: sorted}, nil
}

// Cost implements Tariff with marginal-rate semantics.
func (t Tiered) Cost(usage float64) float64 {
	if usage <= 0 {
		return 0
	}
	var cost float64
	for i, b := range t.Brackets {
		hi := usage
		if i+1 < len(t.Brackets) && t.Brackets[i+1].From < usage {
			hi = t.Brackets[i+1].From
		}
		if hi > b.From {
			cost += (hi - b.From) * b.Rate
		}
		if hi >= usage {
			break
		}
	}
	return cost
}

// Quota is a metered contract: BaseFee covers usage up to Quota; overage
// is billed at OverRate (cellular-style network pricing).
type Quota struct {
	Quota    float64
	BaseFee  float64
	OverRate float64
}

// Cost implements Tariff.
func (q Quota) Cost(usage float64) float64 {
	if usage <= q.Quota {
		return q.BaseFee
	}
	return q.BaseFee + (usage-q.Quota)*q.OverRate
}

// SLA is a QoS-based service contract (Wu et al. [30] in the paper): each
// analyzed stream pays BasePay per hour, plus AccBonus when mean accuracy
// meets AccTarget, minus LatPenalty per second of mean latency above
// LatSLO. Revenue saturates — more accuracy than the target earns nothing,
// which is one of the non-linearities fixed weights miss.
type SLA struct {
	BasePay    float64
	AccTarget  float64
	AccBonus   float64
	LatSLO     float64
	LatPenalty float64
}

// Revenue returns the hourly payment for the given mean accuracy and mean
// end-to-end latency.
func (s SLA) Revenue(acc, lat float64) float64 {
	r := s.BasePay
	if acc >= s.AccTarget {
		r += s.AccBonus
	}
	if lat > s.LatSLO {
		r -= s.LatPenalty * (lat - s.LatSLO)
	}
	return r
}

// Billing composes the tariffs and the SLA into the system's hourly net
// benefit over raw outcome vectors.
type Billing struct {
	Energy  Tariff // priced per W (continuous draw for an hour)
	Network Tariff // priced per Mbps of uplink demand
	Compute Tariff // priced per TFLOPS of rented compute
	SLA     SLA
	Streams int // number of billed streams (SLA multiplier)
}

// NetBenefit returns hourly revenue minus hourly cost for raw outcomes.
func (b Billing) NetBenefit(raw objective.Vector) float64 {
	rev := float64(b.Streams) * b.SLA.Revenue(raw[objective.Accuracy], raw[objective.Latency])
	cost := 0.0
	if b.Energy != nil {
		cost += b.Energy.Cost(raw[objective.Energy])
	}
	if b.Network != nil {
		cost += b.Network.Cost(raw[objective.Network] / 1e6)
	}
	if b.Compute != nil {
		cost += b.Compute.Cost(raw[objective.Compute])
	}
	return rev - cost
}

// CityBilling is a ready-made billing scheme used by tests and examples:
// three-tier electricity, metered cellular uplink, linear compute rental,
// and an accuracy/latency SLA.
func CityBilling(streams int) Billing {
	tiers, err := NewTiered(
		Bracket{From: 0, Rate: 0.08},
		Bracket{From: 40, Rate: 0.15},
		Bracket{From: 120, Rate: 0.30},
	)
	if err != nil {
		panic(err)
	}
	return Billing{
		Energy:  tiers,
		Network: Quota{Quota: 10, BaseFee: 2, OverRate: 0.5},
		Compute: Linear{Rate: 0.12},
		SLA: SLA{
			BasePay:    3,
			AccTarget:  0.5,
			AccBonus:   2,
			LatSLO:     0.15,
			LatPenalty: 20,
		},
		Streams: streams,
	}
}

// Oracle is a preference decision maker whose hidden truth is a Billing
// scheme over *raw* outcomes. It denormalizes the compared vectors with
// the system's normalizer, so it plugs into the same learning loop as the
// Eq. 13 oracle.
type Oracle struct {
	Billing Billing
	Norm    objective.Normalizer
}

// Prefer implements pref.DecisionMaker.
func (o *Oracle) Prefer(y1, y2 objective.Vector) bool {
	return o.Billing.NetBenefit(o.Norm.Denormalize(y1)) >
		o.Billing.NetBenefit(o.Norm.Denormalize(y2))
}
