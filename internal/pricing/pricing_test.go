package pricing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/objective"
)

func TestLinearTariff(t *testing.T) {
	if got := (Linear{Rate: 2}).Cost(3.5); got != 7 {
		t.Fatalf("Cost = %v", got)
	}
}

func TestTieredTariffMarginalRates(t *testing.T) {
	tr, err := NewTiered(
		Bracket{From: 0, Rate: 1},
		Bracket{From: 10, Rate: 2},
		Bracket{From: 20, Rate: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ usage, want float64 }{
		{0, 0},
		{-5, 0},
		{5, 5},
		{10, 10},
		{15, 10 + 10},        // 10·1 + 5·2
		{25, 10 + 20 + 20},   // 10·1 + 10·2 + 5·4
	}
	for _, c := range cases {
		if got := tr.Cost(c.usage); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Cost(%v) = %v, want %v", c.usage, got, c.want)
		}
	}
}

func TestTieredValidation(t *testing.T) {
	if _, err := NewTiered(); err == nil {
		t.Error("empty brackets should fail")
	}
	if _, err := NewTiered(Bracket{From: 5, Rate: 1}); err == nil {
		t.Error("first bracket not at 0 should fail")
	}
	// Unsorted input is sorted.
	tr, err := NewTiered(Bracket{From: 10, Rate: 2}, Bracket{From: 0, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Brackets[0].From != 0 {
		t.Fatalf("brackets not sorted: %+v", tr.Brackets)
	}
}

// Property: tiered cost is non-decreasing and convex-ish (marginal rates
// increase), hence cost(x)/x is non-decreasing for x > 0.
func TestTieredMonotoneProperty(t *testing.T) {
	tr, err := NewTiered(
		Bracket{From: 0, Rate: 0.08},
		Bracket{From: 40, Rate: 0.15},
		Bracket{From: 120, Rate: 0.30},
	)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 300)
		y := math.Mod(math.Abs(b), 300)
		lo, hi := math.Min(x, y), math.Max(x, y)
		return tr.Cost(lo) <= tr.Cost(hi)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaTariff(t *testing.T) {
	q := Quota{Quota: 10, BaseFee: 2, OverRate: 0.5}
	if got := q.Cost(5); got != 2 {
		t.Errorf("under quota: %v", got)
	}
	if got := q.Cost(10); got != 2 {
		t.Errorf("at quota: %v", got)
	}
	if got := q.Cost(14); got != 4 {
		t.Errorf("over quota: %v", got)
	}
}

func TestSLARevenue(t *testing.T) {
	s := SLA{BasePay: 3, AccTarget: 0.5, AccBonus: 2, LatSLO: 0.15, LatPenalty: 20}
	if got := s.Revenue(0.6, 0.1); got != 5 {
		t.Errorf("bonus case: %v", got)
	}
	if got := s.Revenue(0.4, 0.1); got != 3 {
		t.Errorf("no bonus: %v", got)
	}
	if got := s.Revenue(0.6, 0.25); math.Abs(got-3) > 1e-12 {
		t.Errorf("latency penalty: %v", got) // 5 − 20·0.1 = 3
	}
	// Bonus saturates: more accuracy earns nothing extra.
	if s.Revenue(0.95, 0.1) != s.Revenue(0.5, 0.1) {
		t.Error("accuracy bonus must saturate at the target")
	}
}

func TestBillingNetBenefitDirections(t *testing.T) {
	b := CityBilling(8)
	base := objective.Vector{}
	base[objective.Latency] = 0.05
	base[objective.Accuracy] = 0.6
	base[objective.Network] = 8e6
	base[objective.Compute] = 20
	base[objective.Energy] = 50

	u0 := b.NetBenefit(base)

	worseEnergy := base
	worseEnergy[objective.Energy] = 150
	if b.NetBenefit(worseEnergy) >= u0 {
		t.Error("more energy should cost more")
	}
	worseLat := base
	worseLat[objective.Latency] = 0.5
	if b.NetBenefit(worseLat) >= u0 {
		t.Error("SLO-violating latency should cut revenue")
	}
	lowAcc := base
	lowAcc[objective.Accuracy] = 0.3
	if b.NetBenefit(lowAcc) >= u0 {
		t.Error("missing the accuracy target should lose the bonus")
	}
}

func TestBillingNonLinearity(t *testing.T) {
	// The marginal cost of energy grows with the tier — a property no
	// linear weighting reproduces.
	b := CityBilling(8)
	at := func(e float64) float64 {
		v := objective.Vector{}
		v[objective.Accuracy] = 0.6
		v[objective.Energy] = e
		return b.NetBenefit(v)
	}
	d1 := at(0) - at(30)    // 30 W inside tier 1
	d2 := at(130) - at(160) // 30 W inside tier 3
	if d2 <= d1 {
		t.Fatalf("marginal energy cost not increasing: %v vs %v", d1, d2)
	}
}

func TestOracleConsistentWithBilling(t *testing.T) {
	b := CityBilling(4)
	var lo, hi objective.Vector
	for k := 0; k < objective.K; k++ {
		lo[k] = 0
		hi[k] = 1
	}
	hi[objective.Latency] = 0.3 // normalized
	norm := objective.Normalizer{B: objective.Bounds{
		Lo: objective.Vector{0.01, 0.1, 1e6, 1, 5},
		Hi: objective.Vector{0.5, 0.9, 4e7, 100, 300},
	}}
	o := &Oracle{Billing: b, Norm: norm}
	// A cheap accurate outcome beats an expensive inaccurate one.
	good := objective.Vector{0.1, 0.9, 0.1, 0.1, 0.1}
	bad := objective.Vector{0.9, 0.2, 0.9, 0.9, 0.9}
	if !o.Prefer(good, bad) {
		t.Fatal("oracle preference inverted")
	}
	if o.Prefer(bad, good) {
		t.Fatal("oracle must be antisymmetric on strict preference")
	}
}

func TestDenormalizeRoundTrip(t *testing.T) {
	norm := objective.Normalizer{B: objective.Bounds{
		Lo: objective.Vector{1, 2, 3, 4, 5},
		Hi: objective.Vector{11, 12, 13, 14, 15},
	}}
	raw := objective.Vector{6, 7, 8, 9, 10}
	got := norm.Denormalize(norm.Normalize(raw))
	for k := 0; k < objective.K; k++ {
		if math.Abs(got[k]-raw[k]) > 1e-12 {
			t.Fatalf("round trip[%d] = %v, want %v", k, got[k], raw[k])
		}
	}
}
