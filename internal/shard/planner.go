package shard

import (
	"context"
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/check"
	"repro/internal/hungarian"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Why a server shared by several cells stays zero-jitter
//
// Algorithm 1 never co-locates two groups, so Theorem 1's per-group offset
// argument suffices for the serial scheduler. The arbiter DOES co-locate:
// distinct cells' groups may commit onto one server, provided the union
// keeps Σ proc ≤ g where g = gcd of every committed period. That predicate
// is exactly the one sched.ExactGroup packs under, and it is sufficient on
// its own: every period is an integer multiple of g by definition of the
// gcd, so lay the union's streams out back-to-back inside one g-window
// (offset_k = Σ_{i<k} p_i < g). Whatever subset of streams releases a
// frame in any particular window, each frame occupies its own disjoint
// slice [offset_k, offset_k+p_k) of the window and is served on arrival —
// zero queueing, zero jitter. Plan.ToClusterStreams applies Theorem 1
// offsets over each MERGED group, so the committed plan inherits the
// guarantee; internal/check audits it against the simulator.
//
// Determinism and termination
//
// Rounds are barriers. Every pending cell proposes in parallel against the
// arbiter state frozen at round start (proposals are pure functions of
// that state and the cell's workload), then commits are attempted serially
// in ascending cell order against the live state. The first pending cell
// of each round therefore validates against exactly the state it planned
// on and must commit, so each round retires at least one cell and the
// protocol terminates within Shards rounds; a bounced cell re-proposes
// next round against the fresh state. Committed state only ever grows, so
// a proposal that finds no feasible server cannot be saved by waiting —
// the planner falls back to one serial full solve instead.

// Options tunes a Planner.
type Options struct {
	// Shards is the number of cells streams are partitioned into. With
	// Shards ≤ 1 the planner IS the serial scheduler (one
	// sched.ScheduleSnapshot call), byte for byte.
	Shards int
	// ColSlack bounds each cell's assignment problem: a proposal with g
	// groups considers the best g·ColSlack candidate servers instead of
	// all of them (minimum g; default 2). Candidates are ranked by
	// occupancy then uplink, and the proposal retries against the full
	// server set before declaring itself stuck, so the cap costs quality
	// never feasibility.
	ColSlack int
	// MaxRounds caps propose/commit rounds (default Shards, the provable
	// termination bound; the cap is insurance, not policy).
	MaxRounds int
	// Sequential runs the propose phase one cell at a time on the calling
	// goroutine. Results are identical to the parallel mode by
	// construction; the differential fuzzer holds the planner to that.
	Sequential bool
	// Obs receives shard_* metrics and a per-solve span. Nil disables
	// telemetry at zero cost.
	Obs *obs.Recorder
	// Check, when non-nil, audits every plan this planner returns —
	// committed or fallen back — against the exact feasibility
	// constraints; under a strict checker a violation aborts the solve.
	Check *check.Checker
}

// Stats reports how one sharded solve went.
type Stats struct {
	Shards    int
	Rounds    int
	Conflicts int // proposals bounced by the arbiter
	Retries   int // re-propose attempts (= bounced proposals that re-ran)
	Commits   int
	// RetryHist[k] counts cells whose proposal committed after k bounces;
	// the last bucket absorbs the tail.
	RetryHist [retryBuckets]int
	// FellBack marks a solve that abandoned the sharded protocol for one
	// serial full solve (a cell could not group or place its streams).
	FellBack       bool
	ProposeSeconds float64
	CommitSeconds  float64
	// CellRetries[c] counts how many times cell c's proposal bounced off
	// the arbiter before committing — the per-cell attribution the benefit
	// ledger reports. Nil for serial (Shards ≤ 1) solves.
	CellRetries []int
}

// retryBuckets sizes the commit-retry histogram: buckets 0..6 and 7+.
const retryBuckets = 8

// Planner runs the sharded control plane over one workload at a time. Its
// scratch (arbiter, per-cell buffers) is reused across solves; a Planner
// must not be shared by concurrent Plan calls.
type Planner struct {
	opt   Options
	arb   Arbiter
	cells []cellScratch

	uplinks []float64
	speeds  []float64
	colBuf  []int
}

// cellScratch is the per-cell reusable state. Cell c is touched only by
// cell c's propose goroutine within a round, and rounds are barriers, so
// no scratch is ever shared across goroutines — the ownership discipline
// the race matrix in CI pins down.
type cellScratch struct {
	idx     int   // the cell's index — the commit order key
	global  []int // stream indices owned by the cell
	local   []sched.Stream
	sc      fitScratch
	prop    Proposal
	retries int
	pending bool
	stuck   bool
	solver  hungarian.Solver
	cost    [][]float64
	flat    []float64
	cols    []int
}

// New returns a planner. Zero-value options mean: serial (Shards 1).
func New(opt Options) *Planner {
	if opt.Shards < 1 {
		opt.Shards = 1
	}
	if opt.ColSlack < 1 {
		opt.ColSlack = 2
	}
	if opt.MaxRounds < 1 {
		opt.MaxRounds = opt.Shards
	}
	return &Planner{opt: opt}
}

// Plan schedules the streams against the snapshot through the sharded
// protocol and returns the merged plan plus the solve's stats. The plan
// satisfies the exact Const1/Const2 feasibility constraints on every
// server — shared or not — or an error (wrapping sched.ErrInfeasible when
// capacity is the reason) is returned.
func (p *Planner) Plan(streams []sched.Stream, snap *sched.Snapshot) (sched.Plan, Stats, error) {
	return p.PlanCtx(context.Background(), streams, snap)
}

// PlanCtx is Plan with trace-context propagation: the shard_plan span
// parents under the span carried by ctx, each propose/commit round gets a
// shard_round child span, and every cell's proposal a shard_cell span
// under its round — the epoch → decide → shard round → cell chain the
// trace exporters render.
func (p *Planner) PlanCtx(ctx context.Context, streams []sched.Stream, snap *sched.Snapshot) (sched.Plan, Stats, error) {
	st := Stats{Shards: p.opt.Shards}
	reg := p.opt.Obs.Registry()
	pctx, sp := p.opt.Obs.StartSpanCtx(ctx, "shard_plan",
		obs.F("shards", float64(p.opt.Shards)),
		obs.F("streams", float64(len(streams))),
		obs.F("version", float64(snap.Version())))
	defer func() {
		sp.Field("rounds", float64(st.Rounds))
		sp.Field("conflicts", float64(st.Conflicts))
		sp.Field("fellback", b2f(st.FellBack))
		sp.End()
	}()
	reg.Counter("shard_plans_total").Inc()

	if p.opt.Shards <= 1 {
		plan, err := sched.ScheduleSnapshot(streams, snap)
		if err != nil {
			return sched.Plan{}, st, err
		}
		st.Commits = 1
		st.RetryHist[0] = 1
		return plan, st, p.audit(streams, plan, snap)
	}

	parts := Partition(streams, p.opt.Shards)
	if cap(p.cells) < len(parts) {
		p.cells = make([]cellScratch, len(parts))
	}
	p.cells = p.cells[:len(parts)]
	p.uplinks = p.uplinks[:0]
	p.speeds = p.speeds[:0]
	heteroSpeeds := false
	for _, srv := range snap.Servers() {
		p.uplinks = append(p.uplinks, srv.Uplink)
		spd := srv.Speed()
		p.speeds = append(p.speeds, spd)
		if spd != 1 {
			heteroSpeeds = true
		}
	}
	p.arb.Reset(snap.NumServers(), snap.Version())
	p.arb.SetUplinks(p.uplinks)
	if heteroSpeeds {
		p.arb.SetSpeeds(p.speeds)
	} else {
		p.arb.SetSpeeds(nil)
	}
	nPending := 0
	for c := range p.cells {
		cell := &p.cells[c]
		cell.idx = c
		cell.global = parts[c]
		cell.retries = 0
		cell.pending = len(parts[c]) > 0
		cell.stuck = false
		if cell.pending {
			nPending++
		}
	}

	for st.Rounds = 0; nPending > 0; st.Rounds++ {
		if st.Rounds >= p.opt.MaxRounds+p.opt.Shards {
			// Unreachable by the termination argument above; fail loudly
			// rather than spin if it is ever broken.
			return sched.Plan{}, st, fmt.Errorf("shard: no progress after %d rounds", st.Rounds)
		}
		rctx, rsp := p.opt.Obs.StartSpanCtx(pctx, "shard_round",
			obs.F("round", float64(st.Rounds)),
			obs.F("pending", float64(nPending)))
		t0 := time.Now()
		p.proposeRound(rctx, streams, snap, st.Rounds)
		st.ProposeSeconds += time.Since(t0).Seconds()

		t0 = time.Now()
		for c := range p.cells {
			cell := &p.cells[c]
			if !cell.pending {
				continue
			}
			if cell.stuck {
				// No feasible grouping or placement exists for this cell
				// even against the current state; committed state only
				// grows, so retrying cannot help. One serial full solve
				// decides feasibility for the whole workload instead.
				reg.Counter("shard_fallbacks_total").Inc()
				st.FellBack = true
				st.CommitSeconds += time.Since(t0).Seconds()
				p.fillCellRetries(&st)
				rsp.Field("fellback", 1)
				rsp.End()
				plan, err := sched.ScheduleSnapshot(streams, snap)
				if err != nil {
					return sched.Plan{}, st, err
				}
				return plan, st, p.audit(streams, plan, snap)
			}
			ok, _ := p.arb.Commit(&cell.prop)
			if !ok {
				st.Conflicts++
				st.Retries++
				cell.retries++
				reg.Counter("shard_conflicts_total").Inc()
				reg.Counter("shard_retries_total").Inc()
				p.opt.Obs.EventCtx(rctx, "shard_conflict",
					obs.F("cell", float64(cell.idx)),
					obs.F("retries", float64(cell.retries)))
				continue
			}
			st.Commits++
			reg.Counter("shard_commits_total").Inc()
			b := cell.retries
			if b >= retryBuckets {
				b = retryBuckets - 1
			}
			st.RetryHist[b]++
			cell.pending = false
			nPending--
			p.opt.Obs.EventCtx(rctx, "shard_commit",
				obs.F("cell", float64(cell.idx)),
				obs.F("retries", float64(cell.retries)),
				obs.F("groups", float64(len(cell.prop.Claims))))
		}
		st.CommitSeconds += time.Since(t0).Seconds()
		rsp.Field("committed", float64(st.Commits))
		rsp.End()
	}
	reg.Gauge("shard_rounds").Set(float64(st.Rounds))
	reg.Histogram("shard_commit_seconds", obs.DefBuckets).Observe(st.CommitSeconds)

	p.fillCellRetries(&st)
	plan := p.arb.Plan(len(streams))
	return plan, st, p.audit(streams, plan, snap)
}

// fillCellRetries copies the per-cell bounce counts into the stats — the
// ledger's per-cell conflict attribution.
func (p *Planner) fillCellRetries(st *Stats) {
	st.CellRetries = make([]int, len(p.cells))
	for c := range p.cells {
		st.CellRetries[c] = p.cells[c].retries
	}
}

// proposeRound computes a fresh proposal for every pending cell against the
// arbiter state frozen at round start — in parallel unless Sequential. Each
// cell's work is recorded as a shard_cell span under the round's span, and
// the propose goroutines carry a phase=shard_propose pprof label so CPU
// profiles attribute grouping/assignment time to the sharded plane.
func (p *Planner) proposeRound(ctx context.Context, streams []sched.Stream, snap *sched.Snapshot, round int) {
	proposeCell := func(ctx context.Context, c int) {
		_, csp := p.opt.Obs.StartSpanCtx(ctx, "shard_cell",
			obs.F("cell", float64(c)),
			obs.F("round", float64(round)),
			obs.F("streams", float64(len(p.cells[c].global))))
		p.propose(&p.cells[c], streams, snap)
		csp.Field("stuck", b2f(p.cells[c].stuck))
		csp.Field("groups", float64(len(p.cells[c].prop.Claims)))
		csp.End()
	}
	if p.opt.Sequential {
		for c := range p.cells {
			if p.cells[c].pending {
				proposeCell(ctx, c)
			}
		}
		return
	}
	done := make(chan int, len(p.cells))
	n := 0
	for c := range p.cells {
		if !p.cells[c].pending {
			continue
		}
		n++
		go func(c int) {
			p.opt.Obs.Do(ctx, "shard_propose", func(ctx context.Context) {
				proposeCell(ctx, c)
			})
			done <- c
		}(c)
	}
	for ; n > 0; n-- {
		<-done
	}
}

// propose builds cell's claim set against the current (frozen) arbiter
// state: group the cell's streams with Algorithm 1's grouping, rank
// candidate servers utilization-aware, and solve the group→server
// assignment minimizing transmission latency over residual-feasible pairs.
// On failure the cell is marked stuck and the planner falls back.
func (p *Planner) propose(cell *cellScratch, streams []sched.Stream, snap *sched.Snapshot) {
	cell.local = cell.local[:0]
	for _, si := range cell.global {
		cell.local = append(cell.local, streams[si])
	}
	nHealthy := snap.NumHealthy()
	if nHealthy == 0 {
		cell.stuck = true
		return
	}
	groups, err := sched.GroupStreams(cell.local, nHealthy)
	if err != nil {
		cell.stuck = true
		return
	}

	// Claims skeleton: per non-empty group, exact gcd / Σ proc / bits.
	cell.prop.Cell = cell.idx
	cell.prop.Version = p.arb.Version()
	cell.prop.Claims = cell.prop.Claims[:0]
	for _, members := range groups {
		if len(members) == 0 {
			continue
		}
		var cl Claim
		cl.Members = make([]int, len(members))
		var gcd sched.Rational
		for k, li := range members {
			cl.Members[k] = cell.global[li]
			s := &cell.local[li]
			gcd = sched.RatGCD(gcd, s.Period)
			if !cl.Sum.addFloat(s.Proc, &cell.sc.tmp) {
				cell.stuck = true
				return
			}
			cl.Bits += s.Bits
		}
		cl.GCD = gcd
		cell.prop.Claims = append(cell.prop.Claims, cl)
	}
	if len(cell.prop.Claims) == 0 {
		cell.stuck = true // pending cell with no placeable groups
		return
	}

	// Candidate columns, utilization-aware and decorrelated: fewest
	// committed claims first (spread load over the cluster), ties broken by
	// physical index ROTATED by the cell's slice of the server space. The
	// rotation is what makes optimism pay: with identical orderings every
	// cell would stake the same least-claimed servers and all but the first
	// committer would bounce every round; rotated, cells prefer disjoint
	// ranges and conflicts only happen where ranges genuinely overlap.
	// Deterministic — the key depends only on (cell index, round state).
	cell.cols = snap.HealthyIndices(cell.cols[:0])
	rot := 0
	if p.opt.Shards > 0 {
		rot = cell.idx * len(cell.cols) / p.opt.Shards
	}
	slices.SortStableFunc(cell.cols, func(a, b int) int {
		ca, cb := p.arb.states[a].claims, p.arb.states[b].claims
		if ca != cb {
			return ca - cb
		}
		n := len(cell.cols)
		return (a+n-rot)%n - (b+n-rot)%n
	})
	rows := len(cell.prop.Claims)
	if limit := rows * p.opt.ColSlack; limit < len(cell.cols) {
		if p.assign(cell, cell.cols[:limit], snap) {
			return
		}
		// The capped candidate set had no feasible assignment; give the
		// proposal every healthy server before declaring the cell stuck.
	}
	if !p.assign(cell, cell.cols, snap) {
		cell.stuck = true
	}
}

// assign solves the cell's group→candidate-server assignment over the given
// columns. It fills each claim's Server and returns true, or returns false
// when no finite-cost perfect assignment of the real rows exists.
func (p *Planner) assign(cell *cellScratch, cols []int, snap *sched.Snapshot) bool {
	rows := len(cell.prop.Claims)
	n := len(cols)
	if rows > n {
		return false
	}
	if cap(cell.flat) < n*n {
		cell.flat = make([]float64, n*n)
	}
	cell.flat = cell.flat[:n*n]
	if cap(cell.cost) < n {
		cell.cost = make([][]float64, n)
	}
	cell.cost = cell.cost[:n]
	for r := 0; r < n; r++ {
		row := cell.flat[r*n : (r+1)*n]
		cell.cost[r] = row
		if r >= rows {
			for ci := range row {
				row[ci] = 0 // dummy row, as MapGroups pads empty groups
			}
			continue
		}
		cl := &cell.prop.Claims[r]
		for ci, j := range cols {
			// Empty full-speed servers are feasible without the exact
			// check: a GroupStreams group satisfies Σ proc ≤ min period =
			// its own gcd by construction, and commit re-validates exactly
			// anyway, so a propose-side shortcut can cost at most a bounce.
			// Slow servers (speed < 1) shrink the budget below that
			// construction guarantee, so they always take the exact check —
			// a shortcut there could propose a claim that can NEVER commit,
			// breaking the termination argument.
			occupied := p.arb.states[j].claims > 0 || p.arb.speed(j) < 1
			switch {
			case occupied && !p.arb.fits(j, cl.GCD, &cl.Sum, &cell.sc):
				row[ci] = math.Inf(1)
			case p.uplinks[j] > 0:
				row[ci] = cl.Bits / p.uplinks[j]
			case cl.Bits > 0:
				row[ci] = math.Inf(1)
			default:
				row[ci] = 0
			}
		}
	}
	assign, _ := cell.solver.Solve(cell.cost)
	for r := 0; r < rows; r++ {
		if math.IsInf(cell.cost[r][assign[r]], 1) {
			return false
		}
	}
	for r := 0; r < rows; r++ {
		cell.prop.Claims[r].Server = cols[assign[r]]
	}
	return true
}

// audit runs the committed (or fallen-back) plan through the configured
// checker: structural consistency plus the exact Const1/Const2 verifiers on
// the merged per-server stream sets — the load-bearing guarantee that no
// multi-cell commit ever violates feasibility on a shared server.
func (p *Planner) audit(streams []sched.Stream, plan sched.Plan, snap *sched.Snapshot) error {
	return p.opt.Check.VerifyPlanServers(streams, plan, snap.Servers(), snap.Healthy())
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
