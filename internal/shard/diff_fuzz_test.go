package shard

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/sched"
)

// FuzzShardedVsSerial differentially fuzzes the sharded planner against the
// serial Algorithm 1 solve (the FuzzReplanVsSchedule harness pattern):
//
//   - Shards=1 must be byte-identical to ScheduleMasked — it IS the serial
//     scheduler behind the planner interface.
//   - Shards=2..4 must place every stream on a healthy server and pass the
//     exact Const1/Const2 verifiers wherever the serial solve is feasible
//     (the serial fallback guarantees completeness), and the parallel and
//     sequential execution modes must agree exactly — plans and stats.
//   - With uniform uplinks the committed communication latency equals the
//     serial scheduler's (it is placement-independent), so conflict-free
//     partitions are decision-equivalent in the objective.
func FuzzShardedVsSerial(f *testing.F) {
	f.Add(uint64(1), 6, 3, uint8(2), uint8(0))
	f.Add(uint64(42), 16, 5, uint8(3), uint8(5))
	f.Add(uint64(7), 1, 1, uint8(1), uint8(0))
	f.Add(uint64(99), 24, 4, uint8(4), uint8(9))
	f.Fuzz(func(t *testing.T, seed uint64, m, n int, shardBits, downBits uint8) {
		m = 1 + abs(m)%24
		n = 1 + abs(n)%6
		shards := 1 + int(shardBits)%4
		fps := []int64{5, 6, 10, 15, 25, 30}
		rng := seed
		next := func(k int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(k))
		}
		raw := make([]sched.Stream, m)
		for i := range raw {
			p := sched.RatFromFPS(fps[next(len(fps))])
			raw[i] = sched.Stream{
				Video:  i,
				Period: p,
				Proc:   p.Float() * (0.05 + 0.6*float64(next(100))/100),
				Bits:   1e6 * (1 + float64(next(20))),
			}
		}
		streams := sched.SplitHighRate(raw)
		servers := make([]cluster.Server, n)
		uniform := next(2) == 0
		for j := range servers {
			up := 20e6
			if !uniform {
				up = 10e6 * float64(1+next(5))
			}
			servers[j] = cluster.Server{Name: fmt.Sprintf("s%d", j), Uplink: up}
		}
		var healthy []bool
		if downBits != 0 {
			healthy = make([]bool, n)
			alive := 0
			for j := range healthy {
				healthy[j] = downBits&(1<<j) == 0
				if healthy[j] {
					alive++
				}
			}
			if alive == 0 {
				healthy[next(n)] = true
			}
		}
		snap := sched.NewSnapshot(seed, servers, healthy)

		serial, serialErr := sched.ScheduleMasked(streams, servers, healthy)
		if serialErr != nil && !errors.Is(serialErr, sched.ErrInfeasible) {
			t.Fatalf("serial solve: non-infeasible error: %v", serialErr)
		}

		plan, st, err := New(Options{Shards: shards, Check: check.New(true, nil)}).Plan(streams, snap)
		if err != nil {
			if !errors.Is(err, sched.ErrInfeasible) {
				t.Fatalf("shards=%d: non-infeasible error: %v", shards, err)
			}
			if serialErr == nil {
				t.Fatalf("shards=%d infeasible where serial succeeded", shards)
			}
			return
		}
		// The sharded plane may be feasible where the serial grouping is not
		// (the arbiter merges groups across cells), so err==nil with
		// serialErr!=nil is legitimate — feasibility is then proven below.

		for i, j := range plan.StreamServer {
			if j < 0 || j >= n {
				t.Fatalf("shards=%d: stream %d unplaced (server %d)", shards, i, j)
			}
			if healthy != nil && !healthy[j] {
				t.Fatalf("shards=%d: stream %d on down server %d", shards, i, j)
			}
		}
		if !sched.CheckConst1(streams, plan.StreamServer, n) {
			t.Fatalf("shards=%d: exact Const1 violated", shards)
		}
		if !sched.CheckConst2(streams, plan.StreamServer, n) {
			t.Fatalf("shards=%d: exact Const2 violated", shards)
		}

		if shards == 1 {
			if serialErr != nil {
				t.Fatal("Shards=1 succeeded where serial failed")
			}
			if !reflect.DeepEqual(plan, serial) {
				t.Fatalf("Shards=1 diverged from serial:\n%+v\n%+v", plan, serial)
			}
			return
		}

		seq, stSeq, err := New(Options{Shards: shards, Sequential: true}).Plan(streams, snap)
		if err != nil {
			t.Fatalf("sequential mode failed where parallel succeeded: %v", err)
		}
		if !reflect.DeepEqual(plan, seq) {
			t.Fatalf("shards=%d: parallel vs sequential plans diverge:\n%+v\n%+v", shards, plan, seq)
		}
		if st.Conflicts != stSeq.Conflicts || st.Commits != stSeq.Commits ||
			st.Rounds != stSeq.Rounds || st.FellBack != stSeq.FellBack {
			t.Fatalf("shards=%d: parallel stats %+v vs sequential %+v", shards, st, stSeq)
		}

		if uniform && serialErr == nil && !st.FellBack {
			// Equal as exact sums; float accumulation order differs, so
			// compare to re-association tolerance.
			if d := math.Abs(plan.CommLatency - serial.CommLatency); d > 1e-9*math.Abs(serial.CommLatency) {
				t.Fatalf("shards=%d: uniform-uplink comm %v, serial %v", shards, plan.CommLatency, serial.CommLatency)
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
