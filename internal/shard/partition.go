// Package shard implements the sharded shared-state control plane: streams
// are partitioned into cells, one scheduler proposes a placement per cell
// concurrently, and a shared-state arbiter commits the cells' group→server
// claims with optimistic conflict detection and bounded retry — the
// lock-free optimistic concurrent scheduling architecture of arktos'
// global scheduler, specialized to the exact zero-jitter admission
// arithmetic (Const2) this system plans under.
//
// Determinism is a design invariant, not an accident: proposals are pure
// functions of (cell workload, arbiter state at round start), rounds are
// barriers, and commits run serially in cell-index order, so a plan is
// bit-identical across runs, GOMAXPROCS settings, and the sequential
// execution mode the differential fuzzer compares against.
package shard

import (
	"slices"

	"repro/internal/sched"
)

// splitmix64 is the avalanche finalizer used to hash video ids onto cells:
// deterministic, seed-free, and uncorrelated with the id's low bits (video
// ids are sequential, so a plain modulus would stripe systematically).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Partition splits the streams into at most `cells` cells: a static hash of
// the video id (so a video's post-split sub-streams always land together and
// membership is stable under drift), followed by a utilization-aware
// rebalance that moves whole videos from overloaded cells to underloaded
// ones until no single move can shrink the spread. The result is
// deterministic: cell membership depends only on (video ids, utilizations,
// cells). Cells are returned as stream-index lists in ascending order;
// every stream appears in exactly one cell. With cells ≤ 1 the single cell
// holds everything.
func Partition(streams []sched.Stream, cells int) [][]int {
	if cells < 1 {
		cells = 1
	}
	out := make([][]int, cells)
	if cells == 1 {
		out[0] = make([]int, len(streams))
		for i := range streams {
			out[0][i] = i
		}
		return out
	}

	// Group stream indices by video, recording each video's compute
	// utilization Σ p/T — the Const1 load the cell will have to place.
	type video struct {
		id      int
		cell    int
		util    float64
		streams []int
	}
	byID := make(map[int]*video)
	var vids []*video
	for i, s := range streams {
		v := byID[s.Video]
		if v == nil {
			v = &video{id: s.Video, cell: int(splitmix64(uint64(s.Video)) % uint64(cells))}
			byID[s.Video] = v
			vids = append(vids, v)
		}
		v.streams = append(v.streams, i)
		if f := s.Period.Float(); f > 0 {
			v.util += s.Proc / f
		}
	}
	slices.SortFunc(vids, func(a, b *video) int { return a.id - b.id })

	// Utilization-aware rebalance: repeatedly move one video from the
	// heaviest cell to the lightest. A move happens only when it strictly
	// shrinks the heavy–light spread, so the loop terminates (the spread is
	// bounded below and strictly decreases); the bound is pure insurance.
	load := make([]float64, cells)
	for _, v := range vids {
		load[v.cell] += v.util
	}
	for iter := 0; iter < len(vids); iter++ {
		hi, lo := 0, 0
		for c := 1; c < cells; c++ {
			if load[c] > load[hi] {
				hi = c
			}
			if load[c] < load[lo] {
				lo = c
			}
		}
		spread := load[hi] - load[lo]
		if hi == lo || spread <= 0 {
			break
		}
		// Best move: the video in the heavy cell whose transfer minimizes
		// the new pairwise spread |spread − 2·util|; ties break on the
		// lowest video id, keeping the result order-independent.
		pick, best := -1, spread
		for vi, v := range vids {
			if v.cell != hi || v.util <= 0 {
				continue
			}
			after := spread - 2*v.util
			if after < 0 {
				after = -after
			}
			if after < best {
				pick, best = vi, after
			}
		}
		if pick < 0 {
			break
		}
		v := vids[pick]
		load[hi] -= v.util
		load[lo] += v.util
		v.cell = lo
	}

	for _, v := range vids {
		out[v.cell] = append(out[v.cell], v.streams...)
	}
	for c := range out {
		slices.Sort(out[c])
	}
	return out
}

// PartitionVideos splits m video indices into at most `cells` cells by the
// same static hash, balanced by video count — the coarse partition the
// runtime's per-cell schedulers use before any configuration (and therefore
// any utilization) is known. Deterministic; no cell is left empty while
// another holds two or more videos.
func PartitionVideos(m, cells int) [][]int {
	if cells < 1 {
		cells = 1
	}
	if cells > m {
		cells = m
	}
	out := make([][]int, cells)
	for v := 0; v < m; v++ {
		c := int(splitmix64(uint64(v)) % uint64(cells))
		out[c] = append(out[c], v)
	}
	// Count-rebalance: move the highest-id video of the fullest cell into
	// the emptiest while the gap exceeds one.
	for iter := 0; iter < m; iter++ {
		hi, lo := 0, 0
		for c := 1; c < cells; c++ {
			if len(out[c]) > len(out[hi]) {
				hi = c
			}
			if len(out[c]) < len(out[lo]) {
				lo = c
			}
		}
		if len(out[hi])-len(out[lo]) <= 1 {
			break
		}
		last := out[hi][len(out[hi])-1]
		out[hi] = out[hi][:len(out[hi])-1]
		out[lo] = append(out[lo], last)
	}
	for c := range out {
		slices.Sort(out[c])
	}
	return out
}
