package shard

import (
	"math"
	"math/big"

	"repro/internal/sched"
)

// dyadic is an exact sum of float64 processing times, held as num/2^shift.
// Every finite float64 is m·2^e with |m| < 2^53, so accumulating over a
// common power-of-two denominator is lossless — the same discipline as
// sched.Replanner's Const2 re-check, packaged as a value the arbiter can
// store per server and per claim.
type dyadic struct {
	num   big.Int
	shift uint
}

// addFloat accumulates p exactly; it reports false on NaN/±Inf, which the
// caller must treat as an unverifiable (and therefore rejected) claim.
func (d *dyadic) addFloat(p float64, tmp *big.Int) bool {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return false
	}
	fr, exp := math.Frexp(p) // p = fr·2^exp, |fr| ∈ [0.5, 1) or 0
	mant := int64(fr * (1 << 53))
	e := exp - 53 // p = mant·2^e exactly
	tmp.SetInt64(mant)
	if e >= 0 {
		tmp.Lsh(tmp, uint(e)+d.shift)
	} else if s := uint(-e); s > d.shift {
		d.num.Lsh(&d.num, s-d.shift)
		d.shift = s
	} else if d.shift > s {
		tmp.Lsh(tmp, d.shift-s)
	}
	d.num.Add(&d.num, tmp)
	return true
}

// add accumulates another dyadic sum exactly.
func (d *dyadic) add(o *dyadic, tmp *big.Int) {
	tmp.Set(&o.num)
	if o.shift > d.shift {
		d.num.Lsh(&d.num, o.shift-d.shift)
		d.shift = o.shift
	} else if d.shift > o.shift {
		tmp.Lsh(tmp, d.shift-o.shift)
	}
	d.num.Add(&d.num, tmp)
}

// set copies o into d.
func (d *dyadic) set(o *dyadic) {
	d.num.Set(&o.num)
	d.shift = o.shift
}

// reset zeroes the sum.
func (d *dyadic) reset() {
	d.num.SetInt64(0)
	d.shift = 0
}

// withinBudget reports d ≤ num/den exactly, by cross-multiplication:
// d.num/2^shift ≤ num/den  ⇔  d.num·den ≤ num·2^shift.
func (d *dyadic) withinBudget(budget sched.Rational, sc *fitScratch) bool {
	return d.withinBudgetSpeed(budget, 1, sc)
}

// withinBudgetSpeed reports d ≤ (num/den)·speed exactly. The speed factor
// is a float64 and hence dyadic (mant·2^e), so the scaled budget is still
// an exact rational and the comparison stays a cross-multiplication:
// d.num·den·2^max(0,−e) ≤ num·mant·2^(shift+max(0,e)).
func (d *dyadic) withinBudgetSpeed(budget sched.Rational, speed float64, sc *fitScratch) bool {
	if budget.Num == 0 {
		// Empty-budget server: only an empty sum fits.
		return d.num.Sign() <= 0
	}
	if math.IsNaN(speed) || math.IsInf(speed, 0) || speed <= 0 {
		return false
	}
	sc.den.SetInt64(budget.Den)
	sc.lhs.Mul(&d.num, &sc.den)
	sc.rhs.SetInt64(budget.Num)
	if speed == 1 {
		sc.rhs.Lsh(&sc.rhs, d.shift)
		return sc.lhs.Cmp(&sc.rhs) <= 0
	}
	fr, exp := math.Frexp(speed) // speed = mant·2^(exp−53) exactly
	sc.tmp.SetInt64(int64(fr * (1 << 53)))
	sc.rhs.Mul(&sc.rhs, &sc.tmp)
	if e := exp - 53; e >= 0 {
		sc.rhs.Lsh(&sc.rhs, d.shift+uint(e))
	} else {
		sc.rhs.Lsh(&sc.rhs, d.shift)
		sc.lhs.Lsh(&sc.lhs, uint(-e))
	}
	return sc.lhs.Cmp(&sc.rhs) <= 0
}

// fitScratch holds the big.Int workspace one goroutine's exact admission
// checks run in. The arbiter owns one for its serial commit path; every
// propose goroutine owns its own, so the read-only propose phase touches no
// shared mutable state.
type fitScratch struct {
	tmp, lhs, rhs, den big.Int
	trial              dyadic
}

// Claim is one group→server claim of a cell's proposal: place the streams
// in Members (global indices) on Server. GCD and Sum summarize the group
// for the exact admission check; Bits is the group's total frame size, so
// the committed plan's communication latency is an exact running sum.
type Claim struct {
	Server  int
	Members []int
	GCD     sched.Rational // exact gcd of member periods
	Sum     dyadic         // exact Σ proc over members
	Bits    float64
}

// Proposal is a cell's complete claim set, planned against one snapshot
// version. Claims target distinct servers (each cell's assignment problem
// gives every group its own column).
type Proposal struct {
	Cell    int
	Version uint64 // arbiter version the cell planned against
	Claims  []Claim
}

// serverState is the committed occupancy of one server: the exact gcd of
// every committed stream's period, the exact Σ proc, and the committed
// member streams in commit order (the order Theorem 1 offsets are laid out
// in). A server holding groups from multiple cells stays zero-jitter
// because commits preserve Σ proc ≤ gcd over the union — see the package
// comment in planner.go for the argument.
type serverState struct {
	gcd     sched.Rational
	sum     dyadic
	members []int
	claims  int
}

// Arbiter is the shared cluster state of one sharded solve. It is NOT
// goroutine-safe by design: proposals are computed in parallel against a
// round-start state that nobody mutates, and commits run serially in
// cell-index order — the serialization IS the determinism argument, so a
// mutex would only hide a protocol bug. Reuse across solves via Reset.
type Arbiter struct {
	version uint64
	states  []serverState
	uplinks []float64
	speeds  []float64
	commits int
	comm    float64 // Σ bits/uplink over committed claims

	sc fitScratch // scratch for the serial commit path only
}

// NewArbiter returns an arbiter over n servers at the snapshot's version.
func NewArbiter(n int, version uint64) *Arbiter {
	a := &Arbiter{}
	a.Reset(n, version)
	return a
}

// Reset clears all commitments and re-bases the arbiter on a fresh
// snapshot version, reusing the per-server state slices.
func (a *Arbiter) Reset(n int, version uint64) {
	if cap(a.states) < n {
		a.states = make([]serverState, n)
	}
	a.states = a.states[:n]
	for j := range a.states {
		a.states[j].gcd = sched.Rational{}
		a.states[j].sum.reset()
		a.states[j].members = a.states[j].members[:0]
		a.states[j].claims = 0
	}
	a.version = version
	a.commits = 0
	a.comm = 0
}

// Version returns the live state version: the snapshot version plus one
// per committed proposal. A proposer holding an older version may still
// commit — optimistically — as long as its claims re-validate exactly.
func (a *Arbiter) Version() uint64 { return a.version }

// Commits returns the number of committed proposals.
func (a *Arbiter) Commits() int { return a.commits }

// CommLatency returns the total transmission latency of the committed
// claims (Σ group bits / server uplink).
func (a *Arbiter) CommLatency() float64 { return a.comm }

// Fits reports whether adding a group with the given period gcd and exact
// proc sum to server j keeps the union within Const2: Σ proc over every
// stream on j, claimed and committed, at most the gcd of all their periods.
// Since that gcd divides every member period, Const2 implies Const1
// (Σ pᵢ/Tᵢ ≤ Σ pᵢ/gcd ≤ 1), so one exact check settles both. Proposers
// call it read-only during the propose phase; Commit re-runs it against
// the live state, which is what makes the concurrency optimistic.
func (a *Arbiter) Fits(j int, gcd sched.Rational, sum *dyadic) bool {
	return a.fits(j, gcd, sum, &a.sc)
}

// fits is Fits against caller-owned scratch — the form propose goroutines
// use so the concurrent propose phase stays free of shared mutable state.
func (a *Arbiter) fits(j int, gcd sched.Rational, sum *dyadic, sc *fitScratch) bool {
	st := &a.states[j]
	union := sched.RatGCD(st.gcd, gcd)
	sc.trial.set(&st.sum)
	sc.trial.add(sum, &sc.tmp)
	return sc.trial.withinBudgetSpeed(union, a.speed(j), sc)
}

// Commit validates every claim of the proposal against the LIVE state and,
// if all pass, applies them atomically and bumps the version. On any
// failure nothing is applied and the first conflicting server index is
// returned — the cell retries against a fresh snapshot. Claims sharing a
// server within one proposal are a protocol violation and rejected.
func (a *Arbiter) Commit(p *Proposal) (ok bool, conflict int) {
	for i := range p.Claims {
		c := &p.Claims[i]
		if c.Server < 0 || c.Server >= len(a.states) {
			return false, c.Server
		}
		for k := 0; k < i; k++ {
			if p.Claims[k].Server == c.Server {
				return false, c.Server
			}
		}
		if !a.Fits(c.Server, c.GCD, &c.Sum) {
			return false, c.Server
		}
	}
	for i := range p.Claims {
		c := &p.Claims[i]
		st := &a.states[c.Server]
		st.gcd = sched.RatGCD(st.gcd, c.GCD)
		st.sum.add(&c.Sum, &a.sc.tmp)
		st.members = append(st.members, c.Members...)
		st.claims++
		a.comm += c.Bits / a.uplink(c.Server)
	}
	a.version++
	a.commits++
	return true, -1
}

// uplinks are threaded in at Reset time by the planner; stored separately
// so Reset can keep the slice without re-copying server records.
func (a *Arbiter) uplink(j int) float64 { return a.uplinks[j] }

// SetUplinks installs the per-server uplink capacities used for the
// committed communication-latency accounting. Must be called after Reset
// and before the first Commit.
func (a *Arbiter) SetUplinks(uplinks []float64) { a.uplinks = uplinks }

// speed returns server j's effective processing-rate factor; a nil slice
// (homogeneous cluster) means 1 everywhere.
func (a *Arbiter) speed(j int) float64 {
	if a.speeds == nil {
		return 1
	}
	if s := a.speeds[j]; s > 0 && !math.IsInf(s, 1) {
		return s
	}
	return 1
}

// SetSpeeds installs per-server speed factors so the exact admission check
// scales every server's Const2 budget to gcd·speed (cluster.Server.Speed
// semantics: non-positive entries mean 1). Must be called after Reset and
// before the first Fits/Commit; nil restores the homogeneous default.
func (a *Arbiter) SetSpeeds(speeds []float64) { a.speeds = speeds }

// Plan assembles the committed state into a sched.Plan over nStreams
// streams: one merged group per occupied server in ascending server order
// (the deterministic merge order), members within a group in commit order.
// Unclaimed streams keep StreamServer −1; a complete solve leaves none.
func (a *Arbiter) Plan(nStreams int) sched.Plan {
	plan := sched.Plan{
		StreamServer: make([]int, nStreams),
		CommLatency:  a.comm,
	}
	for i := range plan.StreamServer {
		plan.StreamServer[i] = -1
	}
	for j := range a.states {
		st := &a.states[j]
		if len(st.members) == 0 {
			continue
		}
		plan.Groups = append(plan.Groups, append([]int(nil), st.members...))
		plan.GroupServer = append(plan.GroupServer, j)
		for _, si := range st.members {
			plan.StreamServer[si] = j
		}
	}
	return plan
}
